// Package mobility implements the movement models of the scenario: the
// shortest-path map-based random-waypoint walk the paper's vehicles perform,
// the stationary model of the relay nodes, and a free-space random waypoint
// for synthetic tests.
//
// Models expose position analytically: Position(now) computes where the
// node is at a given time from the active route leg, rather than mutating a
// coordinate every tick. Queries must be issued with non-decreasing time
// stamps (the simulator's connectivity scan guarantees this); a model
// consumes its random stream only when it has to commit to the next leg, so
// a run's trajectory is a pure function of (map, seed).
package mobility

import (
	"fmt"
	"math"

	"vdtn/internal/geo"
	"vdtn/internal/roadmap"
	"vdtn/internal/xrand"
)

// Model yields a node's position over time. Implementations require
// non-decreasing query times and panic on time reversal beyond a small
// tolerance, because rewinding would silently desynchronize the model's
// random stream from the trajectory already observed.
type Model interface {
	Position(now float64) geo.Point
}

// Stationary is the relay-node model: a fixed position forever.
type Stationary struct {
	At geo.Point
}

// Position returns the fixed position.
func (s Stationary) Position(now float64) geo.Point { return s.At }

// StaticUntil reports that the position never changes (the wireless
// scan's static-entity hint; see wireless.StaticUntiler).
func (s Stationary) StaticUntil(now float64) float64 { return math.Inf(1) }

// timeTolerance absorbs float64 noise in repeated same-instant queries.
const timeTolerance = 1e-9

// MapWalk is the paper's vehicle movement: pick a random map location,
// drive there along the shortest road path at a random constant speed, wait
// a random pause, repeat.
//
// Paper parameters: speed uniform in [30, 50] km/h, pause uniform in
// [5, 15] minutes, destinations uniform over map locations.
type MapWalk struct {
	g   *roadmap.Graph
	rng *xrand.Rand

	speedLo, speedHi float64 // m/s
	pauseLo, pauseHi float64 // s

	// Current leg. Exactly one of the two modes is active:
	//   paused: stands at vertex `at` until pauseEnd
	//   moving: drives along route, departed legStart at `speed`
	paused   bool
	at       int // current vertex while paused / destination while moving
	pauseEnd float64

	route    geo.Polyline
	routeLen float64
	legStart float64
	speed    float64

	lastQuery float64
	trips     int // completed trips, for tests/diagnostics
}

// MapWalkConfig carries the distribution parameters for a MapWalk.
type MapWalkConfig struct {
	SpeedLoMs float64 // lower speed bound, m/s; must be > 0
	SpeedHiMs float64 // upper speed bound, m/s; >= SpeedLoMs
	PauseLoS  float64 // lower pause bound, s; >= 0
	PauseHiS  float64 // upper pause bound, s; >= PauseLoS
}

// Validate reports the first invalid field, if any.
func (c MapWalkConfig) Validate() error {
	switch {
	case c.SpeedLoMs <= 0:
		return fmt.Errorf("mobility: speed lower bound %v must be positive", c.SpeedLoMs)
	case c.SpeedHiMs < c.SpeedLoMs:
		return fmt.Errorf("mobility: speed bounds inverted: [%v, %v]", c.SpeedLoMs, c.SpeedHiMs)
	case c.PauseLoS < 0:
		return fmt.Errorf("mobility: negative pause %v", c.PauseLoS)
	case c.PauseHiS < c.PauseLoS:
		return fmt.Errorf("mobility: pause bounds inverted: [%v, %v]", c.PauseLoS, c.PauseHiS)
	}
	return nil
}

// NewMapWalk returns a vehicle walk on g driven by rng. The vehicle starts
// at a random intersection and departs on its first trip at time 0.
// It panics if the config is invalid or the map fails validation; scenario
// assembly is expected to have validated both.
func NewMapWalk(g *roadmap.Graph, rng *xrand.Rand, cfg MapWalkConfig) *MapWalk {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	w := &MapWalk{
		g:       g,
		rng:     rng,
		speedLo: cfg.SpeedLoMs,
		speedHi: cfg.SpeedHiMs,
		pauseLo: cfg.PauseLoS,
		pauseHi: cfg.PauseHiS,
		paused:  true,
		at:      g.RandomVertex(rng),
	}
	w.pauseEnd = 0 // departs immediately
	return w
}

// Trips returns the number of completed point-to-point trips so far.
func (w *MapWalk) Trips() int { return w.trips }

// Position returns the vehicle position at time now. Queries must be
// non-decreasing in time.
func (w *MapWalk) Position(now float64) geo.Point {
	if now < w.lastQuery-timeTolerance {
		panic(fmt.Sprintf("mobility: time reversed from %v to %v", w.lastQuery, now))
	}
	w.lastQuery = now
	for {
		if w.paused {
			if now < w.pauseEnd {
				return w.g.Vertex(w.at)
			}
			w.depart(w.pauseEnd)
			continue
		}
		arrival := w.legStart + w.routeLen/w.speed
		if now < arrival {
			return w.route.AtDistance(w.speed * (now - w.legStart))
		}
		w.arrive(arrival)
	}
}

// StaticUntil reports how long the vehicle is guaranteed to stand still:
// through the end of the current pause while parked, or not at all while
// driving. Like Position, it must be called with the model's state at
// `now` (i.e. immediately after Position(now)); it consumes nothing from
// the random stream, so skipping position queries during a pause leaves
// the trajectory bit-identical.
func (w *MapWalk) StaticUntil(now float64) float64 {
	if w.paused {
		return w.pauseEnd
	}
	return now
}

// depart commits to the next trip, consuming random draws for destination
// and speed.
func (w *MapWalk) depart(at float64) {
	// Pick a destination distinct from the current vertex. The map is
	// connected (validated in the constructor), so any pick is reachable.
	dest := w.at
	for dest == w.at {
		dest = w.g.RandomVertex(w.rng)
	}
	path, dist, ok := w.g.ShortestPath(w.at, dest)
	if !ok {
		panic("mobility: unreachable destination on validated map")
	}
	w.route = w.g.PathPolyline(path)
	w.routeLen = dist
	w.speed = w.rng.UniformFloat(w.speedLo, w.speedHi)
	w.legStart = at
	w.paused = false
	w.at = dest
}

// arrive ends the current trip at the destination and starts the pause.
func (w *MapWalk) arrive(at float64) {
	w.trips++
	w.paused = true
	w.pauseEnd = at + w.rng.UniformFloat(w.pauseLo, w.pauseHi)
}

// RandomWaypoint is a free-space random waypoint model inside a rectangle:
// no roads, straight lines between uniform random points. It exists for
// unit tests and for scenarios that want mobility without a map substrate.
type RandomWaypoint struct {
	rng              *xrand.Rand
	area             geo.Rect
	speedLo, speedHi float64
	pauseLo, pauseHi float64

	paused    bool
	pos, dest geo.Point
	pauseEnd  float64
	legStart  float64
	legLen    float64
	speed     float64
	lastQuery float64
}

// NewRandomWaypoint returns a free-space walk in area. Parameters follow
// MapWalkConfig semantics.
func NewRandomWaypoint(area geo.Rect, rng *xrand.Rand, cfg MapWalkConfig) *RandomWaypoint {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	w := &RandomWaypoint{
		rng:     rng,
		area:    area,
		speedLo: cfg.SpeedLoMs,
		speedHi: cfg.SpeedHiMs,
		pauseLo: cfg.PauseLoS,
		pauseHi: cfg.PauseHiS,
		paused:  true,
	}
	w.pos = w.randomPoint()
	w.pauseEnd = 0
	return w
}

// StaticUntil mirrors MapWalk.StaticUntil for the free-space walk.
func (w *RandomWaypoint) StaticUntil(now float64) float64 {
	if w.paused {
		return w.pauseEnd
	}
	return now
}

func (w *RandomWaypoint) randomPoint() geo.Point {
	return geo.Point{
		X: w.rng.UniformFloat(w.area.Min.X, w.area.Max.X),
		Y: w.rng.UniformFloat(w.area.Min.Y, w.area.Max.Y),
	}
}

// Position returns the position at time now; queries must be
// non-decreasing in time.
func (w *RandomWaypoint) Position(now float64) geo.Point {
	if now < w.lastQuery-timeTolerance {
		panic(fmt.Sprintf("mobility: time reversed from %v to %v", w.lastQuery, now))
	}
	w.lastQuery = now
	for {
		if w.paused {
			if now < w.pauseEnd {
				return w.pos
			}
			w.dest = w.randomPoint()
			w.legLen = w.pos.Dist(w.dest)
			w.speed = w.rng.UniformFloat(w.speedLo, w.speedHi)
			w.legStart = w.pauseEnd
			w.paused = false
			continue
		}
		arrival := w.legStart + w.legLen/w.speed
		if now < arrival {
			t := w.speed * (now - w.legStart) / w.legLen
			return w.pos.Lerp(w.dest, t)
		}
		w.pos = w.dest
		w.paused = true
		w.pauseEnd = arrival + w.rng.UniformFloat(w.pauseLo, w.pauseHi)
	}
}
