package mobility

import (
	"math"
	"testing"

	"vdtn/internal/geo"
	"vdtn/internal/roadmap"
	"vdtn/internal/units"
	"vdtn/internal/xrand"
)

// paperCfg is the paper's vehicle parameterization: 30-50 km/h,
// 5-15 min pauses.
func paperCfg() MapWalkConfig {
	return MapWalkConfig{
		SpeedLoMs: units.KmhToMs(30),
		SpeedHiMs: units.KmhToMs(50),
		PauseLoS:  units.Minutes(5),
		PauseHiS:  units.Minutes(15),
	}
}

func TestStationary(t *testing.T) {
	s := Stationary{At: geo.Point{X: 7, Y: 9}}
	for _, now := range []float64{0, 100, 1e6} {
		if got := s.Position(now); got != (geo.Point{X: 7, Y: 9}) {
			t.Fatalf("Position(%v) = %v", now, got)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := map[string]MapWalkConfig{
		"zero speed":      {SpeedLoMs: 0, SpeedHiMs: 10, PauseHiS: 1},
		"inverted speed":  {SpeedLoMs: 10, SpeedHiMs: 5, PauseHiS: 1},
		"negative pause":  {SpeedLoMs: 1, SpeedHiMs: 2, PauseLoS: -1, PauseHiS: 1},
		"inverted pauses": {SpeedLoMs: 1, SpeedHiMs: 2, PauseLoS: 5, PauseHiS: 1},
	}
	for name, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
	if err := paperCfg().Validate(); err != nil {
		t.Fatalf("paper config rejected: %v", err)
	}
}

func TestMapWalkStaysOnMap(t *testing.T) {
	g := roadmap.HelsinkiLike()
	w := NewMapWalk(g, xrand.New(1), paperCfg())
	bounds := g.Bounds()
	for now := 0.0; now <= units.Hours(2); now += 5 {
		p := w.Position(now)
		if !bounds.Contains(p) {
			t.Fatalf("vehicle left the map at t=%v: %v", now, p)
		}
	}
	if w.Trips() == 0 {
		t.Fatal("no trips completed in 2 simulated hours")
	}
}

func TestMapWalkSpeedEnvelope(t *testing.T) {
	g := roadmap.HelsinkiLike()
	cfg := paperCfg()
	w := NewMapWalk(g, xrand.New(2), cfg)
	const dt = 1.0
	prev := w.Position(0)
	for now := dt; now <= units.Hours(1); now += dt {
		p := w.Position(now)
		v := prev.Dist(p) / dt
		// Straight-line displacement can exceed instantaneous speed only at
		// polyline corners (the chord cuts the corner is shorter, never
		// longer), so speed-hi is a hard upper bound.
		if v > cfg.SpeedHiMs+1e-6 {
			t.Fatalf("speed %v m/s at t=%v exceeds cap %v", v, now, cfg.SpeedHiMs)
		}
		prev = p
	}
}

func TestMapWalkPausesAtVertices(t *testing.T) {
	g := roadmap.Grid(4, 4, 200)
	cfg := MapWalkConfig{
		SpeedLoMs: 10, SpeedHiMs: 10,
		PauseLoS: 100, PauseHiS: 100,
	}
	w := NewMapWalk(g, xrand.New(3), cfg)
	// Sample densely; every time the position is stable for consecutive
	// samples it must coincide with a map vertex.
	var prev geo.Point
	first := true
	for now := 0.0; now < 5000; now += 1.0 {
		p := w.Position(now)
		if !first && p == prev {
			id := g.NearestVertex(p)
			if g.Vertex(id).Dist(p) > 1e-6 {
				t.Fatalf("vehicle paused off-vertex at %v", p)
			}
		}
		prev, first = p, false
	}
}

func TestMapWalkDeterminism(t *testing.T) {
	g := roadmap.HelsinkiLike()
	w1 := NewMapWalk(g, xrand.New(42), paperCfg())
	w2 := NewMapWalk(g, xrand.New(42), paperCfg())
	for now := 0.0; now < units.Hours(1); now += 7 {
		if p1, p2 := w1.Position(now), w2.Position(now); p1 != p2 {
			t.Fatalf("trajectories diverge at t=%v: %v vs %v", now, p1, p2)
		}
	}
}

func TestMapWalkSeedsDiffer(t *testing.T) {
	g := roadmap.HelsinkiLike()
	w1 := NewMapWalk(g, xrand.New(1), paperCfg())
	w2 := NewMapWalk(g, xrand.New(2), paperCfg())
	same := 0
	samples := 0
	for now := units.Minutes(10); now < units.Hours(1); now += 60 {
		samples++
		if w1.Position(now) == w2.Position(now) {
			same++
		}
	}
	if same == samples {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestMapWalkTimeReversalPanics(t *testing.T) {
	g := roadmap.Grid(3, 3, 100)
	w := NewMapWalk(g, xrand.New(1), paperCfg())
	w.Position(100)
	defer func() {
		if recover() == nil {
			t.Fatal("time reversal did not panic")
		}
	}()
	w.Position(50)
}

func TestMapWalkSameInstantQueryOK(t *testing.T) {
	g := roadmap.Grid(3, 3, 100)
	w := NewMapWalk(g, xrand.New(1), paperCfg())
	a := w.Position(100)
	b := w.Position(100)
	if a != b {
		t.Fatalf("same-instant queries differ: %v vs %v", a, b)
	}
}

func TestMapWalkContinuity(t *testing.T) {
	// Position must be continuous: no teleporting between consecutive
	// fine-grained samples, even across pause/move transitions.
	g := roadmap.HelsinkiLike()
	cfg := paperCfg()
	w := NewMapWalk(g, xrand.New(11), cfg)
	const dt = 0.5
	prev := w.Position(0)
	for now := dt; now < units.Hours(3); now += dt {
		p := w.Position(now)
		if step := prev.Dist(p); step > cfg.SpeedHiMs*dt+1e-6 {
			t.Fatalf("discontinuity at t=%v: jumped %v m in %v s", now, step, dt)
		}
		prev = p
	}
}

func TestMapWalkInvalidMapPanics(t *testing.T) {
	g := roadmap.New()
	a := g.AddVertex(geo.Point{X: 0, Y: 0})
	b := g.AddVertex(geo.Point{X: 1, Y: 0})
	c := g.AddVertex(geo.Point{X: 2, Y: 0})
	g.AddEdge(a, b)
	_ = c // disconnected
	defer func() {
		if recover() == nil {
			t.Fatal("disconnected map did not panic")
		}
	}()
	NewMapWalk(g, xrand.New(1), paperCfg())
}

func TestRandomWaypointStaysInArea(t *testing.T) {
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 800})
	w := NewRandomWaypoint(area, xrand.New(5), MapWalkConfig{
		SpeedLoMs: 5, SpeedHiMs: 15, PauseLoS: 0, PauseHiS: 30,
	})
	for now := 0.0; now < 10000; now += 3 {
		p := w.Position(now)
		if !area.Contains(p) {
			t.Fatalf("waypoint walker left area at t=%v: %v", now, p)
		}
	}
}

func TestRandomWaypointContinuity(t *testing.T) {
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 500, Y: 500})
	cfg := MapWalkConfig{SpeedLoMs: 5, SpeedHiMs: 10, PauseLoS: 5, PauseHiS: 10}
	w := NewRandomWaypoint(area, xrand.New(9), cfg)
	const dt = 0.5
	prev := w.Position(0)
	for now := dt; now < 5000; now += dt {
		p := w.Position(now)
		if step := prev.Dist(p); step > cfg.SpeedHiMs*dt+1e-6 {
			t.Fatalf("discontinuity at t=%v: %v m in %v s", now, step, dt)
		}
		prev = p
	}
}

func TestRandomWaypointTimeReversalPanics(t *testing.T) {
	area := geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100})
	w := NewRandomWaypoint(area, xrand.New(1), MapWalkConfig{
		SpeedLoMs: 1, SpeedHiMs: 2, PauseHiS: 1,
	})
	w.Position(10)
	defer func() {
		if recover() == nil {
			t.Fatal("time reversal did not panic")
		}
	}()
	w.Position(1)
}

func BenchmarkMapWalkPosition(b *testing.B) {
	g := roadmap.HelsinkiLike()
	w := NewMapWalk(g, xrand.New(1), paperCfg())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Position(float64(i))
	}
}

func TestStationaryStaticUntil(t *testing.T) {
	s := Stationary{At: geo.Point{X: 1, Y: 2}}
	if got := s.StaticUntil(42); !math.IsInf(got, 1) {
		t.Fatalf("StaticUntil = %v, want +Inf", got)
	}
}

// TestMapWalkStaticUntilTracksPauses: while paused the hint promises
// stillness through pauseEnd; while driving it promises nothing.
func TestMapWalkStaticUntilTracksPauses(t *testing.T) {
	g := roadmap.HelsinkiLike()
	w := NewMapWalk(g, xrand.New(3), paperCfg())
	sawPause, sawDrive := false, false
	var prev geo.Point
	for now := 0.0; now <= units.Hours(2); now += 5 {
		p := w.Position(now)
		until := w.StaticUntil(now)
		if until > now {
			sawPause = true
			// The promise must hold: re-query inside the window and the
			// position must not have moved.
			if q := w.Position(math.Min(until-1e-6, now+1)); q != p {
				t.Fatalf("t=%v: promised static until %v but moved %v -> %v", now, until, p, q)
			}
		} else {
			sawDrive = true
			if until != now {
				t.Fatalf("t=%v: driving hint = %v, want now", now, until)
			}
			if now > 0 && p == prev {
				// Not an error per se (could be mid-turn), but with 5 s
				// steps at >=30 km/h a driving vehicle always moves.
				t.Fatalf("t=%v: driving but did not move", now)
			}
		}
		prev = p
	}
	if !sawPause || !sawDrive {
		t.Fatalf("trajectory did not exercise both modes: pause=%v drive=%v", sawPause, sawDrive)
	}
}

// TestMapWalkSparseQueriesBitIdentical is the property the wireless scan
// skip relies on: skipping Position queries during a promised-static
// window must not change the trajectory, because StaticUntil consumes
// nothing from the random stream. Two identically-seeded walkers — one
// queried every second, one only when its own hint expires — must agree
// exactly at every common instant.
func TestMapWalkSparseQueriesBitIdentical(t *testing.T) {
	g := roadmap.HelsinkiLike()
	dense := NewMapWalk(g, xrand.New(9), paperCfg())
	sparse := NewMapWalk(g, xrand.New(9), paperCfg())

	skipUntil := -1.0
	checked := 0
	for now := 0.0; now <= units.Hours(3); now++ {
		dp := dense.Position(now)
		if now < skipUntil {
			continue // sparse walker skipped, like the scan would
		}
		sp := sparse.Position(now)
		if sp != dp {
			t.Fatalf("t=%v: sparse %v != dense %v", now, sp, dp)
		}
		checked++
		skipUntil = sparse.StaticUntil(now)
	}
	if checked == 0 || dense.Trips() != sparse.Trips() {
		t.Fatalf("checked=%d denseTrips=%d sparseTrips=%d",
			checked, dense.Trips(), sparse.Trips())
	}
}

// TestRandomWaypointSparseQueriesBitIdentical mirrors the MapWalk skip
// property for the free-space model.
func TestRandomWaypointSparseQueriesBitIdentical(t *testing.T) {
	area := geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 500, Y: 500}}
	cfg := MapWalkConfig{SpeedLoMs: 2, SpeedHiMs: 5, PauseLoS: 10, PauseHiS: 60}
	dense := NewRandomWaypoint(area, xrand.New(21), cfg)
	sparse := NewRandomWaypoint(area, xrand.New(21), cfg)

	skipUntil := -1.0
	for now := 0.0; now <= 3600; now++ {
		dp := dense.Position(now)
		if now < skipUntil {
			continue
		}
		sp := sparse.Position(now)
		if sp != dp {
			t.Fatalf("t=%v: sparse %v != dense %v", now, sp, dp)
		}
		skipUntil = sparse.StaticUntil(now)
	}
}

// TestMapWalkParallelQueriesBitIdentical pins the property the parallel
// scan's phase 1 rests on: walkers sharing one road graph can be queried
// from concurrent goroutines (each walker owned by exactly one goroutine,
// non-decreasing times — the scan's access pattern) and produce exactly
// the positions a serial sweep produces. The shared state is the graph's
// shortest-path cache, which is locked internally; per-walker RNG streams
// make each walker's draw sequence independent of the others' schedules.
// Run under -race in CI, this is the mobility layer's concurrency audit.
func TestMapWalkParallelQueriesBitIdentical(t *testing.T) {
	g := roadmap.HelsinkiLike()
	const walkers = 16
	const horizon = 1800.0

	serialPos := make([][]geo.Point, walkers)
	for i := 0; i < walkers; i++ {
		w := NewMapWalk(g, xrand.New(uint64(100+i)), paperCfg())
		for now := 0.0; now <= horizon; now++ {
			serialPos[i] = append(serialPos[i], w.Position(now))
		}
	}

	// Fresh graph, so the concurrent run populates the shortest-path
	// cache itself (racing cache misses, not warm hits).
	g2 := roadmap.HelsinkiLike()
	parallelPos := make([][]geo.Point, walkers)
	done := make(chan int, walkers)
	for i := 0; i < walkers; i++ {
		i := i
		w := NewMapWalk(g2, xrand.New(uint64(100+i)), paperCfg())
		go func() {
			for now := 0.0; now <= horizon; now++ {
				parallelPos[i] = append(parallelPos[i], w.Position(now))
			}
			done <- i
		}()
	}
	for i := 0; i < walkers; i++ {
		<-done
	}

	for i := 0; i < walkers; i++ {
		for tick, want := range serialPos[i] {
			if parallelPos[i][tick] != want {
				t.Fatalf("walker %d t=%d: parallel %v != serial %v",
					i, tick, parallelPos[i][tick], want)
			}
		}
	}
}
