package roadmap

import (
	"fmt"
	"strconv"
	"strings"

	"vdtn/internal/geo"
)

// ParseWKT builds a graph from Well-Known-Text map data, the format the ONE
// simulator ships its Helsinki maps in. Supported geometries are LINESTRING
// and MULTILINESTRING; each consecutive coordinate pair in a linestring
// becomes a road edge, and junction vertices are deduplicated by coordinate.
// Blank lines and lines starting with '#' are ignored. Other geometry types
// (POINT, POLYGON, ...) are rejected so that a mis-exported file fails
// loudly rather than producing an empty map.
func ParseWKT(text string) (*Graph, error) {
	g := New()
	lineNo := 0
	for _, raw := range strings.Split(text, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "MULTILINESTRING"):
			body, err := wktBody(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			for _, part := range splitParenGroups(body) {
				if err := addLinestring(g, part); err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
			}
		case strings.HasPrefix(upper, "LINESTRING"):
			body, err := wktBody(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if err := addLinestring(g, body); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unsupported WKT geometry %q", lineNo, firstWord(line))
		}
	}
	if g.VertexCount() == 0 {
		return nil, fmt.Errorf("roadmap: WKT input contained no road geometry")
	}
	return g, nil
}

// wktBody strips the geometry keyword and one outer level of parentheses:
// "LINESTRING (1 2, 3 4)" -> "1 2, 3 4".
func wktBody(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed WKT: missing parentheses in %q", line)
	}
	return line[open+1 : close], nil
}

// splitParenGroups splits "(a), (b), (c)" into ["a", "b", "c"].
func splitParenGroups(body string) []string {
	var out []string
	depth := 0
	start := -1
	for i, r := range body {
		switch r {
		case '(':
			if depth == 0 {
				start = i + 1
			}
			depth++
		case ')':
			depth--
			if depth == 0 && start >= 0 {
				out = append(out, body[start:i])
				start = -1
			}
		}
	}
	if len(out) == 0 && strings.TrimSpace(body) != "" {
		// A MULTILINESTRING with a single unparenthesised part.
		out = append(out, body)
	}
	return out
}

func firstWord(s string) string {
	if i := strings.IndexAny(s, " (\t"); i > 0 {
		return s[:i]
	}
	return s
}

// addLinestring parses "x1 y1, x2 y2, ..." and adds the chain to the graph.
func addLinestring(g *Graph, body string) error {
	coords := strings.Split(body, ",")
	if len(coords) < 2 {
		return fmt.Errorf("linestring needs at least 2 points, got %d", len(coords))
	}
	prev := -1
	for _, c := range coords {
		fields := strings.Fields(strings.TrimSpace(c))
		if len(fields) < 2 {
			return fmt.Errorf("bad coordinate %q", c)
		}
		x, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return fmt.Errorf("bad x coordinate %q: %v", fields[0], err)
		}
		y, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("bad y coordinate %q: %v", fields[1], err)
		}
		id := g.AddVertex(geo.Point{X: x, Y: y})
		if prev >= 0 {
			g.AddEdge(prev, id)
		}
		prev = id
	}
	return nil
}

// ExportWKT renders the graph as one LINESTRING per edge, a form every WKT
// consumer accepts. Vertex coordinates are written with millimetre
// precision, which round-trips through ParseWKT (snap tolerance 1 mm).
func ExportWKT(g *Graph) string {
	var sb strings.Builder
	sb.WriteString("# vdtn roadmap export: one LINESTRING per road edge\n")
	for a := 0; a < g.VertexCount(); a++ {
		for _, e := range g.adj[a] {
			if e.to < a {
				continue
			}
			pa, pb := g.Vertex(a), g.Vertex(e.to)
			fmt.Fprintf(&sb, "LINESTRING (%.3f %.3f, %.3f %.3f)\n", pa.X, pa.Y, pb.X, pb.Y)
		}
	}
	return sb.String()
}
