package roadmap

import (
	"fmt"
	"math"
	"sort"

	"vdtn/internal/geo"
	"vdtn/internal/xrand"
)

// Grid returns a rows x cols rectangular street grid with the given block
// spacing in metres, the classic synthetic road network. Vertices are
// numbered row-major from (0,0). It panics if rows or cols < 2 or spacing
// is not positive.
func Grid(rows, cols int, spacing float64) *Graph {
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("roadmap: Grid(%d, %d) needs at least 2x2", rows, cols))
	}
	if spacing <= 0 {
		panic("roadmap: Grid with non-positive spacing")
	}
	g := New()
	ids := make([][]int, rows)
	for r := 0; r < rows; r++ {
		ids[r] = make([]int, cols)
		for c := 0; c < cols; c++ {
			ids[r][c] = g.AddVertex(geo.Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(ids[r][c], ids[r][c+1])
			}
			if r+1 < rows {
				g.AddEdge(ids[r][c], ids[r+1][c])
			}
		}
	}
	return g
}

// helsinkiSeed fixes the synthetic map so that every simulation run, on any
// seed, uses the identical road network — the map is part of the scenario,
// not of the randomness.
const helsinkiSeed = 0x48454C53494E4B49 // "HELSINKI"

// HelsinkiLike returns the synthetic stand-in for the ONE simulator's
// "small part of the city of Helsinki" map used by the paper.
//
// Substitution note (see DESIGN.md §2): the original WKT street data is not
// redistributable here, so we generate a road network with the same
// properties the experiments actually depend on — the ~4500 m x 3400 m
// extent of the ONE's Helsinki clip, city-block road density (~150
// intersections, blocks of roughly 250-350 m), irregular (jittered)
// junction placement, a sprinkling of missing links so blocks vary in
// shape, and two diagonal arterials. The construction is deterministic.
func HelsinkiLike() *Graph {
	const (
		width   = 4500.0
		height  = 3400.0
		cols    = 15
		rows    = 11
		jitterX = 55.0
		jitterY = 50.0
	)
	rng := xrand.New(helsinkiSeed)
	g := New()

	dx := width / float64(cols-1)
	dy := height / float64(rows-1)
	ids := make([][]int, rows)
	for r := 0; r < rows; r++ {
		ids[r] = make([]int, cols)
		for c := 0; c < cols; c++ {
			jx := rng.UniformFloat(-jitterX, jitterX)
			jy := rng.UniformFloat(-jitterY, jitterY)
			// Keep border intersections on the map boundary so the extent
			// is exactly the ONE clip's extent.
			x := float64(c)*dx + jx
			y := float64(r)*dy + jy
			if c == 0 || c == cols-1 {
				x = float64(c) * dx
			}
			if r == 0 || r == rows-1 {
				y = float64(r) * dy
			}
			ids[r][c] = g.AddVertex(geo.Point{X: x, Y: y})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(ids[r][c], ids[r][c+1])
			}
			if r+1 < rows {
				g.AddEdge(ids[r][c], ids[r+1][c])
			}
		}
	}

	// Two diagonal arterials, like Helsinki's Mannerheimintie cutting the
	// grid: one from the south-west up to the north-east, one crossing it.
	addDiagonal(g, ids, rows, cols, true)
	addDiagonal(g, ids, rows, cols, false)

	// Prune ~12% of interior edges to make blocks irregular, skipping any
	// removal that would disconnect the network.
	pruneEdges(g, rng, 0.12)

	if err := g.Validate(); err != nil {
		// The construction above guarantees validity; a failure here is a
		// programming error, not a runtime condition.
		panic("roadmap: HelsinkiLike produced invalid map: " + err.Error())
	}
	return g
}

// addDiagonal threads an arterial through the grid interior.
func addDiagonal(g *Graph, ids [][]int, rows, cols int, rising bool) {
	steps := min(rows, cols) - 1
	for i := 0; i < steps; i++ {
		r0, c0 := i, i
		r1, c1 := i+1, i+1
		if !rising {
			r0, r1 = rows-1-i, rows-2-i
		}
		if c1 < cols && r1 >= 0 && r1 < rows {
			g.AddEdge(ids[r0][c0], ids[r1][c1])
		}
	}
}

// pruneEdges removes about frac of the edges uniformly at random while
// preserving connectivity. Removal order is deterministic in rng.
func pruneEdges(g *Graph, rng *xrand.Rand, frac float64) {
	type pair struct{ a, b int }
	var all []pair
	for a := 0; a < g.VertexCount(); a++ {
		for _, e := range g.adj[a] {
			if e.to > a {
				all = append(all, pair{a, e.to})
			}
		}
	}
	target := int(frac * float64(len(all)))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	removed := 0
	for _, p := range all {
		if removed >= target {
			break
		}
		if g.removeEdgeIfKeepsConnected(p.a, p.b) {
			removed++
		}
	}
}

// removeEdgeIfKeepsConnected removes edge (a, b) unless doing so would
// disconnect the graph or isolate a vertex. It reports whether it removed.
func (g *Graph) removeEdgeIfKeepsConnected(a, b int) bool {
	if g.Degree(a) < 2 || g.Degree(b) < 2 {
		return false
	}
	g.detachEdge(a, b)
	if !g.Connected() {
		// Put it back.
		w := g.pts[a].Dist(g.pts[b])
		g.adj[a] = append(g.adj[a], edge{b, w})
		g.adj[b] = append(g.adj[b], edge{a, w})
		g.m++
		g.invalidate()
		return false
	}
	return true
}

func (g *Graph) detachEdge(a, b int) {
	g.adj[a] = dropEdge(g.adj[a], b)
	g.adj[b] = dropEdge(g.adj[b], a)
	g.m--
	g.invalidate()
}

func dropEdge(es []edge, to int) []edge {
	for i, e := range es {
		if e.to == to {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

// RelaySites returns k intersection ids suitable for stationary relay
// nodes, emulating the paper's "five stationary relay nodes placed at
// predefined map locations" (crossroads spread over the map). Sites are
// chosen deterministically by farthest-point sampling over road distance,
// restricted to crossroads (degree >= 3) and seeded from the map centre, so
// the relays end up well spread and always on busy junctions.
// It panics if the map has fewer than k crossroads.
func RelaySites(g *Graph, k int) []int {
	var cross []int
	for v := 0; v < g.VertexCount(); v++ {
		if g.Degree(v) >= 3 {
			cross = append(cross, v)
		}
	}
	if len(cross) < k {
		panic(fmt.Sprintf("roadmap: RelaySites(%d) but map has only %d crossroads", k, len(cross)))
	}
	centre := g.Bounds().Min.Lerp(g.Bounds().Max, 0.5)

	// First site: the crossroad nearest the map centre.
	first := cross[0]
	bestD := math.Inf(1)
	for _, v := range cross {
		if d := g.Vertex(v).Dist2(centre); d < bestD {
			first, bestD = v, d
		}
	}
	sites := []int{first}

	for len(sites) < k {
		bestV, bestScore := -1, -1.0
		for _, v := range cross {
			if contains(sites, v) {
				continue
			}
			// Distance to the nearest already-chosen site, over roads.
			nearest := math.Inf(1)
			for _, s := range sites {
				if d := g.Distance(s, v); d < nearest {
					nearest = d
				}
			}
			if nearest > bestScore {
				bestV, bestScore = v, nearest
			}
		}
		sites = append(sites, bestV)
	}
	sort.Ints(sites)
	return sites
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
