package roadmap

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"vdtn/internal/geo"
	"vdtn/internal/xrand"
)

func TestAddVertexDedup(t *testing.T) {
	g := New()
	a := g.AddVertex(geo.Point{X: 1, Y: 2})
	b := g.AddVertex(geo.Point{X: 1.0000001, Y: 2}) // within snap tolerance
	c := g.AddVertex(geo.Point{X: 1.1, Y: 2})
	if a != b {
		t.Fatalf("vertices within snap tolerance not deduped: %d, %d", a, b)
	}
	if a == c {
		t.Fatal("distinct vertices merged")
	}
	if g.VertexCount() != 2 {
		t.Fatalf("VertexCount = %d, want 2", g.VertexCount())
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	a := g.AddVertex(geo.Point{X: 0, Y: 0})
	b := g.AddVertex(geo.Point{X: 3, Y: 4})
	g.AddEdge(a, b)
	g.AddEdge(a, b) // duplicate ignored
	g.AddEdge(b, a) // reverse duplicate ignored
	g.AddEdge(a, a) // self loop ignored
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatalf("degrees = %d, %d, want 1, 1", g.Degree(a), g.Degree(b))
	}
	if got := g.TotalRoadLength(); got != 5 {
		t.Fatalf("TotalRoadLength = %v, want 5", got)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	g := New()
	g.AddVertex(geo.Point{})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEdge did not panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4, 100)
	if g.VertexCount() != 12 {
		t.Fatalf("VertexCount = %d, want 12", g.VertexCount())
	}
	// Edges: horizontal 3*(4-1)=9, vertical 4*(3-1)=8.
	if g.EdgeCount() != 17 {
		t.Fatalf("EdgeCount = %d, want 17", g.EdgeCount())
	}
	if !g.Connected() {
		t.Fatal("grid not connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := g.Bounds()
	if b.Width() != 300 || b.Height() != 200 {
		t.Fatalf("bounds = %v x %v", b.Width(), b.Height())
	}
}

func TestShortestPathOnGrid(t *testing.T) {
	g := Grid(3, 3, 100) // ids row-major: 0..8
	path, dist, ok := g.ShortestPath(0, 8)
	if !ok {
		t.Fatal("no path found on connected grid")
	}
	if math.Abs(dist-400) > 1e-9 {
		t.Fatalf("dist(corner, corner) = %v, want 400", dist)
	}
	if path[0] != 0 || path[len(path)-1] != 8 {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	if len(path) != 5 {
		t.Fatalf("path length = %d hops, want 5 vertices", len(path))
	}
	// Consecutive path vertices must be adjacent (spacing apart).
	for i := 1; i < len(path); i++ {
		d := g.Vertex(path[i-1]).Dist(g.Vertex(path[i]))
		if math.Abs(d-100) > 1e-9 {
			t.Fatalf("path step %d has length %v", i, d)
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := Grid(2, 2, 50)
	path, dist, ok := g.ShortestPath(1, 1)
	if !ok || dist != 0 || len(path) != 1 || path[0] != 1 {
		t.Fatalf("self path = %v, %v, %v", path, dist, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New()
	a := g.AddVertex(geo.Point{X: 0, Y: 0})
	b := g.AddVertex(geo.Point{X: 10, Y: 0})
	c := g.AddVertex(geo.Point{X: 20, Y: 0})
	g.AddEdge(a, b)
	if _, _, ok := g.ShortestPath(a, c); ok {
		t.Fatal("found path to disconnected vertex")
	}
	if !math.IsInf(g.Distance(a, c), 1) {
		t.Fatal("Distance to unreachable not +Inf")
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted disconnected map")
	}
}

func TestShortestPathOutOfRange(t *testing.T) {
	g := Grid(2, 2, 10)
	if _, _, ok := g.ShortestPath(-1, 0); ok {
		t.Fatal("negative id accepted")
	}
	if _, _, ok := g.ShortestPath(0, 99); ok {
		t.Fatal("oversized id accepted")
	}
}

// Property: on a connected random graph, shortest-path distances satisfy
// symmetry and the triangle inequality, and every reported path is valid.
func TestShortestPathProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		g := Grid(3+rng.IntN(3), 3+rng.IntN(3), 50+rng.Float64()*100)
		n := g.VertexCount()
		a, b, c := rng.IntN(n), rng.IntN(n), rng.IntN(n)

		dab := g.Distance(a, b)
		dba := g.Distance(b, a)
		if math.Abs(dab-dba) > 1e-6 {
			return false
		}
		if g.Distance(a, c) > dab+g.Distance(b, c)+1e-6 {
			return false
		}
		path, dist, ok := g.ShortestPath(a, b)
		if !ok {
			return false
		}
		// Path length must equal the reported distance.
		sum := 0.0
		for i := 1; i < len(path); i++ {
			sum += g.Vertex(path[i-1]).Dist(g.Vertex(path[i]))
		}
		return math.Abs(sum-dist) < 1e-6
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceCacheInvalidation(t *testing.T) {
	g := New()
	a := g.AddVertex(geo.Point{X: 0, Y: 0})
	b := g.AddVertex(geo.Point{X: 100, Y: 0})
	c := g.AddVertex(geo.Point{X: 50, Y: 40})
	g.AddEdge(a, c)
	g.AddEdge(c, b)
	detour := g.Distance(a, b)
	if detour <= 100 {
		t.Fatalf("detour distance = %v, expected > 100", detour)
	}
	g.AddEdge(a, b) // direct road appears
	if d := g.Distance(a, b); math.Abs(d-100) > 1e-9 {
		t.Fatalf("Distance after AddEdge = %v, want 100 (stale cache?)", d)
	}
}

func TestNearestVertex(t *testing.T) {
	g := Grid(3, 3, 100)
	id := g.NearestVertex(geo.Point{X: 110, Y: 95})
	if g.Vertex(id) != (geo.Point{X: 100, Y: 100}) {
		t.Fatalf("NearestVertex -> %v", g.Vertex(id))
	}
}

func TestRandomVertexInRange(t *testing.T) {
	g := Grid(4, 4, 10)
	rng := xrand.New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := g.RandomVertex(rng)
		if v < 0 || v >= g.VertexCount() {
			t.Fatalf("RandomVertex out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != g.VertexCount() {
		t.Fatalf("RandomVertex covered %d/%d vertices in 1000 draws", len(seen), g.VertexCount())
	}
}

func TestHelsinkiLikeProperties(t *testing.T) {
	g := HelsinkiLike()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := g.Bounds()
	if math.Abs(b.Width()-4500) > 1 || math.Abs(b.Height()-3400) > 1 {
		t.Fatalf("map extent %v x %v, want ~4500 x 3400 (ONE Helsinki clip)", b.Width(), b.Height())
	}
	if n := g.VertexCount(); n < 120 || n > 200 {
		t.Fatalf("map has %d intersections, want city-block density (120-200)", n)
	}
	// Deterministic: two constructions must be identical.
	h := HelsinkiLike()
	if h.VertexCount() != g.VertexCount() || h.EdgeCount() != g.EdgeCount() {
		t.Fatal("HelsinkiLike not deterministic")
	}
	for i := 0; i < g.VertexCount(); i++ {
		if g.Vertex(i) != h.Vertex(i) {
			t.Fatalf("vertex %d differs across constructions", i)
		}
	}
}

func TestRelaySites(t *testing.T) {
	g := HelsinkiLike()
	sites := RelaySites(g, 5)
	if len(sites) != 5 {
		t.Fatalf("RelaySites returned %d sites", len(sites))
	}
	seen := map[int]bool{}
	for _, s := range sites {
		if seen[s] {
			t.Fatal("duplicate relay site")
		}
		seen[s] = true
		if g.Degree(s) < 3 {
			t.Fatalf("relay site %d has degree %d, want crossroad (>=3)", s, g.Degree(s))
		}
	}
	// Spread: the minimum pairwise road distance should be a meaningful
	// fraction of the map diagonal.
	minD := math.Inf(1)
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			if d := g.Distance(a, b); d < minD {
				minD = d
			}
		}
	}
	if minD < 800 {
		t.Fatalf("relay sites bunch up: min pairwise road distance %v m", minD)
	}
	// Deterministic.
	again := RelaySites(g, 5)
	for i := range sites {
		if sites[i] != again[i] {
			t.Fatal("RelaySites not deterministic")
		}
	}
}

func TestRelaySitesTooMany(t *testing.T) {
	g := Grid(2, 2, 10) // no degree-3 vertices
	defer func() {
		if recover() == nil {
			t.Fatal("RelaySites on cornerless map did not panic")
		}
	}()
	RelaySites(g, 1)
}

func TestGridPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"rows<2":    func() { Grid(1, 5, 10) },
		"cols<2":    func() { Grid(5, 1, 10) },
		"spacing=0": func() { Grid(3, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParseWKTLinestring(t *testing.T) {
	g, err := ParseWKT("LINESTRING (0 0, 100 0, 100 100)\nLINESTRING (100 100, 0 100)\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.VertexCount() != 4 {
		t.Fatalf("VertexCount = %d, want 4 (shared junction deduped)", g.VertexCount())
	}
	if g.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d, want 3", g.EdgeCount())
	}
}

func TestParseWKTMultilinestring(t *testing.T) {
	g, err := ParseWKT("MULTILINESTRING ((0 0, 10 0), (10 0, 10 10, 20 10))\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.VertexCount() != 4 || g.EdgeCount() != 3 {
		t.Fatalf("got %d vertices, %d edges", g.VertexCount(), g.EdgeCount())
	}
}

func TestParseWKTCommentsAndBlanks(t *testing.T) {
	g, err := ParseWKT("# a comment\n\nLINESTRING (0 0, 5 5)\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
}

func TestParseWKTErrors(t *testing.T) {
	cases := map[string]string{
		"unsupported geometry": "POINT (1 2)",
		"missing parens":       "LINESTRING 0 0, 1 1",
		"single point":         "LINESTRING (1 2)",
		"bad coordinate":       "LINESTRING (a b, 1 2)",
		"empty input":          "",
		"only comments":        "# nothing here",
	}
	for name, input := range cases {
		if _, err := ParseWKT(input); err == nil {
			t.Errorf("%s: ParseWKT accepted %q", name, input)
		}
	}
}

func TestWKTRoundTrip(t *testing.T) {
	g := HelsinkiLike()
	text := ExportWKT(g)
	if !strings.Contains(text, "LINESTRING") {
		t.Fatal("export contains no linestrings")
	}
	h, err := ParseWKT(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	if h.VertexCount() != g.VertexCount() {
		t.Fatalf("round trip vertices: %d != %d", h.VertexCount(), g.VertexCount())
	}
	if h.EdgeCount() != g.EdgeCount() {
		t.Fatalf("round trip edges: %d != %d", h.EdgeCount(), g.EdgeCount())
	}
	if math.Abs(h.TotalRoadLength()-g.TotalRoadLength()) > 1.0 {
		t.Fatalf("round trip road length: %v != %v", h.TotalRoadLength(), g.TotalRoadLength())
	}
}

func TestPathPolyline(t *testing.T) {
	g := Grid(2, 3, 100)
	path, dist, ok := g.ShortestPath(0, 5)
	if !ok {
		t.Fatal("no path")
	}
	pl := g.PathPolyline(path)
	if math.Abs(pl.Length()-dist) > 1e-9 {
		t.Fatalf("polyline length %v != path dist %v", pl.Length(), dist)
	}
}

func BenchmarkShortestPathColdCache(b *testing.B) {
	g := HelsinkiLike()
	rng := xrand.New(1)
	n := g.VertexCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.invalidate()
		g.ShortestPath(rng.IntN(n), rng.IntN(n))
	}
}

func BenchmarkShortestPathWarmCache(b *testing.B) {
	g := HelsinkiLike()
	rng := xrand.New(1)
	n := g.VertexCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPath(rng.IntN(n), rng.IntN(n))
	}
}
