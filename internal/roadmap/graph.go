// Package roadmap models the road network vehicles move on: an undirected
// graph of intersections (vertices, with planar positions in metres) and
// road stretches (edges, weighted by Euclidean length), with shortest-path
// queries, WKT map loading, and synthetic map generators.
//
// This is the substrate the paper gets from the ONE simulator's map module:
// the evaluation scenario is "a map-based model of a small part of the city
// of Helsinki" over which vehicles do shortest-path movement between random
// map locations. See HelsinkiLike for the map substitution notes.
package roadmap

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"vdtn/internal/geo"
	"vdtn/internal/xrand"
)

// snapEps is the coordinate tolerance (metres) under which two vertices are
// considered the same intersection when building a graph. Map files produced
// by GIS exports routinely repeat junction coordinates with sub-millimetre
// noise.
const snapEps = 1e-3

type edge struct {
	to int
	w  float64 // metres
}

// Graph is an undirected road network. The zero value is not usable;
// use New.
type Graph struct {
	pts  []geo.Point
	adj  [][]edge
	keys map[[2]int64]int // snapped coordinate -> vertex id
	m    int              // number of undirected edges

	// Shortest-path cache, one tree per queried source. Guarded by ssspMu:
	// a graph is assembled single-threaded, but the parallel proximity scan
	// (sim.Config.ScanWorkers) queries mobility models — and through them
	// ShortestPath/Distance — from several goroutines at once. The trees
	// themselves are immutable after construction and safe to read without
	// the lock; only the cache map needs guarding. Tree contents are a pure
	// function of the graph, so which goroutine populates an entry never
	// affects results.
	ssspMu sync.Mutex
	sssp   map[int]*ssspTree
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{keys: make(map[[2]int64]int)}
}

func snapKey(p geo.Point) [2]int64 {
	return [2]int64{int64(math.Round(p.X / snapEps)), int64(math.Round(p.Y / snapEps))}
}

// AddVertex returns the id of the intersection at p, creating it if no
// vertex lies within the snap tolerance.
func (g *Graph) AddVertex(p geo.Point) int {
	k := snapKey(p)
	if id, ok := g.keys[k]; ok {
		return id
	}
	id := len(g.pts)
	g.pts = append(g.pts, p)
	g.adj = append(g.adj, nil)
	g.keys[k] = id
	g.invalidate()
	return id
}

// AddEdge connects vertices a and b with a road stretch weighted by their
// Euclidean distance. Self-loops and duplicate edges are ignored.
// It panics on out-of-range ids.
func (g *Graph) AddEdge(a, b int) {
	if a < 0 || a >= len(g.pts) || b < 0 || b >= len(g.pts) {
		panic(fmt.Sprintf("roadmap: AddEdge(%d, %d) out of range (%d vertices)", a, b, len(g.pts)))
	}
	if a == b {
		return
	}
	for _, e := range g.adj[a] {
		if e.to == b {
			return
		}
	}
	w := g.pts[a].Dist(g.pts[b])
	g.adj[a] = append(g.adj[a], edge{b, w})
	g.adj[b] = append(g.adj[b], edge{a, w})
	g.m++
	g.invalidate()
}

func (g *Graph) invalidate() {
	g.ssspMu.Lock()
	g.sssp = nil
	g.ssspMu.Unlock()
}

// VertexCount returns the number of intersections.
func (g *Graph) VertexCount() int { return len(g.pts) }

// EdgeCount returns the number of undirected road stretches.
func (g *Graph) EdgeCount() int { return g.m }

// Vertex returns the position of intersection id.
func (g *Graph) Vertex(id int) geo.Point { return g.pts[id] }

// Degree returns the number of roads meeting at intersection id.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Neighbors returns the ids of intersections directly connected to id.
// The returned slice is freshly allocated.
func (g *Graph) Neighbors(id int) []int {
	out := make([]int, len(g.adj[id]))
	for i, e := range g.adj[id] {
		out[i] = e.to
	}
	return out
}

// Bounds returns the bounding box of all intersections.
// It panics on an empty graph.
func (g *Graph) Bounds() geo.Rect { return geo.Bounds(g.pts) }

// TotalRoadLength returns the summed length of all road stretches in metres.
func (g *Graph) TotalRoadLength() float64 {
	total := 0.0
	for a, es := range g.adj {
		for _, e := range es {
			if e.to > a { // count each undirected edge once
				total += e.w
			}
		}
	}
	return total
}

// RandomVertex returns a uniformly random intersection id.
// It panics on an empty graph.
func (g *Graph) RandomVertex(r *xrand.Rand) int {
	if len(g.pts) == 0 {
		panic("roadmap: RandomVertex on empty graph")
	}
	return r.IntN(len(g.pts))
}

// NearestVertex returns the intersection closest to p.
// It panics on an empty graph.
func (g *Graph) NearestVertex(p geo.Point) int {
	if len(g.pts) == 0 {
		panic("roadmap: NearestVertex on empty graph")
	}
	best, bestD := 0, math.Inf(1)
	for i, q := range g.pts {
		if d := p.Dist2(q); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Connected reports whether every intersection is reachable from every
// other. The empty graph is connected.
func (g *Graph) Connected() bool {
	if len(g.pts) == 0 {
		return true
	}
	return len(g.component(0)) == len(g.pts)
}

// component returns the ids reachable from start (including start).
func (g *Graph) component(start int) []int {
	seen := make([]bool, len(g.pts))
	stack := []int{start}
	seen[start] = true
	var out []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, e := range g.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return out
}

// Validate checks structural invariants a usable scenario map must satisfy:
// at least two vertices, at least one edge, and full connectivity (otherwise
// some shortest-path movement targets would be unreachable). It returns a
// descriptive error for the first violated invariant.
func (g *Graph) Validate() error {
	if len(g.pts) < 2 {
		return fmt.Errorf("roadmap: map has %d vertices, need at least 2", len(g.pts))
	}
	if g.m == 0 {
		return fmt.Errorf("roadmap: map has no edges")
	}
	if !g.Connected() {
		return fmt.Errorf("roadmap: map is not connected (%d of %d vertices in the first component)",
			len(g.component(0)), len(g.pts))
	}
	return nil
}

// Fingerprint returns a 64-bit content hash of the graph: vertex positions
// in id order and the undirected edge set. Graphs with identical content
// (same construction order) hash identically; mobility on the graph is a
// pure function of (fingerprint, stream seed), which is what the
// experiment harness's contact cache keys on.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(len(g.pts)))
	for _, p := range g.pts {
		word(math.Float64bits(p.X))
		word(math.Float64bits(p.Y))
	}
	for a, es := range g.adj {
		for _, e := range es {
			if e.to > a {
				word(uint64(a))
				word(uint64(e.to))
			}
		}
	}
	return h.Sum64()
}

// PathPolyline converts a vertex-id path into its planar geometry.
func (g *Graph) PathPolyline(ids []int) geo.Polyline {
	pl := make(geo.Polyline, len(ids))
	for i, id := range ids {
		pl[i] = g.pts[id]
	}
	return pl
}
