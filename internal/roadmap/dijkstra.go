package roadmap

import (
	"container/heap"
	"math"
)

// ssspTree is a single-source shortest-path tree: for a fixed source, the
// distance to every vertex and the predecessor on one shortest path.
// Trees are cached per source because mobility models re-query the same
// sources often (every departure from a popular intersection).
type ssspTree struct {
	dist []float64
	prev []int
}

// pqItem is an entry in the Dijkstra priority queue.
type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// shortestTree returns the (possibly cached) shortest-path tree from src.
// Safe for concurrent use: the cache lock is held across lookup, build and
// store, so concurrent queries for the same source compute the tree once
// and every caller observes the same (immutable) tree. Holding the lock
// through the Dijkstra build serializes tree construction, which is fine:
// cache misses are rare at steady state (sources repeat), and correctness
// under the parallel scan matters more than first-touch latency.
func (g *Graph) shortestTree(src int) *ssspTree {
	g.ssspMu.Lock()
	defer g.ssspMu.Unlock()
	if t, ok := g.sssp[src]; ok {
		return t
	}
	n := len(g.pts)
	t := &ssspTree{
		dist: make([]float64, n),
		prev: make([]int, n),
	}
	for i := range t.dist {
		t.dist[i] = math.Inf(1)
		t.prev[i] = -1
	}
	t.dist[src] = 0
	q := pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > t.dist[it.v] {
			continue // stale entry
		}
		for _, e := range g.adj[it.v] {
			nd := it.dist + e.w
			if nd < t.dist[e.to] {
				t.dist[e.to] = nd
				t.prev[e.to] = it.v
				heap.Push(&q, pqItem{e.to, nd})
			}
		}
	}
	if g.sssp == nil {
		g.sssp = make(map[int]*ssspTree)
	}
	g.sssp[src] = t
	return t
}

// ShortestPath returns the vertex-id sequence of a shortest path from a to
// b (inclusive of both endpoints), its length in metres, and whether b is
// reachable from a. The path from a vertex to itself is [a] with length 0.
// Results are deterministic: ties are broken by edge insertion order.
func (g *Graph) ShortestPath(a, b int) (path []int, dist float64, ok bool) {
	if a < 0 || a >= len(g.pts) || b < 0 || b >= len(g.pts) {
		return nil, 0, false
	}
	t := g.shortestTree(a)
	if math.IsInf(t.dist[b], 1) {
		return nil, 0, false
	}
	// Walk predecessors back from b.
	rev := []int{b}
	for v := b; v != a; v = t.prev[v] {
		rev = append(rev, t.prev[v])
	}
	path = make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, t.dist[b], true
}

// Distance returns the shortest road distance from a to b in metres, or
// +Inf if unreachable.
func (g *Graph) Distance(a, b int) float64 {
	t := g.shortestTree(a)
	return t.dist[b]
}
