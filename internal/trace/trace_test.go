package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		ContactUp:        "contact_up",
		ContactDown:      "contact_down",
		TransferStart:    "transfer_start",
		TransferComplete: "transfer_complete",
		TransferAbort:    "transfer_abort",
		Created:          "created",
		Delivered:        "delivered",
		RelayAccepted:    "relay_accepted",
		RelayRejected:    "relay_rejected",
		Dropped:          "dropped",
		Expired:          "expired",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestLogAppendAndQuery(t *testing.T) {
	var l Log
	l.Append(Event{Time: 1, Kind: Created, A: 0, B: 5, Msg: 1})
	l.Append(Event{Time: 2, Kind: TransferStart, A: 0, B: 3, Msg: 1})
	l.Append(Event{Time: 3, Kind: Created, A: 2, B: 4, Msg: 2})
	l.Append(Event{Time: 4, Kind: Delivered, A: 3, B: 5, Msg: 1})

	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Count(Created) != 2 {
		t.Fatalf("Count(Created) = %d", l.Count(Created))
	}
	if l.Count(Expired) != 0 {
		t.Fatalf("Count(Expired) = %d", l.Count(Expired))
	}
	m1 := l.OfMessage(1)
	if len(m1) != 3 {
		t.Fatalf("OfMessage(1) = %d events", len(m1))
	}
	for i := 1; i < len(m1); i++ {
		if m1[i].Time < m1[i-1].Time {
			t.Fatal("OfMessage out of order")
		}
	}
}

func TestLogEventsIsCopy(t *testing.T) {
	var l Log
	l.Append(Event{Time: 1, Kind: Created, Msg: 1})
	evs := l.Events()
	evs[0].Msg = 99
	if l.Events()[0].Msg != 1 {
		t.Fatal("Events() aliases internal storage")
	}
}

func TestWriteTSV(t *testing.T) {
	var l Log
	l.Append(Event{Time: 1.5, Kind: ContactUp, A: 1, B: 2})
	l.Append(Event{Time: 2.25, Kind: Created, A: 0, B: 5, Msg: 7})
	var sb strings.Builder
	if err := l.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("TSV lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "time\tkind\ta\tb\tmsg" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "contact_up") || !strings.Contains(lines[2], "M7") {
		t.Fatalf("rows wrong:\n%s", out)
	}
}

func TestStreamingWriter(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Emit(Event{Time: 1, Kind: Dropped, A: 4, B: -1, Msg: 3})
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if !strings.Contains(sb.String(), "dropped\t4\t-1\tM3") {
		t.Fatalf("stream output:\n%s", sb.String())
	}
}

func TestParseTSVRoundTrip(t *testing.T) {
	var l Log
	l.Append(Event{Time: 1.5, Kind: ContactUp, A: 1, B: 2})
	l.Append(Event{Time: 2.25, Kind: Created, A: 0, B: 5, Msg: 7})
	l.Append(Event{Time: 9, Kind: Delivered, A: 3, B: 5, Msg: 7})
	var sb strings.Builder
	if err := l.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	events, err := ParseTSV(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != l.Len() {
		t.Fatalf("round trip count: %d != %d", len(events), l.Len())
	}
	for i, ev := range l.Events() {
		if events[i] != ev {
			t.Fatalf("event %d drifted: %+v != %+v", i, events[i], ev)
		}
	}
}

func TestParseTSVErrors(t *testing.T) {
	cases := map[string]string{
		"no header":    "1.0\tcontact_up\t1\t2\tM0",
		"bad columns":  "time\tkind\ta\tb\tmsg\n1.0\tcontact_up\t1",
		"bad time":     "time\tkind\ta\tb\tmsg\nx\tcontact_up\t1\t2\tM0",
		"unknown kind": "time\tkind\ta\tb\tmsg\n1\twormhole\t1\t2\tM0",
		"bad node":     "time\tkind\ta\tb\tmsg\n1\tcontact_up\tx\t2\tM0",
		"bad msg":      "time\tkind\ta\tb\tmsg\n1\tcreated\t1\t2\tMx",
	}
	for name, text := range cases {
		if _, err := ParseTSV(text); err == nil {
			t.Errorf("%s: ParseTSV accepted %q", name, text)
		}
	}
}

func TestParseTSVSkipsBlankLines(t *testing.T) {
	events, err := ParseTSV("time\tkind\ta\tb\tmsg\n\n1\tcreated\t0\t5\tM3\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Msg != 3 {
		t.Fatalf("events = %+v", events)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestStreamingWriterSticksOnError(t *testing.T) {
	w := NewWriter(failingWriter{})
	if w.Err() == nil {
		t.Fatal("header write error not captured")
	}
	w.Emit(Event{}) // must not panic
}
