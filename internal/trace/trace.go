// Package trace records the event stream of a simulation run: contact
// lifecycle, transfers, and the life of every message replica. A trace is
// the ground truth for debugging protocol behaviour and for offline
// analysis (contact statistics, per-message delivery paths) — the
// counterpart of the ONE simulator's report modules.
//
// The simulator emits events through a plain callback (sim.Config.Trace),
// so tracing costs nothing when disabled; this package provides the event
// vocabulary and two consumers — an in-memory Log and a streaming TSV
// Writer.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"vdtn/internal/bundle"
)

// Kind enumerates traceable events.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	// ContactUp: nodes A and B came into radio range.
	ContactUp Kind = iota
	// ContactDown: the A-B contact broke.
	ContactDown
	// TransferStart: A began transmitting Msg to B.
	TransferStart
	// TransferComplete: the transfer of Msg from A to B finished.
	TransferComplete
	// TransferAbort: the transfer of Msg from A to B was cut.
	TransferAbort
	// Created: node A generated Msg (destination B).
	Created
	// Delivered: Msg reached its destination B from carrier A.
	Delivered
	// RelayAccepted: B stored the replica of Msg received from A.
	RelayAccepted
	// RelayRejected: B refused the replica of Msg received from A.
	RelayRejected
	// Dropped: node A evicted Msg on buffer overflow.
	Dropped
	// Expired: Msg's TTL ran out at node A.
	Expired
)

var kindNames = [...]string{
	ContactUp:        "contact_up",
	ContactDown:      "contact_down",
	TransferStart:    "transfer_start",
	TransferComplete: "transfer_complete",
	TransferAbort:    "transfer_abort",
	Created:          "created",
	Delivered:        "delivered",
	RelayAccepted:    "relay_accepted",
	RelayRejected:    "relay_rejected",
	Dropped:          "dropped",
	Expired:          "expired",
}

// String names the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one trace record. A is the acting node (sender, carrier,
// creator); B is the counterparty where one exists (receiver, destination),
// else -1. Msg is the message id where one applies, else 0.
type Event struct {
	Time float64
	Kind Kind
	A    int
	B    int
	Msg  bundle.ID
}

// Func is the callback signature the simulator invokes per event.
type Func func(Event)

// Log is an in-memory trace consumer.
// The zero value is ready to use.
type Log struct {
	events []Event
}

// Append implements Func; install it as the simulator's trace callback:
//
//	var lg trace.Log
//	cfg.Trace = lg.Append
func (l *Log) Append(ev Event) { l.events = append(l.events, ev) }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns a copy of the recorded events, in emission order.
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Count returns how many events of kind k were recorded.
func (l *Log) Count(k Kind) int {
	n := 0
	for _, ev := range l.events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// OfMessage returns the events touching message id, in order — the
// replica's life across the network.
func (l *Log) OfMessage(id bundle.ID) []Event {
	var out []Event
	for _, ev := range l.events {
		if ev.Msg == id {
			out = append(out, ev)
		}
	}
	return out
}

// WriteTSV renders the log as tab-separated rows:
// time, kind, a, b, msg.
func (l *Log) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time\tkind\ta\tb\tmsg"); err != nil {
		return err
	}
	for _, ev := range l.events {
		if _, err := fmt.Fprintf(w, "%.3f\t%s\t%d\t%d\t%s\n",
			ev.Time, ev.Kind, ev.A, ev.B, ev.Msg); err != nil {
			return err
		}
	}
	return nil
}

// ParseTSV reads back the TSV format produced by WriteTSV / Writer, so
// traces recorded in one session can be analyzed offline in another
// (cmd/traceview). The header row is required; unknown kinds fail loudly.
func ParseTSV(text string) ([]Event, error) {
	kindByName := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		kindByName[name] = Kind(k)
	}
	var events []Event
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || !strings.HasPrefix(strings.TrimSpace(lines[0]), "time\tkind") {
		return nil, fmt.Errorf("trace: missing TSV header")
	}
	for i, raw := range lines[1:] {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 columns, got %d", i+2, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time %q", i+2, fields[0])
		}
		kind, ok := kindByName[fields[1]]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", i+2, fields[1])
		}
		a, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad node %q", i+2, fields[2])
		}
		b, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad node %q", i+2, fields[3])
		}
		msgText := strings.TrimPrefix(fields[4], "M")
		msg, err := strconv.ParseInt(msgText, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad message id %q", i+2, fields[4])
		}
		events = append(events, Event{Time: t, Kind: kind, A: a, B: b, Msg: bundle.ID(msg)})
	}
	return events, nil
}

// Writer is a streaming trace consumer emitting one TSV row per event.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter returns a streaming consumer; install its Emit as the trace
// callback. The header row is written immediately.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: w}
	_, tw.err = fmt.Fprintln(w, "time\tkind\ta\tb\tmsg")
	return tw
}

// Emit implements Func.
func (t *Writer) Emit(ev Event) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, "%.3f\t%s\t%d\t%d\t%s\n",
		ev.Time, ev.Kind, ev.A, ev.B, ev.Msg)
}

// Err returns the first write error, if any.
func (t *Writer) Err() error { return t.err }
