// Package buffer implements the message store of a VDTN node: a
// capacity-bounded buffer whose overflow behaviour is delegated to a
// dropping policy (internal/core) and whose contents are handed to
// scheduling policies at contact opportunities.
//
// The store keeps replicas in insertion order and indexes them by message
// id; all iteration orders are deterministic so that simulation runs are
// reproducible bit-for-bit.
package buffer

import (
	"fmt"

	"vdtn/internal/bundle"
	"vdtn/internal/core"
	"vdtn/internal/units"
)

// Store is one node's message buffer. The zero value is not usable;
// use NewStore.
type Store struct {
	capacity units.Bytes
	used     units.Bytes
	byID     map[bundle.ID]int // id -> index into order
	order    []*bundle.Message // insertion order, nil-free
	onExpire func(now float64, dead []*bundle.Message)
}

// SetExpireHook installs fn to be called with every batch of replicas
// removed by Expire. The simulator uses it to account TTL deaths exactly,
// no matter which code path (router decision points or the periodic sweep)
// triggered the expiry.
func (s *Store) SetExpireHook(fn func(now float64, dead []*bundle.Message)) { s.onExpire = fn }

// NewStore returns an empty buffer with the given capacity in bytes.
// It panics on non-positive capacity.
func NewStore(capacity units.Bytes) *Store {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: non-positive capacity %d", capacity))
	}
	return &Store{
		capacity: capacity,
		byID:     make(map[bundle.ID]int),
	}
}

// Capacity returns the configured capacity in bytes.
func (s *Store) Capacity() units.Bytes { return s.capacity }

// Used returns the bytes currently occupied.
func (s *Store) Used() units.Bytes { return s.used }

// Free returns the bytes currently available.
func (s *Store) Free() units.Bytes { return s.capacity - s.used }

// Len returns the number of stored replicas.
func (s *Store) Len() int { return len(s.order) }

// Occupancy returns the fill fraction in [0, 1].
func (s *Store) Occupancy() float64 {
	return float64(s.used) / float64(s.capacity)
}

// Has reports whether a replica of id is stored.
func (s *Store) Has(id bundle.ID) bool {
	_, ok := s.byID[id]
	return ok
}

// Get returns the stored replica of id, if any.
func (s *Store) Get(id bundle.ID) (*bundle.Message, bool) {
	i, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return s.order[i], true
}

// Messages returns the stored replicas in insertion order. The slice is
// freshly allocated; the replicas are shared.
func (s *Store) Messages() []*bundle.Message {
	out := make([]*bundle.Message, len(s.order))
	copy(out, s.order)
	return out
}

// Add stores m, evicting victims chosen by drop until m fits. It returns
// the evicted replicas (in eviction order) and whether m was stored.
//
// Add refuses — returning (nil, false) without evicting anything — if a
// replica of the same message is already stored, or if m alone exceeds the
// whole buffer capacity (the ONE simulator's behaviour: an oversized bundle
// never justifies flushing the node).
func (s *Store) Add(now float64, m *bundle.Message, drop core.DropPolicy) (evicted []*bundle.Message, ok bool) {
	if m == nil {
		panic("buffer: Add nil message")
	}
	if s.Has(m.ID) {
		return nil, false
	}
	if m.Size > s.capacity {
		return nil, false
	}
	for s.used+m.Size > s.capacity {
		if drop == nil {
			return evicted, false
		}
		v := drop.Victim(now, s.order)
		if v < 0 || v >= len(s.order) {
			panic(fmt.Sprintf("buffer: drop policy %s returned victim %d of %d", drop.Name(), v, len(s.order)))
		}
		evicted = append(evicted, s.removeAt(v))
	}
	s.byID[m.ID] = len(s.order)
	s.order = append(s.order, m)
	s.used += m.Size
	return evicted, true
}

// Remove deletes and returns the replica of id, or nil if absent.
func (s *Store) Remove(id bundle.ID) *bundle.Message {
	i, ok := s.byID[id]
	if !ok {
		return nil
	}
	return s.removeAt(i)
}

// removeAt removes the replica at index i in insertion order.
func (s *Store) removeAt(i int) *bundle.Message {
	m := s.order[i]
	copy(s.order[i:], s.order[i+1:])
	s.order[len(s.order)-1] = nil
	s.order = s.order[:len(s.order)-1]
	delete(s.byID, m.ID)
	for j := i; j < len(s.order); j++ {
		s.byID[s.order[j].ID] = j
	}
	s.used -= m.Size
	return m
}

// Expire removes and returns every replica whose TTL has run out at now,
// in insertion order. The simulator calls this from its periodic sweep and
// before policy decisions, so policies never see dead messages.
func (s *Store) Expire(now float64) []*bundle.Message {
	var dead []*bundle.Message
	for i := 0; i < len(s.order); {
		if s.order[i].Expired(now) {
			dead = append(dead, s.removeAt(i))
		} else {
			i++
		}
	}
	if len(dead) > 0 && s.onExpire != nil {
		s.onExpire(now, dead)
	}
	return dead
}

// check panics if internal invariants are violated; used by tests.
func (s *Store) check() {
	var used units.Bytes
	for i, m := range s.order {
		used += m.Size
		if j, ok := s.byID[m.ID]; !ok || j != i {
			panic(fmt.Sprintf("buffer: index desync for %v: byID=%d, order=%d", m.ID, j, i))
		}
	}
	if used != s.used {
		panic(fmt.Sprintf("buffer: used accounting drifted: %d != %d", used, s.used))
	}
	if len(s.byID) != len(s.order) {
		panic("buffer: map and slice length differ")
	}
	if s.used > s.capacity {
		panic("buffer: capacity exceeded")
	}
}
