package buffer

import (
	"testing"
	"testing/quick"

	"vdtn/internal/bundle"
	"vdtn/internal/core"
	"vdtn/internal/units"
	"vdtn/internal/xrand"
)

func msg(id bundle.ID, size units.Bytes, created, ttl float64) *bundle.Message {
	return bundle.New(id, 0, 1, size, created, ttl)
}

func TestNewStorePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewStore(0)
}

func TestAddAndAccounting(t *testing.T) {
	s := NewStore(units.MB(10))
	m := msg(1, units.MB(3), 0, 3600)
	evicted, ok := s.Add(0, m, core.FIFODrop{})
	if !ok || len(evicted) != 0 {
		t.Fatalf("Add = %v, %v", evicted, ok)
	}
	if s.Len() != 1 || s.Used() != units.MB(3) || s.Free() != units.MB(7) {
		t.Fatalf("accounting wrong: len=%d used=%v free=%v", s.Len(), s.Used(), s.Free())
	}
	if !s.Has(1) {
		t.Fatal("Has(1) = false")
	}
	if got, ok := s.Get(1); !ok || got != m {
		t.Fatal("Get(1) failed")
	}
	if s.Occupancy() != 0.3 {
		t.Fatalf("Occupancy = %v", s.Occupancy())
	}
	s.check()
}

func TestAddDuplicateRejected(t *testing.T) {
	s := NewStore(units.MB(10))
	s.Add(0, msg(1, units.MB(1), 0, 3600), nil)
	evicted, ok := s.Add(0, msg(1, units.MB(1), 0, 3600), nil)
	if ok || evicted != nil {
		t.Fatal("duplicate Add accepted")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate add", s.Len())
	}
}

func TestAddOversizedRejectedWithoutEviction(t *testing.T) {
	s := NewStore(units.MB(5))
	s.Add(0, msg(1, units.MB(4), 0, 3600), nil)
	evicted, ok := s.Add(0, msg(2, units.MB(6), 0, 3600), core.FIFODrop{})
	if ok {
		t.Fatal("oversized message stored")
	}
	if len(evicted) != 0 {
		t.Fatalf("oversized add evicted %d messages", len(evicted))
	}
	if !s.Has(1) {
		t.Fatal("existing message flushed by oversized add")
	}
}

func TestEvictionFIFO(t *testing.T) {
	s := NewStore(units.MB(5))
	s.Add(100, withReceived(msg(1, units.MB(2), 0, 3600), 100), core.FIFODrop{})
	s.Add(200, withReceived(msg(2, units.MB(2), 0, 3600), 200), core.FIFODrop{})
	// 1 MB free; adding 3 MB must evict M1 then M2 (oldest first).
	evicted, ok := s.Add(300, msg(3, units.MB(3), 0, 3600), core.FIFODrop{})
	if !ok {
		t.Fatal("add failed")
	}
	if len(evicted) != 1 || evicted[0].ID != 1 {
		t.Fatalf("evicted %v, want [M1]", evicted)
	}
	if !s.Has(2) || !s.Has(3) || s.Has(1) {
		t.Fatal("wrong survivors")
	}
	s.check()
}

func TestEvictionLifetimeASC(t *testing.T) {
	s := NewStore(units.MB(4))
	// M1 expires at 3600, M2 at 1800 (sooner), both 2 MB.
	s.Add(0, msg(1, units.MB(2), 0, 3600), core.LifetimeASCDrop{})
	s.Add(0, msg(2, units.MB(2), 0, 1800), core.LifetimeASCDrop{})
	evicted, ok := s.Add(10, msg(3, units.MB(2), 10, 7200), core.LifetimeASCDrop{})
	if !ok {
		t.Fatal("add failed")
	}
	if len(evicted) != 1 || evicted[0].ID != 2 {
		t.Fatalf("evicted %v, want [M2] (soonest expiry)", evicted)
	}
	s.check()
}

func TestEvictionMultipleVictims(t *testing.T) {
	s := NewStore(units.MB(4))
	s.Add(0, withReceived(msg(1, units.MB(1), 0, 3600), 1), core.FIFODrop{})
	s.Add(0, withReceived(msg(2, units.MB(1), 0, 3600), 2), core.FIFODrop{})
	s.Add(0, withReceived(msg(3, units.MB(1), 0, 3600), 3), core.FIFODrop{})
	evicted, ok := s.Add(10, msg(4, units.MB(3), 0, 3600), core.FIFODrop{})
	if !ok {
		t.Fatal("add failed")
	}
	if len(evicted) != 2 || evicted[0].ID != 1 || evicted[1].ID != 2 {
		t.Fatalf("evicted %v, want [M1 M2]", evicted)
	}
	s.check()
}

func TestAddWithoutDropPolicyFailsOnOverflow(t *testing.T) {
	s := NewStore(units.MB(2))
	s.Add(0, msg(1, units.MB(2), 0, 3600), nil)
	_, ok := s.Add(0, msg(2, units.MB(1), 0, 3600), nil)
	if ok {
		t.Fatal("overflow add without policy succeeded")
	}
	if !s.Has(1) || s.Has(2) {
		t.Fatal("store mutated by failed add")
	}
}

func TestRemove(t *testing.T) {
	s := NewStore(units.MB(10))
	s.Add(0, msg(1, units.MB(1), 0, 3600), nil)
	s.Add(0, msg(2, units.MB(2), 0, 3600), nil)
	got := s.Remove(1)
	if got == nil || got.ID != 1 {
		t.Fatalf("Remove(1) = %v", got)
	}
	if s.Has(1) || s.Used() != units.MB(2) {
		t.Fatal("remove accounting wrong")
	}
	if s.Remove(99) != nil {
		t.Fatal("Remove of absent id returned a message")
	}
	s.check()
}

func TestMessagesInsertionOrderSnapshot(t *testing.T) {
	s := NewStore(units.MB(10))
	for i := 1; i <= 5; i++ {
		s.Add(0, msg(bundle.ID(i), units.MB(1), 0, 3600), nil)
	}
	snap := s.Messages()
	for i, m := range snap {
		if m.ID != bundle.ID(i+1) {
			t.Fatalf("snapshot order: %v", snap)
		}
	}
	// Mutating the snapshot slice must not affect the store.
	snap[0] = nil
	if !s.Has(1) {
		t.Fatal("snapshot aliased store internals")
	}
}

func TestExpire(t *testing.T) {
	s := NewStore(units.MB(10))
	s.Add(0, msg(1, units.MB(1), 0, 100), nil)  // expires at 100
	s.Add(0, msg(2, units.MB(1), 0, 500), nil)  // expires at 500
	s.Add(0, msg(3, units.MB(1), 50, 100), nil) // expires at 150
	dead := s.Expire(200)
	if len(dead) != 2 || dead[0].ID != 1 || dead[1].ID != 3 {
		t.Fatalf("Expire(200) = %v, want [M1 M3]", dead)
	}
	if !s.Has(2) || s.Len() != 1 {
		t.Fatal("survivor wrong")
	}
	if more := s.Expire(200); len(more) != 0 {
		t.Fatalf("second Expire removed %v", more)
	}
	s.check()
}

func TestExpireBoundaryInclusive(t *testing.T) {
	s := NewStore(units.MB(1))
	s.Add(0, msg(1, units.KB(500), 0, 100), nil)
	if dead := s.Expire(99.999); len(dead) != 0 {
		t.Fatal("expired before deadline")
	}
	if dead := s.Expire(100); len(dead) != 1 {
		t.Fatal("not expired at deadline")
	}
}

func withReceived(m *bundle.Message, at float64) *bundle.Message {
	m.ReceivedAt = at
	return m
}

// Property: whatever sequence of adds/removes/expiries happens, the buffer
// never exceeds capacity and its internal accounting stays consistent.
func TestPropertyCapacityInvariant(t *testing.T) {
	if err := quick.Check(func(seed uint64, opsRaw uint8) bool {
		rng := xrand.New(seed)
		ops := int(opsRaw)%200 + 20
		s := NewStore(units.MB(10))
		now := 0.0
		nextID := bundle.ID(1)
		policies := []core.DropPolicy{core.FIFODrop{}, core.LifetimeASCDrop{}, nil}
		for i := 0; i < ops; i++ {
			now += rng.Float64() * 60
			switch rng.IntN(4) {
			case 0, 1: // add
				size := units.Bytes(rng.UniformInt(100_000, 4_000_000))
				ttl := 60 + rng.Float64()*10000
				m := bundle.New(nextID, 0, 1, size, now, ttl)
				nextID++
				s.Add(now, m, policies[rng.IntN(len(policies))])
			case 2: // remove random known id
				if s.Len() > 0 {
					victim := s.Messages()[rng.IntN(s.Len())]
					s.Remove(victim.ID)
				}
			case 3: // expire
				s.Expire(now)
			}
			if s.Used() > s.Capacity() {
				return false
			}
			s.check()
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add either stores the message or leaves the store unchanged
// (failed adds are atomic), and eviction frees exactly enough space.
func TestPropertyAddAtomicity(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		s := NewStore(units.MB(5))
		now := 0.0
		for i := 1; i <= 50; i++ {
			now += 1
			size := units.Bytes(rng.UniformInt(500_000, 6_000_000))
			m := bundle.New(bundle.ID(i), 0, 1, size, now, 3600)
			before := s.Len()
			usedBefore := s.Used()
			evicted, ok := s.Add(now, m, core.LifetimeASCDrop{})
			if ok {
				if !s.Has(m.ID) {
					return false
				}
				var freed units.Bytes
				for _, e := range evicted {
					freed += e.Size
				}
				if s.Used() != usedBefore-freed+m.Size {
					return false
				}
			} else {
				// Rejected: nothing changed.
				if s.Len() != before || s.Used() != usedBefore || len(evicted) != 0 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddEvict(b *testing.B) {
	rng := xrand.New(1)
	s := NewStore(units.MB(100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		size := units.Bytes(rng.UniformInt(500_000, 2_000_000))
		m := bundle.New(bundle.ID(i+1), 0, 1, size, float64(i), 3600)
		s.Add(float64(i), m, core.LifetimeASCDrop{})
	}
}
