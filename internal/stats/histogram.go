package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket frequency count over a closed value range,
// used to render delay distributions in reports.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
	under  int // values below lo
	over   int // values above hi
}

// NewHistogram returns a histogram with n equal buckets spanning [lo, hi].
// It panics on a non-positive bucket count or an empty range.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: empty histogram range [%v, %v]", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, n)}
}

// Add records one observation. Out-of-range values are tallied separately
// and reported by Outliers, not silently clamped.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.lo:
		h.under++
	case v > h.hi:
		h.over++
	default:
		i := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
		if i == len(h.counts) { // v == hi lands in the last bucket
			i--
		}
		h.counts[i]++
	}
}

// AddAll records every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, v := range xs {
		h.Add(v)
	}
}

// Total returns the number of observations including outliers.
func (h *Histogram) Total() int { return h.total }

// Outliers returns how many observations fell below and above the range.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// Bucket returns the count and bounds of bucket i.
func (h *Histogram) Bucket(i int) (count int, lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.counts[i], h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Render draws an ASCII bar chart, one row per bucket, scaled so the
// fullest bucket spans width characters. format renders bucket bounds
// (e.g. a minutes formatter).
func (h *Histogram) Render(width int, format func(float64) string) string {
	if width <= 0 {
		width = 40
	}
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.1f", v) }
	}
	peak := 0
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for i := range h.counts {
		count, lo, hi := h.Bucket(i)
		bar := 0
		if peak > 0 {
			bar = int(math.Round(float64(count) / float64(peak) * float64(width)))
		}
		fmt.Fprintf(&sb, "%10s-%-10s %6d %s\n",
			format(lo), format(hi), count, strings.Repeat("#", bar))
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&sb, "%21s %6d below, %d above range\n", "", h.under, h.over)
	}
	return sb.String()
}
