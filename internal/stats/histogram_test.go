package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"vdtn/internal/xrand"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(0, 100, 4)
	for _, v := range []float64{5, 30, 55, 80, 99, 100} {
		h.Add(v)
	}
	wantCounts := []int{1, 1, 1, 3} // 100 lands in the last bucket
	for i, want := range wantCounts {
		if got, _, _ := h.Bucket(i); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	h := NewHistogram(10, 50, 4)
	_, lo, hi := h.Bucket(1)
	if lo != 20 || hi != 30 {
		t.Fatalf("bucket 1 bounds = [%v, %v], want [20, 30]", lo, hi)
	}
	if h.Buckets() != 4 {
		t.Fatalf("Buckets = %d", h.Buckets())
	}
}

func TestHistogramOutliers(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.AddAll([]float64{-5, 3, 12, 100})
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Fatalf("outliers = %d below, %d above", under, over)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d (outliers must count)", h.Total())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 60, 3)
	h.AddAll([]float64{5, 5, 5, 25, 45, 70})
	out := h.Render(10, nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 buckets + outlier row
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "##########") {
		t.Fatalf("fullest bucket not full width:\n%s", out)
	}
	if !strings.Contains(lines[3], "1 above range") {
		t.Fatalf("outlier row missing:\n%s", out)
	}
}

func TestHistogramRenderEmpty(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	if out := h.Render(20, nil); !strings.Contains(out, "0 ") {
		t.Fatalf("empty render:\n%s", out)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero buckets": func() { NewHistogram(0, 10, 0) },
		"empty range":  func() { NewHistogram(10, 10, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: bucket counts plus outliers always sum to the total, for any
// input distribution.
func TestHistogramConservation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		h := NewHistogram(0, 1000, 1+rng.IntN(20))
		n := int(nRaw)
		for i := 0; i < n; i++ {
			h.Add(rng.Float64()*1500 - 250)
		}
		sum := 0
		for i := 0; i < h.Buckets(); i++ {
			c, _, _ := h.Bucket(i)
			sum += c
		}
		under, over := h.Outliers()
		return sum+under+over == h.Total() && h.Total() == n
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
