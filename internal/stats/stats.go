// Package stats collects and summarizes simulation metrics: the per-run
// ledger of message events, the derived performance metrics the paper
// reports (message average delay, message delivery probability), and
// multi-seed aggregation with confidence intervals for the experiment
// harness.
package stats

import (
	"fmt"
	"math"
	"sort"

	"vdtn/internal/units"
)

// Ledger accumulates message events during one simulation run.
// The zero value is ready to use.
type Ledger struct {
	// Created counts generated messages (the paper's "messages sent").
	Created int
	// CreateRejected counts messages refused by the source buffer at
	// creation (they count as Created but can never deliver).
	CreateRejected int
	// DeliveredUnique counts first arrivals at the destination — the
	// numerator of the paper's delivery probability.
	DeliveredUnique int
	// DeliveredDuplicate counts repeat arrivals at a destination.
	DeliveredDuplicate int
	// RelayAccepted counts completed transfers stored by a relay.
	RelayAccepted int
	// RelayRejected counts completed transfers the receiver refused
	// (duplicate, expired on arrival, or unstorable).
	RelayRejected int
	// Dropped counts buffer-overflow evictions.
	Dropped int
	// Expired counts replicas removed by TTL expiry.
	Expired int
	// Aborted counts transfers cut by contact loss.
	Aborted int

	delays []float64 // per unique delivery, seconds
	hops   []int     // per unique delivery
}

// MsgCreated records a generated message; rejected notes whether the source
// buffer refused it.
func (l *Ledger) MsgCreated(rejected bool) {
	l.Created++
	if rejected {
		l.CreateRejected++
	}
}

// MsgDelivered records an arrival at the destination. It returns whether
// this was the first (unique) delivery.
func (l *Ledger) MsgDelivered(delay float64, hopCount int, first bool) {
	if !first {
		l.DeliveredDuplicate++
		return
	}
	l.DeliveredUnique++
	l.delays = append(l.delays, delay)
	l.hops = append(l.hops, hopCount)
}

// MsgRelayed records a completed non-delivery transfer.
func (l *Ledger) MsgRelayed(accepted bool) {
	if accepted {
		l.RelayAccepted++
	} else {
		l.RelayRejected++
	}
}

// MsgDropped records n buffer-overflow evictions.
func (l *Ledger) MsgDropped(n int) { l.Dropped += n }

// MsgExpired records n TTL expiries.
func (l *Ledger) MsgExpired(n int) { l.Expired += n }

// MsgAborted records an aborted transfer.
func (l *Ledger) MsgAborted() { l.Aborted++ }

// Report freezes the ledger into the run metrics.
func (l *Ledger) Report() Report {
	r := Report{
		Created:            l.Created,
		CreateRejected:     l.CreateRejected,
		Delivered:          l.DeliveredUnique,
		DeliveredDuplicate: l.DeliveredDuplicate,
		RelayAccepted:      l.RelayAccepted,
		RelayRejected:      l.RelayRejected,
		Dropped:            l.Dropped,
		Expired:            l.Expired,
		Aborted:            l.Aborted,
	}
	if l.Created > 0 {
		r.DeliveryProbability = float64(l.DeliveredUnique) / float64(l.Created)
	}
	if len(l.delays) > 0 {
		r.AvgDelay = mean(l.delays)
		r.MedianDelay = percentile(l.delays, 50)
		r.P95Delay = percentile(l.delays, 95)
		r.AvgHops = meanInt(l.hops)
	}
	transfers := l.RelayAccepted + l.RelayRejected + l.DeliveredUnique + l.DeliveredDuplicate
	if l.DeliveredUnique > 0 {
		r.OverheadRatio = float64(transfers-l.DeliveredUnique) / float64(l.DeliveredUnique)
	}
	return r
}

// Report is the frozen outcome of one simulation run. The JSON names are
// part of the experiment harness's machine-readable artifact schema.
type Report struct {
	Created            int `json:"created"`
	CreateRejected     int `json:"create_rejected"`
	Delivered          int `json:"delivered"`
	DeliveredDuplicate int `json:"delivered_duplicate"`
	RelayAccepted      int `json:"relay_accepted"`
	RelayRejected      int `json:"relay_rejected"`
	Dropped            int `json:"dropped"`
	Expired            int `json:"expired"`
	Aborted            int `json:"aborted"`

	// DeliveryProbability is unique deliveries / created messages
	// (the paper's Figures 5, 7, 8).
	DeliveryProbability float64 `json:"delivery_probability"`
	// AvgDelay is the mean creation-to-delivery time in seconds over
	// delivered messages (the paper's Figures 4, 6, 9).
	AvgDelay    float64 `json:"avg_delay_sec"`
	MedianDelay float64 `json:"median_delay_sec"`
	P95Delay    float64 `json:"p95_delay_sec"`
	AvgHops     float64 `json:"avg_hops"`
	// OverheadRatio is (transfers - unique deliveries) / unique
	// deliveries, the ONE simulator's network-cost metric.
	OverheadRatio float64 `json:"overhead_ratio"`
}

// String renders a human-readable block, used by the CLI tools.
func (r Report) String() string {
	return fmt.Sprintf(
		"created        %6d (rejected at source: %d)\n"+
			"delivered      %6d (duplicates: %d)\n"+
			"delivery prob  %9.3f\n"+
			"avg delay      %9s\n"+
			"median delay   %9s\n"+
			"p95 delay      %9s\n"+
			"avg hops       %9.2f\n"+
			"relays         %6d accepted, %d rejected\n"+
			"dropped        %6d   expired %6d   aborted %6d\n"+
			"overhead ratio %9.2f",
		r.Created, r.CreateRejected,
		r.Delivered, r.DeliveredDuplicate,
		r.DeliveryProbability,
		units.FormatDuration(r.AvgDelay),
		units.FormatDuration(r.MedianDelay),
		units.FormatDuration(r.P95Delay),
		r.AvgHops,
		r.RelayAccepted, r.RelayRejected,
		r.Dropped, r.Expired, r.Aborted,
		r.OverheadRatio)
}

// --- multi-seed aggregation ----------------------------------------------

// Summary aggregates one scalar metric over replicated runs.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation
	Min  float64
	Max  float64
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// Summarize aggregates xs. It panics on an empty sample: an experiment
// that produced no runs is a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	s.Mean = mean(xs)
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs with linear
// interpolation, without modifying xs. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	return percentile(xs, p)
}

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func meanInt(xs []int) float64 {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// percentile returns the p-th percentile (0..100) with linear
// interpolation, leaving xs unmodified.
func percentile(xs []float64, p float64) float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	if len(tmp) == 1 {
		return tmp[0]
	}
	rank := p / 100 * float64(len(tmp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return tmp[lo]
	}
	frac := rank - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}
