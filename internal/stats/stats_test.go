package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"vdtn/internal/xrand"
)

func TestLedgerDeliveryProbability(t *testing.T) {
	var l Ledger
	for i := 0; i < 10; i++ {
		l.MsgCreated(false)
	}
	l.MsgDelivered(100, 2, true)
	l.MsgDelivered(200, 3, true)
	l.MsgDelivered(300, 1, true)
	r := l.Report()
	if r.DeliveryProbability != 0.3 {
		t.Fatalf("DeliveryProbability = %v, want 0.3", r.DeliveryProbability)
	}
	if r.AvgDelay != 200 {
		t.Fatalf("AvgDelay = %v, want 200", r.AvgDelay)
	}
	if r.AvgHops != 2 {
		t.Fatalf("AvgHops = %v, want 2", r.AvgHops)
	}
}

func TestLedgerDuplicateDeliveriesExcluded(t *testing.T) {
	var l Ledger
	l.MsgCreated(false)
	l.MsgDelivered(100, 1, true)
	l.MsgDelivered(500, 4, false) // duplicate: must not affect delay stats
	r := l.Report()
	if r.Delivered != 1 || r.DeliveredDuplicate != 1 {
		t.Fatalf("delivered=%d dup=%d", r.Delivered, r.DeliveredDuplicate)
	}
	if r.AvgDelay != 100 {
		t.Fatalf("AvgDelay polluted by duplicate: %v", r.AvgDelay)
	}
}

func TestLedgerEmptyRun(t *testing.T) {
	var l Ledger
	r := l.Report()
	if r.DeliveryProbability != 0 || r.AvgDelay != 0 || r.OverheadRatio != 0 {
		t.Fatalf("empty run produced non-zero metrics: %+v", r)
	}
}

func TestOverheadRatio(t *testing.T) {
	var l Ledger
	l.MsgCreated(false)
	l.MsgCreated(false)
	// 2 deliveries, 8 accepted relays => (10-2)/2 = 4.
	l.MsgDelivered(10, 1, true)
	l.MsgDelivered(20, 1, true)
	for i := 0; i < 8; i++ {
		l.MsgRelayed(true)
	}
	if r := l.Report(); r.OverheadRatio != 4 {
		t.Fatalf("OverheadRatio = %v, want 4", r.OverheadRatio)
	}
}

func TestCounters(t *testing.T) {
	var l Ledger
	l.MsgCreated(true)
	l.MsgDropped(3)
	l.MsgExpired(2)
	l.MsgAborted()
	l.MsgRelayed(false)
	r := l.Report()
	if r.CreateRejected != 1 || r.Dropped != 3 || r.Expired != 2 || r.Aborted != 1 || r.RelayRejected != 1 {
		t.Fatalf("counters wrong: %+v", r)
	}
}

func TestReportString(t *testing.T) {
	var l Ledger
	l.MsgCreated(false)
	l.MsgDelivered(90, 2, true)
	s := l.Report().String()
	for _, want := range []string{"delivery prob", "avg delay", "1m30s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{50, 25},
		{100, 40},
		{25, 17.5},
	}
	for _, c := range cases {
		if got := percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile([]float64{7}, 95); got != 7 {
		t.Fatalf("percentile of singleton = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("percentile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Fatalf("Std = %v, want 2", s.Std)
	}
	ci := s.CI95()
	want := 1.96 * 2 / math.Sqrt(3)
	if math.Abs(ci-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", ci, want)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{5})
	if s.Mean != 5 || s.Std != 0 || s.CI95() != 0 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Summarize did not panic")
		}
	}()
	Summarize(nil)
}

// Property: mean lies within [min, max], std >= 0, and summarizing a
// constant sample gives zero spread.
func TestSummarizeProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*1000 - 500
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 || s.Std < 0 {
			return false
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = 42
		}
		cs := Summarize(c)
		return cs.Std == 0 && cs.Mean == 42
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
