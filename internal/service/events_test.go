package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestHubFanOutOrderAndSeq(t *testing.T) {
	h := newHub("j1")
	a, b := h.subscribe(), h.subscribe()
	for i := 0; i < 10; i++ {
		h.publish(Event{Type: "cell_started"})
	}
	h.close()
	for name, sub := range map[string]*subscriber{"a": a, "b": b} {
		var seqs []int64
		for ev := range sub.ch {
			if ev.Job != "j1" {
				t.Fatalf("%s: event job = %q", name, ev.Job)
			}
			seqs = append(seqs, ev.Seq)
		}
		if len(seqs) != 10 {
			t.Fatalf("%s: got %d events, want 10", name, len(seqs))
		}
		for i, s := range seqs {
			if s != int64(i+1) {
				t.Fatalf("%s: seq[%d] = %d, want %d", name, i, s, i+1)
			}
		}
	}
}

func TestHubSlowReaderDropsWithNotice(t *testing.T) {
	h := newHub("j1")
	sub := h.subscribe()
	// Overfill the bounded buffer without draining: the overflow must be
	// dropped, never block the publisher.
	const overflow = 5
	for i := 0; i < subBuffer+overflow; i++ {
		h.publish(Event{Type: "cell_started"})
	}
	if len(sub.ch) != subBuffer {
		t.Fatalf("buffered %d events, want %d", len(sub.ch), subBuffer)
	}
	// Drain, then let one more event through: the reader first learns
	// how much it lost, then resumes the live stream with a Seq gap.
	for i := 0; i < subBuffer; i++ {
		ev := <-sub.ch
		if ev.Seq != int64(i+1) {
			t.Fatalf("pre-drop seq = %d, want %d", ev.Seq, i+1)
		}
	}
	h.publish(Event{Type: "cell_finished"})
	notice := <-sub.ch
	if notice.Type != "dropped" || notice.Dropped != overflow {
		t.Fatalf("notice = %+v, want dropped=%d", notice, overflow)
	}
	live := <-sub.ch
	if live.Type != "cell_finished" || live.Seq != int64(subBuffer+overflow+1) {
		t.Fatalf("post-drop event = %+v, want seq %d", live, subBuffer+overflow+1)
	}
	h.close()
	if _, ok := <-sub.ch; ok {
		t.Fatal("channel still open after hub close")
	}
}

func TestHubCloseAndLateSubscribe(t *testing.T) {
	h := newHub("j1")
	sub := h.subscribe()
	h.close()
	if _, ok := <-sub.ch; ok {
		t.Fatal("subscriber channel not closed by hub close")
	}
	if late := h.subscribe(); late != nil {
		t.Fatal("subscribe after close must return nil")
	}
	h.publish(Event{Type: "state"}) // must be a no-op, not a panic
	h.close()                       // idempotent
}

func TestHubUnsubscribeClosesChannel(t *testing.T) {
	h := newHub("j1")
	sub := h.subscribe()
	h.unsubscribe(sub)
	if _, ok := <-sub.ch; ok {
		t.Fatal("unsubscribed channel still open")
	}
	h.publish(Event{Type: "state"}) // detached: no panic on closed channel
	h.unsubscribe(sub)              // idempotent
	h.close()
}

// TestHubConcurrentPublishSubscribe races publishers against subscriber
// churn — the -race leg for the fan-out path.
func TestHubConcurrentPublishSubscribe(t *testing.T) {
	h := newHub("j1")
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.publish(Event{Type: "cell_started"})
			}
		}()
	}
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sub := h.subscribe()
			if sub == nil {
				return
			}
			for i := 0; i < 50; i++ {
				select {
				case _, ok := <-sub.ch:
					if !ok {
						return
					}
				default:
				}
			}
			h.unsubscribe(sub)
		}(s)
	}
	wg.Wait()
	h.close()
}

// TestHubPublishNeverBlocks pins the no-backpressure contract with a
// subscriber nobody ever drains: publishing far past the buffer must
// complete (and count drops) rather than deadlock the sweep.
func TestHubPublishNeverBlocks(t *testing.T) {
	h := newHub("j1")
	sub := h.subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < subBuffer*10; i++ {
			h.publish(Event{Type: fmt.Sprintf("e%d", i)})
		}
	}()
	<-done
	h.mu.Lock()
	dropped := sub.dropped
	h.mu.Unlock()
	if dropped != subBuffer*9 {
		t.Fatalf("dropped = %d, want %d", dropped, subBuffer*9)
	}
	h.close()
}
