// Package service turns the experiments Runner into a long-running
// sweep-as-a-service backend: submitted experiment specs become durable,
// observable, cancellable, crash-resumable jobs.
//
// The pieces compose the seams earlier layers already provide:
//
//   - Store persists each job as a directory of atomic snapshots
//     (spec.json, meta.json) plus the sweep's streaming results.jsonl —
//     the exact artifact cmd/experiments -out-jsonl writes, byte for
//     byte, because both drive the same JSONLSink.
//   - Manager is the scheduler: a FIFO queue drained by one loop
//     goroutine running one sweep at a time under the job's
//     TotalParallelism budget, with per-job cooperative cancellation
//     (the Runner's context) and crash recovery — on open, every job
//     that was queued or running when the previous process died is
//     re-admitted, and its results.jsonl is picked back up through
//     ReadJSONLPrefix/ResumeFrom, so a kill -9 mid-sweep finishes
//     byte-identical to an uninterrupted run.
//   - Hub fans the Runner's serialized Observer callbacks out to any
//     number of event subscribers with bounded buffers: a slow reader
//     loses events (and is told how many) instead of stalling the sweep.
//   - Server exposes it all as the HTTP/JSON API cmd/vdtnd serves; see
//     docs/SERVICE.md for the wire reference.
package service

import (
	"time"

	"vdtn/internal/experiments"
)

// State is a job's lifecycle state. Queued and running are live states;
// done, failed and cancelled are terminal.
type State string

const (
	// StateQueued: admitted, waiting for the scheduler.
	StateQueued State = "queued"
	// StateRunning: the scheduler is executing the sweep.
	StateRunning State = "running"
	// StateDone: every cell completed; results.jsonl is complete.
	StateDone State = "done"
	// StateFailed: a cell (or the sweep machinery) failed; Meta.Error
	// carries the coordinates.
	StateFailed State = "failed"
	// StateCancelled: cancelled by a client (DELETE); the completed
	// prefix of results.jsonl is valid data.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final: terminal jobs never run
// again and their event streams are closed.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Options are a job's run options — the JSON face of the
// experiments.Options knobs a sweep accepts, carried in the POST /v1/jobs
// envelope and persisted in meta.json so a restarted daemon resumes the
// job under identical options. Worker-count knobs (Workers, ScanWorkers,
// TotalParallelism) never affect the result stream's bytes — the same
// rule that keeps them out of the JSONL header and every cache key — so
// a resume after editing them is still byte-identical.
type Options struct {
	// Seeds are the replication seeds; empty uses the spec's own list.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Scale multiplies the simulated duration; 0 uses the spec's own.
	Scale float64 `json:"scale,omitempty"`
	// Workers bounds sweep parallelism; 0 = GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// ScanWorkers sets the per-cell parallel scan fan-out; 0 = serial.
	ScanWorkers int `json:"scan_workers,omitempty"`
	// TotalParallelism caps workers × scan workers; 0 = GOMAXPROCS.
	TotalParallelism int `json:"total_parallelism,omitempty"`
	// Metric overrides the experiment's default metric (must name a
	// known metric; it becomes part of the stream header).
	Metric string `json:"metric,omitempty"`
	// CacheDir persists recorded contact traces in this directory,
	// shared across jobs that name the same one.
	CacheDir string `json:"cache_dir,omitempty"`
}

// runOptions translates the wire options into the Runner's.
func (o Options) runOptions() experiments.Options {
	return experiments.Options{
		Seeds:            o.Seeds,
		Scale:            o.Scale,
		Workers:          o.Workers,
		ScanWorkers:      o.ScanWorkers,
		TotalParallelism: o.TotalParallelism,
	}
}

// Meta is a job's durable record, the meta.json snapshot and the JSON
// body job queries return. The scheduler rewrites it atomically at every
// state transition; per-cell progress (Done) is additionally folded in
// live from memory for running jobs.
type Meta struct {
	// ID is the job handle ("j000001", ...); IDs are sequential, so job
	// order on disk is admission order.
	ID string `json:"id"`
	// State is the lifecycle state.
	State State `json:"state"`
	// Experiment and Title identify the sweep (from the spec).
	Experiment string `json:"experiment"`
	Title      string `json:"title,omitempty"`
	// Options are the run options the job was submitted with.
	Options Options `json:"options"`
	// Cells is the sweep's total cell count; Done counts completed
	// cells (live for running jobs, final for terminal ones).
	Cells int `json:"cells"`
	Done  int `json:"done"`
	// Resumed counts the cells the latest admission recovered from an
	// interrupted run's results.jsonl instead of re-simulating.
	Resumed int `json:"resumed,omitempty"`
	// Restarts counts daemon restarts that re-admitted this job.
	Restarts int `json:"restarts,omitempty"`
	// Error carries a failed job's reason (a failing cell's
	// coordinates), or the cancellation note.
	Error string `json:"error,omitempty"`
	// SubmittedAt / StartedAt / FinishedAt stamp the lifecycle;
	// ElapsedSec is the last run attempt's wall-clock seconds.
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	ElapsedSec  float64    `json:"elapsed_sec,omitempty"`
}
