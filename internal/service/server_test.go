package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// startServer serves the API for a fresh manager over dir.
func startServer(t *testing.T, dir string) (*Manager, *httptest.Server) {
	t.Helper()
	m := openManager(t, dir)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return m, srv
}

func httpJSON(t *testing.T, method, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d; body:\n%s", method, url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s %s response: %v\n%s", method, url, err, data)
		}
	}
}

// waitStateHTTP polls GET /v1/jobs/{id} until the job is terminal.
func waitStateHTTP(t *testing.T, base, id string, timeout time.Duration) Meta {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var meta Meta
		httpJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, http.StatusOK, &meta)
		if meta.State.Terminal() {
			return meta
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, meta.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerSubmitBareSpecAndEnvelope(t *testing.T) {
	m, srv := startServer(t, t.TempDir())

	// Bare spec — the `curl -d @spec.json` path.
	var bare Meta
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(tinySpec), http.StatusCreated, &bare)
	if bare.ID != "j000001" || bare.Cells != 4 || bare.Experiment != "svc-tiny" {
		t.Fatalf("bare submit meta = %+v", bare)
	}

	// Envelope with options.
	env := fmt.Sprintf(`{"spec": %s, "options": {"seeds": [7], "workers": 2, "metric": "avg_delay_min"}}`, tinySpec)
	var wrapped Meta
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(env), http.StatusCreated, &wrapped)
	if wrapped.ID != "j000002" || wrapped.Cells != 2 {
		t.Fatalf("envelope submit meta = %+v (want 2 cells: 1 series × 2 xs × 1 seed)", wrapped)
	}
	if wrapped.Options.Metric != "avg_delay_min" || len(wrapped.Options.Seeds) != 1 {
		t.Fatalf("envelope options not applied: %+v", wrapped.Options)
	}

	// Rejections: malformed spec, unknown metric, oversized body.
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(`{"sweep": [`), http.StatusBadRequest, nil)
	badMetric := fmt.Sprintf(`{"spec": %s, "options": {"metric": "nope"}}`, tinySpec)
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(badMetric), http.StatusBadRequest, nil)
	huge := bytes.Repeat([]byte("x"), maxSpecBytes+1)
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", huge, http.StatusRequestEntityTooLarge, nil)

	// Both accepted jobs run to done; the envelope job's stream reflects
	// its overridden seeds and metric.
	fin1 := waitStateHTTP(t, srv.URL, bare.ID, 60*time.Second)
	fin2 := waitStateHTTP(t, srv.URL, wrapped.ID, 60*time.Second)
	if fin1.State != StateDone || fin2.State != StateDone {
		t.Fatalf("finals: %+v / %+v", fin1, fin2)
	}
	got, err := os.ReadFile(m.ResultsPath(wrapped.ID))
	if err != nil {
		t.Fatal(err)
	}
	want := refStream(t, []byte(tinySpec), Options{Seeds: []uint64{7}, Metric: "avg_delay_min"})
	if !bytes.Equal(got, want) {
		t.Fatal("envelope job stream differs from reference under the same options")
	}
}

func TestServerListStatusAndUnknown(t *testing.T) {
	_, srv := startServer(t, t.TempDir())
	var list struct {
		Jobs []Meta `json:"jobs"`
	}
	httpJSON(t, http.MethodGet, srv.URL+"/v1/jobs", nil, http.StatusOK, &list)
	if len(list.Jobs) != 0 {
		t.Fatalf("fresh daemon lists jobs: %+v", list.Jobs)
	}

	var meta Meta
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(tinySpec), http.StatusCreated, &meta)
	httpJSON(t, http.MethodGet, srv.URL+"/v1/jobs", nil, http.StatusOK, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != meta.ID {
		t.Fatalf("list = %+v", list.Jobs)
	}

	// Unknown job: 404 with a JSON error on every per-job route.
	for _, route := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/events", "/v1/jobs/j999999/results"} {
		var e struct {
			Error string `json:"error"`
		}
		httpJSON(t, http.MethodGet, srv.URL+route, nil, http.StatusNotFound, &e)
		if e.Error == "" {
			t.Fatalf("%s: empty error body", route)
		}
	}
	httpJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/j999999", nil, http.StatusNotFound, nil)

	waitStateHTTP(t, srv.URL, meta.ID, 60*time.Second)
}

func TestServerResultsArtifact(t *testing.T) {
	m, srv := startServer(t, t.TempDir())
	var meta Meta
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(tinySpec), http.StatusCreated, &meta)
	final := waitStateHTTP(t, srv.URL, meta.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("final = %+v", final)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + meta.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	served, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(m.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, onDisk) {
		t.Fatal("served artifact differs from results.jsonl on disk")
	}
	if want := refStream(t, []byte(tinySpec), Options{}); !bytes.Equal(served, want) {
		t.Fatal("served artifact differs from the uninterrupted reference stream")
	}
}

// TestServerEventStream reads the NDJSON stream end to end: the snapshot
// line first, then lifecycle events through the terminal state, then EOF.
func TestServerEventStream(t *testing.T) {
	_, srv := startServer(t, t.TempDir())
	// Park a slow first job in the scheduler so the second is still
	// queued when the stream attaches — over HTTP roundtrips a tiny
	// parked job could finish before the GET lands.
	park := fmt.Sprintf(`{"spec": %s, "options": {"workers": 1}}`, slowSpec)
	var first, meta Meta
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(park), http.StatusCreated, &first)
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(tinySpec), http.StatusCreated, &meta)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + meta.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no snapshot line: %v", sc.Err())
	}
	var snap struct {
		Job Meta `json:"job"`
	}
	if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot line: %v\n%s", err, sc.Text())
	}
	if snap.Job.ID != meta.ID {
		t.Fatalf("snapshot = %+v", snap.Job)
	}

	var types []string
	var lastSeq int64
	cellsFinished := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line: %v\n%s", err, sc.Text())
		}
		if ev.Job != meta.ID {
			t.Fatalf("event for wrong job: %+v", ev)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		types = append(types, ev.Type)
		if ev.Type == "cell_finished" {
			cellsFinished++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cellsFinished != 4 {
		t.Fatalf("saw %d cell_finished events, want 4 (%v)", cellsFinished, types)
	}
	if len(types) == 0 || types[len(types)-1] != "state" {
		t.Fatalf("stream did not end with the terminal state event: %v", types)
	}

	// The now-terminal job streams the snapshot line only.
	waitStateHTTP(t, srv.URL, meta.ID, 10*time.Second)
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + meta.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(strings.TrimRight(string(body), "\n"), "\n"); n != 0 {
		t.Fatalf("terminal stream has %d extra lines:\n%s", n+1, body)
	}

	waitStateHTTP(t, srv.URL, first.ID, 60*time.Second)
}

func TestServerCancel(t *testing.T) {
	_, srv := startServer(t, t.TempDir())
	env := fmt.Sprintf(`{"spec": %s, "options": {"workers": 1}}`, slowSpec)
	var long, queued Meta
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(env), http.StatusCreated, &long)
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(tinySpec), http.StatusCreated, &queued)

	// The queued job cancels instantly.
	var got Meta
	httpJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+queued.ID, nil, http.StatusOK, &got)
	if got.State != StateCancelled {
		t.Fatalf("queued DELETE state = %s", got.State)
	}
	// The running one winds down cooperatively.
	httpJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+long.ID, nil, http.StatusOK, nil)
	final := waitStateHTTP(t, srv.URL, long.ID, 30*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("running DELETE final = %+v", final)
	}
}

// TestServerEventStreamClientDisconnect pins that an abandoned events
// connection detaches its subscriber rather than leaking it.
func TestServerEventStreamClientDisconnect(t *testing.T) {
	m, srv := startServer(t, t.TempDir())
	env := fmt.Sprintf(`{"spec": %s, "options": {"workers": 1}}`, slowSpec)
	var meta Meta
	httpJSON(t, http.MethodPost, srv.URL+"/v1/jobs", []byte(env), http.StatusCreated, &meta)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/jobs/"+meta.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the snapshot line, then hang up mid-stream.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no snapshot line: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()

	// The handler's deferred stop() must run; poll until the subscriber
	// set drains.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m.mu.Lock()
		e := m.jobs[meta.ID]
		e.hub.mu.Lock()
		n := len(e.hub.subs)
		e.hub.mu.Unlock()
		m.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still attached after disconnect", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := m.Cancel(meta.ID); err != nil {
		t.Fatal(err)
	}
	waitStateHTTP(t, srv.URL, meta.ID, 30*time.Second)
}
