package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"sync"
	"time"

	"vdtn/internal/experiments"
)

// Config configures a Manager.
type Config struct {
	// DataDir roots the durable job store (<DataDir>/jobs/<id>/...).
	DataDir string
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Progress, when non-nil, echoes each running sweep as a live
	// single-line cell counter (experiments.ProgressObserver) — the
	// daemon's -progress flag.
	Progress io.Writer
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// jobEntry is a job's in-memory state alongside its durable Meta: the
// event hub, the live progress counter, and — while running — the
// cancellation handle.
type jobEntry struct {
	meta       Meta
	hub        *hub
	cancel     context.CancelFunc // non-nil while running
	userCancel bool               // DELETE seen: cancellation is terminal, not a restartable interruption
	done       int                // live completed-cell count while running
}

// Manager is the sweep scheduler: submitted jobs enter a FIFO queue
// drained by one loop goroutine running one sweep at a time (each sweep
// already parallelizes internally under its TotalParallelism budget;
// running several at once would just fight over the same cores and
// interleave their cache recordings).
//
// Durability contract: every state transition snapshots meta.json
// atomically, and the results stream is the same crash-tolerant JSONL
// the CLI writes. Open re-admits any job found queued or running — the
// unfinished work of a previous process, whether it exited cleanly
// (Close) or died hard — and the runner picks the stream up through
// ReadJSONLPrefix/ResumeFrom, so the finished artifact is byte-identical
// to an uninterrupted run's no matter how many times the daemon died.
type Manager struct {
	store *Store
	cfg   Config

	ctx      context.Context
	cancel   context.CancelFunc
	wake     chan struct{} // buffered(1): submit signal to the loop
	loopDone chan struct{}

	mu    sync.Mutex
	jobs  map[string]*jobEntry
	queue []string // queued job IDs, FIFO
}

// Open opens the job store under cfg.DataDir, re-admits unfinished jobs
// (in job-ID order — admission order), and starts the scheduler.
func Open(cfg Config) (*Manager, error) {
	store, err := OpenStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	metas, err := store.List()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		store:    store,
		cfg:      cfg,
		ctx:      ctx,
		cancel:   cancel,
		wake:     make(chan struct{}, 1),
		loopDone: make(chan struct{}),
		jobs:     make(map[string]*jobEntry),
	}
	for _, meta := range metas {
		e := &jobEntry{meta: meta, hub: newHub(meta.ID)}
		if meta.State.Terminal() {
			// Nothing will publish to a terminal job's hub again.
			e.hub.close()
			m.jobs[meta.ID] = e
			continue
		}
		// Unfinished work from the previous process: running means it was
		// interrupted mid-sweep (count the restart), queued means it never
		// started. Either way it queues again, and the run itself resumes
		// from whatever prefix of results.jsonl survived.
		if meta.State == StateRunning {
			e.meta.Restarts++
		}
		e.meta.State = StateQueued
		e.meta.Error = ""
		if err := store.WriteMeta(e.meta); err != nil {
			cancel()
			return nil, err
		}
		m.jobs[meta.ID] = e
		m.queue = append(m.queue, meta.ID)
		cfg.logf("service: re-admitted job %s (%s, restarts %d)", meta.ID, meta.Experiment, e.meta.Restarts)
	}
	// The scheduler: one goroutine, owned by this Manager, exits on
	// Close. It serializes sweep execution — determinism within a sweep
	// is the Runner's contract, this goroutine only orders whole jobs.
	go m.loop() //vdtnlint:detgo single scheduler goroutine joined by Close via loopDone; job order is FIFO by queue, not goroutine timing
	return m, nil
}

// Close stops the scheduler: the running sweep (if any) is cancelled
// cooperatively and left in state "running" on disk, so the next Open
// re-admits and resumes it. Close blocks until the loop goroutine has
// exited; the Manager is unusable afterwards.
func (m *Manager) Close() {
	m.cancel()
	<-m.loopDone
	// End any event streams still attached to non-terminal jobs so their
	// readers unblock.
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.jobs {
		e.hub.close()
	}
}

// Submit validates and admits a new job: the spec must decode
// (experiments.LoadSpec) and the metric override, if any, must name a
// known metric. The spec bytes are persisted verbatim — they are what
// every (re-)admission re-decodes, so the job's cell grid is stable
// across restarts.
func (m *Manager) Submit(spec []byte, opts Options) (Meta, error) {
	exp, err := experiments.LoadSpec(spec)
	if err != nil {
		return Meta{}, err
	}
	exp, err = applyMetric(exp, opts.Metric)
	if err != nil {
		return Meta{}, err
	}
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = exp.Seeds
	}
	nseeds := len(seeds)
	if nseeds == 0 {
		nseeds = 1
	}
	meta := Meta{
		State:       StateQueued,
		Experiment:  exp.ID,
		Title:       exp.Title,
		Options:     opts,
		Cells:       len(exp.Scenarios) * exp.Combos() * len(exp.Xs) * nseeds,
		SubmittedAt: time.Now().UTC(),
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	id, err := m.store.NextID()
	if err != nil {
		return Meta{}, err
	}
	meta.ID = id
	if err := m.store.Create(meta, spec); err != nil {
		return Meta{}, err
	}
	m.jobs[id] = &jobEntry{meta: meta, hub: newHub(id)}
	m.queue = append(m.queue, id)
	select {
	case m.wake <- struct{}{}:
	default:
	}
	m.cfg.logf("service: job %s queued (%s, %d cells)", id, exp.ID, meta.Cells)
	return meta, nil
}

// applyMetric applies a metric override to the experiment, validating it
// against the known metric list. The override becomes part of the
// stream's header, so it is persisted with the job and re-applied
// identically on every admission.
func applyMetric(exp experiments.Experiment, metric string) (experiments.Experiment, error) {
	if metric == "" {
		return exp, nil
	}
	for _, known := range experiments.Metrics() {
		if string(known) == metric {
			exp.Metric = known
			return exp, nil
		}
	}
	return exp, fmt.Errorf("service: unknown metric %q (known: %v)", metric, experiments.Metrics())
}

// Job returns one job's Meta, with live progress folded in for running
// jobs.
func (m *Manager) Job(id string) (Meta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	if !ok {
		return Meta{}, fmt.Errorf("%w: %s", ErrNoJob, id)
	}
	return m.liveMeta(e), nil
}

// Jobs returns every job's Meta in admission (ID) order.
func (m *Manager) Jobs() []Meta {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	metas := make([]Meta, 0, len(ids))
	for _, id := range ids {
		metas = append(metas, m.liveMeta(m.jobs[id]))
	}
	return metas
}

// liveMeta snapshots a job's Meta, merging the in-memory progress of a
// running sweep. Callers hold m.mu.
func (m *Manager) liveMeta(e *jobEntry) Meta {
	meta := e.meta
	if meta.State == StateRunning {
		meta.Done = e.done
		if meta.StartedAt != nil {
			meta.ElapsedSec = time.Since(*meta.StartedAt).Seconds()
		}
	}
	return meta
}

// ResultsPath is the job's results.jsonl path (for serving the
// artifact); the file exists once the job has started running.
func (m *Manager) ResultsPath(id string) string { return m.store.ResultsPath(id) }

// Cancel cancels a job. A queued job goes terminal immediately; a
// running one is cancelled cooperatively through its context — in-flight
// cells stop at their next event-loop checkpoint, the completed prefix
// of its stream stays valid, and the job lands in state "cancelled"
// (terminal: a restart will not re-admit it). Cancelling a terminal job
// is a no-op. The returned Meta is the state after the request took
// effect — for a running job that is still "running": the sweep winds
// down asynchronously.
func (m *Manager) Cancel(id string) (Meta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	if !ok {
		return Meta{}, fmt.Errorf("%w: %s", ErrNoJob, id)
	}
	switch {
	case e.meta.State.Terminal():
		// Idempotent: already finished.
	case e.meta.State == StateQueued:
		for i, qid := range m.queue {
			if qid == id {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		now := time.Now().UTC()
		e.meta.State = StateCancelled
		e.meta.Error = "cancelled by client"
		e.meta.FinishedAt = &now
		if err := m.store.WriteMeta(e.meta); err != nil {
			return Meta{}, err
		}
		e.hub.publish(Event{Type: "state", State: StateCancelled})
		e.hub.close()
		m.cfg.logf("service: job %s cancelled while queued", id)
	case e.cancel != nil:
		e.userCancel = true
		e.cancel()
		m.cfg.logf("service: job %s cancellation requested", id)
	}
	return m.liveMeta(e), nil
}

// SubscribeEvents attaches a live event-stream reader to the job. For a
// terminal job there is nothing left to stream: the channel is nil and
// the returned Meta is the final state. Otherwise the caller must invoke
// the cancel function when done reading; the channel closes when the job
// reaches a terminal state or the manager shuts down.
func (m *Manager) SubscribeEvents(id string) (<-chan Event, func(), Meta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	if !ok {
		return nil, nil, Meta{}, fmt.Errorf("%w: %s", ErrNoJob, id)
	}
	meta := m.liveMeta(e)
	if meta.State.Terminal() {
		return nil, nil, meta, nil
	}
	sub := e.hub.subscribe()
	if sub == nil {
		return nil, nil, meta, nil
	}
	return sub.ch, func() { e.hub.unsubscribe(sub) }, meta, nil
}

// loop is the scheduler goroutine: it drains the FIFO queue one job at
// a time until Close.
func (m *Manager) loop() {
	defer close(m.loopDone)
	for {
		if m.ctx.Err() != nil {
			return
		}
		id, ok := m.nextJob()
		if !ok {
			select {
			case <-m.ctx.Done():
				return
			case <-m.wake:
			}
			continue
		}
		m.runJob(id)
	}
}

// nextJob pops the queue head.
func (m *Manager) nextJob() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return "", false
	}
	id := m.queue[0]
	m.queue = m.queue[1:]
	return id, true
}

// runJob executes one job to a terminal state — or to daemon shutdown,
// which deliberately leaves the job's durable state "running" so the
// next Open re-admits and resumes it.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	e := m.jobs[id]
	jobCtx, cancel := context.WithCancel(m.ctx)
	e.cancel = cancel
	e.done = 0
	now := time.Now().UTC()
	e.meta.State = StateRunning
	e.meta.StartedAt = &now
	e.meta.FinishedAt = nil
	meta := e.meta
	m.mu.Unlock()
	defer cancel()

	start := time.Now()
	var err error
	if werr := m.store.WriteMeta(meta); werr != nil {
		err = werr
	} else {
		e.hub.publish(Event{Type: "state", State: StateRunning})
		m.cfg.logf("service: job %s running (%s)", id, meta.Experiment)
		err = m.executeSweep(jobCtx, e, meta)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	e.cancel = nil
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if interrupted && !e.userCancel && m.ctx.Err() != nil {
		// Daemon shutdown, not a client cancel: the job is unfinished
		// work. Its durable state stays "running", which is exactly what
		// the next Open re-admits; only the live streams end.
		e.hub.close()
		m.cfg.logf("service: job %s interrupted by shutdown; will resume on restart", id)
		return
	}
	fin := time.Now().UTC()
	e.meta.FinishedAt = &fin
	e.meta.ElapsedSec = time.Since(start).Seconds()
	e.meta.Done = e.done
	switch {
	case err == nil:
		e.meta.State = StateDone
		e.meta.Done = e.meta.Cells
	case interrupted && e.userCancel:
		e.meta.State = StateCancelled
		e.meta.Error = "cancelled by client"
	default:
		e.meta.State = StateFailed
		e.meta.Error = err.Error()
	}
	if werr := m.store.WriteMeta(e.meta); werr != nil {
		m.cfg.logf("service: job %s: writing final meta: %v", id, werr)
	}
	e.hub.publish(Event{Type: "state", State: e.meta.State, Error: e.meta.Error})
	e.hub.close()
	m.cfg.logf("service: job %s %s (%d/%d cells)", id, e.meta.State, e.meta.Done, e.meta.Cells)
}

// executeSweep runs the job's sweep through the Runner, resuming from
// whatever complete-cell prefix of results.jsonl a previous attempt left
// behind. The stream handling mirrors cmd/experiments -out-jsonl -resume
// exactly — both drive the same JSONLSink — which is what makes the
// daemon's artifact byte-identical to the CLI's for the same spec.
func (m *Manager) executeSweep(ctx context.Context, e *jobEntry, meta Meta) error {
	spec, err := m.store.ReadSpec(meta.ID)
	if err != nil {
		return err
	}
	exp, err := experiments.LoadSpec(spec)
	if err != nil {
		return err
	}
	exp, err = applyMetric(exp, meta.Options.Metric)
	if err != nil {
		return err
	}
	opt := meta.Options.runOptions()
	if meta.Options.CacheDir != "" {
		// Jobs naming the same directory share recorded traces through
		// the store's cross-process locking; Close flushes its index even
		// on failure or interruption.
		cc := &experiments.ContactCache{
			Dir:  meta.Options.CacheDir,
			Warn: func(msg string) { m.cfg.logf("service: job %s: %s", meta.ID, msg) },
		}
		opt.ContactCache = cc
		defer cc.Close()
	}

	path := m.store.ResultsPath(meta.ID)
	prefix, f, err := openResume(path, exp, opt)
	if err != nil {
		return err
	}
	resumed := 0
	if prefix != nil {
		resumed = len(prefix.Cells)
	}
	m.mu.Lock()
	e.meta.Resumed = resumed
	e.done = resumed
	m.mu.Unlock()
	if f == nil {
		// Every cell and the footer are already on disk — a crash after
		// the final flush but before the meta transition. The artifact is
		// finished; rewriting it could only risk the bytes.
		return nil
	}

	obs := []experiments.Observer{&observerAdapter{
		hub:  e.hub,
		done: resumed,
		progress: func(done int) {
			m.mu.Lock()
			e.done = done
			m.mu.Unlock()
		},
	}}
	if m.cfg.Progress != nil {
		obs = append(obs, &experiments.ProgressObserver{W: m.cfg.Progress, Resumed: resumed})
	}

	runner := experiments.Runner{
		Options:    opt,
		Observer:   multiObserver(obs),
		Sink:       experiments.NewJSONLSinkResume(f, prefix),
		ResumeFrom: prefix,
	}
	runErr := runner.Run(ctx, exp)
	if cerr := f.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	return runErr
}

// openResume opens the job's results stream positioned for this attempt:
// fresh for a first run, truncated to the validated complete-cell prefix
// for a resumed one. A complete stream (footer and all) returns a nil
// file and is never reopened — its bytes are final. A stream that does
// not match the sweep is an error — never silently overwritten — since
// it means the durable spec and the durable stream disagree.
func openResume(path string, exp experiments.Experiment, opt experiments.Options) (*experiments.SweepPrefix, *os.File, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, err
	}
	if len(data) > 0 {
		prefix, perr := experiments.ReadJSONLPrefix(data, exp, opt)
		if perr != nil {
			return nil, nil, perr
		}
		if prefix.Complete {
			return prefix, nil, nil
		}
		if prefix.Offset > 0 {
			f, oerr := os.OpenFile(path, os.O_RDWR, 0o644)
			if oerr != nil {
				return nil, nil, oerr
			}
			if terr := f.Truncate(prefix.Offset); terr != nil {
				f.Close()
				return nil, nil, terr
			}
			if _, serr := f.Seek(prefix.Offset, io.SeekStart); serr != nil {
				f.Close()
				return nil, nil, serr
			}
			return prefix, f, nil
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return nil, f, nil
}

// multiObserver fans the runner's (already serialized) observer calls
// out to several observers in order.
type multiObserver []experiments.Observer

func (mo multiObserver) SweepStarted(exp experiments.Experiment, opt experiments.Options, cells int) {
	for _, o := range mo {
		o.SweepStarted(exp, opt, cells)
	}
}

func (mo multiObserver) CellStarted(c experiments.CellID) {
	for _, o := range mo {
		o.CellStarted(c)
	}
}

func (mo multiObserver) CellFinished(c experiments.CellID, elapsed time.Duration, err error) {
	for _, o := range mo {
		o.CellFinished(c, elapsed, err)
	}
}

func (mo multiObserver) CacheEvent(ev experiments.CacheEvent) {
	for _, o := range mo {
		o.CacheEvent(ev)
	}
}

func (mo multiObserver) SweepFinished(exp experiments.Experiment, elapsed time.Duration, err error) {
	for _, o := range mo {
		o.SweepFinished(exp, elapsed, err)
	}
}
