package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// Store is the daemon's durable job store: one directory per job under
// <dir>/jobs, holding
//
//	spec.json     the submitted experiment spec, byte for byte
//	meta.json     the job's Meta snapshot
//	results.jsonl the sweep's streaming JSONL artifact
//
// spec.json and meta.json are written atomically (temp file + rename,
// the traceStore idiom), so a kill -9 can never leave a torn snapshot —
// at worst an orphaned temp file. results.jsonl is an append stream by
// design: its crash contract is ReadJSONLPrefix's (a torn tail is cut on
// resume), not atomicity. The raw spec bytes are what resumption
// re-decodes, so the job's cell grid is reconstructed from the same
// input on every admission.
type Store struct {
	dir string
}

// ErrNoJob reports a job ID with no directory in the store.
var ErrNoJob = errors.New("service: no such job")

// OpenStore opens (creating if needed) the job store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	jobs := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		return nil, fmt.Errorf("service: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// jobDir is the job's directory; it exists iff the job does.
func (s *Store) jobDir(id string) string { return filepath.Join(s.dir, "jobs", id) }

// ResultsPath is the job's streaming JSONL artifact path. The file
// appears when the job first starts running.
func (s *Store) ResultsPath(id string) string { return filepath.Join(s.jobDir(id), "results.jsonl") }

// NextID returns the next sequential job ID: one past the highest
// numeric ID present, so IDs (and therefore recovery order) follow
// admission order even across restarts.
func (s *Store) NextID() (string, error) {
	ids, err := s.ids()
	if err != nil {
		return "", err
	}
	next := 1
	for _, id := range ids {
		var n int
		if _, err := fmt.Sscanf(id, "j%06d", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return fmt.Sprintf("j%06d", next), nil
}

// ids lists the job directory names, sorted; the zero-padded sequential
// scheme makes lexicographic order admission order.
func (s *Store) ids() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("service: listing jobs: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Create persists a new job: its directory, the submitted spec bytes
// verbatim, and the initial meta snapshot.
func (s *Store) Create(meta Meta, spec []byte) error {
	dir := s.jobDir(meta.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: creating job %s: %w", meta.ID, err)
	}
	if err := writeAtomic(dir, filepath.Join(dir, "spec.json"), spec); err != nil {
		return err
	}
	return s.WriteMeta(meta)
}

// WriteMeta atomically replaces the job's meta snapshot.
func (s *Store) WriteMeta(meta Meta) error {
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding meta for %s: %w", meta.ID, err)
	}
	dir := s.jobDir(meta.ID)
	return writeAtomic(dir, filepath.Join(dir, "meta.json"), append(data, '\n'))
}

// ReadMeta loads the job's meta snapshot; ErrNoJob for an unknown ID.
func (s *Store) ReadMeta(id string) (Meta, error) {
	data, err := os.ReadFile(filepath.Join(s.jobDir(id), "meta.json"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Meta{}, fmt.Errorf("%w: %s", ErrNoJob, id)
		}
		return Meta{}, fmt.Errorf("service: reading meta for %s: %w", id, err)
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, fmt.Errorf("service: decoding meta for %s: %w", id, err)
	}
	return m, nil
}

// ReadSpec loads the job's submitted spec bytes; ErrNoJob for an
// unknown ID.
func (s *Store) ReadSpec(id string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.jobDir(id), "spec.json"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNoJob, id)
		}
		return nil, fmt.Errorf("service: reading spec for %s: %w", id, err)
	}
	return data, nil
}

// List loads every job's meta snapshot, in admission (ID) order. A job
// directory whose meta.json is missing (a crash between MkdirAll and the
// first snapshot) is skipped: it never became a job.
func (s *Store) List() ([]Meta, error) {
	ids, err := s.ids()
	if err != nil {
		return nil, err
	}
	var metas []Meta
	for _, id := range ids {
		m, err := s.ReadMeta(id)
		if errors.Is(err, ErrNoJob) {
			continue
		}
		if err != nil {
			return nil, err
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// writeAtomic writes data to path via a temp file in dir plus rename, so
// concurrent readers and a mid-write crash only ever observe the old or
// the new complete snapshot.
func writeAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".job-*")
	if err != nil {
		return fmt.Errorf("service: writing %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: writing %s: %w", path, err)
	}
	return nil
}
