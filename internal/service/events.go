package service

import (
	"sync"
	"time"

	"vdtn/internal/experiments"
)

// Event is one entry of a job's live event stream — the NDJSON lines
// GET /v1/jobs/{id}/events serves. Every Runner observer callback maps
// to one event; the daemon adds job state transitions and, for readers
// that fell behind, drop notices. Seq numbers are per job and strictly
// increasing, so a client can detect the gap a drop notice describes.
type Event struct {
	// Seq is the event's per-job sequence number, starting at 1.
	Seq int64 `json:"seq"`
	// Type is one of "state", "sweep_started", "cell_started",
	// "cell_finished", "cache", "sweep_finished", "dropped".
	Type string `json:"type"`
	// Job is the job ID.
	Job string `json:"job"`
	// State accompanies "state" events.
	State State `json:"state,omitempty"`
	// Cells is the sweep's total cell count ("sweep_started").
	Cells int `json:"cells,omitempty"`
	// Cell carries the cell's coordinates for cell events.
	Cell *EventCell `json:"cell,omitempty"`
	// ElapsedMS times cell_finished, cache and sweep_finished events.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// Error carries a failing cell's or sweep's reason.
	Error string `json:"error,omitempty"`
	// Cache classifies "cache" events: "hit", "disk-hit", "recorded";
	// Fingerprint names the trace.
	Cache       string `json:"cache,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Dropped, on a "dropped" notice, counts the events this subscriber
	// lost since its previous delivered event (bounded buffer overflow —
	// the stream resumes with the next live event, Seq showing the gap).
	Dropped int `json:"dropped,omitempty"`
}

// EventCell is a cell's coordinates in cell_started / cell_finished
// events: position plus the (series, grid, x, seed) identity.
type EventCell struct {
	Index  int                `json:"index"`
	Total  int                `json:"total"`
	Series string             `json:"series"`
	X      float64            `json:"x"`
	Grid   map[string]float64 `json:"grid,omitempty"`
	Seed   uint64             `json:"seed"`
}

// eventCell converts an observer CellID.
func eventCell(c experiments.CellID) *EventCell {
	ec := &EventCell{Index: c.Index, Total: c.Total, Series: c.Series, X: c.X, Seed: c.Seed}
	if len(c.Grid) > 0 {
		ec.Grid = make(map[string]float64, len(c.Grid))
		for _, s := range c.Grid {
			ec.Grid[s.Axis] = s.Value
		}
	}
	return ec
}

// subBuffer is each subscriber's bounded channel capacity: enough to
// ride out flushing hiccups, small enough that an abandoned connection
// holds a few KB, not a sweep's worth of events.
const subBuffer = 256

// subscriber is one event-stream reader: a bounded channel the hub
// publishes into without ever blocking, plus the count of events dropped
// while the channel was full.
type subscriber struct {
	ch      chan Event
	dropped int
}

// hub fans one job's events out to its subscribers. Publish never
// blocks: the sweep's observer callbacks run on the runner's worker
// goroutines, and a stalled HTTP reader must cost that reader events,
// never the sweep throughput. A subscriber whose channel is full
// accumulates a drop count, delivered as a "dropped" notice before its
// next successful event (one slot is kept in reserve for the notice, so
// the notice itself cannot be the drop). Closing the hub — the job
// reaching a terminal state — closes every subscriber channel, ending
// the HTTP streams.
type hub struct {
	job string

	mu     sync.Mutex
	seq    int64
	subs   map[*subscriber]struct{}
	closed bool
}

func newHub(job string) *hub {
	return &hub{job: job, subs: make(map[*subscriber]struct{})}
}

// publish assigns the event its sequence number and offers it to every
// subscriber, non-blocking.
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Seq = h.seq
	ev.Job = h.job
	for sub := range h.subs {
		if sub.dropped > 0 {
			// The reader fell behind earlier. Deliver the drop notice plus
			// this event only if both fit; otherwise keep counting.
			if cap(sub.ch)-len(sub.ch) >= 2 {
				sub.ch <- Event{Seq: ev.Seq, Type: "dropped", Job: h.job, Dropped: sub.dropped}
				sub.dropped = 0
				sub.ch <- ev
			} else {
				sub.dropped++
			}
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			sub.dropped++
		}
	}
}

// subscribe attaches a new reader; nil if the hub already closed (the
// job is terminal — there is nothing left to stream).
func (h *hub) subscribe() *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	sub := &subscriber{ch: make(chan Event, subBuffer)}
	h.subs[sub] = struct{}{}
	return sub
}

// unsubscribe detaches a reader (its HTTP request ended); the channel is
// closed so a racing publish-side send cannot strand the reader.
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; !ok {
		return
	}
	delete(h.subs, sub)
	close(sub.ch)
}

// close ends the stream for every subscriber.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// Observer adapts a job's hub into an experiments.Observer: each
// serialized Runner callback becomes one published event, and cell
// completions additionally update the job's live progress counter. The
// runner guarantees callbacks are never concurrent, so the progress
// callback needs no ordering of its own; the hub handles fan-out
// concurrency.
type observerAdapter struct {
	hub *hub
	// progress, when non-nil, receives each completed-cell count.
	progress func(done int)
	done     int
}

func (o *observerAdapter) SweepStarted(exp experiments.Experiment, opt experiments.Options, cells int) {
	o.hub.publish(Event{Type: "sweep_started", Cells: cells})
}

func (o *observerAdapter) CellStarted(c experiments.CellID) {
	o.hub.publish(Event{Type: "cell_started", Cell: eventCell(c)})
}

func (o *observerAdapter) CellFinished(c experiments.CellID, elapsed time.Duration, err error) {
	ev := Event{Type: "cell_finished", Cell: eventCell(c), ElapsedMS: elapsed.Milliseconds()}
	if err != nil {
		ev.Error = err.Error()
	} else {
		o.done++
		if o.progress != nil {
			o.progress(o.done)
		}
	}
	o.hub.publish(ev)
}

func (o *observerAdapter) CacheEvent(ev experiments.CacheEvent) {
	kind := "hit"
	switch ev.Kind {
	case experiments.CacheHitDisk:
		kind = "disk-hit"
	case experiments.CacheRecorded:
		kind = "recorded"
	}
	o.hub.publish(Event{Type: "cache", Cache: kind, Fingerprint: ev.Fingerprint, ElapsedMS: ev.Elapsed.Milliseconds()})
}

func (o *observerAdapter) SweepFinished(exp experiments.Experiment, elapsed time.Duration, err error) {
	ev := Event{Type: "sweep_finished", ElapsedMS: elapsed.Milliseconds()}
	if err != nil {
		ev.Error = err.Error()
	}
	o.hub.publish(ev)
}
