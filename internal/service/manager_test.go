package service

import (
	"bytes"
	"context"
	"os"
	"testing"
	"time"

	"vdtn/internal/experiments"
)

// tinySpec is a 4-cell sweep small enough to finish in tens of
// milliseconds — the unit-test workhorse.
const tinySpec = `{
  "name": "svc-tiny",
  "duration_hours": 0.5,
  "vehicles": 6,
  "relays": 1,
  "vehicle_buffer_mb": 5,
  "relay_buffer_mb": 10,
  "sweep": {
    "id": "svc-tiny",
    "axis": "ttl_min",
    "values": [10, 20],
    "metric": "delivery_prob",
    "seeds": [1, 2]
  },
  "series": [
    {"name": "Epidemic/FIFO", "protocol": "epidemic", "policy": "fifo"}
  ]
}`

// slowSpec runs long enough under one worker that a mid-run shutdown or
// cancel reliably lands between cells.
const slowSpec = `{
  "name": "svc-slow",
  "duration_hours": 4,
  "vehicles": 14,
  "relays": 2,
  "vehicle_buffer_mb": 10,
  "relay_buffer_mb": 20,
  "sweep": {
    "id": "svc-slow",
    "axes": [
      {"axis": "ttl_min", "values": [15, 30, 45]},
      {"axis": "copies", "values": [4, 12]}
    ],
    "metric": "delivery_prob",
    "seeds": [1, 2, 3, 4, 5, 6, 7, 8]
  },
  "series": [
    {"name": "SprayAndWait/Lifetime", "protocol": "spraywait", "policy": "lifetime"}
  ]
}`

// openManager opens a Manager over dir, failing the test on error and
// closing it on cleanup.
func openManager(t *testing.T, dir string) *Manager {
	t.Helper()
	m, err := Open(Config{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// waitState polls the job until it reaches a terminal state.
func waitState(t *testing.T, m *Manager, id string, timeout time.Duration) Meta {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		meta, err := m.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if meta.State.Terminal() {
			return meta
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, meta.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// refStream renders the reference artifact: the same spec run once,
// uninterrupted, through the same Runner/JSONLSink pipeline the daemon
// uses. Every service-produced results.jsonl must match it byte for
// byte.
func refStream(t *testing.T, spec []byte, opts Options) []byte {
	t.Helper()
	exp, err := experiments.LoadSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	exp, err = applyMetric(exp, opts.Metric)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r := experiments.Runner{Options: opts.runOptions(), Sink: experiments.NewJSONLSink(&buf)}
	if err := r.Run(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestManagerRunsJobToDone(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir)
	meta, err := m.Submit([]byte(tinySpec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "j000001" || meta.State != StateQueued || meta.Cells != 4 {
		t.Fatalf("submit meta = %+v", meta)
	}
	final := waitState(t, m, meta.ID, 30*time.Second)
	if final.State != StateDone || final.Done != 4 || final.Error != "" {
		t.Fatalf("final meta = %+v", final)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", final)
	}

	got, err := os.ReadFile(m.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if want := refStream(t, []byte(tinySpec), Options{}); !bytes.Equal(got, want) {
		t.Fatal("daemon results.jsonl differs from the uninterrupted reference stream")
	}

	// The durable snapshot agrees with the live view.
	onDisk, err := m.store.ReadMeta(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateDone || onDisk.Done != 4 {
		t.Fatalf("on-disk meta = %+v", onDisk)
	}
}

func TestManagerSubmitValidation(t *testing.T) {
	m := openManager(t, t.TempDir())
	if _, err := m.Submit([]byte(`{"sweep": {`), Options{}); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if _, err := m.Submit([]byte(tinySpec), Options{Metric: "no-such-metric"}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if len(m.Jobs()) != 0 {
		t.Fatalf("rejected submissions left jobs behind: %+v", m.Jobs())
	}
	// A valid metric override runs — and lands in the stream's header.
	meta, err := m.Submit([]byte(tinySpec), Options{Metric: "avg_delay_min"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, meta.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("final = %+v", final)
	}
	got, err := os.ReadFile(m.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	want := refStream(t, []byte(tinySpec), Options{Metric: "avg_delay_min"})
	if !bytes.Equal(got, want) {
		t.Fatal("metric-overridden stream differs from reference")
	}
}

func TestManagerFIFOOrder(t *testing.T) {
	m := openManager(t, t.TempDir())
	var ids []string
	for i := 0; i < 3; i++ {
		meta, err := m.Submit([]byte(tinySpec), Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, meta.ID)
	}
	var finals []Meta
	for _, id := range ids {
		finals = append(finals, waitState(t, m, id, 60*time.Second))
	}
	for i, f := range finals {
		if f.State != StateDone {
			t.Fatalf("job %s = %+v", f.ID, f)
		}
		// One sweep at a time, FIFO: each job starts no earlier than its
		// predecessor finished.
		if i > 0 && f.StartedAt.Before(*finals[i-1].FinishedAt) {
			t.Fatalf("job %s started %v, before %s finished %v — not FIFO single-flight",
				f.ID, f.StartedAt, finals[i-1].ID, finals[i-1].FinishedAt)
		}
	}
}

func TestManagerCancelQueuedAndRunning(t *testing.T) {
	m := openManager(t, t.TempDir())
	// Job 1 occupies the single scheduler slot for a while...
	long, err := m.Submit([]byte(slowSpec), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// ...so job 2 sits queued and its cancel is the queued path.
	queued, err := m.Submit([]byte(tinySpec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != StateCancelled {
		t.Fatalf("queued cancel state = %s", meta.State)
	}

	// Cancel the running job cooperatively; it must land terminal.
	if _, err := m.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, long.ID, 30*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("running cancel final = %+v", final)
	}
	// Idempotent on a terminal job.
	again, err := m.Cancel(long.ID)
	if err != nil || again.State != StateCancelled {
		t.Fatalf("re-cancel = %+v, %v", again, err)
	}
	// Cancelled is terminal: a restart must NOT re-admit either job.
	m.Close()
	m2 := openManager(t, m.cfg.DataDir)
	for _, id := range []string{long.ID, queued.ID} {
		got, err := m2.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != StateCancelled || got.Restarts != 0 {
			t.Fatalf("job %s after restart = %+v", id, got)
		}
	}
}

// TestManagerCrashResumeByteIdentical is the subsystem's core invariant:
// a results stream cut at an arbitrary point — simulating the file a
// kill -9 left behind, meta still saying "running" — must, after the
// store is reopened, finish byte-identical to an uninterrupted run. The
// cut matrix covers every lifecycle window: nothing flushed, header
// only, mid-cells, a torn line, all cells but no footer, and a complete
// stream (where resumption must leave the bytes untouched).
func TestManagerCrashResumeByteIdentical(t *testing.T) {
	golden := refStream(t, []byte(tinySpec), Options{})
	ends := lineEnds(golden)
	cells := 4
	if len(ends) != cells+2 {
		t.Fatalf("golden has %d lines, want %d", len(ends), cells+2)
	}
	cuts := []struct {
		name    string
		cut     int
		resumed int
	}{
		{"empty", 0, 0},
		{"header-only", ends[0], 0},
		{"one-cell", ends[1], 1},
		{"torn-line", ends[2] + 7, 2},
		{"all-cells-no-footer", ends[cells], cells},
		{"complete", len(golden), cells},
	}
	for _, tc := range cuts {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			now := time.Now().UTC()
			meta := Meta{
				ID: "j000001", State: StateRunning, Experiment: "svc-tiny",
				Cells: cells, SubmittedAt: now, StartedAt: &now,
			}
			if err := store.Create(meta, []byte(tinySpec)); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(store.ResultsPath(meta.ID), golden[:tc.cut], 0o644); err != nil {
				t.Fatal(err)
			}

			m := openManager(t, dir)
			final := waitState(t, m, meta.ID, 30*time.Second)
			if final.State != StateDone || final.Restarts != 1 {
				t.Fatalf("final = %+v, want done with 1 restart", final)
			}
			if final.Resumed != tc.resumed {
				t.Fatalf("Resumed = %d, want %d", final.Resumed, tc.resumed)
			}
			got, err := os.ReadFile(store.ResultsPath(meta.ID))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, golden) {
				t.Fatalf("resumed stream differs from golden (cut %d)", tc.cut)
			}
		})
	}
}

// lineEnds returns the byte offset just past each newline.
func lineEnds(data []byte) []int {
	var ends []int
	for i, b := range data {
		if b == '\n' {
			ends = append(ends, i+1)
		}
	}
	return ends
}

// TestManagerShutdownResume is the graceful flavor: Close mid-sweep
// leaves the job "running" on disk; reopening the same data dir
// re-admits, resumes, and finishes byte-identical.
func TestManagerShutdownResume(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := m1.Submit([]byte(slowSpec), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until at least one cell has completed, so the shutdown lands
	// genuinely mid-sweep and the resume has a non-empty prefix to keep.
	ch, stop, _, err := m1.SubscribeEvents(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ch != nil {
		deadline := time.After(60 * time.Second)
	waitCell:
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					break waitCell
				}
				if ev.Type == "cell_finished" && ev.Error == "" {
					break waitCell
				}
			case <-deadline:
				t.Fatal("no cell finished within 60s")
			}
		}
		stop()
	}
	m1.Close()

	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := store.ReadMeta(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateRunning {
		t.Fatalf("state after shutdown = %s, want running (unfinished work)", onDisk.State)
	}

	m2 := openManager(t, dir)
	final := waitState(t, m2, meta.ID, 120*time.Second)
	if final.State != StateDone || final.Restarts != 1 || final.Resumed == 0 {
		t.Fatalf("final = %+v, want done, 1 restart, resumed > 0", final)
	}
	got, err := os.ReadFile(m2.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if want := refStream(t, []byte(slowSpec), Options{}); !bytes.Equal(got, want) {
		t.Fatal("post-shutdown resumed stream differs from uninterrupted reference")
	}
}

// TestManagerEventStream checks a subscriber sees the job's lifecycle in
// order: state running, sweep_started, cells, sweep_finished, state
// done — then the channel closes.
func TestManagerEventStream(t *testing.T) {
	m := openManager(t, t.TempDir())
	// A first job occupies the scheduler so the second is still queued
	// when we subscribe — the subscription reliably sees the full
	// lifecycle rather than racing a fast sweep to the terminal state.
	if _, err := m.Submit([]byte(tinySpec), Options{}); err != nil {
		t.Fatal(err)
	}
	meta, err := m.Submit([]byte(tinySpec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch, stop, snap, err := m.SubscribeEvents(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != meta.ID {
		t.Fatalf("snapshot = %+v", snap)
	}
	if ch == nil {
		t.Fatal("no channel for a live job")
	}
	defer stop()

	var types []string
	var finished int
	deadline := time.After(60 * time.Second)
	for ch != nil {
		select {
		case ev, ok := <-ch:
			if !ok {
				ch = nil
				break
			}
			types = append(types, ev.Type)
			if ev.Type == "cell_finished" {
				finished++
				if ev.Cell == nil || ev.Cell.Total != 4 {
					t.Fatalf("cell_finished event without coordinates: %+v", ev)
				}
			}
		case <-deadline:
			t.Fatalf("stream never closed; saw %v", types)
		}
	}
	if finished != 4 {
		t.Fatalf("saw %d cell_finished events, want 4 (%v)", finished, types)
	}
	want := map[string]bool{"state": true, "sweep_started": true, "sweep_finished": true}
	for _, ty := range types {
		delete(want, ty)
	}
	if len(want) != 0 {
		t.Fatalf("missing event types %v in %v", want, types)
	}
	if last := types[len(types)-1]; last != "state" {
		t.Fatalf("stream ended with %q, want terminal state event", last)
	}

	// Subscribing to the now-terminal job yields snapshot only.
	ch2, stop2, snap2, err := m.SubscribeEvents(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ch2 != nil || stop2 != nil || !snap2.State.Terminal() {
		t.Fatalf("terminal subscribe = ch %v, snap %+v", ch2, snap2)
	}
}
