package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	id, err := s.NextID()
	if err != nil {
		t.Fatal(err)
	}
	if id != "j000001" {
		t.Fatalf("first ID = %q, want j000001", id)
	}
	spec := []byte(`{"name":"x"}`)
	now := time.Now().UTC()
	meta := Meta{ID: id, State: StateQueued, Experiment: "x", Cells: 4, SubmittedAt: now}
	if err := s.Create(meta, spec); err != nil {
		t.Fatal(err)
	}

	got, err := s.ReadMeta(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != id || got.State != StateQueued || got.Cells != 4 || !got.SubmittedAt.Equal(now) {
		t.Fatalf("meta round-trip mismatch: %+v", got)
	}
	gotSpec, err := s.ReadSpec(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotSpec) != string(spec) {
		t.Fatalf("spec bytes changed: %q", gotSpec)
	}

	// Reopen: IDs continue past existing jobs, listing is in ID order.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s2.NextID()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != "j000002" {
		t.Fatalf("next ID after reopen = %q, want j000002", id2)
	}
	meta.State = StateDone
	if err := s2.WriteMeta(meta); err != nil {
		t.Fatal(err)
	}
	metas, err := s2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].State != StateDone {
		t.Fatalf("list after update: %+v", metas)
	}
}

func TestStoreUnknownJobAndOrphanDir(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadMeta("j000009"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("ReadMeta unknown = %v, want ErrNoJob", err)
	}
	if _, err := s.ReadSpec("j000009"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("ReadSpec unknown = %v, want ErrNoJob", err)
	}

	// A directory without meta.json (crash between mkdir and the first
	// snapshot) never became a job: List skips it, NextID moves past it.
	if err := os.MkdirAll(filepath.Join(dir, "jobs", "j000003"), 0o755); err != nil {
		t.Fatal(err)
	}
	metas, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 0 {
		t.Fatalf("orphan dir listed as a job: %+v", metas)
	}
	id, err := s.NextID()
	if err != nil {
		t.Fatal(err)
	}
	if id != "j000004" {
		t.Fatalf("NextID with orphan j000003 = %q, want j000004", id)
	}
}

func TestStoreAtomicWriteLeavesNoTemps(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "j000001", State: StateQueued, SubmittedAt: time.Now().UTC()}
	if err := s.Create(meta, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		meta.Done = i
		if err := s.WriteMeta(meta); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(s.jobDir("j000001"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "spec.json" && e.Name() != "meta.json" {
			t.Fatalf("unexpected file %q after atomic writes", e.Name())
		}
	}
}
