package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
)

// maxSpecBytes bounds a POST /v1/jobs body; real specs are a few KB.
const maxSpecBytes = 4 << 20

// NewHandler returns the daemon's HTTP API over m:
//
//	POST   /v1/jobs             submit a job (spec, or {"spec":…,"options":…})
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        one job's state and progress
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/events live NDJSON event stream
//	GET    /v1/jobs/{id}/results the results.jsonl artifact
//
// See docs/SERVICE.md for the wire reference. Errors are JSON bodies
// {"error": "..."} with conventional status codes; unknown jobs are 404.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) { submitJob(m, w, r) })
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []Meta `json:"jobs"`
		}{Jobs: m.Jobs()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		meta, err := m.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, meta)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		meta, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, meta)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) { streamEvents(m, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) { serveResults(m, w, r) })
	return mux
}

// submitEnvelope is the optional POST /v1/jobs wrapper: a raw spec plus
// run options. A body without a "spec" key is treated as a bare spec
// with default options, so `curl -d @spec.json` works unwrapped.
type submitEnvelope struct {
	Spec    json.RawMessage `json:"spec"`
	Options Options         `json:"options"`
}

func submitJob(m *Manager, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeErrorStatus(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		writeErrorStatus(w, http.StatusRequestEntityTooLarge, fmt.Errorf("service: spec body over %d bytes", maxSpecBytes))
		return
	}
	spec := body
	var opts Options
	var env submitEnvelope
	if err := json.Unmarshal(body, &env); err == nil && len(env.Spec) > 0 {
		spec, opts = env.Spec, env.Options
	}
	meta, err := m.Submit(spec, opts)
	if err != nil {
		writeErrorStatus(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, meta)
}

// streamEvents serves the job's live NDJSON event stream: one snapshot
// line (the job's Meta, under "job") followed by events as they happen,
// each flushed immediately. The stream ends when the job goes terminal,
// the client disconnects, or the daemon shuts down. For an
// already-terminal job the snapshot line is the whole stream.
func streamEvents(m *Manager, w http.ResponseWriter, r *http.Request) {
	ch, stop, meta, err := m.SubscribeEvents(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if stop != nil {
		defer stop()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		Job Meta `json:"job"`
	}{Job: meta}); err != nil {
		return
	}
	rc.Flush()
	if ch == nil {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			rc.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// serveResults serves the job's results.jsonl bytes as they stand: the
// complete artifact for a done job, the completed prefix (plus footer,
// if the attempt got to write one) for anything else. 404 until the job
// has started writing.
func serveResults(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := m.Job(id); err != nil {
		writeError(w, err)
		return
	}
	f, err := os.Open(m.ResultsPath(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			writeErrorStatus(w, http.StatusNotFound, fmt.Errorf("service: job %s has no results yet", id))
			return
		}
		writeError(w, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	io.Copy(w, f)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, ErrNoJob) {
		status = http.StatusNotFound
	}
	writeErrorStatus(w, status, err)
}

func writeErrorStatus(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
