package reports

import (
	"testing"

	"vdtn/internal/roadmap"
	"vdtn/internal/sim"
	"vdtn/internal/trace"
	"vdtn/internal/units"
)

// TestAnalyzeRealRun cross-checks the offline analysis against the
// authoritative counters of a real simulation run.
func TestAnalyzeRealRun(t *testing.T) {
	var lg trace.Log
	c := sim.DefaultConfig()
	c.Seed = 5
	c.Duration = units.Hours(2)
	c.Map = roadmap.Grid(6, 6, 300)
	c.Vehicles = 12
	c.Relays = 2
	c.VehicleBuffer = units.MB(20)
	c.RelayBuffer = units.MB(50)
	c.TTL = units.Minutes(45)
	c.Trace = lg.Append

	w, err := sim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()

	a := Analyze(lg.Events(), c.Duration)

	if a.ContactCount != int(r.Contacts) {
		t.Fatalf("analysis contacts %d != run %d", a.ContactCount, r.Contacts)
	}
	if a.TransfersComplete != int(r.TransfersCompleted) {
		t.Fatalf("analysis completions %d != run %d", a.TransfersComplete, r.TransfersCompleted)
	}
	if a.Created != r.Created {
		t.Fatalf("analysis created %d != run %d", a.Created, r.Created)
	}
	if a.Delivered != r.Delivered {
		t.Fatalf("analysis delivered %d != run %d", a.Delivered, r.Delivered)
	}
	// Fates partition the created messages.
	total := a.Fates[FateDelivered] + a.Fates[FatePending] + a.Fates[FateDead]
	if total != a.Created {
		t.Fatalf("fates sum to %d, created %d", total, a.Created)
	}
	// Every delivered message reconstructs to a path that starts at a
	// vehicle and ends at its destination with >= 1 hop.
	if a.PathHops.Min < 1 {
		t.Fatalf("reconstructed path with %v hops", a.PathHops.Min)
	}
	// Contact durations are positive and bounded by the run horizon.
	if a.ContactDuration.Min < 0 || a.ContactDuration.Max > c.Duration {
		t.Fatalf("contact durations out of range: %+v", a.ContactDuration)
	}
	if len(TopPairs(lg.Events(), 3)) == 0 {
		t.Fatal("no busy pairs in a 2h run")
	}
}
