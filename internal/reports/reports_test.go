package reports

import (
	"math"
	"strings"
	"testing"

	"vdtn/internal/bundle"
	"vdtn/internal/trace"
)

// ev builds an event tersely.
func ev(t float64, k trace.Kind, a, b int, msg int64) trace.Event {
	return trace.Event{Time: t, Kind: k, A: a, B: b, Msg: bundle.ID(msg)}
}

func TestContactDurations(t *testing.T) {
	events := []trace.Event{
		ev(10, trace.ContactUp, 1, 2, 0),
		ev(40, trace.ContactDown, 1, 2, 0), // 30 s
		ev(100, trace.ContactUp, 1, 2, 0),
		ev(150, trace.ContactDown, 1, 2, 0), // 50 s, gap 60 s
		ev(900, trace.ContactUp, 3, 4, 0),   // open at horizon: 100 s
	}
	a := Analyze(events, 1000)
	if a.ContactCount != 3 {
		t.Fatalf("ContactCount = %d", a.ContactCount)
	}
	if a.ContactDuration.N != 3 {
		t.Fatalf("durations N = %d", a.ContactDuration.N)
	}
	if got := a.ContactDuration.Mean; math.Abs(got-60) > 1e-9 {
		t.Fatalf("mean duration = %v, want 60", got)
	}
	if got := a.MedianContactDuration(); got != 50 {
		t.Fatalf("median duration = %v, want 50", got)
	}
	if a.InterContact.N != 1 || a.InterContact.Mean != 60 {
		t.Fatalf("inter-contact = %+v, want single 60s gap", a.InterContact)
	}
	if got := a.MedianInterContact(); got != 60 {
		t.Fatalf("median gap = %v", got)
	}
}

func TestNoContactsNoPanic(t *testing.T) {
	a := Analyze(nil, 100)
	if a.ContactCount != 0 || a.Created != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
	if a.MedianContactDuration() != 0 || a.MedianInterContact() != 0 {
		t.Fatal("medians of empty analysis not 0")
	}
	_ = a.String() // must not panic
}

func TestTransferCounts(t *testing.T) {
	events := []trace.Event{
		ev(1, trace.TransferStart, 0, 1, 1),
		ev(2, trace.TransferComplete, 0, 1, 1),
		ev(3, trace.TransferStart, 0, 1, 2),
		ev(4, trace.TransferAbort, 0, 1, 2),
	}
	a := Analyze(events, 10)
	if a.TransfersStarted != 2 || a.TransfersComplete != 1 || a.TransfersAborted != 1 {
		t.Fatalf("transfer counts: %+v", a)
	}
}

func TestMessageFates(t *testing.T) {
	events := []trace.Event{
		// M1: created at node 0, relayed to 1, delivered to 2.
		ev(1, trace.Created, 0, 2, 1),
		ev(5, trace.TransferComplete, 0, 1, 1),
		ev(5, trace.RelayAccepted, 0, 1, 1),
		ev(9, trace.TransferComplete, 1, 2, 1),
		ev(9, trace.Delivered, 1, 2, 1),
		// M2: created, replica expired -> dead.
		ev(2, trace.Created, 3, 4, 2),
		ev(50, trace.Expired, 3, -1, 2),
		// M3: created, still sitting in a buffer -> pending.
		ev(3, trace.Created, 5, 6, 3),
	}
	a := Analyze(events, 100)
	if a.Created != 3 || a.Delivered != 1 {
		t.Fatalf("created %d delivered %d", a.Created, a.Delivered)
	}
	if a.Fates[FateDelivered] != 1 || a.Fates[FateDead] != 1 || a.Fates[FatePending] != 1 {
		t.Fatalf("fates = %v", a.Fates)
	}
}

func TestDeliveryPathReconstruction(t *testing.T) {
	// M1 travels 0 -> 3 -> 7 -> 9 (dest), with a decoy replica 0 -> 4.
	events := []trace.Event{
		ev(1, trace.Created, 0, 9, 1),
		ev(10, trace.TransferComplete, 0, 4, 1),
		ev(10, trace.RelayAccepted, 0, 4, 1),
		ev(12, trace.TransferComplete, 0, 3, 1),
		ev(12, trace.RelayAccepted, 0, 3, 1),
		ev(20, trace.TransferComplete, 3, 7, 1),
		ev(20, trace.RelayAccepted, 3, 7, 1),
		ev(30, trace.TransferComplete, 7, 9, 1),
		ev(30, trace.Delivered, 7, 9, 1),
	}
	a := Analyze(events, 100)
	path := a.DeliveryPath(1)
	want := []int{0, 3, 7, 9}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if a.PathHops.Mean != 3 {
		t.Fatalf("PathHops.Mean = %v, want 3", a.PathHops.Mean)
	}
	if a.DeliveryPath(99) != nil {
		t.Fatal("path for unknown message not nil")
	}
}

func TestDirectDeliveryPath(t *testing.T) {
	// Source meets destination directly: path is [src, dst].
	events := []trace.Event{
		ev(1, trace.Created, 5, 8, 1),
		ev(30, trace.TransferComplete, 5, 8, 1),
		ev(30, trace.Delivered, 5, 8, 1),
	}
	a := Analyze(events, 100)
	path := a.DeliveryPath(1)
	if len(path) != 2 || path[0] != 5 || path[1] != 8 {
		t.Fatalf("direct path = %v, want [5 8]", path)
	}
}

func TestTopPairs(t *testing.T) {
	events := []trace.Event{
		ev(1, trace.ContactUp, 1, 2, 0),
		ev(2, trace.ContactUp, 3, 4, 0),
		ev(3, trace.ContactDown, 1, 2, 0),
		ev(4, trace.ContactUp, 1, 2, 0),
		ev(5, trace.ContactUp, 5, 6, 0),
	}
	top := TopPairs(events, 2)
	if len(top) != 2 {
		t.Fatalf("TopPairs = %v", top)
	}
	if top[0] != [2]int{1, 2} {
		t.Fatalf("busiest pair = %v, want [1 2]", top[0])
	}
	all := TopPairs(events, 10)
	if len(all) != 3 {
		t.Fatalf("TopPairs(10) = %v", all)
	}
}

func TestStringRendering(t *testing.T) {
	events := []trace.Event{
		ev(1, trace.ContactUp, 1, 2, 0),
		ev(31, trace.ContactDown, 1, 2, 0),
		ev(2, trace.Created, 0, 2, 1),
		ev(20, trace.TransferComplete, 0, 2, 1),
		ev(20, trace.Delivered, 0, 2, 1),
	}
	s := Analyze(events, 100).String()
	for _, want := range []string{"contacts", "transfers", "messages", "delivery paths"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestFateString(t *testing.T) {
	if FateDelivered.String() != "delivered" || FatePending.String() != "pending" ||
		FateDead.String() != "dead" {
		t.Fatal("fate names wrong")
	}
	if !strings.Contains(Fate(9).String(), "Fate(9)") {
		t.Fatal("unknown fate rendering")
	}
}
