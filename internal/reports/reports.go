// Package reports derives offline analyses from a simulation trace — the
// counterpart of the ONE simulator's report modules. Given the event
// stream of a run (internal/trace), it reconstructs contact statistics
// (durations, inter-contact times), transfer outcomes, and per-message
// fates including delivery-path reconstruction.
package reports

import (
	"fmt"
	"sort"
	"strings"

	"vdtn/internal/bundle"
	"vdtn/internal/stats"
	"vdtn/internal/trace"
	"vdtn/internal/units"
)

// Fate classifies what ultimately happened to a message.
type Fate int

// Message fates.
const (
	// FateDelivered: the message reached its destination.
	FateDelivered Fate = iota
	// FatePending: undelivered, but replicas may still exist at the
	// horizon.
	FatePending
	// FateDead: undelivered and every traced replica was dropped or
	// expired.
	FateDead
)

// String names the fate.
func (f Fate) String() string {
	switch f {
	case FateDelivered:
		return "delivered"
	case FatePending:
		return "pending"
	case FateDead:
		return "dead"
	default:
		return fmt.Sprintf("Fate(%d)", int(f))
	}
}

// Analysis is the full offline report of one run.
type Analysis struct {
	// Horizon is the end-of-run time used to close open contacts.
	Horizon float64

	// ContactCount is the number of contact-up events.
	ContactCount int
	// ContactDuration summarizes contact lengths in seconds (contacts
	// still open at the horizon are closed there).
	ContactDuration stats.Summary
	// InterContact summarizes, per node pair, the gaps between one
	// contact ending and the next beginning, in seconds.
	InterContact stats.Summary

	// TransfersStarted/Completed/Aborted count transfer outcomes.
	TransfersStarted  int
	TransfersComplete int
	TransfersAborted  int

	// Created / Delivered count distinct messages; Fates maps each fate
	// to the number of messages.
	Created   int
	Delivered int
	Fates     map[Fate]int

	// PathHops summarizes reconstructed delivery-path lengths in hops.
	PathHops stats.Summary

	durations  []float64
	gaps       []float64
	delays     []float64
	pathsByMsg map[bundle.ID][]int
}

// Delays returns the creation-to-delivery time of every delivered message,
// in seconds, in message-id order. The slice is freshly allocated.
func (a *Analysis) Delays() []float64 {
	out := make([]float64, len(a.delays))
	copy(out, a.delays)
	return out
}

// MedianContactDuration returns the exact median contact length in
// seconds, or 0 if no contacts closed.
func (a *Analysis) MedianContactDuration() float64 {
	if len(a.durations) == 0 {
		return 0
	}
	return stats.Percentile(a.durations, 50)
}

// MedianInterContact returns the exact median inter-contact gap in
// seconds, or 0 if no pair met twice.
func (a *Analysis) MedianInterContact() float64 {
	if len(a.gaps) == 0 {
		return 0
	}
	return stats.Percentile(a.gaps, 50)
}

// Analyze derives the report from a run's event stream. horizon is the
// simulated end time (used to close contacts still up). Events must be in
// emission order, as trace.Log keeps them.
func Analyze(events []trace.Event, horizon float64) *Analysis {
	a := &Analysis{
		Horizon:    horizon,
		Fates:      make(map[Fate]int),
		pathsByMsg: make(map[bundle.ID][]int),
	}

	type pair [2]int
	openContacts := make(map[pair]float64) // pair -> up time
	lastDown := make(map[pair]float64)
	var durations, gaps []float64

	// Per-message bookkeeping.
	created := make(map[bundle.ID]int) // id -> source node
	createdAt := make(map[bundle.ID]float64)
	delivered := make(map[bundle.ID]bool)
	liveReplicas := make(map[bundle.ID]int)
	transfers := make(map[bundle.ID][]edge)
	deliveredVia := make(map[bundle.ID]edge)

	for _, ev := range events {
		switch ev.Kind {
		case trace.ContactUp:
			k := pair{ev.A, ev.B}
			openContacts[k] = ev.Time
			if down, ok := lastDown[k]; ok {
				gaps = append(gaps, ev.Time-down)
			}
			a.ContactCount++
		case trace.ContactDown:
			k := pair{ev.A, ev.B}
			if up, ok := openContacts[k]; ok {
				durations = append(durations, ev.Time-up)
				delete(openContacts, k)
			}
			lastDown[k] = ev.Time
		case trace.TransferStart:
			a.TransfersStarted++
		case trace.TransferComplete:
			a.TransfersComplete++
			transfers[ev.Msg] = append(transfers[ev.Msg], edge{ev.A, ev.B, ev.Time})
		case trace.TransferAbort:
			a.TransfersAborted++
		case trace.Created:
			created[ev.Msg] = ev.A
			createdAt[ev.Msg] = ev.Time
			liveReplicas[ev.Msg]++
		case trace.Delivered:
			if !delivered[ev.Msg] {
				delivered[ev.Msg] = true
				deliveredVia[ev.Msg] = edge{ev.A, ev.B, ev.Time}
			}
		case trace.RelayAccepted:
			liveReplicas[ev.Msg]++
		case trace.Dropped, trace.Expired:
			liveReplicas[ev.Msg]--
		}
	}
	// Close contacts still open at the horizon.
	for _, up := range openContacts {
		durations = append(durations, horizon-up)
	}

	a.Created = len(created)
	a.Delivered = len(delivered)
	a.durations = durations
	a.gaps = gaps
	if len(durations) > 0 {
		a.ContactDuration = stats.Summarize(durations)
	}
	if len(gaps) > 0 {
		a.InterContact = stats.Summarize(gaps)
	}

	// Fates, delays and delivery paths, in deterministic id order.
	ids := make([]bundle.ID, 0, len(created))
	for id := range created {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var hops []float64
	for _, id := range ids {
		src := created[id]
		switch {
		case delivered[id]:
			a.Fates[FateDelivered]++
			a.delays = append(a.delays, deliveredVia[id].time-createdAt[id])
			path := reconstructPath(src, deliveredVia[id], transfers[id])
			a.pathsByMsg[id] = path
			hops = append(hops, float64(len(path)-1))
		case liveReplicas[id] > 0:
			a.Fates[FatePending]++
		default:
			a.Fates[FateDead]++
		}
	}
	if len(hops) > 0 {
		a.PathHops = stats.Summarize(hops)
	}
	return a
}

// edge is one completed transfer of a message: from -> to at time.
type edge struct {
	from, to int
	time     float64
}

// reconstructPath walks transfer edges backwards from the delivering hop
// to the source. When several replicas could have fed a hop, the latest
// transfer before the hop is taken (the replica actually present). The
// returned path lists node ids source-first, destination-last.
func reconstructPath(src int, final edge, edges []edge) []int {
	path := []int{final.to, final.from}
	at, t := final.from, final.time
	for at != src {
		var best *edge
		for i := range edges {
			e := edges[i]
			if e.to == at && e.time < t && (best == nil || e.time > best.time) {
				best = &edges[i]
			}
		}
		if best == nil {
			break // trace truncated; return the partial path
		}
		at, t = best.from, best.time
		path = append(path, at)
	}
	// Reverse into source-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// DeliveryPath returns the reconstructed node path of a delivered message
// (source first, destination last), or nil if the message was not
// delivered.
func (a *Analysis) DeliveryPath(id bundle.ID) []int {
	return a.pathsByMsg[id]
}

// String renders the analysis as a readable block.
func (a *Analysis) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "contacts        %d (mean %s, median %s, max %s)\n",
		a.ContactCount,
		units.FormatDuration(a.ContactDuration.Mean),
		units.FormatDuration(a.MedianContactDuration()),
		units.FormatDuration(a.ContactDuration.Max))
	if len(a.gaps) > 0 {
		fmt.Fprintf(&sb, "inter-contact   mean %s, median %s over %d gaps\n",
			units.FormatDuration(a.InterContact.Mean),
			units.FormatDuration(a.MedianInterContact()), len(a.gaps))
	}
	fmt.Fprintf(&sb, "transfers       %d started, %d completed, %d aborted\n",
		a.TransfersStarted, a.TransfersComplete, a.TransfersAborted)
	fmt.Fprintf(&sb, "messages        %d created, %d delivered", a.Created, a.Delivered)
	fmt.Fprintf(&sb, " (%d pending, %d dead)\n", a.Fates[FatePending], a.Fates[FateDead])
	if a.Delivered > 0 {
		fmt.Fprintf(&sb, "delivery paths  %.2f hops mean, %.0f max\n",
			a.PathHops.Mean, a.PathHops.Max)
	}
	return sb.String()
}

// TopPairs returns the k node pairs with the most contacts, busiest
// first (ties by pair order).
func TopPairs(events []trace.Event, k int) [][2]int {
	counts := make(map[[2]int]int)
	for _, ev := range events {
		if ev.Kind == trace.ContactUp {
			counts[[2]int{ev.A, ev.B}]++
		}
	}
	pairs := make([][2]int, 0, len(counts))
	for p := range counts {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		ci, cj := counts[pairs[i]], counts[pairs[j]]
		if ci != cj {
			return ci > cj
		}
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	if k < len(pairs) {
		pairs = pairs[:k]
	}
	return pairs
}
