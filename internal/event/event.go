// Package event implements the discrete-event core of the simulator: a
// simulation clock and a future-event list with deterministic total order.
//
// Events are callbacks scheduled at absolute simulation times. Two events
// scheduled for the same instant fire in scheduling order (a monotonically
// increasing sequence number breaks ties), so a simulation run is a pure
// function of its inputs — the property every experiment in this repository
// leans on. Handles returned by the scheduling calls support cancellation,
// which the wireless substrate uses to abort in-flight transfers when a
// contact breaks.
package event

import (
	"container/heap"
	"fmt"
)

// Func is an event body. It runs with the clock set to the event's time.
type Func func(now float64)

// Handle identifies a scheduled event and allows cancelling it.
// A nil *Handle is inert: Cancel and Scheduled are no-ops.
type Handle struct {
	time  float64
	seq   uint64
	index int // heap index, -1 once fired or cancelled
	fn    Func
}

// Cancel removes the event from the schedule. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was actually descheduled by this call.
func (h *Handle) Cancel() bool {
	if h == nil || h.index < 0 || h.fn == nil {
		return false
	}
	h.fn = nil // break reference cycles promptly
	return true
}

// Scheduled reports whether the event is still pending.
func (h *Handle) Scheduled() bool { return h != nil && h.index >= 0 && h.fn != nil }

// Time returns the simulation time the event fires at.
func (h *Handle) Time() float64 { return h.time }

// eventQueue is a binary min-heap over (time, seq).
type eventQueue []*Handle

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	h := x.(*Handle)
	h.index = len(*q)
	*q = append(*q, h)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	h.index = -1
	*q = old[:n-1]
	return h
}

// Scheduler owns the simulation clock and the future-event list.
// The zero value is not usable; use NewScheduler.
type Scheduler struct {
	now     float64
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64 // events executed, for diagnostics
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulation time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// Len returns the number of pending events (including cancelled events not
// yet drained from the heap).
func (s *Scheduler) Len() int { return len(s.queue) }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a logic error in the calling substrate, and silently reordering
// time would invalidate an experiment.
func (s *Scheduler) At(t float64, fn Func) *Handle {
	if fn == nil {
		panic("event: At with nil func")
	}
	if t < s.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", t, s.now))
	}
	h := &Handle{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, h)
	return h
}

// After schedules fn d seconds from now. Negative d panics.
func (s *Scheduler) After(d float64, fn Func) *Handle {
	return s.At(s.now+d, fn)
}

// Every schedules fn at start and then every interval seconds until the
// scheduler stops or the returned stop function is called. interval must be
// positive. fn observes the tick time via its argument.
func (s *Scheduler) Every(start, interval float64, fn Func) (stop func()) {
	if interval <= 0 {
		panic("event: Every with non-positive interval")
	}
	stopped := false
	var tick Func
	tick = func(now float64) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			s.At(now+interval, tick)
		}
	}
	s.At(start, tick)
	return func() { stopped = true }
}

// Step fires the single earliest pending event, advancing the clock to its
// time. It reports false if no events remain.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		h := heap.Pop(&s.queue).(*Handle)
		if h.fn == nil { // cancelled
			continue
		}
		s.now = h.time
		fn := h.fn
		h.fn = nil
		s.fired++
		fn(s.now)
		return true
	}
	return false
}

// RunUntil executes events in order until the clock would pass horizon or
// the event list drains or Stop is called. On return the clock is at
// min(horizon, last event time); if the horizon cut execution short, the
// clock is advanced to exactly horizon and the remaining events stay queued.
func (s *Scheduler) RunUntil(horizon float64) {
	s.RunUntilCheck(horizon, 0, nil)
}

// RunUntilCheck is RunUntil with a cooperative cancellation checkpoint:
// when check is non-nil it is consulted before the first event and then
// after every stride fired events (stride <= 0 means every event); a true
// return abandons execution between two events — never inside one — with
// the remaining events still queued and the clock at the last fired
// event's time. It reports whether check cut the run short. Because
// events fire in a deterministic total order, everything executed before
// the cut is a prefix of what an uninterrupted run would execute.
func (s *Scheduler) RunUntilCheck(horizon float64, stride uint64, check func() bool) bool {
	if horizon < s.now {
		panic(fmt.Sprintf("event: RunUntil(%v) before now %v", horizon, s.now))
	}
	if stride == 0 {
		stride = 1
	}
	if check != nil && check() {
		return true
	}
	s.stopped = false
	var fired uint64
	for !s.stopped {
		// Peek for the next live event.
		var next *Handle
		for len(s.queue) > 0 {
			top := s.queue[0]
			if top.fn == nil {
				heap.Pop(&s.queue)
				continue
			}
			next = top
			break
		}
		if next == nil || next.time > horizon {
			break
		}
		s.Step()
		fired++
		if check != nil && fired%stride == 0 && check() {
			return true
		}
	}
	if s.now < horizon {
		s.now = horizon
	}
	return false
}

// Run executes events until the list drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
// It is intended to be called from inside an event body.
func (s *Scheduler) Stop() { s.stopped = true }
