package event

import "testing"

// TestRunUntilCheckStops: the checkpoint cuts execution between events at
// the requested stride, leaving the remaining events queued and the clock
// at the last fired event.
func TestRunUntilCheckStops(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	for i := 1; i <= 10; i++ {
		tm := float64(i)
		s.At(tm, func(now float64) { fired = append(fired, now) })
	}
	stop := false
	cut := s.RunUntilCheck(100, 3, func() bool { return stop || len(fired) >= 6 })
	if !cut {
		t.Fatal("check did not cut the run")
	}
	// Stride 3: the check fires after events 3, 6, ... so the cut lands
	// exactly at 6 fired events.
	if len(fired) != 6 {
		t.Fatalf("fired %d events before the cut, want 6", len(fired))
	}
	if s.Now() != 6 {
		t.Fatalf("clock at %v after the cut, want 6 (the last fired event)", s.Now())
	}
	if s.Len() == 0 {
		t.Fatal("remaining events were drained by the cut")
	}

	// Resuming without the stop condition completes normally and advances
	// the clock to the horizon.
	if cut := s.RunUntilCheck(100, 3, func() bool { return false }); cut {
		t.Fatal("check cut a run it always approved")
	}
	if len(fired) != 10 || s.Now() != 100 {
		t.Fatalf("resume fired %d events, clock %v", len(fired), s.Now())
	}
}

// TestRunUntilCheckImmediate: a check true before the first event fires
// nothing.
func TestRunUntilCheckImmediate(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(1, func(float64) { ran = true })
	if cut := s.RunUntilCheck(10, 1, func() bool { return true }); !cut {
		t.Fatal("immediate check did not cut")
	}
	if ran || s.Now() != 0 {
		t.Fatalf("immediate cut still ran events (now %v)", s.Now())
	}
}

// TestRunUntilCheckNilCheck: a nil check behaves exactly like RunUntil.
func TestRunUntilCheckNilCheck(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.At(1, func(float64) { n++ })
	s.At(2, func(float64) { n++ })
	if cut := s.RunUntilCheck(5, 0, nil); cut {
		t.Fatal("nil check cut the run")
	}
	if n != 2 || s.Now() != 5 {
		t.Fatalf("nil-check run fired %d events, clock %v", n, s.Now())
	}
}
