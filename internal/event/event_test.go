package event

import (
	"sort"
	"testing"
	"testing/quick"

	"vdtn/internal/xrand"
)

func TestFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		s.At(tm, func(now float64) { got = append(got, now) })
	}
	s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func(float64) { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := NewScheduler()
	s.At(10, func(now float64) {
		if now != 10 {
			t.Fatalf("event saw now=%v, want 10", now)
		}
		if s.Now() != 10 {
			t.Fatalf("scheduler Now()=%v inside event", s.Now())
		}
	})
	s.Run()
	if s.Now() != 10 {
		t.Fatalf("final Now() = %v", s.Now())
	}
}

func TestAfterRelative(t *testing.T) {
	s := NewScheduler()
	var at float64
	s.At(5, func(now float64) {
		s.After(2.5, func(now2 float64) { at = now2 })
	})
	s.Run()
	if at != 7.5 {
		t.Fatalf("After fired at %v, want 7.5", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func(float64) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func(float64) {})
}

func TestNilFuncPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("nil func did not panic")
		}
	}()
	s.At(1, nil)
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	h := s.At(5, func(float64) { fired = true })
	if !h.Scheduled() {
		t.Fatal("handle not scheduled")
	}
	if !h.Cancel() {
		t.Fatal("first Cancel returned false")
	}
	if h.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if h.Scheduled() {
		t.Fatal("cancelled handle still scheduled")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromInsideEvent(t *testing.T) {
	s := NewScheduler()
	fired := false
	var h *Handle
	s.At(1, func(float64) { h.Cancel() })
	h = s.At(2, func(float64) { fired = true })
	s.Run()
	if fired {
		t.Fatal("event cancelled at t=1 still fired at t=2")
	}
}

func TestNilHandleSafe(t *testing.T) {
	var h *Handle
	if h.Cancel() {
		t.Fatal("nil handle Cancel returned true")
	}
	if h.Scheduled() {
		t.Fatal("nil handle Scheduled returned true")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		s.At(tm, func(now float64) { fired = append(fired, now) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events: %v", len(fired), fired)
	}
	if s.Now() != 3 {
		t.Fatalf("clock at %v after RunUntil(3)", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("continuation fired %d events total", len(fired))
	}
	if s.Now() != 10 {
		t.Fatalf("clock at %v after RunUntil(10), want horizon", s.Now())
	}
}

func TestRunUntilExactHorizonInclusive(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(5, func(float64) { fired = true })
	s.RunUntil(5)
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestStopFromEvent(t *testing.T) {
	s := NewScheduler()
	count := 0
	s.At(1, func(float64) { count++ })
	s.At(2, func(float64) { count++; s.Stop() })
	s.At(3, func(float64) { count++ })
	s.Run()
	if count != 2 {
		t.Fatalf("Stop did not halt run: fired %d", count)
	}
	// A subsequent Run resumes.
	s.Run()
	if count != 3 {
		t.Fatalf("resume after Stop fired %d total", count)
	}
}

func TestEvery(t *testing.T) {
	s := NewScheduler()
	var ticks []float64
	s.Every(0, 10, func(now float64) { ticks = append(ticks, now) })
	s.RunUntil(35)
	want := []float64{0, 10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestEveryStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	var stop func()
	stop = s.Every(0, 1, func(now float64) {
		n++
		if n == 3 {
			stop()
		}
	})
	s.RunUntil(100)
	if n != 3 {
		t.Fatalf("recurring event fired %d times after stop at 3", n)
	}
}

func TestEveryBadIntervalPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	s.Every(0, 0, func(float64) {})
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var chain Func
	chain = func(now float64) {
		depth++
		if depth < 100 {
			s.After(1, chain)
		}
	}
	s.At(0, chain)
	s.Run()
	if depth != 100 {
		t.Fatalf("chained scheduling reached depth %d, want 100", depth)
	}
	if s.Now() != 99 {
		t.Fatalf("clock = %v, want 99", s.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.At(float64(i), func(float64) {})
	}
	h := s.At(10, func(float64) {})
	h.Cancel()
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5 (cancelled events don't count)", s.Fired())
	}
}

// Property: with random times, execution order is always sorted by time and
// ties fire in scheduling order.
func TestPropertyTotalOrder(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		rng := xrand.New(seed)
		s := NewScheduler()
		type rec struct {
			time float64
			seq  int
		}
		var fired []rec
		for i := 0; i < n; i++ {
			i := i
			tm := float64(rng.IntN(20)) // coarse times force ties
			s.At(tm, func(now float64) { fired = append(fired, rec{now, i}) })
		}
		s.Run()
		if len(fired) != n {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].time < fired[i-1].time {
				return false
			}
			if fired[i].time == fired[i-1].time && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	rng := xrand.New(1)
	times := make([]float64, 1024)
	for i := range times {
		times[i] = rng.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewScheduler()
		for _, tm := range times {
			s.At(tm, func(float64) {})
		}
		s.Run()
	}
}
