package lockorder_test

import (
	"testing"

	"vdtn/internal/lint/linttest"
	"vdtn/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "vdtn/internal/experiments")
}
