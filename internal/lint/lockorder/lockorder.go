// Package lockorder implements the vdtnlint analyzer enforcing documented
// lock hierarchies — concretely, the trace store's shard → mu → root
// order from internal/experiments/store.go.
//
// The store's own GC comment spells out the stakes: put holds its shard
// flock while touching the index under s.mu, so a GC (or heal) helper
// that takes a shard flock while holding s.mu deadlocks two runners
// sharing a cache directory. That inversion type-checks, builds, and
// passes every test that doesn't race two processes over one directory —
// the million-node regime is exactly where it would finally fire.
//
// The analyzer classifies acquisitions through the lintcfg.LockOrder
// spec (lock-returning helper functions, sync.Mutex fields), summarizes
// which classes every function in the package may acquire (transitively,
// within the package), and then walks each function body in source
// order tracking what is held: any acquisition — direct or through a
// callee — of a class whose rank is not strictly above every held
// class's rank is flagged.
//
// Approximations, chosen to keep the model honest on this codebase:
// function literals are scanned as independent functions with an empty
// held set (and do not contribute to summaries), and a deferred call to
// anything other than an unlock is summary-checked at the defer site.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"

	"vdtn/internal/lint"
	"vdtn/internal/lint/lintcfg"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "lockorder",
	Doc:       "flag lock acquisitions that invert a documented lock hierarchy (trace store: shard → mu → root)",
	Directive: "lockorder-ok",
	AppliesTo: func(path string) bool {
		for _, p := range lintcfg.LockOrder.Packages {
			if path == p {
				return true
			}
		}
		return false
	},
	Run: run,
}

type classSet map[*lintcfg.LockClass]bool

type analysis struct {
	pass    *lint.Pass
	spec    *lintcfg.LockOrderSpec
	decls   map[*types.Func]*ast.FuncDecl
	acquire map[*types.Func]classSet // transitive, within the package
}

func run(pass *lint.Pass) error {
	a := &analysis{
		pass:    pass,
		spec:    &lintcfg.LockOrder,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		acquire: make(map[*types.Func]classSet),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				a.decls[fn] = fd
			}
		}
	}
	a.summarize()
	for fn, fd := range a.decls {
		if a.exempt(fn) {
			continue
		}
		s := &scanner{a: a, unlockVars: make(map[*types.Var]*lintcfg.LockClass)}
		s.stmts(fd.Body.List)
	}
	// Function literals: independent scan, empty held set.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				s := &scanner{a: a, unlockVars: make(map[*types.Var]*lintcfg.LockClass)}
				s.stmts(lit.Body.List)
			}
			return true
		})
	}
	return nil
}

// funcKey renders fn the way the spec writes it: "(*T).name" for
// methods, bare "name" for package-level functions.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return fn.Name()
	}
	return fmt.Sprintf("(*%s).%s", named.Obj().Name(), fn.Name())
}

func (a *analysis) exempt(fn *types.Func) bool {
	key := funcKey(fn)
	for _, e := range a.spec.Exempt {
		if e == key {
			return true
		}
	}
	return false
}

// lockFuncClass classifies a call to a lock-returning helper declared in
// the spec, or nil.
func (a *analysis) lockFuncClass(call *ast.CallExpr) *lintcfg.LockClass {
	fn := a.callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() != a.pass.Pkg {
		return nil
	}
	key := funcKey(fn)
	for i := range a.spec.Classes {
		c := &a.spec.Classes[i]
		for _, name := range c.Funcs {
			if name == key {
				return c
			}
		}
	}
	return nil
}

// mutexClass classifies s.mu.Lock()/s.mu.Unlock() calls against the
// spec's "Type.field" mutex declarations, returning the class and
// whether the call locks (true) or unlocks (false).
func (a *analysis) mutexClass(call *ast.CallExpr) (*lintcfg.LockClass, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	if sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock" {
		return nil, false, false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	recvT := a.pass.TypesInfo.TypeOf(field.X)
	if recvT == nil {
		return nil, false, false
	}
	if p, ok := recvT.(*types.Pointer); ok {
		recvT = p.Elem()
	}
	named, ok := recvT.(*types.Named)
	if !ok {
		return nil, false, false
	}
	key := named.Obj().Name() + "." + field.Sel.Name
	for i := range a.spec.Classes {
		c := &a.spec.Classes[i]
		for _, name := range c.Mutexes {
			if name == key {
				return c, sel.Sel.Name == "Lock", true
			}
		}
	}
	return nil, false, false
}

func (a *analysis) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := a.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := a.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// summarize computes, to fixpoint, the set of lock classes each declared
// function may acquire — directly or through same-package callees.
// Exempt functions (the lock implementations themselves) contribute the
// class their name is declared under, not their bodies.
func (a *analysis) summarize() {
	for fn := range a.decls {
		a.acquire[fn] = make(classSet)
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range a.decls {
			if a.exempt(fn) {
				continue
			}
			set := a.acquire[fn]
			grow := func(c *lintcfg.LockClass) {
				if !set[c] {
					set[c] = true
					changed = true
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if c := a.lockFuncClass(call); c != nil {
					grow(c)
					return true
				}
				if c, locks, ok := a.mutexClass(call); ok {
					if locks {
						grow(c)
					}
					return true
				}
				if callee := a.callee(call); callee != nil {
					for c := range a.acquire[callee] {
						grow(c)
					}
				}
				return true
			})
		}
	}
}

// held is one acquired lock in the scanner's linear walk.
type held struct {
	class *lintcfg.LockClass
	via   *types.Var // the unlock variable, when bound
}

type scanner struct {
	a          *analysis
	held       []held
	unlockVars map[*types.Var]*lintcfg.LockClass
}

func (s *scanner) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *scanner) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.ExprStmt:
		s.expr(st.X)
	case *ast.AssignStmt:
		s.assign(st)
	case *ast.DeferStmt:
		s.deferStmt(st)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Cond)
		s.stmts(st.Body.List)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Cond)
		s.stmts(st.Body.List)
		if st.Post != nil {
			s.stmt(st.Post)
		}
	case *ast.RangeStmt:
		s.expr(st.X)
		s.stmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Tag)
		for _, c := range st.Body.List {
			s.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		for _, c := range st.Body.List {
			s.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				s.stmt(cc.Comm)
			}
			s.stmts(cc.Body)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e)
		}
	case *ast.GoStmt:
		// The spawned goroutine's body is scanned independently; its
		// argument expressions evaluate here.
		for _, arg := range st.Call.Args {
			s.expr(arg)
		}
	default:
		if st != nil {
			ast.Inspect(st, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if e, ok := n.(ast.Expr); ok {
					if call, ok := e.(*ast.CallExpr); ok {
						s.call(call, nil)
						return false
					}
				}
				return true
			})
		}
	}
}

// expr walks an expression for calls, skipping function literal bodies
// (they execute later, under their own scan).
func (s *scanner) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			s.call(call, nil)
			return false
		}
		return true
	})
}

// assign handles `unlock := s.lockShard(key)` binding forms before
// falling back to the generic call walk.
func (s *scanner) assign(st *ast.AssignStmt) {
	if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if c := s.a.lockFuncClass(call); c != nil {
				for _, arg := range call.Args {
					s.expr(arg)
				}
				var bind *types.Var
				if id, ok := st.Lhs[0].(*ast.Ident); ok {
					if v, ok := s.objOf(id).(*types.Var); ok {
						bind = v
						s.unlockVars[v] = c
					}
				}
				s.acquireLock(c, bind, call)
				return
			}
		}
	}
	for _, e := range st.Rhs {
		s.expr(e)
	}
	for _, e := range st.Lhs {
		if _, ok := e.(*ast.Ident); !ok {
			s.expr(e)
		}
	}
}

func (s *scanner) deferStmt(st *ast.DeferStmt) {
	call := st.Call
	// defer unlock() / defer s.mu.Unlock(): the lock stays held to the
	// end of the function — which is exactly what the held set models.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, ok := s.objOf(id).(*types.Var); ok {
			if _, isUnlock := s.unlockVars[v]; isUnlock {
				return
			}
		}
	}
	if _, locks, ok := s.a.mutexClass(call); ok && !locks {
		return
	}
	// Anything else deferred is summary-checked here, conservatively: at
	// this point the locks now held are the ones the defer may run under.
	s.call(call, nil)
	for _, arg := range call.Args {
		s.expr(arg)
	}
}

// call processes one call expression: acquisition, release, or a
// summary check against what the callee may acquire.
func (s *scanner) call(call *ast.CallExpr, bindTo *types.Var) {
	for _, arg := range call.Args {
		s.expr(arg)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		s.expr(sel.X)
	}

	if c := s.a.lockFuncClass(call); c != nil {
		s.acquireLock(c, bindTo, call)
		return
	}
	if c, locks, ok := s.a.mutexClass(call); ok {
		if locks {
			s.acquireLock(c, nil, call)
		} else {
			s.release(c, nil)
		}
		return
	}
	// unlock() through a bound variable.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, ok := s.objOf(id).(*types.Var); ok {
			if c, isUnlock := s.unlockVars[v]; isUnlock {
				s.release(c, v)
				return
			}
		}
	}
	if callee := s.a.callee(call); callee != nil {
		for c := range s.a.acquire[callee] {
			s.checkOrder(c, call, callee)
		}
	}
}

func (s *scanner) objOf(id *ast.Ident) types.Object {
	if obj := s.a.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return s.a.pass.TypesInfo.Defs[id]
}

func (s *scanner) acquireLock(c *lintcfg.LockClass, via *types.Var, at *ast.CallExpr) {
	s.checkOrder(c, at, nil)
	s.held = append(s.held, held{class: c, via: via})
}

func (s *scanner) release(c *lintcfg.LockClass, via *types.Var) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].class == c && (via == nil || s.held[i].via == via || s.held[i].via == nil) {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

func (s *scanner) checkOrder(c *lintcfg.LockClass, at *ast.CallExpr, through *types.Func) {
	for _, h := range s.held {
		var what string
		switch {
		case h.class == c:
			what = fmt.Sprintf("re-acquires the %s lock already held (self-deadlock)", c.Name)
		case h.class.Rank > c.Rank:
			what = fmt.Sprintf("acquires the %s lock while holding the %s lock", c.Name, h.class.Name)
		default:
			continue
		}
		if through != nil {
			what = fmt.Sprintf("call to %s %s", through.Name(), what)
		}
		s.a.pass.Reportf(at.Pos(), "%s; the documented order is %s (%s)", what, orderString(s.a.spec), lintcfg.DocPath)
		return
	}
}

// orderString renders the hierarchy low-rank-first, e.g. "shard → mu → root".
func orderString(spec *lintcfg.LockOrderSpec) string {
	classes := make([]*lintcfg.LockClass, len(spec.Classes))
	for i := range spec.Classes {
		classes[i] = &spec.Classes[i]
	}
	for i := range classes {
		for j := i + 1; j < len(classes); j++ {
			if classes[j].Rank < classes[i].Rank {
				classes[i], classes[j] = classes[j], classes[i]
			}
		}
	}
	out := ""
	for i, c := range classes {
		if i > 0 {
			out += " → "
		}
		out += c.Name
	}
	return out
}
