// Fixture for the lockorder analyzer: a miniature trace store with the
// real hierarchy (shard flock → traceStore.mu → root flock) and the
// inversions the analyzer exists to catch.
package fixture

import "sync"

type traceStore struct {
	dir string
	mu  sync.Mutex
	idx map[string]int64
}

// lockExclusive stands in for the flock helper; it is the root class.
func lockExclusive(path string) (unlock func()) {
	return func() {}
}

// lockShard is exempt: it implements the shard class, so its internal
// lockExclusive call is the definition of that class, not a root acquire.
func (s *traceStore) lockShard(key string) (unlock func()) {
	return lockExclusive(s.dir + "/" + key + "/.lock")
}

// put follows the documented order exactly: shard, then mu, then (via
// flush) root. Silent.
func (s *traceStore) put(key string) {
	unlock := s.lockShard(key)
	defer unlock()
	s.mu.Lock()
	s.idx[key] = 1
	s.mu.Unlock()
	s.flush()
}

// flush takes mu then the root flock: in order, silent.
func (s *traceStore) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock := lockExclusive(s.dir + "/.lock")
	defer unlock()
}

// gcRight releases each shard flock before touching mu — the shape the
// real gc uses precisely to avoid the inversion. Silent.
func (s *traceStore) gcRight(keys []string) {
	for _, k := range keys {
		unlock := s.lockShard(k)
		unlock()
	}
	s.mu.Lock()
	delete(s.idx, "stale")
	s.mu.Unlock()
	s.flush()
}

// gcWrong takes a shard flock while holding mu: the two-process deadlock
// the store's own comments warn about.
func (s *traceStore) gcWrong(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock := s.lockShard(key) // want `acquires the shard lock while holding the mu lock`
	unlock()
}

// healWrong hides the same inversion behind a helper; the transitive
// summary still sees it.
func (s *traceStore) healWrong(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evict(key) // want `call to evict acquires the shard lock while holding the mu lock`
}

func (s *traceStore) evict(key string) {
	unlock := s.lockShard(key)
	defer unlock()
}

// double re-enters mu through a helper: self-deadlock on a plain Mutex.
func (s *traceStore) double() {
	s.mu.Lock()
	s.helper() // want `call to helper re-acquires the mu lock already held`
	s.mu.Unlock()
}

func (s *traceStore) helper() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// indexWrong takes mu while holding the root flock: inverted.
func (s *traceStore) indexWrong() {
	unlock := lockExclusive(s.dir + "/.lock")
	defer unlock()
	s.mu.Lock() // want `acquires the mu lock while holding the root lock`
	s.mu.Unlock()
}

// Goroutine bodies are scanned as independent functions; the inversion
// inside one is still an inversion.
func (s *traceStore) spawnWrong(key string) {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		unlock := s.lockShard(key) // want `acquires the shard lock while holding the mu lock`
		unlock()
	}()
}

// A justified inversion (single-process startup path) is suppressed.
func (s *traceStore) migrateSpecial(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//vdtnlint:lockorder-ok startup migration runs before any concurrent runner exists
	unlock := s.lockShard(key)
	unlock()
}
