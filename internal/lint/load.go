package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loaders here turn package patterns or fixture directories into
// type-checked Units without golang.org/x/tools: `go list -export -json`
// resolves packages and produces compiler export data for dependencies,
// and go/importer's public "gc" importer reads that export data back.
// This is the same division of labor go vet itself uses — the build
// system compiles, the analyzer only type-checks the unit's own source.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps` over patterns in dir and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter type-checks against compiler export data files, keyed by
// package path.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// LoadPackages loads, parses, and type-checks every package matched by
// patterns (resolved by the go tool relative to dir; dir "" means the
// current directory). Only packages of the surrounding module are
// returned as Units — dependencies contribute export data, not source.
func LoadPackages(dir string, patterns []string) ([]*Unit, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	var units []*Unit
	for _, p := range pkgs {
		if p.DepOnly || p.Module == nil {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewTypesInfo()
		conf := types.Config{Importer: exportImporter(fset, exports)}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		units = append(units, &Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Pkg.Path() < units[j].Pkg.Path() })
	return units, nil
}

// LoadDir loads one package from the .go files directly inside dir,
// type-checking it as import path pkgPath. Imports resolve against the
// standard library (via one go list run from moduleDir) and, recursively,
// against sibling fixture directories under srcRoot — the layout of a
// linttest testdata/src tree.
func LoadDir(moduleDir, srcRoot, pkgPath string) (*Unit, error) {
	fset := token.NewFileSet()
	cache := make(map[string]*types.Package)
	files, pkg, info, err := loadFixture(fset, moduleDir, srcRoot, pkgPath, cache)
	if err != nil {
		return nil, err
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

func loadFixture(fset *token.FileSet, moduleDir, srcRoot, pkgPath string, cache map[string]*types.Package) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}

	// Split imports into fixture-local (a directory under srcRoot) and
	// external (resolved to export data by the go tool).
	var external []string
	for imp := range imports {
		if fi, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(imp))); err == nil && fi.IsDir() {
			if _, ok := cache[imp]; !ok {
				if _, _, _, err := loadFixture(fset, moduleDir, srcRoot, imp, cache); err != nil {
					return nil, nil, nil, err
				}
			}
			continue
		}
		external = append(external, imp)
	}
	exports := make(map[string]string)
	if len(external) > 0 {
		sort.Strings(external)
		pkgs, err := goList(moduleDir, external)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	gc := exportImporter(fset, exports)
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if p, ok := cache[path]; ok {
			return p, nil
		}
		return gc.Import(path)
	})}
	info := NewTypesInfo()
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %v", pkgPath, err)
	}
	cache[pkgPath] = pkg
	return files, pkg, info, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
