// Fixture for the detsource analyzer: ambient nondeterminism sources in
// a determinism-critical package.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

func clocks(epoch time.Time) {
	_ = time.Now()        // want `wall-clock time\.Now in a determinism-critical package`
	_ = time.Since(epoch) // want `wall-clock time\.Since`
	_ = time.Until(epoch) // want `wall-clock time\.Until`
	_ = time.Unix(0, 0)   // explicit construction from simulated seconds: fine
	_ = epoch.Add(time.Second)
}

func globalRand() (int, float64) {
	n := rand.Intn(10)                 // want `global rand\.Intn in a determinism-critical package`
	f := rand.Float64()                // want `global rand\.Float64`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand\.Shuffle`
	return n, f
}

// An explicitly seeded, owned stream is the sanctioned shape: the
// constructors and the methods on the stream are both silent.
func ownedStream(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func env() {
	_ = os.Getenv("VDTN_SEED")       // want `environment read os\.Getenv`
	_, _ = os.LookupEnv("VDTN_SEED") // want `environment read os\.LookupEnv`
	_ = os.Environ()                 // want `environment read os\.Environ`
	// Non-environment os calls stay silent.
	_, _ = os.Hostname()
}

// Two ready communication cases race pseudo-randomly: flagged.
func racingSelect(a, b <-chan int) int {
	select { // want `select races 2 ready cases nondeterministically`
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

// The single-case + default cancellation-poll shape (World.RunContext,
// RecordContactsContext) is deterministic and stays silent.
func pollSelect(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// A justified race is suppressed.
func justifiedSelect(a, b <-chan int) int {
	//vdtnlint:nondet-ok merges progress ticks whose order is reconciled downstream
	select {
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}
