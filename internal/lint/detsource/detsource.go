// Package detsource implements the vdtnlint analyzer forbidding ambient
// nondeterminism sources in determinism-critical packages.
//
// A simulation must be a pure function of (config, seed): all randomness
// flows through internal/xrand named streams and all time through the
// event scheduler. Wall clocks (time.Now/Since/Until), the global
// math/rand generators, process-environment reads, and selects that race
// multiple ready cases each smuggle ambient state into that function —
// and all of them pass `go build` silently. The golden suites would only
// catch the resulting drift for the seeds they happen to sample.
package detsource

import (
	"go/ast"
	"go/types"
	"strings"

	"vdtn/internal/lint"
	"vdtn/internal/lint/lintcfg"
)

// Analyzer is the detsource analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "detsource",
	Doc:       "forbid wall clocks, global math/rand, environment reads, and racing selects in determinism-critical packages",
	Directive: "nondet-ok",
	AppliesTo: lintcfg.IsCritical,
	Run:       run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "wall-clock time.%s in a determinism-critical package; derive time from the event scheduler (%s)",
				fn.Name(), lintcfg.DocPath)
		}
	case "math/rand", "math/rand/v2":
		// Methods on an explicit *rand.Rand are a seeded, owned stream, and
		// the New*/NewSource constructors build one; package-level draw
		// functions read the shared global generator.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "global %s.%s in a determinism-critical package; draw from a named internal/xrand stream instead (%s)",
				fn.Pkg().Name(), fn.Name(), lintcfg.DocPath)
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			pass.Reportf(call.Pos(), "environment read os.%s in a determinism-critical package; thread configuration through sim.Config (%s)",
				fn.Name(), lintcfg.DocPath)
		}
	}
}

// checkSelect flags selects with two or more communication cases: when
// several are ready the runtime picks one pseudo-randomly, so event order
// leaks scheduler state. A single case plus default (the cancellation
// poll shape used by RunUntilCheck callbacks) is deterministic.
func checkSelect(pass *lint.Pass, sel *ast.SelectStmt) {
	comms := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		pass.Reportf(sel.Pos(), "select races %d ready cases nondeterministically in a determinism-critical package; restructure or justify with //vdtnlint:nondet-ok (%s)",
			comms, lintcfg.DocPath)
	}
}
