package detsource_test

import (
	"testing"

	"vdtn/internal/lint/detsource"
	"vdtn/internal/lint/linttest"
)

func TestDetSource(t *testing.T) {
	linttest.Run(t, detsource.Analyzer, "vdtn/internal/event")
}
