package ctxloop_test

import (
	"testing"

	"vdtn/internal/lint/ctxloop"
	"vdtn/internal/lint/linttest"
)

func TestCtxLoop(t *testing.T) {
	linttest.Run(t, ctxloop.Analyzer, "vdtn/internal/sim")
}
