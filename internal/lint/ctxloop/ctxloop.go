// Package ctxloop implements the vdtnlint analyzer requiring unbounded
// loops in context-accepting functions to observe cancellation.
//
// PR 5/6 fixed this class of bug by hand twice: World.RunContext and
// RecordContactsContext both learned to poll ctx between events via
// event.Scheduler.RunUntilCheck, because a SIGINT that waits for a full
// recording pass is minutes of latency at million-node scale. The
// analyzer codifies the rule: a function that accepts a context.Context
// and spins a `for {}` must reach ctx.Done()/ctx.Err() (directly or via
// a channel derived from ctx.Done()), hand the context onward, or run
// through a RunUntilCheck-style checkpoint inside the loop. Loops with a
// real condition — a scheduler horizon, a queue drain — are bounded and
// exempt.
package ctxloop

import (
	"go/ast"
	"go/types"

	"vdtn/internal/lint"
	"vdtn/internal/lint/lintcfg"
)

// Analyzer is the ctxloop analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "ctxloop",
	Doc:       "require unbounded loops in context-accepting functions to observe cancellation",
	Directive: "loop-ok",
	Run:       run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Name.Name, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, "function literal", n.Type, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc inspects one function that may take a context parameter.
// Nested function literals are visited by the outer Inspect on their own,
// but their bodies also stay part of the enclosing function's walk here:
// a loop inside a closure still holds the enclosing ctx captive.
func checkFunc(pass *lint.Pass, name string, ft *ast.FuncType, body *ast.BlockStmt) {
	ctxVars := contextParams(pass, ft)
	if len(ctxVars) == 0 {
		return
	}
	// Channels derived from ctx.Done() count as observing ctx; World.Run
	// hoists `done := ctx.Done()` out of the hot loop on purpose.
	observers := doneChannels(pass, body, ctxVars)

	ast.Inspect(body, func(n ast.Node) bool {
		// A nested literal with its own context parameter answers for
		// itself under its own contract.
		if lit, ok := n.(*ast.FuncLit); ok && len(contextParams(pass, lit.Type)) > 0 {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if observesCancellation(pass, loop.Body, ctxVars, observers) {
			return true
		}
		pass.Reportf(loop.Pos(), "unbounded loop in %s never observes cancellation of its context parameter; poll ctx.Done()/ctx.Err(), pass ctx on, or checkpoint via RunUntilCheck (%s)",
			name, lintcfg.DocPath)
		return true
	})
}

// contextParams returns the objects of parameters typed context.Context.
func contextParams(pass *lint.Pass, ft *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// doneChannels collects variables assigned from ctx.Done() anywhere in
// the function body.
func doneChannels(pass *lint.Pass, body *ast.BlockStmt, ctxVars map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return
		}
		if recv, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || !ctxVars[pass.TypesInfo.Uses[recv]] {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				record(as.Lhs[i], as.Rhs[i])
			}
		}
		return true
	})
	return out
}

// observesCancellation reports whether the loop body touches the context
// (any use: ctx.Done, ctx.Err, passing ctx to a callee), receives from a
// ctx-derived done channel, or calls a checkpoint primitive from
// lintcfg.CheckpointFuncs.
func observesCancellation(pass *lint.Pass, body *ast.BlockStmt, ctxVars, observers map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && (ctxVars[obj] || observers[obj]) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				for _, name := range lintcfg.CheckpointFuncs {
					if sel.Sel.Name == name {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
