// Fixture for the ctxloop analyzer: unbounded loops in context-accepting
// functions must observe cancellation.
package fixture

import "context"

func work() {}

type sched struct {
	now, horizon float64
}

func (s *sched) RunUntilCheck(until float64, stride int, check func() bool) bool {
	for s.now < until {
		s.now++
		if check() {
			return true
		}
	}
	return false
}

// Spins forever without ever looking at ctx: flagged.
func spin(ctx context.Context) {
	for { // want `unbounded loop in spin never observes cancellation`
		work()
	}
}

// Polling ctx.Err inside the loop observes cancellation.
func errPoll(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		work()
	}
}

// The done channel hoisted out of the hot loop (the World.Run shape)
// still counts as observing ctx.
func hoistedDone(ctx context.Context) {
	done := ctx.Done()
	for {
		select {
		case <-done:
			return
		default:
		}
		work()
	}
}

// Handing the context onward delegates the obligation to the callee.
func delegates(ctx context.Context) {
	for {
		step(ctx)
	}
}

func step(ctx context.Context) {}

// Checkpointing through the scheduler primitive satisfies the rule even
// without touching ctx directly in the loop body.
func checkpointed(ctx context.Context, s *sched, stop func() bool) {
	for {
		if s.RunUntilCheck(s.horizon, 64, stop) {
			return
		}
		s.horizon++
	}
}

// Loops bounded by a real condition — a scheduler horizon, a counter —
// terminate on their own and are exempt.
func bounded(ctx context.Context, s *sched) {
	for s.now < s.horizon {
		s.now++
	}
	for i := 0; i < 100; i++ {
		work()
	}
}

// Functions without a context parameter answer to no one here.
func noCtx() {
	for {
		work()
	}
}

// A nested literal with its own context parameter is checked under its
// own contract, not the enclosing function's.
func makesWorker(ctx context.Context) func(context.Context) {
	return func(inner context.Context) {
		for { // want `unbounded loop in function literal never observes cancellation`
			work()
		}
	}
}

// A closure without its own context still holds the enclosing ctx
// captive, so its loop is charged to the enclosing function.
func makesClosure(ctx context.Context) func() {
	return func() {
		for { // want `unbounded loop in makesClosure never observes cancellation`
			work()
		}
	}
}

// A justified spin is suppressed.
func justifiedSpin(ctx context.Context) {
	//vdtnlint:loop-ok drains a buffered channel that the producer has already closed
	for {
		work()
		return
	}
}
