// Fixture for the detmaprange analyzer. The import path places it in a
// determinism-critical package, so every unordered map range must either
// prove the collect-then-sort shape or carry a justified suppression.
package fixture

import (
	"maps"
	"sort"
)

// Plain unordered iteration with an order-sensitive side effect: flagged.
func emitInOrder(m map[int]string, sink func(string)) {
	for _, v := range m { // want `iterates over map m in nondeterministic order`
		sink(v)
	}
}

// Ranging the maps.Keys iterator is just as unordered as the map.
func iterKeys(m map[int]string) {
	for k := range maps.Keys(m) { // want `ranges over maps\.Keys\(m\) in nondeterministic order`
		_ = k
	}
}

// Collecting into a local slice without sorting it afterwards leaks the
// runtime's randomized order into the result: flagged.
func collectNoSort(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `iterates over map m in nondeterministic order`
		out = append(out, v)
	}
	return out
}

// The canonical collect-then-sort shape is provably order-insensitive.
func collectThenSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Conditional collection plus a counter and a constant flag still fit the
// proof: every step commutes.
func collectFiltered(m map[int]string) ([]int, int, bool) {
	keys := make([]int, 0, len(m))
	n := 0
	seen := false
	for k, v := range m {
		if v == "" {
			continue
		}
		keys = append(keys, k)
		n++
		seen = true
	}
	sort.Ints(keys)
	return keys, n, seen
}

// Sorting through a local helper: the caller ranges a slice, not a map,
// and the helper's own loop proves the collect-then-sort shape.
func viaHelper(m map[int]string, sink func(string)) {
	for _, k := range sortedKeys(m) {
		sink(m[k])
	}
}

func sortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// String concatenation is order-sensitive, but here the author justified
// it: suppressed, no diagnostic.
func justified(m map[int]string) string {
	s := ""
	//vdtnlint:unordered-ok debug digest; byte order never compared across runs
	for _, v := range m {
		s += v
	}
	return s
}

// Same-line justification works too.
func justifiedInline(m map[int]string, sink func(string)) {
	for _, v := range m { //vdtnlint:unordered-ok fan-out to an order-insensitive sink
		sink(v)
	}
}

// A bare directive with no justification does not suppress anything.
func unjustified(m map[int]string, sink func(string)) {
	//vdtnlint:unordered-ok
	for _, v := range m { // want `iterates over map m in nondeterministic order.*suppression rejected`
		sink(v)
	}
}

// A directive pointing at a loop the analyzer already proves safe is
// itself flagged, so stale excuses cannot accumulate.
func unusedDirective(m map[int]string) []int {
	var keys []int
	//vdtnlint:unordered-ok stale excuse left behind // want `unused //vdtnlint:unordered-ok directive`
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Ranging a slice or channel is ordered; never flagged.
func orderedRanges(xs []int, ch chan int) {
	for _, x := range xs {
		_ = x
	}
	for x := range ch {
		_ = x
	}
}
