// Fixture outside the determinism-critical package list: the analyzer
// must stay silent here even for blatantly order-sensitive iteration.
package fixture

func emit(m map[int]string, sink func(string)) {
	for _, v := range m {
		sink(v)
	}
}
