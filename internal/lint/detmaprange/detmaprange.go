// Package detmaprange implements the vdtnlint analyzer forbidding
// unordered map iteration in determinism-critical packages.
//
// A `for k := range m` over a map visits keys in an order the runtime
// deliberately randomizes per process. If any byte of a trace, a routing
// decision, or an emitted table depends on that order, two runs of the
// same (config, seed) diverge — exactly the class of bug the pinned
// contact fingerprint and the 42 protocol×policy equivalence suites
// exist to rule out, but only for the seeds they sample.
//
// The analyzer stays silent for the one shape it can prove harmless:
// loops that only collect entries into local slices that are sorted
// before use (the canonical sorted-keys helper, wireless.PeersOf, the
// Medium.scan up/down staging). Everything else needs the keys sorted
// first (internal/detmap.Keys) or a justified
// //vdtnlint:unordered-ok annotation.
package detmaprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"vdtn/internal/lint"
	"vdtn/internal/lint/lintcfg"
)

// Analyzer is the detmaprange analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "detmaprange",
	Doc:       "forbid unordered map iteration in determinism-critical packages unless keys are sorted first or the loop is justified",
	Directive: "unordered-ok",
	AppliesTo: lintcfg.IsCritical,
	Run:       run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		// Track enclosing function bodies so the sort-sink check can look
		// downstream of the loop.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n, stack)
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *lint.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	if mapsIterCall(pass, rs.X) {
		pass.Reportf(rs.Pos(), "ranges over %s in nondeterministic order; sort the keys first (e.g. internal/detmap.Keys) or justify with //vdtnlint:unordered-ok (%s)",
			types.ExprString(rs.X), lintcfg.DocPath)
		return
	}
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if body := enclosingFuncBody(stack); body != nil && collectThenSorted(pass, rs, body) {
		return
	}
	pass.Reportf(rs.Pos(), "iterates over map %s in nondeterministic order; sort the keys first (e.g. internal/detmap.Keys) or justify with //vdtnlint:unordered-ok (%s)",
		types.ExprString(rs.X), lintcfg.DocPath)
}

// mapsIterCall reports whether x is a call to maps.Keys/Values/All, whose
// iteration order is as unordered as ranging the map itself.
func mapsIterCall(pass *lint.Pass, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "maps" {
		return false
	}
	switch fn.Name() {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

// enclosingFuncBody returns the body of the innermost enclosing function
// on the node stack (the last element is the range statement itself).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl:
			return n.Body
		case *ast.FuncLit:
			return n.Body
		}
	}
	return nil
}

// collectThenSorted proves the order-insensitive collection shape: every
// statement in the loop body is a pure local collection step (append to a
// local slice, constant flag set, integer counter bump, or control flow
// around those), and every slice collected into is sorted after the loop.
// Any other side effect — writes through selectors or indexes, calls,
// early exits — defeats the proof and the loop is flagged.
func collectThenSorted(pass *lint.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	collected := make(map[*types.Var]bool)
	if !safeCollectBody(pass, rs, rs.Body.List, collected) {
		return false
	}
	for v := range collected {
		if !sortedAfter(pass, funcBody, rs.End(), v) {
			return false
		}
	}
	return true
}

func safeCollectBody(pass *lint.Pass, rs *ast.RangeStmt, stmts []ast.Stmt, collected map[*types.Var]bool) bool {
	for _, s := range stmts {
		if !safeCollectStmt(pass, rs, s, collected) {
			return false
		}
	}
	return true
}

func safeCollectStmt(pass *lint.Pass, rs *ast.RangeStmt, s ast.Stmt, collected map[*types.Var]bool) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return safeCollectBody(pass, rs, s.List, collected)
	case *ast.IfStmt:
		if s.Init != nil && !safeCollectStmt(pass, rs, s.Init, collected) {
			return false
		}
		if hasCall(s.Cond) {
			return false
		}
		if !safeCollectBody(pass, rs, s.Body.List, collected) {
			return false
		}
		if s.Else != nil {
			return safeCollectStmt(pass, rs, s.Else, collected)
		}
		return true
	case *ast.SwitchStmt:
		if s.Init != nil && !safeCollectStmt(pass, rs, s.Init, collected) {
			return false
		}
		if hasCall(s.Tag) {
			return false
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				if hasCall(e) {
					return false
				}
			}
			if !safeCollectBody(pass, rs, cc.Body, collected) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		// continue revisits the next key; break/goto make the collected
		// contents depend on which keys came first.
		return s.Tok == token.CONTINUE
	case *ast.IncDecStmt:
		v := localScalar(pass, rs, s.X)
		return v != nil && isInteger(v.Type())
	case *ast.AssignStmt:
		return safeAssign(pass, rs, s, collected)
	default:
		return false
	}
}

// safeAssign accepts `v = append(v, ...)` into a local slice (recorded in
// collected), constant stores to local scalars, and integer accumulation
// into local scalars. Everything else is order-sensitive or beyond the
// proof.
func safeAssign(pass *lint.Pass, rs *ast.RangeStmt, s *ast.AssignStmt, collected map[*types.Var]bool) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	v := localScalar(pass, rs, s.Lhs[0])
	if v == nil {
		return false
	}
	rhs := s.Rhs[0]
	switch s.Tok {
	case token.ASSIGN:
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
				if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.TypesInfo.Uses[target] == v {
					for _, arg := range call.Args[1:] {
						if hasCall(arg) {
							return false
						}
					}
					collected[v] = true
					return true
				}
			}
			return false
		}
		// Constant stores commute: `found = true` is the same whichever
		// key sets it. Anything key-dependent is not.
		tv, ok := pass.TypesInfo.Types[rhs]
		return ok && tv.Value != nil
	case token.ADD_ASSIGN:
		// Integer accumulation commutes exactly; float accumulation does
		// not (IEEE addition is order-sensitive).
		return isInteger(v.Type()) && !hasCall(rhs)
	default:
		return false
	}
}

// localScalar resolves e to a variable declared in the enclosing function
// (not the range statement's own iteration variables, not package state,
// not anything reached through a selector or index).
func localScalar(pass *lint.Pass, rs *ast.RangeStmt, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	// Package-level variables are shared state; writing them from an
	// unordered loop is order-sensitive for any non-commutative value.
	if v.Parent() == pass.Pkg.Scope() {
		return nil
	}
	// The loop's own key/value variables are fine to read but are not
	// collection targets.
	for _, kv := range []ast.Expr{rs.Key, rs.Value} {
		if kid, ok := kv.(*ast.Ident); ok && pass.TypesInfo.Defs[kid] == v {
			return nil
		}
	}
	return v
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// hasCall reports whether e contains any call expression (other than the
// builtin len/cap, which are pure).
func hasCall(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return true
			}
			found = true
			return false
		}
		return true
	})
	return found
}

// sortedAfter reports whether v is passed to a recognized sort call
// somewhere after pos inside body.
func sortedAfter(pass *lint.Pass, body *ast.BlockStmt, pos token.Pos, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			found = true
			return false
		}
		return true
	})
	return found
}

func isSortCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
