package detmaprange_test

import (
	"testing"

	"vdtn/internal/lint/detmaprange"
	"vdtn/internal/lint/linttest"
)

func TestDetMapRange(t *testing.T) {
	linttest.Run(t, detmaprange.Analyzer,
		"vdtn/internal/sim",     // critical: violations, proofs, suppressions
		"vdtn/internal/reports", // non-critical: silent
	)
}
