// Package linttest runs vdtnlint analyzers over want-comment fixtures,
// in the style of golang.org/x/tools/go/analysis/analysistest but
// self-contained: fixtures live under <testdata>/src/<import-path>/, are
// type-checked from source (standard-library imports resolve through the
// go tool's export data, sibling fixture packages recursively from
// source), and every expected diagnostic is declared in the fixture
// itself with a comment on the same line:
//
//	for k := range m { // want `iterates over map`
//
// The want text is a regular expression matched against the diagnostic
// message. A line may carry several expectations (`// want "a" "b"`).
// Diagnostics without a matching want, and wants without a matching
// diagnostic, both fail the test.
package linttest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"vdtn/internal/lint"
)

// Run loads each fixture package from testdata/src (testdata resolves
// relative to the caller's directory), applies the analyzer through the
// framework's suppression-aware driver, and checks the diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, analyzer *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	_, callerFile, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("linttest: cannot locate caller for testdata resolution")
	}
	srcRoot := filepath.Join(filepath.Dir(callerFile), "testdata", "src")
	moduleDir := moduleRoot(t, filepath.Dir(callerFile))
	for _, pkgPath := range pkgPaths {
		t.Run(pkgPath, func(t *testing.T) {
			unit, err := lint.LoadDir(moduleDir, srcRoot, pkgPath)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", pkgPath, err)
			}
			diags, err := lint.Run(unit, []*lint.Analyzer{analyzer})
			if err != nil {
				t.Fatalf("running %s on %s: %v", analyzer.Name, pkgPath, err)
			}
			check(t, unit, diags)
		})
	}
}

// moduleRoot walks up from dir to the enclosing go.mod, so `go list` can
// resolve export data in module mode.
func moduleRoot(t *testing.T, dir string) string {
	t.Helper()
	for d := dir; ; {
		if matches, _ := filepath.Glob(filepath.Join(d, "go.mod")); len(matches) == 1 {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("linttest: no go.mod above %s", dir)
		}
		d = parent
	}
}

// A want is one expected-diagnostic regexp, anchored to file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

// wantRe matches each expectation: a `want` keyword followed by one or
// more quoted or backquoted regexps.
var (
	wantMarker = regexp.MustCompile(`// want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)
	wantToken  = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")
)

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				for _, tok := range wantToken.FindAllStringSubmatch(m[1], -1) {
					raw := tok[1]
					if raw == "" {
						raw = tok[2]
					} else {
						raw = strings.ReplaceAll(raw, `\"`, `"`)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

func check(t *testing.T, unit *lint.Unit, diags []lint.Diagnostic) {
	t.Helper()
	wants := parseWants(t, unit.Fset, unit.Files)
	for _, d := range diags {
		pos := unit.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.used || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
