package detgo_test

import (
	"testing"

	"vdtn/internal/lint/detgo"
	"vdtn/internal/lint/linttest"
)

func TestDetGo(t *testing.T) {
	linttest.Run(t, detgo.Analyzer, "vdtn/internal/wireless")
}

// TestDetGoServiceScope pins the audit-scope extension: internal/service
// is not determinism-critical, but its goroutine launches are audited
// all the same (lintcfg.GoAuditPackages).
func TestDetGoServiceScope(t *testing.T) {
	linttest.Run(t, detgo.Analyzer, "vdtn/internal/service")
}
