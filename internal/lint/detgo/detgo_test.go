package detgo_test

import (
	"testing"

	"vdtn/internal/lint/detgo"
	"vdtn/internal/lint/linttest"
)

func TestDetGo(t *testing.T) {
	linttest.Run(t, detgo.Analyzer, "vdtn/internal/wireless")
}
