// Package detgo implements the vdtnlint analyzer auditing goroutine
// fan-out in determinism-critical packages.
//
// The simulator's determinism contract allows concurrency only as an
// invisible implementation detail: the parallel proximity scan fans out
// between barriers and merges order-independent shards (see
// docs/DETERMINISM.md). Any OTHER goroutine in a trace-emitting package
// is a determinism hazard by default — goroutine interleaving is
// scheduler state, and an unjustified `go` statement or WaitGroup-shaped
// fan-out can leak it into event order while passing `go build` and the
// sampled golden suites. detgo therefore flags every `go` statement and
// every sync.WaitGroup method call in an audited package unless the line
// carries a //vdtnlint:detgo justification, keeping each parallel
// section individually auditable.
//
// The audited set is the determinism-critical packages plus
// lintcfg.GoAuditPackages — packages like the sweep service whose
// goroutines never touch a trace but do sit on the path that promises
// daemon artifacts byte-identical to CLI ones, so their fan-out earns
// the same per-line justification discipline.
package detgo

import (
	"go/ast"
	"go/types"

	"vdtn/internal/lint"
	"vdtn/internal/lint/lintcfg"
)

// Analyzer is the detgo analyzer.
var Analyzer = &lint.Analyzer{
	Name:      "detgo",
	Doc:       "audit goroutine launches and WaitGroup barriers in goroutine-audited packages",
	Directive: "detgo",
	AppliesTo: lintcfg.IsGoAudited,
	Run:       run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in a goroutine-audited package; goroutines may not influence event or artifact order — justify with //vdtnlint:detgo (%s)",
					lintcfg.DocPath)
			case *ast.CallExpr:
				checkWaitGroup(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkWaitGroup flags method calls on sync.WaitGroup (Add, Done, Wait):
// the barrier shape that accompanies hand-rolled fan-out. The type is
// resolved through the checker, so aliases and embedded fields are caught
// and look-alike types from other packages are not.
func checkWaitGroup(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "WaitGroup" {
		return
	}
	pass.Reportf(call.Pos(), "sync.WaitGroup.%s in a goroutine-audited package; barrier fan-out must be auditable — justify with //vdtnlint:detgo (%s)",
		fn.Name(), lintcfg.DocPath)
}
