// Fixture for the detgo analyzer over the service layer: not
// determinism-critical (wall clocks are fine here), but in the
// goroutine-audited set — its fan-out sits on the daemon-equals-CLI
// artifact path, so every launch needs a justification.
package fixture

import "sync"

// A scheduler-shaped goroutine without a justification is flagged.
func unjustifiedScheduler(loop func()) {
	go loop() // want `go statement in a goroutine-audited package`
}

// WaitGroup barriers are audited here too.
func unjustifiedJoin(wg *sync.WaitGroup) {
	wg.Wait() // want `sync\.WaitGroup\.Wait in a goroutine-audited package`
}

// The real service goroutines carry the directive; the suppression works
// the same way it does in critical packages.
func justifiedScheduler(loop func()) {
	go loop() //vdtnlint:detgo single scheduler goroutine joined on close; job order is FIFO by queue, not goroutine timing
}
