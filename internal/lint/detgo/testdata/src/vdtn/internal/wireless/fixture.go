// Fixture for the detgo analyzer: goroutine launches and WaitGroup
// barriers in a determinism-critical package.
package fixture

import "sync"

// A bare goroutine launch is flagged: interleaving is scheduler state.
func unjustifiedGo(work func()) {
	go work() // want `go statement in a goroutine-audited package`
}

// Each WaitGroup method call is flagged individually.
func unjustifiedBarrier(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)   // want `sync\.WaitGroup\.Add in a goroutine-audited package`
	go func() { // want `go statement in a goroutine-audited package`
		defer wg.Done() // want `sync\.WaitGroup\.Done in a goroutine-audited package`
		work()
	}()
	wg.Wait() // want `sync\.WaitGroup\.Wait in a goroutine-audited package`
}

// A justified fan-out is suppressed, one directive per audited line.
func justifiedFanOut(shard func(i int)) {
	var wg sync.WaitGroup
	//vdtnlint:detgo phase barrier: workers write disjoint shards merged order-independently
	wg.Add(4)
	for i := 0; i < 4; i++ {
		i := i
		//vdtnlint:detgo scan worker: barriered fan-out, no trace emission
		go func() {
			//vdtnlint:detgo phase barrier: signals this worker's shard is done
			defer wg.Done()
			shard(i)
		}()
	}
	//vdtnlint:detgo phase barrier: every worker finishes before serial code resumes
	wg.Wait()
}

// Other sync primitives are not detgo's concern (lockorder audits mutex
// ordering; a mutex alone cannot reorder events).
func mutexesAreSilent(mu *sync.Mutex, work func()) {
	mu.Lock()
	work()
	mu.Unlock()
}

// A WaitGroup look-alike from this package is not flagged: resolution is
// by type identity, not by method name.
type fakeWaitGroup struct{}

func (fakeWaitGroup) Add(int) {}
func (fakeWaitGroup) Wait()   {}

func lookAlike() {
	var wg fakeWaitGroup
	wg.Add(1)
	wg.Wait()
}
