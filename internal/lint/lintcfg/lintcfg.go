// Package lintcfg is the shared configuration layer of the vdtnlint
// analyzer suite: it declares which packages are determinism-critical,
// which lock hierarchies the lockorder analyzer models, and where the
// written contract lives. Analyzers consult this package instead of
// hard-coding paths so the policy has exactly one home.
package lintcfg

import "strings"

// DocPath points diagnostics at the determinism contract.
const DocPath = "docs/DETERMINISM.md"

// CriticalPackages lists the determinism-critical packages: everything a
// simulated trace's bytes flow through. Inside them (and their
// subpackages) map iteration order, wall clocks, global math/rand, the
// process environment, and racing selects are all forbidden — randomness
// must come from internal/xrand named streams and time from the event
// scheduler, so a run stays a pure function of (config, seed).
//
// internal/xrand itself is deliberately absent: it is the sanctioned
// randomness substrate. internal/experiments is absent too — sweep
// orchestration may time itself and read the environment; its
// determinism obligations (sink byte-stability, cache integrity) are
// pinned by golden tests and by the lockorder analyzer.
var CriticalPackages = []string{
	"vdtn/internal/sim",
	"vdtn/internal/wireless",
	"vdtn/internal/event",
	"vdtn/internal/routing",
	"vdtn/internal/mobility",
	"vdtn/internal/buffer",
	"vdtn/internal/scenario",
}

// IsCritical reports whether path is a determinism-critical package or a
// subpackage of one.
func IsCritical(path string) bool {
	return inSet(CriticalPackages, path)
}

// GoAuditPackages lists packages that are not determinism-critical — they
// may read wall clocks and the environment — but whose goroutine fan-out
// must still be individually auditable. The service layer qualifies: its
// scheduler and event hub sit between HTTP handlers and the Runner, and
// an unjustified goroutine there is exactly where a "daemon artifact
// differs from CLI artifact" bug would hide. detgo audits these packages
// alongside the critical set; the other analyzers (wall clocks, env,
// map iteration) do not apply.
var GoAuditPackages = []string{
	"vdtn/internal/service",
	"vdtn/cmd/vdtnd",
}

// IsGoAudited reports whether path's goroutine launches are audited:
// every determinism-critical package plus the GoAuditPackages set.
func IsGoAudited(path string) bool {
	return IsCritical(path) || inSet(GoAuditPackages, path)
}

// inSet reports whether path is one of pkgs or a subpackage of one.
func inSet(pkgs []string, path string) bool {
	for _, p := range pkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// A LockClass is one level of a documented lock hierarchy. Lower ranks
// are acquired first (outermost): with the trace store's shard → mu →
// root order, acquiring a lower-ranked class while a higher-ranked one is
// held is an inversion.
type LockClass struct {
	// Name labels the class in diagnostics ("shard", "mu", "root").
	Name string

	// Rank orders acquisition: a class may only be acquired while every
	// held class has a strictly lower rank.
	Rank int

	// Funcs name the functions whose call acquires this class and returns
	// an unlock func. Methods are written "(*recv).name", package-level
	// functions bare.
	Funcs []string

	// Mutexes name sync.Mutex struct fields, written "Type.field"; the
	// class is acquired by field.Lock() and released by field.Unlock().
	Mutexes []string
}

// LockOrderSpec declares one package's lock hierarchy for the lockorder
// analyzer.
type LockOrderSpec struct {
	// Packages lists the import paths the hierarchy applies to.
	Packages []string

	// Classes lists the hierarchy's levels, any rank order.
	Classes []LockClass

	// Exempt names functions whose bodies implement a lock class: the
	// helper wrapping the raw primitive is classified by its own name at
	// call sites, so the primitive calls inside it must not be
	// re-classified as a different class.
	Exempt []string
}

// LockOrder models the trace store's documented hierarchy
// (internal/experiments/store.go): the per-shard flock serializing trace
// installs against GC evictions is outermost, the store's in-memory
// index mutex comes next, and the store-root flock around index.json
// rewrites is innermost. put holds its shard flock while touching the
// index under mu and flushing under the root flock; the GC must
// therefore never take a shard flock while holding mu — the inversion
// its own comment warns would deadlock the process.
var LockOrder = LockOrderSpec{
	Packages: []string{"vdtn/internal/experiments"},
	Classes: []LockClass{
		{Name: "shard", Rank: 1, Funcs: []string{"(*traceStore).lockShard"}},
		{Name: "mu", Rank: 2, Mutexes: []string{"traceStore.mu"}},
		{Name: "root", Rank: 3, Funcs: []string{"lockExclusive"}},
	},
	Exempt: []string{"(*traceStore).lockShard"},
}

// CheckpointFuncs name scheduler-level checkpoint primitives: a loop that
// reaches one of these observes cancellation even without touching a
// context directly, because the callee polls the check function between
// events (see event.Scheduler.RunUntilCheck and the RecordContactsContext
// recording pass).
var CheckpointFuncs = []string{"RunUntilCheck"}
