// Package lint is the analysis framework behind vdtnlint, the repo's
// determinism & safety analyzer suite.
//
// Every guarantee the reproduction rests on — the pinned contact
// fingerprint, byte-identical replay across the protocol×policy matrix,
// byte-identical -resume streams — is a determinism property. The golden
// tests enforce those properties dynamically for a handful of sampled
// seeds; the analyzers in internal/lint/... prove the underlying source
// invariants statically for every build. docs/DETERMINISM.md is the
// contract the diagnostics refer to.
//
// The framework is intentionally shaped like golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is self-contained: it depends only on
// the standard library, so the module stays dependency-free. Drivers are
// cmd/vdtnlint (both the `go vet -vettool` unitchecker protocol and a
// standalone package-pattern mode) and the linttest fixture harness.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and as the CLI flag that
	// selects it.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Directive is the suppression directive the analyzer honors:
	// a comment of the form
	//
	//	//vdtnlint:<directive> <justification>
	//
	// on the flagged line (or the line directly above it) suppresses the
	// diagnostic. The justification text is mandatory — a bare directive is
	// itself rejected — and a directive that suppresses nothing is flagged
	// as unused, so annotations cannot silently outlive the code they
	// excused. See docs/DETERMINISM.md for the grammar.
	Directive string

	// AppliesTo reports whether the analyzer runs on the package with the
	// given import path. A nil AppliesTo means every package.
	AppliesTo func(pkgPath string) bool

	// Run performs the analysis on one package unit, reporting findings
	// through pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
//
// Files holds only non-test sources: determinism of _test.go files is
// already enforced dynamically by the golden suites, and tests routinely
// use wall clocks and unordered iteration on purpose.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diags = append(p.diags, d)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File // all parsed files, test files included
	Pkg       *types.Package
	TypesInfo *types.Info
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated. Loaders share it so no Pass ever sees a nil map.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Run executes the analyzers over the unit and returns the surviving
// diagnostics in source order: each analyzer's raw findings are filtered
// through its suppression directives, rejected and unused suppressions
// are turned into diagnostics of their own, and the results are merged.
func Run(unit *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(unit.Pkg.Path()) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     nonTestFiles(unit.Fset, unit.Files),
			Pkg:       unit.Pkg,
			TypesInfo: unit.TypesInfo,
		}
		if len(pass.Files) == 0 {
			continue
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		out = append(out, applySuppressions(pass)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	var out []*ast.File
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// suppression is one //vdtnlint:<directive> comment.
type suppression struct {
	pos       token.Pos
	line      int
	file      string
	justified bool
	used      bool
}

var directiveRe = regexp.MustCompile(`^//vdtnlint:([a-z0-9-]+)(.*)$`)

// parseSuppressions collects the directive comments matching the
// analyzer's directive, keyed by file:line.
func parseSuppressions(fset *token.FileSet, files []*ast.File, directive string) map[string]*suppression {
	sups := make(map[string]*suppression)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil || m[1] != directive {
					continue
				}
				just := m[2]
				// Fixture files stack a `// want "..."` expectation after the
				// directive inside the same comment; it is not justification.
				if i := strings.Index(just, "// want"); i >= 0 {
					just = just[:i]
				}
				pos := fset.Position(c.Slash)
				sups[lineKey(pos.Filename, pos.Line)] = &suppression{
					pos:       c.Slash,
					line:      pos.Line,
					file:      pos.Filename,
					justified: strings.TrimSpace(just) != "",
				}
			}
		}
	}
	return sups
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// applySuppressions filters the pass's raw diagnostics through the
// analyzer's directive comments. A justified directive on the diagnostic's
// line (or the line above) silences it; an unjustified one lets the
// diagnostic through with the rejection noted; a directive that silenced
// nothing becomes a finding itself.
func applySuppressions(pass *Pass) []Diagnostic {
	a := pass.Analyzer
	if a.Directive == "" {
		return pass.diags
	}
	sups := parseSuppressions(pass.Fset, pass.Files, a.Directive)
	var out []Diagnostic
	for _, d := range pass.diags {
		pos := pass.Fset.Position(d.Pos)
		var s *suppression
		for _, line := range []int{pos.Line, pos.Line - 1} {
			if c, ok := sups[lineKey(pos.Filename, line)]; ok {
				s = c
				break
			}
		}
		if s != nil {
			s.used = true
			if s.justified {
				continue
			}
			d.Message += fmt.Sprintf(" (suppression rejected: //vdtnlint:%s needs a justification; see docs/DETERMINISM.md)", a.Directive)
		}
		out = append(out, d)
	}
	for _, s := range sups {
		if s.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      s.pos,
			Analyzer: a.Name,
			Message:  fmt.Sprintf("unused //vdtnlint:%s directive: it suppresses nothing on this line or the next", a.Directive),
		})
	}
	return out
}
