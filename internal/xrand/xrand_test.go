package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference vector for xoshiro256++ seeded with splitmix64(1..).
// Computed once from this implementation and pinned; the point of the test
// is to catch accidental changes to the generator, which would silently
// change every experiment in the repo.
func TestDeterministicSequence(t *testing.T) {
	r := New(42)
	got := make([]uint64, 4)
	for i := range got {
		got[i] = r.Uint64()
	}
	r2 := New(42)
	for i := range got {
		if v := r2.Uint64(); v != got[i] {
			t.Fatalf("draw %d: %d != %d; generator is not deterministic", i, v, got[i])
		}
	}
}

func TestSplitmix64KnownAnswer(t *testing.T) {
	// Known-answer vector for splitmix64 with seed 0, from the reference
	// implementation by Sebastiano Vigna.
	s := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4,
		0x06c45d188009454f, 0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if g := splitmix64(&s); g != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, g, w)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/64 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestUniformFloatBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.UniformFloat(30, 50)
		if f < 30 || f >= 50 {
			t.Fatalf("UniformFloat(30,50) = %v out of range", f)
		}
	}
}

func TestUniformFloatMean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.UniformFloat(15, 30)
	}
	mean := sum / n
	if math.Abs(mean-22.5) > 0.1 {
		t.Fatalf("mean of U[15,30] = %v, want ~22.5", mean)
	}
}

func TestIntNCoversAllValues(t *testing.T) {
	r := New(3)
	seen := make(map[int]int)
	const n = 5
	for i := 0; i < 5000; i++ {
		v := r.IntN(n)
		if v < 0 || v >= n {
			t.Fatalf("IntN(%d) = %d out of range", n, v)
		}
		seen[v]++
	}
	for v := 0; v < n; v++ {
		if seen[v] == 0 {
			t.Fatalf("IntN(%d) never produced %d in 5000 draws", n, v)
		}
	}
}

func TestUniformIntInclusive(t *testing.T) {
	r := New(5)
	sawLo, sawHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.UniformInt(60, 180)
		if v < 60 || v > 180 {
			t.Fatalf("UniformInt(60,180) = %d out of range", v)
		}
		if v == 60 {
			sawLo = true
		}
		if v == 180 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatalf("UniformInt bounds not inclusive: lo=%v hi=%v", sawLo, sawHi)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 2, 3, 5, 8, 13, 21}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(0.5)
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("mean of Exp(0.5) = %v, want ~2.0", mean)
	}
}

func TestSourceStreamsIndependent(t *testing.T) {
	src := NewSource(1234)
	a := src.Stream("mobility")
	b := src.Stream("traffic")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams mobility/traffic share %d/64 draws", same)
	}
}

func TestSourceStreamReproducible(t *testing.T) {
	s1 := NewSource(99).Stream("policy")
	s2 := NewSource(99).Stream("policy")
	for i := 0; i < 32; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("same (seed, name) stream not reproducible")
		}
	}
}

func TestSourceStreamNDistinctPerIndex(t *testing.T) {
	src := NewSource(7)
	a := src.StreamN("mobility", 0)
	b := src.StreamN("mobility", 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("StreamN indices 0/1 share %d/64 draws", same)
	}
}

func TestRelatedSeedsUnrelatedStreams(t *testing.T) {
	a := NewSource(1000).Stream("traffic")
	b := NewSource(1001).Stream("traffic")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds share %d/64 draws on the same stream", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(21)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) rate = %v", p)
	}
}

func TestPanics(t *testing.T) {
	r := New(1)
	for name, fn := range map[string]func(){
		"IntN(0)":           func() { r.IntN(0) },
		"UniformInt(5,4)":   func() { r.UniformInt(5, 4) },
		"UniformFloat(2,1)": func() { r.UniformFloat(2, 1) },
		"Exp(0)":            func() { r.Exp(0) },
		"Shuffle(-1)":       func() { r.Shuffle(-1, func(i, j int) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntN(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.IntN(1000)
	}
}
