// Package xrand provides the deterministic pseudo-random substrate for the
// simulator.
//
// Every stochastic consumer in a simulation (each vehicle's mobility model,
// the traffic generator, the Random scheduling policy, ...) draws from its
// own named stream derived from one master seed. Streams are mutually
// independent xoshiro256++ generators whose states are seeded through
// splitmix64, the initialization recommended by the xoshiro authors. This
// gives two properties the experiment harness relies on:
//
//   - reproducibility: identical (seed, stream name) pairs yield identical
//     draw sequences, so a whole simulation is a pure function of its
//     configuration and seed;
//   - independence: adding a consumer (say, one more vehicle) does not
//     perturb the draws seen by existing consumers, which keeps ablation
//     sweeps comparable run-to-run.
package xrand

import (
	"hash/fnv"
	"math"
	"math/bits"
)

// splitmix64 advances *s and returns the next splitmix64 output.
// It is used to expand seeds into full generator states.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256++ pseudo-random generator. The zero value is not
// usable; obtain instances from New or Source.Stream.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64 expansion.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256++ requires a state that is not all zero; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// UniformFloat returns a uniform float64 in [lo, hi).
// It panics if hi < lo.
func (r *Rand) UniformFloat(lo, hi float64) float64 {
	if hi < lo {
		panic("xrand: UniformFloat bounds inverted")
	}
	return lo + (hi-lo)*r.Float64()
}

// IntN returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded rejection method.
func (r *Rand) IntN(n int) int {
	if n <= 0 {
		panic("xrand: IntN with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// UniformInt returns a uniform int in [lo, hi] (inclusive).
// It panics if hi < lo.
func (r *Rand) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("xrand: UniformInt bounds inverted")
	}
	return lo + r.IntN(hi-lo+1)
}

// Exp returns an exponentially distributed float64 with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	// Inverse transform; 1-Float64() avoids log(0).
	return -math.Log(1-r.Float64()) / lambda
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap,
// a Fisher-Yates shuffle. It panics if n < 0.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("xrand: Shuffle with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Source derives independent named streams from one master seed.
// It is the root of all randomness in a simulation run.
type Source struct {
	seed uint64
}

// NewSource returns a stream factory for the given master seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed reports the master seed the source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Stream returns the generator for the given stream name. Calling Stream
// twice with the same name returns two generators with identical state;
// callers are expected to request each stream once and keep it.
func (s *Source) Stream(name string) *Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	// Mix the name hash and the master seed through splitmix64 so that
	// related seeds (seed, seed+1) still yield unrelated streams.
	mix := s.seed ^ 0x632be59bd9b4e019
	a := splitmix64(&mix)
	mix ^= h.Sum64()
	b := splitmix64(&mix)
	return New(a ^ bits.RotateLeft64(b, 32))
}

// StreamN returns the generator for a (name, index) pair, for per-entity
// streams such as one mobility stream per vehicle.
func (s *Source) StreamN(name string, n int) *Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	var buf [8]byte
	v := uint64(n)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	mix := s.seed ^ 0x632be59bd9b4e019
	a := splitmix64(&mix)
	mix ^= h.Sum64()
	b := splitmix64(&mix)
	return New(a ^ bits.RotateLeft64(b, 32))
}
