package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"vdtn/internal/units"
)

// TestRecordContactsContextBackgroundMatches: with an uncancellable
// context the ctx-aware recording pass is bit-identical to the plain one
// — the checkpoint polling must not perturb the event order.
func TestRecordContactsContextBackgroundMatches(t *testing.T) {
	recA, err := RecordContacts(cancelConfig())
	if err != nil {
		t.Fatal(err)
	}
	recB, err := RecordContactsContext(context.Background(), cancelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recA, recB) {
		t.Fatal("RecordContactsContext recording differs from RecordContacts")
	}
}

// TestRecordContactsContextImmediateCancel: a context already cancelled
// returns its error and never a recording — a torn contact trace would be
// a valid-looking prefix, silently wrong on replay.
func TestRecordContactsContextImmediateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec, err := RecordContactsContext(ctx, cancelConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rec != nil {
		t.Fatal("cancelled recording pass returned a recording")
	}
}

// TestRecordContactsContextMidRunCancel: cancelling during the pass stops
// it within the checkpoint stride instead of running the horizon out.
func TestRecordContactsContextMidRunCancel(t *testing.T) {
	cfg := cancelConfig()
	cfg.Duration = units.Hours(200) // far longer than the test will wait
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rec, err := RecordContactsContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rec != nil {
		t.Fatal("cancelled recording pass returned a recording")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v, want within the checkpoint stride", elapsed)
	}
}
