package sim

import (
	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/geo"
	"vdtn/internal/mobility"
	"vdtn/internal/routing"
)

// Kind distinguishes the two node classes of the scenario.
type Kind int

// Node classes.
const (
	Vehicle Kind = iota
	Relay
)

// String names the kind.
func (k Kind) String() string {
	if k == Relay {
		return "relay"
	}
	return "vehicle"
}

// staticUntiler mirrors wireless.StaticUntiler structurally, so mobility
// models can offer the scan-skip hint without importing the radio layer.
type staticUntiler interface {
	StaticUntil(now float64) float64
}

// Node is one network participant: mobility + buffer + router + the
// delivery bookkeeping of the node as a destination.
type Node struct {
	id     int
	kind   Kind
	mob    mobility.Model
	hint   staticUntiler // mob's static-until hint, nil if it has none
	buf    *buffer.Store
	router routing.Router

	// delivered records message ids this node received as destination,
	// with the delivery time; the node refuses duplicates forever after.
	delivered map[bundle.ID]float64
}

func newNode(id int, kind Kind, mob mobility.Model, buf *buffer.Store, r routing.Router) *Node {
	hint, _ := mob.(staticUntiler)
	n := &Node{
		id:        id,
		kind:      kind,
		mob:       mob,
		hint:      hint,
		buf:       buf,
		router:    r,
		delivered: make(map[bundle.ID]float64),
	}
	r.Attach(id, buf)
	return n
}

// ID implements wireless.Entity.
func (n *Node) ID() int { return n.id }

// Position implements wireless.Entity.
func (n *Node) Position(now float64) geo.Point { return n.mob.Position(now) }

// StaticUntil implements wireless.StaticUntiler by forwarding the
// mobility model's hint: the proximity scan skips this node while its
// position is pinned (a stationary relay forever, a paused walker until
// the pause ends). Models without the hint never promise stillness.
func (n *Node) StaticUntil(now float64) float64 {
	if n.hint != nil {
		return n.hint.StaticUntil(now)
	}
	return now
}

// Kind returns the node class.
func (n *Node) Kind() Kind { return n.kind }

// Router returns the node's routing protocol instance.
func (n *Node) Router() routing.Router { return n.router }

// Buffer returns the node's message store.
func (n *Node) Buffer() *buffer.Store { return n.buf }

// DeliveredCount returns how many distinct messages this node has received
// as their destination.
func (n *Node) DeliveredCount() int { return len(n.delivered) }

// markDelivered records the first arrival of id; it reports whether this
// was indeed the first.
func (n *Node) markDelivered(id bundle.ID, now float64) bool {
	if _, dup := n.delivered[id]; dup {
		return false
	}
	n.delivered[id] = now
	return true
}

// peerView adapts a Node into the routing.Peer a remote router sees.
type peerView struct {
	n *Node
}

// ID implements routing.Peer.
func (p peerView) ID() int { return p.n.id }

// Has implements routing.Peer.
func (p peerView) Has(id bundle.ID) bool { return p.n.buf.Has(id) }

// HasDelivered implements routing.Peer.
func (p peerView) HasDelivered(id bundle.ID) bool {
	_, ok := p.n.delivered[id]
	return ok
}

// Router implements routing.Peer.
func (p peerView) Router() routing.Router { return p.n.router }
