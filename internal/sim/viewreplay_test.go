package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"vdtn/internal/wireless"
)

// protoPolicyPairs enumerates the full 7×6 protocol × policy matrix the
// replay-equivalence suites sweep.
func protoPolicyPairs() (protocols []ProtocolKind, policies []PolicyKind) {
	return []ProtocolKind{
			ProtoEpidemic, ProtoSprayAndWait, ProtoSprayAndWaitVanilla,
			ProtoMaxProp, ProtoPRoPHET, ProtoDirectDelivery, ProtoFirstContact,
		}, []PolicyKind{
			PolicyFIFOFIFO, PolicyRandomFIFO, PolicyLifetime,
			PolicySize, PolicyHopMOFO, PolicyFIFOOldestAge,
		}
}

// openViewOf encodes rec, persists it, and opens an mmap-backed view —
// the exact path a sweep process takes against a shared cache directory.
func openViewOf(t *testing.T, rec *wireless.Recording) *wireless.RecordingView {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.contactsb")
	if err := os.WriteFile(path, wireless.EncodeBinary(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := wireless.OpenRecordingView(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v
}

// TestViewReplayEquivalence extends the PR 1 equivalence suite to the
// zero-copy path: for every protocol × policy pair, a run replaying from
// an mmap-backed RecordingView is bit-identical — full Result and full
// event trace — to the run replaying the materialized in-memory recording
// of the same trace.
func TestViewReplayEquivalence(t *testing.T) {
	base := replayConfig(7)
	rec, err := RecordContacts(base)
	if err != nil {
		t.Fatal(err)
	}
	view := openViewOf(t, rec)

	protocols, policies := protoPolicyPairs()
	for _, proto := range protocols {
		for _, pol := range policies {
			t.Run(proto.String()+"/"+pol.String(), func(t *testing.T) {
				cfg := base
				cfg.Protocol = proto
				cfg.Policy = pol
				cfg.ContactSource = ContactReplay

				memCfg := cfg
				memCfg.Recording = rec
				memRes, memEvents := runTraced(t, memCfg)

				viewCfg := cfg
				viewCfg.ReplaySource = view
				viewRes, viewEvents := runTraced(t, viewCfg)

				if memRes != viewRes {
					t.Fatalf("view replay diverged from in-memory replay:\nmemory: %+v\nview:   %+v", memRes, viewRes)
				}
				if !reflect.DeepEqual(memEvents, viewEvents) {
					for i := range memEvents {
						if i >= len(viewEvents) || memEvents[i] != viewEvents[i] {
							t.Fatalf("event %d diverged: memory %+v, view %+v", i, memEvents[i], eventAt(viewEvents, i))
						}
					}
					t.Fatalf("view trace has %d extra events", len(viewEvents)-len(memEvents))
				}
			})
		}
	}
}

// TestViewReplayConcurrentCells replays many cells concurrently from ONE
// shared view — the sweep-worker topology — and checks every cell against
// its in-memory replay. Run under -race this is the view's thread-safety
// proof: concurrent cursors over one mapped stream, no shared mutable
// state.
func TestViewReplayConcurrentCells(t *testing.T) {
	base := replayConfig(9)
	rec, err := RecordContacts(base)
	if err != nil {
		t.Fatal(err)
	}
	view := openViewOf(t, rec)

	protocols, policies := protoPolicyPairs()
	type cell struct {
		proto ProtocolKind
		pol   PolicyKind
	}
	var cells []cell
	for _, proto := range protocols {
		for _, pol := range policies {
			cells = append(cells, cell{proto, pol})
		}
	}

	want := make([]Result, len(cells))
	for i, c := range cells {
		cfg := base
		cfg.Protocol = c.proto
		cfg.Policy = c.pol
		cfg.ContactSource = ContactReplay
		cfg.Recording = rec
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w.Run()
	}

	got := make([]Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			cfg := base
			cfg.Protocol = c.proto
			cfg.Policy = c.pol
			cfg.ContactSource = ContactReplay
			cfg.ReplaySource = view
			w, err := New(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = w.Run()
		}(i, c)
	}
	wg.Wait()
	for i, c := range cells {
		if errs[i] != nil {
			t.Fatalf("%v/%v: %v", c.proto, c.pol, errs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("%v/%v: concurrent shared-view replay diverged:\nwant %+v\ngot  %+v",
				c.proto, c.pol, want[i], got[i])
		}
	}
}

// TestReplaySourceValidation covers the Config.ReplaySource arms of
// Validate: both-set and neither-set are errors, and a view is checked for
// scenario fit exactly like a recording.
func TestReplaySourceValidation(t *testing.T) {
	rec, err := RecordContacts(replayConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	view := openViewOf(t, rec)

	c := replayConfig(1)
	c.ContactSource = ContactReplay
	c.ReplaySource = view
	if err := c.Validate(); err != nil {
		t.Fatalf("valid view replay config rejected: %v", err)
	}

	both := c
	both.Recording = rec
	if err := both.Validate(); err == nil {
		t.Fatal("config with both Recording and ReplaySource accepted")
	}

	neither := replayConfig(1)
	neither.ContactSource = ContactReplay
	if err := neither.Validate(); err == nil {
		t.Fatal("replay config with no trace source accepted")
	}

	overflow := c
	overflow.Vehicles = 2
	overflow.Relays = 0
	if err := overflow.Validate(); err == nil {
		t.Fatal("view referencing out-of-range nodes accepted")
	}

	tooLong := c
	tooLong.Duration = rec.Duration * 2
	if err := tooLong.Validate(); err == nil {
		t.Fatal("run longer than the view's horizon accepted")
	}
}
