package sim

import (
	"testing"

	"vdtn/internal/roadmap"
	"vdtn/internal/units"
)

// quickConfig is a scaled-down scenario for fast integration tests:
// a small grid, 12 vehicles, 2 relays, 2 simulated hours.
func quickConfig(seed uint64) Config {
	c := DefaultConfig()
	c.Seed = seed
	c.Duration = units.Hours(2)
	c.Map = roadmap.Grid(6, 6, 300)
	c.Vehicles = 12
	c.Relays = 2
	c.VehicleBuffer = units.MB(20)
	c.RelayBuffer = units.MB(50)
	c.TTL = units.Minutes(45)
	return c
}

func TestConfigValidateRejectsBadConfigs(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero duration":     func(c *Config) { c.Duration = 0 },
		"one vehicle":       func(c *Config) { c.Vehicles = 1 },
		"negative relays":   func(c *Config) { c.Relays = -1 },
		"zero buffer":       func(c *Config) { c.VehicleBuffer = 0 },
		"zero relay buffer": func(c *Config) { c.RelayBuffer = 0 },
		"inverted speeds":   func(c *Config) { c.SpeedLo, c.SpeedHi = 20, 10 },
		"negative pause":    func(c *Config) { c.PauseLo = -1 },
		"zero range":        func(c *Config) { c.Range = 0 },
		"zero rate":         func(c *Config) { c.Rate = 0 },
		"zero scan":         func(c *Config) { c.ScanInterval = 0 },
		"bad msg interval":  func(c *Config) { c.MsgIntervalLo = 0 },
		"bad msg size":      func(c *Config) { c.MsgSizeLo = 0 },
		"zero ttl":          func(c *Config) { c.TTL = 0 },
		"gen end beyond":    func(c *Config) { c.MessageGenEnd = c.Duration + 1 },
		"zero spray copies": func(c *Config) { c.Protocol = ProtoSprayAndWait; c.SprayCopies = 0 },
	}
	for name, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestWorldAssembly(t *testing.T) {
	w, err := New(quickConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.NodeCount() != 14 {
		t.Fatalf("NodeCount = %d, want 14", w.NodeCount())
	}
	for i := 0; i < 12; i++ {
		if w.Node(i).Kind() != Vehicle {
			t.Fatalf("node %d is %v, want vehicle", i, w.Node(i).Kind())
		}
	}
	for i := 12; i < 14; i++ {
		if w.Node(i).Kind() != Relay {
			t.Fatalf("node %d is %v, want relay", i, w.Node(i).Kind())
		}
	}
	// Relays sit on map vertices.
	g := w.Graph()
	for i := 12; i < 14; i++ {
		p := w.Node(i).Position(0)
		if g.Vertex(g.NearestVertex(p)).Dist(p) > 1e-6 {
			t.Fatalf("relay %d not on a map vertex: %v", i, p)
		}
	}
}

func TestWorldRejectsInvalidConfig(t *testing.T) {
	c := DefaultConfig()
	c.Vehicles = 0
	if _, err := New(c); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestRunDeterminism(t *testing.T) {
	r1 := mustRun(t, quickConfig(42))
	r2 := mustRun(t, quickConfig(42))
	if r1 != r2 {
		t.Fatalf("same seed, different results:\n%+v\n%+v", r1, r2)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	r1 := mustRun(t, quickConfig(1))
	r2 := mustRun(t, quickConfig(2))
	if r1.Created == r2.Created && r1.Delivered == r2.Delivered &&
		r1.AvgDelay == r2.AvgDelay && r1.Contacts == r2.Contacts {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestEpidemicDeliversMessages(t *testing.T) {
	r := mustRun(t, quickConfig(7))
	if r.Created < 100 {
		t.Fatalf("only %d messages created in 2h (expected ~300)", r.Created)
	}
	if r.Delivered == 0 {
		t.Fatal("epidemic delivered nothing")
	}
	if r.DeliveryProbability <= 0 || r.DeliveryProbability > 1 {
		t.Fatalf("delivery probability %v out of range", r.DeliveryProbability)
	}
	if r.Contacts == 0 {
		t.Fatal("no contacts in a 2h urban scenario")
	}
}

func TestDelaysBoundedByTTL(t *testing.T) {
	c := quickConfig(3)
	r := mustRun(t, c)
	if r.Delivered == 0 {
		t.Skip("no deliveries to check")
	}
	if r.AvgDelay <= 0 {
		t.Fatalf("AvgDelay = %v", r.AvgDelay)
	}
	if r.P95Delay > c.TTL {
		t.Fatalf("p95 delay %v exceeds TTL %v: expired messages delivered", r.P95Delay, c.TTL)
	}
}

func TestNoDuplicateDeliveries(t *testing.T) {
	r := mustRun(t, quickConfig(11))
	if r.DeliveredDuplicate != 0 {
		t.Fatalf("%d duplicate deliveries; destination dedup broken", r.DeliveredDuplicate)
	}
}

func TestBuffersNeverExceedCapacity(t *testing.T) {
	c := quickConfig(5)
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	for i := 0; i < w.NodeCount(); i++ {
		n := w.Node(i)
		if n.Buffer().Used() > n.Buffer().Capacity() {
			t.Fatalf("node %d buffer over capacity: %v > %v",
				i, n.Buffer().Used(), n.Buffer().Capacity())
		}
	}
}

func TestShortTTLExpires(t *testing.T) {
	c := quickConfig(9)
	c.TTL = units.Minutes(5) // most messages die before delivery
	r := mustRun(t, c)
	if r.Expired == 0 {
		t.Fatal("no TTL expiries with a 5-minute TTL")
	}
}

func TestSmallBufferDrops(t *testing.T) {
	c := quickConfig(13)
	c.VehicleBuffer = units.MB(4) // ~3 messages worth
	c.RelayBuffer = units.MB(4)
	r := mustRun(t, c)
	if r.Dropped == 0 {
		t.Fatal("no overflow drops with 4 MB buffers under epidemic flooding")
	}
}

func TestAllProtocolsRun(t *testing.T) {
	protos := []ProtocolKind{
		ProtoEpidemic, ProtoSprayAndWait, ProtoSprayAndWaitVanilla,
		ProtoMaxProp, ProtoPRoPHET, ProtoDirectDelivery, ProtoFirstContact,
	}
	for _, p := range protos {
		c := quickConfig(17)
		c.Protocol = p
		r := mustRun(t, c)
		if r.Created == 0 {
			t.Fatalf("%v: no messages created", p)
		}
		if r.Delivered == 0 {
			t.Errorf("%v: delivered nothing in 2h (suspicious)", p)
		}
	}
}

func TestEpidemicBeatsDirectDelivery(t *testing.T) {
	// Epidemic replication must dominate the zero-replication baseline on
	// delivery ratio for the same scenario and seed.
	direct := quickConfig(21)
	direct.Protocol = ProtoDirectDelivery
	epi := quickConfig(21)
	epi.Protocol = ProtoEpidemic

	rd := mustRun(t, direct)
	re := mustRun(t, epi)
	if re.DeliveryProbability < rd.DeliveryProbability {
		t.Fatalf("epidemic (%v) below direct delivery (%v)",
			re.DeliveryProbability, rd.DeliveryProbability)
	}
}

func TestPolicyVariantsRun(t *testing.T) {
	for _, pol := range []PolicyKind{PolicyFIFOFIFO, PolicyRandomFIFO, PolicyLifetime} {
		c := quickConfig(23)
		c.Policy = pol
		r := mustRun(t, c)
		if r.Delivered == 0 {
			t.Errorf("%v: delivered nothing", pol)
		}
	}
}

func TestMessageGenEndStopsTraffic(t *testing.T) {
	c := quickConfig(25)
	c.MessageGenEnd = units.Minutes(30)
	r := mustRun(t, c)
	full := mustRun(t, quickConfig(25))
	if r.Created >= full.Created {
		t.Fatalf("gen end had no effect: %d vs %d", r.Created, full.Created)
	}
	if r.Created < 40 {
		t.Fatalf("only %d messages in 30 min of generation", r.Created)
	}
}

func TestRunTwicePanics(t *testing.T) {
	w, err := New(quickConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	w.Run()
}

func TestTransferAccounting(t *testing.T) {
	r := mustRun(t, quickConfig(29))
	if r.TransfersStarted != r.TransfersCompleted+r.TransfersAborted {
		// At the horizon, an in-flight transfer may be neither; allow a
		// gap of at most the node count.
		gap := r.TransfersStarted - r.TransfersCompleted - r.TransfersAborted
		if gap > uint64(14/2) {
			t.Fatalf("transfer accounting leak: started %d, completed %d, aborted %d",
				r.TransfersStarted, r.TransfersCompleted, r.TransfersAborted)
		}
	}
	if uint64(r.Aborted) != r.TransfersAborted {
		t.Fatalf("ledger aborts %d != medium aborts %d", r.Aborted, r.TransfersAborted)
	}
}

func TestLabel(t *testing.T) {
	c := PaperConfig(90, ProtoEpidemic, PolicyLifetime, 1)
	if got := c.Label(); got != "Epidemic/LifetimeDESC-LifetimeASC ttl=1h30m" {
		t.Fatalf("Label = %q", got)
	}
	c2 := PaperConfig(60, ProtoMaxProp, PolicyFIFOFIFO, 1)
	if got := c2.Label(); got != "MaxProp ttl=1h00m" {
		t.Fatalf("MaxProp label = %q", got)
	}
}

func mustRun(t *testing.T, c Config) Result {
	t.Helper()
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return w.Run()
}

func BenchmarkQuickScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := quickConfig(uint64(i + 1))
		w, err := New(c)
		if err != nil {
			b.Fatal(err)
		}
		w.Run()
	}
}
