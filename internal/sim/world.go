// Package sim assembles the full VDTN simulation: it wires the road map,
// mobility models, radio medium, routers, traffic generator and metrics
// ledger together and runs the scenario on the discrete-event scheduler.
//
// The simulator owns all cross-node mechanics — contact lifecycle,
// transfer scheduling, delivery bookkeeping — and consults the per-node
// routers (internal/routing) for every protocol decision. A run is a pure
// function of its Config (including the seed): repeated runs produce
// identical Results.
package sim

import (
	"context"
	"fmt"

	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/event"
	"vdtn/internal/mobility"
	"vdtn/internal/roadmap"
	"vdtn/internal/routing"
	"vdtn/internal/stats"
	"vdtn/internal/trace"
	"vdtn/internal/units"
	"vdtn/internal/wireless"
	"vdtn/internal/xrand"
)

// deliveryObserver is implemented by routers that need to learn about
// deliveries at the destination itself (MaxProp's acknowledgment origin).
type deliveryObserver interface {
	OnDelivered(now float64, m *bundle.Message)
}

// Result is the outcome of one simulation run. The JSON names are part of
// the experiment harness's machine-readable artifact schema; the embedded
// Report's fields inline alongside them.
type Result struct {
	stats.Report
	// Label identifies the scenario (protocol/policy/TTL).
	Label string `json:"label"`
	// Seed is the master seed the run used.
	Seed uint64 `json:"seed"`
	// Contacts counts contact-up events over the run.
	Contacts uint64 `json:"contacts"`
	// TransfersStarted/Completed/Aborted are radio-level transfer counts.
	TransfersStarted   uint64 `json:"transfers_started"`
	TransfersCompleted uint64 `json:"transfers_completed"`
	TransfersAborted   uint64 `json:"transfers_aborted"`
	// MeanBufferOccupancy is the network-wide mean buffer fill fraction,
	// sampled at every TTL sweep inside the measurement window.
	MeanBufferOccupancy float64 `json:"mean_buffer_occupancy"`
}

// World is an assembled scenario ready to run.
type World struct {
	cfg    Config
	sched  *event.Scheduler
	medium *wireless.Medium
	graph  *roadmap.Graph
	nodes  []*Node

	src        *xrand.Source
	trafficRng *xrand.Rand
	factory    *bundle.Factory
	ledger     stats.Ledger

	genEnd float64
	ran    bool

	// Buffer occupancy sampling (at every sweep tick).
	occSum     float64
	occSamples int
}

// counted reports whether message m falls inside the measurement window
// (created at or after the warm-up boundary).
func (w *World) counted(m *bundle.Message) bool {
	return m.Created >= w.cfg.Warmup
}

// dropEvicted accounts and traces a batch of overflow evictions at node.
func (w *World) dropEvicted(now float64, node int, evicted []*bundle.Message) {
	for _, e := range evicted {
		if w.counted(e) {
			w.ledger.MsgDropped(1)
		}
		w.emit(trace.Event{Time: now, Kind: trace.Dropped, A: node, B: -1, Msg: e.ID})
	}
}

// New assembles a world from cfg. It returns an error for invalid
// configurations; all later failures are programming errors and panic.
func New(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Plan and replay runs never query positions, so mobility (and the
	// map behind it) is skipped entirely and every node sits at the origin.
	planMode := cfg.Plan != nil || cfg.ContactSource == ContactReplay
	graph := cfg.Map
	if !planMode {
		if graph == nil {
			graph = roadmap.HelsinkiLike()
		}
		if err := graph.Validate(); err != nil {
			return nil, fmt.Errorf("sim: scenario map invalid: %w", err)
		}
	}

	w := &World{
		cfg:     cfg,
		sched:   event.NewScheduler(),
		graph:   graph,
		src:     xrand.NewSource(cfg.Seed),
		factory: bundle.NewFactory(),
		genEnd:  cfg.MessageGenEnd,
	}
	if w.genEnd == 0 {
		w.genEnd = cfg.Duration
	}
	sweep := cfg.SweepInterval
	if sweep == 0 {
		sweep = 30
	}
	w.cfg.SweepInterval = sweep
	w.trafficRng = w.src.Stream("traffic")

	w.medium = wireless.NewMedium(w.sched, wireless.Config{
		Range:        cfg.Range,
		Rate:         cfg.Rate,
		ScanInterval: cfg.ScanInterval,
		ScanWorkers:  cfg.ScanWorkers,
	})

	walkCfg := mobility.MapWalkConfig{
		SpeedLoMs: cfg.SpeedLo,
		SpeedHiMs: cfg.SpeedHi,
		PauseLoS:  cfg.PauseLo,
		PauseHiS:  cfg.PauseHi,
	}
	// Vehicles: ids 0..Vehicles-1. In contact-plan mode positions are
	// meaningless, so every node is stationary at the origin.
	for i := 0; i < cfg.Vehicles; i++ {
		var mob mobility.Model = mobility.Stationary{}
		if !planMode {
			mob = mobility.NewMapWalk(graph, w.src.StreamN("mobility", i), walkCfg)
		}
		r := cfg.buildRouter(i, w.src.StreamN("policy", i))
		w.addNode(newNode(i, Vehicle, mob, buffer.NewStore(cfg.VehicleBuffer), r))
	}
	// Relays: ids Vehicles..Vehicles+Relays-1, at spread-out crossroads.
	if cfg.Relays > 0 {
		var sites []int
		if !planMode {
			sites = roadmap.RelaySites(graph, cfg.Relays)
		}
		for i := 0; i < cfg.Relays; i++ {
			id := cfg.Vehicles + i
			var mob mobility.Model = mobility.Stationary{}
			if !planMode {
				mob = mobility.Stationary{At: graph.Vertex(sites[i])}
			}
			r := cfg.buildRouter(id, w.src.StreamN("policy", id))
			w.addNode(newNode(id, Relay, mob, buffer.NewStore(cfg.RelayBuffer), r))
		}
	}
	w.medium.SetHandler(w)
	return w, nil
}

func (w *World) addNode(n *Node) {
	w.nodes = append(w.nodes, n)
	w.medium.Add(n)
	// TTL expiries are accounted (and traced) wherever they happen —
	// router decision points or the periodic sweep.
	id := n.id
	n.buf.SetExpireHook(func(now float64, dead []*bundle.Message) {
		for _, m := range dead {
			if w.counted(m) {
				w.ledger.MsgExpired(1)
			}
			w.emit(trace.Event{Time: now, Kind: trace.Expired, A: id, B: -1, Msg: m.ID})
		}
	})
}

// emit forwards a trace event to the configured consumer, if any.
func (w *World) emit(ev trace.Event) {
	if w.cfg.Trace != nil {
		w.cfg.Trace(ev)
	}
}

// NodeCount returns the number of nodes (vehicles + relays).
func (w *World) NodeCount() int { return len(w.nodes) }

// Node returns node id (0-based; vehicles first, then relays).
func (w *World) Node(id int) *Node { return w.nodes[id] }

// Graph returns the scenario road network.
func (w *World) Graph() *roadmap.Graph { return w.graph }

// Now returns the current simulation time.
func (w *World) Now() float64 { return w.sched.Now() }

// Run executes the scenario to its configured duration and returns the
// run metrics. Run may be called once per World.
func (w *World) Run() Result {
	res, err := w.RunContext(context.Background())
	if err != nil {
		// Background contexts cannot cancel, so this is unreachable.
		panic(err.Error())
	}
	return res
}

// cancelCheckStride bounds how many events fire between two cancellation
// checkpoints. The scheduler fires millions of events per simulated hour,
// so a few hundred events of cancel latency are invisible to a human while
// keeping the per-event overhead of an atomic channel poll negligible.
const cancelCheckStride = 256

// RunContext executes the scenario like Run, checking ctx between events.
// Cancellation is cooperative and deterministic: the run stops at an
// event boundary — never inside one — and returns ctx.Err() with a zero
// Result, so a caller can never observe a torn half-run Result. Every
// trace event emitted before the cut is a prefix of the uninterrupted
// run's trace (events fire in a deterministic total order). A run whose
// final event fires before the cancellation is noticed completes normally
// and returns its Result. RunContext may be called once per World; a
// cancelled World cannot be resumed. In ContactRecord mode a cancelled
// run leaves Config.Recording holding the prefix recorded so far —
// discard it.
func (w *World) RunContext(ctx context.Context) (Result, error) {
	if w.ran {
		panic("sim: World.Run called twice")
	}
	w.ran = true
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Release the parallel-scan worker pool (if ScanWorkers built one) on
	// every exit path, including cancellation; a no-op for serial runs.
	defer w.medium.Stop()

	switch {
	case w.cfg.Plan != nil:
		windows := w.cfg.Plan.Windows()
		wins := make([]wireless.ContactWindow, len(windows))
		for i, c := range windows {
			wins[i] = wireless.ContactWindow{A: c.A, B: c.B, Start: c.Start, End: c.End}
		}
		w.medium.StartPlan(wins)
	case w.cfg.ContactSource == ContactReplay:
		w.medium.StartReplay(0, w.cfg.replaySource())
	default:
		if w.cfg.ContactSource == ContactRecord {
			*w.cfg.Recording = wireless.Recording{Duration: w.cfg.Duration}
			w.medium.RecordTo(w.cfg.Recording)
		}
		w.medium.Start(0)
	}
	w.sched.Every(w.cfg.SweepInterval, w.cfg.SweepInterval, w.sweep)
	if len(w.cfg.Script) > 0 {
		for _, s := range w.cfg.Script {
			s := s
			w.sched.At(s.Time, func(now float64) { w.createScripted(now, s) })
		}
	} else {
		w.scheduleNextMessage(0)
	}
	if done := ctx.Done(); done == nil {
		// Uncancellable context: skip the checkpoint polling entirely, so
		// Run stays exactly as fast as before contexts existed.
		w.sched.RunUntil(w.cfg.Duration)
	} else {
		cancelled := w.sched.RunUntilCheck(w.cfg.Duration, cancelCheckStride, func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		})
		if cancelled {
			return Result{}, ctx.Err()
		}
	}

	res := Result{
		Report:             w.ledger.Report(),
		Label:              w.cfg.Label(),
		Seed:               w.cfg.Seed,
		Contacts:           w.medium.ContactsSeen,
		TransfersStarted:   w.medium.TransfersStarted,
		TransfersCompleted: w.medium.TransfersCompleted,
		TransfersAborted:   w.medium.TransfersAborted,
	}
	if w.occSamples > 0 {
		res.MeanBufferOccupancy = w.occSum / float64(w.occSamples)
	}
	return res, nil
}

// sweep expires TTLs network-wide (the per-store hook accounts the deaths)
// and samples buffer occupancy.
func (w *World) sweep(now float64) {
	occ := 0.0
	for _, n := range w.nodes {
		n.buf.Expire(now)
		occ += n.buf.Occupancy()
	}
	if now >= w.cfg.Warmup {
		w.occSum += occ / float64(len(w.nodes))
		w.occSamples++
	}
}

// --- traffic generation ----------------------------------------------------

// scheduleNextMessage chains message-creation events with uniform gaps.
func (w *World) scheduleNextMessage(now float64) {
	gap := w.trafficRng.UniformFloat(w.cfg.MsgIntervalLo, w.cfg.MsgIntervalHi)
	t := now + gap
	if t > w.genEnd {
		return
	}
	w.sched.At(t, func(tn float64) {
		w.createMessage(tn)
		w.scheduleNextMessage(tn)
	})
}

// createMessage generates one message between distinct random vehicles.
func (w *World) createMessage(now float64) {
	src := w.trafficRng.IntN(w.cfg.Vehicles)
	dst := src
	for dst == src {
		dst = w.trafficRng.IntN(w.cfg.Vehicles)
	}
	size := units.Bytes(w.trafficRng.UniformInt(int(w.cfg.MsgSizeLo), int(w.cfg.MsgSizeHi)))
	w.inject(now, src, dst, size)
}

// createScripted injects one Config.Script entry.
func (w *World) createScripted(now float64, s ScriptedMessage) {
	w.inject(now, s.From, s.To, s.Size)
}

// inject creates a message at src destined to dst and accounts it.
func (w *World) inject(now float64, src, dst int, size units.Bytes) {
	m := bundle.New(w.factory.NextID(), src, dst, size, now, w.cfg.TTL)

	node := w.nodes[src]
	accepted, evicted := node.router.AddMessage(now, m)
	if w.counted(m) {
		w.ledger.MsgCreated(!accepted)
	}
	w.emit(trace.Event{Time: now, Kind: trace.Created, A: src, B: dst, Msg: m.ID})
	w.dropEvicted(now, src, evicted)
	if accepted {
		// The new message may be eligible on contacts already up.
		w.refreshQueues(now, node)
		w.pump(now, node, nil)
	}
}

// --- contact lifecycle (wireless.ContactHandler) ----------------------------

// ContactUp implements wireless.ContactHandler.
func (w *World) ContactUp(now float64, a, b wireless.Entity) {
	na, nb := w.nodes[a.ID()], w.nodes[b.ID()]
	w.emit(trace.Event{Time: now, Kind: trace.ContactUp, A: na.id, B: nb.id})
	na.router.ContactUp(now, peerView{nb})
	nb.router.ContactUp(now, peerView{na})
	if !w.tryStart(now, na, nb) {
		w.tryStart(now, nb, na)
	}
}

// ContactDown implements wireless.ContactHandler. The medium has already
// aborted any transfer riding the pair.
func (w *World) ContactDown(now float64, a, b wireless.Entity) {
	na, nb := w.nodes[a.ID()], w.nodes[b.ID()]
	w.emit(trace.Event{Time: now, Kind: trace.ContactDown, A: na.id, B: nb.id})
	na.router.ContactDown(now, peerView{nb})
	nb.router.ContactDown(now, peerView{na})
}

// --- transfer engine ---------------------------------------------------------

// tryStart attempts to begin one transfer from -> to. It reports whether a
// transfer started.
func (w *World) tryStart(now float64, from, to *Node) bool {
	if w.medium.Busy(from.id) || w.medium.Busy(to.id) || !w.medium.Connected(from.id, to.id) {
		return false
	}
	send := from.router.NextSend(now, peerView{to})
	if send == nil {
		return false
	}
	started := w.medium.StartTransfer(now, from.id, to.id, send.Msg.Size,
		func(doneNow float64) { w.completeTransfer(doneNow, from, to, send) },
		func(abortNow float64) {
			w.emit(trace.Event{Time: abortNow, Kind: trace.TransferAbort, A: from.id, B: to.id, Msg: send.Msg.ID})
			from.router.OnAbort(abortNow, peerView{to}, send)
			if w.counted(send.Msg) {
				w.ledger.MsgAborted()
			}
			// The abort implies the contact broke; radios are free again,
			// so both ends may resume talking to other neighbours.
			w.pump(abortNow, from, to)
		})
	if !started {
		// Unreachable given the guards above, but never lose the popped
		// message if the medium refuses.
		from.router.OnAbort(now, peerView{to}, send)
		return false
	}
	w.emit(trace.Event{Time: now, Kind: trace.TransferStart, A: from.id, B: to.id, Msg: send.Msg.ID})
	return true
}

// completeTransfer lands a finished transfer: deliver or relay, notify the
// sender, and keep the radios busy with follow-up work.
func (w *World) completeTransfer(now float64, from, to *Node, send *routing.Send) {
	wire := send.Msg.ForwardTo(to.id, now)
	wire.Copies = 1
	if send.TransferCopies > 0 {
		wire.Copies = send.TransferCopies
	}

	w.emit(trace.Event{Time: now, Kind: trace.TransferComplete, A: from.id, B: to.id, Msg: wire.ID})
	delivered := wire.To == to.id
	if delivered {
		first := to.markDelivered(wire.ID, now)
		if w.counted(wire) {
			w.ledger.MsgDelivered(now-wire.Created, wire.HopCount, first)
		}
		w.emit(trace.Event{Time: now, Kind: trace.Delivered, A: from.id, B: to.id, Msg: wire.ID})
		if obs, ok := to.router.(deliveryObserver); ok {
			obs.OnDelivered(now, wire)
		}
	} else {
		accepted, evicted := to.router.Receive(now, wire, peerView{from})
		if w.counted(wire) {
			w.ledger.MsgRelayed(accepted)
		}
		kind := trace.RelayRejected
		if accepted {
			kind = trace.RelayAccepted
		}
		w.emit(trace.Event{Time: now, Kind: kind, A: from.id, B: to.id, Msg: wire.ID})
		w.dropEvicted(now, to.id, evicted)
		if accepted {
			// The receiver's other live contacts should see the new
			// replica without waiting for a fresh contact.
			w.refreshQueues(now, to)
		}
	}
	from.router.OnSent(now, peerView{to}, send, delivered)
	if kept, ok := from.buf.Get(send.Msg.ID); ok {
		kept.Forwards++ // feeds the MOFO dropping policy
	}

	// Give the receiving side the first chance to respond (alternating
	// directions approximates the ONE's fair bidirectional exchange),
	// then saturate both radios with any waiting neighbours.
	w.pump(now, to, from)
}

// refreshQueues rebuilds n's send queues towards all its live contacts.
func (w *World) refreshQueues(now float64, n *Node) {
	for _, pid := range w.medium.PeersOf(n.id) {
		n.router.Refresh(now, peerView{w.nodes[pid]})
	}
}

// pump starts as many transfers as the freed radios allow: first the
// reverse direction on the finishing pair, then every live contact of both
// endpoints in ascending peer order.
func (w *World) pump(now float64, first, second *Node) {
	if second != nil {
		if !w.tryStart(now, first, second) {
			w.tryStart(now, second, first)
		}
	}
	for _, n := range []*Node{first, second} {
		if n == nil {
			continue
		}
		if w.medium.Busy(n.id) {
			continue
		}
		for _, pid := range w.medium.PeersOf(n.id) {
			if w.medium.Busy(n.id) {
				break // a transfer started in a previous iteration
			}
			p := w.nodes[pid]
			if !w.tryStart(now, n, p) {
				w.tryStart(now, p, n)
			}
		}
	}
}
