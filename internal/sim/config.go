package sim

import (
	"fmt"

	"vdtn/internal/contactplan"
	"vdtn/internal/core"
	"vdtn/internal/roadmap"
	"vdtn/internal/routing"
	"vdtn/internal/trace"
	"vdtn/internal/units"
	"vdtn/internal/wireless"
	"vdtn/internal/xrand"
)

// ContactSource selects where a run's contact process comes from.
type ContactSource int

const (
	// ContactLive detects contacts by proximity scanning over the mobility
	// models — the paper's mode, and the default.
	ContactLive ContactSource = iota
	// ContactRecord runs live and additionally captures every contact
	// transition into Config.Recording, for later replay.
	ContactRecord
	// ContactReplay drives contacts from Config.Recording instead of
	// mobility and proximity scanning. A replayed run is bit-identical to
	// the live run that recorded the trace (same seed, same Result, same
	// trace events), but skips all position and proximity work.
	ContactReplay
)

// String names the contact source.
func (s ContactSource) String() string {
	switch s {
	case ContactLive:
		return "live"
	case ContactRecord:
		return "record"
	case ContactReplay:
		return "replay"
	default:
		return fmt.Sprintf("ContactSource(%d)", int(s))
	}
}

// ProtocolKind selects the routing protocol for a scenario.
type ProtocolKind int

// The protocols the paper evaluates, plus two classic baselines.
const (
	ProtoEpidemic ProtocolKind = iota
	ProtoSprayAndWait
	ProtoSprayAndWaitVanilla
	ProtoMaxProp
	ProtoPRoPHET
	ProtoDirectDelivery
	ProtoFirstContact
)

// String returns the report name of the protocol.
func (p ProtocolKind) String() string {
	switch p {
	case ProtoEpidemic:
		return "Epidemic"
	case ProtoSprayAndWait:
		return "SprayAndWait"
	case ProtoSprayAndWaitVanilla:
		return "SprayAndWaitVanilla"
	case ProtoMaxProp:
		return "MaxProp"
	case ProtoPRoPHET:
		return "PRoPHET"
	case ProtoDirectDelivery:
		return "DirectDelivery"
	case ProtoFirstContact:
		return "FirstContact"
	default:
		return fmt.Sprintf("ProtocolKind(%d)", int(p))
	}
}

// PolicyKind selects the combined scheduling-dropping policy (Table I) for
// protocols that take one (Epidemic, Spray and Wait, the baselines).
// MaxProp and PRoPHET ignore it: they carry their own mechanisms.
type PolicyKind int

// The paper's Table I rows, followed by the extended literature policies
// (see internal/core/extra.go).
const (
	PolicyFIFOFIFO PolicyKind = iota
	PolicyRandomFIFO
	PolicyLifetime
	// PolicySize pairs smallest-first scheduling with largest-first drop.
	PolicySize
	// PolicyHopMOFO pairs fewest-hops-first scheduling with
	// most-forwarded-first drop.
	PolicyHopMOFO
	// PolicyFIFOOldestAge pairs FIFO scheduling with oldest-creation drop.
	PolicyFIFOOldestAge
)

// String returns the paper's name for the policy pair.
func (k PolicyKind) String() string {
	switch k {
	case PolicyFIFOFIFO:
		return "FIFO-FIFO"
	case PolicyRandomFIFO:
		return "Random-FIFO"
	case PolicyLifetime:
		return "LifetimeDESC-LifetimeASC"
	case PolicySize:
		return "SizeASC-SizeDESC"
	case PolicyHopMOFO:
		return "HopASC-MOFO"
	case PolicyFIFOOldestAge:
		return "FIFO-OldestAge"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// build materializes the policy; rnd feeds the Random scheduler and must be
// the node's own stream so runs stay reproducible.
func (k PolicyKind) build(rnd *xrand.Rand) core.Policy {
	switch k {
	case PolicyFIFOFIFO:
		return core.FIFOFIFO()
	case PolicyRandomFIFO:
		return core.RandomFIFO(rnd)
	case PolicyLifetime:
		return core.Lifetime()
	case PolicySize:
		return core.Policy{Schedule: core.SizeASCSchedule{}, Drop: core.SizeDESCDrop{}}
	case PolicyHopMOFO:
		return core.Policy{Schedule: core.HopCountASCSchedule{}, Drop: core.MOFODrop{}}
	case PolicyFIFOOldestAge:
		return core.Policy{Schedule: core.FIFOSchedule{}, Drop: core.OldestAgeDrop{}}
	default:
		panic(fmt.Sprintf("sim: unknown policy kind %d", int(k)))
	}
}

// Config fully describes a simulation scenario. The zero value is not
// runnable; start from PaperConfig or DefaultConfig and adjust.
type Config struct {
	// Seed is the master random seed; every stochastic component derives
	// its stream from it.
	Seed uint64
	// Duration is the simulated time horizon in seconds.
	Duration float64

	// Map is the road network; nil selects roadmap.HelsinkiLike().
	// Ignored in contact-plan mode.
	Map *roadmap.Graph

	// Plan, when non-nil, switches the scenario to contact-plan mode:
	// connectivity comes from the scheduled windows instead of mobility
	// and radio range (positions are ignored; node ids in the plan must
	// be < Vehicles+Relays). Use for replaying recorded connectivity
	// traces or scripting exact topologies.
	Plan *contactplan.Plan

	// Script, when non-empty, replaces the random traffic generator with
	// exactly these messages (each with the scenario TTL). Use together
	// with Plan for fully deterministic micro-scenarios.
	Script []ScriptedMessage

	// ContactSource selects live proximity scanning (default), recording,
	// or replay of a recorded contact trace. Mutually exclusive with Plan.
	ContactSource ContactSource
	// Recording is the contact trace buffer: ContactRecord resets and
	// fills it during the run, ContactReplay reads it (unless ReplaySource
	// is set). It must be non-nil when ContactSource is ContactRecord, and
	// in ContactReplay mode exactly one of Recording and ReplaySource must
	// be set. Replayed recordings must match the scenario's scan interval
	// and node count; RecordContacts produces a matching trace from the
	// scenario's mobility alone.
	Recording *wireless.Recording
	// ReplaySource, when non-nil in ContactReplay mode, drives the replay
	// from a streaming trace source — typically a zero-copy
	// wireless.RecordingView over a persisted .contactsb file — instead of
	// a materialized Recording. Views validate once at open and replay
	// with no per-run trace allocation, so concurrent sweep cells (and
	// concurrent processes, via the page cache) share one copy of the
	// trace. Ignored outside replay mode.
	ReplaySource wireless.ReplaySource

	// Vehicles is the number of mobile nodes (ids 0..Vehicles-1).
	Vehicles int
	// Relays is the number of stationary relay nodes placed on crossroads
	// via roadmap.RelaySites (ids Vehicles..Vehicles+Relays-1).
	Relays int

	// VehicleBuffer and RelayBuffer are per-node buffer capacities.
	VehicleBuffer units.Bytes
	RelayBuffer   units.Bytes

	// SpeedLo/SpeedHi bound vehicle speed in m/s; PauseLo/PauseHi bound
	// the waypoint pause in seconds.
	SpeedLo, SpeedHi float64
	PauseLo, PauseHi float64

	// Range is the radio range in metres; Rate the contact data rate;
	// ScanInterval the contact-detection period in seconds.
	Range        float64
	Rate         units.BitRate
	ScanInterval float64

	// ScanWorkers fans the per-tick proximity scan (mobility evaluation
	// and pair discovery) out over this many goroutines. 0 and 1 run the
	// scan inline on the event loop; values >= 2 enable the parallel tick
	// pipeline. A pure throughput knob: results and event traces are
	// byte-identical for every value, so ScanWorkers is deliberately NOT
	// part of the contact fingerprint or any determinism key (see
	// docs/DETERMINISM.md). Live and Record contact sources use it;
	// Replay never scans.
	ScanWorkers int

	// MsgIntervalLo/Hi bound the uniform inter-creation time in seconds;
	// MsgSizeLo/Hi bound the uniform message size; TTL is the message
	// lifetime in seconds. Message sources and destinations are distinct
	// uniform random vehicles.
	MsgIntervalLo, MsgIntervalHi float64
	MsgSizeLo, MsgSizeHi         units.Bytes
	TTL                          float64
	// MessageGenEnd stops message creation at this time (0 = Duration).
	MessageGenEnd float64

	// Protocol and Policy select routing; SprayCopies is Spray-and-Wait's
	// copy budget N.
	Protocol    ProtocolKind
	Policy      PolicyKind
	SprayCopies int

	// NewRouter, when non-nil, overrides Protocol/Policy: it is called
	// once per node to build a custom router (the extension point the
	// examples use). rnd is the node's policy stream.
	NewRouter func(node int, rnd *xrand.Rand) routing.Router

	// SweepInterval is the periodic TTL-sweep period in seconds
	// (0 = 30 s).
	SweepInterval float64

	// Warmup excludes messages created before this time (seconds) from
	// all statistics: the network runs, but the ledger only counts the
	// steady state. Zero disables warm-up (the paper measures from a cold
	// start).
	Warmup float64

	// Trace, when non-nil, receives every simulation event (contacts,
	// transfers, message lifecycle); see internal/trace for ready-made
	// consumers. Tracing is free when nil.
	Trace trace.Func
}

// DefaultConfig returns the paper's scenario (§III) with a 60-minute TTL
// and Epidemic FIFO-FIFO routing: a map-based model of part of Helsinki,
// 40 vehicles with 100 MB buffers moving at 30-50 km/h with 5-15 minute
// pauses, 5 relay nodes with 500 MB buffers, 802.11b radios (6 Mbit/s,
// 30 m), messages of 500 KB-2 MB every 15-30 s between random vehicles,
// over a 12-hour period.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Duration:      units.Hours(12),
		Vehicles:      40,
		Relays:        5,
		VehicleBuffer: units.MB(100),
		RelayBuffer:   units.MB(500),
		SpeedLo:       units.KmhToMs(30),
		SpeedHi:       units.KmhToMs(50),
		PauseLo:       units.Minutes(5),
		PauseHi:       units.Minutes(15),
		Range:         30,
		Rate:          units.Mbit(6),
		ScanInterval:  1,
		MsgIntervalLo: 15,
		MsgIntervalHi: 30,
		MsgSizeLo:     units.KB(500),
		MsgSizeHi:     units.MB(2),
		TTL:           units.Minutes(60),
		Protocol:      ProtoEpidemic,
		Policy:        PolicyFIFOFIFO,
		SprayCopies:   12,
		SweepInterval: 30,
	}
}

// PaperConfig returns the paper scenario for one evaluation point:
// the given TTL (minutes), protocol, policy and seed.
func PaperConfig(ttlMinutes float64, proto ProtocolKind, pol PolicyKind, seed uint64) Config {
	c := DefaultConfig()
	c.TTL = units.Minutes(ttlMinutes)
	c.Protocol = proto
	c.Policy = pol
	c.Seed = seed
	return c
}

// Validate reports the first invalid field, if any.
func (c Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("sim: non-positive duration %v", c.Duration)
	case c.Vehicles < 2:
		return fmt.Errorf("sim: need at least 2 vehicles for traffic, got %d", c.Vehicles)
	case c.Relays < 0:
		return fmt.Errorf("sim: negative relay count %d", c.Relays)
	case c.VehicleBuffer <= 0:
		return fmt.Errorf("sim: non-positive vehicle buffer %d", c.VehicleBuffer)
	case c.Relays > 0 && c.RelayBuffer <= 0:
		return fmt.Errorf("sim: non-positive relay buffer %d", c.RelayBuffer)
	case c.SpeedLo <= 0 || c.SpeedHi < c.SpeedLo:
		return fmt.Errorf("sim: bad speed bounds [%v, %v]", c.SpeedLo, c.SpeedHi)
	case c.PauseLo < 0 || c.PauseHi < c.PauseLo:
		return fmt.Errorf("sim: bad pause bounds [%v, %v]", c.PauseLo, c.PauseHi)
	case c.Range <= 0:
		return fmt.Errorf("sim: non-positive range %v", c.Range)
	case c.Rate <= 0:
		return fmt.Errorf("sim: non-positive rate %v", float64(c.Rate))
	case c.ScanInterval <= 0:
		return fmt.Errorf("sim: non-positive scan interval %v", c.ScanInterval)
	case c.ScanWorkers < 0:
		return fmt.Errorf("sim: negative scan workers %d", c.ScanWorkers)
	case c.MsgIntervalLo <= 0 || c.MsgIntervalHi < c.MsgIntervalLo:
		return fmt.Errorf("sim: bad message interval [%v, %v]", c.MsgIntervalLo, c.MsgIntervalHi)
	case c.MsgSizeLo <= 0 || c.MsgSizeHi < c.MsgSizeLo:
		return fmt.Errorf("sim: bad message size bounds [%d, %d]", c.MsgSizeLo, c.MsgSizeHi)
	case c.TTL <= 0:
		return fmt.Errorf("sim: non-positive TTL %v", c.TTL)
	case c.MessageGenEnd < 0 || (c.MessageGenEnd > 0 && c.MessageGenEnd > c.Duration):
		return fmt.Errorf("sim: message generation end %v outside run", c.MessageGenEnd)
	case c.NewRouter == nil && (c.Protocol == ProtoSprayAndWait || c.Protocol == ProtoSprayAndWaitVanilla) && c.SprayCopies < 1:
		return fmt.Errorf("sim: SprayAndWait needs a positive copy budget, got %d", c.SprayCopies)
	case c.SweepInterval < 0:
		return fmt.Errorf("sim: negative sweep interval %v", c.SweepInterval)
	case c.Warmup < 0 || c.Warmup >= c.Duration:
		return fmt.Errorf("sim: warmup %v outside the run duration %v", c.Warmup, c.Duration)
	}
	if c.Plan != nil && c.Plan.MaxNode() >= c.Vehicles+c.Relays {
		return fmt.Errorf("sim: contact plan references node %d, scenario has %d nodes",
			c.Plan.MaxNode(), c.Vehicles+c.Relays)
	}
	switch c.ContactSource {
	case ContactLive:
		// Recording/ReplaySource are ignored; allow leftover pointers.
	case ContactRecord:
		if c.Recording == nil {
			return fmt.Errorf("sim: contact source %v needs Config.Recording", c.ContactSource)
		}
		if c.Plan != nil {
			return fmt.Errorf("sim: contact source %v is exclusive with a contact plan", c.ContactSource)
		}
	case ContactReplay:
		if c.Recording == nil && c.ReplaySource == nil {
			return fmt.Errorf("sim: contact source %v needs Config.Recording or Config.ReplaySource", c.ContactSource)
		}
		if c.Recording != nil && c.ReplaySource != nil {
			return fmt.Errorf("sim: contact source %v with both Config.Recording and Config.ReplaySource set", c.ContactSource)
		}
		if c.Plan != nil {
			return fmt.Errorf("sim: contact source %v is exclusive with a contact plan", c.ContactSource)
		}
		if err := ReplaySourceCompatible(c, c.replaySource()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("sim: unknown contact source %d", int(c.ContactSource))
	}
	for i, s := range c.Script {
		n := c.Vehicles + c.Relays
		switch {
		case s.Time < 0 || s.Time >= c.Duration:
			return fmt.Errorf("sim: scripted message %d at time %v outside the run", i, s.Time)
		case s.From < 0 || s.From >= n || s.To < 0 || s.To >= n:
			return fmt.Errorf("sim: scripted message %d endpoints (%d, %d) out of range", i, s.From, s.To)
		case s.From == s.To:
			return fmt.Errorf("sim: scripted message %d sends to itself", i)
		case s.Size <= 0:
			return fmt.Errorf("sim: scripted message %d has size %d", i, s.Size)
		}
	}
	return nil
}

// replaySource returns the trace source a ContactReplay run drives from:
// the streaming source when set, else the materialized recording (which
// implements the same interface).
func (c Config) replaySource() wireless.ReplaySource {
	if c.ReplaySource != nil {
		return c.ReplaySource
	}
	return c.Recording
}

// ScriptedMessage is one deterministic traffic entry (see Config.Script).
type ScriptedMessage struct {
	Time     float64
	From, To int
	Size     units.Bytes
}

// buildRouter constructs the router for one node.
func (c Config) buildRouter(node int, rnd *xrand.Rand) routing.Router {
	if c.NewRouter != nil {
		return c.NewRouter(node, rnd)
	}
	switch c.Protocol {
	case ProtoEpidemic:
		return routing.NewEpidemic(c.Policy.build(rnd))
	case ProtoSprayAndWait:
		return routing.NewSprayAndWait(c.Policy.build(rnd), c.SprayCopies, true)
	case ProtoSprayAndWaitVanilla:
		return routing.NewSprayAndWait(c.Policy.build(rnd), c.SprayCopies, false)
	case ProtoMaxProp:
		return routing.NewMaxProp(routing.MaxPropConfig{})
	case ProtoPRoPHET:
		return routing.NewProphet(routing.DefaultProphetConfig())
	case ProtoDirectDelivery:
		return routing.NewDirectDelivery(c.Policy.build(rnd))
	case ProtoFirstContact:
		return routing.NewFirstContact(c.Policy.build(rnd))
	default:
		panic(fmt.Sprintf("sim: unknown protocol kind %d", int(c.Protocol)))
	}
}

// Label renders a short scenario label for reports, e.g.
// "Epidemic/LifetimeDESC-LifetimeASC ttl=90m".
func (c Config) Label() string {
	name := c.Protocol.String()
	if c.NewRouter != nil {
		name = "custom"
	}
	switch {
	case c.NewRouter == nil && (c.Protocol == ProtoMaxProp || c.Protocol == ProtoPRoPHET):
		return fmt.Sprintf("%s ttl=%s", name, units.FormatDuration(c.TTL))
	default:
		return fmt.Sprintf("%s/%s ttl=%s", name, c.Policy, units.FormatDuration(c.TTL))
	}
}
