package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"vdtn/internal/trace"
)

// traceBytes renders an event trace to one canonical byte stream, so the
// parallel determinism contract is checked at the strength it is stated:
// identical trace BYTES, not just equal aggregates.
func traceBytes(events []trace.Event) []byte {
	var buf bytes.Buffer
	for _, ev := range events {
		fmt.Fprintf(&buf, "%+v\n", ev)
	}
	return buf.Bytes()
}

// TestParallelScanEquivalenceMatrix is the simulator-level half of the
// parallel determinism contract: for every protocol × policy pair (the
// same 42 suites TestReplayEquivalence pins) and every worker count in
// {1, 2, 3, 8}, a live run's full Result and full event trace are
// byte-identical to the serial run's. Worker count is a pure throughput
// knob — it must never appear in results, traces, or any determinism key.
func TestParallelScanEquivalenceMatrix(t *testing.T) {
	protocols := []ProtocolKind{
		ProtoEpidemic, ProtoSprayAndWait, ProtoSprayAndWaitVanilla,
		ProtoMaxProp, ProtoPRoPHET, ProtoDirectDelivery, ProtoFirstContact,
	}
	policies := []PolicyKind{
		PolicyFIFOFIFO, PolicyRandomFIFO, PolicyLifetime,
		PolicySize, PolicyHopMOFO, PolicyFIFOOldestAge,
	}
	workerCounts := []int{1, 2, 3, 8}
	for _, proto := range protocols {
		for _, pol := range policies {
			t.Run(proto.String()+"/"+pol.String(), func(t *testing.T) {
				base := replayConfig(7)
				base.Protocol = proto
				base.Policy = pol

				serialRes, serialEvents := runTraced(t, base)
				serialBytes := traceBytes(serialEvents)

				for _, workers := range workerCounts {
					cfg := base
					cfg.ScanWorkers = workers
					res, events := runTraced(t, cfg)
					if res != serialRes {
						t.Fatalf("ScanWorkers=%d perturbed the Result:\nserial:   %+v\nparallel: %+v",
							workers, serialRes, res)
					}
					if !bytes.Equal(traceBytes(events), serialBytes) {
						if !reflect.DeepEqual(events, serialEvents) {
							for i := range serialEvents {
								if i >= len(events) || serialEvents[i] != events[i] {
									t.Fatalf("ScanWorkers=%d: event %d diverged: serial %+v, parallel %+v",
										workers, i, serialEvents[i], eventAt(events, i))
								}
							}
						}
						t.Fatalf("ScanWorkers=%d: trace bytes diverged", workers)
					}
				}
			})
		}
	}
}

// TestParallelScanRecordEquivalence extends the contract to the
// contacts-only recording pass (the sweep cache's recorder, which builds
// its own medium): recordings taken with parallel scans are identical to
// serial ones, transition for transition.
func TestParallelScanRecordEquivalence(t *testing.T) {
	base := replayConfig(11)
	serial, err := RecordContacts(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Transitions) == 0 {
		t.Fatal("serial recording is empty")
	}
	for _, workers := range []int{2, 3, 8} {
		cfg := base
		cfg.ScanWorkers = workers
		rec, err := RecordContacts(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec, serial) {
			t.Fatalf("ScanWorkers=%d recording diverged from serial (%d vs %d transitions)",
				workers, len(rec.Transitions), len(serial.Transitions))
		}
	}
}
