package sim

import (
	"math"
	"testing"

	"vdtn/internal/contactplan"
	"vdtn/internal/units"
)

// planConfig builds a minimal contact-plan scenario with n nodes.
func planConfig(t *testing.T, n int, windows []contactplan.Contact, script []ScriptedMessage) Config {
	t.Helper()
	plan, err := contactplan.New(windows)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.Plan = plan
	c.Script = script
	c.Vehicles = n
	c.Relays = 0
	c.Duration = units.Hours(1)
	c.VehicleBuffer = units.MB(50)
	c.TTL = units.Minutes(45)
	return c
}

func TestPlanExactDeliveryTiming(t *testing.T) {
	// One window [10, 100] between nodes 0 and 1; a 1.5 MB message
	// (= 2 s at 6 Mbit/s) created at t=5 from 0 to 1. The transfer starts
	// the moment the contact rises, so delivery lands at t=12 and the
	// delay is exactly 7 s.
	c := planConfig(t, 2,
		[]contactplan.Contact{{A: 0, B: 1, Start: 10, End: 100}},
		[]ScriptedMessage{{Time: 5, From: 0, To: 1, Size: units.MB(1.5)}})
	r := mustRun(t, c)
	if r.Created != 1 || r.Delivered != 1 {
		t.Fatalf("created %d delivered %d", r.Created, r.Delivered)
	}
	if math.Abs(r.AvgDelay-7) > 1e-9 {
		t.Fatalf("delay = %v s, want exactly 7", r.AvgDelay)
	}
}

func TestPlanWindowTooShortAborts(t *testing.T) {
	// A 7.5 MB message needs 10 s at 6 Mbit/s; the window lasts 3 s.
	c := planConfig(t, 2,
		[]contactplan.Contact{{A: 0, B: 1, Start: 10, End: 13}},
		[]ScriptedMessage{{Time: 5, From: 0, To: 1, Size: units.MB(7.5)}})
	r := mustRun(t, c)
	if r.Delivered != 0 {
		t.Fatal("impossible delivery")
	}
	if r.Aborted != 1 {
		t.Fatalf("Aborted = %d, want 1", r.Aborted)
	}
}

func TestPlanRelayChainEpidemic(t *testing.T) {
	// 0 meets 1, later 1 meets 2: the message reaches 2 through 1's
	// buffer. Delivery at 30 (window) + 2 s (transfer) = 32.
	c := planConfig(t, 3,
		[]contactplan.Contact{
			{A: 0, B: 1, Start: 10, End: 20},
			{A: 1, B: 2, Start: 30, End: 40},
		},
		[]ScriptedMessage{{Time: 0, From: 0, To: 2, Size: units.MB(1.5)}})
	r := mustRun(t, c)
	if r.Delivered != 1 {
		t.Fatalf("store-carry-forward failed: %+v", r.Report)
	}
	if math.Abs(r.AvgDelay-32) > 1e-9 {
		t.Fatalf("delay = %v, want 32", r.AvgDelay)
	}
	if r.AvgHops != 2 {
		t.Fatalf("hops = %v, want 2", r.AvgHops)
	}
}

func TestPlanDirectDeliveryCannotRelay(t *testing.T) {
	c := planConfig(t, 3,
		[]contactplan.Contact{
			{A: 0, B: 1, Start: 10, End: 20},
			{A: 1, B: 2, Start: 30, End: 40},
		},
		[]ScriptedMessage{{Time: 0, From: 0, To: 2, Size: units.MB(1)}})
	c.Protocol = ProtoDirectDelivery
	r := mustRun(t, c)
	if r.Delivered != 0 {
		t.Fatal("DirectDelivery delivered through a relay")
	}
}

func TestPlanSprayAndWaitBudgetSplit(t *testing.T) {
	// Node 0 sprays a 12-copy message to 1, 2, 3 in disjoint windows.
	// Binary splitting leaves budgets 0:2? — walk it: 12 -> give 6 keep 6;
	// 6 -> give 3 keep 3; 3 -> give 1 keep 2.
	c := planConfig(t, 5,
		[]contactplan.Contact{
			{A: 0, B: 1, Start: 10, End: 20},
			{A: 0, B: 2, Start: 30, End: 40},
			{A: 0, B: 3, Start: 50, End: 60},
		},
		[]ScriptedMessage{{Time: 0, From: 0, To: 4, Size: units.MB(1)}})
	c.Protocol = ProtoSprayAndWait
	c.SprayCopies = 12
	c.TTL = units.Hours(2) // outlive the run so end-state budgets are inspectable

	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	want := map[int]int{0: 2, 1: 6, 2: 3, 3: 1}
	total := 0
	for node, copies := range want {
		m, ok := w.Node(node).Buffer().Get(1)
		if !ok {
			t.Fatalf("node %d lost its replica", node)
		}
		if m.Copies != copies {
			t.Errorf("node %d holds %d copies, want %d", node, m.Copies, copies)
		}
		total += m.Copies
	}
	if total != 12 {
		t.Fatalf("budget not conserved: %d", total)
	}
}

func TestPlanBusySerializesTransfers(t *testing.T) {
	// Two simultaneous windows from node 0; two messages. The single
	// radio serializes: first delivery at 12, second at 14. DirectDelivery
	// keeps the timing exact (Epidemic would also replicate each message
	// to the other neighbour, occupying the radio in between).
	c := planConfig(t, 3,
		[]contactplan.Contact{
			{A: 0, B: 1, Start: 10, End: 100},
			{A: 0, B: 2, Start: 10, End: 100},
		},
		[]ScriptedMessage{
			{Time: 0, From: 0, To: 1, Size: units.MB(1.5)},
			{Time: 1, From: 0, To: 2, Size: units.MB(1.5)},
		})
	c.Protocol = ProtoDirectDelivery
	r := mustRun(t, c)
	if r.Delivered != 2 {
		t.Fatalf("delivered %d of 2", r.Delivered)
	}
	// Delays: (12-0)=12 and (14-1)=13 -> mean 12.5.
	if math.Abs(r.AvgDelay-12.5) > 1e-9 {
		t.Fatalf("mean delay = %v, want 12.5", r.AvgDelay)
	}
}

func TestPlanTTLExpiryBeforeContact(t *testing.T) {
	c := planConfig(t, 2,
		[]contactplan.Contact{{A: 0, B: 1, Start: 3000, End: 3100}},
		[]ScriptedMessage{{Time: 0, From: 0, To: 1, Size: units.MB(1)}})
	c.TTL = units.Minutes(10) // dies at 600, long before the contact
	r := mustRun(t, c)
	if r.Delivered != 0 {
		t.Fatal("expired message delivered")
	}
	if r.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", r.Expired)
	}
}

func TestPlanValidationAgainstNodeCount(t *testing.T) {
	plan, err := contactplan.New([]contactplan.Contact{{A: 0, B: 9, Start: 1, End: 2}})
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.Plan = plan
	c.Vehicles = 4
	c.Relays = 0
	if err := c.Validate(); err == nil {
		t.Fatal("plan referencing node 9 accepted with 4 nodes")
	}
}

func TestScriptValidation(t *testing.T) {
	mk := func(s ScriptedMessage) Config {
		c := quickConfig(1)
		c.Script = []ScriptedMessage{s}
		return c
	}
	bad := map[string]ScriptedMessage{
		"negative time": {Time: -1, From: 0, To: 1, Size: units.MB(1)},
		"beyond run":    {Time: units.Hours(100), From: 0, To: 1, Size: units.MB(1)},
		"self":          {Time: 0, From: 2, To: 2, Size: units.MB(1)},
		"bad node":      {Time: 0, From: 0, To: 99, Size: units.MB(1)},
		"zero size":     {Time: 0, From: 0, To: 1, Size: 0},
	}
	for name, s := range bad {
		if err := mk(s).Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	build := func() Config {
		return planConfig(t, 4,
			[]contactplan.Contact{
				{A: 0, B: 1, Start: 10, End: 60},
				{A: 1, B: 2, Start: 30, End: 90},
				{A: 2, B: 3, Start: 70, End: 120},
			},
			[]ScriptedMessage{
				{Time: 0, From: 0, To: 3, Size: units.MB(2)},
				{Time: 5, From: 3, To: 0, Size: units.MB(1)},
			})
	}
	a, b := mustRun(t, build()), mustRun(t, build())
	if a != b {
		t.Fatal("plan-mode runs not deterministic")
	}
}
