package sim

import (
	"context"
	"fmt"

	"vdtn/internal/contactplan"
	"vdtn/internal/event"
	"vdtn/internal/geo"
	"vdtn/internal/mobility"
	"vdtn/internal/roadmap"
	"vdtn/internal/wireless"
	"vdtn/internal/xrand"
)

// mobileEntity is the contacts-only stand-in for a Node: just an id and a
// mobility model, enough for the medium's proximity scan.
type mobileEntity struct {
	id  int
	mob mobility.Model
}

func (e *mobileEntity) ID() int                        { return e.id }
func (e *mobileEntity) Position(now float64) geo.Point { return e.mob.Position(now) }

// RecordContacts simulates only the mobility and proximity layer of cfg —
// no routers, buffers or traffic — and returns the contact trace the full
// scenario would produce. The trace is bit-identical to what a complete
// live run records, because the contact process depends solely on the
// per-node mobility streams (independent of the traffic and policy
// streams) and the scan tick sequence, both of which are reproduced here
// exactly. Running the returned recording through ContactReplay therefore
// yields the same Result as a live run at a fraction of the cost — the
// contract the experiment harness's contact cache is built on.
func RecordContacts(cfg Config) (*wireless.Recording, error) {
	rec, err := RecordContactsContext(context.Background(), cfg)
	if err != nil {
		// Background contexts cannot cancel, so every error here is a
		// validation error, reported as before contexts existed.
		return nil, err
	}
	return rec, nil
}

// RecordContactsContext is RecordContacts checking ctx between events, the
// same cooperative checkpointing as World.RunContext: cancellation stops
// the pass at an event boundary within cancelCheckStride events and
// returns (nil, ctx.Err()) — a recording pass over a long horizon no
// longer pins a SIGINT'd process for the rest of the pass. An
// uncancellable context skips the checkpoint polling entirely, so the
// plain RecordContacts path stays allocation-identical to before.
func RecordContactsContext(ctx context.Context, cfg Config) (*wireless.Recording, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Plan != nil {
		return nil, fmt.Errorf("sim: cannot record contacts of a contact-plan scenario")
	}
	if cfg.ContactSource == ContactReplay {
		return nil, fmt.Errorf("sim: cannot record contacts of a replay scenario")
	}
	graph := cfg.Map
	if graph == nil {
		graph = roadmap.HelsinkiLike()
	}
	if err := graph.Validate(); err != nil {
		return nil, fmt.Errorf("sim: scenario map invalid: %w", err)
	}

	sched := event.NewScheduler()
	medium := wireless.NewMedium(sched, wireless.Config{
		Range:        cfg.Range,
		Rate:         cfg.Rate,
		ScanInterval: cfg.ScanInterval,
		ScanWorkers:  cfg.ScanWorkers,
	})
	// Release the scan worker pool on every exit path (no-op when serial).
	defer medium.Stop()
	src := xrand.NewSource(cfg.Seed)
	walkCfg := mobility.MapWalkConfig{
		SpeedLoMs: cfg.SpeedLo,
		SpeedHiMs: cfg.SpeedHi,
		PauseLoS:  cfg.PauseLo,
		PauseHiS:  cfg.PauseHi,
	}
	// Same ids, same mobility streams, same registration order as New.
	for i := 0; i < cfg.Vehicles; i++ {
		medium.Add(&mobileEntity{
			id:  i,
			mob: mobility.NewMapWalk(graph, src.StreamN("mobility", i), walkCfg),
		})
	}
	if cfg.Relays > 0 {
		sites := roadmap.RelaySites(graph, cfg.Relays)
		for i := 0; i < cfg.Relays; i++ {
			medium.Add(&mobileEntity{
				id:  cfg.Vehicles + i,
				mob: mobility.Stationary{At: graph.Vertex(sites[i])},
			})
		}
	}

	rec := &wireless.Recording{Duration: cfg.Duration}
	medium.RecordTo(rec)
	medium.Start(0)
	if done := ctx.Done(); done == nil {
		sched.RunUntil(cfg.Duration)
	} else {
		cancelled := sched.RunUntilCheck(cfg.Duration, cancelCheckStride, func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		})
		if cancelled {
			// A torn trace must never escape: the recording stops between
			// scan ticks, so it would be a valid-looking prefix — silently
			// wrong for any run longer than the cut.
			return nil, ctx.Err()
		}
	}
	return rec, nil
}

// ReplayCompatible reports whether rec can drive cfg's contact process:
// the trace must be structurally valid, recorded at cfg's scan interval,
// cover at least cfg's horizon, and reference only nodes the scenario has.
// Config.Validate applies the same checks in replay mode; the experiment
// harness's contact cache applies them to disk-loaded traces before
// serving them, so a stale or misfiled cache entry re-records instead of
// failing every cell that touches it.
func ReplayCompatible(cfg Config, rec *wireless.Recording) error {
	return ReplaySourceCompatible(cfg, rec)
}

// ReplaySourceCompatible is ReplayCompatible over any trace source. An
// in-memory *Recording is structurally validated here (it may hold
// anything); a streaming source such as a wireless.RecordingView proved
// its structure when it was opened, so only the scenario-fit checks run —
// which is what makes view-driven replay allocation-free per cell.
func ReplaySourceCompatible(cfg Config, src wireless.ReplaySource) error {
	if rec, ok := src.(*wireless.Recording); ok {
		if err := rec.Validate(); err != nil {
			return err
		}
	}
	meta := src.Meta()
	if meta.ScanInterval != cfg.ScanInterval {
		return fmt.Errorf("sim: recording scan interval %v, scenario %v", meta.ScanInterval, cfg.ScanInterval)
	}
	// A shorter horizon replays a prefix of the trace and stays
	// bit-identical to a live run of that horizon; a longer one would
	// freeze contacts in their final recorded state.
	if cfg.Duration > meta.Duration {
		return fmt.Errorf("sim: run duration %v exceeds the recording's %v", cfg.Duration, meta.Duration)
	}
	if src.MaxNode() >= cfg.Vehicles+cfg.Relays {
		return fmt.Errorf("sim: recording references node %d, scenario has %d nodes",
			src.MaxNode(), cfg.Vehicles+cfg.Relays)
	}
	return nil
}

// RecordingPlan converts a recording into a contact plan, for export to
// the plan text format or scenario JSON. Contacts still open at the end of
// the trace are closed at its duration, so a plan-driven re-run is close
// to but not bit-identical with a replay (plan windows also fire outside
// the scan-tick event slots); use ContactReplay when exactness matters.
func RecordingPlan(rec *wireless.Recording) (*contactplan.Plan, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	windows := rec.Windows()
	contacts := make([]contactplan.Contact, len(windows))
	for i, w := range windows {
		contacts[i] = contactplan.Contact{A: w.A, B: w.B, Start: w.Start, End: w.End}
	}
	return contactplan.New(contacts)
}
