package sim

import (
	"testing"

	"vdtn/internal/trace"
)

// TestTraceConsistency runs a traced scenario and cross-checks the event
// stream against the run's ledger and medium counters — the trace is only
// useful if it is exact.
func TestTraceConsistency(t *testing.T) {
	var lg trace.Log
	c := quickConfig(33)
	c.Trace = lg.Append
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()

	if lg.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}

	// Event stream must be time-ordered.
	evs := lg.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("trace out of order at %d: %v after %v", i, evs[i], evs[i-1])
		}
	}

	// Counts must match the authoritative counters.
	checks := []struct {
		kind trace.Kind
		want int
		name string
	}{
		{trace.Created, r.Created, "created"},
		{trace.ContactUp, int(r.Contacts), "contacts"},
		{trace.TransferStart, int(r.TransfersStarted), "transfer starts"},
		{trace.TransferComplete, int(r.TransfersCompleted), "transfer completions"},
		{trace.TransferAbort, int(r.TransfersAborted), "transfer aborts"},
		{trace.Delivered, r.Delivered + r.DeliveredDuplicate, "deliveries"},
		{trace.RelayAccepted, r.RelayAccepted, "accepted relays"},
		{trace.RelayRejected, r.RelayRejected, "rejected relays"},
		{trace.Dropped, r.Dropped, "drops"},
		{trace.Expired, r.Expired, "expiries"},
	}
	for _, c := range checks {
		if got := lg.Count(c.kind); got != c.want {
			t.Errorf("trace %s = %d, ledger says %d", c.name, got, c.want)
		}
	}

	// Contact lifecycle: downs never exceed ups.
	if lg.Count(trace.ContactDown) > lg.Count(trace.ContactUp) {
		t.Error("more contact downs than ups")
	}

	// Per-message sanity: every delivered message was created first.
	for _, ev := range evs {
		if ev.Kind != trace.Delivered {
			continue
		}
		life := lg.OfMessage(ev.Msg)
		if len(life) == 0 || life[0].Kind != trace.Created {
			t.Fatalf("message %v delivered without creation event", ev.Msg)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	// A nil Trace must not change results (the emission path is the same
	// simulation; this guards against tracing side effects).
	base := mustRun(t, quickConfig(35))
	var lg trace.Log
	c := quickConfig(35)
	c.Trace = lg.Append
	traced := mustRun(t, c)
	if base != traced {
		t.Fatalf("tracing changed the run:\n%+v\n%+v", base, traced)
	}
}
