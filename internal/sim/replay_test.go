package sim

import (
	"reflect"
	"testing"

	"vdtn/internal/roadmap"
	"vdtn/internal/trace"
	"vdtn/internal/units"
	"vdtn/internal/wireless"
)

// replayConfig is a deliberately tight scenario — small buffers, frequent
// messages — so every protocol exercises drops, aborts and TTL expiry, the
// code paths where an ordering divergence between live and replayed runs
// would surface.
func replayConfig(seed uint64) Config {
	c := DefaultConfig()
	c.Seed = seed
	c.Duration = units.Minutes(40)
	c.Map = roadmap.Grid(4, 4, 250)
	c.Vehicles = 8
	c.Relays = 2
	c.VehicleBuffer = units.MB(5)
	c.RelayBuffer = units.MB(10)
	c.MsgIntervalLo = 8
	c.MsgIntervalHi = 16
	c.TTL = units.Minutes(15)
	return c
}

// runTraced runs cfg with an in-memory trace log attached.
func runTraced(t *testing.T, cfg Config) (Result, []trace.Event) {
	t.Helper()
	var lg trace.Log
	var w *World
	// Piggyback the medium's adjacency-vs-connected-map invariant on every
	// contact transition, so every protocol × policy × contact-source
	// combination that flows through here audits the adjacency cache at
	// each point it changes.
	cfg.Trace = func(ev trace.Event) {
		lg.Append(ev)
		if ev.Kind == trace.ContactUp || ev.Kind == trace.ContactDown {
			if err := w.medium.CheckInvariants(); err != nil {
				t.Fatalf("adjacency invariant broken at t=%v after %v(%d,%d): %v",
					ev.Time, ev.Kind, ev.A, ev.B, err)
			}
		}
	}
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if err := w.medium.CheckInvariants(); err != nil {
		t.Fatalf("adjacency invariant broken at end of run: %v", err)
	}
	return res, lg.Events()
}

// TestReplayEquivalence is the record/replay cache's headline guarantee:
// for every protocol × policy pair, a run replaying a recorded contact
// trace is bit-identical — full Result and full event trace — to the live
// run that recorded it, and recording itself does not perturb the run.
func TestReplayEquivalence(t *testing.T) {
	protocols := []ProtocolKind{
		ProtoEpidemic, ProtoSprayAndWait, ProtoSprayAndWaitVanilla,
		ProtoMaxProp, ProtoPRoPHET, ProtoDirectDelivery, ProtoFirstContact,
	}
	policies := []PolicyKind{
		PolicyFIFOFIFO, PolicyRandomFIFO, PolicyLifetime,
		PolicySize, PolicyHopMOFO, PolicyFIFOOldestAge,
	}
	for _, proto := range protocols {
		for _, pol := range policies {
			t.Run(proto.String()+"/"+pol.String(), func(t *testing.T) {
				base := replayConfig(7)
				base.Protocol = proto
				base.Policy = pol

				liveRes, liveEvents := runTraced(t, base)

				recCfg := base
				rec := &wireless.Recording{}
				recCfg.ContactSource = ContactRecord
				recCfg.Recording = rec
				recRes, recEvents := runTraced(t, recCfg)
				if liveRes != recRes {
					t.Fatalf("recording perturbed the run:\nlive:   %+v\nrecord: %+v", liveRes, recRes)
				}
				if !reflect.DeepEqual(liveEvents, recEvents) {
					t.Fatal("recording perturbed the event trace")
				}
				if len(rec.Transitions) == 0 {
					t.Fatal("recorded no contact transitions")
				}
				if err := rec.Validate(); err != nil {
					t.Fatalf("recorded trace invalid: %v", err)
				}

				repCfg := base
				repCfg.ContactSource = ContactReplay
				repCfg.Recording = rec
				repRes, repEvents := runTraced(t, repCfg)
				if liveRes != repRes {
					t.Fatalf("replay diverged from live run:\nlive:   %+v\nreplay: %+v", liveRes, repRes)
				}
				if !reflect.DeepEqual(liveEvents, repEvents) {
					for i := range liveEvents {
						if i >= len(repEvents) || liveEvents[i] != repEvents[i] {
							t.Fatalf("event %d diverged: live %+v, replay %+v (live %d events, replay %d)",
								i, liveEvents[i], eventAt(repEvents, i), len(liveEvents), len(repEvents))
						}
					}
					t.Fatalf("replay trace has %d extra events", len(repEvents)-len(liveEvents))
				}
			})
		}
	}
}

func eventAt(events []trace.Event, i int) any {
	if i < len(events) {
		return events[i]
	}
	return "missing"
}

// TestRecordContactsMatchesFullRun pins the contact cache's producer
// contract: the contacts-only mobility pass records exactly the trace a
// complete live simulation records, because the contact process is
// independent of traffic and routing.
func TestRecordContactsMatchesFullRun(t *testing.T) {
	for _, seed := range []uint64{1, 2, 5} {
		cfg := replayConfig(seed)

		fullCfg := cfg
		fullRec := &wireless.Recording{}
		fullCfg.ContactSource = ContactRecord
		fullCfg.Recording = fullRec
		w, err := New(fullCfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Run()

		onlyRec, err := RecordContacts(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fullRec, onlyRec) {
			t.Fatalf("seed %d: contacts-only pass diverged from full run: %d vs %d transitions",
				seed, len(onlyRec.Transitions), len(fullRec.Transitions))
		}
	}
}

// TestReplayAcrossProtocols is the cache's sharing property: one recording
// taken under one protocol drives bit-identical contact processes under
// every other protocol (contacts don't depend on routing).
func TestReplayAcrossProtocols(t *testing.T) {
	cfg := replayConfig(3)
	rec, err := RecordContacts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var contacts uint64
	for i, proto := range []ProtocolKind{ProtoEpidemic, ProtoMaxProp, ProtoPRoPHET} {
		c := cfg
		c.Protocol = proto
		c.ContactSource = ContactReplay
		c.Recording = rec
		live := cfg
		live.Protocol = proto
		liveRes, liveEvents := runTraced(t, live)
		repRes, repEvents := runTraced(t, c)
		if liveRes != repRes || !reflect.DeepEqual(liveEvents, repEvents) {
			t.Fatalf("%v: shared-recording replay diverged from live run", proto)
		}
		if i == 0 {
			contacts = repRes.Contacts
		} else if repRes.Contacts != contacts {
			t.Fatalf("%v: contact count %d differs across protocols (want %d)", proto, repRes.Contacts, contacts)
		}
	}
}

// TestRecordingFormatRoundTripsThroughReplay: a recording that has been
// serialized and parsed back drives the same replay as the original.
func TestRecordingFormatRoundTripsThroughReplay(t *testing.T) {
	cfg := replayConfig(11)
	rec, err := RecordContacts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := wireless.ParseRecording(rec.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, parsed) {
		t.Fatal("recording changed across Format/ParseRecording")
	}

	cfg.ContactSource = ContactReplay
	cfg.Recording = parsed
	resParsed, _ := runTraced(t, cfg)
	cfg.Recording = rec
	resOrig, _ := runTraced(t, cfg)
	if resParsed != resOrig {
		t.Fatal("parsed recording replayed differently from the original")
	}
}

// TestRecordingPlan checks the recording → contact-plan export: every
// recorded window survives, open contacts are closed at the horizon, and
// the plan runs.
func TestRecordingPlan(t *testing.T) {
	cfg := replayConfig(4)
	rec, err := RecordContacts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := RecordingPlan(rec)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() == 0 {
		t.Fatal("empty plan from a non-empty recording")
	}
	if plan.Horizon() > rec.Duration {
		t.Fatalf("plan horizon %v beyond recording duration %v", plan.Horizon(), rec.Duration)
	}
	planCfg := cfg
	planCfg.Plan = plan
	w, err := New(planCfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if res.Contacts == 0 {
		t.Fatal("plan-driven re-run saw no contacts")
	}
}

// TestReplayPrefixEquivalence: replaying a long recording over a shorter
// horizon equals a live run of that shorter horizon — contact traces are
// prefix-causal, which is why Validate allows Duration <= Recording.Duration.
func TestReplayPrefixEquivalence(t *testing.T) {
	long := replayConfig(13) // 40 minutes
	rec, err := RecordContacts(long)
	if err != nil {
		t.Fatal(err)
	}

	short := replayConfig(13)
	short.Duration = long.Duration / 2
	liveRes, liveEvents := runTraced(t, short)

	short.ContactSource = ContactReplay
	short.Recording = rec
	repRes, repEvents := runTraced(t, short)
	if liveRes != repRes || !reflect.DeepEqual(liveEvents, repEvents) {
		t.Fatalf("prefix replay diverged from the short live run:\nlive:   %+v\nreplay: %+v", liveRes, repRes)
	}
}

// TestReplayConfigValidation covers the new Validate arms.
func TestReplayConfigValidation(t *testing.T) {
	rec, err := RecordContacts(replayConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"record without recording": func(c *Config) { c.ContactSource = ContactRecord },
		"replay without recording": func(c *Config) { c.ContactSource = ContactReplay },
		"unknown source":           func(c *Config) { c.ContactSource = ContactSource(99) },
		"replay scan mismatch": func(c *Config) {
			c.ContactSource = ContactReplay
			c.Recording = rec
			c.ScanInterval = rec.ScanInterval * 2
		},
		"replay node overflow": func(c *Config) {
			c.ContactSource = ContactReplay
			c.Recording = rec
			c.Vehicles = 2
			c.Relays = 0
		},
		"replay beyond recording horizon": func(c *Config) {
			c.ContactSource = ContactReplay
			c.Recording = rec
			c.Duration = rec.Duration * 2
		},
	}
	for name, mutate := range cases {
		c := replayConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}

	ok := replayConfig(1)
	ok.ContactSource = ContactReplay
	ok.Recording = rec
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid replay config rejected: %v", err)
	}
}
