package sim

import (
	"testing"

	"vdtn/internal/trace"
	"vdtn/internal/units"
)

// TestGoldenRun pins the exact outcome of a small fixed scenario. Any
// change to the engine's event ordering, the RNG, a protocol or a policy
// shifts these numbers; the test forces such changes to be deliberate.
// If you changed behaviour on purpose, update the constants and say why
// in the commit.
func TestGoldenRun(t *testing.T) {
	r := mustRun(t, quickConfig(12345))
	if r.Created != 321 {
		t.Errorf("Created = %d, want 321", r.Created)
	}
	if r.Delivered != 148 {
		t.Errorf("Delivered = %d, want 148", r.Delivered)
	}
	if r.Contacts != 167 {
		t.Errorf("Contacts = %d, want 167", r.Contacts)
	}
	if r.TransfersCompleted != 4220 {
		t.Errorf("TransfersCompleted = %d, want 4220", r.TransfersCompleted)
	}
}

// TestOverheadOrdering pins a structural property of the protocols:
// controlled replication (Spray and Wait) moves far fewer copies per
// delivery than naive flooding (Epidemic), and DirectDelivery's overhead
// is zero by construction.
func TestOverheadOrdering(t *testing.T) {
	run := func(p ProtocolKind) Result {
		c := quickConfig(51)
		c.Protocol = p
		return mustRun(t, c)
	}
	epidemic := run(ProtoEpidemic)
	snw := run(ProtoSprayAndWait)
	direct := run(ProtoDirectDelivery)

	if snw.OverheadRatio >= epidemic.OverheadRatio {
		t.Errorf("S&W overhead %.2f not below epidemic %.2f",
			snw.OverheadRatio, epidemic.OverheadRatio)
	}
	if direct.OverheadRatio != 0 {
		t.Errorf("DirectDelivery overhead = %.2f, want 0", direct.OverheadRatio)
	}
}

// TestSprayAndWaitGlobalCopyBound verifies, via the trace, that no message
// ever has more than N live replicas network-wide — the protocol's
// defining invariant, checked across a whole stochastic run.
func TestSprayAndWaitGlobalCopyBound(t *testing.T) {
	var lg trace.Log
	c := quickConfig(53)
	c.Protocol = ProtoSprayAndWait
	c.SprayCopies = 12
	c.Trace = lg.Append
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()

	// Live replica count per message over time: creation and accepted
	// relays add one, drops/expiries remove one, deliveries remove the
	// sender's copy (OnSent) only via later expiry — so bound the count
	// of simultaneous stored replicas by N.
	live := map[int64]int{}
	peak := map[int64]int{}
	for _, ev := range lg.Events() {
		id := int64(ev.Msg)
		switch ev.Kind {
		case trace.Created, trace.RelayAccepted:
			live[id]++
			if live[id] > peak[id] {
				peak[id] = live[id]
			}
		case trace.Dropped, trace.Expired:
			live[id]--
		}
	}
	for id, p := range peak {
		if p > c.SprayCopies {
			t.Fatalf("message M%d peaked at %d live replicas, budget %d", id, p, c.SprayCopies)
		}
	}
}

// TestFirstContactSingleCopy verifies FirstContact's invariant: the
// message hops, never multiplies — at most one stored replica plus the
// in-flight duplicate exists at any instant.
func TestFirstContactSingleCopy(t *testing.T) {
	var lg trace.Log
	c := quickConfig(55)
	c.Protocol = ProtoFirstContact
	c.Trace = lg.Append
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()

	// Reconstruct live replica counts. FirstContact's OnSent deletes the
	// sender's copy after *every* completed transfer (handoff semantics),
	// which the trace shows as TransferComplete; the receiver's copy, if
	// stored, shows as RelayAccepted. A handoff is therefore net zero,
	// and any peak above 1 means the protocol replicated.
	live := map[int64]int{}
	for _, ev := range lg.Events() {
		id := int64(ev.Msg)
		switch ev.Kind {
		case trace.Created, trace.RelayAccepted:
			live[id]++
			if live[id] > 1 {
				t.Fatalf("FirstContact replicated M%d to %d live copies", id, live[id])
			}
		case trace.Dropped, trace.Expired, trace.TransferComplete:
			live[id]--
		}
	}
}

// TestLargeScenarioScales exercises the engine well beyond the paper's 45
// nodes: 200 vehicles on the Helsinki-scale map for one simulated hour.
// The point is correctness under load (the spatial grid, the pump loop and
// the queues see far more churn), plus a sanity cap on wall time via the
// test timeout rather than any fragile timing assertion.
func TestLargeScenarioScales(t *testing.T) {
	if testing.Short() {
		t.Skip("large scenario")
	}
	c := DefaultConfig()
	c.Seed = 99
	c.Duration = units.Hours(1)
	c.Vehicles = 200
	c.Relays = 10
	c.VehicleBuffer = units.MB(25)
	c.RelayBuffer = units.MB(100)
	c.TTL = units.Minutes(30)
	r := mustRun(t, c)
	if r.Created < 100 {
		t.Fatalf("created %d", r.Created)
	}
	if r.Delivered == 0 {
		t.Fatal("nothing delivered at high density")
	}
	if r.Contacts < 1000 {
		t.Fatalf("only %d contacts with 210 nodes", r.Contacts)
	}
	if r.DeliveredDuplicate != 0 {
		t.Fatalf("%d duplicate deliveries at scale", r.DeliveredDuplicate)
	}
}
