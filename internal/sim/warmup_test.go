package sim

import (
	"testing"

	"vdtn/internal/units"
)

func TestWarmupExcludesEarlyMessages(t *testing.T) {
	full := mustRun(t, quickConfig(41))

	c := quickConfig(41)
	c.Warmup = units.Minutes(30)
	warmed := mustRun(t, c)

	if warmed.Created >= full.Created {
		t.Fatalf("warmup did not shrink created: %d vs %d", warmed.Created, full.Created)
	}
	if warmed.Created == 0 {
		t.Fatal("warmup excluded everything")
	}
	// Roughly 3/4 of a 2h run remains after a 30-minute warmup.
	lo, hi := full.Created/2, full.Created
	if warmed.Created < lo || warmed.Created > hi {
		t.Fatalf("warmed created %d outside (%d, %d)", warmed.Created, lo, hi)
	}
	if warmed.Delivered > warmed.Created {
		t.Fatalf("delivered %d > created %d under warmup", warmed.Delivered, warmed.Created)
	}
	if warmed.DeliveryProbability < 0 || warmed.DeliveryProbability > 1 {
		t.Fatalf("delivery probability %v", warmed.DeliveryProbability)
	}
}

func TestWarmupValidation(t *testing.T) {
	c := quickConfig(1)
	c.Warmup = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative warmup accepted")
	}
	c = quickConfig(1)
	c.Warmup = c.Duration
	if err := c.Validate(); err == nil {
		t.Fatal("warmup == duration accepted")
	}
}

func TestWarmupDeterminism(t *testing.T) {
	c := quickConfig(43)
	c.Warmup = units.Minutes(20)
	a := mustRun(t, c)
	c2 := quickConfig(43)
	c2.Warmup = units.Minutes(20)
	b := mustRun(t, c2)
	if a != b {
		t.Fatal("warmup runs not deterministic")
	}
}

func TestMeanBufferOccupancyReported(t *testing.T) {
	r := mustRun(t, quickConfig(45))
	if r.MeanBufferOccupancy <= 0 || r.MeanBufferOccupancy > 1 {
		t.Fatalf("MeanBufferOccupancy = %v, want (0, 1]", r.MeanBufferOccupancy)
	}
	// Smaller buffers must sit proportionally fuller.
	c := quickConfig(45)
	c.VehicleBuffer = units.MB(5)
	c.RelayBuffer = units.MB(5)
	tight := mustRun(t, c)
	if tight.MeanBufferOccupancy <= r.MeanBufferOccupancy {
		t.Fatalf("tight buffers not fuller: %v vs %v",
			tight.MeanBufferOccupancy, r.MeanBufferOccupancy)
	}
}
