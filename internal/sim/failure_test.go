package sim

import (
	"testing"

	"vdtn/internal/contactplan"
	"vdtn/internal/units"
)

// Failure-injection tests: drive the simulator through the unhappy paths —
// refusals, evictions racing in-flight transfers, saturated buffers — and
// check the system degrades by the rules instead of breaking.

func TestRejectingRelaysStillDeliverDirect(t *testing.T) {
	// Relay buffers smaller than any message: every relay store fails,
	// but vehicle-to-vehicle delivery keeps working and the refusals are
	// accounted as rejected relays, not silent losses.
	c := quickConfig(61)
	c.RelayBuffer = units.KB(100) // below MsgSizeLo: nothing fits
	r := mustRun(t, c)
	if r.Delivered == 0 {
		t.Fatal("tiny relay buffers killed all delivery")
	}
	if r.RelayRejected == 0 {
		t.Fatal("no rejected relays recorded despite unusable relay buffers")
	}
}

func TestEvictionDuringTransferStillDelivers(t *testing.T) {
	// Node 0's buffer holds exactly one 1.5 MB message. While it is being
	// transmitted (window opens at 10, transfer takes 2 s), a second
	// message is created at t=10.5 and evicts the first from the buffer.
	// The in-flight bytes are already committed: the delivery must land.
	plan, err := contactplan.New([]contactplan.Contact{{A: 0, B: 1, Start: 10, End: 100}})
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.Plan = plan
	c.Vehicles = 2
	c.Relays = 0
	c.Duration = units.Hours(1)
	c.TTL = units.Minutes(30)
	c.VehicleBuffer = units.MB(2) // fits one message at a time
	c.Script = []ScriptedMessage{
		{Time: 0, From: 0, To: 1, Size: units.MB(1.5)},
		{Time: 10.5, From: 0, To: 1, Size: units.MB(1.5)},
	}
	r := mustRun(t, c)
	if r.Dropped == 0 {
		t.Fatal("second message did not evict the first (test setup broken)")
	}
	// M1 delivers from the wire; M2 delivers afterwards over the long
	// window. Both must make it.
	if r.Delivered != 2 {
		t.Fatalf("delivered %d of 2 (in-flight eviction lost a message)", r.Delivered)
	}
}

func TestSaturatedNetworkStaysConsistent(t *testing.T) {
	// Starvation regime: buffers fit barely two messages, traffic is 5x
	// the paper's rate, TTLs are short. The run must stay internally
	// consistent (no duplicate deliveries, accounting intact) even while
	// dropping most of the load.
	c := quickConfig(63)
	c.VehicleBuffer = units.MB(4)
	c.RelayBuffer = units.MB(4)
	c.MsgIntervalLo = 3
	c.MsgIntervalHi = 6
	c.TTL = units.Minutes(15)
	r := mustRun(t, c)
	if r.Dropped == 0 || r.Expired == 0 {
		t.Fatalf("saturation not reached: dropped=%d expired=%d", r.Dropped, r.Expired)
	}
	if r.DeliveredDuplicate != 0 {
		t.Fatalf("%d duplicate deliveries under churn", r.DeliveredDuplicate)
	}
	if r.Delivered > r.Created {
		t.Fatalf("delivered %d > created %d", r.Delivered, r.Created)
	}
}

func TestZeroRelaysScenario(t *testing.T) {
	c := quickConfig(65)
	c.Relays = 0
	r := mustRun(t, c)
	if r.Delivered == 0 {
		t.Fatal("no delivery without relays (vehicle-to-vehicle must suffice)")
	}
}

func TestMessageLargerThanEveryBuffer(t *testing.T) {
	// A scripted message bigger than the source buffer is rejected at
	// creation: counted as created and rejected, never delivered.
	plan, err := contactplan.New([]contactplan.Contact{{A: 0, B: 1, Start: 5, End: 50}})
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.Plan = plan
	c.Vehicles = 2
	c.Relays = 0
	c.Duration = units.Minutes(10)
	c.TTL = units.Minutes(5)
	c.VehicleBuffer = units.MB(1)
	c.Script = []ScriptedMessage{{Time: 0, From: 0, To: 1, Size: units.MB(5)}}
	r := mustRun(t, c)
	if r.Created != 1 || r.CreateRejected != 1 {
		t.Fatalf("created=%d rejected=%d, want 1/1", r.Created, r.CreateRejected)
	}
	if r.Delivered != 0 {
		t.Fatal("unstorable message delivered")
	}
}
