package sim

import (
	"context"
	"reflect"
	"testing"

	"vdtn/internal/roadmap"
	"vdtn/internal/trace"
	"vdtn/internal/units"
)

// cancelConfig is a small scenario that still produces a few thousand
// trace events, so mid-run cancellation points exist.
func cancelConfig() Config {
	c := DefaultConfig()
	c.Duration = units.Minutes(40)
	c.Map = roadmap.Grid(5, 5, 250)
	c.Vehicles = 8
	c.Relays = 1
	c.VehicleBuffer = units.MB(10)
	c.RelayBuffer = units.MB(20)
	c.TTL = units.Minutes(20)
	return c
}

// TestRunContextBackgroundMatchesRun: the ctx-aware path with an
// uncancellable context is bit-identical to Run — same Result, same
// trace.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	var lgA, lgB trace.Log

	cfgA := cancelConfig()
	cfgA.Trace = lgA.Append
	wA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	resA := wA.Run()

	cfgB := cancelConfig()
	cfgB.Trace = lgB.Append
	wB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := wB.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("RunContext result differs from Run:\n%+v\nvs\n%+v", resA, resB)
	}
	if !reflect.DeepEqual(lgA.Events(), lgB.Events()) {
		t.Fatal("RunContext trace differs from Run")
	}
}

// TestRunContextImmediateCancel: a context already cancelled returns its
// error before the first event; no torn Result escapes.
func TestRunContextImmediateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, err := New(cancelConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.RunContext(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(res, Result{}) {
		t.Fatalf("cancelled run returned a non-zero Result: %+v", res)
	}
}

// TestCancelledTraceIsPrefixOfFullRun pins cancellation determinism: a
// run cancelled mid-flight emits a strict prefix of the uninterrupted
// run's trace (events fire in a deterministic total order, and the cut
// happens between events), and returns ctx.Err() with a zero Result —
// never a torn one. Exercised at several cut points, including one
// deliberately unaligned with the checkpoint stride.
func TestCancelledTraceIsPrefixOfFullRun(t *testing.T) {
	var full trace.Log
	cfg := cancelConfig()
	cfg.Trace = full.Append
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	ref := full.Events()
	if len(ref) < 2000 {
		t.Fatalf("reference run produced only %d events; cut points would not be mid-run", len(ref))
	}

	for _, cutAfter := range []int{1, 100, 333, 1024, len(ref) / 2} {
		ctx, cancel := context.WithCancel(context.Background())
		var got trace.Log
		n := 0
		cfg := cancelConfig()
		cfg.Trace = func(ev trace.Event) {
			got.Append(ev)
			n++
			if n == cutAfter {
				cancel()
			}
		}
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.RunContext(ctx)
		if err != context.Canceled {
			t.Fatalf("cut after %d: err = %v, want context.Canceled", cutAfter, err)
		}
		if !reflect.DeepEqual(res, Result{}) {
			t.Fatalf("cut after %d: cancelled run returned a non-zero Result", cutAfter)
		}
		events := got.Events()
		// The cut lands at the next checkpoint, so a bounded number of
		// events past the cancel point may still fire — but everything
		// emitted must be a strict prefix of the reference trace.
		if len(events) < cutAfter || len(events) >= len(ref) {
			t.Fatalf("cut after %d: %d events emitted (reference %d)", cutAfter, len(events), len(ref))
		}
		if !reflect.DeepEqual(events, ref[:len(events)]) {
			t.Fatalf("cut after %d: cancelled trace is not a prefix of the full run's", cutAfter)
		}
		cancel()
	}
}
