package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"vdtn/internal/sim"
)

// TestTotalParallelismBudget pins the shared-budget arithmetic: the cell
// worker pool is clamped to the budget, and each cell's scan workers to
// the budget's per-worker share — so Workers × ScanWorkers never exceeds
// TotalParallelism no matter how the two knobs were set.
func TestTotalParallelismBudget(t *testing.T) {
	cases := []struct {
		name        string
		opt         Options
		wantWorkers int
		wantScanCap int
	}{
		{"workers clamped to budget",
			Options{Workers: 32, TotalParallelism: 8}, 8, 1},
		{"budget split across few workers",
			Options{Workers: 2, TotalParallelism: 8}, 2, 4},
		{"odd split rounds down",
			Options{Workers: 3, TotalParallelism: 8}, 3, 2},
		{"defaulted workers stay within budget",
			Options{TotalParallelism: 4},
			min(runtime.GOMAXPROCS(0), 4), max(1, 4/min(runtime.GOMAXPROCS(0), 4))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.opt.normalized()
			if o.Workers != tc.wantWorkers {
				t.Fatalf("Workers = %d, want %d", o.Workers, tc.wantWorkers)
			}
			if cap := o.scanWorkerCap(); cap != tc.wantScanCap {
				t.Fatalf("scanWorkerCap = %d, want %d", cap, tc.wantScanCap)
			}
			if o.Workers*o.scanWorkerCap() > o.TotalParallelism {
				t.Fatalf("budget exceeded: %d workers x %d scan workers > %d",
					o.Workers, o.scanWorkerCap(), o.TotalParallelism)
			}
		})
	}

	// Unset budget defaults to GOMAXPROCS and still caps the product.
	o := Options{Workers: 2 * runtime.GOMAXPROCS(0)}.normalized()
	if o.TotalParallelism != runtime.GOMAXPROCS(0) {
		t.Fatalf("default TotalParallelism = %d, want GOMAXPROCS", o.TotalParallelism)
	}
	if o.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers = %d not clamped to default budget", o.Workers)
	}
}

// TestCellConfigScanWorkerClamp pins how the budget reaches the cells:
// the Options override beats the base config, and both are clamped to
// the per-worker share; the all-default path leaves cells serial.
func TestCellConfigScanWorkerClamp(t *testing.T) {
	exp := tinyExperiment()
	job0 := job{seed: 1}

	// Defaults: no override, base config serial -> cells stay serial.
	opt := Options{Seeds: []uint64{1}, BaseConfig: tinyBase}.normalized()
	cfg, err := cellConfig(exp, opt, job0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ScanWorkers != 0 {
		t.Fatalf("default cell ScanWorkers = %d, want 0", cfg.ScanWorkers)
	}

	// Override within budget passes through.
	opt = Options{Seeds: []uint64{1}, BaseConfig: tinyBase,
		Workers: 2, ScanWorkers: 3, TotalParallelism: 8}.normalized()
	if cfg, err = cellConfig(exp, opt, job0); err != nil {
		t.Fatal(err)
	}
	if cfg.ScanWorkers != 3 {
		t.Fatalf("cell ScanWorkers = %d, want 3", cfg.ScanWorkers)
	}

	// Override beyond the per-worker share is clamped to it.
	opt = Options{Seeds: []uint64{1}, BaseConfig: tinyBase,
		Workers: 4, ScanWorkers: 16, TotalParallelism: 8}.normalized()
	if cfg, err = cellConfig(exp, opt, job0); err != nil {
		t.Fatal(err)
	}
	if cfg.ScanWorkers != 2 {
		t.Fatalf("cell ScanWorkers = %d, want 2 (budget 8 / 4 workers)", cfg.ScanWorkers)
	}

	// A base config asking for more than the share is clamped too.
	wide := Options{Seeds: []uint64{1}, BaseConfig: func() sim.Config {
		c := tinyBase()
		c.ScanWorkers = 64
		return c
	}, Workers: 4, TotalParallelism: 4}
	if cfg, err = cellConfig(exp, wide.normalized(), job0); err != nil {
		t.Fatal(err)
	}
	if cfg.ScanWorkers != 1 {
		t.Fatalf("cell ScanWorkers = %d, want 1 (saturated budget)", cfg.ScanWorkers)
	}
}

// TestSweepScanWorkersBitIdentical runs the same sweep serial and with
// parallel scans under a tight budget and requires identical results:
// the sweep-level restatement of the per-run determinism contract.
func TestSweepScanWorkersBitIdentical(t *testing.T) {
	exp := tinyExperiment()
	serial, err := RunE(exp, Options{Seeds: []uint64{1, 2}, BaseConfig: tinyBase})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunE(exp, Options{Seeds: []uint64{1, 2}, BaseConfig: tinyBase,
		Workers: 2, ScanWorkers: 3, TotalParallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Fatal("parallel-scan sweep diverged from serial sweep")
	}
}
