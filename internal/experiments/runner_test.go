package experiments

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"vdtn/internal/sim"
)

// mustRun executes the sweep through the Runner path (RunE) and renders
// its default table, failing the test on any error — the migration shim
// for the deleted panicking Run wrapper.
func mustRun(t *testing.T, exp Experiment, opt Options) Table {
	t.Helper()
	res, err := RunE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res.DefaultTable()
}

// gridExperiment is a tiny 2-axis grid: ttl_min × vehicles. The vehicles
// grid axis moves the contact process, so the contact cache must fork one
// trace per (vehicles value, seed).
func gridExperiment() Experiment {
	return Experiment{
		ID:     "tiny-grid",
		Title:  "grid harness test",
		Axis:   "ttl_min",
		Xs:     []float64{10, 20},
		Grid:   []GridAxis{{Axis: "vehicles", Values: []float64{6, 8}}},
		Metric: MetricDeliveryProb,
		Scenarios: []Scenario{
			{Name: "FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
			{Name: "Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
		},
	}
}

// recordingObserver captures every observer event for assertions.
type recordingObserver struct {
	mu       sync.Mutex
	started  []CellID
	finished []CellID
	errs     []error
	cache    []CacheEvent
	sweeps   int
	sweepErr error
	done     int
}

func (o *recordingObserver) SweepStarted(exp Experiment, opt Options, cells int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sweeps++
}
func (o *recordingObserver) CellStarted(c CellID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started = append(o.started, c)
}
func (o *recordingObserver) CellFinished(c CellID, elapsed time.Duration, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finished = append(o.finished, c)
	o.errs = append(o.errs, err)
}
func (o *recordingObserver) CacheEvent(ev CacheEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cache = append(o.cache, ev)
}
func (o *recordingObserver) SweepFinished(exp Experiment, elapsed time.Duration, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.done++
	o.sweepErr = err
}

// orderSink records delivery order and forwards to a MemorySink, to pin
// the in-order contract under a parallel worker pool.
type orderSink struct {
	mem   MemorySink
	order []CellResult
}

func (s *orderSink) Start(exp Experiment, opt Options) error { return s.mem.Start(exp, opt) }
func (s *orderSink) Cell(c CellResult) error {
	s.order = append(s.order, c)
	return s.mem.Cell(c)
}
func (s *orderSink) Finish(err error) error { return s.mem.Finish(err) }

// TestRunnerObserverLifecycle: every cell is bracketed by started and
// finished events, the sweep by exactly one started/finished pair, and
// cache events report the recording passes.
func TestRunnerObserverLifecycle(t *testing.T) {
	exp := tinyExperiment()
	obs := &recordingObserver{}
	var mem MemorySink
	r := Runner{
		Options:  Options{Seeds: []uint64{1, 2}, Workers: 4, BaseConfig: tinyBase, ContactCache: &ContactCache{}},
		Observer: obs,
		Sink:     &mem,
	}
	if err := r.Run(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	cells := len(exp.Scenarios) * len(exp.Xs) * 2
	if obs.sweeps != 1 || obs.done != 1 || obs.sweepErr != nil {
		t.Fatalf("sweep events: started %d, finished %d, err %v", obs.sweeps, obs.done, obs.sweepErr)
	}
	if len(obs.started) != cells || len(obs.finished) != cells {
		t.Fatalf("cell events: %d started, %d finished, want %d", len(obs.started), len(obs.finished), cells)
	}
	for i, err := range obs.errs {
		if err != nil {
			t.Fatalf("cell %v finished with error %v", obs.finished[i], err)
		}
	}
	for _, c := range obs.finished {
		if c.Total != cells || c.Index < 0 || c.Index >= cells || c.Series == "" || c.Seed == 0 {
			t.Fatalf("malformed CellID %+v", c)
		}
	}
	// The sweep shares one trace per seed (ttl does not move contacts):
	// 2 recording passes, every other lookup a hit.
	var recorded, hits int
	for _, ev := range obs.cache {
		switch ev.Kind {
		case CacheRecorded:
			recorded++
			if ev.Elapsed <= 0 {
				t.Fatalf("recording event without timing: %+v", ev)
			}
		case CacheHit, CacheHitDisk:
			hits++
		}
		if ev.Fingerprint == "" {
			t.Fatalf("cache event without fingerprint: %+v", ev)
		}
	}
	if recorded != 2 {
		t.Fatalf("observer saw %d recording passes, want 2", recorded)
	}
	if hits == 0 {
		t.Fatal("observer saw no cache hits")
	}
}

// TestRunnerDeliversCellsInAggregationOrder: regardless of worker
// scheduling, the sink sees cells in (series, x, seed) order and the
// memory sink reproduces RunE exactly.
func TestRunnerDeliversCellsInAggregationOrder(t *testing.T) {
	exp := tinyExperiment()
	opt := Options{Seeds: []uint64{1, 2, 3}, Workers: 8, BaseConfig: tinyBase}
	sink := &orderSink{}
	r := Runner{Options: opt, Sink: sink}
	if err := r.Run(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	want, err := RunE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sink.order, want.Cells) {
		t.Fatal("sink delivery order differs from aggregation order")
	}
	if !reflect.DeepEqual(sink.mem.Results().Cells, want.Cells) {
		t.Fatal("memory sink results differ from RunE")
	}
}

// TestGridSweepCells: a 2-axis grid runs the full cross-product, labels
// sub-series with the grid assignments, and forks the contact cache per
// mobility-moving grid value.
func TestGridSweepCells(t *testing.T) {
	exp := gridExperiment()
	cache := &ContactCache{}
	opt := Options{Seeds: []uint64{1, 2}, Workers: 4, BaseConfig: tinyBase, ContactCache: cache}
	res, err := RunE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := len(exp.Scenarios) * exp.Combos() * len(exp.Xs) * 2
	if len(res.Cells) != want {
		t.Fatalf("grid sweep stored %d cells, want %d", len(res.Cells), want)
	}
	if !res.Complete() {
		t.Fatal("complete grid sweep reports incomplete")
	}
	// vehicles moves contacts: one trace per (vehicles value, seed).
	if cache.Len() != 2*2 {
		t.Fatalf("cache holds %d traces, want 4 (2 vehicle counts × 2 seeds)", cache.Len())
	}
	tbl := res.DefaultTable()
	if len(tbl.Series) != len(exp.Scenarios)*exp.Combos() {
		t.Fatalf("grid table has %d series, want %d", len(tbl.Series), len(exp.Scenarios)*exp.Combos())
	}
	for _, name := range []string{"FIFO-FIFO [vehicles=6]", "FIFO-FIFO [vehicles=8]", "Lifetime [vehicles=6]", "Lifetime [vehicles=8]"} {
		found := false
		for _, s := range tbl.Series {
			found = found || s.Name == name
		}
		if !found {
			t.Fatalf("grid table missing sub-series %q:\n%s", name, tbl.Render())
		}
	}
	// Every cell carries its grid coordinates.
	for _, c := range res.Cells {
		if len(c.Grid) != 1 || c.Grid[0].Axis != "vehicles" {
			t.Fatalf("cell missing grid coordinates: %+v", c.Grid)
		}
		if c.Result.Created == 0 {
			t.Fatal("grid cell stored an empty Result")
		}
	}
	// The artifact renders and carries the grid block.
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{`"grid"`, `"vehicles"`, `[vehicles=6]`} {
		if !strings.Contains(string(data), wantStr) {
			t.Fatalf("grid artifact missing %q", wantStr)
		}
	}
}

// TestGridMatchesManualSingleAxisSweeps: each grid slice is bit-identical
// to the equivalent single-axis sweep with the grid value pinned as a
// fixed setting — the grid is pure enumeration, not new semantics.
func TestGridMatchesManualSingleAxisSweeps(t *testing.T) {
	exp := gridExperiment()
	opt := Options{Seeds: []uint64{1}, BaseConfig: tinyBase}
	res, err := RunE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	for ci, vehicles := range []float64{6, 8} {
		single := exp
		single.Grid = nil
		single.Set = append([]Setting{{Axis: "vehicles", Value: vehicles}}, exp.Set...)
		sres, err := RunE(single, opt)
		if err != nil {
			t.Fatal(err)
		}
		for si := range exp.Scenarios {
			for xi := range exp.Xs {
				got := res.at(si, ci, xi)
				wantCells := sres.at(si, 0, xi)
				if !reflect.DeepEqual(got[0].Result, wantCells[0].Result) {
					t.Fatalf("grid cell (series %d, vehicles=%v, x=%v) differs from pinned single-axis run",
						si, vehicles, exp.Xs[xi])
				}
			}
		}
	}
}

// TestRunnerCancellation: a sweep cancelled mid-flight returns ctx.Err(),
// and its sink holds only complete, valid cells forming a prefix of the
// aggregation order — bit-identical to the same cells of an
// uninterrupted run. Exercised with the mmap-backed cache shared across
// concurrent cells (the -race configuration the issue calls for).
func TestRunnerCancellation(t *testing.T) {
	exp := tinyExperiment()
	dir := t.TempDir()
	full, err := RunE(exp, Options{Seeds: []uint64{1, 2}, BaseConfig: tinyBase,
		ContactCache: &ContactCache{Dir: dir, Mmap: true}})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel after the third finished cell: the traces are persisted
	// already, so cancellation lands mid-sweep while cells replay from
	// mmap views shared across workers.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cache := &ContactCache{Dir: dir, Mmap: true}
	defer cache.Close()
	obs := &cancelAfterN{cancel: cancel, after: 3}
	sink := &orderSink{}
	r := Runner{
		Options:  Options{Seeds: []uint64{1, 2}, Workers: 4, BaseConfig: tinyBase, ContactCache: cache},
		Observer: obs,
		Sink:     sink,
	}
	err = r.Run(ctx, exp)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	got := sink.mem.Results()
	if got.Complete() {
		t.Fatal("cancelled sweep claims to be complete")
	}
	if len(got.Cells) >= len(full.Cells) {
		t.Fatalf("cancelled sweep delivered %d of %d cells", len(got.Cells), len(full.Cells))
	}
	// Prefix property: every delivered cell is complete and identical to
	// the uninterrupted run's cell at the same position.
	for i, c := range got.Cells {
		if c.Result.Created == 0 {
			t.Fatalf("cancelled sweep delivered an empty cell at %d", i)
		}
		if !reflect.DeepEqual(c, full.Cells[i]) {
			t.Fatalf("cancelled sweep's cell %d differs from the full run's", i)
		}
	}
	// Partial rendering stays valid: table and artifact render only the
	// delivered groups.
	tbl := got.DefaultTable()
	for _, s := range tbl.Series {
		if len(s.Cells) == 0 {
			t.Fatalf("partial table rendered an empty series %q", s.Name)
		}
	}
	if data, err := got.JSON(); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(string(data), `"complete": false`) {
		t.Fatal("partial artifact not flagged incomplete")
	}
}

// cancelAfterN cancels the run's context after n finished cells.
type cancelAfterN struct {
	BaseObserver
	cancel context.CancelFunc
	after  int
	seen   int
}

func (o *cancelAfterN) CellFinished(CellID, time.Duration, error) {
	o.seen++
	if o.seen == o.after {
		o.cancel()
	}
}

// TestJSONLSinkStream: the JSONL stream carries a header, one line per
// cell in aggregation order, and a complete footer; two runs of the same
// sweep produce identical bytes (the golden gate's property).
func TestJSONLSinkStream(t *testing.T) {
	exp := tinyExperiment()
	opt := Options{Seeds: []uint64{1, 2}, Workers: 4, BaseConfig: tinyBase}

	stream := func() []byte {
		var buf bytes.Buffer
		r := Runner{Options: opt, Sink: NewJSONLSink(&buf)}
		if err := r.Run(context.Background(), exp); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := stream(), stream()
	if !bytes.Equal(a, b) {
		t.Fatal("JSONL stream is not byte-stable across runs")
	}

	cells := len(exp.Scenarios) * len(exp.Xs) * len(opt.Seeds)
	sc := bufio.NewScanner(bytes.NewReader(a))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != cells+2 {
		t.Fatalf("stream has %d lines, want header + %d cells + footer", len(lines), cells)
	}
	var h jsonlHeader
	if err := json.Unmarshal([]byte(lines[0]), &h); err != nil {
		t.Fatalf("header: %v", err)
	}
	if h.Format != jsonlFormat || h.Experiment != exp.ID || h.Axis != "ttl_min" || len(h.Series) != 2 {
		t.Fatalf("bad header %+v", h)
	}
	for i, line := range lines[1 : cells+1] {
		var c jsonlCell
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			t.Fatalf("cell line %d: %v", i, err)
		}
		if c.Result.Created == 0 {
			t.Fatalf("cell line %d carries an empty Result", i)
		}
	}
	var f jsonlFooter
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &f); err != nil {
		t.Fatalf("footer: %v", err)
	}
	if !f.Complete || f.Cells != cells {
		t.Fatalf("footer %+v, want complete with %d cells", f, cells)
	}
}

// TestJSONLSinkCancelledFooter: an interrupted sweep's stream holds the
// delivered prefix and a footer recording the interruption — never a
// silent truncation.
func TestJSONLSinkCancelledFooter(t *testing.T) {
	exp := tinyExperiment()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	r := Runner{
		Options:  Options{Seeds: []uint64{1, 2}, Workers: 2, BaseConfig: tinyBase},
		Observer: &cancelAfterN{cancel: cancel, after: 2},
		Sink:     NewJSONLSink(&buf),
	}
	if err := r.Run(ctx, exp); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var f jsonlFooter
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &f); err != nil {
		t.Fatalf("footer: %v", err)
	}
	if f.Complete {
		t.Fatal("interrupted stream's footer claims completion")
	}
	if f.Error == "" || !strings.Contains(f.Error, "context canceled") {
		t.Fatalf("footer error = %q, want the cancellation reason", f.Error)
	}
	if f.Cells != len(lines)-2 {
		t.Fatalf("footer counts %d cells, stream has %d", f.Cells, len(lines)-2)
	}
}

// TestTeeSinkDuplicates: a tee delivers every event to all sinks.
func TestTeeSinkDuplicates(t *testing.T) {
	exp := tinyExperiment()
	opt := Options{Seeds: []uint64{1}, BaseConfig: tinyBase}
	var mem MemorySink
	var buf bytes.Buffer
	r := Runner{Options: opt, Sink: TeeSink(&mem, NewJSONLSink(&buf))}
	if err := r.Run(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	if !mem.Results().Complete() {
		t.Fatal("tee starved the memory sink")
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(mem.Results().Cells)+2 {
		t.Fatalf("tee's JSONL leg has %d lines", lines)
	}
}

// TestSinkErrorAbortsSweep: a failing sink stops the sweep and surfaces
// its error.
func TestSinkErrorAbortsSweep(t *testing.T) {
	exp := tinyExperiment()
	r := Runner{
		Options: Options{Seeds: []uint64{1}, BaseConfig: tinyBase},
		Sink:    failingSink{},
	}
	err := r.Run(context.Background(), exp)
	if err == nil || !strings.Contains(err.Error(), "sink exploded") {
		t.Fatalf("err = %v, want the sink's error", err)
	}
}

type failingSink struct{}

func (failingSink) Start(Experiment, Options) error { return nil }
func (failingSink) Cell(CellResult) error           { return errors.New("sink exploded") }
func (failingSink) Finish(error) error              { return nil }

// TestSpecLevelSeedsAndScale: spec files may declare their own seeds and
// scale; empty options inherit them, explicit options override them, and
// both round-trip through dump/reload.
func TestSpecLevelSeedsAndScale(t *testing.T) {
	spec := []byte(`{
		"name": "seeded",
		"duration_hours": 1, "vehicles": 8, "relays": 1,
		"vehicle_buffer_mb": 10, "relay_buffer_mb": 20,
		"sweep": {
			"axis": "ttl_min", "values": [10, 20],
			"seeds": [5, 6], "scale": 0.5
		}
	}`)
	exp, err := LoadSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exp.Seeds, []uint64{5, 6}) || exp.Scale != 0.5 {
		t.Fatalf("spec defaults not loaded: seeds %v scale %v", exp.Seeds, exp.Scale)
	}

	res, err := RunE(exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Options.Seeds, []uint64{5, 6}) || res.Options.Scale != 0.5 {
		t.Fatalf("spec defaults not applied: %+v", res.Options)
	}
	seeds := map[uint64]bool{}
	for _, c := range res.Cells {
		seeds[c.Seed] = true
	}
	if !seeds[5] || !seeds[6] || len(seeds) != 2 {
		t.Fatalf("cells ran seeds %v, want {5, 6}", seeds)
	}

	// Explicit options override the spec.
	res, err = RunE(exp, Options{Seeds: []uint64{9}, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Options.Seeds, []uint64{9}) || res.Options.Scale != 0.25 {
		t.Fatalf("explicit options did not override the spec: %+v", res.Options)
	}

	// Dump → reload keeps them.
	data, err := SpecJSON(exp)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reloaded.Seeds, exp.Seeds) || reloaded.Scale != exp.Scale {
		t.Fatal("seeds/scale lost in dump → reload")
	}
}

// TestSpecSeedsValidation: malformed spec-level replication blocks fail
// at load, not mid-sweep.
func TestSpecSeedsValidation(t *testing.T) {
	for name, sweep := range map[string]string{
		"duplicate seeds": `{"axis": "ttl_min", "values": [10], "seeds": [3, 3]}`,
		"negative scale":  `{"axis": "ttl_min", "values": [10], "scale": -1}`,
		"unknown field":   `{"axis": "ttl_min", "values": [10], "sedes": [1]}`,
	} {
		spec := fmt.Sprintf(`{"name": "bad", "sweep": %s}`, sweep)
		if _, err := LoadSpec([]byte(spec)); err == nil {
			t.Fatalf("%s: spec loaded without error", name)
		}
	}
}

// TestGridSpecRoundTrip: the axes-list schema loads, validates, and
// round-trips through dump → reload bit-identically.
func TestGridSpecRoundTrip(t *testing.T) {
	spec := []byte(`{
		"name": "grid",
		"duration_hours": 1, "vehicles": 8, "relays": 1,
		"vehicle_buffer_mb": 10, "relay_buffer_mb": 20,
		"sweep": {
			"axes": [
				{"axis": "ttl_min", "values": [10, 20]},
				{"axis": "copies", "values": [4, 8, 12]}
			]
		},
		"series": [{"name": "SnW", "protocol": "spraywait", "policy": "lifetime"}]
	}`)
	exp, err := LoadSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Axis != "ttl_min" || len(exp.Xs) != 2 {
		t.Fatalf("primary axis %q %v", exp.Axis, exp.Xs)
	}
	if len(exp.Grid) != 1 || exp.Grid[0].Axis != "copies" || exp.Combos() != 3 {
		t.Fatalf("grid %+v", exp.Grid)
	}

	dumped, err := SpecJSON(exp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dumped), `"axes"`) {
		t.Fatal("grid spec dumped without the axes list")
	}
	reloaded, err := LoadSpec(dumped)
	if err != nil {
		t.Fatal(err)
	}
	redumped, err := SpecJSON(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dumped, redumped) {
		t.Fatalf("grid spec does not round-trip:\n%s\nvs\n%s", dumped, redumped)
	}

	// Ambiguous axis declarations are rejected.
	bad := []byte(`{"name": "bad", "sweep": {
		"axis": "ttl_min", "values": [10],
		"axes": [{"axis": "copies", "values": [4]}]
	}}`)
	if _, err := LoadSpec(bad); err == nil || !strings.Contains(err.Error(), "exclusive") {
		t.Fatalf("ambiguous spec loaded: %v", err)
	}

	// Duplicate grid axes are rejected.
	dup := []byte(`{"name": "dup", "sweep": {
		"axes": [{"axis": "ttl_min", "values": [10]}, {"axis": "ttl_min", "values": [20]}]
	}}`)
	if _, err := LoadSpec(dup); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate-axis spec loaded: %v", err)
	}
}
