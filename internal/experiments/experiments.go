// Package experiments defines and runs sweep experiments: the paper's
// evaluation figures, the DESIGN.md ablations, and any user-defined sweep
// expressed on the same vocabulary — a parallel multi-seed runner over a
// (series × axis-value × seed) cell grid, a full-Result store per cell,
// and table/CSV/JSON rendering of any metric view.
//
// Every experiment is a family of scenarios (series) swept over one named
// axis (message TTL for the paper's figures; link rate, buffer size, copy
// budget, fleet or relay count for the ablations — see scenario.Axes).
// Each (series, x, seed) cell is one full simulation run; cells are
// independent, so the runner fans them out over a worker pool. The
// complete sim.Result of every cell is kept (Results); per-cell
// replications aggregate into mean ± 95% CI under whichever metric a
// Table view selects.
//
// Experiments are data, not code: an Experiment is fully described by
// axis names, values and settings, so it round-trips through the scenario
// JSON schema (LoadSpec/Spec) and new sweeps ship as files instead of
// catalog edits.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
)

// Setting is one fixed, declarative config assignment: the named axis is
// applied with the value. Settings replace the opaque Apply/Mutate
// closures of the pre-spec harness, so a cell's full configuration is
// serializable and participates in scenario.ContactFingerprint.
type Setting struct {
	Axis  string  `json:"axis"`
	Value float64 `json:"value"`
}

// apply looks the axis up and writes the value into the config.
func (s Setting) apply(c *sim.Config) error {
	a, ok := scenario.AxisByName(s.Axis)
	if !ok {
		return fmt.Errorf("unknown axis %q (known: %v)", s.Axis, axisNames())
	}
	a.Apply(c, s.Value)
	return nil
}

func axisNames() []string {
	var names []string
	for _, a := range scenario.Axes() {
		names = append(names, a.Name)
	}
	return names
}

// Scenario is one series in an experiment.
type Scenario struct {
	// Name labels the series in tables ("FIFO-FIFO", "MaxProp", ...).
	Name string
	// Protocol and Policy select routing.
	Protocol sim.ProtocolKind
	Policy   sim.PolicyKind
	// Set holds per-series fixed axis settings, applied after the swept
	// value (the declarative successor of the old Mutate closure).
	Set []Setting
}

// Experiment is one reproducible sweep: a figure, an ablation, or a
// user-defined spec.
type Experiment struct {
	// ID is the handle used by the CLI, specs and benchmarks ("fig4", ...).
	ID string
	// Title describes what the sweep shows.
	Title string
	// Axis names the swept parameter (scenario.AxisByName); its label
	// heads the x column of rendered tables.
	Axis string
	// Xs are the swept values, in plot order.
	Xs []float64
	// Metric is the default reported metric; any other metric can be
	// rendered from the finished Results.
	Metric Metric
	// Set holds experiment-wide fixed axis settings, applied to every
	// cell before the swept value (e.g. pinning ttl_min=120 in a non-TTL
	// ablation).
	Set []Setting
	// Scenarios are the series.
	Scenarios []Scenario
	// Base, when non-nil, supplies the scenario template for this
	// experiment (spec files carry their base scenario here). Nil falls
	// back to Options.BaseConfig, then sim.DefaultConfig.
	Base func() sim.Config

	// baseSpec preserves the scenario file a spec-loaded experiment came
	// from (sweep/series blocks cleared), so Spec re-emits the base
	// scenario fields and the dump → edit → reload workflow round-trips
	// losslessly. Nil for Go-defined experiments, whose base is either
	// the paper defaults or a code-supplied Base/Options.BaseConfig.
	baseSpec *scenario.File
}

// validate reports the first structural problem that would make every
// cell fail, so RunE rejects a malformed experiment before burning a
// sweep's wall clock on it.
func (e Experiment) validate() error {
	if len(e.Xs) == 0 {
		return fmt.Errorf("experiments: %s sweeps no values", e.ID)
	}
	if len(e.Scenarios) == 0 {
		return fmt.Errorf("experiments: %s has no series", e.ID)
	}
	if _, ok := scenario.AxisByName(e.Axis); !ok {
		return fmt.Errorf("experiments: %s: unknown axis %q (known: %v)", e.ID, e.Axis, axisNames())
	}
	if err := e.Metric.valid(); err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	return nil
}

// Options controls a run of the harness.
type Options struct {
	// Seeds are the replication seeds; each cell runs once per seed.
	// Empty defaults to {1}.
	Seeds []uint64
	// Workers bounds parallelism; 0 defaults to GOMAXPROCS.
	Workers int
	// Scale multiplies the simulated duration (1 = the paper's 12 h).
	// Benchmarks use a smaller scale; the shape of the results is
	// preserved, absolute delays shrink with the horizon.
	Scale float64
	// BaseConfig supplies the scenario template; nil falls back to the
	// experiment's own Base (spec files), then sim.DefaultConfig (the
	// paper scenario).
	BaseConfig func() sim.Config
	// ContactCache, when non-nil, records each distinct (scenario, seed)
	// mobility process once and replays it for every cell that shares it,
	// instead of re-simulating vehicle motion and proximity scanning per
	// cell. Results are bit-identical to uncached runs. The cache may be
	// shared across experiments and is safe for concurrent use.
	ContactCache *ContactCache

	// LazyRecord disables the concurrent pre-recording pool the runner
	// starts when ContactCache is set (ContactCache.Prewarm): recordings
	// then happen only on first touch inside the cell workers, where cells
	// sharing a trace serialize behind its single-flight recording.
	// Results are identical either way; only the wall clock moves. Mainly
	// for benchmarking the two schedules against each other.
	LazyRecord bool
}

func (o Options) normalized() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

// base resolves the scenario template for exp: explicit Options override,
// then the experiment's own base (spec files), then the paper scenario.
func (o Options) base(exp Experiment) func() sim.Config {
	if o.BaseConfig != nil {
		return o.BaseConfig
	}
	if exp.Base != nil {
		return exp.Base
	}
	return sim.DefaultConfig
}

// job identifies one (series, x, seed) cell of a sweep.
type job struct {
	scenario int
	xi       int
	seed     uint64
}

// cellJobs enumerates every cell of the sweep in aggregation order.
func cellJobs(exp Experiment, opt Options) []job {
	var jobs []job
	for si := range exp.Scenarios {
		for xi := range exp.Xs {
			for _, seed := range opt.Seeds {
				jobs = append(jobs, job{si, xi, seed})
			}
		}
	}
	return jobs
}

// cellConfig materializes one cell's full configuration: base template,
// scale, series protocol/policy, seed, the experiment-wide settings, the
// swept axis value, then the series settings. Unknown axes surface here,
// so RunE reports them with the failing cell's coordinates.
func cellConfig(exp Experiment, opt Options, j job) (sim.Config, error) {
	cfg := opt.base(exp)()
	cfg.Duration *= opt.Scale
	if cfg.MessageGenEnd > 0 {
		cfg.MessageGenEnd *= opt.Scale
	}
	sc := exp.Scenarios[j.scenario]
	cfg.Protocol = sc.Protocol
	cfg.Policy = sc.Policy
	cfg.Seed = j.seed
	for _, s := range exp.Set {
		if err := s.apply(&cfg); err != nil {
			return sim.Config{}, err
		}
	}
	if err := (Setting{Axis: exp.Axis, Value: exp.Xs[j.xi]}).apply(&cfg); err != nil {
		return sim.Config{}, err
	}
	for _, s := range sc.Set {
		if err := s.apply(&cfg); err != nil {
			return sim.Config{}, err
		}
	}
	return cfg, nil
}

// cellErrorf wraps a cell failure with its (series, x, seed) coordinates,
// so one bad cell out of hundreds is findable.
func cellErrorf(exp Experiment, j job, err error) error {
	return fmt.Errorf("experiments: %s cell (series %q, x=%v, seed %d): %w",
		exp.ID, exp.Scenarios[j.scenario].Name, exp.Xs[j.xi], j.seed, err)
}

// runCell executes one (series, x, seed) cell and returns its complete
// result. Panics out of the simulation stack are converted into errors,
// so a worker goroutine never kills the whole sweep — the cell is
// reported with its coordinates by RunE instead.
func runCell(exp Experiment, opt Options, j job) (res sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	cfg, err := cellConfig(exp, opt, j)
	if err != nil {
		return sim.Result{}, err
	}
	// The fingerprint is taken after the axis settings are applied, so
	// sweeps that move mobility inputs (fleet size, map) key their cells
	// correctly and only contact-identical cells share a trace. Source
	// hands back either the shared in-memory recording or, with
	// ContactCache.Mmap, a zero-copy mmap view every cell (and process)
	// replays from the page cache.
	if opt.ContactCache != nil && cfg.Plan == nil && cfg.ContactSource == sim.ContactLive {
		src, rerr := opt.ContactCache.Source(cfg)
		if rerr != nil {
			return sim.Result{}, rerr
		}
		cfg.ContactSource = sim.ContactReplay
		cfg.ReplaySource = src
	}
	w, nerr := sim.New(cfg)
	if nerr != nil {
		return sim.Result{}, nerr
	}
	return w.Run(), nil
}

// CellConfigs returns the fully materialized configuration of every
// (series, x, seed) cell of the sweep, in aggregation order — what
// ContactCache.Prewarm wants when pre-recording traces across several
// experiments before any of them runs.
func CellConfigs(exp Experiment, opt Options) ([]sim.Config, error) {
	opt = opt.normalized()
	jobs := cellJobs(exp, opt)
	cfgs := make([]sim.Config, len(jobs))
	for i, j := range jobs {
		cfg, err := cellConfig(exp, opt, j)
		if err != nil {
			return nil, cellErrorf(exp, j, err)
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}

// Run executes the experiment under opt and renders its default metric
// table. It is a thin wrapper over RunE that panics on an error; call
// RunE to handle failures (a bad map, an invalid swept value, an unknown
// axis or metric, an unusable cache entry) without killing the process.
func Run(exp Experiment, opt Options) Table {
	res, err := RunE(exp, opt)
	if err != nil {
		panic(err.Error())
	}
	return res.DefaultTable()
}

// RunE executes the experiment under opt and stores every cell's complete
// sim.Result. Cells run on a worker pool; the first failing cell (in
// aggregation order) aborts the sweep and is reported with its (series,
// x, seed) coordinates. A structurally bad experiment (unknown axis or
// metric, empty sweep) is rejected before any cell runs. When
// opt.ContactCache is set, the distinct contact traces the sweep needs
// are recorded by a parallel prewarm pool running alongside the cell
// workers (see Options.LazyRecord to disable).
func RunE(exp Experiment, opt Options) (*Results, error) {
	opt = opt.normalized()
	if err := exp.validate(); err != nil {
		return nil, err
	}
	jobs := cellJobs(exp, opt)

	// Warm the cache concurrently with cell execution: the prewarm pool
	// records distinct (scenario, seed) traces the cell workers have not
	// reached yet, so recordings run in parallel instead of serializing
	// behind first-touch single-flight — without a barrier that would keep
	// early cells from overlapping the remaining recording passes.
	// Prewarm failures are deliberately dropped: the cache memoizes each
	// key's error, so the failing cell reports it below with its
	// (series, x, seed) coordinates instead of a bare fingerprint. The
	// failed flag doubles as the pool's stop signal, so a dead sweep does
	// not keep recording traces nobody will use.
	var failed atomic.Bool
	var prewarmed chan struct{}
	if opt.ContactCache != nil && !opt.LazyRecord {
		var cfgs []sim.Config
		for _, j := range jobs {
			// A cell whose config cannot materialize is skipped here; its
			// worker reports the error with full coordinates below.
			if cfg, err := cellConfig(exp, opt, j); err == nil && cfg.Plan == nil && cfg.ContactSource == sim.ContactLive {
				cfgs = append(cfgs, cfg)
			}
		}
		prewarmed = make(chan struct{})
		go func() {
			defer close(prewarmed)
			_ = opt.ContactCache.prewarm(cfgs, opt.Workers, failed.Load)
		}()
	}

	results := make([]sim.Result, len(jobs))
	errs := make([]error, len(jobs))

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range next {
				// After the first failure the sweep is dead either way, so
				// remaining cells are drained, not simulated — a bad first
				// cell must not cost the whole sweep's wall clock.
				if failed.Load() {
					continue
				}
				j := jobs[ji]
				r, err := runCell(exp, opt, j)
				if err != nil {
					errs[ji] = cellErrorf(exp, j, err)
					failed.Store(true)
					continue
				}
				results[ji] = r
			}
		}()
	}
	for ji := range jobs {
		next <- ji
	}
	close(next)
	wg.Wait()
	if prewarmed != nil {
		// On success every key is memoized and the pool finishes
		// immediately; on failure the failed flag makes it skip whatever it
		// had not started. Either way the wait only keeps its goroutines
		// from outliving the run.
		<-prewarmed
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Results{Experiment: exp, Options: opt, Cells: make([]CellResult, len(jobs))}
	for i, j := range jobs {
		res.Cells[i] = CellResult{
			Series: exp.Scenarios[j.scenario].Name,
			X:      exp.Xs[j.xi],
			Seed:   j.seed,
			Result: results[i],
		}
	}
	return res, nil
}

// --- catalog ---------------------------------------------------------------

// paperTTLs are the TTL sweep points of every figure, in minutes.
var paperTTLs = []float64{60, 90, 120, 150, 180}

// ttl120 pins the ablations' message lifetime at the paper's central TTL.
var ttl120 = []Setting{{Axis: "ttl_min", Value: 120}}

// tableIPolicies are the paper's Table I series, applied to proto.
func tableIPolicies(proto sim.ProtocolKind) []Scenario {
	return []Scenario{
		{Name: "FIFO-FIFO", Protocol: proto, Policy: sim.PolicyFIFOFIFO},
		{Name: "Random-FIFO", Protocol: proto, Policy: sim.PolicyRandomFIFO},
		{Name: "LifetimeDESC-LifetimeASC", Protocol: proto, Policy: sim.PolicyLifetime},
	}
}

// protocolScenarios are the Figure 8/9 series: the paper's proposed policy
// on the simple replicators vs the self-contained protocols.
func protocolScenarios() []Scenario {
	return []Scenario{
		{Name: "Epidemic", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
		{Name: "SprayAndWait", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
		{Name: "MaxProp", Protocol: sim.ProtoMaxProp, Policy: sim.PolicyFIFOFIFO},
		{Name: "PRoPHET", Protocol: sim.ProtoPRoPHET, Policy: sim.PolicyFIFOFIFO},
	}
}

// Catalog returns every built-in experiment — the paper's six figures and
// the ablations DESIGN.md §5 calls out — expressed on the named axes, so
// each round-trips through the sweep spec schema unchanged (see Spec).
func Catalog() []Experiment {
	return []Experiment{
		{
			ID:        "fig4",
			Title:     "Message average delay, Epidemic routing (paper Fig. 4)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricAvgDelayMin,
			Scenarios: tableIPolicies(sim.ProtoEpidemic),
		},
		{
			ID:        "fig5",
			Title:     "Message delivery probability, Epidemic routing (paper Fig. 5)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricDeliveryProb,
			Scenarios: tableIPolicies(sim.ProtoEpidemic),
		},
		{
			ID:        "fig6",
			Title:     "Message average delay, Spray and Wait routing (paper Fig. 6)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricAvgDelayMin,
			Scenarios: tableIPolicies(sim.ProtoSprayAndWait),
		},
		{
			ID:        "fig7",
			Title:     "Message delivery probability, Spray and Wait routing (paper Fig. 7)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricDeliveryProb,
			Scenarios: tableIPolicies(sim.ProtoSprayAndWait),
		},
		{
			ID:        "fig8",
			Title:     "Delivery probability: Epidemic, SprayAndWait, MaxProp, PRoPHET (paper Fig. 8)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricDeliveryProb,
			Scenarios: protocolScenarios(),
		},
		{
			ID:        "fig9",
			Title:     "Message average delay: Epidemic, SprayAndWait, MaxProp, PRoPHET (paper Fig. 9)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricAvgDelayMin,
			Scenarios: protocolScenarios(),
		},
		{
			ID:     "ablation-rate",
			Title:  "Constrained link rate reinforces the policy impact (paper §III.C conjecture)",
			Axis:   "rate_mbit",
			Xs:     []float64{0.5, 1, 2, 4, 6},
			Metric: MetricAvgDelayMin,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "Epidemic/FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
				{Name: "Epidemic/Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
			},
		},
		{
			ID:     "ablation-buffer",
			Title:  "Buffer pressure and the dropping policy",
			Axis:   "buffer_mb",
			Xs:     []float64{10, 25, 50, 100, 200},
			Metric: MetricDeliveryProb,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "Epidemic/FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
				{Name: "Epidemic/Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
			},
		},
		{
			ID:     "ablation-copies",
			Title:  "Spray and Wait copy budget N (paper fixes N=12)",
			Axis:   "copies",
			Xs:     []float64{2, 4, 8, 12, 16, 24},
			Metric: MetricDeliveryProb,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "SprayAndWait/Lifetime", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
			},
		},
		{
			ID:     "ablation-fleet",
			Title:  "Vehicle density: contact opportunities vs buffer contention",
			Axis:   "vehicles",
			Xs:     []float64{10, 20, 40, 60, 80},
			Metric: MetricDeliveryProb,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "Epidemic/Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
				{Name: "SprayAndWait/Lifetime", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
			},
		},
		{
			ID:     "ext-policies",
			Title:  "Extended literature policies vs Table I (framework extension)",
			Axis:   "ttl_min",
			Xs:     []float64{60, 120, 180},
			Metric: MetricDeliveryProb,
			Scenarios: []Scenario{
				{Name: "FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
				{Name: "Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
				{Name: "SizeASC-SizeDESC", Protocol: sim.ProtoEpidemic, Policy: sim.PolicySize},
				{Name: "HopASC-MOFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyHopMOFO},
				{Name: "FIFO-OldestAge", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOOldestAge},
			},
		},
		{
			ID:     "ablation-relays",
			Title:  "Stationary relay nodes increase contact opportunities (paper Fig. 1 motivation)",
			Axis:   "relays",
			Xs:     []float64{0, 2, 5, 8, 10},
			Metric: MetricDeliveryProb,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "SprayAndWait/Lifetime", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
			},
		},
	}
}

// ByID finds an experiment in the built-in catalog.
func ByID(id string) (Experiment, bool) {
	for _, e := range Catalog() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the catalog ids, sorted.
func IDs() []string {
	var ids []string
	for _, e := range Catalog() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
