// Package experiments defines and runs the paper's evaluation: one
// Experiment per figure (and per ablation), a parallel multi-seed runner,
// and table/CSV rendering of the results.
//
// Every experiment is a family of scenarios (series) swept over an x-axis
// (message TTL for the paper's figures; link rate, buffer size, copy
// budget or relay count for the ablations). Each (series, x, seed) cell is
// one full simulation run; cells are independent, so the runner fans them
// out over a worker pool and aggregates per-cell replications into mean ±
// 95% CI.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vdtn/internal/sim"
	"vdtn/internal/stats"
	"vdtn/internal/units"
)

// Metric selects which run metric an experiment reports.
type Metric int

// Metrics the figures plot.
const (
	// MetricAvgDelayMin is the message average delay in minutes
	// (Figures 4, 6, 9).
	MetricAvgDelayMin Metric = iota
	// MetricDeliveryProb is the message delivery probability
	// (Figures 5, 7, 8).
	MetricDeliveryProb
	// MetricOverhead is the transfer overhead ratio (ablations).
	MetricOverhead
)

// String names the metric for table headers.
func (m Metric) String() string {
	switch m {
	case MetricAvgDelayMin:
		return "average delay (minutes)"
	case MetricDeliveryProb:
		return "delivery probability"
	case MetricOverhead:
		return "overhead ratio"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// value extracts the metric from a run result.
func (m Metric) value(r sim.Result) float64 {
	switch m {
	case MetricAvgDelayMin:
		return r.AvgDelay / 60
	case MetricDeliveryProb:
		return r.DeliveryProbability
	case MetricOverhead:
		return r.OverheadRatio
	default:
		panic(fmt.Sprintf("experiments: unknown metric %d", int(m)))
	}
}

// Scenario is one series in an experiment.
type Scenario struct {
	// Name labels the series in tables ("FIFO-FIFO", "MaxProp", ...).
	Name string
	// Protocol and Policy select routing.
	Protocol sim.ProtocolKind
	Policy   sim.PolicyKind
	// Mutate optionally adjusts the config after the x-value is applied.
	Mutate func(*sim.Config)
}

// Experiment is one reproducible figure or ablation.
type Experiment struct {
	// ID is the handle used by the CLI and benchmarks ("fig4", ...).
	ID string
	// Title describes what the paper figure shows.
	Title string
	// XLabel names the swept parameter.
	XLabel string
	// Xs are the swept values, in plot order.
	Xs []float64
	// Metric is the reported metric.
	Metric Metric
	// Scenarios are the series.
	Scenarios []Scenario
	// Apply writes one x value into a config (e.g. sets the TTL).
	Apply func(c *sim.Config, x float64)
}

// Options controls a run of the harness.
type Options struct {
	// Seeds are the replication seeds; each cell runs once per seed.
	// Empty defaults to {1}.
	Seeds []uint64
	// Workers bounds parallelism; 0 defaults to GOMAXPROCS.
	Workers int
	// Scale multiplies the simulated duration (1 = the paper's 12 h).
	// Benchmarks use a smaller scale; the shape of the results is
	// preserved, absolute delays shrink with the horizon.
	Scale float64
	// BaseConfig supplies the scenario template; nil defaults to
	// sim.DefaultConfig (the paper scenario).
	BaseConfig func() sim.Config
	// ContactCache, when non-nil, records each distinct (scenario, seed)
	// mobility process once and replays it for every cell that shares it,
	// instead of re-simulating vehicle motion and proximity scanning per
	// cell. Results are bit-identical to uncached runs. The cache may be
	// shared across experiments and is safe for concurrent use.
	ContactCache *ContactCache

	// LazyRecord disables the concurrent pre-recording pool the runner
	// starts when ContactCache is set (ContactCache.Prewarm): recordings
	// then happen only on first touch inside the cell workers, where cells
	// sharing a trace serialize behind its single-flight recording.
	// Results are identical either way; only the wall clock moves. Mainly
	// for benchmarking the two schedules against each other.
	LazyRecord bool
}

func (o Options) normalized() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.BaseConfig == nil {
		o.BaseConfig = sim.DefaultConfig
	}
	return o
}

// Cell is the aggregated outcome of one (series, x) point.
type Cell struct {
	X       float64
	Summary stats.Summary
}

// Series is one aggregated line of an experiment.
type Series struct {
	Name  string
	Cells []Cell
}

// Table is a completed experiment.
type Table struct {
	Experiment Experiment
	Options    Options
	Series     []Series
}

// job identifies one (series, x, seed) cell of a sweep.
type job struct {
	scenario int
	xi       int
	seed     uint64
}

// cellJobs enumerates every cell of the sweep in aggregation order.
func cellJobs(exp Experiment, opt Options) []job {
	var jobs []job
	for si := range exp.Scenarios {
		for xi := range exp.Xs {
			for _, seed := range opt.Seeds {
				jobs = append(jobs, job{si, xi, seed})
			}
		}
	}
	return jobs
}

// cellConfig materializes one cell's full configuration: base template,
// scale, series protocol/policy, seed, then the x value and the series
// mutation.
func cellConfig(exp Experiment, opt Options, j job) sim.Config {
	cfg := opt.BaseConfig()
	cfg.Duration *= opt.Scale
	if cfg.MessageGenEnd > 0 {
		cfg.MessageGenEnd *= opt.Scale
	}
	sc := exp.Scenarios[j.scenario]
	cfg.Protocol = sc.Protocol
	cfg.Policy = sc.Policy
	cfg.Seed = j.seed
	exp.Apply(&cfg, exp.Xs[j.xi])
	if sc.Mutate != nil {
		sc.Mutate(&cfg)
	}
	return cfg
}

// cellErrorf wraps a cell failure with its (series, x, seed) coordinates,
// so one bad cell out of hundreds is findable.
func cellErrorf(exp Experiment, j job, err error) error {
	return fmt.Errorf("experiments: %s cell (series %q, x=%v, seed %d): %w",
		exp.ID, exp.Scenarios[j.scenario].Name, exp.Xs[j.xi], j.seed, err)
}

// runCell executes one (series, x, seed) cell. Panics out of the
// simulation stack are converted into errors, so a worker goroutine never
// kills the whole sweep — the cell is reported with its coordinates by
// RunE instead.
func runCell(exp Experiment, opt Options, j job) (v float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	cfg := cellConfig(exp, opt, j)
	// The fingerprint is taken after Apply/Mutate, so sweeps that move
	// mobility inputs (fleet size, map) key their cells correctly and only
	// contact-identical cells share a trace. Source hands back either the
	// shared in-memory recording or, with ContactCache.Mmap, a zero-copy
	// mmap view every cell (and process) replays from the page cache.
	if opt.ContactCache != nil && cfg.Plan == nil && cfg.ContactSource == sim.ContactLive {
		src, rerr := opt.ContactCache.Source(cfg)
		if rerr != nil {
			return 0, rerr
		}
		cfg.ContactSource = sim.ContactReplay
		cfg.ReplaySource = src
	}
	w, nerr := sim.New(cfg)
	if nerr != nil {
		return 0, nerr
	}
	return exp.Metric.value(w.Run()), nil
}

// CellConfigs returns the fully materialized configuration of every
// (series, x, seed) cell of the sweep, in aggregation order — what
// ContactCache.Prewarm wants when pre-recording traces across several
// experiments before any of them runs.
func CellConfigs(exp Experiment, opt Options) []sim.Config {
	opt = opt.normalized()
	jobs := cellJobs(exp, opt)
	cfgs := make([]sim.Config, len(jobs))
	for i, j := range jobs {
		cfgs[i] = cellConfig(exp, opt, j)
	}
	return cfgs
}

// Run executes the experiment under opt and aggregates the results. It is
// a thin wrapper over RunE that panics on a cell error; call RunE to
// handle failures (a bad map, an invalid swept value, an unusable cache
// entry) without killing the process.
func Run(exp Experiment, opt Options) Table {
	t, err := RunE(exp, opt)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// RunE executes the experiment under opt and aggregates the results. Cells
// run on a worker pool; the first failing cell (in aggregation order)
// aborts the table and is reported with its (series, x, seed) coordinates.
// When opt.ContactCache is set, the distinct contact traces the sweep
// needs are recorded by a parallel prewarm pool running alongside the
// cell workers (see Options.LazyRecord to disable).
func RunE(exp Experiment, opt Options) (Table, error) {
	opt = opt.normalized()
	jobs := cellJobs(exp, opt)

	// Warm the cache concurrently with cell execution: the prewarm pool
	// records distinct (scenario, seed) traces the cell workers have not
	// reached yet, so recordings run in parallel instead of serializing
	// behind first-touch single-flight — without a barrier that would keep
	// early cells from overlapping the remaining recording passes.
	// Prewarm failures are deliberately dropped: the cache memoizes each
	// key's error, so the failing cell reports it below with its
	// (series, x, seed) coordinates instead of a bare fingerprint. The
	// failed flag doubles as the pool's stop signal, so a dead sweep does
	// not keep recording traces nobody will use.
	var failed atomic.Bool
	var prewarmed chan struct{}
	if opt.ContactCache != nil && !opt.LazyRecord {
		var cfgs []sim.Config
		for _, j := range jobs {
			if cfg := cellConfig(exp, opt, j); cfg.Plan == nil && cfg.ContactSource == sim.ContactLive {
				cfgs = append(cfgs, cfg)
			}
		}
		prewarmed = make(chan struct{})
		go func() {
			defer close(prewarmed)
			_ = opt.ContactCache.prewarm(cfgs, opt.Workers, failed.Load)
		}()
	}

	results := make([]float64, len(jobs))
	errs := make([]error, len(jobs))

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range next {
				// After the first failure the table is dead either way, so
				// remaining cells are drained, not simulated — a bad first
				// cell must not cost the whole sweep's wall clock.
				if failed.Load() {
					continue
				}
				j := jobs[ji]
				v, err := runCell(exp, opt, j)
				if err != nil {
					errs[ji] = cellErrorf(exp, j, err)
					failed.Store(true)
					continue
				}
				results[ji] = v
			}
		}()
	}
	for ji := range jobs {
		next <- ji
	}
	close(next)
	wg.Wait()
	if prewarmed != nil {
		// On success every key is memoized and the pool finishes
		// immediately; on failure the failed flag makes it skip whatever it
		// had not started. Either way the wait only keeps its goroutines
		// from outliving the run.
		<-prewarmed
	}

	for _, err := range errs {
		if err != nil {
			return Table{}, err
		}
	}

	// Aggregate deterministically.
	t := Table{Experiment: exp, Options: opt}
	perSeed := len(opt.Seeds)
	perX := len(exp.Xs) * perSeed
	for si, sc := range exp.Scenarios {
		s := Series{Name: sc.Name}
		for xi, x := range exp.Xs {
			base := si*perX + xi*perSeed
			xs := make([]float64, perSeed)
			copy(xs, results[base:base+perSeed])
			s.Cells = append(s.Cells, Cell{X: x, Summary: stats.Summarize(xs)})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// Render returns an aligned text table: one row per x value, one column
// per series, cells "mean±ci" (ci omitted for single-seed runs).
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s — %s\n", t.Experiment.ID, t.Experiment.Title, t.Experiment.Metric)
	if t.Options.Scale != 1 {
		fmt.Fprintf(&sb, "(scaled run: %.0f%% of the paper's 12 h horizon)\n", t.Options.Scale*100)
	}

	cols := []string{t.Experiment.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for xi, x := range t.Experiment.Xs {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			c := s.Cells[xi]
			if c.Summary.N > 1 {
				row = append(row, fmt.Sprintf("%.3f±%.3f", c.Summary.Mean, c.Summary.CI95()))
			} else {
				row = append(row, fmt.Sprintf("%.3f", c.Summary.Mean))
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV returns the table in long form:
// experiment,x,series,mean,ci95,n — one row per cell.
func (t Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("experiment,x,series,mean,ci95,n\n")
	for _, s := range t.Series {
		for _, c := range s.Cells {
			fmt.Fprintf(&sb, "%s,%s,%s,%.6f,%.6f,%d\n",
				t.Experiment.ID, trimFloat(c.X), s.Name, c.Summary.Mean, c.Summary.CI95(), c.Summary.N)
		}
	}
	return sb.String()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// --- catalog ---------------------------------------------------------------

// paperTTLs are the TTL sweep points of every figure, in minutes.
var paperTTLs = []float64{60, 90, 120, 150, 180}

func applyTTL(c *sim.Config, ttlMin float64) { c.TTL = units.Minutes(ttlMin) }

// tableIPolicies are the paper's Table I series, applied to proto.
func tableIPolicies(proto sim.ProtocolKind) []Scenario {
	return []Scenario{
		{Name: "FIFO-FIFO", Protocol: proto, Policy: sim.PolicyFIFOFIFO},
		{Name: "Random-FIFO", Protocol: proto, Policy: sim.PolicyRandomFIFO},
		{Name: "LifetimeDESC-LifetimeASC", Protocol: proto, Policy: sim.PolicyLifetime},
	}
}

// protocolScenarios are the Figure 8/9 series: the paper's proposed policy
// on the simple replicators vs the self-contained protocols.
func protocolScenarios() []Scenario {
	return []Scenario{
		{Name: "Epidemic", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
		{Name: "SprayAndWait", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
		{Name: "MaxProp", Protocol: sim.ProtoMaxProp, Policy: sim.PolicyFIFOFIFO},
		{Name: "PRoPHET", Protocol: sim.ProtoPRoPHET, Policy: sim.PolicyFIFOFIFO},
	}
}

// Catalog returns every reproducible experiment: the paper's six figures
// and the four ablations DESIGN.md §5 calls out.
func Catalog() []Experiment {
	return []Experiment{
		{
			ID:        "fig4",
			Title:     "Message average delay, Epidemic routing (paper Fig. 4)",
			XLabel:    "ttl(min)",
			Xs:        paperTTLs,
			Metric:    MetricAvgDelayMin,
			Scenarios: tableIPolicies(sim.ProtoEpidemic),
			Apply:     applyTTL,
		},
		{
			ID:        "fig5",
			Title:     "Message delivery probability, Epidemic routing (paper Fig. 5)",
			XLabel:    "ttl(min)",
			Xs:        paperTTLs,
			Metric:    MetricDeliveryProb,
			Scenarios: tableIPolicies(sim.ProtoEpidemic),
			Apply:     applyTTL,
		},
		{
			ID:        "fig6",
			Title:     "Message average delay, Spray and Wait routing (paper Fig. 6)",
			XLabel:    "ttl(min)",
			Xs:        paperTTLs,
			Metric:    MetricAvgDelayMin,
			Scenarios: tableIPolicies(sim.ProtoSprayAndWait),
			Apply:     applyTTL,
		},
		{
			ID:        "fig7",
			Title:     "Message delivery probability, Spray and Wait routing (paper Fig. 7)",
			XLabel:    "ttl(min)",
			Xs:        paperTTLs,
			Metric:    MetricDeliveryProb,
			Scenarios: tableIPolicies(sim.ProtoSprayAndWait),
			Apply:     applyTTL,
		},
		{
			ID:        "fig8",
			Title:     "Delivery probability: Epidemic, SprayAndWait, MaxProp, PRoPHET (paper Fig. 8)",
			XLabel:    "ttl(min)",
			Xs:        paperTTLs,
			Metric:    MetricDeliveryProb,
			Scenarios: protocolScenarios(),
			Apply:     applyTTL,
		},
		{
			ID:        "fig9",
			Title:     "Message average delay: Epidemic, SprayAndWait, MaxProp, PRoPHET (paper Fig. 9)",
			XLabel:    "ttl(min)",
			Xs:        paperTTLs,
			Metric:    MetricAvgDelayMin,
			Scenarios: protocolScenarios(),
			Apply:     applyTTL,
		},
		{
			ID:     "ablation-rate",
			Title:  "Constrained link rate reinforces the policy impact (paper §III.C conjecture)",
			XLabel: "rate(Mbit/s)",
			Xs:     []float64{0.5, 1, 2, 4, 6},
			Metric: MetricAvgDelayMin,
			Scenarios: []Scenario{
				{Name: "Epidemic/FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
				{Name: "Epidemic/Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
			},
			Apply: func(c *sim.Config, mbit float64) {
				c.TTL = units.Minutes(120)
				c.Rate = units.Mbit(mbit)
			},
		},
		{
			ID:     "ablation-buffer",
			Title:  "Buffer pressure and the dropping policy",
			XLabel: "buffer(MB)",
			Xs:     []float64{10, 25, 50, 100, 200},
			Metric: MetricDeliveryProb,
			Scenarios: []Scenario{
				{Name: "Epidemic/FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
				{Name: "Epidemic/Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
			},
			Apply: func(c *sim.Config, mb float64) {
				c.TTL = units.Minutes(120)
				c.VehicleBuffer = units.MB(mb)
				c.RelayBuffer = units.MB(5 * mb)
			},
		},
		{
			ID:     "ablation-copies",
			Title:  "Spray and Wait copy budget N (paper fixes N=12)",
			XLabel: "copies",
			Xs:     []float64{2, 4, 8, 12, 16, 24},
			Metric: MetricDeliveryProb,
			Scenarios: []Scenario{
				{Name: "SprayAndWait/Lifetime", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
			},
			Apply: func(c *sim.Config, n float64) {
				c.TTL = units.Minutes(120)
				c.SprayCopies = int(n)
			},
		},
		{
			ID:     "ablation-fleet",
			Title:  "Vehicle density: contact opportunities vs buffer contention",
			XLabel: "vehicles",
			Xs:     []float64{10, 20, 40, 60, 80},
			Metric: MetricDeliveryProb,
			Scenarios: []Scenario{
				{Name: "Epidemic/Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
				{Name: "SprayAndWait/Lifetime", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
			},
			Apply: func(c *sim.Config, n float64) {
				c.TTL = units.Minutes(120)
				c.Vehicles = int(n)
			},
		},
		{
			ID:     "ext-policies",
			Title:  "Extended literature policies vs Table I (framework extension)",
			XLabel: "ttl(min)",
			Xs:     []float64{60, 120, 180},
			Metric: MetricDeliveryProb,
			Scenarios: []Scenario{
				{Name: "FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
				{Name: "Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
				{Name: "SizeASC-SizeDESC", Protocol: sim.ProtoEpidemic, Policy: sim.PolicySize},
				{Name: "HopASC-MOFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyHopMOFO},
				{Name: "FIFO-OldestAge", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOOldestAge},
			},
			Apply: applyTTL,
		},
		{
			ID:     "ablation-relays",
			Title:  "Stationary relay nodes increase contact opportunities (paper Fig. 1 motivation)",
			XLabel: "relays",
			Xs:     []float64{0, 2, 5, 8, 10},
			Metric: MetricDeliveryProb,
			Scenarios: []Scenario{
				{Name: "SprayAndWait/Lifetime", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
			},
			Apply: func(c *sim.Config, n float64) {
				c.TTL = units.Minutes(120)
				c.Relays = int(n)
			},
		},
	}
}

// ByID finds an experiment in the catalog.
func ByID(id string) (Experiment, bool) {
	for _, e := range Catalog() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the catalog ids, sorted.
func IDs() []string {
	var ids []string
	for _, e := range Catalog() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
