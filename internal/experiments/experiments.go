// Package experiments defines and runs sweep experiments: the paper's
// evaluation figures, the DESIGN.md ablations, and any user-defined sweep
// expressed on the same vocabulary — a context-aware Runner over a
// (series × axis-values × seed) cell grid, pluggable result sinks, and
// table/CSV/JSON rendering of any metric view.
//
// Every experiment is a family of scenarios (series) swept over one named
// axis (message TTL for the paper's figures; link rate, buffer size, copy
// budget, fleet or relay count for the ablations — see scenario.Axes) or,
// for grid sweeps, over the cross-product of several (Experiment.Grid).
// Each (series, grid, x, seed) cell is one full simulation run; cells are
// independent, so the Runner fans them out over a worker pool, delivering
// finished cells to its ResultSink in deterministic aggregation order and
// reporting progress through its Observer. Cancelling the Runner's
// context stops in-flight cells at an event-loop checkpoint, so sinks
// only ever hold complete, valid cells. The complete sim.Result of every
// cell is kept (Results, or streamed via JSONLSink for sweeps too large
// for memory); per-cell replications aggregate into mean ± 95% CI under
// whichever metric a Table view selects.
//
// Experiments are data, not code: an Experiment is fully described by
// axis names, values and settings, so it round-trips through the scenario
// JSON schema (LoadSpec/Spec) and new sweeps ship as files instead of
// catalog edits.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
)

// Setting is one fixed, declarative config assignment: the named axis is
// applied with the value. Settings replace the opaque Apply/Mutate
// closures of the pre-spec harness, so a cell's full configuration is
// serializable and participates in scenario.ContactFingerprint.
type Setting struct {
	Axis  string  `json:"axis"`
	Value float64 `json:"value"`
}

// apply looks the axis up and writes the value into the config.
func (s Setting) apply(c *sim.Config) error {
	a, ok := scenario.AxisByName(s.Axis)
	if !ok {
		return fmt.Errorf("unknown axis %q (known: %v)", s.Axis, axisNames())
	}
	a.Apply(c, s.Value)
	return nil
}

func axisNames() []string {
	var names []string
	for _, a := range scenario.Axes() {
		names = append(names, a.Name)
	}
	return names
}

// Scenario is one series in an experiment.
type Scenario struct {
	// Name labels the series in tables ("FIFO-FIFO", "MaxProp", ...).
	Name string
	// Protocol and Policy select routing.
	Protocol sim.ProtocolKind
	Policy   sim.PolicyKind
	// Set holds per-series fixed axis settings, applied after the swept
	// value (the declarative successor of the old Mutate closure).
	Set []Setting
}

// GridAxis is one swept dimension of a multi-axis grid sweep: a named
// axis and its values, in plot order.
type GridAxis struct {
	Axis   string    `json:"axis"`
	Values []float64 `json:"values"`
}

// Experiment is one reproducible sweep: a figure, an ablation, or a
// user-defined spec.
type Experiment struct {
	// ID is the handle used by the CLI, specs and benchmarks ("fig4", ...).
	ID string
	// Title describes what the sweep shows.
	Title string
	// Axis names the primary swept parameter (scenario.AxisByName); its
	// label heads the x column of rendered tables.
	Axis string
	// Xs are the primary swept values, in plot order.
	Xs []float64
	// Grid holds the secondary axes of a multi-axis grid sweep. Cells are
	// the cross-product of Xs and every grid axis's values; tables render
	// one sub-series per (series, grid combination). Empty means a plain
	// single-axis sweep. Grid values apply to the config after the primary
	// value, so a mobility-moving grid axis forks the contact cache per
	// combination exactly like a mobility-moving primary axis does.
	Grid []GridAxis
	// Metric is the default reported metric; any other metric can be
	// rendered from the finished Results.
	Metric Metric
	// Seeds and Scale are spec-level defaults for the matching
	// Options fields, applied when the options leave them zero (spec files
	// carry them in the sweep block). Explicit ExperimentOptions always
	// win.
	Seeds []uint64
	Scale float64
	// Set holds experiment-wide fixed axis settings, applied to every
	// cell before the swept value (e.g. pinning ttl_min=120 in a non-TTL
	// ablation).
	Set []Setting
	// Scenarios are the series.
	Scenarios []Scenario
	// Base, when non-nil, supplies the scenario template for this
	// experiment (spec files carry their base scenario here). Nil falls
	// back to Options.BaseConfig, then sim.DefaultConfig.
	Base func() sim.Config

	// baseSpec preserves the scenario file a spec-loaded experiment came
	// from (sweep/series blocks cleared), so Spec re-emits the base
	// scenario fields and the dump → edit → reload workflow round-trips
	// losslessly. Nil for Go-defined experiments, whose base is either
	// the paper defaults or a code-supplied Base/Options.BaseConfig.
	baseSpec *scenario.File
}

// validate reports the first structural problem that would make every
// cell fail, so the runner rejects a malformed experiment before burning
// a sweep's wall clock on it.
func (e Experiment) validate() error {
	if len(e.Xs) == 0 {
		return fmt.Errorf("experiments: %s sweeps no values", e.ID)
	}
	if len(e.Scenarios) == 0 {
		return fmt.Errorf("experiments: %s has no series", e.ID)
	}
	if _, ok := scenario.AxisByName(e.Axis); !ok {
		return fmt.Errorf("experiments: %s: unknown axis %q (known: %v)", e.ID, e.Axis, axisNames())
	}
	seenAxes := map[string]bool{e.Axis: true}
	for _, g := range e.Grid {
		if _, ok := scenario.AxisByName(g.Axis); !ok {
			return fmt.Errorf("experiments: %s: unknown grid axis %q (known: %v)", e.ID, g.Axis, axisNames())
		}
		if seenAxes[g.Axis] {
			return fmt.Errorf("experiments: %s: axis %q swept twice", e.ID, g.Axis)
		}
		seenAxes[g.Axis] = true
		if len(g.Values) == 0 {
			return fmt.Errorf("experiments: %s: grid axis %q sweeps no values", e.ID, g.Axis)
		}
	}
	seenSeeds := map[uint64]bool{}
	for _, s := range e.Seeds {
		if seenSeeds[s] {
			return fmt.Errorf("experiments: %s: duplicate seed %d", e.ID, s)
		}
		seenSeeds[s] = true
	}
	if e.Scale < 0 {
		return fmt.Errorf("experiments: %s: negative scale %v", e.ID, e.Scale)
	}
	if err := e.Metric.valid(); err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	return nil
}

// Combos returns the number of secondary-axis value combinations — the
// factor the grid multiplies every (series, x, seed) count by. 1 for a
// single-axis sweep.
func (e Experiment) Combos() int {
	n := 1
	for _, g := range e.Grid {
		n *= len(g.Values)
	}
	return n
}

// comboValues decodes combination index ci into one value per grid axis,
// row-major with the first grid axis outermost.
func (e Experiment) comboValues(ci int) []float64 {
	if len(e.Grid) == 0 {
		return nil
	}
	vals := make([]float64, len(e.Grid))
	for i := len(e.Grid) - 1; i >= 0; i-- {
		n := len(e.Grid[i].Values)
		vals[i] = e.Grid[i].Values[ci%n]
		ci /= n
	}
	return vals
}

// comboSettings renders combination ci as declarative settings, the form
// cell configs and progress reports consume.
func (e Experiment) comboSettings(ci int) []Setting {
	vals := e.comboValues(ci)
	set := make([]Setting, len(vals))
	for i, v := range vals {
		set[i] = Setting{Axis: e.Grid[i].Axis, Value: v}
	}
	return set
}

// comboLabel renders combination ci for table sub-series names and cell
// error coordinates ("ttl_min=120 copies=4").
func (e Experiment) comboLabel(ci int) string {
	vals := e.comboValues(ci)
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%s=%s", e.Grid[i].Axis, trimFloat(v))
	}
	return strings.Join(parts, " ")
}

// seriesName labels the (series, combination) line: the bare series name
// for single-axis sweeps (pinning the pre-grid table output), the name
// plus the combination's axis assignments for grids.
func (e Experiment) seriesName(si, ci int) string {
	name := e.Scenarios[si].Name
	if len(e.Grid) == 0 {
		return name
	}
	return fmt.Sprintf("%s [%s]", name, e.comboLabel(ci))
}

// Options controls a run of the harness.
type Options struct {
	// Seeds are the replication seeds; each cell runs once per seed.
	// Empty defaults to {1}.
	Seeds []uint64
	// Workers bounds parallelism; 0 defaults to GOMAXPROCS.
	Workers int
	// Scale multiplies the simulated duration (1 = the paper's 12 h).
	// Benchmarks use a smaller scale; the shape of the results is
	// preserved, absolute delays shrink with the horizon.
	Scale float64
	// BaseConfig supplies the scenario template; nil falls back to the
	// experiment's own Base (spec files), then sim.DefaultConfig (the
	// paper scenario).
	BaseConfig func() sim.Config
	// ContactCache, when non-nil, records each distinct (scenario, seed)
	// mobility process once and replays it for every cell that shares it,
	// instead of re-simulating vehicle motion and proximity scanning per
	// cell. Results are bit-identical to uncached runs. The cache may be
	// shared across experiments and is safe for concurrent use.
	ContactCache *ContactCache

	// LazyRecord disables the concurrent pre-recording pool the runner
	// starts when ContactCache is set (ContactCache.Prewarm): recordings
	// then happen only on first touch inside the cell workers, where cells
	// sharing a trace serialize behind its single-flight recording.
	// Results are identical either way; only the wall clock moves. Mainly
	// for benchmarking the two schedules against each other.
	LazyRecord bool

	// ScanWorkers overrides sim.Config.ScanWorkers for every cell: the
	// per-run parallel proximity-scan fan-out. 0 keeps whatever the base
	// config (or a sweep axis) set. Like the sim knob itself, this never
	// changes results or cache keys — cached sweeps replay most cells and
	// ignore it there.
	ScanWorkers int

	// TotalParallelism is the sweep's shared goroutine budget: cell
	// workers × per-cell scan workers never exceeds it. 0 defaults to
	// GOMAXPROCS. Both Workers and ScanWorkers default from GOMAXPROCS
	// when unset, so without a shared budget a 32-cell sweep on an 8-core
	// box could oversubscribe quadratically; with it, Workers is clamped
	// to the budget and each cell's ScanWorkers to budget/Workers.
	TotalParallelism int
}

func (o Options) normalized() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1}
	}
	if o.TotalParallelism <= 0 {
		o.TotalParallelism = runtime.GOMAXPROCS(0)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	// The shared budget wins over both per-dimension knobs: cell workers
	// first (sweep throughput beats per-cell latency), scan workers with
	// whatever is left (see scanWorkerCap).
	o.Workers = min(o.Workers, o.TotalParallelism)
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

// scanWorkerCap is the per-cell scan-worker allowance under the shared
// parallelism budget: the budget divided among the concurrent cell
// workers, never below 1 (1 = the serial scan, which runs inline on the
// cell's own goroutine and adds no parallelism).
func (o Options) scanWorkerCap() int {
	if o.Workers <= 0 || o.TotalParallelism <= 0 {
		return 1 // un-normalized options: stay serial
	}
	return max(1, o.TotalParallelism/o.Workers)
}

// normalizedFor resolves the run options against exp's spec-level
// defaults: explicit Options win, then the experiment's own Seeds/Scale
// (spec files carry them), then the global defaults ({1}, GOMAXPROCS, 1).
func (o Options) normalizedFor(exp Experiment) Options {
	if len(o.Seeds) == 0 {
		o.Seeds = append([]uint64(nil), exp.Seeds...)
	}
	if o.Scale <= 0 {
		o.Scale = exp.Scale
	}
	return o.normalized()
}

// base resolves the scenario template for exp: explicit Options override,
// then the experiment's own base (spec files), then the paper scenario.
func (o Options) base(exp Experiment) func() sim.Config {
	if o.BaseConfig != nil {
		return o.BaseConfig
	}
	if exp.Base != nil {
		return exp.Base
	}
	return sim.DefaultConfig
}

// job identifies one (series, grid combination, x, seed) cell of a sweep.
type job struct {
	scenario int
	combo    int
	xi       int
	seed     uint64
}

// cellJobs enumerates every cell of the sweep in aggregation order:
// series-major, then grid combination, then x, then seed. Single-axis
// sweeps have one combination, reproducing the pre-grid order exactly.
func cellJobs(exp Experiment, opt Options) []job {
	var jobs []job
	for si := range exp.Scenarios {
		for ci := 0; ci < exp.Combos(); ci++ {
			for xi := range exp.Xs {
				for _, seed := range opt.Seeds {
					jobs = append(jobs, job{si, ci, xi, seed})
				}
			}
		}
	}
	return jobs
}

// cellResult labels j's completed run with its sweep coordinates.
func cellResult(exp Experiment, j job, r sim.Result) CellResult {
	return CellResult{
		Series: exp.Scenarios[j.scenario].Name,
		X:      exp.Xs[j.xi],
		Grid:   exp.comboSettings(j.combo),
		Seed:   j.seed,
		Result: r,
	}
}

// cellConfig materializes one cell's full configuration: base template,
// scale, series protocol/policy, seed, the experiment-wide settings, the
// swept primary value, the grid combination's values, then the series
// settings. Unknown axes surface here, so the runner reports them with
// the failing cell's coordinates.
func cellConfig(exp Experiment, opt Options, j job) (sim.Config, error) {
	cfg := opt.base(exp)()
	cfg.Duration *= opt.Scale
	if cfg.MessageGenEnd > 0 {
		cfg.MessageGenEnd *= opt.Scale
	}
	sc := exp.Scenarios[j.scenario]
	cfg.Protocol = sc.Protocol
	cfg.Policy = sc.Policy
	cfg.Seed = j.seed
	for _, s := range exp.Set {
		if err := s.apply(&cfg); err != nil {
			return sim.Config{}, err
		}
	}
	if err := (Setting{Axis: exp.Axis, Value: exp.Xs[j.xi]}).apply(&cfg); err != nil {
		return sim.Config{}, err
	}
	for _, s := range exp.comboSettings(j.combo) {
		if err := s.apply(&cfg); err != nil {
			return sim.Config{}, err
		}
	}
	for _, s := range sc.Set {
		if err := s.apply(&cfg); err != nil {
			return sim.Config{}, err
		}
	}
	// Scan-worker fan-out: the Options override wins over the base
	// config, and either is clamped to the cell's share of the sweep's
	// parallelism budget. Results are unaffected — ScanWorkers is a
	// throughput knob outside every determinism key — so the clamp can
	// never perturb a sweep, only pace it.
	if opt.ScanWorkers > 0 {
		cfg.ScanWorkers = opt.ScanWorkers
	}
	cfg.ScanWorkers = min(cfg.ScanWorkers, opt.scanWorkerCap())
	return cfg, nil
}

// cellErrorf wraps a cell failure with its (series, grid, x, seed)
// coordinates, so one bad cell out of hundreds is findable.
func cellErrorf(exp Experiment, j job, err error) error {
	grid := ""
	if len(exp.Grid) > 0 {
		grid = fmt.Sprintf(", grid [%s]", exp.comboLabel(j.combo))
	}
	return fmt.Errorf("experiments: %s cell (series %q, x=%v%s, seed %d): %w",
		exp.ID, exp.Scenarios[j.scenario].Name, exp.Xs[j.xi], grid, j.seed, err)
}

// runCell executes one cell to completion (or cancellation) and returns
// its complete result. Panics out of the simulation stack are converted
// into errors, so a worker goroutine never kills the whole sweep — the
// cell is reported with its coordinates by the runner instead. Cache
// events for the cell's contact-trace lookup flow to note (may be nil).
func runCell(ctx context.Context, exp Experiment, opt Options, j job, note func(CacheEvent)) (res sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	cfg, err := cellConfig(exp, opt, j)
	if err != nil {
		return sim.Result{}, err
	}
	// The fingerprint is taken after the axis settings are applied, so
	// sweeps that move mobility inputs (fleet size, map) key their cells
	// correctly and only contact-identical cells share a trace. Source
	// hands back either the shared in-memory recording or, with
	// ContactCache.Mmap, a zero-copy mmap view every cell (and process)
	// replays from the page cache.
	if opt.ContactCache != nil && cfg.Plan == nil && cfg.ContactSource == sim.ContactLive {
		src, rerr := opt.ContactCache.sourceWith(ctx, cfg, note)
		if rerr != nil {
			return sim.Result{}, rerr
		}
		cfg.ContactSource = sim.ContactReplay
		cfg.ReplaySource = src
	}
	w, nerr := sim.New(cfg)
	if nerr != nil {
		return sim.Result{}, nerr
	}
	return w.RunContext(ctx)
}

// CellConfigs returns the fully materialized configuration of every
// (series, grid, x, seed) cell of the sweep, in aggregation order — what
// ContactCache.Prewarm wants when pre-recording traces across several
// experiments before any of them runs.
func CellConfigs(exp Experiment, opt Options) ([]sim.Config, error) {
	opt = opt.normalizedFor(exp)
	jobs := cellJobs(exp, opt)
	cfgs := make([]sim.Config, len(jobs))
	for i, j := range jobs {
		cfg, err := cellConfig(exp, opt, j)
		if err != nil {
			return nil, cellErrorf(exp, j, err)
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}

// RunE executes the experiment under opt and stores every cell's complete
// sim.Result. It is the uncancellable convenience form of Runner.Run
// with a memory sink: cells run on a worker pool; the first failing cell
// (in aggregation order) aborts the sweep and is reported with its
// (series, grid, x, seed) coordinates. A structurally bad experiment
// (unknown axis or metric, empty sweep) is rejected before any cell runs.
// When opt.ContactCache is set, the distinct contact traces the sweep
// needs are recorded by a parallel prewarm pool running alongside the
// cell workers (see Options.LazyRecord to disable). Use a Runner directly
// for cancellation, progress observation, or streaming sinks.
func RunE(exp Experiment, opt Options) (*Results, error) {
	var mem MemorySink
	r := Runner{Options: opt, Sink: &mem}
	if err := r.Run(context.Background(), exp); err != nil {
		return nil, err
	}
	return mem.Results(), nil
}

// --- catalog ---------------------------------------------------------------

// paperTTLs are the TTL sweep points of every figure, in minutes.
var paperTTLs = []float64{60, 90, 120, 150, 180}

// ttl120 pins the ablations' message lifetime at the paper's central TTL.
var ttl120 = []Setting{{Axis: "ttl_min", Value: 120}}

// tableIPolicies are the paper's Table I series, applied to proto.
func tableIPolicies(proto sim.ProtocolKind) []Scenario {
	return []Scenario{
		{Name: "FIFO-FIFO", Protocol: proto, Policy: sim.PolicyFIFOFIFO},
		{Name: "Random-FIFO", Protocol: proto, Policy: sim.PolicyRandomFIFO},
		{Name: "LifetimeDESC-LifetimeASC", Protocol: proto, Policy: sim.PolicyLifetime},
	}
}

// protocolScenarios are the Figure 8/9 series: the paper's proposed policy
// on the simple replicators vs the self-contained protocols.
func protocolScenarios() []Scenario {
	return []Scenario{
		{Name: "Epidemic", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
		{Name: "SprayAndWait", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
		{Name: "MaxProp", Protocol: sim.ProtoMaxProp, Policy: sim.PolicyFIFOFIFO},
		{Name: "PRoPHET", Protocol: sim.ProtoPRoPHET, Policy: sim.PolicyFIFOFIFO},
	}
}

// Catalog returns every built-in experiment — the paper's six figures and
// the ablations DESIGN.md §5 calls out — expressed on the named axes, so
// each round-trips through the sweep spec schema unchanged (see Spec).
func Catalog() []Experiment {
	return []Experiment{
		{
			ID:        "fig4",
			Title:     "Message average delay, Epidemic routing (paper Fig. 4)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricAvgDelayMin,
			Scenarios: tableIPolicies(sim.ProtoEpidemic),
		},
		{
			ID:        "fig5",
			Title:     "Message delivery probability, Epidemic routing (paper Fig. 5)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricDeliveryProb,
			Scenarios: tableIPolicies(sim.ProtoEpidemic),
		},
		{
			ID:        "fig6",
			Title:     "Message average delay, Spray and Wait routing (paper Fig. 6)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricAvgDelayMin,
			Scenarios: tableIPolicies(sim.ProtoSprayAndWait),
		},
		{
			ID:        "fig7",
			Title:     "Message delivery probability, Spray and Wait routing (paper Fig. 7)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricDeliveryProb,
			Scenarios: tableIPolicies(sim.ProtoSprayAndWait),
		},
		{
			ID:        "fig8",
			Title:     "Delivery probability: Epidemic, SprayAndWait, MaxProp, PRoPHET (paper Fig. 8)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricDeliveryProb,
			Scenarios: protocolScenarios(),
		},
		{
			ID:        "fig9",
			Title:     "Message average delay: Epidemic, SprayAndWait, MaxProp, PRoPHET (paper Fig. 9)",
			Axis:      "ttl_min",
			Xs:        paperTTLs,
			Metric:    MetricAvgDelayMin,
			Scenarios: protocolScenarios(),
		},
		{
			ID:     "ablation-rate",
			Title:  "Constrained link rate reinforces the policy impact (paper §III.C conjecture)",
			Axis:   "rate_mbit",
			Xs:     []float64{0.5, 1, 2, 4, 6},
			Metric: MetricAvgDelayMin,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "Epidemic/FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
				{Name: "Epidemic/Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
			},
		},
		{
			ID:     "ablation-buffer",
			Title:  "Buffer pressure and the dropping policy",
			Axis:   "buffer_mb",
			Xs:     []float64{10, 25, 50, 100, 200},
			Metric: MetricDeliveryProb,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "Epidemic/FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
				{Name: "Epidemic/Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
			},
		},
		{
			ID:     "ablation-copies",
			Title:  "Spray and Wait copy budget N (paper fixes N=12)",
			Axis:   "copies",
			Xs:     []float64{2, 4, 8, 12, 16, 24},
			Metric: MetricDeliveryProb,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "SprayAndWait/Lifetime", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
			},
		},
		{
			ID:     "ablation-fleet",
			Title:  "Vehicle density: contact opportunities vs buffer contention",
			Axis:   "vehicles",
			Xs:     []float64{10, 20, 40, 60, 80},
			Metric: MetricDeliveryProb,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "Epidemic/Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
				{Name: "SprayAndWait/Lifetime", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
			},
		},
		{
			ID:     "ext-policies",
			Title:  "Extended literature policies vs Table I (framework extension)",
			Axis:   "ttl_min",
			Xs:     []float64{60, 120, 180},
			Metric: MetricDeliveryProb,
			Scenarios: []Scenario{
				{Name: "FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
				{Name: "Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
				{Name: "SizeASC-SizeDESC", Protocol: sim.ProtoEpidemic, Policy: sim.PolicySize},
				{Name: "HopASC-MOFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyHopMOFO},
				{Name: "FIFO-OldestAge", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOOldestAge},
			},
		},
		{
			ID:     "ablation-relays",
			Title:  "Stationary relay nodes increase contact opportunities (paper Fig. 1 motivation)",
			Axis:   "relays",
			Xs:     []float64{0, 2, 5, 8, 10},
			Metric: MetricDeliveryProb,
			Set:    ttl120,
			Scenarios: []Scenario{
				{Name: "SprayAndWait/Lifetime", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
			},
		},
	}
}

// ByID finds an experiment in the built-in catalog.
func ByID(id string) (Experiment, bool) {
	for _, e := range Catalog() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the catalog ids, sorted.
func IDs() []string {
	var ids []string
	for _, e := range Catalog() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
