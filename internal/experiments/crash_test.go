package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
)

// TestCacheIndexRepairAfterCrash simulates the crash window between a
// shard rename and the index flush: the trace is on disk, index.json has
// never heard of it. The next cache must serve the shard file instead of
// re-simulating, count the repair once through Warn, and persist the
// healed index on Close.
func TestCacheIndexRepairAfterCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheConfig()
	cfg.Seed = 7
	key := scenario.ContactFingerprint(cfg)

	writer := &ContactCache{Dir: dir}
	if _, err := writer.Recording(cfg); err != nil {
		t.Fatal(err)
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash: the shard rename landed, the index flush did not.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}

	var warns []string
	after := &ContactCache{Dir: dir, Warn: func(msg string) { warns = append(warns, msg) }}
	defer after.Close()
	if _, err := after.Recording(cfg); err != nil {
		t.Fatal(err)
	}
	if after.Recorded() != 0 {
		t.Fatalf("cache re-simulated %d traces that were on disk", after.Recorded())
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "had no entry") || !strings.Contains(warns[0], key) {
		t.Fatalf("repair warnings = %v, want one naming %s", warns, key)
	}
	// Dedup per cause: serving the same trace again reports nothing new.
	if _, err := (&ContactCache{Dir: dir, Warn: func(string) {}}).Recording(cfg); err != nil {
		t.Fatal(err)
	}
	if len(warns) != 1 {
		t.Fatalf("repair warned %d times, want once", len(warns))
	}
	if err := after.Close(); err != nil {
		t.Fatal(err)
	}

	// Close persisted the healed index: the entry is back.
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Entries map[string]indexEntry `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if e, ok := doc.Entries[key]; !ok || e.Size <= 0 {
		t.Fatalf("healed index lacks %s: %v", key, doc.Entries)
	}
}

// TestStoreHealDropsVanishedEntries covers the inverse crash (GC removed
// the shard, died before the index flush): a phantom index entry is
// dropped at load, reported through the repaired hook, and stays gone
// after the next flush.
func TestStoreHealDropsVanishedEntries(t *testing.T) {
	dir := t.TempDir()
	phantom := "00deadbeef000000"
	doc := indexDoc{Version: 1, Entries: map[string]indexEntry{
		phantom: {Size: 1024, Used: 42},
	}}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile), data, 0o644); err != nil {
		t.Fatal(err)
	}

	var repairs []string
	st := newTraceStore(dir)
	st.repaired = func(key, cause string) { repairs = append(repairs, key+": "+cause) }
	st.flush() // first index touch: load + heal + rewrite

	if len(repairs) != 1 || !strings.Contains(repairs[0], phantom) || !strings.Contains(repairs[0], "vanished") {
		t.Fatalf("repairs = %v, want the phantom entry dropped", repairs)
	}
	rewritten, err := os.ReadFile(filepath.Join(dir, indexFile))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(rewritten), phantom) {
		t.Fatalf("flushed index still lists the vanished trace:\n%s", rewritten)
	}
}

// TestCacheRecordingContextCancellation: a cancelled recording pass
// returns ctx.Err() promptly and is not memoized — the same cache records
// the key cleanly on the next call with a live context (the resumed-sweep
// path), and the cancelled pass never persists a torn trace.
func TestCacheRecordingContextCancellation(t *testing.T) {
	dir := t.TempDir()
	cc := &ContactCache{Dir: dir}
	defer cc.Close()
	cfg := cacheConfig()
	cfg.Seed = 3

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cc.RecordingContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled recording returned %v, want context.Canceled", err)
	}
	if cc.Len() != 0 {
		t.Fatalf("cancelled recording stayed memoized (%d entries)", cc.Len())
	}
	if _, err := os.Stat(cc.ShardPath(scenario.ContactFingerprint(cfg))); !os.IsNotExist(err) {
		t.Fatalf("cancelled recording persisted a trace: stat err %v", err)
	}

	rec, err := cc.RecordingContext(context.Background(), cfg)
	if err != nil || rec == nil {
		t.Fatalf("recording after a cancelled pass: %v", err)
	}
	if cc.Recorded() != 1 {
		t.Fatalf("recorded %d passes, want exactly 1", cc.Recorded())
	}

	// PrewarmContext under a cancelled context skips and reports, and the
	// keys stay recordable afterwards.
	cfg2 := cfg
	cfg2.Seed = 4
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := cc.PrewarmContext(ctx2, []sim.Config{}, 2); err != nil {
		t.Fatalf("empty prewarm errored: %v", err)
	}
	if err := cc.PrewarmContext(ctx2, []sim.Config{cfg2}, 2); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled prewarm returned %v", err)
	}
	if _, err := cc.Recording(cfg2); err != nil {
		t.Fatalf("recording after cancelled prewarm: %v", err)
	}
}
