package experiments

import (
	"bytes"
	"context"
	"testing"
)

// TestReadJSONLPrefixWorkerKnobsNeverPoisonResume pins the service-level
// resume rule inherited from the cache-key rule: Workers, ScanWorkers and
// TotalParallelism are throughput knobs, not sweep identity — a stream
// written under one setting must read, and resume, under any other. The
// JSONL header deliberately excludes them, so this is the regression
// gate on that exclusion.
func TestReadJSONLPrefixWorkerKnobsNeverPoisonResume(t *testing.T) {
	exp := tinyExperiment()
	wrote := Options{Seeds: []uint64{1, 2}, Workers: 1, ScanWorkers: 1, TotalParallelism: 1, BaseConfig: tinyBase}
	data := fullJSONLStream(t, exp, wrote)
	cells := len(exp.Scenarios) * len(exp.Xs) * len(wrote.Seeds)

	reads := []Options{
		{Seeds: wrote.Seeds, BaseConfig: tinyBase},
		{Seeds: wrote.Seeds, Workers: 7, BaseConfig: tinyBase},
		{Seeds: wrote.Seeds, ScanWorkers: 3, BaseConfig: tinyBase},
		{Seeds: wrote.Seeds, TotalParallelism: 2, BaseConfig: tinyBase},
		{Seeds: wrote.Seeds, Workers: 5, ScanWorkers: 2, TotalParallelism: 3, BaseConfig: tinyBase},
	}
	for i, opt := range reads {
		p, err := ReadJSONLPrefix(data, exp, opt)
		if err != nil {
			t.Fatalf("read %d (workers=%d scan=%d total=%d): %v",
				i, opt.Workers, opt.ScanWorkers, opt.TotalParallelism, err)
		}
		if len(p.Cells) != cells || !p.Footer || !p.Complete {
			t.Fatalf("read %d: got %d cells footer=%v complete=%v, want %d/true/true",
				i, len(p.Cells), p.Footer, p.Complete, cells)
		}
	}

	// Seeds and scale ARE sweep identity: the same reads must refuse.
	for i, opt := range []Options{
		{Seeds: []uint64{1, 2, 3}, BaseConfig: tinyBase},
		{Seeds: wrote.Seeds, Scale: 0.5, BaseConfig: tinyBase},
	} {
		if _, err := ReadJSONLPrefix(data, exp, opt); err == nil {
			t.Fatalf("identity-changing read %d unexpectedly accepted", i)
		}
	}

	// And a real resume across worker-knob changes stays byte-identical:
	// truncate mid-sweep, re-read under different knobs, finish under
	// them too.
	ends := lineEnds(data)
	cut := ends[1+cells/2] // header + half the cells
	part := append([]byte(nil), data[:cut]...)
	resumeOpt := Options{Seeds: wrote.Seeds, Workers: 4, ScanWorkers: 2, TotalParallelism: 4, BaseConfig: tinyBase}
	p, err := ReadJSONLPrefix(part, exp, resumeOpt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(part)
	r := Runner{Options: resumeOpt, Sink: NewJSONLSinkResume(&buf, p), ResumeFrom: p}
	if err := r.Run(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("resumed stream under different worker knobs is not byte-identical to the original")
	}
}
