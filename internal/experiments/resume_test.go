package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// fullJSONLStream runs exp to completion into a fresh JSONL stream and
// returns its bytes — the reference every resume must reproduce exactly.
func fullJSONLStream(t *testing.T, exp Experiment, opt Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := Runner{Options: opt, Sink: NewJSONLSink(&buf)}
	if err := r.Run(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lineEnds returns the byte offset just past each newline of data.
func lineEnds(data []byte) []int {
	var ends []int
	for i, b := range data {
		if b == '\n' {
			ends = append(ends, i+1)
		}
	}
	return ends
}

// TestReadJSONLPrefixEveryTruncation cuts a complete stream at every byte
// offset — every crash point a kill -9 can leave — and checks the reader
// recovers exactly the complete-cell prefix each time: never an error,
// never a torn or phantom cell, Offset always on the last complete cell
// boundary.
func TestReadJSONLPrefixEveryTruncation(t *testing.T) {
	exp := tinyExperiment()
	opt := Options{Seeds: []uint64{1, 2}, Workers: 4, BaseConfig: tinyBase}
	data := fullJSONLStream(t, exp, opt)
	ends := lineEnds(data)
	cells := len(exp.Scenarios) * len(exp.Xs) * 2
	if len(ends) != cells+2 {
		t.Fatalf("stream has %d lines, want header + %d cells + footer", len(ends), cells)
	}

	for cut := 0; cut <= len(data); cut++ {
		p, err := ReadJSONLPrefix(data[:cut], exp, opt)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		// Expected prefix: the complete cell lines fully inside the cut.
		wantCells, wantOffset := 0, int64(0)
		if cut >= ends[0] {
			wantOffset = int64(ends[0])
			for li := 1; li <= cells && cut >= ends[li]; li++ {
				wantCells++
				wantOffset = int64(ends[li])
			}
		}
		if len(p.Cells) != wantCells || p.Offset != wantOffset {
			t.Fatalf("cut at %d: %d cells at offset %d, want %d at %d",
				cut, len(p.Cells), p.Offset, wantCells, wantOffset)
		}
		if wantFooter := cut == len(data); p.Footer != wantFooter || p.Complete != wantFooter {
			t.Fatalf("cut at %d: footer %v complete %v", cut, p.Footer, p.Complete)
		}
		for i, c := range p.Cells {
			if c.Result.Created == 0 {
				t.Fatalf("cut at %d: recovered cell %d with an empty Result", cut, i)
			}
		}
	}
}

// TestRunnerResumeByteIdentical is the tentpole contract end to end: a
// stream cut at an arbitrary crash point, resumed through ReadJSONLPrefix
// + Runner.ResumeFrom + NewJSONLSinkResume, finishes byte-identical to
// the uninterrupted run — including resuming past a complete footer
// (nothing re-runs, the same footer is rewritten) and resuming a stream
// whose header never flushed (starts over). The tee'd memory sink must
// still see the full sweep: prefix cells are re-delivered, not skipped.
func TestRunnerResumeByteIdentical(t *testing.T) {
	exp := tinyExperiment()
	opt := Options{Seeds: []uint64{1, 2}, Workers: 4, BaseConfig: tinyBase}
	full := fullJSONLStream(t, exp, opt)
	ends := lineEnds(full)
	cells := len(ends) - 2

	// Crash points: before the header flushed, on each cell boundary, torn
	// mid-line after each boundary, a torn footer, and the complete stream.
	cuts := []int{0, ends[0] - 3}
	for li := 0; li <= cells; li++ {
		cuts = append(cuts, ends[li], ends[li]+7)
	}
	cuts = append(cuts, len(full)-1, len(full))

	for _, cut := range cuts {
		if cut < 0 || cut > len(full) {
			continue
		}
		prefix, err := ReadJSONLPrefix(full[:cut], exp, opt)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		var buf bytes.Buffer
		buf.Write(full[:prefix.Offset]) // the caller's truncate-then-append
		var mem MemorySink
		r := Runner{
			Options:    opt,
			Sink:       TeeSink(&mem, NewJSONLSinkResume(&buf, prefix)),
			ResumeFrom: prefix,
		}
		if err := r.Run(context.Background(), exp); err != nil {
			t.Fatalf("cut at %d: resumed run failed: %v", cut, err)
		}
		if !bytes.Equal(buf.Bytes(), full) {
			t.Fatalf("cut at %d: resumed stream differs from the uninterrupted run (%d vs %d bytes)",
				cut, buf.Len(), len(full))
		}
		if res := mem.Results(); !res.Complete() || len(res.Cells) != cells {
			t.Fatalf("cut at %d: memory sink got %d cells, want the full %d", cut, len(mem.Results().Cells), cells)
		}
	}
}

// TestReadJSONLPrefixRejectsCorruption: the reader tolerates exactly the
// damage a crash inflicts (a truncated trailing line) and refuses
// everything else — a stream from different options, reordered cells,
// lying footers, or content after the footer.
func TestReadJSONLPrefixRejectsCorruption(t *testing.T) {
	exp := tinyExperiment()
	opt := Options{Seeds: []uint64{1, 2}, Workers: 4, BaseConfig: tinyBase}
	full := fullJSONLStream(t, exp, opt)
	lines := bytes.SplitAfter(full, []byte("\n"))
	lines = lines[:len(lines)-1] // drop the empty split tail

	rejoin := func(ls [][]byte) []byte { return bytes.Join(ls, nil) }
	swap := func() []byte {
		mut := append([][]byte(nil), lines...)
		mut[1], mut[2] = mut[2], mut[1]
		return rejoin(mut)
	}
	lieFooter := func() []byte {
		mut := append([][]byte(nil), lines[:len(lines)-1]...)
		return append(rejoin(mut), []byte(`{"cells":1,"complete":false}`+"\n")...)
	}
	afterFooter := func() []byte { return append(append([]byte(nil), full...), lines[1]...) }
	badLine := func() []byte {
		mut := append([][]byte(nil), lines...)
		mut[2] = []byte("not json\n")
		return rejoin(mut)
	}
	claimComplete := func() []byte {
		head := rejoin(lines[:2])
		return append(append([]byte(nil), head...), []byte(`{"cells":1,"complete":true}`+"\n")...)
	}

	otherOpt := opt
	otherOpt.Seeds = []uint64{1}

	cases := []struct {
		name string
		data []byte
		opt  Options
		want string
	}{
		{"different options", full, otherOpt, "refusing to resume"},
		{"reordered cells", swap(), opt, "disagree"},
		{"footer count lie", lieFooter(), opt, "footer counts"},
		{"content after footer", afterFooter(), opt, "after its footer"},
		{"corrupt cell line", badLine(), opt, "not valid JSON"},
		{"premature complete claim", claimComplete(), opt, "claims a complete sweep"},
	}
	for _, tc := range cases {
		if _, err := ReadJSONLPrefix(tc.data, exp, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want it to mention %q", tc.name, err, tc.want)
		}
	}

	// A prefix from the wrong sweep is also rejected by the Runner before
	// any cell runs.
	p, err := ReadJSONLPrefix(full[:int(lineEnds(full)[2])], exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := Runner{Options: otherOpt, Sink: &MemorySink{}, ResumeFrom: p}
	if err := r.Run(context.Background(), exp); err == nil || !strings.Contains(err.Error(), "resume prefix") {
		t.Fatalf("Runner accepted a mismatched prefix: %v", err)
	}
}

// chokedWriter accepts the first n bytes and fails afterwards, possibly
// mid-write — the torn line a full disk leaves behind.
type chokedWriter struct {
	buf bytes.Buffer
	n   int
}

func (w *chokedWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		k := w.n
		w.n = 0
		w.buf.Write(p[:k])
		return k, errors.New("disk full")
	}
	w.n -= len(p)
	return w.buf.Write(p)
}

// TestJSONLFooterNeverLies pins the footer invariant from both sides:
// footer.Cells always equals the complete cell lines preceding it, for an
// error-path Finish (failed sweep) just like a clean one — and a sink
// whose own write tore the stream appends no footer at all, because any
// count after a torn line would be wrong.
func TestJSONLFooterNeverLies(t *testing.T) {
	exp := tinyExperiment()
	opt := Options{Seeds: []uint64{1, 2}, Workers: 2, BaseConfig: tinyBase}

	countStream := func(data []byte) (cellLines int, footer *jsonlFooter) {
		lines := bytes.SplitAfter(data, []byte("\n"))
		for _, line := range lines {
			if len(line) == 0 || line[len(line)-1] != '\n' {
				continue // torn tail
			}
			var probe struct {
				Series *string `json:"series"`
				Cells  *int    `json:"cells"`
			}
			if json.Unmarshal(line, &probe) != nil {
				continue
			}
			switch {
			case probe.Series != nil:
				cellLines++
			case probe.Cells != nil:
				var f jsonlFooter
				if json.Unmarshal(line, &f) == nil {
					footer = &f
				}
			}
		}
		return cellLines, footer
	}

	t.Run("worker error", func(t *testing.T) {
		// x = -5 materializes an invalid TTL, so those cells fail and the
		// sweep aborts after delivering a prefix; the footer must count
		// exactly the delivered lines and carry the failure.
		bad := exp
		bad.Xs = []float64{10, -5}
		var buf bytes.Buffer
		r := Runner{Options: opt, Sink: NewJSONLSink(&buf)}
		err := r.Run(context.Background(), bad)
		if err == nil {
			t.Fatal("sweep with an invalid cell succeeded")
		}
		cellLines, footer := countStream(buf.Bytes())
		if footer == nil {
			t.Fatalf("failed sweep's stream has no footer:\n%s", &buf)
		}
		if footer.Cells != cellLines || footer.Complete || footer.Error == "" {
			t.Fatalf("footer %+v after %d cell lines", footer, cellLines)
		}
	})

	t.Run("torn write", func(t *testing.T) {
		// The writer dies mid-stream: Finish must surface the write error
		// and append no footer after the torn line.
		w := &chokedWriter{n: 600}
		sink := NewJSONLSink(w)
		if err := sink.Start(exp, opt); err != nil {
			t.Fatal(err)
		}
		var cellErr error
		for seed := uint64(1); seed <= 64 && cellErr == nil; seed++ {
			c := CellResult{Series: "FIFO-FIFO", X: 10, Seed: seed}
			c.Result.Created = 1
			cellErr = sink.Cell(c)
		}
		if cellErr == nil {
			t.Fatal("choked writer never surfaced its failure")
		}
		if err := sink.Finish(nil); err == nil || !strings.Contains(err.Error(), "disk full") {
			t.Fatalf("Finish after a torn write returned %v, want the write error", err)
		}
		if _, footer := countStream(w.buf.Bytes()); footer != nil {
			t.Fatalf("torn stream carries a footer %+v — its count is unverifiable", footer)
		}
	})
}

// TestConcurrentRunnersSharedCacheDir is the shared-store half of the
// crash-safety work, run under -race in CI: two Runners splitting one
// grid between them, each with its own ContactCache over the same
// directory (one mmap, one slurp — the two persisted-serve paths),
// recording and loading concurrently with flock-serialized writes. Both
// halves must come out bit-identical to the single-runner reference.
func TestConcurrentRunnersSharedCacheDir(t *testing.T) {
	exp := gridExperiment()
	opt := Options{Seeds: []uint64{1, 2}, Workers: 4, BaseConfig: tinyBase}
	want, err := RunE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	halves := make([]Experiment, 2)
	for i := range halves {
		halves[i] = exp
		halves[i].Xs = exp.Xs[i : i+1] // split the primary axis
	}
	var wg sync.WaitGroup
	results := make([]*Results, 2)
	errs := make([]error, 2)
	for i := range halves {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cache := &ContactCache{Dir: dir, Mmap: i == 1, MaxBytes: 64 << 20}
			defer cache.Close()
			var mem MemorySink
			r := Runner{
				Options: Options{Seeds: opt.Seeds, Workers: opt.Workers, BaseConfig: tinyBase, ContactCache: cache},
				Sink:    &mem,
			}
			errs[i] = r.Run(context.Background(), halves[i])
			results[i] = mem.Results()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("runner %d: %v", i, err)
		}
	}
	// Reassemble: every cell of each half must be bit-identical to the
	// reference run's cell with the same coordinates.
	for i, res := range results {
		if !res.Complete() {
			t.Fatalf("runner %d finished incomplete", i)
		}
		for _, c := range res.Cells {
			found := false
			for _, w := range want.Cells {
				if w.Series == c.Series && w.X == c.X && w.Seed == c.Seed && reflect.DeepEqual(w.Grid, c.Grid) {
					found = true
					if !reflect.DeepEqual(w.Result, c.Result) {
						t.Fatalf("runner %d cell (%s x=%v seed %d) differs from the reference", i, c.Series, c.X, c.Seed)
					}
				}
			}
			if !found {
				t.Fatalf("runner %d produced an unexpected cell (%s x=%v %v seed %d)", i, c.Series, c.X, c.Grid, c.Seed)
			}
		}
	}
	// The shared store survived both writers: a third cache serves every
	// trace from disk without a single re-recording.
	probe := &ContactCache{Dir: dir}
	defer probe.Close()
	cfgs, err := CellConfigs(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		if _, err := probe.Recording(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if probe.Recorded() != 0 {
		t.Fatalf("shared store lost %d traces to the concurrent writers", probe.Recorded())
	}
}
