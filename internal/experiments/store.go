package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"vdtn/internal/wireless"
)

// traceStore is the on-disk half of ContactCache: a sharded directory of
// persisted contact traces keyed by scenario fingerprint.
//
// Layout. A flat directory — PR 1's layout — degrades once fleets reach
// thousands of fingerprints (directory scans, lock contention, tooling
// that chokes on huge listings), so traces live under a 2-level fan-out
// keyed by the first two hex characters of the fingerprint:
//
//	<dir>/ab/abcdef0123456789.contactsb
//	<dir>/index.json
//
// index.json fronts the shards: one entry per fingerprint with the trace's
// size and last-use time, which the size-bounded GC orders its evictions
// by. The index is advisory — the shard files are the source of truth, a
// missing or stale index is rebuilt from them, and a fingerprint absent
// from the index falls back to the file's mtime.
//
// Migration. Legacy layouts are upgraded transparently on first touch:
// a flat <dir>/<key>.contactsb is renamed into its shard, and a legacy
// <dir>/<key>.contacts text trace is decoded, re-encoded binary into the
// shard and then removed. MigrateDir runs the same upgrade over a whole
// directory at once.
type traceStore struct {
	dir string

	// now supplies the unix-seconds clock behind last-use stamps, so GC
	// eviction-order tests can drive it directly instead of skewing file
	// mtimes against the wall clock.
	now func() int64

	// repaired, when non-nil, learns of each index.json record the loader
	// had to fix against the shard files (see healLocked): cause describes
	// the disagreement, key is the fingerprint. The cache wires this to its
	// Warn hook with per-fingerprint dedup.
	repaired func(key, cause string)

	mu     sync.Mutex
	idx    map[string]indexEntry
	healed map[string]string // adopted key → cause, reported on first serve
	loaded bool
}

// indexEntry is one index.json record.
type indexEntry struct {
	Size int64 `json:"size"`
	Used int64 `json:"used"` // unix seconds of last load or store
}

const indexFile = "index.json"

// lockFile names the advisory flock file: one per shard directory
// (serializing trace installs against GC evictions of that shard) and one
// at the store root (serializing index.json rewrites). The dot prefix
// keeps it out of the trace glob and the migration scan.
const lockFile = ".lock"

// indexDoc is the serialized form of the index.
type indexDoc struct {
	Version int                   `json:"version"`
	Entries map[string]indexEntry `json:"entries"`
}

func newTraceStore(dir string) *traceStore {
	return &traceStore{dir: dir, now: func() int64 { return time.Now().Unix() }}
}

// shardPath returns the sharded location of key's binary trace.
func (s *traceStore) shardPath(key string) string {
	return filepath.Join(s.dir, shardOf(key), key+".contactsb")
}

// shardOf returns the fan-out directory for a fingerprint.
func shardOf(key string) string {
	if len(key) < 2 {
		return "_" // defensive: fingerprints are 16 hex chars
	}
	return key[:2]
}

func (s *traceStore) flatBinPath(key string) string {
	return filepath.Join(s.dir, key+".contactsb")
}

func (s *traceStore) flatTextPath(key string) string {
	return filepath.Join(s.dir, key+".contacts")
}

// locate returns the path key's binary trace should be read from,
// migrating a legacy flat-dir file into its shard first (best-effort: if
// the rename fails, the flat path is still served so a read-only cache
// directory keeps working).
func (s *traceStore) locate(key string) string {
	shard := s.shardPath(key)
	if _, err := os.Stat(shard); err == nil {
		return shard
	}
	flat := s.flatBinPath(key)
	fi, err := os.Stat(flat)
	if err != nil || fi.IsDir() {
		return shard
	}
	if err := os.MkdirAll(filepath.Dir(shard), 0o755); err != nil {
		return flat
	}
	if err := os.Rename(flat, shard); err != nil {
		return flat
	}
	s.touch(key, fi.Size())
	return shard
}

// put persists one encoded trace into its shard via a temp file and
// rename, so concurrent processes sharing the directory never observe a
// torn file, then retires any flat-dir leftovers for the key. Errors are
// swallowed by the caller's contract: persistence is an optimization and
// must never fail a run that already holds a valid recording.
func (s *traceStore) put(key string, data []byte) (path string, ok bool) {
	path = s.shardPath(key)
	// Cross-process exclusion against a concurrent GC of this shard: the
	// eviction pass must not remove the trace between our rename and the
	// index touch, which would resurrect it in the index as a phantom.
	unlock := s.lockShard(key)
	defer unlock()
	if !writeAtomic(filepath.Dir(path), path, data) {
		return path, false
	}
	// The sharded copy is now authoritative; flat-dir leftovers would only
	// double the cache's footprint and re-trigger migration probes.
	os.Remove(s.flatBinPath(key))
	os.Remove(s.flatTextPath(key))
	s.touch(key, int64(len(data)))
	s.mu.Lock()
	// This process just wrote the trace; a heal marker from the first
	// index load (which can observe put's own rename before the touch
	// lands) would mis-report a later disk serve as a crash repair.
	delete(s.healed, key)
	s.mu.Unlock()
	s.flush()
	return path, true
}

// retireFlatText removes a legacy flat text trace once its content has
// been re-encoded into a shard.
func (s *traceStore) retireFlatText(key string) { os.Remove(s.flatTextPath(key)) }

// touch records a use of key in the index (in memory; flush persists).
func (s *traceStore) touch(key string, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loadLocked()
	s.idx[key] = indexEntry{Size: size, Used: s.now()}
}

// loadLocked reads index.json once — a missing or unparsable index starts
// empty (the shard files are the source of truth) — then reconciles it
// against those shard files, because a crash can leave the two
// disagreeing (see healLocked).
func (s *traceStore) loadLocked() {
	if s.loaded {
		return
	}
	s.loaded = true
	s.idx = make(map[string]indexEntry)
	data, err := os.ReadFile(filepath.Join(s.dir, indexFile))
	if err == nil {
		var doc indexDoc
		if json.Unmarshal(data, &doc) == nil && doc.Entries != nil {
			s.idx = doc.Entries
		}
	}
	s.healLocked()
}

// healLocked reconciles the just-loaded index with the shard files. put
// installs the trace first and flushes the index second, so a crash in
// the gap leaves a shard file the index has never heard of — and the GC
// removes files first and flushes second, so the same crash inverted
// leaves an index entry whose file is gone. Either staleness would make
// the store mis-report: a phantom entry inflates the GC's size
// accounting and order, and an unlisted shard ages by an mtime the next
// process may not preserve. The shard file always wins: unlisted traces
// are adopted with their file size and mtime, entries for vanished files
// are dropped. Adoptions are stashed in healed and reported only when the
// trace is actually served (noteServed): a warning then means exactly "a
// would-have-been miss was repaired from the shard", while files this
// process wrote just before its first index load, or traces dropped into
// a shared directory out of band, are adopted without noise. Phantom
// entries have no serve event to wait for and report immediately. The
// healed index persists on the next flush — flush takes s.mu, so
// flushing from here would deadlock.
func (s *traceStore) healLocked() {
	files, err := filepath.Glob(filepath.Join(s.dir, "??", "*.contactsb"))
	if err != nil {
		return
	}
	onDisk := make(map[string]bool, len(files))
	for _, f := range files {
		key := trimExt(filepath.Base(f))
		onDisk[key] = true
		if _, ok := s.idx[key]; ok {
			continue
		}
		fi, statErr := os.Stat(f)
		if statErr != nil || fi.IsDir() {
			continue
		}
		s.idx[key] = indexEntry{Size: fi.Size(), Used: fi.ModTime().Unix()}
		if s.healed == nil {
			s.healed = make(map[string]string)
		}
		s.healed[key] = "had no entry"
	}
	for key := range s.idx {
		if onDisk[key] {
			continue
		}
		// A legacy flat-dir binary still counts as present: locate will
		// migrate it into its shard on first touch.
		if fi, statErr := os.Stat(s.flatBinPath(key)); statErr == nil && !fi.IsDir() {
			continue
		}
		delete(s.idx, key)
		if s.repaired != nil {
			s.repaired(key, "listed a vanished trace")
		}
	}
}

// noteServed records that key's persisted trace was just served. If the
// index had lost track of it (a crash between the shard rename and the
// index flush) the repair is reported now, once: the cache was about to
// mis-report a miss and re-simulate, and the shard stat saved the pass.
func (s *traceStore) noteServed(key string) {
	s.mu.Lock()
	cause, ok := s.healed[key]
	if ok {
		delete(s.healed, key)
	}
	rep := s.repaired
	s.mu.Unlock()
	if ok && rep != nil {
		rep(key, cause)
	}
}

// lockShard takes the advisory cross-process lock of key's shard
// directory. Writers (put) and the GC's evictions hold it around their
// file mutations; readers never need it — every write is temp+rename
// atomic, the lock only orders writers against removals.
func (s *traceStore) lockShard(key string) (unlock func()) {
	return lockExclusive(filepath.Join(s.dir, shardOf(key), lockFile))
}

// flush writes the index atomically, under the store-root flock so two
// processes sharing the directory do not interleave their rewrites
// (last-writer-wins on content is fine — the index is advisory and
// healLocked re-derives anything a lost update dropped).
func (s *traceStore) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loadLocked()
	doc := indexDoc{Version: 1, Entries: s.idx}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return
	}
	unlock := lockExclusive(filepath.Join(s.dir, lockFile))
	defer unlock()
	writeAtomic(s.dir, filepath.Join(s.dir, indexFile), append(data, '\n'))
}

// storedTrace describes one shard file for GC.
type storedTrace struct {
	key  string
	path string
	size int64
	used int64
}

// list enumerates every sharded trace with its LRU ordering key.
func (s *traceStore) list() ([]storedTrace, error) {
	files, err := filepath.Glob(filepath.Join(s.dir, "??", "*.contactsb"))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.loadLocked()
	idx := make(map[string]indexEntry, len(s.idx))
	for k, e := range s.idx {
		idx[k] = e
	}
	s.mu.Unlock()

	var out []storedTrace
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil || fi.IsDir() {
			continue
		}
		key := trimExt(filepath.Base(f))
		st := storedTrace{key: key, path: f, size: fi.Size(), used: fi.ModTime().Unix()}
		if e, ok := idx[key]; ok && e.Used > 0 {
			st.used = e.Used
		}
		out = append(out, st)
	}
	return out, nil
}

func trimExt(name string) string {
	if ext := filepath.Ext(name); ext != "" {
		return name[:len(name)-len(ext)]
	}
	return name
}

// gc evicts least-recently-used traces until the store's total size fits
// maxBytes. Keys in keep (the cache's hot in-memory entries) are never
// evicted. On unix an mmap'd view of an evicted file stays valid — the
// kernel keeps the pages until the last mapping goes away — so GC cannot
// tear a trace out from under a running sweep.
func (s *traceStore) gc(maxBytes int64, keep map[string]bool) (removed int, freed int64, err error) {
	traces, err := s.list()
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for _, t := range traces {
		total += t.size
	}
	if total <= maxBytes {
		return 0, 0, nil
	}
	sort.Slice(traces, func(i, j int) bool {
		if traces[i].used != traces[j].used {
			return traces[i].used < traces[j].used
		}
		return traces[i].key < traces[j].key // deterministic tie-break
	})
	for _, t := range traces {
		if total <= maxBytes {
			break
		}
		if keep[t.key] {
			continue
		}
		// Shard-level flock: a writer installing this very trace in another
		// process finishes its rename before the eviction lands (or the
		// eviction goes first and the writer re-installs). The flock is
		// taken without holding s.mu — put holds its shard flock while
		// touching the index under s.mu, so the reverse order here would
		// deadlock the process.
		unlock := s.lockShard(t.key)
		rmErr := os.Remove(t.path)
		unlock()
		if rmErr != nil {
			err = rmErr
			continue
		}
		s.mu.Lock()
		s.loadLocked()
		delete(s.idx, t.key)
		s.mu.Unlock()
		total -= t.size
		freed += t.size
		removed++
	}
	s.flush()
	return removed, freed, err
}

// migrate upgrades every legacy flat-dir file into the sharded layout:
// flat .contactsb files are renamed into their shard; flat .contacts text
// traces are decoded (tolerating pre-trailer files via warn), re-encoded
// binary into their shard, and removed. Returns how many traces moved.
func (s *traceStore) migrate(warn func(msg string)) (moved int, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch filepath.Ext(name) {
		case ".contactsb":
			key := trimExt(name)
			if _, statErr := os.Stat(s.shardPath(key)); statErr == nil {
				// A sharded copy already exists; the flat file is a stale
				// duplicate that locate will never probe again.
				os.Remove(filepath.Join(s.dir, name))
				continue
			}
			if s.locate(key) == s.shardPath(key) {
				moved++
			} else {
				err = fmt.Errorf("experiments: could not move %s into its shard", name)
			}
		case ".contacts":
			key := trimExt(name)
			if _, statErr := os.Stat(s.shardPath(key)); statErr == nil {
				// A binary sibling already migrated; the text copy is
				// redundant history.
				s.retireFlatText(key)
				continue
			}
			data, readErr := os.ReadFile(filepath.Join(s.dir, name))
			if readErr != nil {
				err = readErr
				continue
			}
			rec, decErr := wireless.DecodeRecordingLegacy(data, func(msg string) {
				if warn != nil {
					warn(fmt.Sprintf("contact cache: %s: %s", name, msg))
				}
			})
			if decErr != nil {
				if warn != nil {
					warn(fmt.Sprintf("contact cache: not migrating %s: %v", name, decErr))
				}
				continue
			}
			if _, ok := s.put(key, wireless.EncodeBinary(rec)); ok {
				moved++
			} else {
				err = fmt.Errorf("experiments: could not upgrade %s into its shard", name)
			}
		}
	}
	return moved, err
}

// writeAtomic writes data to path via a temp file and rename, creating dir
// first. It reports success; failures are the caller's policy to absorb.
func writeAtomic(dir, path string, data []byte) bool {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false
	}
	tmp, err := os.CreateTemp(dir, ".contacts-*")
	if err != nil {
		return false
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return false
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	return true
}
