package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/wireless"
)

// seedTrace records the canonical trace for cfg's contact process without
// going through a cache, for building disk fixtures.
func seedTrace(t *testing.T, cfg sim.Config) (key string, rec *wireless.Recording) {
	t.Helper()
	key = scenario.ContactFingerprint(cfg)
	rec, err := sim.RecordContacts(contactCanonical(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return key, rec
}

// TestCacheMigratesLegacyFlatDir is the flat-dir → sharded migration gate:
// a cache directory laid out the way PRs 1-2 wrote it — flat .contactsb
// binaries and legacy .contacts text files — must serve a sweep without a
// single re-recording pass, and come out the other side in the sharded
// layout with the flat files retired.
func TestCacheMigratesLegacyFlatDir(t *testing.T) {
	dir := t.TempDir()
	exp := cacheExperiment()
	opt := Options{Seeds: []uint64{1, 2}, BaseConfig: cacheConfig}

	// Build the legacy flat directory: seed 1 as flat binary, seed 2 as
	// legacy text.
	for seed, asText := range map[uint64]bool{1: false, 2: true} {
		cfg := cacheConfig()
		cfg.Seed = seed
		key, rec := seedTrace(t, cfg)
		if asText {
			if err := os.WriteFile(filepath.Join(dir, key+".contacts"), []byte(rec.Format()), 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := os.WriteFile(filepath.Join(dir, key+".contactsb"), wireless.EncodeBinary(rec), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	plain := mustRun(t, exp, opt)

	cache := &ContactCache{Dir: dir}
	opt.ContactCache = cache
	migrated, err := RunE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Series, migrated.DefaultTable().Series) {
		t.Fatal("sweep over the migrated legacy cache diverged from the uncached table")
	}
	if cache.Recorded() != 0 {
		t.Fatalf("legacy flat-dir traces did not serve the sweep: %d re-recordings", cache.Recorded())
	}

	// The directory must now be sharded, with no flat trace files left.
	sharded, err := filepath.Glob(filepath.Join(dir, "??", "*.contactsb"))
	if err != nil || len(sharded) != 2 {
		t.Fatalf("sharded traces = %v (err %v), want 2", sharded, err)
	}
	for _, pattern := range []string{"*.contactsb", "*.contacts"} {
		if flat, _ := filepath.Glob(filepath.Join(dir, pattern)); len(flat) != 0 {
			t.Fatalf("flat files survived migration: %v", flat)
		}
	}

	// And a third cache over the migrated directory serves purely from the
	// shards.
	after := &ContactCache{Dir: dir}
	for _, seed := range []uint64{1, 2} {
		cfg := cacheConfig()
		cfg.Seed = seed
		if _, err := after.Recording(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if after.Recorded() != 0 {
		t.Fatalf("migrated shards did not serve a later cache: %d re-recordings", after.Recorded())
	}
}

// TestCacheMigrateDirSweep: the one-shot MigrateDir upgrade moves every
// legacy file at once, without waiting for per-key first touches.
func TestCacheMigrateDirSweep(t *testing.T) {
	dir := t.TempDir()
	var keys []string
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := cacheConfig()
		cfg.Seed = seed
		key, rec := seedTrace(t, cfg)
		keys = append(keys, key)
		name := key + ".contactsb"
		data := wireless.EncodeBinary(rec)
		if seed == 3 {
			name = key + ".contacts"
			data = []byte(rec.Format())
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cache := &ContactCache{Dir: dir}
	moved, err := cache.MigrateDir()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 {
		t.Fatalf("MigrateDir moved %d traces, want 3", moved)
	}
	for _, key := range keys {
		if _, err := os.Stat(cache.ShardPath(key)); err != nil {
			t.Fatalf("trace %s not in its shard after MigrateDir: %v", key, err)
		}
	}
	if flat, _ := filepath.Glob(filepath.Join(dir, "*.contacts*")); len(flat) != 0 {
		t.Fatalf("flat files survived MigrateDir: %v", flat)
	}

	// A stale flat duplicate of an already-sharded trace is removed, not
	// re-counted as a migration.
	stale := filepath.Join(dir, keys[0]+".contactsb")
	if err := os.WriteFile(stale, []byte("stale duplicate"), 0o644); err != nil {
		t.Fatal(err)
	}
	moved, err = cache.MigrateDir()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("re-running MigrateDir over a stale duplicate reported %d moves", moved)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale flat duplicate survived MigrateDir (err %v)", err)
	}
}

// TestCacheGCEvictsLRU: the size-bounded GC removes least-recently-used
// traces first (index order, falling back to file mtime) and stops as soon
// as the store fits the budget.
func TestCacheGCEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	warm := &ContactCache{Dir: dir}
	var keys []string
	var sizes []int64
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := cacheConfig()
		cfg.Seed = seed
		if _, err := warm.Recording(cfg); err != nil {
			t.Fatal(err)
		}
		key := scenario.ContactFingerprint(cfg)
		keys = append(keys, key)
		fi, err := os.Stat(warm.ShardPath(key))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}

	// Make mtimes the LRU signal: seed 1 oldest, seed 3 newest. The index
	// written during recording has second-granularity same-time entries, so
	// remove it and let the mtime fallback order the eviction.
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i, key := range keys {
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(warm.ShardPath(key), when, when); err != nil {
			t.Fatal(err)
		}
	}

	// Budget for exactly the two newest traces.
	gc := &ContactCache{Dir: dir, MaxBytes: sizes[1] + sizes[2]}
	removed, freed, err := gc.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != sizes[0] {
		t.Fatalf("GC removed %d traces (%d bytes), want 1 (%d bytes)", removed, freed, sizes[0])
	}
	if _, err := os.Stat(gc.ShardPath(keys[0])); !os.IsNotExist(err) {
		t.Fatalf("least-recently-used trace %s survived GC (err %v)", keys[0], err)
	}
	for _, key := range keys[1:] {
		if _, err := os.Stat(gc.ShardPath(key)); err != nil {
			t.Fatalf("recently-used trace %s evicted: %v", key, err)
		}
	}

	// Hot in-memory entries are never evicted, even when oldest: load
	// keys[1], starve the budget, and only keys[2] may go.
	hot := &ContactCache{Dir: dir, MaxBytes: 1}
	cfg := cacheConfig()
	cfg.Seed = 2
	if _, err := hot.Recording(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := hot.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(hot.ShardPath(keys[1])); err != nil {
		t.Fatalf("hot trace %s evicted by GC: %v", keys[1], err)
	}
	if _, err := os.Stat(hot.ShardPath(keys[2])); !os.IsNotExist(err) {
		t.Fatalf("cold trace %s survived a 1-byte budget (err %v)", keys[2], err)
	}
}

// TestCacheGCHonorsIndexOrder: when the index disagrees with mtimes, the
// index wins — last-use recorded there is the LRU signal.
func TestCacheGCHonorsIndexOrder(t *testing.T) {
	dir := t.TempDir()
	warm := &ContactCache{Dir: dir}
	var keys []string
	var total int64
	var maxSize int64
	for seed := uint64(1); seed <= 2; seed++ {
		cfg := cacheConfig()
		cfg.Seed = seed
		if _, err := warm.Recording(cfg); err != nil {
			t.Fatal(err)
		}
		key := scenario.ContactFingerprint(cfg)
		keys = append(keys, key)
		fi, err := os.Stat(warm.ShardPath(key))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
		if fi.Size() > maxSize {
			maxSize = fi.Size()
		}
	}
	// Index says keys[1] is ancient and keys[0] fresh; mtimes say nothing
	// (both just written).
	doc := indexDoc{Version: 1, Entries: map[string]indexEntry{
		keys[0]: {Size: 1, Used: time.Now().Unix()},
		keys[1]: {Size: 1, Used: 1},
	}}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile), data, 0o644); err != nil {
		t.Fatal(err)
	}

	gc := &ContactCache{Dir: dir, MaxBytes: maxSize}
	if _, _, err := gc.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(gc.ShardPath(keys[1])); !os.IsNotExist(err) {
		t.Fatalf("index-stale trace %s survived GC (err %v)", keys[1], err)
	}
	if _, err := os.Stat(gc.ShardPath(keys[0])); err != nil {
		t.Fatalf("index-fresh trace %s evicted: %v", keys[0], err)
	}
}

// TestCacheWarnsPerCauseAndKey: two distinct damaged traces each surface
// through the Warn hook — deduplication is per (cause, fingerprint), so a
// second corrupt key is not swallowed by the first one's report — while
// repeated probes of one key stay deduplicated.
func TestCacheWarnsPerCauseAndKey(t *testing.T) {
	dir := t.TempDir()
	var warnings []string
	cache := &ContactCache{Dir: dir, Warn: func(msg string) { warnings = append(warnings, msg) }}

	cfgs := make([]sim.Config, 2)
	for i := range cfgs {
		cfgs[i] = cacheConfig()
		cfgs[i].Seed = uint64(i + 1)
		key := scenario.ContactFingerprint(cfgs[i])
		path := cache.ShardPath(key)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte("garbage, not a trace\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, cfg := range cfgs {
		if _, err := cache.Recording(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if len(warnings) != 2 {
		t.Fatalf("warnings = %v, want one per damaged fingerprint", warnings)
	}
	for _, w := range warnings {
		if !strings.Contains(w, "rejecting") {
			t.Fatalf("warning %q does not name the corruption", w)
		}
	}
	// Same keys again: memoized entries, no fresh warnings.
	for _, cfg := range cfgs {
		if _, err := cache.Recording(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if len(warnings) != 2 {
		t.Fatalf("repeated lookups re-warned: %v", warnings)
	}
}

// TestCacheMmapSourceServesViews: with Dir+Mmap, Source returns a shared
// mmap-backed RecordingView; the sweep over views is bit-identical to the
// uncached table; and the view is the same instance for every cell of a
// key.
func TestCacheMmapSourceServesViews(t *testing.T) {
	dir := t.TempDir()
	exp := cacheExperiment()
	opt := Options{Seeds: []uint64{1, 2}, BaseConfig: cacheConfig}

	plain := mustRun(t, exp, opt)

	cache := &ContactCache{Dir: dir, Mmap: true}
	defer cache.Close()
	opt.ContactCache = cache
	mapped, err := RunE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Series, mapped.DefaultTable().Series) {
		t.Fatal("mmap-served sweep diverged from the uncached table")
	}

	cfg := cacheConfig()
	src, err := cache.Source(cfg)
	if err != nil {
		t.Fatal(err)
	}
	view, ok := src.(*wireless.RecordingView)
	if !ok {
		t.Fatalf("Source returned %T, want *wireless.RecordingView", src)
	}
	again, err := cache.Source(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != src {
		t.Fatal("Source returned a second view for one fingerprint")
	}
	// The view decodes to exactly the recording the slurp path holds.
	rec, err := cache.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(view.Materialize(), rec) {
		t.Fatal("mmap view holds a different trace than the decoded recording")
	}
}

// TestCacheMmapFallsBack: Source degrades gracefully — no Dir means the
// in-memory recording; a scenario-mismatched persisted trace is rejected
// (closing the view on the failure path), warned about once, re-recorded,
// and then served as a fresh view.
func TestCacheMmapFallsBack(t *testing.T) {
	memory := &ContactCache{Mmap: true}
	cfg := cacheConfig()
	src, err := memory.Source(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*wireless.Recording); !ok {
		t.Fatalf("dirless Source returned %T, want *wireless.Recording", src)
	}

	// A persisted trace recorded at a different scan interval: guaranteed
	// ReplaySourceCompatible failure, independent of mobility randomness.
	dir := t.TempDir()
	other := cfg
	other.ScanInterval = 2
	otherRec, err := sim.RecordContacts(contactCanonical(other))
	if err != nil {
		t.Fatal(err)
	}
	key := scenario.ContactFingerprint(cfg)
	var warnings []string
	cache := &ContactCache{Dir: dir, Mmap: true, Warn: func(msg string) { warnings = append(warnings, msg) }}
	defer cache.Close()
	path := cache.ShardPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, wireless.EncodeBinary(otherRec), 0o644); err != nil {
		t.Fatal(err)
	}

	src, err = cache.Source(cfg)
	if err != nil {
		t.Fatal(err)
	}
	view, ok := src.(*wireless.RecordingView)
	if !ok {
		t.Fatalf("Source after mismatch returned %T, want a fresh view", src)
	}
	if got := view.Meta().ScanInterval; got != cfg.ScanInterval {
		t.Fatalf("served view has scan interval %v, want the re-recorded %v", got, cfg.ScanInterval)
	}
	if cache.Recorded() != 1 {
		t.Fatalf("mismatched trace triggered %d recordings, want 1", cache.Recorded())
	}
	found := false
	for _, w := range warnings {
		found = found || strings.Contains(w, "does not match the scenario")
	}
	if !found {
		t.Fatalf("mismatch not surfaced via Warn: %v", warnings)
	}
}

// TestCacheGCInjectedClock: eviction order follows the store's injected
// clock, with no wall-clock or file-mtime involvement. The traces are
// touched in reverse creation order under a hand-advanced clock, so if
// either mtimes (all written within the same second) or the recording
// cache's wall-clock stamps leaked into the LRU signal, the wrong trace
// would be evicted.
func TestCacheGCInjectedClock(t *testing.T) {
	dir := t.TempDir()
	warm := &ContactCache{Dir: dir}
	var keys []string
	var sizes []int64
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := cacheConfig()
		cfg.Seed = seed
		if _, err := warm.Recording(cfg); err != nil {
			t.Fatal(err)
		}
		key := scenario.ContactFingerprint(cfg)
		keys = append(keys, key)
		fi, err := os.Stat(warm.ShardPath(key))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}

	st := newTraceStore(dir)
	var clock int64 = 1_000_000
	st.now = func() int64 { return clock }

	// Most recent use order: keys[2] (oldest), keys[1], keys[0] (newest) —
	// the reverse of creation order and far in the "past" relative to the
	// wall-clock stamps the recordings wrote.
	for i := len(keys) - 1; i >= 0; i-- {
		clock += 1000
		st.touch(keys[i], sizes[i])
	}

	removed, freed, err := st.gc(sizes[0]+sizes[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != sizes[2] {
		t.Fatalf("GC removed %d traces (%d bytes), want 1 (%d bytes)", removed, freed, sizes[2])
	}
	if _, err := os.Stat(st.shardPath(keys[2])); !os.IsNotExist(err) {
		t.Fatalf("least-recently-touched trace %s survived GC (err %v)", keys[2], err)
	}
	for _, key := range keys[:2] {
		if _, err := os.Stat(st.shardPath(key)); err != nil {
			t.Fatalf("recently-touched trace %s evicted: %v", key, err)
		}
	}
}
