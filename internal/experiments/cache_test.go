package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"vdtn/internal/contactplan"
	"vdtn/internal/roadmap"
	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/units"
	"vdtn/internal/wireless"
)

// cacheConfig is the small scenario the cache tests sweep.
func cacheConfig() sim.Config {
	c := sim.DefaultConfig()
	c.Duration = units.Minutes(30)
	c.Map = roadmap.Grid(4, 4, 250)
	c.Vehicles = 8
	c.Relays = 2
	c.VehicleBuffer = units.MB(5)
	c.RelayBuffer = units.MB(10)
	c.MsgIntervalLo = 8
	c.MsgIntervalHi = 16
	c.TTL = units.Minutes(15)
	return c
}

// cacheExperiment is a multi-series, multi-x TTL sweep: every cell of one
// seed shares the mobility process, so the cache should record once per
// seed.
func cacheExperiment() Experiment {
	return Experiment{
		ID:     "cache-test",
		Title:  "cache test sweep",
		Axis:   "ttl_min",
		Xs:     []float64{10, 15, 20},
		Metric: MetricDeliveryProb,
		Scenarios: []Scenario{
			{Name: "FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
			{Name: "Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
			{Name: "SprayAndWait", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
		},
	}
}

// TestCachedRunMatchesUncached is the harness-level equivalence guarantee:
// the cached table is identical — every cell, bit for bit — to the
// uncached one.
func TestCachedRunMatchesUncached(t *testing.T) {
	exp := cacheExperiment()
	opt := Options{Seeds: []uint64{1, 2}, BaseConfig: cacheConfig}

	plain := mustRun(t, exp, opt)

	cache := &ContactCache{}
	opt.ContactCache = cache
	cached := mustRun(t, exp, opt)

	if !reflect.DeepEqual(plain.Series, cached.Series) {
		t.Fatalf("cached table diverged from uncached:\nplain:  %+v\ncached: %+v", plain.Series, cached.Series)
	}
	// 3 series × 3 x × 2 seeds = 18 cells, but only one mobility process
	// per seed.
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d traces, want 2 (one per seed)", cache.Len())
	}
	if cache.Recorded() != 2 {
		t.Fatalf("cache ran %d recording passes, want 2", cache.Recorded())
	}
}

// TestCacheNeverCrossesSeeds pins the keying contract at the cache level:
// distinct seeds yield distinct entries with genuinely different traces.
func TestCacheNeverCrossesSeeds(t *testing.T) {
	cache := &ContactCache{}
	recs := make(map[uint64]any)
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := cacheConfig()
		cfg.Seed = seed
		rec, err := cache.Recording(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for other, prev := range recs {
			if reflect.DeepEqual(prev, rec.Transitions) {
				t.Fatalf("seed %d received seed %d's contact trace", seed, other)
			}
		}
		recs[seed] = rec.Transitions

		again, err := cache.Recording(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again != rec {
			t.Fatalf("seed %d: repeated lookup did not hit the cache", seed)
		}
	}
	if cache.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", cache.Len())
	}
}

// TestCacheConcurrentAccess hammers one shared cache from many goroutines
// mixing hits and misses; run under -race this is the worker-pool safety
// test, and single-flight must still hold (one recording per key).
func TestCacheConcurrentAccess(t *testing.T) {
	cache := &ContactCache{}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				cfg := cacheConfig()
				cfg.Seed = uint64(1 + (w+i)%3)
				cfg.TTL = units.Minutes(float64(10 + i)) // must not affect the key
				if _, err := cache.Recording(cfg); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", cache.Len())
	}
	if cache.Recorded() != 3 {
		t.Fatalf("%d recording passes for 3 keys: single-flight broken", cache.Recorded())
	}
}

// TestCacheRaceUnderWorkerPool runs the real experiment runner with a
// shared cache at full parallelism; under -race it exercises the
// cache/worker-pool interaction end to end.
func TestCacheRaceUnderWorkerPool(t *testing.T) {
	cache := &ContactCache{}
	exp := cacheExperiment()
	tbl := mustRun(t, exp, Options{Seeds: []uint64{1, 2, 3}, Workers: 8, BaseConfig: cacheConfig, ContactCache: cache})
	if len(tbl.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(tbl.Series))
	}
	if cache.Len() != 3 {
		t.Fatalf("cache holds %d traces, want 3 (one per seed)", cache.Len())
	}
}

// TestCacheDiskPersistence: a second cache pointed at the same directory
// serves the trace from disk without re-recording, and the loaded trace
// replays identically.
func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheConfig()

	first := &ContactCache{Dir: dir}
	rec, err := first.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Recorded() != 1 {
		t.Fatalf("first cache ran %d recordings, want 1", first.Recorded())
	}
	// Traces persist into the 2-level sharded layout, not the flat dir.
	files, err := filepath.Glob(filepath.Join(dir, "??", "*.contactsb"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted sharded files = %v (err %v), want exactly one", files, err)
	}
	if flat, _ := filepath.Glob(filepath.Join(dir, "*.contactsb")); len(flat) != 0 {
		t.Fatalf("trace persisted into the flat directory: %v", flat)
	}

	second := &ContactCache{Dir: dir}
	loaded, err := second.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Recorded() != 0 {
		t.Fatalf("second cache re-recorded despite the disk copy")
	}
	if !reflect.DeepEqual(rec, loaded) {
		t.Fatal("disk round trip changed the recording")
	}

	// A corrupt file falls back to re-recording instead of failing.
	if err := os.WriteFile(files[0], []byte("not a recording\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	third := &ContactCache{Dir: dir}
	refreshed, err := third.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.Recorded() != 1 {
		t.Fatal("corrupt disk entry was not re-recorded")
	}
	if !reflect.DeepEqual(rec.Transitions, refreshed.Transitions) {
		t.Fatal("re-recorded trace differs from the original")
	}
}

// TestCachePersistErrorsAreBestEffort: an unwritable cache directory must
// not fail a lookup that already holds a valid recording — persistence is
// an optimization only.
func TestCachePersistErrorsAreBestEffort(t *testing.T) {
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	cache := &ContactCache{Dir: filepath.Join(dir, "sub")}
	rec, err := cache.Recording(cacheConfig())
	if err != nil {
		t.Fatalf("unwritable cache dir failed the lookup: %v", err)
	}
	if len(rec.Transitions) == 0 {
		t.Fatal("no recording despite best-effort persistence")
	}
}

// TestCacheCrossFormatHit: a legacy text-era trace file is served to the
// binary-era cache without re-recording, upgraded to a binary copy on the
// way, and a trailer-less pre-v2 file is called out through the warning
// hook.
func TestCacheCrossFormatHit(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheConfig()
	key := scenario.ContactFingerprint(cfg)

	rec, err := (&ContactCache{}).Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A v2 text file (with trailer) on disk at its legacy flat location,
	// no binary sibling; the upgrade must land in the sharded layout.
	textPath := filepath.Join(dir, key+".contacts")
	binPath := filepath.Join(dir, key[:2], key+".contactsb")
	if err := os.WriteFile(textPath, []byte(rec.Format()), 0o644); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	cache := &ContactCache{Dir: dir, Warn: func(msg string) { warnings = append(warnings, msg) }}
	loaded, err := cache.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Recorded() != 0 {
		t.Fatal("text-era trace did not serve a binary-era cache")
	}
	if !reflect.DeepEqual(rec, loaded) {
		t.Fatal("text trace loaded differently from the recorded one")
	}
	if len(warnings) != 0 {
		t.Fatalf("trailer-bearing text file warned: %v", warnings)
	}
	// The hit must have upgraded the entry to the binary format.
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatalf("no binary upgrade written: %v", err)
	}
	upgraded, err := wireless.DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, upgraded) {
		t.Fatal("binary upgrade changed the recording")
	}

	// A pre-v2 legacy file (no end trailer) still loads, but warns that
	// truncation cannot be detected.
	legacy := strings.Replace(rec.Format(), fmt.Sprintf("end %d\n", len(rec.Transitions)), "", 1)
	if err := os.WriteFile(textPath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(binPath); err != nil {
		t.Fatal(err)
	}
	cache = &ContactCache{Dir: dir, Warn: func(msg string) { warnings = append(warnings, msg) }}
	loaded, err = cache.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Recorded() != 0 || !reflect.DeepEqual(rec, loaded) {
		t.Fatal("legacy trailer-less trace not served from disk")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "end trailer") {
		t.Fatalf("legacy file warnings = %v, want one about the missing end trailer", warnings)
	}
}

// TestCacheRejectsTruncatedFiles: a persisted trace cut short — the torn
// write PR 1's text format could not detect — is rejected and re-recorded
// in both formats, never replayed as a shorter trace.
func TestCacheRejectsTruncatedFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheConfig()
	key := scenario.ContactFingerprint(cfg)

	first := &ContactCache{Dir: dir}
	rec, err := first.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	binPath := first.ShardPath(key)

	for name, data := range map[string][]byte{
		"binary": wireless.EncodeBinary(rec),
		"text":   []byte(rec.Format()),
	} {
		t.Run(name, func(t *testing.T) {
			// Cut mid-line: a text trace cut exactly on a line boundary is
			// indistinguishable from a legacy trailer-less file, which the
			// disk loader tolerates by design (with a warning) — the reason
			// the persisted format is binary, where every cut is detected.
			cut := len(data) / 2
			for cut > 1 && data[cut-1] == '\n' {
				cut--
			}
			if err := os.WriteFile(binPath, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			var warnings []string
			cache := &ContactCache{Dir: dir, Warn: func(msg string) { warnings = append(warnings, msg) }}
			refreshed, err := cache.Recording(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if cache.Recorded() != 1 {
				t.Fatal("truncated trace was not re-recorded")
			}
			if !reflect.DeepEqual(rec.Transitions, refreshed.Transitions) {
				t.Fatal("re-recorded trace differs from the original")
			}
			found := false
			for _, w := range warnings {
				found = found || strings.Contains(w, "re-recording")
			}
			if !found {
				t.Fatalf("truncation not surfaced via Warn: %v", warnings)
			}
		})
	}
}

// TestCacheSurfacesIOErrors: a read failure that is not os.IsNotExist is
// reported through the warning hook (once) instead of silently
// re-recording every run.
func TestCacheSurfacesIOErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheConfig()
	key := scenario.ContactFingerprint(cfg)
	// A directory where the sharded trace file should be: ReadFile fails
	// with a real I/O error, not absence.
	if err := os.MkdirAll(filepath.Join(dir, key[:2], key+".contactsb"), 0o755); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	cache := &ContactCache{Dir: dir, Warn: func(msg string) { warnings = append(warnings, msg) }}
	if _, err := cache.Recording(cfg); err != nil {
		t.Fatalf("I/O error on the persisted copy failed the lookup: %v", err)
	}
	if cache.Recorded() != 1 {
		t.Fatal("unreadable persisted copy was not re-recorded")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "reading") {
		t.Fatalf("warnings = %v, want exactly one read-error warning", warnings)
	}
}

// TestPrewarmRecordsInParallelOnce: Prewarm dedupes by fingerprint, runs
// one recording pass per distinct (scenario, seed), and leaves the sweep
// with memory hits only.
func TestPrewarmRecordsInParallelOnce(t *testing.T) {
	cache := &ContactCache{}
	var cfgs []sim.Config
	for seed := uint64(1); seed <= 3; seed++ {
		for ttl := 10; ttl <= 20; ttl += 5 { // TTL must not affect the key
			cfg := cacheConfig()
			cfg.Seed = seed
			cfg.TTL = units.Minutes(float64(ttl))
			cfgs = append(cfgs, cfg)
		}
	}
	if err := cache.Prewarm(cfgs, 4); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 3 || cache.Recorded() != 3 {
		t.Fatalf("prewarm held %d traces over %d passes, want 3 over 3", cache.Len(), cache.Recorded())
	}
	// The sweep itself now only hits.
	res, err := RunE(cacheExperiment(), Options{Seeds: []uint64{1, 2, 3}, BaseConfig: cacheConfig, ContactCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if tbl := res.DefaultTable(); len(tbl.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(tbl.Series))
	}
	if cache.Recorded() != 3 {
		t.Fatalf("sweep after prewarm ran %d extra recording passes", cache.Recorded()-3)
	}
}

// TestPrewarmRace hammers Prewarm from several goroutines racing each
// other and direct Recording lookups; under -race this is the pre-recording
// pass's safety test, and single-flight must still hold.
func TestPrewarmRace(t *testing.T) {
	cache := &ContactCache{}
	var cfgs []sim.Config
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := cacheConfig()
		cfg.Seed = seed
		cfgs = append(cfgs, cfg)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cache.Prewarm(cfgs, 4); err != nil {
				errs <- err
			}
		}()
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := cacheConfig()
			cfg.Seed = uint64(1 + w)
			if _, err := cache.Recording(cfg); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.Len() != 4 || cache.Recorded() != 4 {
		t.Fatalf("%d traces over %d passes, want 4 over 4 (single-flight broken)", cache.Len(), cache.Recorded())
	}
}

// TestPrewarmSkipsUncacheableConfigs: plan-mode and replay cells cannot be
// prewarmed and must be skipped, not failed.
func TestPrewarmSkipsUncacheableConfigs(t *testing.T) {
	plan, err := contactplan.New([]contactplan.Contact{{A: 0, B: 1, Start: 0, End: 10}})
	if err != nil {
		t.Fatal(err)
	}
	planCfg := cacheConfig()
	planCfg.Plan = plan
	cache := &ContactCache{}
	if err := cache.Prewarm([]sim.Config{planCfg}, 2); err != nil {
		t.Fatalf("plan-mode config failed Prewarm: %v", err)
	}
	if cache.Len() != 0 {
		t.Fatal("plan-mode config was prewarmed")
	}
}

// TestRunEReportsCellCoordinates: one bad cell must not kill the process;
// RunE names its (series, x, seed) coordinates.
func TestRunEReportsCellCoordinates(t *testing.T) {
	exp := cacheExperiment()
	// x=-15 produces an invalid config (negative TTL); the other cells
	// stay healthy.
	exp.Xs = []float64{10, -15, 20}
	for name, cache := range map[string]*ContactCache{"plain": nil, "cached": {}} {
		t.Run(name, func(t *testing.T) {
			_, err := RunE(exp, Options{Seeds: []uint64{1, 2}, BaseConfig: cacheConfig, ContactCache: cache})
			if err == nil {
				t.Fatal("invalid cell did not fail the run")
			}
			// Every invalid cell sits at x=-15; which series/seed loses the
			// race to fail first is scheduling-dependent, but the error
			// must carry all three coordinates.
			for _, want := range []string{`series "`, "x=-15", "seed "} {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q does not name %q", err, want)
				}
			}
		})
	}
}

// TestRunELazyMatchesPrewarmed: the pre-recording pass is a scheduling
// change only — the lazy table is bit-identical.
func TestRunELazyMatchesPrewarmed(t *testing.T) {
	exp := cacheExperiment()
	base := Options{Seeds: []uint64{1, 2}, BaseConfig: cacheConfig}

	lazy := base
	lazy.ContactCache = &ContactCache{}
	lazy.LazyRecord = true
	lazyRes, err := RunE(exp, lazy)
	if err != nil {
		t.Fatal(err)
	}

	warm := base
	warm.ContactCache = &ContactCache{}
	warmRes, err := RunE(exp, warm)
	if err != nil {
		t.Fatal(err)
	}
	// Full-Result equality, cell for cell — stronger than comparing one
	// metric's table.
	if !reflect.DeepEqual(lazyRes.Cells, warmRes.Cells) {
		t.Fatal("prewarmed results diverged from the lazy ones")
	}
	if lazy.ContactCache.Recorded() != warm.ContactCache.Recorded() {
		t.Fatalf("recording passes differ: lazy %d, prewarmed %d",
			lazy.ContactCache.Recorded(), warm.ContactCache.Recorded())
	}
}

// TestCellConfigs: the materialized cell list covers every (series, x,
// seed) combination in aggregation order.
func TestCellConfigs(t *testing.T) {
	exp := cacheExperiment()
	cfgs, err := CellConfigs(exp, Options{Seeds: []uint64{1, 2}, BaseConfig: cacheConfig})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(exp.Scenarios) * len(exp.Xs) * 2; len(cfgs) != want {
		t.Fatalf("CellConfigs returned %d configs, want %d", len(cfgs), want)
	}
	if cfgs[0].Seed != 1 || cfgs[1].Seed != 2 {
		t.Fatal("seed ordering wrong")
	}
	if cfgs[0].TTL != units.Minutes(10) {
		t.Fatalf("x value not applied: TTL = %v", cfgs[0].TTL)
	}
}

// TestCacheRejectsPlanScenarios: plan-mode cells cannot be cached.
func TestCacheRejectsPlanScenarios(t *testing.T) {
	plan, err := contactplan.New([]contactplan.Contact{{A: 0, B: 1, Start: 0, End: 10}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cacheConfig()
	cfg.Plan = plan
	if _, err := (&ContactCache{}).Recording(cfg); err == nil {
		t.Fatal("cache accepted a contact-plan scenario")
	}
}
