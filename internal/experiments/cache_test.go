package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"vdtn/internal/contactplan"
	"vdtn/internal/roadmap"
	"vdtn/internal/sim"
	"vdtn/internal/units"
)

// cacheConfig is the small scenario the cache tests sweep.
func cacheConfig() sim.Config {
	c := sim.DefaultConfig()
	c.Duration = units.Minutes(30)
	c.Map = roadmap.Grid(4, 4, 250)
	c.Vehicles = 8
	c.Relays = 2
	c.VehicleBuffer = units.MB(5)
	c.RelayBuffer = units.MB(10)
	c.MsgIntervalLo = 8
	c.MsgIntervalHi = 16
	c.TTL = units.Minutes(15)
	return c
}

// cacheExperiment is a multi-series, multi-x TTL sweep: every cell of one
// seed shares the mobility process, so the cache should record once per
// seed.
func cacheExperiment() Experiment {
	return Experiment{
		ID:     "cache-test",
		Title:  "cache test sweep",
		XLabel: "ttl(min)",
		Xs:     []float64{10, 15, 20},
		Metric: MetricDeliveryProb,
		Scenarios: []Scenario{
			{Name: "FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
			{Name: "Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
			{Name: "SprayAndWait", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime},
		},
		Apply: applyTTL,
	}
}

// TestCachedRunMatchesUncached is the harness-level equivalence guarantee:
// the cached table is identical — every cell, bit for bit — to the
// uncached one.
func TestCachedRunMatchesUncached(t *testing.T) {
	exp := cacheExperiment()
	opt := Options{Seeds: []uint64{1, 2}, BaseConfig: cacheConfig}

	plain := Run(exp, opt)

	cache := &ContactCache{}
	opt.ContactCache = cache
	cached := Run(exp, opt)

	if !reflect.DeepEqual(plain.Series, cached.Series) {
		t.Fatalf("cached table diverged from uncached:\nplain:  %+v\ncached: %+v", plain.Series, cached.Series)
	}
	// 3 series × 3 x × 2 seeds = 18 cells, but only one mobility process
	// per seed.
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d traces, want 2 (one per seed)", cache.Len())
	}
	if cache.Recorded() != 2 {
		t.Fatalf("cache ran %d recording passes, want 2", cache.Recorded())
	}
}

// TestCacheNeverCrossesSeeds pins the keying contract at the cache level:
// distinct seeds yield distinct entries with genuinely different traces.
func TestCacheNeverCrossesSeeds(t *testing.T) {
	cache := &ContactCache{}
	recs := make(map[uint64]any)
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := cacheConfig()
		cfg.Seed = seed
		rec, err := cache.Recording(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for other, prev := range recs {
			if reflect.DeepEqual(prev, rec.Transitions) {
				t.Fatalf("seed %d received seed %d's contact trace", seed, other)
			}
		}
		recs[seed] = rec.Transitions

		again, err := cache.Recording(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again != rec {
			t.Fatalf("seed %d: repeated lookup did not hit the cache", seed)
		}
	}
	if cache.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", cache.Len())
	}
}

// TestCacheConcurrentAccess hammers one shared cache from many goroutines
// mixing hits and misses; run under -race this is the worker-pool safety
// test, and single-flight must still hold (one recording per key).
func TestCacheConcurrentAccess(t *testing.T) {
	cache := &ContactCache{}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				cfg := cacheConfig()
				cfg.Seed = uint64(1 + (w+i)%3)
				cfg.TTL = units.Minutes(float64(10 + i)) // must not affect the key
				if _, err := cache.Recording(cfg); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", cache.Len())
	}
	if cache.Recorded() != 3 {
		t.Fatalf("%d recording passes for 3 keys: single-flight broken", cache.Recorded())
	}
}

// TestCacheRaceUnderWorkerPool runs the real experiment runner with a
// shared cache at full parallelism; under -race it exercises the
// cache/worker-pool interaction end to end.
func TestCacheRaceUnderWorkerPool(t *testing.T) {
	cache := &ContactCache{}
	exp := cacheExperiment()
	tbl := Run(exp, Options{Seeds: []uint64{1, 2, 3}, Workers: 8, BaseConfig: cacheConfig, ContactCache: cache})
	if len(tbl.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(tbl.Series))
	}
	if cache.Len() != 3 {
		t.Fatalf("cache holds %d traces, want 3 (one per seed)", cache.Len())
	}
}

// TestCacheDiskPersistence: a second cache pointed at the same directory
// serves the trace from disk without re-recording, and the loaded trace
// replays identically.
func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheConfig()

	first := &ContactCache{Dir: dir}
	rec, err := first.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Recorded() != 1 {
		t.Fatalf("first cache ran %d recordings, want 1", first.Recorded())
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.contacts"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted files = %v (err %v), want exactly one", files, err)
	}

	second := &ContactCache{Dir: dir}
	loaded, err := second.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Recorded() != 0 {
		t.Fatalf("second cache re-recorded despite the disk copy")
	}
	if !reflect.DeepEqual(rec, loaded) {
		t.Fatal("disk round trip changed the recording")
	}

	// A corrupt file falls back to re-recording instead of failing.
	if err := os.WriteFile(files[0], []byte("not a recording\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	third := &ContactCache{Dir: dir}
	refreshed, err := third.Recording(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.Recorded() != 1 {
		t.Fatal("corrupt disk entry was not re-recorded")
	}
	if !reflect.DeepEqual(rec.Transitions, refreshed.Transitions) {
		t.Fatal("re-recorded trace differs from the original")
	}
}

// TestCachePersistErrorsAreBestEffort: an unwritable cache directory must
// not fail a lookup that already holds a valid recording — persistence is
// an optimization only.
func TestCachePersistErrorsAreBestEffort(t *testing.T) {
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	cache := &ContactCache{Dir: filepath.Join(dir, "sub")}
	rec, err := cache.Recording(cacheConfig())
	if err != nil {
		t.Fatalf("unwritable cache dir failed the lookup: %v", err)
	}
	if len(rec.Transitions) == 0 {
		t.Fatal("no recording despite best-effort persistence")
	}
}

// TestCacheRejectsPlanScenarios: plan-mode cells cannot be cached.
func TestCacheRejectsPlanScenarios(t *testing.T) {
	plan, err := contactplan.New([]contactplan.Contact{{A: 0, B: 1, Start: 0, End: 10}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cacheConfig()
	cfg.Plan = plan
	if _, err := (&ContactCache{}).Recording(cfg); err == nil {
		t.Fatal("cache accepted a contact-plan scenario")
	}
}
