//go:build !unix

package experiments

// lockExclusive on platforms without a wired-up flock is a no-op, the
// same degradation contract as wireless's mmap fallback: writes stay
// atomic via temp-file + rename, so correctness holds without the lock —
// only the cross-process write/GC exclusion is lost.
func lockExclusive(path string) (unlock func()) {
	return func() {}
}
