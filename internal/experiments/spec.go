package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
)

// LoadSpec parses an on-disk sweep spec — a scenario JSON file carrying
// "sweep" and "series" blocks — into a runnable Experiment. The file's
// scalar scenario fields become the experiment's base template (zero
// fields inherit the paper defaults), so one file fully describes a
// sweep: cmd/experiments -spec runs it with no code changes.
//
// Decoding is strict: a key outside the schema ("ttl_mins" for
// "ttl_min") is an error, not a silently ignored field that would leave
// the sweep running on paper defaults — the same fail-fast stance as the
// axis and metric name checks.
func LoadSpec(data []byte) (Experiment, error) {
	var f scenario.File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Experiment{}, fmt.Errorf("experiments: spec: %w", err)
	}
	return FromSpec(f)
}

// FromSpec materializes an Experiment from a decoded spec file. The base
// scenario and the sweep structure (axis, values, metric, settings,
// series) are validated here, so a malformed spec fails at load, not
// mid-sweep.
func FromSpec(f scenario.File) (Experiment, error) {
	if f.Sweep == nil {
		return Experiment{}, fmt.Errorf("experiments: spec has no sweep block")
	}
	sw := *f.Sweep
	id := sw.ID
	if id == "" {
		id = f.Name
	}
	if id == "" {
		return Experiment{}, fmt.Errorf("experiments: spec needs an id (sweep.id or name)")
	}
	base, err := f.Config()
	if err != nil {
		return Experiment{}, fmt.Errorf("experiments: spec %s: base scenario: %w", id, err)
	}

	baseFile := f
	baseFile.Sweep, baseFile.Series = nil, nil
	exp := Experiment{
		ID:       id,
		Title:    sw.Title,
		Axis:     sw.Axis,
		Xs:       append([]float64(nil), sw.Values...),
		Metric:   Metric(sw.Metric),
		Seeds:    append([]uint64(nil), sw.Seeds...),
		Scale:    sw.Scale,
		Base:     func() sim.Config { return base },
		baseSpec: &baseFile,
	}
	if len(sw.Axes) > 0 {
		// Grid form: the axes list replaces axis/values entirely — a spec
		// carrying both is ambiguous about which sweeps first and is
		// rejected rather than guessed at.
		if sw.Axis != "" || len(sw.Values) > 0 {
			return Experiment{}, fmt.Errorf("experiments: spec %s: sweep.axes is exclusive with sweep.axis/values", id)
		}
		exp.Axis = sw.Axes[0].Axis
		exp.Xs = append([]float64(nil), sw.Axes[0].Values...)
		for _, g := range sw.Axes[1:] {
			exp.Grid = append(exp.Grid, GridAxis{Axis: g.Axis, Values: append([]float64(nil), g.Values...)})
		}
	}
	if sw.Scale < 0 {
		return Experiment{}, fmt.Errorf("experiments: spec %s: negative sweep scale %v", id, sw.Scale)
	}
	if exp.Title == "" {
		exp.Title = id
	}
	if exp.Metric == "" {
		exp.Metric = MetricDeliveryProb
	}
	if exp.Set, err = settingsFromMap(sw.Set); err != nil {
		return Experiment{}, fmt.Errorf("experiments: spec %s: sweep settings: %w", id, err)
	}

	if len(f.Series) == 0 {
		// No explicit series: one line using the base scenario's routing.
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("%s/%s", base.Protocol, base.Policy)
		}
		exp.Scenarios = []Scenario{{Name: name, Protocol: base.Protocol, Policy: base.Policy}}
	}
	seen := map[string]bool{}
	for i, ss := range f.Series {
		sc := Scenario{Name: ss.Name, Protocol: base.Protocol, Policy: base.Policy}
		if ss.Protocol != "" {
			p, ok := scenario.ProtocolByName(ss.Protocol)
			if !ok {
				return Experiment{}, fmt.Errorf("experiments: spec %s: series %d: unknown protocol %q", id, i, ss.Protocol)
			}
			sc.Protocol = p
		}
		if ss.Policy != "" {
			p, ok := scenario.PolicyByName(ss.Policy)
			if !ok {
				return Experiment{}, fmt.Errorf("experiments: spec %s: series %d: unknown policy %q", id, i, ss.Policy)
			}
			sc.Policy = p
		}
		if sc.Name == "" {
			sc.Name = fmt.Sprintf("%s/%s", sc.Protocol, sc.Policy)
		}
		if seen[sc.Name] {
			return Experiment{}, fmt.Errorf("experiments: spec %s: duplicate series name %q", id, sc.Name)
		}
		seen[sc.Name] = true
		if sc.Set, err = settingsFromMap(ss.Set); err != nil {
			return Experiment{}, fmt.Errorf("experiments: spec %s: series %q settings: %w", id, sc.Name, err)
		}
		exp.Scenarios = append(exp.Scenarios, sc)
	}
	if err := exp.validate(); err != nil {
		return Experiment{}, err
	}
	return exp, nil
}

// settingsFromMap converts a spec's settings map into the deterministic
// slice form, validating every axis name. JSON objects carry no order, so
// settings apply in sorted axis-name order — the only reproducible
// choice; axes writing disjoint config fields (the common case) are
// order-independent anyway.
func settingsFromMap(m map[string]float64) ([]Setting, error) {
	if len(m) == 0 {
		return nil, nil
	}
	names := make([]string, 0, len(m))
	for name := range m {
		if _, ok := scenario.AxisByName(name); !ok {
			return nil, fmt.Errorf("unknown axis %q (known: %v)", name, axisNames())
		}
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Setting, len(names))
	for i, name := range names {
		out[i] = Setting{Axis: name, Value: m[name]}
	}
	return out, nil
}

// settingsMap is the inverse of settingsFromMap, for spec export.
func settingsMap(set []Setting) map[string]float64 {
	if len(set) == 0 {
		return nil
	}
	m := make(map[string]float64, len(set))
	for _, s := range set {
		m[s.Axis] = s.Value
	}
	return m
}

// settingsSpecSafe reports whether a Go-defined settings slice survives
// the schema's map form: JSON objects are unordered, so a reloaded spec
// re-applies settings in sorted axis-name order, and a slice whose
// declared order materializes a different config (overlapping axes like
// buffer_mb + relay_buffer_mb in write-order) must be rejected at dump
// time rather than silently exported as a spec that runs a different
// experiment. Axes are pure writes of values derived only from the
// setting, so order sensitivity is base-independent and one comparison
// on the paper defaults decides it.
func settingsSpecSafe(set []Setting) error {
	if len(set) < 2 {
		return nil
	}
	declared := sim.DefaultConfig()
	for _, s := range set {
		if err := s.apply(&declared); err != nil {
			return err
		}
	}
	reloaded := sim.DefaultConfig()
	sorted, err := settingsFromMap(settingsMap(set))
	if err != nil {
		return err
	}
	for _, s := range sorted {
		if err := s.apply(&reloaded); err != nil {
			return err
		}
	}
	if !reflect.DeepEqual(declared, reloaded) {
		return fmt.Errorf("settings %v are order-dependent (overlapping axes) and cannot round-trip through the unordered spec schema; use non-overlapping axes", set)
	}
	return nil
}

// Spec renders an experiment back into the on-disk schema: the sweep
// structure (axis, values, metric, settings, series) is captured exactly.
// For a spec-loaded experiment the base scenario fields it was loaded
// with are re-emitted; for Go-defined experiments they are left zero,
// meaning the paper defaults. Both built-in figures and loaded specs
// therefore export as self-contained files (cmd/experiments -dump-spec)
// that reload bit-identically. A code-supplied Base closure is the one
// thing the schema cannot carry — such experiments dump with default
// base fields. Settings whose declared order materializes differently
// from the schema's sorted-name order (overlapping axes) are an error:
// emitting them would produce a spec that runs a different experiment.
func Spec(exp Experiment) (scenario.File, error) {
	if err := settingsSpecSafe(exp.Set); err != nil {
		return scenario.File{}, fmt.Errorf("experiments: %s: %w", exp.ID, err)
	}
	for _, sc := range exp.Scenarios {
		if err := settingsSpecSafe(sc.Set); err != nil {
			return scenario.File{}, fmt.Errorf("experiments: %s: series %q: %w", exp.ID, sc.Name, err)
		}
	}
	var f scenario.File
	if exp.baseSpec != nil {
		f = *exp.baseSpec
	}
	f.Sweep = &scenario.SweepSpec{
		ID:     exp.ID,
		Title:  exp.Title,
		Axis:   exp.Axis,
		Values: append([]float64(nil), exp.Xs...),
		Metric: string(exp.Metric),
		Set:    settingsMap(exp.Set),
		Seeds:  append([]uint64(nil), exp.Seeds...),
		Scale:  exp.Scale,
	}
	if len(exp.Grid) > 0 {
		// Grid sweeps export in the axes-list form, primary axis first —
		// the only schema shape that can carry them.
		f.Sweep.Axes = []scenario.GridAxisSpec{{Axis: exp.Axis, Values: append([]float64(nil), exp.Xs...)}}
		for _, g := range exp.Grid {
			f.Sweep.Axes = append(f.Sweep.Axes, scenario.GridAxisSpec{Axis: g.Axis, Values: append([]float64(nil), g.Values...)})
		}
		f.Sweep.Axis, f.Sweep.Values = "", nil
	}
	f.Series = nil
	for _, sc := range exp.Scenarios {
		f.Series = append(f.Series, scenario.SeriesSpec{
			Name:     sc.Name,
			Protocol: scenario.ProtocolName(sc.Protocol),
			Policy:   scenario.PolicyName(sc.Policy),
			Set:      settingsMap(sc.Set),
		})
	}
	return f, nil
}

// SpecJSON renders an experiment as an indented spec file.
func SpecJSON(exp Experiment) ([]byte, error) {
	f, err := Spec(exp)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(f, "", "  ")
}

// Registry merges the built-in catalog with loaded user specs behind one
// id-addressed lookup, so CLI selection and output naming treat paper
// figures and file-defined sweeps uniformly. A user spec may shadow a
// built-in id — the dump-spec → edit → -spec workflow depends on it —
// but two user specs claiming one id is an error.
type Registry struct {
	order   []string
	byID    map[string]Experiment
	builtin map[string]bool
}

// NewRegistry returns a registry preloaded with the built-in catalog.
func NewRegistry() *Registry {
	r := &Registry{byID: map[string]Experiment{}, builtin: map[string]bool{}}
	for _, e := range Catalog() {
		r.order = append(r.order, e.ID)
		r.byID[e.ID] = e
		r.builtin[e.ID] = true
	}
	return r
}

// Add registers an experiment. A structurally invalid experiment is an
// error; so is colliding with an earlier user spec. Colliding with a
// built-in replaces it in place (a spec dumped from the catalog and
// edited runs under its own id).
func (r *Registry) Add(exp Experiment) error {
	if err := exp.validate(); err != nil {
		return err
	}
	if _, dup := r.byID[exp.ID]; dup {
		if !r.builtin[exp.ID] {
			return fmt.Errorf("experiments: spec id %q already registered; pick a different sweep id", exp.ID)
		}
		delete(r.builtin, exp.ID) // shadowed once; a second spec collides
		r.byID[exp.ID] = exp
		return nil
	}
	r.order = append(r.order, exp.ID)
	r.byID[exp.ID] = exp
	return nil
}

// AddSpec parses a spec file and registers it.
func (r *Registry) AddSpec(data []byte) (Experiment, error) {
	exp, err := LoadSpec(data)
	if err != nil {
		return Experiment{}, err
	}
	if err := r.Add(exp); err != nil {
		return Experiment{}, err
	}
	return exp, nil
}

// ByID finds a registered experiment.
func (r *Registry) ByID(id string) (Experiment, bool) {
	e, ok := r.byID[id]
	return e, ok
}

// Experiments returns every registered experiment in registration order:
// the built-in catalog first, then loaded specs.
func (r *Registry) Experiments() []Experiment {
	out := make([]Experiment, len(r.order))
	for i, id := range r.order {
		out[i] = r.byID[id]
	}
	return out
}
