package experiments

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/stats"
)

// CellResult is one completed (series, grid, x, seed) cell carrying the
// full sim.Result — nothing is thrown away at run time, so any metric can
// be rendered later from the same sweep.
type CellResult struct {
	Series string  `json:"series"`
	X      float64 `json:"x"`
	// Grid holds the cell's secondary axis assignments; empty for
	// single-axis sweeps.
	Grid   []Setting  `json:"grid,omitempty"`
	Seed   uint64     `json:"seed"`
	Result sim.Result `json:"result"`
}

// Results is the store a finished sweep produces: every cell's full
// Result in aggregation order (series-major, then grid combination, then
// x, then seed). Table renders any metric view over it; JSON emits the
// machine-readable artifact. A Results from an interrupted sweep (a
// cancelled Runner with a MemorySink) holds the completed prefix; the
// renderers emit only its complete (series, grid, x) groups, so partial
// artifacts are always valid.
type Results struct {
	Experiment Experiment
	Options    Options
	Cells      []CellResult
}

// at returns the replicated results of one (series, combo, x) point, or
// nil when the store's prefix does not cover the whole group (an
// interrupted sweep).
func (r *Results) at(si, ci, xi int) []CellResult {
	perSeed := len(r.Options.Seeds)
	perX := len(r.Experiment.Xs) * perSeed
	perSeries := r.Experiment.Combos() * perX
	base := si*perSeries + ci*perX + xi*perSeed
	if base+perSeed > len(r.Cells) {
		return nil
	}
	return r.Cells[base : base+perSeed]
}

// Complete reports whether the store holds every cell of the sweep —
// false for the prefix an interrupted sweep leaves behind.
func (r *Results) Complete() bool {
	return len(r.Cells) == len(r.Experiment.Scenarios)*r.Experiment.Combos()*len(r.Experiment.Xs)*len(r.Options.Seeds)
}

// Table aggregates one metric view over the stored results: per (series,
// grid, x) cell, the metric of each seed's Result summarized into
// mean ± CI. Grid sweeps render one sub-series per (series, grid
// combination), named "series [axis=v ...]". Incomplete trailing groups
// of an interrupted sweep are omitted. An unknown metric is an error.
func (r *Results) Table(m Metric) (Table, error) {
	if err := m.valid(); err != nil {
		return Table{}, err
	}
	t := Table{Experiment: r.Experiment, Options: r.Options, Metric: m}
	for si := range r.Experiment.Scenarios {
		for ci := 0; ci < r.Experiment.Combos(); ci++ {
			s := Series{Name: r.Experiment.seriesName(si, ci)}
			for xi, x := range r.Experiment.Xs {
				cells := r.at(si, ci, xi)
				if cells == nil {
					break // interrupted sweep: the rest of this line is missing
				}
				xs := make([]float64, len(cells))
				for i, c := range cells {
					v, err := m.Value(c.Result)
					if err != nil {
						return Table{}, err
					}
					xs[i] = v
				}
				s.Cells = append(s.Cells, Cell{X: x, Summary: stats.Summarize(xs)})
			}
			if len(s.Cells) > 0 {
				t.Series = append(t.Series, s)
			}
		}
	}
	return t, nil
}

// DefaultTable renders the experiment's declared metric. RunE validated
// the metric before running any cell, so this cannot fail on a Results it
// returned; a hand-built Results with an unknown metric panics like any
// other harness misuse.
func (r *Results) DefaultTable() Table {
	t, err := r.Table(r.Experiment.Metric)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// jsonSummary is one aggregated metric in the artifact.
type jsonSummary struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

// jsonRun is one replication in the artifact: the seed and the complete
// run result.
type jsonRun struct {
	Seed   uint64     `json:"seed"`
	Result sim.Result `json:"result"`
}

// jsonCell is one (series, x) point: its full per-seed results plus every
// known metric pre-aggregated for plotting tools.
type jsonCell struct {
	X       float64                `json:"x"`
	Runs    []jsonRun              `json:"runs"`
	Metrics map[string]jsonSummary `json:"metrics"`
}

type jsonSeries struct {
	Name string `json:"name"`
	// Grid carries the sub-series' secondary axis assignments for grid
	// sweeps; absent on single-axis sweeps.
	Grid  map[string]float64 `json:"grid,omitempty"`
	Cells []jsonCell         `json:"cells"`
}

// jsonArtifact is the machine-readable form of a finished sweep.
type jsonArtifact struct {
	Experiment string       `json:"experiment"`
	Title      string       `json:"title"`
	Axis       string       `json:"axis"`
	AxisLabel  string       `json:"axis_label"`
	Grid       []GridAxis   `json:"grid,omitempty"`
	Metric     Metric       `json:"metric"`
	Seeds      []uint64     `json:"seeds"`
	Scale      float64      `json:"scale"`
	Complete   *bool        `json:"complete,omitempty"`
	Xs         []float64    `json:"xs"`
	Series     []jsonSeries `json:"series"`
}

// JSON renders the results as an indented machine-readable artifact: the
// sweep's identity (experiment, axes, declared metric), then per
// (series, grid combination) and x the full per-seed sim.Result plus
// every known metric aggregated to mean ± 95% CI. It is the artifact
// cmd/experiments -out writes next to the table CSV. An interrupted
// sweep's store renders its complete cell groups, flagged
// "complete": false (the flag is omitted from complete artifacts, whose
// bytes predate it).
func (r *Results) JSON() ([]byte, error) {
	art := jsonArtifact{
		Experiment: r.Experiment.ID,
		Title:      r.Experiment.Title,
		Axis:       r.Experiment.Axis,
		AxisLabel:  scenario.AxisLabel(r.Experiment.Axis),
		Grid:       r.Experiment.Grid,
		Metric:     r.Experiment.Metric,
		Seeds:      r.Options.Seeds,
		Scale:      r.Options.Scale,
		Xs:         r.Experiment.Xs,
	}
	if !r.Complete() {
		f := false
		art.Complete = &f
	}
	ms := Metrics()
	for si := range r.Experiment.Scenarios {
		for ci := 0; ci < r.Experiment.Combos(); ci++ {
			js := jsonSeries{Name: r.Experiment.seriesName(si, ci)}
			if set := r.Experiment.comboSettings(ci); len(set) > 0 {
				js.Grid = settingsMap(set)
			}
			for xi, x := range r.Experiment.Xs {
				cells := r.at(si, ci, xi)
				if cells == nil {
					break // interrupted sweep: the rest of this line is missing
				}
				jc := jsonCell{X: x, Metrics: make(map[string]jsonSummary, len(ms))}
				for _, c := range cells {
					jc.Runs = append(jc.Runs, jsonRun{Seed: c.Seed, Result: c.Result})
				}
				for _, m := range ms {
					xs := make([]float64, len(cells))
					for i, c := range cells {
						v, err := m.Value(c.Result)
						if err != nil {
							return nil, err
						}
						xs[i] = v
					}
					sum := stats.Summarize(xs)
					jc.Metrics[string(m)] = jsonSummary{Mean: sum.Mean, CI95: sum.CI95(), N: sum.N}
				}
				js.Cells = append(js.Cells, jc)
			}
			if len(js.Cells) > 0 {
				art.Series = append(art.Series, js)
			}
		}
	}
	return json.MarshalIndent(art, "", "  ")
}

// Cell is the aggregated outcome of one (series, x) point under one
// metric.
type Cell struct {
	X       float64
	Summary stats.Summary
}

// Series is one aggregated line of a table.
type Series struct {
	Name  string
	Cells []Cell
}

// Table is one metric view over a completed experiment — what Render and
// CSV print. Results.Table produces them; Run returns the experiment's
// default view directly.
type Table struct {
	Experiment Experiment
	Options    Options
	Metric     Metric
	Series     []Series
}

// Render returns an aligned text table: one row per x value, one column
// per series, cells "mean±ci" (ci omitted for single-seed runs).
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s — %s\n", t.Experiment.ID, t.Experiment.Title, t.Metric)
	if t.Options.Scale != 1 {
		fmt.Fprintf(&sb, "(scaled run: %.0f%% of the paper's 12 h horizon)\n", t.Options.Scale*100)
	}

	cols := []string{scenario.AxisLabel(t.Experiment.Axis)}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for xi, x := range t.Experiment.Xs {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			switch c := s.Cells; {
			case xi >= len(c):
				// An interrupted sweep's table: this line's later points
				// never ran.
				row = append(row, "-")
			case c[xi].Summary.N > 1:
				row = append(row, fmt.Sprintf("%.3f±%.3f", c[xi].Summary.Mean, c[xi].Summary.CI95()))
			default:
				row = append(row, fmt.Sprintf("%.3f", c[xi].Summary.Mean))
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV returns the table in long form:
// experiment,metric,x,series,mean,ci95,n — one row per cell. The metric
// column makes files self-describing now that one sweep renders under
// any metric (-metric): two CSVs of the same experiment are
// distinguishable by content, not just by the flags that produced them.
func (t Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("experiment,metric,x,series,mean,ci95,n\n")
	for _, s := range t.Series {
		for _, c := range s.Cells {
			fmt.Fprintf(&sb, "%s,%s,%s,%s,%.6f,%.6f,%d\n",
				t.Experiment.ID, string(t.Metric), trimFloat(c.X), s.Name, c.Summary.Mean, c.Summary.CI95(), c.Summary.N)
		}
	}
	return sb.String()
}

// trimFloat renders a swept x value at full precision: user specs can
// sweep arbitrarily fine values, and two distinct cells must never
// collapse to one x label in tables or CSV rows. Catalog-style values
// keep their short forms ("60", "0.5").
func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}
