package experiments

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/stats"
)

// CellResult is one completed (series, x, seed) cell carrying the full
// sim.Result — nothing is thrown away at run time, so any metric can be
// rendered later from the same sweep.
type CellResult struct {
	Series string     `json:"series"`
	X      float64    `json:"x"`
	Seed   uint64     `json:"seed"`
	Result sim.Result `json:"result"`
}

// Results is the store a finished sweep produces: every cell's full
// Result in aggregation order (series-major, then x, then seed). Table
// renders any metric view over it; JSON emits the machine-readable
// artifact.
type Results struct {
	Experiment Experiment
	Options    Options
	Cells      []CellResult
}

// at returns the replicated results of one (series, x) point.
func (r *Results) at(si, xi int) []CellResult {
	perSeed := len(r.Options.Seeds)
	perX := len(r.Experiment.Xs) * perSeed
	base := si*perX + xi*perSeed
	return r.Cells[base : base+perSeed]
}

// Table aggregates one metric view over the stored results: per (series,
// x) cell, the metric of each seed's Result summarized into mean ± CI.
// An unknown metric is an error.
func (r *Results) Table(m Metric) (Table, error) {
	if err := m.valid(); err != nil {
		return Table{}, err
	}
	t := Table{Experiment: r.Experiment, Options: r.Options, Metric: m}
	for si, sc := range r.Experiment.Scenarios {
		s := Series{Name: sc.Name}
		for xi, x := range r.Experiment.Xs {
			cells := r.at(si, xi)
			xs := make([]float64, len(cells))
			for i, c := range cells {
				v, err := m.Value(c.Result)
				if err != nil {
					return Table{}, err
				}
				xs[i] = v
			}
			s.Cells = append(s.Cells, Cell{X: x, Summary: stats.Summarize(xs)})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// DefaultTable renders the experiment's declared metric. RunE validated
// the metric before running any cell, so this cannot fail on a Results it
// returned; a hand-built Results with an unknown metric panics like any
// other harness misuse.
func (r *Results) DefaultTable() Table {
	t, err := r.Table(r.Experiment.Metric)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// jsonSummary is one aggregated metric in the artifact.
type jsonSummary struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

// jsonRun is one replication in the artifact: the seed and the complete
// run result.
type jsonRun struct {
	Seed   uint64     `json:"seed"`
	Result sim.Result `json:"result"`
}

// jsonCell is one (series, x) point: its full per-seed results plus every
// known metric pre-aggregated for plotting tools.
type jsonCell struct {
	X       float64                `json:"x"`
	Runs    []jsonRun              `json:"runs"`
	Metrics map[string]jsonSummary `json:"metrics"`
}

type jsonSeries struct {
	Name  string     `json:"name"`
	Cells []jsonCell `json:"cells"`
}

// jsonArtifact is the machine-readable form of a finished sweep.
type jsonArtifact struct {
	Experiment string       `json:"experiment"`
	Title      string       `json:"title"`
	Axis       string       `json:"axis"`
	AxisLabel  string       `json:"axis_label"`
	Metric     Metric       `json:"metric"`
	Seeds      []uint64     `json:"seeds"`
	Scale      float64      `json:"scale"`
	Xs         []float64    `json:"xs"`
	Series     []jsonSeries `json:"series"`
}

// JSON renders the results as an indented machine-readable artifact: the
// sweep's identity (experiment, axis, declared metric), then per series
// and x the full per-seed sim.Result plus every known metric aggregated
// to mean ± 95% CI. It is the artifact cmd/experiments -out writes next
// to the table CSV.
func (r *Results) JSON() ([]byte, error) {
	art := jsonArtifact{
		Experiment: r.Experiment.ID,
		Title:      r.Experiment.Title,
		Axis:       r.Experiment.Axis,
		AxisLabel:  scenario.AxisLabel(r.Experiment.Axis),
		Metric:     r.Experiment.Metric,
		Seeds:      r.Options.Seeds,
		Scale:      r.Options.Scale,
		Xs:         r.Experiment.Xs,
	}
	ms := Metrics()
	for si, sc := range r.Experiment.Scenarios {
		js := jsonSeries{Name: sc.Name}
		for xi, x := range r.Experiment.Xs {
			cells := r.at(si, xi)
			jc := jsonCell{X: x, Metrics: make(map[string]jsonSummary, len(ms))}
			for _, c := range cells {
				jc.Runs = append(jc.Runs, jsonRun{Seed: c.Seed, Result: c.Result})
			}
			for _, m := range ms {
				xs := make([]float64, len(cells))
				for i, c := range cells {
					v, err := m.Value(c.Result)
					if err != nil {
						return nil, err
					}
					xs[i] = v
				}
				sum := stats.Summarize(xs)
				jc.Metrics[string(m)] = jsonSummary{Mean: sum.Mean, CI95: sum.CI95(), N: sum.N}
			}
			js.Cells = append(js.Cells, jc)
		}
		art.Series = append(art.Series, js)
	}
	return json.MarshalIndent(art, "", "  ")
}

// Cell is the aggregated outcome of one (series, x) point under one
// metric.
type Cell struct {
	X       float64
	Summary stats.Summary
}

// Series is one aggregated line of a table.
type Series struct {
	Name  string
	Cells []Cell
}

// Table is one metric view over a completed experiment — what Render and
// CSV print. Results.Table produces them; Run returns the experiment's
// default view directly.
type Table struct {
	Experiment Experiment
	Options    Options
	Metric     Metric
	Series     []Series
}

// Render returns an aligned text table: one row per x value, one column
// per series, cells "mean±ci" (ci omitted for single-seed runs).
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s — %s\n", t.Experiment.ID, t.Experiment.Title, t.Metric)
	if t.Options.Scale != 1 {
		fmt.Fprintf(&sb, "(scaled run: %.0f%% of the paper's 12 h horizon)\n", t.Options.Scale*100)
	}

	cols := []string{scenario.AxisLabel(t.Experiment.Axis)}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for xi, x := range t.Experiment.Xs {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			c := s.Cells[xi]
			if c.Summary.N > 1 {
				row = append(row, fmt.Sprintf("%.3f±%.3f", c.Summary.Mean, c.Summary.CI95()))
			} else {
				row = append(row, fmt.Sprintf("%.3f", c.Summary.Mean))
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV returns the table in long form:
// experiment,metric,x,series,mean,ci95,n — one row per cell. The metric
// column makes files self-describing now that one sweep renders under
// any metric (-metric): two CSVs of the same experiment are
// distinguishable by content, not just by the flags that produced them.
func (t Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("experiment,metric,x,series,mean,ci95,n\n")
	for _, s := range t.Series {
		for _, c := range s.Cells {
			fmt.Fprintf(&sb, "%s,%s,%s,%s,%.6f,%.6f,%d\n",
				t.Experiment.ID, string(t.Metric), trimFloat(c.X), s.Name, c.Summary.Mean, c.Summary.CI95(), c.Summary.N)
		}
	}
	return sb.String()
}

// trimFloat renders a swept x value at full precision: user specs can
// sweep arbitrarily fine values, and two distinct cells must never
// collapse to one x label in tables or CSV rows. Catalog-style values
// keep their short forms ("60", "0.5").
func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}
