package experiments

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/units"
)

// legacyApply reproduces the pre-refactor catalog's closure-based config
// mutations verbatim — the code the named axes replaced. The equivalence
// tests below pin that the declarative re-expression materializes
// byte-identical cell configs, which is what makes the tables
// bit-identical without re-running the paper's evaluation per test.
var legacyApply = map[string]func(c *sim.Config, x float64){
	"fig4":         func(c *sim.Config, x float64) { c.TTL = units.Minutes(x) },
	"fig5":         func(c *sim.Config, x float64) { c.TTL = units.Minutes(x) },
	"fig6":         func(c *sim.Config, x float64) { c.TTL = units.Minutes(x) },
	"fig7":         func(c *sim.Config, x float64) { c.TTL = units.Minutes(x) },
	"fig8":         func(c *sim.Config, x float64) { c.TTL = units.Minutes(x) },
	"fig9":         func(c *sim.Config, x float64) { c.TTL = units.Minutes(x) },
	"ext-policies": func(c *sim.Config, x float64) { c.TTL = units.Minutes(x) },
	"ablation-rate": func(c *sim.Config, x float64) {
		c.TTL = units.Minutes(120)
		c.Rate = units.Mbit(x)
	},
	"ablation-buffer": func(c *sim.Config, x float64) {
		c.TTL = units.Minutes(120)
		c.VehicleBuffer = units.MB(x)
		c.RelayBuffer = units.MB(5 * x)
	},
	"ablation-copies": func(c *sim.Config, x float64) {
		c.TTL = units.Minutes(120)
		c.SprayCopies = int(x)
	},
	"ablation-fleet": func(c *sim.Config, x float64) {
		c.TTL = units.Minutes(120)
		c.Vehicles = int(x)
	},
	"ablation-relays": func(c *sim.Config, x float64) {
		c.TTL = units.Minutes(120)
		c.Relays = int(x)
	},
}

// legacyCellConfigs materializes an experiment's cells exactly the way
// the pre-refactor harness did: base, scale, series routing, seed, then
// the experiment's Apply closure.
func legacyCellConfigs(exp Experiment, opt Options, apply func(c *sim.Config, x float64)) []sim.Config {
	opt = opt.normalized()
	var cfgs []sim.Config
	for si := range exp.Scenarios {
		for xi := range exp.Xs {
			for _, seed := range opt.Seeds {
				cfg := opt.base(exp)()
				cfg.Duration *= opt.Scale
				if cfg.MessageGenEnd > 0 {
					cfg.MessageGenEnd *= opt.Scale
				}
				cfg.Protocol = exp.Scenarios[si].Protocol
				cfg.Policy = exp.Scenarios[si].Policy
				cfg.Seed = seed
				apply(&cfg, exp.Xs[xi])
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}

// TestCatalogEquivalentToLegacyClosures pins the tentpole's bit-identical
// guarantee: every built-in figure and ablation, re-expressed on named
// axes, materializes exactly the cell configs the closure-based catalog
// produced — for every (series, x, seed) cell, at scale. Identical
// configs drive identical (deterministic) runs, so the rendered tables
// are bit-identical too.
func TestCatalogEquivalentToLegacyClosures(t *testing.T) {
	opt := Options{Seeds: []uint64{1, 2}, Scale: 0.25}
	for _, exp := range Catalog() {
		apply, ok := legacyApply[exp.ID]
		if !ok {
			t.Errorf("%s: no legacy definition to compare against — add one to keep the equivalence pinned", exp.ID)
			continue
		}
		got, err := CellConfigs(exp, opt)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		want := legacyCellConfigs(exp, opt, apply)
		if len(got) != len(want) {
			t.Fatalf("%s: %d cells, legacy %d", exp.ID, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s cell %d diverged from the legacy closure:\nnew:    %+v\nlegacy: %+v", exp.ID, i, got[i], want[i])
			}
		}
	}
}

// TestCatalogRunsBitIdenticalToLegacy runs one sweep both ways — new axes
// vs legacy closures — on a small scenario and compares the rendered
// tables byte for byte.
func TestCatalogRunsBitIdenticalToLegacy(t *testing.T) {
	exp, _ := ByID("ablation-rate")
	exp.Xs = []float64{1, 4}
	opt := Options{Seeds: []uint64{1, 2}, BaseConfig: tinyBase}

	res, err := RunE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	newTable := res.DefaultTable().Render()

	// The legacy path: materialize with the closure, compare configs
	// before running (a run warms caches inside the shared road graph),
	// then run each legacy config directly and compare full results.
	legacy := legacyCellConfigs(exp, opt, legacyApply["ablation-rate"])
	newCfgs, err := CellConfigs(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		if !reflect.DeepEqual(legacy[i], newCfgs[i]) {
			t.Fatalf("cell %d config diverged", i)
		}
	}
	for i := range legacy {
		w, err := sim.New(legacy[i])
		if err != nil {
			t.Fatal(err)
		}
		if r := w.Run(); !reflect.DeepEqual(r, res.Cells[i].Result) {
			t.Fatalf("cell %d result diverged from a direct legacy-config run", i)
		}
	}
	if !strings.Contains(newTable, "rate(Mbit/s)") {
		t.Fatalf("table lost the legacy x label:\n%s", newTable)
	}
}

// TestBuiltinFiguresPinnedFingerprint: the paper figures on the new axes
// still key their contact traces to the pinned default-scenario
// fingerprint — TTL is mobility-invariant, so every cell of every figure
// at seed 1 shares the one recorded trace.
func TestBuiltinFiguresPinnedFingerprint(t *testing.T) {
	const pinned = "7738a602549c75fc"
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ext-policies"} {
		exp, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		cfgs, err := CellConfigs(exp, Options{Seeds: []uint64{1}})
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range cfgs {
			if fp := scenario.ContactFingerprint(cfg); fp != pinned {
				t.Fatalf("%s cell %d fingerprints to %s, want pinned %s", id, i, fp, pinned)
			}
		}
	}
	// Mobility-moving axes must fork: the fleet ablation's cells never
	// share the pinned key across x values.
	exp, _ := ByID("ablation-fleet")
	cfgs, err := CellConfigs(exp, Options{Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	fps := map[string]bool{}
	for _, cfg := range cfgs {
		fps[scenario.ContactFingerprint(cfg)] = true
	}
	if len(fps) != len(exp.Xs) {
		t.Fatalf("vehicles sweep produced %d distinct fingerprints over %d x values", len(fps), len(exp.Xs))
	}
}

// TestSpecRoundTrip is the satellite's encode → decode → materialize
// check: a sweep spec written from a Go-defined experiment reloads into
// byte-identical cell configs, including fixed settings at both the sweep
// and the series level.
func TestSpecRoundTrip(t *testing.T) {
	orig := Experiment{
		ID:     "roundtrip",
		Title:  "round-trip sweep",
		Axis:   "rate_mbit",
		Xs:     []float64{0.5, 2, 6},
		Metric: MetricAvgDelayMin,
		Set:    []Setting{{Axis: "ttl_min", Value: 90}},
		Scenarios: []Scenario{
			{Name: "Epidemic/FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
			{
				Name: "SnW/Lifetime, 24 copies", Protocol: sim.ProtoSprayAndWait, Policy: sim.PolicyLifetime,
				Set: []Setting{{Axis: "copies", Value: 24}},
			},
		},
	}
	data, err := SpecJSON(orig)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadSpec(data)
	if err != nil {
		t.Fatalf("reloading dumped spec: %v\n%s", err, data)
	}
	if reloaded.ID != orig.ID || reloaded.Title != orig.Title || reloaded.Axis != orig.Axis || reloaded.Metric != orig.Metric {
		t.Fatalf("identity lost in round trip: %+v", reloaded)
	}
	opt := Options{Seeds: []uint64{1, 2}}
	got, err := CellConfigs(reloaded, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CellConfigs(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("spec round trip changed the materialized cell configs")
	}
}

// TestLoadedSpecDumpKeepsBaseScenario: dumping a spec-loaded experiment
// re-emits the base scenario fields it was loaded with, so the dump →
// edit → reload workflow never silently reverts to the paper defaults.
func TestLoadedSpecDumpKeepsBaseScenario(t *testing.T) {
	src := `{
		"name": "short-run",
		"duration_hours": 1,
		"vehicles": 12,
		"rate_mbit": 2,
		"sweep": {"id": "short-run", "axis": "ttl_min", "values": [15, 30]},
		"series": [{"name": "epi", "protocol": "epidemic", "policy": "lifetime"}]
	}`
	exp, err := LoadSpec([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	dumped, err := SpecJSON(exp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"duration_hours": 1`, `"vehicles": 12`, `"rate_mbit": 2`} {
		if !strings.Contains(string(dumped), want) {
			t.Fatalf("dump lost base field %s:\n%s", want, dumped)
		}
	}
	reloaded, err := LoadSpec(dumped)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CellConfigs(reloaded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := CellConfigs(exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("loaded-spec dump did not reload to identical cell configs")
	}
	if got[0].Duration != units.Hours(1) || got[0].Vehicles != 12 {
		t.Fatalf("base scenario lost in round trip: duration %v, vehicles %d", got[0].Duration, got[0].Vehicles)
	}
}

// TestBuiltinsDumpAndReloadBitIdentical: every catalog experiment
// round-trips through the spec schema into identical cell configs — the
// registry's merge of built-ins and user specs treats both uniformly.
func TestBuiltinsDumpAndReloadBitIdentical(t *testing.T) {
	opt := Options{Seeds: []uint64{1, 3}}
	for _, exp := range Catalog() {
		data, err := SpecJSON(exp)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		reloaded, err := LoadSpec(data)
		if err != nil {
			t.Fatalf("%s: reload: %v", exp.ID, err)
		}
		got, err := CellConfigs(reloaded, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := CellConfigs(exp, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: dumped spec materializes different cell configs", exp.ID)
		}
	}
}

// TestSpecBaseScenarioFields: a spec's scalar scenario fields become the
// experiment's base template, overriding the paper defaults but losing to
// an explicit Options.BaseConfig.
func TestSpecBaseScenarioFields(t *testing.T) {
	spec := `{
		"name": "small-fleet",
		"duration_hours": 2,
		"vehicles": 12,
		"ttl_min": 30,
		"sweep": {"id": "small", "axis": "ttl_min", "values": [15, 30], "metric": "delivery_prob"},
		"series": [
			{"name": "epidemic", "protocol": "epidemic", "policy": "lifetime"},
			{"name": "snw", "protocol": "spraywait", "policy": "lifetime"}
		]
	}`
	exp, err := LoadSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := CellConfigs(exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("materialized %d cells, want 4", len(cfgs))
	}
	for _, cfg := range cfgs {
		if cfg.Vehicles != 12 || cfg.Duration != units.Hours(2) {
			t.Fatalf("spec base not applied: vehicles %d, duration %v", cfg.Vehicles, cfg.Duration)
		}
	}
	if cfgs[0].TTL != units.Minutes(15) || cfgs[1].TTL != units.Minutes(30) {
		t.Fatalf("axis values not applied: %v, %v", cfgs[0].TTL, cfgs[1].TTL)
	}
	if cfgs[2].Protocol != sim.ProtoSprayAndWait {
		t.Fatalf("series protocol not applied: %v", cfgs[2].Protocol)
	}
	// Explicit Options.BaseConfig wins over the spec base.
	over, err := CellConfigs(exp, Options{BaseConfig: tinyBase})
	if err != nil {
		t.Fatal(err)
	}
	if over[0].Vehicles != 8 {
		t.Fatalf("Options.BaseConfig did not override the spec base: vehicles %d", over[0].Vehicles)
	}
}

// TestSpecValidation: malformed specs fail at load with a pointed error,
// never mid-sweep.
func TestSpecValidation(t *testing.T) {
	cases := map[string]string{
		"no sweep":          `{"name": "x"}`,
		"no id":             `{"sweep": {"axis": "ttl_min", "values": [1]}}`,
		"unknown axis":      `{"sweep": {"id": "x", "axis": "warp", "values": [1]}}`,
		"no values":         `{"sweep": {"id": "x", "axis": "ttl_min"}}`,
		"unknown metric":    `{"sweep": {"id": "x", "axis": "ttl_min", "values": [1], "metric": "vibes"}}`,
		"unknown set axis":  `{"sweep": {"id": "x", "axis": "ttl_min", "values": [1], "set": {"warp": 9}}}`,
		"unknown protocol":  `{"sweep": {"id": "x", "axis": "ttl_min", "values": [1]}, "series": [{"name": "a", "protocol": "pigeon"}]}`,
		"unknown policy":    `{"sweep": {"id": "x", "axis": "ttl_min", "values": [1]}, "series": [{"name": "a", "policy": "vibes"}]}`,
		"duplicate series":  `{"sweep": {"id": "x", "axis": "ttl_min", "values": [1]}, "series": [{"name": "a"}, {"name": "a"}]}`,
		"bad base scenario": `{"vehicles": 1, "sweep": {"id": "x", "axis": "ttl_min", "values": [1]}}`,
	}
	for name, spec := range cases {
		if _, err := LoadSpec([]byte(spec)); err == nil {
			t.Errorf("%s: spec loaded without error", name)
		}
	}
}

// TestSpecRejectsUnknownKeys: strict decoding catches typoed field names
// instead of silently running the sweep on paper defaults.
func TestSpecRejectsUnknownKeys(t *testing.T) {
	for name, spec := range map[string]string{
		"top-level typo": `{"ttl_mins": 45, "sweep": {"id": "x", "axis": "ttl_min", "values": [1]}}`,
		"sweep typo":     `{"sweep": {"id": "x", "axis": "ttl_min", "values": [1], "sets": {"ttl_min": 9}}}`,
		"series typo":    `{"sweep": {"id": "x", "axis": "ttl_min", "values": [1]}, "series": [{"name": "a", "protocl": "epidemic"}]}`,
	} {
		if _, err := LoadSpec([]byte(spec)); err == nil {
			t.Errorf("%s: spec with an unknown key loaded without error", name)
		}
	}
}

// TestSpecRejectsOrderDependentSettings: a Go-defined settings slice
// whose declared order materializes differently from the schema's
// sorted-name order must fail to dump — a spec that silently ran a
// different experiment would be worse than no spec.
func TestSpecRejectsOrderDependentSettings(t *testing.T) {
	exp := Experiment{
		ID: "overlap", Title: "overlap", Axis: "ttl_min", Xs: []float64{60}, Metric: MetricDeliveryProb,
		// Declared order: relay buffer set to 10 MB, then buffer_mb
		// overwrites it with 5×20 MB. Sorted order applies buffer_mb
		// first and relay_buffer_mb last — a different config.
		Set: []Setting{{Axis: "relay_buffer_mb", Value: 10}, {Axis: "buffer_mb", Value: 20}},
		Scenarios: []Scenario{
			{Name: "a", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
		},
	}
	if _, err := SpecJSON(exp); err == nil || !strings.Contains(err.Error(), "order-dependent") {
		t.Fatalf("SpecJSON error = %v, want order-dependent settings rejection", err)
	}
	// The same overlap at the series level is rejected too.
	exp.Set = nil
	exp.Scenarios[0].Set = []Setting{{Axis: "relay_buffer_mb", Value: 10}, {Axis: "buffer_mb", Value: 20}}
	if _, err := SpecJSON(exp); err == nil {
		t.Fatal("series-level order-dependent settings dumped without error")
	}
	// Disjoint axes in any declared order stay dumpable.
	exp.Scenarios[0].Set = []Setting{{Axis: "ttl_min", Value: 90}, {Axis: "copies", Value: 8}}
	if _, err := SpecJSON(exp); err != nil {
		t.Fatalf("disjoint settings rejected: %v", err)
	}
}

// TestSpecDefaultSeries: a sweep with no series block gets one line from
// the base scenario's routing.
func TestSpecDefaultSeries(t *testing.T) {
	exp, err := LoadSpec([]byte(`{"protocol": "maxprop", "sweep": {"id": "solo", "axis": "ttl_min", "values": [30, 60]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Scenarios) != 1 {
		t.Fatalf("series = %d, want 1", len(exp.Scenarios))
	}
	if exp.Scenarios[0].Protocol != sim.ProtoMaxProp {
		t.Fatalf("default series protocol = %v", exp.Scenarios[0].Protocol)
	}
	if exp.Metric != MetricDeliveryProb {
		t.Fatalf("default metric = %v", exp.Metric)
	}
}

// TestRegistryMergesBuiltinsAndSpecs: one id space for figures and user
// sweeps, collisions rejected.
func TestRegistryMergesBuiltinsAndSpecs(t *testing.T) {
	r := NewRegistry()
	if len(r.Experiments()) != len(Catalog()) {
		t.Fatalf("fresh registry holds %d, want %d", len(r.Experiments()), len(Catalog()))
	}
	if _, ok := r.ByID("fig5"); !ok {
		t.Fatal("fig5 missing from registry")
	}
	exp, err := r.AddSpec([]byte(`{"sweep": {"id": "mine", "axis": "vehicles", "values": [10, 20]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "mine" {
		t.Fatalf("loaded spec id = %q", exp.ID)
	}
	got, ok := r.ByID("mine")
	if !ok || got.Axis != "vehicles" {
		t.Fatalf("registered spec not retrievable: %+v ok=%v", got, ok)
	}
	all := r.Experiments()
	if all[len(all)-1].ID != "mine" {
		t.Fatal("specs not appended after built-ins")
	}
	// A user spec may shadow a built-in — the dump-spec → edit → -spec
	// workflow reloads figures under their own id.
	if _, err := r.AddSpec([]byte(`{"sweep": {"id": "fig5", "axis": "ttl_min", "values": [60]}}`)); err != nil {
		t.Fatalf("spec shadowing a built-in rejected: %v", err)
	}
	shadowed, _ := r.ByID("fig5")
	if len(shadowed.Xs) != 1 || shadowed.Xs[0] != 60 {
		t.Fatalf("shadowing spec not served: %+v", shadowed.Xs)
	}
	if got := len(r.Experiments()); got != len(Catalog())+1 {
		t.Fatalf("shadowing changed the experiment count: %d", got)
	}
	// But two user specs claiming one id collide.
	if _, err := r.AddSpec([]byte(`{"sweep": {"id": "fig5", "axis": "ttl_min", "values": [90]}}`)); err == nil {
		t.Fatal("registry accepted two user specs with one id")
	}
	if _, err := r.AddSpec([]byte(`{"sweep": {"id": "mine", "axis": "ttl_min", "values": [90]}}`)); err == nil {
		t.Fatal("registry accepted two user specs with one id")
	}
}

// TestCustomAxisRegistration: a user-registered axis works in experiment
// definitions and specs, and name collisions are rejected.
func TestCustomAxisRegistration(t *testing.T) {
	if err := scenario.RegisterAxis(scenario.NewAxis("test_gen_end_min", "gen end(min)", false,
		func(c *sim.Config, v float64) { c.MessageGenEnd = units.Minutes(v) })); err != nil {
		t.Fatal(err)
	}
	if err := scenario.RegisterAxis(scenario.NewAxis("ttl_min", "dup", false, func(c *sim.Config, v float64) {})); err == nil {
		t.Fatal("duplicate axis registration accepted")
	}
	exp, err := LoadSpec([]byte(`{"sweep": {"id": "gen-end", "axis": "test_gen_end_min", "values": [10, 20]}}`))
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := CellConfigs(exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].MessageGenEnd != units.Minutes(10) || cfgs[1].MessageGenEnd != units.Minutes(20) {
		t.Fatalf("custom axis not applied: %v, %v", cfgs[0].MessageGenEnd, cfgs[1].MessageGenEnd)
	}
}

// TestSpecFileIsValidScenarioFile: the sweep blocks ride on the existing
// scenario schema — a spec file still loads as a plain scenario (its base
// config) through scenario.Load, so older tools ignore the sweep.
func TestSpecFileIsValidScenarioFile(t *testing.T) {
	exp, _ := ByID("fig5")
	data, err := SpecJSON(exp)
	if err != nil {
		t.Fatal(err)
	}
	var f scenario.File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Vehicles != sim.DefaultConfig().Vehicles {
		t.Fatalf("base config vehicles = %d", cfg.Vehicles)
	}
}
