//go:build unix

package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLockExclusiveBlocks: a second lockExclusive on the same path must
// wait until the first holder releases, even inside one process (the two
// calls use distinct file descriptors, so flock excludes them).
func TestLockExclusiveBlocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "aa", lockFile)

	unlock := lockExclusive(path)
	acquired := make(chan struct{})
	go func() {
		u := lockExclusive(path)
		close(acquired)
		u()
	}()

	select {
	case <-acquired:
		t.Fatal("second lockExclusive acquired while the first was held")
	case <-time.After(50 * time.Millisecond):
	}
	unlock()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("second lockExclusive never acquired after release")
	}

	if _, err := os.Stat(path); err != nil {
		t.Fatalf("lock file missing after use: %v", err)
	}
}

// TestLockExclusiveDegrades: an unlockable path (parent is a file, so the
// MkdirAll fails) must degrade to a no-op rather than panic or error.
func TestLockExclusiveDegrades(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "notadir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	unlock := lockExclusive(filepath.Join(blocker, lockFile))
	unlock() // must be callable and harmless
}
