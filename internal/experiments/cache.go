package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/wireless"
)

// ContactCache memoizes recorded contact traces by scenario fingerprint,
// so a sweep's many (series, x) cells that share one (scenario, seed)
// mobility process simulate it exactly once and replay it everywhere else.
// Replayed cells are bit-identical to live cells (see sim.RecordContacts),
// so a cached experiment table equals the uncached one.
//
// The cache is safe for the runner's worker pool: concurrent requests for
// the same key block behind a single recording pass; requests for distinct
// keys record in parallel (Prewarm exploits this to front-load all of a
// sweep's recording passes). With Dir set, recordings are additionally
// persisted on disk — written as <fingerprint>.contactsb files in the
// integrity-checked binary codec, read back in either the binary or the
// legacy <fingerprint>.contacts text format — and reloaded on later runs.
// A damaged binary file (truncation at any byte, bit rot, torn copy) is
// detected, reported through Warn, and re-recorded — never silently
// replayed. Legacy text files carry a weaker guarantee: their "end"
// trailer catches mid-line cuts and count mismatches, but a file cut
// exactly at a line boundary is indistinguishable from a pre-v2 trace
// and loads with a warning, which is why the cache writes binary.
type ContactCache struct {
	// Dir, when non-empty, is the on-disk persistence directory. It is
	// created on first write.
	Dir string

	// Warn, when non-nil, receives one message per non-fatal cache anomaly:
	// an unreadable, corrupt, or scenario-mismatched persisted trace, or a
	// legacy text file whose truncation cannot be detected. Each distinct
	// anomaly is reported once per cache instance. Nil discards them.
	Warn func(msg string)

	mu      sync.Mutex
	entries map[string]*cacheEntry
	records uint64 // recording passes actually executed (not served from memory/disk)
	warned  map[string]bool
}

type cacheEntry struct {
	once sync.Once
	rec  *wireless.Recording
	err  error
}

// Recording returns the contact trace for cfg's mobility process,
// recording it on first use. The returned recording is shared and must be
// treated as immutable.
func (cc *ContactCache) Recording(cfg sim.Config) (*wireless.Recording, error) {
	if cfg.Plan != nil {
		return nil, fmt.Errorf("experiments: contact cache cannot serve a contact-plan scenario")
	}
	key := scenario.ContactFingerprint(cfg)

	cc.mu.Lock()
	if cc.entries == nil {
		cc.entries = make(map[string]*cacheEntry)
	}
	e := cc.entries[key]
	if e == nil {
		e = &cacheEntry{}
		cc.entries[key] = e
	}
	cc.mu.Unlock()

	e.once.Do(func() {
		// The recover runs inside the once: a panic escaping here would
		// mark the once done with (nil, nil), handing every later caller a
		// nil trace with no error.
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("experiments: recording %s panicked: %v", key, r)
			}
		}()
		e.rec, e.err = cc.load(key, cfg)
	})
	return e.rec, e.err
}

// contactCanonical keeps exactly the fields the contact process can see —
// the ones ContactFingerprint hashes — and resets everything else
// (traffic, routing, buffers, tracing) to the defaults. The recording
// pass therefore neither depends on nor validates a cell's non-contact
// configuration: one cell with, say, an invalid TTL must not poison the
// trace its whole (scenario, seed) group shares.
func contactCanonical(cfg sim.Config) sim.Config {
	c := sim.DefaultConfig()
	c.Seed = cfg.Seed
	c.Duration = cfg.Duration
	c.Map = cfg.Map
	c.Vehicles = cfg.Vehicles
	c.Relays = cfg.Relays
	c.SpeedLo, c.SpeedHi = cfg.SpeedLo, cfg.SpeedHi
	c.PauseLo, c.PauseHi = cfg.PauseLo, cfg.PauseHi
	c.Range = cfg.Range
	c.ScanInterval = cfg.ScanInterval
	return c
}

// Prewarm runs the recording passes for every distinct contact process in
// cfgs over its own worker pool, so a sweep's cells find their traces
// already in memory instead of serializing behind first-touch
// single-flight. Configurations the cache cannot serve (contact-plan or
// non-live contact sources) are skipped. workers <= 0 defaults to
// GOMAXPROCS. The returned error joins every failed recording; a failure
// is also memoized per key, so later Recording calls for that key report
// it again with their own context.
func (cc *ContactCache) Prewarm(cfgs []sim.Config, workers int) error {
	return cc.prewarm(cfgs, workers, nil)
}

// prewarm is Prewarm with a stop hook: when stop becomes true, remaining
// un-started recordings are skipped (the sweep runner stops warming a
// cache whose sweep has already failed).
func (cc *ContactCache) prewarm(cfgs []sim.Config, workers int, stop func() bool) error {
	seen := make(map[string]bool)
	var distinct []sim.Config
	for _, cfg := range cfgs {
		if cfg.Plan != nil || cfg.ContactSource != sim.ContactLive {
			continue
		}
		key := scenario.ContactFingerprint(cfg)
		if seen[key] {
			continue
		}
		seen[key] = true
		distinct = append(distinct, cfg)
	}
	if len(distinct) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(distinct) {
		workers = len(distinct)
	}
	errs := make([]error, len(distinct))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if stop != nil && stop() {
					continue
				}
				if _, err := cc.Recording(distinct[i]); err != nil {
					errs[i] = fmt.Errorf("experiments: prewarm %s: %w",
						scenario.ContactFingerprint(distinct[i]), err)
				}
			}
		}()
	}
	for i := range distinct {
		next <- i
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}

// load fills one cache entry: from disk if persisted, else by running the
// contacts-only recording pass (and persisting it when Dir is set).
func (cc *ContactCache) load(key string, cfg sim.Config) (*wireless.Recording, error) {
	binPath := ""
	if cc.Dir != "" {
		binPath = filepath.Join(cc.Dir, key+".contactsb")
		if rec := cc.fromDisk(key, cfg, binPath); rec != nil {
			return rec, nil
		}
	}
	rec, err := sim.RecordContacts(contactCanonical(cfg))
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	cc.records++
	cc.mu.Unlock()
	if binPath != "" {
		// Persistence is an optimization: a full disk must not fail a run
		// that already holds a valid recording, so errors are swallowed.
		persist(cc.Dir, binPath, wireless.EncodeBinary(rec))
	}
	return rec, nil
}

// fromDisk tries the persisted copies of key: the binary file first, then
// the legacy text file (which is upgraded to binary on success). nil means
// a miss — absent, unreadable, damaged, or recorded for a different
// scenario — and every cause except plain absence is surfaced via Warn.
// The .contactsb file is decoded strictly (the cache only ever writes
// binary there, so anything else in it is damage); the trailer-less
// legacy tolerance applies to .contacts text files alone.
func (cc *ContactCache) fromDisk(key string, cfg sim.Config, binPath string) *wireless.Recording {
	if rec := cc.readTrace(key, cfg, binPath, false); rec != nil {
		return rec
	}
	textPath := filepath.Join(cc.Dir, key+".contacts")
	rec := cc.readTrace(key, cfg, textPath, true)
	if rec != nil {
		// Upgrade write-through: later runs take the fast binary path.
		persist(cc.Dir, binPath, wireless.EncodeBinary(rec))
	}
	return rec
}

// readTrace loads and verifies one persisted trace file, sniffing the
// format by magic. nil means unusable; only os.IsNotExist stays silent.
func (cc *ContactCache) readTrace(key string, cfg sim.Config, path string, legacyOK bool) *wireless.Recording {
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			cc.warnf("io:"+path, "contact cache: reading %s: %v; re-recording", path, err)
		}
		return nil
	}
	var rec *wireless.Recording
	if legacyOK {
		rec, err = wireless.DecodeRecordingLegacy(data, func(msg string) {
			cc.warnf("legacy:"+path, "contact cache: %s: %s", path, msg)
		})
	} else {
		rec, err = wireless.DecodeRecording(data)
	}
	if err != nil {
		cc.warnf("corrupt:"+path, "contact cache: rejecting %s: %v; re-recording", path, err)
		return nil
	}
	if err := sim.ReplayCompatible(cfg, rec); err != nil {
		cc.warnf("mismatch:"+path, "contact cache: %s does not match the scenario: %v; re-recording", path, err)
		return nil
	}
	return rec
}

// warnf formats and delivers one warning through the hook, at most once
// per dedup key for the life of the cache.
func (cc *ContactCache) warnf(dedup, format string, args ...any) {
	cc.mu.Lock()
	warn := cc.Warn
	if warn == nil || cc.warned[dedup] {
		cc.mu.Unlock()
		return
	}
	if cc.warned == nil {
		cc.warned = make(map[string]bool)
	}
	cc.warned[dedup] = true
	cc.mu.Unlock()
	warn(fmt.Sprintf(format, args...))
}

// persist writes the trace via a temp file and rename, so concurrent
// processes sharing one cache directory never observe a torn file. Even a
// torn file is harmless — both formats detect truncation (binary count +
// CRC32 footer, text end trailer) and the reader re-records — but the
// atomic rename keeps a shared cache directory from wasting those passes.
func persist(dir, path string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, ".contacts-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// Len returns the number of distinct contact traces held.
func (cc *ContactCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.entries)
}

// Recorded returns how many recording passes this cache actually ran —
// the misses; hits served from memory or disk do not count.
func (cc *ContactCache) Recorded() uint64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.records
}
