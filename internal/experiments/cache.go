package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/wireless"
)

// CacheEventKind classifies one contact-cache lookup outcome.
type CacheEventKind int

const (
	// CacheHit: the trace was already memoized in this cache's memory.
	CacheHit CacheEventKind = iota
	// CacheHitDisk: the trace was loaded (or mmap-opened) from the
	// persisted store; Elapsed is the load time.
	CacheHitDisk
	// CacheRecorded: a miss — the recording pass actually ran; Elapsed is
	// its cost.
	CacheRecorded
)

// String names the event kind for progress output.
func (k CacheEventKind) String() string {
	switch k {
	case CacheHit:
		return "hit"
	case CacheHitDisk:
		return "hit(disk)"
	case CacheRecorded:
		return "recorded"
	default:
		return fmt.Sprintf("CacheEventKind(%d)", int(k))
	}
}

// CacheEvent is one contact-cache lookup outcome, delivered to the
// observer a Runner threads through the sweep (Observer.CacheEvent).
type CacheEvent struct {
	Kind        CacheEventKind
	Fingerprint string
	// Elapsed is the recording or disk-load cost; zero for memory hits.
	Elapsed time.Duration
}

// ContactCache memoizes recorded contact traces by scenario fingerprint,
// so a sweep's many (series, x) cells that share one (scenario, seed)
// mobility process simulate it exactly once and replay it everywhere else.
// Replayed cells are bit-identical to live cells (see sim.RecordContacts),
// so a cached experiment table equals the uncached one.
//
// The cache is safe for the runner's worker pool: concurrent requests for
// the same key block behind a single recording pass; requests for distinct
// keys record in parallel (Prewarm exploits this to front-load all of a
// sweep's recording passes). With Dir set, recordings are additionally
// persisted on disk in a sharded layout (see traceStore: 2-level fan-out
// directories fronted by an index file, with transparent migration of
// legacy flat-dir and text traces) and reloaded on later runs. A damaged
// binary file (truncation at any byte, bit rot, torn copy) is detected,
// reported through Warn, and re-recorded — never silently replayed.
// Legacy text files carry a weaker guarantee: their "end" trailer catches
// mid-line cuts and count mismatches, but a file cut exactly at a line
// boundary is indistinguishable from a pre-v2 trace and loads with a
// warning, which is why the cache writes binary.
//
// With Mmap also set, Source serves persisted traces as read-only
// memory-mapped wireless.RecordingView values instead of decoding them:
// the transition stream stays in the kernel page cache — one physical
// copy shared by every concurrent sweep process — and each replaying cell
// pays only a cursor, no per-cell trace allocation.
type ContactCache struct {
	// Dir, when non-empty, is the on-disk persistence directory. It is
	// created on first write.
	Dir string

	// Mmap, with Dir set, makes Source return zero-copy mmap-backed views
	// of the persisted traces instead of decoded recordings. Recording
	// still returns the materialized form for callers that need it.
	Mmap bool

	// MaxBytes, when positive, bounds the persisted store's total size:
	// after each recording is persisted, least-recently-used traces are
	// evicted until the shards fit the budget (see GC). Zero means
	// unbounded.
	MaxBytes int64

	// Warn, when non-nil, receives one message per non-fatal cache anomaly:
	// an unreadable, corrupt, or scenario-mismatched persisted trace, or a
	// legacy text file whose truncation cannot be detected. Each distinct
	// (cause, fingerprint) pair is reported once per cache instance — the
	// same trace probed at several candidate paths (sharded, legacy flat)
	// warns once, but distinct damaged traces each get their own report.
	// Nil discards them.
	Warn func(msg string)

	mu      sync.Mutex
	entries map[string]*cacheEntry
	disk    *traceStore
	records uint64 // recording passes actually executed (not served from memory/disk)
	warned  map[string]bool
}

type cacheEntry struct {
	once sync.Once
	rec  *wireless.Recording
	err  error

	// The mmap view is materialized separately from the slurped recording:
	// Source-only consumers never pay for the decoded slice, and
	// Recording-only consumers never map the file.
	viewOnce sync.Once
	view     *wireless.RecordingView
}

// entry returns (creating if needed) the memoization slot for key.
func (cc *ContactCache) entry(key string) *cacheEntry {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.entries == nil {
		cc.entries = make(map[string]*cacheEntry)
	}
	e := cc.entries[key]
	if e == nil {
		e = &cacheEntry{}
		cc.entries[key] = e
	}
	return e
}

// store returns the sharded disk store (nil when Dir is unset).
func (cc *ContactCache) store() *traceStore {
	if cc.Dir == "" {
		return nil
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.disk == nil {
		cc.disk = newTraceStore(cc.Dir)
		// Index repairs (a crash left index.json disagreeing with the
		// shards) surface through the cache's Warn hook, deduped per
		// fingerprint like every other anomaly.
		cc.disk.repaired = func(key, cause string) {
			cc.warnf("index:"+key, "contact cache: index.json %s for %s; repaired from the shard", cause, key)
		}
	}
	return cc.disk
}

// Recording returns the contact trace for cfg's mobility process,
// recording it on first use. The returned recording is shared and must be
// treated as immutable.
func (cc *ContactCache) Recording(cfg sim.Config) (*wireless.Recording, error) {
	return cc.recordingWith(context.Background(), cfg, nil)
}

// RecordingContext is Recording under a context: a cancelled ctx
// interrupts an in-flight recording pass promptly (between two events of
// its mobility simulation) and returns ctx.Err(). A cancelled pass is not
// memoized — a later call with a live context records the key again.
func (cc *ContactCache) RecordingContext(ctx context.Context, cfg sim.Config) (*wireless.Recording, error) {
	return cc.recordingWith(ctx, cfg, nil)
}

// recordingWith is Recording with a cache-event hook: note (when non-nil)
// learns whether this lookup hit memory, loaded from disk, or ran the
// recording pass. Only the single-flight winner observes the disk-load or
// recording event; callers that waited behind it (or arrived later)
// observe a memory hit.
func (cc *ContactCache) recordingWith(ctx context.Context, cfg sim.Config, note func(CacheEvent)) (*wireless.Recording, error) {
	if cfg.Plan != nil {
		return nil, fmt.Errorf("experiments: contact cache cannot serve a contact-plan scenario")
	}
	key := scenario.ContactFingerprint(cfg)
	e := cc.entry(key)
	ran := false
	e.once.Do(func() {
		ran = true
		// The recover runs inside the once: a panic escaping here would
		// mark the once done with (nil, nil), handing every later caller a
		// nil trace with no error.
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("experiments: recording %s panicked: %v", key, r)
			}
		}()
		e.rec, e.err = cc.load(ctx, key, cfg, note)
	})
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// Cancellation is a property of this call's context, not of the
		// key: drop the poisoned memoization so a later run (a resumed
		// sweep in the same process) records the trace instead of
		// replaying the stale error.
		cc.mu.Lock()
		if cc.entries[key] == e {
			delete(cc.entries, key)
		}
		cc.mu.Unlock()
	}
	if !ran && note != nil && e.err == nil {
		note(CacheEvent{Kind: CacheHit, Fingerprint: key})
	}
	return e.rec, e.err
}

// Source returns a replay source for cfg's contact process: with Dir and
// Mmap set, a shared read-only mmap view of the persisted trace (recording
// and persisting it first if absent); otherwise the in-memory recording.
// Every anomaly on the view path — damaged file, scenario mismatch —
// falls back to the slurp path after reporting through Warn, so Source
// never fails where Recording would succeed.
func (cc *ContactCache) Source(cfg sim.Config) (wireless.ReplaySource, error) {
	return cc.sourceWith(context.Background(), cfg, nil)
}

// sourceWith is Source with a context (cancellation interrupts a
// recording pass, as in RecordingContext) and the cache-event hook of
// recordingWith.
func (cc *ContactCache) sourceWith(ctx context.Context, cfg sim.Config, note func(CacheEvent)) (wireless.ReplaySource, error) {
	if cfg.Plan != nil {
		return nil, fmt.Errorf("experiments: contact cache cannot serve a contact-plan scenario")
	}
	if cc.Dir == "" || !cc.Mmap {
		return cc.recordingWith(ctx, cfg, note)
	}
	key := scenario.ContactFingerprint(cfg)
	e := cc.entry(key)
	ran := false
	e.viewOnce.Do(func() {
		ran = true
		// The budget check runs once per view materialization (the
		// recording path GCs again on persist), never on memoized hits —
		// a GC pass walks the whole store.
		defer cc.gcAfterUse()
		start := time.Now()
		if v := cc.openView(key, cfg); v != nil {
			e.view = v
			if note != nil {
				note(CacheEvent{Kind: CacheHitDisk, Fingerprint: key, Elapsed: time.Since(start)})
			}
			return
		}
		// No usable persisted copy: record (and persist) through the slurp
		// path, then map the freshly written shard. A second openView
		// failure here means persistence itself failed (full disk,
		// read-only dir) and the in-memory fallback below serves the key.
		if _, err := cc.recordingWith(ctx, cfg, note); err != nil {
			return
		}
		e.view = cc.openView(key, cfg)
	})
	if e.view != nil {
		if !ran && note != nil {
			note(CacheEvent{Kind: CacheHit, Fingerprint: key})
		}
		return e.view, nil
	}
	if ran {
		// This call already delivered its events inside the viewOnce; the
		// in-memory fallback must not double-report the key as a hit.
		note = nil
	}
	return cc.recordingWith(ctx, cfg, note)
}

// openView maps and verifies the persisted trace for key. nil means no
// usable copy (absent, damaged, or recorded for a different scenario);
// damage and mismatch are surfaced via Warn, and the mapping is always
// released on the rejection paths — a failed validation must not leak an
// mmap for the life of the sweep.
func (cc *ContactCache) openView(key string, cfg sim.Config) *wireless.RecordingView {
	st := cc.store()
	path := st.locate(key)
	v, err := wireless.OpenRecordingView(path)
	if err != nil {
		if !os.IsNotExist(err) {
			cc.warnf("corrupt:"+key, "contact cache: rejecting %s: %v; re-recording", path, err)
		}
		return nil
	}
	if err := sim.ReplaySourceCompatible(contactCanonical(cfg), v); err != nil {
		v.Close()
		cc.warnf("mismatch:"+key, "contact cache: %s does not match the scenario: %v; re-recording", path, err)
		return nil
	}
	fi, statErr := os.Stat(path)
	if statErr == nil {
		st.touch(key, fi.Size())
	}
	st.noteServed(key)
	return v
}

// contactCanonical keeps exactly the fields the contact process can see —
// the ones ContactFingerprint hashes — and resets everything else
// (traffic, routing, buffers, tracing) to the defaults. The recording
// pass therefore neither depends on nor validates a cell's non-contact
// configuration: one cell with, say, an invalid TTL must not poison the
// trace its whole (scenario, seed) group shares.
func contactCanonical(cfg sim.Config) sim.Config {
	c := sim.DefaultConfig()
	c.Seed = cfg.Seed
	c.Duration = cfg.Duration
	c.Map = cfg.Map
	c.Vehicles = cfg.Vehicles
	c.Relays = cfg.Relays
	c.SpeedLo, c.SpeedHi = cfg.SpeedLo, cfg.SpeedHi
	c.PauseLo, c.PauseHi = cfg.PauseLo, cfg.PauseHi
	c.Range = cfg.Range
	c.ScanInterval = cfg.ScanInterval
	return c
}

// Prewarm runs the recording passes for every distinct contact process in
// cfgs over its own worker pool, so a sweep's cells find their traces
// already in memory instead of serializing behind first-touch
// single-flight. Configurations the cache cannot serve (contact-plan or
// non-live contact sources) are skipped. workers <= 0 defaults to
// GOMAXPROCS. The returned error joins every failed recording; a failure
// is also memoized per key, so later Recording calls for that key report
// it again with their own context.
func (cc *ContactCache) Prewarm(cfgs []sim.Config, workers int) error {
	return cc.prewarm(context.Background(), cfgs, workers, nil, nil)
}

// PrewarmContext is Prewarm under a context: cancellation interrupts the
// in-flight recording passes promptly — between two events of their
// mobility simulations, not minutes later at the end of a pass — skips
// the rest, and returns the joined errors (each wrapping ctx.Err()).
// Cancelled passes are not memoized, so a later run records them cleanly.
func (cc *ContactCache) PrewarmContext(ctx context.Context, cfgs []sim.Config, workers int) error {
	return cc.prewarm(ctx, cfgs, workers, func() bool { return ctx.Err() != nil }, nil)
}

// prewarm is Prewarm with a context, a stop hook — when stop becomes
// true, remaining un-started recordings are skipped (the sweep runner
// stops warming a cache whose sweep has already failed or been
// cancelled) — and the cache-event hook of recordingWith.
func (cc *ContactCache) prewarm(ctx context.Context, cfgs []sim.Config, workers int, stop func() bool, note func(CacheEvent)) error {
	seen := make(map[string]bool)
	var distinct []sim.Config
	for _, cfg := range cfgs {
		if cfg.Plan != nil || cfg.ContactSource != sim.ContactLive {
			continue
		}
		key := scenario.ContactFingerprint(cfg)
		if seen[key] {
			continue
		}
		seen[key] = true
		distinct = append(distinct, cfg)
	}
	if len(distinct) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(distinct) {
		workers = len(distinct)
	}
	errs := make([]error, len(distinct))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if stop != nil && stop() {
					continue
				}
				if _, err := cc.recordingWith(ctx, distinct[i], note); err != nil {
					errs[i] = fmt.Errorf("experiments: prewarm %s: %w",
						scenario.ContactFingerprint(distinct[i]), err)
				}
			}
		}()
	}
	for i := range distinct {
		next <- i
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}

// load fills one cache entry: from disk if persisted, else by running the
// contacts-only recording pass (and persisting it when Dir is set).
func (cc *ContactCache) load(ctx context.Context, key string, cfg sim.Config, note func(CacheEvent)) (*wireless.Recording, error) {
	st := cc.store()
	start := time.Now()
	if st != nil {
		if rec := cc.fromDisk(key, cfg, st); rec != nil {
			if note != nil {
				note(CacheEvent{Kind: CacheHitDisk, Fingerprint: key, Elapsed: time.Since(start)})
			}
			return rec, nil
		}
	}
	rec, err := sim.RecordContactsContext(ctx, contactCanonical(cfg))
	if err != nil {
		return nil, err
	}
	if note != nil {
		note(CacheEvent{Kind: CacheRecorded, Fingerprint: key, Elapsed: time.Since(start)})
	}
	cc.mu.Lock()
	cc.records++
	cc.mu.Unlock()
	if st != nil {
		// Persistence is an optimization: a full disk must not fail a run
		// that already holds a valid recording, so errors are swallowed.
		st.put(key, wireless.EncodeBinary(rec))
		cc.gcAfterUse()
	}
	return rec, nil
}

// fromDisk tries the persisted copies of key: the sharded (or
// still-flat) binary file first, then the legacy flat text file — which
// is upgraded into the shard on success and then retired. nil means a
// miss — absent, unreadable, damaged, or recorded for a different
// scenario — and every cause except plain absence is surfaced via Warn.
// The binary file is decoded strictly (the cache only ever writes binary
// there, so anything else in it is damage); the trailer-less legacy
// tolerance applies to .contacts text files alone.
func (cc *ContactCache) fromDisk(key string, cfg sim.Config, st *traceStore) *wireless.Recording {
	binPath := st.locate(key)
	if rec := cc.readTrace(key, cfg, binPath, false); rec != nil {
		fi, err := os.Stat(binPath)
		if err == nil {
			st.touch(key, fi.Size())
		}
		// If the index had lost this trace (crash between shard rename and
		// index flush), this serve is the repair — count it through Warn.
		st.noteServed(key)
		return rec
	}
	rec := cc.readTrace(key, cfg, st.flatTextPath(key), true)
	if rec != nil {
		// Upgrade write-through: later runs take the fast binary path, and
		// the flat text file is retired into the shard.
		st.put(key, wireless.EncodeBinary(rec))
	}
	return rec
}

// readTrace loads and verifies one persisted trace file, sniffing the
// format by magic. nil means unusable; only os.IsNotExist stays silent.
// Warnings dedupe per (cause, fingerprint), not per path, so probing the
// same damaged trace at several candidate locations reports once.
func (cc *ContactCache) readTrace(key string, cfg sim.Config, path string, legacyOK bool) *wireless.Recording {
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			cc.warnf("io:"+key, "contact cache: reading %s: %v; re-recording", path, err)
		}
		return nil
	}
	var rec *wireless.Recording
	if legacyOK {
		rec, err = wireless.DecodeRecordingLegacy(data, func(msg string) {
			cc.warnf("legacy:"+key, "contact cache: %s: %s", path, msg)
		})
	} else {
		rec, err = wireless.DecodeRecording(data)
	}
	if err != nil {
		cc.warnf("corrupt:"+key, "contact cache: rejecting %s: %v; re-recording", path, err)
		return nil
	}
	if err := sim.ReplayCompatible(cfg, rec); err != nil {
		cc.warnf("mismatch:"+key, "contact cache: %s does not match the scenario: %v; re-recording", path, err)
		return nil
	}
	return rec
}

// warnf formats and delivers one warning through the hook, at most once
// per (cause, fingerprint) dedup key for the life of the cache.
func (cc *ContactCache) warnf(dedup, format string, args ...any) {
	cc.mu.Lock()
	warn := cc.Warn
	if warn == nil || cc.warned[dedup] {
		cc.mu.Unlock()
		return
	}
	if cc.warned == nil {
		cc.warned = make(map[string]bool)
	}
	cc.warned[dedup] = true
	cc.mu.Unlock()
	warn(fmt.Sprintf(format, args...))
}

// gcAfterUse applies the MaxBytes budget after a store write or view open.
// Best-effort: a GC failure never fails the lookup that triggered it.
func (cc *ContactCache) gcAfterUse() {
	if cc.MaxBytes <= 0 {
		return
	}
	_, _, _ = cc.GC()
}

// GC evicts least-recently-used persisted traces until the store fits
// MaxBytes (no-op when MaxBytes is zero or Dir is unset). Fingerprints
// currently held in memory by this cache are never evicted — they are the
// sweep's working set. It returns how many trace files were removed and
// how many bytes they freed.
func (cc *ContactCache) GC() (removed int, freed int64, err error) {
	st := cc.store()
	if st == nil || cc.MaxBytes <= 0 {
		return 0, 0, nil
	}
	cc.mu.Lock()
	keep := make(map[string]bool, len(cc.entries))
	for key := range cc.entries {
		keep[key] = true
	}
	cc.mu.Unlock()
	return st.gc(cc.MaxBytes, keep)
}

// MigrateDir upgrades a whole legacy cache directory into the sharded
// layout at once (the per-key migration in Recording/Source handles the
// same upgrade lazily): flat .contactsb files move into their shards,
// legacy .contacts text traces are re-encoded binary and retired. It
// returns how many traces were migrated.
func (cc *ContactCache) MigrateDir() (moved int, err error) {
	st := cc.store()
	if st == nil {
		return 0, nil
	}
	return st.migrate(func(msg string) { cc.warnf("migrate:"+msg, "%s", msg) })
}

// Close releases every mmap-backed view the cache opened and flushes the
// store index. The cache must not serve replays after Close (live cursors
// would read unmapped pages).
func (cc *ContactCache) Close() error {
	cc.mu.Lock()
	var views []*wireless.RecordingView
	for _, e := range cc.entries {
		if e.view != nil {
			views = append(views, e.view)
		}
	}
	disk := cc.disk
	cc.mu.Unlock()
	var errs []error
	for _, v := range views {
		if err := v.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if disk != nil {
		disk.flush()
	}
	return errors.Join(errs...)
}

// Len returns the number of distinct contact traces held.
func (cc *ContactCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.entries)
}

// Recorded returns how many recording passes this cache actually ran —
// the misses; hits served from memory or disk do not count.
func (cc *ContactCache) Recorded() uint64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.records
}

// ShardPath returns where key's trace is (or would be) persisted in the
// sharded layout — exported for the CLIs' diagnostics and the migration
// gate in CI.
func (cc *ContactCache) ShardPath(key string) string {
	st := cc.store()
	if st == nil {
		return ""
	}
	return st.shardPath(key)
}
