package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/wireless"
)

// ContactCache memoizes recorded contact traces by scenario fingerprint,
// so a sweep's many (series, x) cells that share one (scenario, seed)
// mobility process simulate it exactly once and replay it everywhere else.
// Replayed cells are bit-identical to live cells (see sim.RecordContacts),
// so a cached experiment table equals the uncached one.
//
// The cache is safe for the runner's worker pool: concurrent requests for
// the same key block behind a single recording pass; requests for distinct
// keys record in parallel. With Dir set, recordings are additionally
// persisted as <fingerprint>.contacts files and reloaded on later runs.
type ContactCache struct {
	// Dir, when non-empty, is the on-disk persistence directory. It is
	// created on first write.
	Dir string

	mu      sync.Mutex
	entries map[string]*cacheEntry
	records uint64 // recording passes actually executed (not served from memory/disk)
}

type cacheEntry struct {
	once sync.Once
	rec  *wireless.Recording
	err  error
}

// Recording returns the contact trace for cfg's mobility process,
// recording it on first use. The returned recording is shared and must be
// treated as immutable.
func (cc *ContactCache) Recording(cfg sim.Config) (*wireless.Recording, error) {
	if cfg.Plan != nil {
		return nil, fmt.Errorf("experiments: contact cache cannot serve a contact-plan scenario")
	}
	key := scenario.ContactFingerprint(cfg)

	cc.mu.Lock()
	if cc.entries == nil {
		cc.entries = make(map[string]*cacheEntry)
	}
	e := cc.entries[key]
	if e == nil {
		e = &cacheEntry{}
		cc.entries[key] = e
	}
	cc.mu.Unlock()

	e.once.Do(func() { e.rec, e.err = cc.load(key, cfg) })
	return e.rec, e.err
}

// load fills one cache entry: from disk if persisted, else by running the
// contacts-only recording pass (and persisting it when Dir is set).
func (cc *ContactCache) load(key string, cfg sim.Config) (*wireless.Recording, error) {
	path := ""
	if cc.Dir != "" {
		path = filepath.Join(cc.Dir, key+".contacts")
		if data, err := os.ReadFile(path); err == nil {
			rec, perr := wireless.ParseRecording(string(data))
			if perr == nil {
				return rec, nil
			}
			// A corrupt file is not fatal: fall through and re-record.
		}
	}
	rec, err := sim.RecordContacts(cfg)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	cc.records++
	cc.mu.Unlock()
	if path != "" {
		// Persistence is an optimization: a full disk must not fail a run
		// that already holds a valid recording, so errors are swallowed.
		persist(cc.Dir, path, rec.Format())
	}
	return rec, nil
}

// persist writes the trace via a temp file and rename, so concurrent
// processes sharing one cache directory never observe a torn file (any
// prefix of a trace parses cleanly — a truncated read would silently
// replay wrong contacts).
func persist(dir, path, text string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, ".contacts-*")
	if err != nil {
		return
	}
	if _, err := tmp.WriteString(text); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// Len returns the number of distinct contact traces held.
func (cc *ContactCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.entries)
}

// Recorded returns how many recording passes this cache actually ran —
// the misses; hits served from memory or disk do not count.
func (cc *ContactCache) Recorded() uint64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.records
}
