package experiments

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
)

// ResultSink consumes a sweep's finished cells as they complete, the
// pluggable replacement for the implicit in-memory-only Results store.
// The runner drives one sink per Run call:
//
//	Start(exp, opt)   once, before any cell
//	Cell(c)           once per finished cell, in aggregation order
//	                  (series-major, then grid combination, then x, then
//	                  seed), never concurrently
//	Finish(runErr)    exactly once after Start succeeded — nil runErr for
//	                  a complete sweep, the run's error (a failing cell's
//	                  coordinates, or ctx.Err() for a cancelled sweep)
//	                  otherwise; sinks flush buffered output here even
//	                  when runErr is non-nil, so an interrupted sweep's
//	                  partial results survive
//
// Because delivery is in aggregation order, a sink never sees a torn or
// out-of-order cell: an interrupted sweep's sink holds a clean,
// deterministic prefix of complete cells. Any sink error aborts the
// sweep.
type ResultSink interface {
	Start(exp Experiment, opt Options) error
	Cell(c CellResult) error
	Finish(runErr error) error
}

// MemorySink accumulates cells into a Results — the sweep store RunE
// returns and every table/CSV/JSON renderer consumes. The zero value is
// ready to use; Results is valid (as a partial store) even after an
// interrupted sweep.
type MemorySink struct {
	res *Results
}

// Start implements ResultSink.
func (s *MemorySink) Start(exp Experiment, opt Options) error {
	s.res = &Results{Experiment: exp, Options: opt}
	return nil
}

// Cell implements ResultSink.
func (s *MemorySink) Cell(c CellResult) error {
	if s.res == nil {
		return errors.New("experiments: MemorySink.Cell before Start")
	}
	s.res.Cells = append(s.res.Cells, c)
	return nil
}

// Finish implements ResultSink. The accumulated Results stay available.
func (s *MemorySink) Finish(error) error { return nil }

// Results returns the accumulated store: every delivered cell in
// aggregation order. After an interrupted sweep it holds the completed
// prefix; Table/CSV/JSON render the complete (series, x) groups in it.
// Nil before Start.
func (s *MemorySink) Results() *Results { return s.res }

// jsonlHeader is the first line of a JSONL sweep stream: the sweep's
// identity, enough to interpret the cell lines without the spec file.
type jsonlHeader struct {
	Format     string     `json:"format"`
	Experiment string     `json:"experiment"`
	Title      string     `json:"title,omitempty"`
	Axis       string     `json:"axis"`
	AxisLabel  string     `json:"axis_label"`
	Grid       []GridAxis `json:"grid,omitempty"`
	Metric     Metric     `json:"metric"`
	Seeds      []uint64   `json:"seeds"`
	Scale      float64    `json:"scale"`
	Xs         []float64  `json:"xs"`
	Series     []string   `json:"series"`
}

// jsonlCell is one cell line of a JSONL sweep stream.
type jsonlCell struct {
	Series string             `json:"series"`
	X      float64            `json:"x"`
	Grid   map[string]float64 `json:"grid,omitempty"`
	Seed   uint64             `json:"seed"`
	Result sim.Result         `json:"result"`
}

// jsonlFooter terminates a JSONL sweep stream. Its presence is the
// completeness check: a stream without one was interrupted mid-sweep (a
// crash or lost write), Complete reports whether every cell is present,
// and Error carries an interrupted sweep's reason. Cells counts the cell
// lines written, so even a partial stream is self-describing.
type jsonlFooter struct {
	Cells    int    `json:"cells"`
	Complete bool   `json:"complete"`
	Error    string `json:"error,omitempty"`
}

// jsonlFormat versions the stream layout; bump on breaking changes.
const jsonlFormat = "vdtn-sweep-jsonl/1"

// JSONLSink streams finished cells as JSON lines: one compact header
// line identifying the sweep, one line per cell carrying the complete
// sim.Result, and one footer line recording the cell count and outcome.
// Cells are written in aggregation order, so the byte stream of a sweep
// is deterministic (pinned by a golden test) and, unlike the in-memory
// store, the sweep's full result set never has to fit in RAM — the
// ROADMAP path to sweeps bigger than memory. An interrupted sweep's
// stream holds the completed prefix plus a footer naming the reason;
// stream readers distinguish the three terminal states by the footer:
// present and complete, present and incomplete (cancelled or failed
// sweep, prefix valid), absent (the writer itself died).
type JSONLSink struct {
	w     *bufio.Writer
	enc   *json.Encoder
	cells int
	total int
}

// NewJSONLSink returns a sink streaming to w. The caller keeps ownership
// of w (and closes it after the sweep); Finish flushes.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Start implements ResultSink: it writes the header line.
func (s *JSONLSink) Start(exp Experiment, opt Options) error {
	h := jsonlHeader{
		Format:     jsonlFormat,
		Experiment: exp.ID,
		Title:      exp.Title,
		Axis:       exp.Axis,
		AxisLabel:  scenario.AxisLabel(exp.Axis),
		Grid:       exp.Grid,
		Metric:     exp.Metric,
		Seeds:      opt.Seeds,
		Scale:      opt.Scale,
		Xs:         exp.Xs,
	}
	for si := range exp.Scenarios {
		h.Series = append(h.Series, exp.Scenarios[si].Name)
	}
	s.cells = 0
	s.total = len(cellJobs(exp, opt))
	return s.enc.Encode(h)
}

// Cell implements ResultSink: one line per cell, written through the
// buffer (flushed at Finish).
func (s *JSONLSink) Cell(c CellResult) error {
	line := jsonlCell{Series: c.Series, X: c.X, Seed: c.Seed, Result: c.Result}
	if len(c.Grid) > 0 {
		line.Grid = settingsMap(c.Grid)
	}
	if err := s.enc.Encode(line); err != nil {
		return err
	}
	s.cells++
	return nil
}

// Finish implements ResultSink: it writes the footer and flushes. The
// footer is written for failed and cancelled sweeps too — the completed
// prefix is valid data and its reason is recorded.
func (s *JSONLSink) Finish(runErr error) error {
	f := jsonlFooter{Cells: s.cells, Complete: runErr == nil && s.cells == s.total}
	if runErr != nil {
		f.Error = runErr.Error()
	}
	if err := s.enc.Encode(f); err != nil {
		return err
	}
	return s.w.Flush()
}

// TeeSink duplicates every sink call to each of sinks in order: render
// tables from a MemorySink while a JSONLSink archives the same sweep.
// The first error from any sink aborts the sweep, but Finish is always
// delivered to every sink so earlier ones still flush.
func TeeSink(sinks ...ResultSink) ResultSink { return teeSink(sinks) }

type teeSink []ResultSink

func (t teeSink) Start(exp Experiment, opt Options) error {
	for i, s := range t {
		if err := s.Start(exp, opt); err != nil {
			err = fmt.Errorf("experiments: tee sink %d: %w", i, err)
			// The runner only finishes a sink whose Start succeeded, so
			// the earlier legs must be finished here — a JSONL leg that
			// already buffered its header would otherwise leave a
			// zero-byte file, indistinguishable from a dead writer.
			for _, started := range t[:i] {
				_ = started.Finish(err)
			}
			return err
		}
	}
	return nil
}

func (t teeSink) Cell(c CellResult) error {
	for i, s := range t {
		if err := s.Cell(c); err != nil {
			return fmt.Errorf("experiments: tee sink %d: %w", i, err)
		}
	}
	return nil
}

func (t teeSink) Finish(runErr error) error {
	var errs []error
	for i, s := range t {
		if err := s.Finish(runErr); err != nil {
			errs = append(errs, fmt.Errorf("experiments: tee sink %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
