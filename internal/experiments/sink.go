package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"vdtn/internal/scenario"
	"vdtn/internal/sim"
)

// ResultSink consumes a sweep's finished cells as they complete, the
// pluggable replacement for the implicit in-memory-only Results store.
// The runner drives one sink per Run call:
//
//	Start(exp, opt)   once, before any cell
//	Cell(c)           once per finished cell, in aggregation order
//	                  (series-major, then grid combination, then x, then
//	                  seed), never concurrently
//	Finish(runErr)    exactly once after Start succeeded — nil runErr for
//	                  a complete sweep, the run's error (a failing cell's
//	                  coordinates, or ctx.Err() for a cancelled sweep)
//	                  otherwise; sinks flush buffered output here even
//	                  when runErr is non-nil, so an interrupted sweep's
//	                  partial results survive
//
// Because delivery is in aggregation order, a sink never sees a torn or
// out-of-order cell: an interrupted sweep's sink holds a clean,
// deterministic prefix of complete cells. Any sink error aborts the
// sweep.
type ResultSink interface {
	Start(exp Experiment, opt Options) error
	Cell(c CellResult) error
	Finish(runErr error) error
}

// MemorySink accumulates cells into a Results — the sweep store RunE
// returns and every table/CSV/JSON renderer consumes. The zero value is
// ready to use; Results is valid (as a partial store) even after an
// interrupted sweep.
type MemorySink struct {
	res *Results
}

// Start implements ResultSink.
func (s *MemorySink) Start(exp Experiment, opt Options) error {
	s.res = &Results{Experiment: exp, Options: opt}
	return nil
}

// Cell implements ResultSink.
func (s *MemorySink) Cell(c CellResult) error {
	if s.res == nil {
		return errors.New("experiments: MemorySink.Cell before Start")
	}
	s.res.Cells = append(s.res.Cells, c)
	return nil
}

// Finish implements ResultSink. The accumulated Results stay available.
func (s *MemorySink) Finish(error) error { return nil }

// Results returns the accumulated store: every delivered cell in
// aggregation order. After an interrupted sweep it holds the completed
// prefix; Table/CSV/JSON render the complete (series, x) groups in it.
// Nil before Start.
func (s *MemorySink) Results() *Results { return s.res }

// jsonlHeader is the first line of a JSONL sweep stream: the sweep's
// identity, enough to interpret the cell lines without the spec file.
type jsonlHeader struct {
	Format     string     `json:"format"`
	Experiment string     `json:"experiment"`
	Title      string     `json:"title,omitempty"`
	Axis       string     `json:"axis"`
	AxisLabel  string     `json:"axis_label"`
	Grid       []GridAxis `json:"grid,omitempty"`
	Metric     Metric     `json:"metric"`
	Seeds      []uint64   `json:"seeds"`
	Scale      float64    `json:"scale"`
	Xs         []float64  `json:"xs"`
	Series     []string   `json:"series"`
}

// jsonlCell is one cell line of a JSONL sweep stream.
type jsonlCell struct {
	Series string             `json:"series"`
	X      float64            `json:"x"`
	Grid   map[string]float64 `json:"grid,omitempty"`
	Seed   uint64             `json:"seed"`
	Result sim.Result         `json:"result"`
}

// jsonlFooter terminates a JSONL sweep stream. Its presence is the
// completeness check: a stream without one was interrupted mid-sweep (a
// crash or lost write), Complete reports whether every cell is present,
// and Error carries an interrupted sweep's reason. Cells counts the cell
// lines written, so even a partial stream is self-describing.
type jsonlFooter struct {
	Cells    int    `json:"cells"`
	Complete bool   `json:"complete"`
	Error    string `json:"error,omitempty"`
}

// jsonlFormat versions the stream layout; bump on breaking changes.
const jsonlFormat = "vdtn-sweep-jsonl/1"

// jsonlHeaderFor builds the header line Start writes — shared with the
// reader side, which validates a stream byte-for-byte against it.
func jsonlHeaderFor(exp Experiment, opt Options) jsonlHeader {
	h := jsonlHeader{
		Format:     jsonlFormat,
		Experiment: exp.ID,
		Title:      exp.Title,
		Axis:       exp.Axis,
		AxisLabel:  scenario.AxisLabel(exp.Axis),
		Grid:       exp.Grid,
		Metric:     exp.Metric,
		Seeds:      opt.Seeds,
		Scale:      opt.Scale,
		Xs:         exp.Xs,
	}
	for si := range exp.Scenarios {
		h.Series = append(h.Series, exp.Scenarios[si].Name)
	}
	return h
}

// JSONLSink streams finished cells as JSON lines: one compact header
// line identifying the sweep, one line per cell carrying the complete
// sim.Result, and one footer line recording the cell count and outcome.
// Cells are written in aggregation order, so the byte stream of a sweep
// is deterministic (pinned by a golden test) and, unlike the in-memory
// store, the sweep's full result set never has to fit in RAM — the
// ROADMAP path to sweeps bigger than memory. An interrupted sweep's
// stream holds the completed prefix plus a footer naming the reason;
// stream readers distinguish the three terminal states by the footer:
// present and complete, present and incomplete (cancelled or failed
// sweep, prefix valid), absent (the writer itself died — ReadJSONLPrefix
// recovers the clean cell prefix from such a stream).
type JSONLSink struct {
	w          *bufio.Writer
	enc        *json.Encoder
	cells      int
	total      int
	skip       int  // delivered cells already in the underlying stream
	skipHeader bool // the header line is already in the underlying stream
	started    bool
	werr       error // first write failure; the stream may end in a torn line
}

// NewJSONLSink returns a sink streaming to w. The caller keeps ownership
// of w (and closes it after the sweep); Finish flushes.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// NewJSONLSinkResume returns a sink appending to w, where w's underlying
// stream already holds prefix — what ReadJSONLPrefix validated, with the
// caller having truncated everything after SweepPrefix.Offset. Start
// writes no header when the stream already has one (Offset > 0), the
// first len(prefix.Cells) delivered cells are counted but not re-written,
// and every later cell appends normally, so the finished stream is
// byte-identical to an uninterrupted run's. A nil or empty prefix (a
// stream whose header never flushed) behaves exactly like NewJSONLSink:
// the stream starts over.
func NewJSONLSinkResume(w io.Writer, prefix *SweepPrefix) *JSONLSink {
	s := NewJSONLSink(w)
	if prefix != nil {
		s.skip = len(prefix.Cells)
		s.skipHeader = prefix.Offset > 0
	}
	return s
}

// Start implements ResultSink: it writes the header line (unless the
// stream is being resumed past an existing one).
func (s *JSONLSink) Start(exp Experiment, opt Options) error {
	s.started = true
	s.cells = 0
	s.total = len(cellJobs(exp, opt))
	if s.skipHeader {
		// Resume: the header (and the first skip cell lines) are already
		// in the underlying stream; rewriting it would corrupt the bytes.
		return nil
	}
	return s.enc.Encode(jsonlHeaderFor(exp, opt))
}

// Cell implements ResultSink: one line per cell, written through the
// buffer (flushed at Finish).
func (s *JSONLSink) Cell(c CellResult) error {
	if !s.started {
		return errors.New("experiments: JSONLSink.Cell before Start")
	}
	if s.werr != nil {
		return s.werr
	}
	if s.cells < s.skip {
		// Resume: this cell's line is already in the underlying stream
		// (ReadJSONLPrefix verified it); count it without re-writing.
		s.cells++
		return nil
	}
	line := jsonlCell{Series: c.Series, X: c.X, Seed: c.Seed, Result: c.Result}
	if len(c.Grid) > 0 {
		line.Grid = settingsMap(c.Grid)
	}
	if err := s.enc.Encode(line); err != nil {
		// The stream may now end in a torn line; remember it, so Finish
		// does not append a footer whose count the stream contradicts.
		s.werr = err
		return err
	}
	s.cells++
	return nil
}

// Finish implements ResultSink: it writes the footer and flushes. The
// footer is written for failed and cancelled sweeps too — the completed
// prefix is valid data and its reason is recorded. The one exception is a
// sink whose own Cell write failed: the stream may end in a torn line, so
// a footer after it would count cells a reader cannot find. The invariant
// footer readers rely on is that a footer's Cells always equals the
// number of complete cell lines preceding it.
func (s *JSONLSink) Finish(runErr error) error {
	if s.werr != nil {
		_ = s.w.Flush()
		return s.werr
	}
	f := jsonlFooter{Cells: s.cells, Complete: runErr == nil && s.cells == s.total}
	if runErr != nil {
		f.Error = runErr.Error()
	}
	if err := s.enc.Encode(f); err != nil {
		return err
	}
	return s.w.Flush()
}

// SweepPrefix is the validated readable prefix of a JSONL sweep stream —
// what ReadJSONLPrefix recovers from a finished, interrupted, or
// crash-truncated stream, and what Runner.ResumeFrom consumes to finish
// the sweep without re-simulating it.
type SweepPrefix struct {
	// Cells are the complete cells of the stream, in aggregation order,
	// each carrying its full decoded sim.Result.
	Cells []CellResult
	// Offset is the byte offset just past the last complete cell line
	// (past the header for an empty prefix; 0 when the header itself never
	// flushed). Truncate the stream here and append to resume it.
	Offset int64
	// Footer reports whether a footer line terminated the stream: false
	// means the writer died mid-sweep.
	Footer bool
	// Complete reports a footer that recorded a complete sweep; resuming
	// such a stream re-runs nothing and rewrites the same footer.
	Complete bool
}

// cutLine splits the first newline-terminated line (inclusive of the
// newline) off b. complete is false when no newline remains — the
// crash-truncated tail of a stream.
func cutLine(b []byte) (line, rest []byte, complete bool) {
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		return b, nil, false
	}
	return b[:i+1], b[i+1:], true
}

// ReadJSONLPrefix decodes a JSONL sweep stream written for exp under opt
// and returns its clean complete-cell prefix. It is the reader side of
// JSONLSink's format, built for crash recovery:
//
//   - The header line must match what a fresh sink would write for
//     (exp, opt) byte for byte — a stream from a different sweep, seed
//     list, or scale is an error, never silently resumed. A stream whose
//     header never made it to disk (the writer died before the first
//     flush) yields an empty prefix with Offset 0: start over.
//   - Every complete cell line is validated against the sweep's
//     aggregation order (series, x, grid, seed must match the cell's
//     coordinates) and decoded; the in-order delivery contract guarantees
//     the stream is a clean prefix, and any disagreement is corruption,
//     reported as an error.
//   - A truncated trailing line — the torn tail a kill -9 leaves behind —
//     is tolerated: the prefix ends just before it.
//   - A footer, when present, must count exactly the cell lines before it
//     and is excluded from Offset, so resuming truncates it away and
//     Finish writes a fresh one.
//
// Appending the missing cells and a footer at Offset therefore produces a
// stream byte-identical to an uninterrupted run's — the contract
// Runner.ResumeFrom and NewJSONLSinkResume implement together.
func ReadJSONLPrefix(data []byte, exp Experiment, opt Options) (*SweepPrefix, error) {
	if err := exp.validate(); err != nil {
		return nil, err
	}
	opt = opt.normalizedFor(exp)
	jobs := cellJobs(exp, opt)

	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(jsonlHeaderFor(exp, opt)); err != nil {
		return nil, err
	}

	p := &SweepPrefix{}
	line, rest, complete := cutLine(data)
	if !complete {
		return p, nil
	}
	if !bytes.Equal(line, want.Bytes()) {
		return nil, fmt.Errorf("experiments: JSONL header does not match %s under these options — refusing to resume a different sweep", exp.ID)
	}
	p.Offset = int64(len(line))

	for len(rest) > 0 {
		line, next, complete := cutLine(rest)
		if !complete {
			break // crash-truncated trailing line: the prefix ends before it
		}
		if p.Footer {
			return nil, errors.New("experiments: JSONL stream continues after its footer")
		}
		var probe struct {
			Series *string `json:"series"`
			Cells  *int    `json:"cells"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("experiments: JSONL line %d is not valid JSON: %v", len(p.Cells)+2, err)
		}
		switch {
		case probe.Series != nil:
			var c jsonlCell
			if err := json.Unmarshal(line, &c); err != nil {
				return nil, fmt.Errorf("experiments: JSONL cell %d: %v", len(p.Cells), err)
			}
			ji := len(p.Cells)
			if ji >= len(jobs) {
				return nil, fmt.Errorf("experiments: JSONL stream holds more cells than the sweep's %d", len(jobs))
			}
			// The canonical []Setting form of the expected cell doubles as
			// the decoded cell's Grid: settingsMap equality proved they
			// agree, and re-delivery to sinks then reproduces the writer's
			// canonical ordering.
			wantCell := cellResult(exp, jobs[ji], sim.Result{})
			if c.Series != wantCell.Series || c.X != wantCell.X || c.Seed != wantCell.Seed ||
				!gridMapEqual(c.Grid, wantCell.Grid) {
				return nil, fmt.Errorf("experiments: JSONL cell %d is (%q, x=%v, seed %d), want (%q, x=%v, seed %d): stream and sweep disagree",
					ji, c.Series, c.X, c.Seed, wantCell.Series, wantCell.X, wantCell.Seed)
			}
			wantCell.Result = c.Result
			p.Cells = append(p.Cells, wantCell)
			p.Offset += int64(len(line))
		case probe.Cells != nil:
			var f jsonlFooter
			if err := json.Unmarshal(line, &f); err != nil {
				return nil, fmt.Errorf("experiments: JSONL footer: %v", err)
			}
			if f.Cells != len(p.Cells) {
				return nil, fmt.Errorf("experiments: JSONL footer counts %d cells, the stream holds %d", f.Cells, len(p.Cells))
			}
			if f.Complete && len(p.Cells) != len(jobs) {
				return nil, fmt.Errorf("experiments: JSONL footer claims a complete sweep with %d of %d cells", len(p.Cells), len(jobs))
			}
			p.Footer, p.Complete = true, f.Complete
			// The footer is excluded from Offset: resuming truncates it
			// away and writes a fresh one after the appended cells.
		default:
			return nil, fmt.Errorf("experiments: JSONL line %d is neither a cell nor a footer", len(p.Cells)+2)
		}
		rest = next
	}
	return p, nil
}

// gridMapEqual compares a decoded cell's grid assignments against the
// canonical settings form.
func gridMapEqual(got map[string]float64, want []Setting) bool {
	if len(got) != len(want) {
		return false
	}
	for _, s := range want {
		v, ok := got[s.Axis]
		if !ok || v != s.Value {
			return false
		}
	}
	return true
}

// validateFor checks that the prefix really is a prefix of exp's cell
// grid under opt: no longer than the sweep, every cell's coordinates
// matching aggregation order. The Runner applies it before skipping any
// work, so a prefix pointed at the wrong sweep fails fast instead of
// producing a silently misaligned result stream.
func (p *SweepPrefix) validateFor(exp Experiment, opt Options, jobs []job) error {
	if len(p.Cells) > len(jobs) {
		return fmt.Errorf("experiments: resume prefix holds %d cells, the sweep only %d", len(p.Cells), len(jobs))
	}
	for i, c := range p.Cells {
		want := cellResult(exp, jobs[i], c.Result)
		if c.Series != want.Series || c.X != want.X || c.Seed != want.Seed ||
			!gridMapEqual(settingsMap(c.Grid), want.Grid) {
			return fmt.Errorf("experiments: resume prefix cell %d is (%q, x=%v, seed %d), want (%q, x=%v, seed %d)",
				i, c.Series, c.X, c.Seed, want.Series, want.X, want.Seed)
		}
	}
	return nil
}

// TeeSink duplicates every sink call to each of sinks in order: render
// tables from a MemorySink while a JSONLSink archives the same sweep.
// The first error from any sink aborts the sweep, but Finish is always
// delivered to every sink so earlier ones still flush.
func TeeSink(sinks ...ResultSink) ResultSink { return teeSink(sinks) }

type teeSink []ResultSink

func (t teeSink) Start(exp Experiment, opt Options) error {
	for i, s := range t {
		if err := s.Start(exp, opt); err != nil {
			err = fmt.Errorf("experiments: tee sink %d: %w", i, err)
			// The runner only finishes a sink whose Start succeeded, so
			// the earlier legs must be finished here — a JSONL leg that
			// already buffered its header would otherwise leave a
			// zero-byte file, indistinguishable from a dead writer.
			for _, started := range t[:i] {
				_ = started.Finish(err)
			}
			return err
		}
	}
	return nil
}

func (t teeSink) Cell(c CellResult) error {
	for i, s := range t {
		if err := s.Cell(c); err != nil {
			return fmt.Errorf("experiments: tee sink %d: %w", i, err)
		}
	}
	return nil
}

func (t teeSink) Finish(runErr error) error {
	var errs []error
	for i, s := range t {
		if err := s.Finish(runErr); err != nil {
			errs = append(errs, fmt.Errorf("experiments: tee sink %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
