package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// tickClock is an injected clock advancing a fixed step per reading, so
// progress lines render deterministically.
func tickClock(step time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

func TestProgressObserverLiveLine(t *testing.T) {
	var sb strings.Builder
	p := &ProgressObserver{W: &sb, Now: tickClock(time.Second)}
	exp := Experiment{ID: "tiny"}
	p.SweepStarted(exp, Options{}, 4)
	for i := 0; i < 4; i++ {
		p.CellFinished(CellID{Index: i, Total: 4}, time.Second, nil)
	}
	p.SweepFinished(exp, 10*time.Second, nil)
	out := sb.String()

	// Every redraw starts with \r and stays on one line until the final
	// newline-terminated summary.
	if n := strings.Count(out, "\n"); n != 1 {
		t.Fatalf("got %d newlines, want exactly 1 (the final summary):\n%q", n, out)
	}
	frames := strings.Split(out, "\r")
	for _, want := range []string{
		"tiny: 0/4 cells (0%)",
		"tiny: 1/4 cells (25%)",
		"tiny: 4/4 cells (100%)",
		"tiny: done — 4/4 cells in 10s",
	} {
		found := false
		for _, f := range frames {
			if strings.HasPrefix(f, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no frame starts with %q:\n%q", want, out)
		}
	}
	// With the 1s-per-reading clock, after cell 1 one cell took ~2
	// elapsed readings; ETA must appear once a measured cell exists.
	if !strings.Contains(out, " eta ") {
		t.Errorf("no ETA rendered:\n%q", out)
	}
}

func TestProgressObserverResumedExcludedFromETA(t *testing.T) {
	var sb strings.Builder
	p := &ProgressObserver{W: &sb, Resumed: 3, Now: tickClock(time.Second)}
	p.SweepStarted(Experiment{ID: "tiny"}, Options{}, 6)
	first := sb.String()
	// Resumed cells count as done immediately...
	if !strings.Contains(first, "3/6 cells (50%)") {
		t.Fatalf("initial frame does not show resumed cells done:\n%q", first)
	}
	// ...but produce no ETA: nothing has been measured yet.
	if strings.Contains(first, " eta ") {
		t.Fatalf("ETA rendered before any measured cell:\n%q", first)
	}
	if !strings.Contains(first, "(3 resumed)") {
		t.Fatalf("resumed note missing:\n%q", first)
	}
	p.CellFinished(CellID{Index: 3, Total: 6}, time.Second, nil)
	if out := sb.String(); !strings.Contains(out, " eta ") {
		t.Fatalf("no ETA after first measured cell:\n%q", out)
	}
}

func TestProgressObserverFailuresAndCancellation(t *testing.T) {
	var sb strings.Builder
	p := &ProgressObserver{W: &sb, Now: tickClock(time.Second)}
	exp := Experiment{ID: "tiny"}
	p.SweepStarted(exp, Options{}, 2)
	p.CellFinished(CellID{Index: 0, Total: 2}, time.Second, errors.New("boom"))
	out := sb.String()
	if !strings.Contains(out, "tiny: cell 1/2 FAILED: boom\n") {
		t.Fatalf("failure not printed on its own line:\n%q", out)
	}
	if !strings.Contains(out, "failed 1") {
		t.Fatalf("failed counter missing:\n%q", out)
	}

	// Cancelled cells are the sweep's outcome, not per-cell noise.
	sb.Reset()
	p = &ProgressObserver{W: &sb, Now: tickClock(time.Second)}
	p.SweepStarted(exp, Options{}, 2)
	p.CellFinished(CellID{Index: 0, Total: 2}, time.Second, context.Canceled)
	if out := sb.String(); strings.Contains(out, "FAILED") {
		t.Fatalf("cancellation printed as a failure:\n%q", out)
	}
	p.SweepFinished(exp, 3*time.Second, context.Canceled)
	if out := sb.String(); !strings.Contains(out, "interrupted") {
		t.Fatalf("cancelled sweep summary missing:\n%q", out)
	}
}

// TestProgressObserverThroughRunner drives a real sweep through the
// observer, checking it never trips on the serialized callback stream
// and ends with the newline-terminated summary.
func TestProgressObserverThroughRunner(t *testing.T) {
	var sb strings.Builder
	exp := tinyExperiment()
	r := Runner{
		Options:  Options{Seeds: []uint64{1}, BaseConfig: tinyBase},
		Observer: &ProgressObserver{W: &sb},
	}
	if err := r.Run(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("output does not end with the summary newline:\n%q", out)
	}
	if !strings.Contains(out, "tiny: done — ") {
		t.Fatalf("summary missing:\n%q", out)
	}
}
