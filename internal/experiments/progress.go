package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// ProgressObserver is an Observer rendering a running sweep as one live,
// continuously rewritten line on W:
//
//	fig5: 12/48 cells (25%) elapsed 1.2s eta 3.6s
//
// The line is redrawn in place (carriage return, no newline) on every
// finished cell, so a terminal shows a single counter instead of one line
// per cell; SweepFinished terminates it with a newline and the outcome.
// The ETA extrapolates the mean cost of the cells this run actually
// simulated over the remaining ones — resumed cells (see Resumed) count
// as complete but contribute nothing to the estimate, so a restarted
// sweep's ETA is not skewed by the cells it skipped. Contact-trace
// recording passes are folded into the line as a counter ("rec n")
// instead of one line each; cell failures break the line and print on a
// line of their own, since they carry the coordinates an operator needs.
//
// The runner serializes observer delivery, so ProgressObserver keeps no
// locks. One instance observes one sweep at a time, but may be reused
// across sequential Runner.Run calls: SweepStarted resets all counters.
type ProgressObserver struct {
	// W receives the rendered line; nil defaults to os.Stderr.
	W io.Writer
	// Resumed counts cells an earlier interrupted run already completed
	// (len(SweepPrefix.Cells)): they are shown as already done, and the
	// ETA is extrapolated only from cells this run simulates itself.
	Resumed int
	// Now is the clock behind elapsed/ETA; nil defaults to time.Now.
	// Injectable so tests render deterministic lines.
	Now func() time.Time

	label    string
	start    time.Time
	total    int
	done     int
	failed   int
	recorded int
	lastLen  int
}

func (p *ProgressObserver) w() io.Writer {
	if p.W != nil {
		return p.W
	}
	return os.Stderr
}

func (p *ProgressObserver) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

// SweepStarted implements Observer: it resets the counters and draws the
// initial line.
func (p *ProgressObserver) SweepStarted(exp Experiment, opt Options, cells int) {
	p.label = exp.ID
	p.total = cells
	p.done = p.Resumed
	p.failed = 0
	p.recorded = 0
	p.lastLen = 0
	p.start = p.now()
	p.render()
}

// CellStarted implements Observer. The line only moves on completions, so
// starts are not drawn.
func (p *ProgressObserver) CellStarted(CellID) {}

// CellFinished implements Observer: it advances the counter and redraws.
// A failed cell's error breaks the live line and prints on its own line —
// except cancellation, which is the sweep's outcome, not the cell's, and
// is reported once by SweepFinished.
func (p *ProgressObserver) CellFinished(c CellID, _ time.Duration, err error) {
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return
		}
		p.failed++
		p.breakLine()
		fmt.Fprintf(p.w(), "%s: cell %d/%d FAILED: %v\n", p.label, c.Index+1, c.Total, err)
		p.render()
		return
	}
	p.done++
	p.render()
}

// CacheEvent implements Observer: executed recording passes are counted
// into the line; hits are the information-free common case and ignored.
func (p *ProgressObserver) CacheEvent(ev CacheEvent) {
	if ev.Kind != CacheRecorded {
		return
	}
	p.recorded++
	p.render()
}

// SweepFinished implements Observer: it finalizes the line with the
// sweep's outcome and a newline.
func (p *ProgressObserver) SweepFinished(exp Experiment, elapsed time.Duration, err error) {
	status := "done"
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		status = "interrupted"
	case err != nil:
		status = err.Error()
	}
	line := fmt.Sprintf("%s: %s — %d/%d cells in %v%s",
		p.label, status, p.done, p.total, elapsed.Round(time.Millisecond), p.resumedNote())
	p.draw(line)
	fmt.Fprintln(p.w())
	p.lastLen = 0
}

// render redraws the live counter line in place.
func (p *ProgressObserver) render() {
	pct := 0
	if p.total > 0 {
		pct = 100 * p.done / p.total
	}
	line := fmt.Sprintf("%s: %d/%d cells (%d%%) elapsed %v",
		p.label, p.done, p.total, pct, p.elapsed().Round(100*time.Millisecond))
	if eta, ok := p.eta(); ok {
		line += fmt.Sprintf(" eta %v", eta.Round(100*time.Millisecond))
	}
	if p.recorded > 0 {
		line += fmt.Sprintf(" rec %d", p.recorded)
	}
	if p.failed > 0 {
		line += fmt.Sprintf(" failed %d", p.failed)
	}
	line += p.resumedNote()
	p.draw(line)
}

func (p *ProgressObserver) resumedNote() string {
	if p.Resumed > 0 {
		return fmt.Sprintf(" (%d resumed)", p.Resumed)
	}
	return ""
}

func (p *ProgressObserver) elapsed() time.Duration { return p.now().Sub(p.start) }

// eta extrapolates the mean cost of the cells this run simulated over the
// remaining ones. Resumed cells were free, so they are excluded from the
// mean; before the first simulated cell completes there is nothing to
// extrapolate from.
func (p *ProgressObserver) eta() (time.Duration, bool) {
	measured := p.done - p.Resumed
	remaining := p.total - p.done
	if measured <= 0 || remaining <= 0 {
		return 0, false
	}
	return time.Duration(int64(p.elapsed()) / int64(measured) * int64(remaining)), true
}

// draw writes line over the previous one: carriage return, then trailing
// spaces to erase any leftover of a longer earlier render.
func (p *ProgressObserver) draw(line string) {
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w(), "\r%s%s", line, pad)
	p.lastLen = len(line)
}

// breakLine moves off the live counter line so a full-width message can
// print cleanly.
func (p *ProgressObserver) breakLine() {
	if p.lastLen > 0 {
		fmt.Fprintln(p.w())
		p.lastLen = 0
	}
}
