package experiments

import (
	"fmt"
	"sort"

	"vdtn/internal/sim"
)

// Metric names one scalar view of a run's full sim.Result. Because the
// runner stores the complete Result per cell (see Results), a metric is
// only a rendering choice: any metric can be extracted from one finished
// sweep without re-running it.
//
// The value is the stable identifier used in sweep spec files and JSON
// artifacts; String returns the human table label.
type Metric string

// The metrics the paper's figures plot, followed by the wider result
// surface a sweep can render.
const (
	// MetricAvgDelayMin is the message average delay in minutes
	// (Figures 4, 6, 9).
	MetricAvgDelayMin Metric = "avg_delay_min"
	// MetricDeliveryProb is the message delivery probability
	// (Figures 5, 7, 8).
	MetricDeliveryProb Metric = "delivery_prob"
	// MetricOverhead is the transfer overhead ratio (ablations).
	MetricOverhead Metric = "overhead"

	MetricMedianDelayMin  Metric = "median_delay_min"
	MetricP95DelayMin     Metric = "p95_delay_min"
	MetricAvgHops         Metric = "avg_hops"
	MetricBufferOccupancy Metric = "buffer_occupancy"
	MetricContacts        Metric = "contacts"
	MetricTransfers       Metric = "transfers"
	MetricDropped         Metric = "dropped"
	MetricExpired         Metric = "expired"
)

// metricDef couples a metric's table label with its Result extractor.
type metricDef struct {
	label string
	value func(r sim.Result) float64
}

var metricDefs = map[Metric]metricDef{
	MetricAvgDelayMin:     {"average delay (minutes)", func(r sim.Result) float64 { return r.AvgDelay / 60 }},
	MetricDeliveryProb:    {"delivery probability", func(r sim.Result) float64 { return r.DeliveryProbability }},
	MetricOverhead:        {"overhead ratio", func(r sim.Result) float64 { return r.OverheadRatio }},
	MetricMedianDelayMin:  {"median delay (minutes)", func(r sim.Result) float64 { return r.MedianDelay / 60 }},
	MetricP95DelayMin:     {"p95 delay (minutes)", func(r sim.Result) float64 { return r.P95Delay / 60 }},
	MetricAvgHops:         {"average hops", func(r sim.Result) float64 { return r.AvgHops }},
	MetricBufferOccupancy: {"mean buffer occupancy", func(r sim.Result) float64 { return r.MeanBufferOccupancy }},
	MetricContacts:        {"contact count", func(r sim.Result) float64 { return float64(r.Contacts) }},
	MetricTransfers:       {"completed transfers", func(r sim.Result) float64 { return float64(r.TransfersCompleted) }},
	MetricDropped:         {"buffer drops", func(r sim.Result) float64 { return float64(r.Dropped) }},
	MetricExpired:         {"TTL expiries", func(r sim.Result) float64 { return float64(r.Expired) }},
}

// String returns the table label of the metric, or the raw identifier for
// an unknown one (render paths must not fail on data that already ran).
func (m Metric) String() string {
	if d, ok := metricDefs[m]; ok {
		return d.label
	}
	return string(m)
}

// Value extracts the metric from a run result. Unknown metrics are an
// error — callers in the runner surface it through RunE's error path
// instead of the panic the pre-Results harness raised.
func (m Metric) Value(r sim.Result) (float64, error) {
	d, ok := metricDefs[m]
	if !ok {
		return 0, fmt.Errorf("experiments: unknown metric %q (known: %v)", string(m), Metrics())
	}
	return d.value(r), nil
}

// valid reports whether the metric is known.
func (m Metric) valid() error {
	_, err := m.Value(sim.Result{})
	return err
}

// Metrics returns every known metric identifier, sorted.
func Metrics() []Metric {
	out := make([]Metric, 0, len(metricDefs))
	for m := range metricDefs {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
