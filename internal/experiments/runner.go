package experiments

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"vdtn/internal/sim"
)

// CellID identifies one cell of a sweep in progress reports.
type CellID struct {
	// Index is the cell's position in aggregation order; Total is the
	// sweep's cell count.
	Index, Total int
	// Series names the cell's series; X is the primary axis value; Grid
	// holds the secondary axis assignments (empty for single-axis
	// sweeps); Seed is the replication seed.
	Series string
	X      float64
	Grid   []Setting
	Seed   uint64
}

// Observer receives a running sweep's lifecycle events. Implementations
// are called from the runner's worker goroutines, but never concurrently:
// the runner serializes all observer calls, so a progress printer needs
// no locking of its own. Embed BaseObserver to implement only the events
// you care about.
type Observer interface {
	// SweepStarted fires once per Runner.Run, after validation, with the
	// normalized options and the total cell count.
	SweepStarted(exp Experiment, opt Options, cells int)
	// CellStarted and CellFinished bracket each cell's simulation;
	// elapsed is the cell's wall-clock time and err its failure (nil for
	// a clean run, the context error for a cancelled one).
	CellStarted(c CellID)
	CellFinished(c CellID, elapsed time.Duration, err error)
	// CacheEvent reports the sweep's contact-cache traffic: hits, disk
	// loads, and executed recording passes with their cost.
	CacheEvent(ev CacheEvent)
	// SweepFinished fires once per Runner.Run, after the sink is
	// finished, with the sweep's total wall-clock time and outcome.
	SweepFinished(exp Experiment, elapsed time.Duration, err error)
}

// BaseObserver is a no-op Observer for embedding: implementations
// override only the events they need.
type BaseObserver struct{}

func (BaseObserver) SweepStarted(Experiment, Options, int)          {}
func (BaseObserver) CellStarted(CellID)                             {}
func (BaseObserver) CellFinished(CellID, time.Duration, error)      {}
func (BaseObserver) CacheEvent(CacheEvent)                          {}
func (BaseObserver) SweepFinished(Experiment, time.Duration, error) {}

// Runner executes sweeps: the composable successor of the fire-and-forget
// Run/RunE calls. A Runner adds three capabilities on top of the worker
// pool they shared:
//
//   - cooperative cancellation: Run takes a context; cancelling it stops
//     in-flight cells at their next event-loop checkpoint and returns
//     ctx.Err(). The sink keeps every cell that completed and was
//     delivered — always complete, valid results, never torn ones.
//   - observation: the Observer hook sees cells start and finish (with
//     timing), contact-trace recording passes, and cache hits/misses.
//   - pluggable result storage: finished cells stream to a ResultSink in
//     aggregation order instead of accumulating in an implicit in-memory
//     store. MemorySink reproduces the old behavior; JSONLSink streams
//     to disk for sweeps too large for RAM; TeeSink combines sinks.
//
// The zero value runs with default options, no observer, and no sink
// (cells are simulated and discarded — useful only for smoke tests).
// A Runner is stateless across Run calls and may be reused; one Run call
// owns its sink for the duration of the sweep.
type Runner struct {
	// Options control replication, parallelism, scale and caching, as for
	// RunE. Zero seeds/scale fall back to the experiment's spec-level
	// defaults, then {1} and 1.
	Options Options
	// Observer, when non-nil, receives lifecycle events (serialized).
	Observer Observer
	// Sink, when non-nil, receives every finished cell in aggregation
	// order, then a Finish call that flushes it.
	Sink ResultSink
	// ResumeFrom, when non-nil, is the completed prefix of an earlier
	// interrupted run of the same sweep — what ReadJSONLPrefix recovers
	// from its JSONL stream. Run validates the prefix against the sweep's
	// aggregation order, re-delivers its cells to the Sink without
	// simulating them, and runs only the remaining cells. A sink appending
	// to the original stream skips the re-delivered prefix
	// (NewJSONLSinkResume), so the finished stream is byte-identical to an
	// uninterrupted run's; a fresh sink (MemorySink) receives the full
	// sweep and renders complete results.
	ResumeFrom *SweepPrefix
}

// observed serializes observer delivery; the zero value with a nil
// observer discards events.
type observed struct {
	mu  sync.Mutex
	obs Observer
}

func (o *observed) cellStarted(c CellID) {
	if o.obs == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.obs.CellStarted(c)
}

func (o *observed) cellFinished(c CellID, elapsed time.Duration, err error) {
	if o.obs == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.obs.CellFinished(c, elapsed, err)
}

func (o *observed) cacheEvent(ev CacheEvent) {
	if o.obs == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.obs.CacheEvent(ev)
}

// cacheNote returns the cache-event hook to thread into the contact
// cache, nil when nobody listens (the cache skips event construction
// entirely then).
func (o *observed) cacheNote() func(CacheEvent) {
	if o.obs == nil {
		return nil
	}
	return o.cacheEvent
}

// delivery hands finished cells to the sink in aggregation order: workers
// complete cells out of order, so completed cells park in pending until
// the contiguous prefix reaches them. The sink therefore always observes
// a deterministic byte-stable stream, and a cancelled or failed sweep's
// sink holds a clean prefix of complete cells.
type delivery struct {
	mu      sync.Mutex
	sink    ResultSink
	exp     Experiment
	next    int
	pending map[int]sim.Result
	err     error // first sink error; poisons further delivery
	jobs    []job
}

// deliver stashes cell ji's result and drains the contiguous prefix into
// the sink. A sink error is sticky and returned to the caller so the
// sweep aborts.
func (d *delivery) deliver(ji int, r sim.Result) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	if d.sink == nil {
		// No sink: cells are discarded, not parked — a sweep without a
		// sink must not accumulate every Result in the reorder buffer.
		return nil
	}
	if d.pending == nil {
		d.pending = make(map[int]sim.Result)
	}
	d.pending[ji] = r
	for {
		r, ok := d.pending[d.next]
		if !ok {
			return nil
		}
		delete(d.pending, d.next)
		if err := d.sink.Cell(cellResult(d.exp, d.jobs[d.next], r)); err != nil {
			d.err = err
			return err
		}
		d.next++
	}
}

// Run executes exp to completion, cancellation, or first failure.
//
// Cells run on a worker pool, each simulated under ctx (cancellation
// stops a cell between two events, never inside one). Finished cells are
// delivered to the Sink in aggregation order — series-major, then grid
// combination, then x, then seed — regardless of completion order, so
// sink output is deterministic. On cancellation or a cell failure the
// sink receives the contiguous prefix of completed cells and is then
// finished with the run's error; cells that completed beyond a gap in
// the prefix are discarded rather than delivered out of order.
//
// The returned error is nil for a complete sweep, ctx.Err() for a
// cancelled one, the first failing cell's coordinate-stamped error for a
// failed one, or the sink's error if storing a cell failed.
//
// With ResumeFrom set, the prefix cells are delivered to the sink first
// (cheap — no simulation) and the worker pool starts at the first missing
// cell; a prefix that does not match the sweep is rejected before any
// cell runs.
func (r *Runner) Run(ctx context.Context, exp Experiment) (err error) {
	start := time.Now()
	obs := &observed{obs: r.Observer}
	opt := r.Options.normalizedFor(exp)
	if err := exp.validate(); err != nil {
		return err
	}
	jobs := cellJobs(exp, opt)
	resume := 0
	if r.ResumeFrom != nil {
		if err := r.ResumeFrom.validateFor(exp, opt, jobs); err != nil {
			return err
		}
		resume = len(r.ResumeFrom.Cells)
	}
	if obs.obs != nil {
		obs.obs.SweepStarted(exp, opt, len(jobs))
		defer func() { obs.obs.SweepFinished(exp, time.Since(start), err) }()
	}
	if r.Sink != nil {
		if err := r.Sink.Start(exp, opt); err != nil {
			return err
		}
	}
	runErr := r.deliverPrefix()
	if runErr == nil {
		runErr = r.runCells(ctx, exp, opt, jobs, obs, resume)
	}
	if r.Sink != nil {
		if ferr := r.Sink.Finish(runErr); ferr != nil && runErr == nil {
			runErr = ferr
		}
	}
	return runErr
}

// deliverPrefix replays the resumed prefix into the sink before any
// worker starts, so sinks observe the same aggregation-order stream an
// uninterrupted run delivers. A resuming JSONL sink counts these without
// re-writing them; fresh sinks store them like any other cell.
func (r *Runner) deliverPrefix() error {
	if r.ResumeFrom == nil || r.Sink == nil {
		return nil
	}
	for _, c := range r.ResumeFrom.Cells {
		if err := r.Sink.Cell(c); err != nil {
			return err
		}
	}
	return nil
}

// runCells drives the worker pool between Sink.Start and Sink.Finish,
// over the jobs from index resume on.
func (r *Runner) runCells(ctx context.Context, exp Experiment, opt Options, jobs []job, obs *observed, resume int) error {
	// Warm the cache concurrently with cell execution: the prewarm pool
	// records distinct (scenario, seed) traces the cell workers have not
	// reached yet, so recordings run in parallel instead of serializing
	// behind first-touch single-flight — without a barrier that would keep
	// early cells from overlapping the remaining recording passes.
	// Prewarm failures are deliberately dropped: the cache memoizes each
	// key's error, so the failing cell reports it below with its full
	// coordinates instead of a bare fingerprint. The failed flag doubles
	// as the pool's stop signal, so a dead or cancelled sweep does not
	// keep recording traces nobody will use.
	var failed atomic.Bool
	stop := func() bool { return failed.Load() || ctx.Err() != nil }
	var prewarmed chan struct{}
	if opt.ContactCache != nil && !opt.LazyRecord {
		var cfgs []sim.Config
		// Resumed cells are already on disk and never simulate, so only the
		// remaining cells' traces are worth recording.
		for _, j := range jobs[resume:] {
			// A cell whose config cannot materialize is skipped here; its
			// worker reports the error with full coordinates below.
			if cfg, err := cellConfig(exp, opt, j); err == nil && cfg.Plan == nil && cfg.ContactSource == sim.ContactLive {
				cfgs = append(cfgs, cfg)
			}
		}
		prewarmed = make(chan struct{})
		go func() {
			defer close(prewarmed)
			_ = opt.ContactCache.prewarm(ctx, cfgs, opt.Workers, stop, obs.cacheNote())
		}()
	}

	sink := &delivery{sink: r.Sink, exp: exp, jobs: jobs, next: resume}
	errs := make([]error, len(jobs))
	note := obs.cacheNote()

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range next {
				// After the first failure (or cancellation) the sweep is
				// dead either way, so remaining cells are drained, not
				// simulated — a bad first cell must not cost the whole
				// sweep's wall clock.
				if stop() {
					continue
				}
				j := jobs[ji]
				id := CellID{
					Index:  ji,
					Total:  len(jobs),
					Series: exp.Scenarios[j.scenario].Name,
					X:      exp.Xs[j.xi],
					Grid:   exp.comboSettings(j.combo),
					Seed:   j.seed,
				}
				obs.cellStarted(id)
				cellStart := time.Now()
				res, err := runCell(ctx, exp, opt, j, note)
				obs.cellFinished(id, time.Since(cellStart), err)
				if err != nil {
					// Cancellation is the sweep's outcome, not the cell's
					// failure: it is reported once below as ctx.Err(), not
					// with one arbitrary cell's coordinates.
					if ctx.Err() == nil {
						errs[ji] = cellErrorf(exp, j, err)
					}
					failed.Store(true)
					continue
				}
				if err := sink.deliver(ji, res); err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for ji := resume; ji < len(jobs); ji++ {
		next <- ji
	}
	close(next)
	wg.Wait()
	if prewarmed != nil {
		// On success every key is memoized and the pool finishes
		// immediately; on failure the failed flag makes it skip whatever it
		// had not started. Either way the wait only keeps its goroutines
		// from outliving the run.
		<-prewarmed
	}

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	return sink.err
}
