package experiments

import (
	"strings"
	"testing"

	"vdtn/internal/roadmap"
	"vdtn/internal/sim"
	"vdtn/internal/units"
)

// tinyBase returns a very small scenario so harness tests stay fast.
func tinyBase() sim.Config {
	c := sim.DefaultConfig()
	c.Duration = units.Minutes(40)
	c.Map = roadmap.Grid(5, 5, 250)
	c.Vehicles = 8
	c.Relays = 1
	c.VehicleBuffer = units.MB(10)
	c.RelayBuffer = units.MB(20)
	c.TTL = units.Minutes(20)
	return c
}

func tinyExperiment() Experiment {
	return Experiment{
		ID:     "tiny",
		Title:  "harness test",
		XLabel: "ttl(min)",
		Xs:     []float64{10, 20},
		Metric: MetricDeliveryProb,
		Scenarios: []Scenario{
			{Name: "FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
			{Name: "Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
		},
		Apply: func(c *sim.Config, x float64) { c.TTL = units.Minutes(x) },
	}
}

func TestCatalogIntegrity(t *testing.T) {
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalog has %d experiments, want the 6 figures + 4 ablations", len(cat))
	}
	seen := map[string]bool{}
	for _, e := range cat {
		if e.ID == "" || e.Title == "" || e.XLabel == "" {
			t.Fatalf("experiment %+v missing identification", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if len(e.Xs) == 0 || len(e.Scenarios) == 0 || e.Apply == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if !seen[id] {
			t.Fatalf("catalog missing paper figure %s", id)
		}
	}
}

func TestPaperFiguresUsePaperTTLs(t *testing.T) {
	want := []float64{60, 90, 120, 150, 180}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		if len(e.Xs) != len(want) {
			t.Fatalf("%s sweeps %v, want %v", id, e.Xs, want)
		}
		for i := range want {
			if e.Xs[i] != want[i] {
				t.Fatalf("%s sweeps %v, want %v", id, e.Xs, want)
			}
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("fig4 not found")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("found nonexistent experiment")
	}
	ids := IDs()
	if len(ids) != len(Catalog()) {
		t.Fatal("IDs() length mismatch")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs() not sorted")
		}
	}
}

func TestMetricValues(t *testing.T) {
	r := sim.Result{}
	r.AvgDelay = 600
	r.DeliveryProbability = 0.5
	r.OverheadRatio = 3
	if got := MetricAvgDelayMin.value(r); got != 10 {
		t.Fatalf("delay metric = %v, want 10 minutes", got)
	}
	if got := MetricDeliveryProb.value(r); got != 0.5 {
		t.Fatalf("prob metric = %v", got)
	}
	if got := MetricOverhead.value(r); got != 3 {
		t.Fatalf("overhead metric = %v", got)
	}
}

func TestRunAggregates(t *testing.T) {
	tbl := Run(tinyExperiment(), Options{
		Seeds:      []uint64{1, 2, 3},
		BaseConfig: tinyBase,
	})
	if len(tbl.Series) != 2 {
		t.Fatalf("series count = %d", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		if len(s.Cells) != 2 {
			t.Fatalf("series %s has %d cells", s.Name, len(s.Cells))
		}
		for _, c := range s.Cells {
			if c.Summary.N != 3 {
				t.Fatalf("cell aggregated %d runs, want 3", c.Summary.N)
			}
			if c.Summary.Mean < 0 || c.Summary.Mean > 1 {
				t.Fatalf("delivery probability %v out of range", c.Summary.Mean)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := func(workers int) Options {
		return Options{Seeds: []uint64{1, 2}, Workers: workers, BaseConfig: tinyBase}
	}
	serial := Run(tinyExperiment(), opts(1))
	parallel := Run(tinyExperiment(), opts(8))
	for si := range serial.Series {
		for ci := range serial.Series[si].Cells {
			a := serial.Series[si].Cells[ci].Summary
			b := parallel.Series[si].Cells[ci].Summary
			if a != b {
				t.Fatalf("worker count changed results: %+v vs %+v", a, b)
			}
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	tbl := Run(tinyExperiment(), Options{Seeds: []uint64{1}, BaseConfig: tinyBase})
	text := tbl.Render()
	for _, want := range []string{"tiny", "ttl(min)", "FIFO-FIFO", "Lifetime", "10", "20"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Render() missing %q:\n%s", want, text)
		}
	}
	csv := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "experiment,x,series,mean,ci95,n" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	// 2 series x 2 x-values = 4 data rows.
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv)
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "tiny,") {
			t.Fatalf("CSV row %q missing experiment id", l)
		}
	}
}

func TestScaleShortensRuns(t *testing.T) {
	exp := tinyExperiment()
	exp.Xs = []float64{20}
	full := Run(exp, Options{Seeds: []uint64{1}, BaseConfig: tinyBase})
	_ = full
	// Scale is applied to duration; a scaled run must still work and
	// produce fewer created messages, which we can only observe through
	// the metric staying in range here.
	scaled := Run(exp, Options{Seeds: []uint64{1}, Scale: 0.5, BaseConfig: tinyBase})
	if got := scaled.Series[0].Cells[0].Summary.Mean; got < 0 || got > 1 {
		t.Fatalf("scaled run metric out of range: %v", got)
	}
	if !strings.Contains(scaled.Render(), "scaled run") {
		t.Fatal("Render does not flag scaled runs")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if len(o.Seeds) != 1 || o.Seeds[0] != 1 {
		t.Fatalf("default seeds = %v", o.Seeds)
	}
	if o.Workers < 1 {
		t.Fatalf("default workers = %d", o.Workers)
	}
	if o.Scale != 1 {
		t.Fatalf("default scale = %v", o.Scale)
	}
	if o.BaseConfig == nil {
		t.Fatal("default base config nil")
	}
}
