package experiments

import (
	"strings"
	"testing"

	"vdtn/internal/roadmap"
	"vdtn/internal/scenario"
	"vdtn/internal/sim"
	"vdtn/internal/units"
)

// tinyBase returns a very small scenario so harness tests stay fast.
func tinyBase() sim.Config {
	c := sim.DefaultConfig()
	c.Duration = units.Minutes(40)
	c.Map = roadmap.Grid(5, 5, 250)
	c.Vehicles = 8
	c.Relays = 1
	c.VehicleBuffer = units.MB(10)
	c.RelayBuffer = units.MB(20)
	c.TTL = units.Minutes(20)
	return c
}

func tinyExperiment() Experiment {
	return Experiment{
		ID:     "tiny",
		Title:  "harness test",
		Axis:   "ttl_min",
		Xs:     []float64{10, 20},
		Metric: MetricDeliveryProb,
		Scenarios: []Scenario{
			{Name: "FIFO-FIFO", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyFIFOFIFO},
			{Name: "Lifetime", Protocol: sim.ProtoEpidemic, Policy: sim.PolicyLifetime},
		},
	}
}

func TestCatalogIntegrity(t *testing.T) {
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalog has %d experiments, want the 6 figures + 4 ablations", len(cat))
	}
	seen := map[string]bool{}
	for _, e := range cat {
		if e.ID == "" || e.Title == "" {
			t.Fatalf("experiment %+v missing identification", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if err := e.validate(); err != nil {
			t.Fatalf("experiment %s invalid: %v", e.ID, err)
		}
		if _, ok := scenario.AxisByName(e.Axis); !ok {
			t.Fatalf("experiment %s sweeps unregistered axis %q", e.ID, e.Axis)
		}
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if !seen[id] {
			t.Fatalf("catalog missing paper figure %s", id)
		}
	}
}

func TestPaperFiguresUsePaperTTLs(t *testing.T) {
	want := []float64{60, 90, 120, 150, 180}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		if e.Axis != "ttl_min" {
			t.Fatalf("%s sweeps axis %q, want ttl_min", id, e.Axis)
		}
		if len(e.Xs) != len(want) {
			t.Fatalf("%s sweeps %v, want %v", id, e.Xs, want)
		}
		for i := range want {
			if e.Xs[i] != want[i] {
				t.Fatalf("%s sweeps %v, want %v", id, e.Xs, want)
			}
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("fig4 not found")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("found nonexistent experiment")
	}
	ids := IDs()
	if len(ids) != len(Catalog()) {
		t.Fatal("IDs() length mismatch")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs() not sorted")
		}
	}
}

func TestMetricValues(t *testing.T) {
	r := sim.Result{}
	r.AvgDelay = 600
	r.DeliveryProbability = 0.5
	r.OverheadRatio = 3
	r.MeanBufferOccupancy = 0.25
	r.TransfersCompleted = 7
	for m, want := range map[Metric]float64{
		MetricAvgDelayMin:     10,
		MetricDeliveryProb:    0.5,
		MetricOverhead:        3,
		MetricBufferOccupancy: 0.25,
		MetricTransfers:       7,
	} {
		got, err := m.Value(r)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", m, got, want)
		}
	}
}

// TestUnknownMetricIsErrorNotPanic pins the satellite fix: an unknown
// metric travels RunE's error path instead of panicking a worker.
func TestUnknownMetricIsErrorNotPanic(t *testing.T) {
	if _, err := Metric("nonsense").Value(sim.Result{}); err == nil {
		t.Fatal("unknown metric extracted a value")
	}
	exp := tinyExperiment()
	exp.Metric = "nonsense"
	if _, err := RunE(exp, Options{BaseConfig: tinyBase}); err == nil || !strings.Contains(err.Error(), "nonsense") {
		t.Fatalf("RunE error = %v, want unknown-metric", err)
	}
	res, err := RunE(tinyExperiment(), Options{BaseConfig: tinyBase})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Table("nonsense"); err == nil {
		t.Fatal("Table rendered an unknown metric")
	}
}

// TestUnknownAxisIsError: a bad axis name is rejected before any cell
// runs, and settings with bad axes surface through the cell error path.
func TestUnknownAxisIsError(t *testing.T) {
	exp := tinyExperiment()
	exp.Axis = "warp_factor"
	if _, err := RunE(exp, Options{BaseConfig: tinyBase}); err == nil || !strings.Contains(err.Error(), "warp_factor") {
		t.Fatalf("RunE error = %v, want unknown-axis", err)
	}
	exp = tinyExperiment()
	exp.Scenarios[0].Set = []Setting{{Axis: "warp_factor", Value: 9}}
	_, err := RunE(exp, Options{BaseConfig: tinyBase})
	if err == nil || !strings.Contains(err.Error(), "warp_factor") || !strings.Contains(err.Error(), "series") {
		t.Fatalf("RunE error = %v, want unknown-axis with cell coordinates", err)
	}
}

func TestRunAggregates(t *testing.T) {
	tbl := mustRun(t, tinyExperiment(), Options{
		Seeds:      []uint64{1, 2, 3},
		BaseConfig: tinyBase,
	})
	if len(tbl.Series) != 2 {
		t.Fatalf("series count = %d", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		if len(s.Cells) != 2 {
			t.Fatalf("series %s has %d cells", s.Name, len(s.Cells))
		}
		for _, c := range s.Cells {
			if c.Summary.N != 3 {
				t.Fatalf("cell aggregated %d runs, want 3", c.Summary.N)
			}
			if c.Summary.Mean < 0 || c.Summary.Mean > 1 {
				t.Fatalf("delivery probability %v out of range", c.Summary.Mean)
			}
		}
	}
}

// TestResultsKeepFullCells: every cell carries the complete sim.Result,
// and any metric view renders from the same finished sweep.
func TestResultsKeepFullCells(t *testing.T) {
	exp := tinyExperiment()
	opt := Options{Seeds: []uint64{1, 2}, BaseConfig: tinyBase}
	res, err := RunE(exp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(exp.Scenarios) * len(exp.Xs) * 2; len(res.Cells) != want {
		t.Fatalf("stored %d cells, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if c.Result.Created == 0 {
			t.Fatalf("cell (%s, x=%v, seed %d) stored an empty Result", c.Series, c.X, c.Seed)
		}
		if c.Result.Seed != c.Seed {
			t.Fatalf("cell seed %d carries Result.Seed %d", c.Seed, c.Result.Seed)
		}
	}
	// Every known metric renders without re-running.
	for _, m := range Metrics() {
		tbl, err := res.Table(m)
		if err != nil {
			t.Fatalf("Table(%s): %v", m, err)
		}
		if len(tbl.Series) != 2 || len(tbl.Series[0].Cells) != 2 {
			t.Fatalf("Table(%s) shape wrong", m)
		}
	}
	// The transfer-count view is consistent with the stored results.
	tbl, err := res.Table(MetricTransfers)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Series[0].Cells[0].Summary.Mean; got <= 0 {
		t.Fatalf("transfer metric mean = %v, want > 0", got)
	}
}

// TestResultsJSONArtifact: the machine-readable artifact carries the full
// per-seed results and every metric's aggregate.
func TestResultsJSONArtifact(t *testing.T) {
	res, err := RunE(tinyExperiment(), Options{Seeds: []uint64{1, 2}, BaseConfig: tinyBase})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"experiment": "tiny"`,
		`"axis": "ttl_min"`,
		`"axis_label": "ttl(min)"`,
		`"metric": "delivery_prob"`,
		`"delivery_probability"`,
		`"transfers_completed"`,
		`"avg_delay_min"`,
		`"seed": 2`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON artifact missing %q:\n%s", want, data)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := func(workers int) Options {
		return Options{Seeds: []uint64{1, 2}, Workers: workers, BaseConfig: tinyBase}
	}
	serial := mustRun(t, tinyExperiment(), opts(1))
	parallel := mustRun(t, tinyExperiment(), opts(8))
	for si := range serial.Series {
		for ci := range serial.Series[si].Cells {
			a := serial.Series[si].Cells[ci].Summary
			b := parallel.Series[si].Cells[ci].Summary
			if a != b {
				t.Fatalf("worker count changed results: %+v vs %+v", a, b)
			}
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	tbl := mustRun(t, tinyExperiment(), Options{Seeds: []uint64{1}, BaseConfig: tinyBase})
	text := tbl.Render()
	for _, want := range []string{"tiny", "ttl(min)", "FIFO-FIFO", "Lifetime", "10", "20"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Render() missing %q:\n%s", want, text)
		}
	}
	csv := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "experiment,metric,x,series,mean,ci95,n" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	// 2 series x 2 x-values = 4 data rows.
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv)
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "tiny,delivery_prob,") {
			t.Fatalf("CSV row %q missing experiment id + metric", l)
		}
	}
}

func TestScaleShortensRuns(t *testing.T) {
	exp := tinyExperiment()
	exp.Xs = []float64{20}
	full := mustRun(t, exp, Options{Seeds: []uint64{1}, BaseConfig: tinyBase})
	_ = full
	// Scale is applied to duration; a scaled run must still work and
	// produce fewer created messages, which we can only observe through
	// the metric staying in range here.
	scaled := mustRun(t, exp, Options{Seeds: []uint64{1}, Scale: 0.5, BaseConfig: tinyBase})
	if got := scaled.Series[0].Cells[0].Summary.Mean; got < 0 || got > 1 {
		t.Fatalf("scaled run metric out of range: %v", got)
	}
	if !strings.Contains(scaled.Render(), "scaled run") {
		t.Fatal("Render does not flag scaled runs")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if len(o.Seeds) != 1 || o.Seeds[0] != 1 {
		t.Fatalf("default seeds = %v", o.Seeds)
	}
	if o.Workers < 1 {
		t.Fatalf("default workers = %d", o.Workers)
	}
	if o.Scale != 1 {
		t.Fatalf("default scale = %v", o.Scale)
	}
	// Base resolution: explicit option first, then the experiment's own
	// base, then the paper defaults.
	exp := tinyExperiment()
	if got := o.base(exp)(); got.Vehicles != sim.DefaultConfig().Vehicles {
		t.Fatalf("default base vehicles = %d", got.Vehicles)
	}
	exp.Base = func() sim.Config { c := tinyBase(); c.Vehicles = 7; return c }
	if got := o.base(exp)(); got.Vehicles != 7 {
		t.Fatalf("experiment base not used: vehicles = %d", got.Vehicles)
	}
	o.BaseConfig = tinyBase
	if got := o.base(exp)(); got.Vehicles != 8 {
		t.Fatalf("options base not preferred: vehicles = %d", got.Vehicles)
	}
}
