//go:build unix

package experiments

import (
	"os"
	"path/filepath"
	"syscall"
)

// lockExclusive takes an advisory exclusive flock on path (creating the
// lock file — and its directory — if needed), blocking until the lock is
// granted, and returns the release function. The lock is best-effort by
// contract: every writer already lands its data via temp-file + rename,
// so a reader can never observe a torn file even unlocked; the flock only
// serializes writers against the GC so an eviction pass in one process
// cannot remove a shard another process is in the middle of installing
// and index-touching. Any failure to acquire therefore degrades to a
// no-op release rather than failing the caller.
func lockExclusive(path string) (unlock func()) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return func() {}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return func() {}
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return func() {}
	}
	// Closing the descriptor releases the flock even if LOCK_UN fails, so
	// a crashed holder never wedges the store: the kernel drops the lock
	// with the process.
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}
}
