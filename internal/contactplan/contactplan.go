// Package contactplan models explicit contact schedules: lists of time
// windows during which two nodes can communicate. A plan replaces radio
// propagation and mobility entirely — the simulator fires the scheduled
// contacts and everything above (routing, transfers, buffers) runs
// unchanged.
//
// Contact plans serve two audiences. Research users replay *recorded*
// vehicular connectivity traces (taxi GPS datasets, bus fleet logs, the
// ONE simulator's connectivity files) against the routing protocols.
// Tests use tiny hand-written plans to drive protocols through exact
// topologies — something proximity-driven scenarios cannot guarantee.
//
// The text format is line-oriented, one window per line:
//
//	# comment
//	<start-seconds> <end-seconds> <nodeA> <nodeB>
//
// matching the ONE's connectivity trace format in spirit.
package contactplan

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Contact is one scheduled window during which nodes A and B are linked.
type Contact struct {
	A, B       int
	Start, End float64
}

// normalize orders the pair so A < B.
func (c Contact) normalize() Contact {
	if c.A > c.B {
		c.A, c.B = c.B, c.A
	}
	return c
}

// Plan is a validated, time-ordered contact schedule.
// The zero value is an empty plan; build plans with New or Parse.
type Plan struct {
	contacts []Contact
	maxNode  int
	horizon  float64
}

// New validates and normalizes a contact list into a plan. Windows of the
// same pair that overlap or touch are merged. Errors: self-contacts,
// negative ids or times, and windows that do not end after they start.
func New(contacts []Contact) (*Plan, error) {
	cs := make([]Contact, 0, len(contacts))
	for i, c := range contacts {
		c = c.normalize()
		switch {
		case c.A == c.B:
			return nil, fmt.Errorf("contactplan: window %d is a self-contact of node %d", i, c.A)
		case c.A < 0:
			return nil, fmt.Errorf("contactplan: window %d has negative node id %d", i, c.A)
		case c.Start < 0:
			return nil, fmt.Errorf("contactplan: window %d starts at negative time %v", i, c.Start)
		case c.End <= c.Start:
			return nil, fmt.Errorf("contactplan: window %d ends at %v, not after start %v", i, c.End, c.Start)
		}
		cs = append(cs, c)
	}
	// Sort by pair then time so overlapping windows are adjacent.
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].A != cs[j].A {
			return cs[i].A < cs[j].A
		}
		if cs[i].B != cs[j].B {
			return cs[i].B < cs[j].B
		}
		return cs[i].Start < cs[j].Start
	})
	merged := make([]Contact, 0, len(cs))
	for _, c := range cs {
		if n := len(merged); n > 0 {
			prev := &merged[n-1]
			if prev.A == c.A && prev.B == c.B && c.Start <= prev.End {
				if c.End > prev.End {
					prev.End = c.End
				}
				continue
			}
		}
		merged = append(merged, c)
	}
	// Final order: by start time (the firing order), stable across pairs.
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Start != merged[j].Start {
			return merged[i].Start < merged[j].Start
		}
		if merged[i].A != merged[j].A {
			return merged[i].A < merged[j].A
		}
		return merged[i].B < merged[j].B
	})
	p := &Plan{contacts: merged}
	for _, c := range merged {
		if c.B > p.maxNode {
			p.maxNode = c.B
		}
		if c.End > p.horizon {
			p.horizon = c.End
		}
	}
	return p, nil
}

// Parse reads the text format (one "start end a b" line per window;
// blank lines and '#' comments ignored).
func Parse(text string) (*Plan, error) {
	var contacts []Contact
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("contactplan: line %d: want 'start end a b', got %q", lineNo+1, line)
		}
		start, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("contactplan: line %d: bad start %q", lineNo+1, fields[0])
		}
		end, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("contactplan: line %d: bad end %q", lineNo+1, fields[1])
		}
		a, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("contactplan: line %d: bad node %q", lineNo+1, fields[2])
		}
		b, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("contactplan: line %d: bad node %q", lineNo+1, fields[3])
		}
		contacts = append(contacts, Contact{A: a, B: b, Start: start, End: end})
	}
	return New(contacts)
}

// Windows returns the validated windows in firing order (copy).
func (p *Plan) Windows() []Contact {
	out := make([]Contact, len(p.contacts))
	copy(out, p.contacts)
	return out
}

// Len returns the number of (merged) windows.
func (p *Plan) Len() int { return len(p.contacts) }

// MaxNode returns the highest node id referenced; -1 for an empty plan.
func (p *Plan) MaxNode() int {
	if len(p.contacts) == 0 {
		return -1
	}
	return p.maxNode
}

// Horizon returns the end time of the last window.
func (p *Plan) Horizon() float64 { return p.horizon }

// Summary aggregates a plan for inspection: window and pair counts, the
// highest node id, the horizon, and total / mean window duration.
type Summary struct {
	Windows      int
	Pairs        int
	MaxNode      int
	Horizon      float64
	TotalContact float64 // summed window durations, seconds
	MeanWindow   float64 // mean window duration, seconds
}

// Summarize computes the plan's Summary.
func (p *Plan) Summarize() Summary {
	s := Summary{Windows: len(p.contacts), MaxNode: p.MaxNode(), Horizon: p.horizon}
	pairs := make(map[[2]int]bool)
	for _, c := range p.contacts {
		pairs[[2]int{c.A, c.B}] = true
		s.TotalContact += c.End - c.Start
	}
	s.Pairs = len(pairs)
	if s.Windows > 0 {
		s.MeanWindow = s.TotalContact / float64(s.Windows)
	}
	return s
}

// String renders the summary as a short multi-line report.
func (s Summary) String() string {
	return fmt.Sprintf("windows      %6d\npairs        %6d\nmax node     %6d\nhorizon      %9.1f s\ntotal contact%9.1f s\nmean window  %9.1f s",
		s.Windows, s.Pairs, s.MaxNode, s.Horizon, s.TotalContact, s.MeanWindow)
}

// Format renders the plan in the parseable text format.
func (p *Plan) Format() string {
	var sb strings.Builder
	sb.WriteString("# vdtn contact plan: start end nodeA nodeB\n")
	for _, c := range p.contacts {
		fmt.Fprintf(&sb, "%g %g %d %d\n", c.Start, c.End, c.A, c.B)
	}
	return sb.String()
}
