package contactplan

import (
	"strings"
	"testing"
)

func TestNewValidates(t *testing.T) {
	bad := map[string][]Contact{
		"self contact":  {{A: 1, B: 1, Start: 0, End: 10}},
		"negative id":   {{A: -1, B: 2, Start: 0, End: 10}},
		"negative time": {{A: 0, B: 1, Start: -5, End: 10}},
		"zero length":   {{A: 0, B: 1, Start: 10, End: 10}},
		"inverted":      {{A: 0, B: 1, Start: 10, End: 5}},
	}
	for name, cs := range bad {
		if _, err := New(cs); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewNormalizesAndSorts(t *testing.T) {
	p, err := New([]Contact{
		{A: 3, B: 1, Start: 50, End: 60}, // reversed pair
		{A: 0, B: 1, Start: 10, End: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := p.Windows()
	if ws[0].Start != 10 || ws[1].Start != 50 {
		t.Fatalf("not sorted by start: %v", ws)
	}
	if ws[1].A != 1 || ws[1].B != 3 {
		t.Fatalf("pair not normalized: %v", ws[1])
	}
}

func TestNewMergesOverlaps(t *testing.T) {
	p, err := New([]Contact{
		{A: 0, B: 1, Start: 10, End: 20},
		{A: 0, B: 1, Start: 15, End: 30}, // overlaps
		{A: 0, B: 1, Start: 30, End: 40}, // touches
		{A: 0, B: 1, Start: 50, End: 60}, // separate
		{A: 0, B: 2, Start: 12, End: 18}, // other pair untouched
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after merging: %v", p.Len(), p.Windows())
	}
	ws := p.Windows()
	if ws[0].Start != 10 || ws[0].End != 40 {
		t.Fatalf("merged window = %v, want [10,40]", ws[0])
	}
	if p.Horizon() != 60 {
		t.Fatalf("Horizon = %v", p.Horizon())
	}
	if p.MaxNode() != 2 {
		t.Fatalf("MaxNode = %v", p.MaxNode())
	}
}

func TestEmptyPlan(t *testing.T) {
	p, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 || p.MaxNode() != -1 || p.Horizon() != 0 {
		t.Fatalf("empty plan: %d, %d, %v", p.Len(), p.MaxNode(), p.Horizon())
	}
}

func TestParse(t *testing.T) {
	p, err := Parse(`
# bus line morning schedule
10 20 0 1
30.5 40 1 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.Windows()[1].Start != 30.5 {
		t.Fatalf("fractional start lost: %v", p.Windows()[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"wrong arity": "10 20 0",
		"bad start":   "x 20 0 1",
		"bad end":     "10 y 0 1",
		"bad node a":  "10 20 z 1",
		"bad node b":  "10 20 0 z",
		"self":        "10 20 3 3",
	}
	for name, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: Parse accepted %q", name, text)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p, err := New([]Contact{
		{A: 0, B: 1, Start: 10, End: 20},
		{A: 1, B: 2, Start: 30.25, End: 45},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := p.Format()
	if !strings.Contains(text, "30.25 45 1 2") {
		t.Fatalf("Format output:\n%s", text)
	}
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if p2.Len() != p.Len() {
		t.Fatal("round trip changed window count")
	}
	for i := range p.Windows() {
		if p.Windows()[i] != p2.Windows()[i] {
			t.Fatalf("round trip changed window %d", i)
		}
	}
}

func TestWindowsIsCopy(t *testing.T) {
	p, _ := New([]Contact{{A: 0, B: 1, Start: 1, End: 2}})
	ws := p.Windows()
	ws[0].Start = 99
	if p.Windows()[0].Start != 1 {
		t.Fatal("Windows aliases internal storage")
	}
}

func TestSummarize(t *testing.T) {
	p, err := New([]Contact{
		{A: 0, B: 1, Start: 0, End: 10},
		{A: 0, B: 1, Start: 20, End: 30},
		{A: 2, B: 5, Start: 5, End: 45},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Summarize()
	want := Summary{Windows: 3, Pairs: 2, MaxNode: 5, Horizon: 45, TotalContact: 60, MeanWindow: 20}
	if s != want {
		t.Fatalf("Summarize() = %+v, want %+v", s, want)
	}
	if (&Plan{}).Summarize() != (Summary{MaxNode: -1}) {
		t.Fatal("empty plan summary wrong")
	}
}
