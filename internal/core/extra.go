package core

import (
	"sort"

	"vdtn/internal/bundle"
)

// This file extends the paper's Table I with the other scheduling and
// dropping policies discussed in the DTN buffer-management literature the
// paper builds on (Lindgren & Phanse's evaluation of queueing policies,
// the ONE simulator's policy set). They are not part of the paper's
// evaluation, but they make the policy framework complete and feed the
// "ext-policies" ablation experiment.

// SizeASCSchedule transmits the smallest messages first, maximizing the
// number of messages exchanged during a short contact window.
type SizeASCSchedule struct{}

// Name implements SchedulingPolicy.
func (SizeASCSchedule) Name() string { return "SizeASC" }

// Order implements SchedulingPolicy.
func (SizeASCSchedule) Order(now float64, msgs []*bundle.Message) {
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].Size != msgs[j].Size {
			return msgs[i].Size < msgs[j].Size
		}
		return msgs[i].ID < msgs[j].ID
	})
}

// HopCountASCSchedule transmits the least-travelled messages first — a
// head start for young messages, the scheduling intuition MaxProp builds
// its below-threshold priority on.
type HopCountASCSchedule struct{}

// Name implements SchedulingPolicy.
func (HopCountASCSchedule) Name() string { return "HopASC" }

// Order implements SchedulingPolicy.
func (HopCountASCSchedule) Order(now float64, msgs []*bundle.Message) {
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].HopCount != msgs[j].HopCount {
			return msgs[i].HopCount < msgs[j].HopCount
		}
		return msgs[i].ID < msgs[j].ID
	})
}

// MOFODrop ("Most Forwarded First") evicts the replica this node has
// relayed the most times: it has had the most chances to spread, so
// sacrificing it costs the least residual delivery value (Lindgren &
// Phanse 2006).
type MOFODrop struct{}

// Name implements DropPolicy.
func (MOFODrop) Name() string { return "MOFO" }

// Victim implements DropPolicy.
func (MOFODrop) Victim(now float64, msgs []*bundle.Message) int {
	best := 0
	for i, m := range msgs[1:] {
		j := i + 1
		if m.Forwards > msgs[best].Forwards ||
			(m.Forwards == msgs[best].Forwards && m.ID < msgs[best].ID) {
			best = j
		}
	}
	return best
}

// SizeDESCDrop evicts the largest message first, freeing the most space
// per eviction.
type SizeDESCDrop struct{}

// Name implements DropPolicy.
func (SizeDESCDrop) Name() string { return "SizeDESC" }

// Victim implements DropPolicy.
func (SizeDESCDrop) Victim(now float64, msgs []*bundle.Message) int {
	best := 0
	for i, m := range msgs[1:] {
		j := i + 1
		if m.Size > msgs[best].Size ||
			(m.Size == msgs[best].Size && m.ID < msgs[best].ID) {
			best = j
		}
	}
	return best
}

// OldestAgeDrop evicts the message created longest ago (distinct from
// FIFO drop-head, which keys on buffer arrival at *this* node, and from
// LifetimeASC, which keys on remaining TTL — the three coincide only when
// all messages share one TTL and were received where they were created).
type OldestAgeDrop struct{}

// Name implements DropPolicy.
func (OldestAgeDrop) Name() string { return "OldestAge" }

// Victim implements DropPolicy.
func (OldestAgeDrop) Victim(now float64, msgs []*bundle.Message) int {
	best := 0
	for i, m := range msgs[1:] {
		j := i + 1
		if m.Created < msgs[best].Created ||
			(m.Created == msgs[best].Created && m.ID < msgs[best].ID) {
			best = j
		}
	}
	return best
}

// ExtendedPolicies returns the literature policy pairs beyond Table I,
// for the ext-policies ablation: each pairs a scheduling rationale with
// its natural dropping counterpart.
func ExtendedPolicies() []Policy {
	return []Policy{
		{Schedule: SizeASCSchedule{}, Drop: SizeDESCDrop{}},
		{Schedule: HopCountASCSchedule{}, Drop: MOFODrop{}},
		{Schedule: FIFOSchedule{}, Drop: OldestAgeDrop{}},
	}
}
