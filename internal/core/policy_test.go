package core

import (
	"testing"
	"testing/quick"

	"vdtn/internal/bundle"
	"vdtn/internal/units"
	"vdtn/internal/xrand"
)

// mk builds a message replica with the fields the policies key on.
func mk(id bundle.ID, receivedAt, created, ttl float64) *bundle.Message {
	m := bundle.New(id, 0, 1, units.KB(500), created, ttl)
	m.ReceivedAt = receivedAt
	return m
}

func ids(msgs []*bundle.Message) []bundle.ID {
	out := make([]bundle.ID, len(msgs))
	for i, m := range msgs {
		out[i] = m.ID
	}
	return out
}

func TestFIFOScheduleOrdersByArrival(t *testing.T) {
	msgs := []*bundle.Message{
		mk(1, 300, 0, 3600),
		mk(2, 100, 0, 3600),
		mk(3, 200, 0, 3600),
	}
	FIFOSchedule{}.Order(500, msgs)
	want := []bundle.ID{2, 3, 1}
	for i, id := range ids(msgs) {
		if id != want[i] {
			t.Fatalf("FIFO order = %v, want %v", ids(msgs), want)
		}
	}
}

func TestFIFOScheduleTieBreaksOnID(t *testing.T) {
	msgs := []*bundle.Message{
		mk(9, 100, 0, 3600),
		mk(2, 100, 0, 3600),
		mk(5, 100, 0, 3600),
	}
	FIFOSchedule{}.Order(500, msgs)
	want := []bundle.ID{2, 5, 9}
	for i, id := range ids(msgs) {
		if id != want[i] {
			t.Fatalf("tie-break order = %v, want %v", ids(msgs), want)
		}
	}
}

func TestLifetimeDESCOrdersByRemainingTTL(t *testing.T) {
	now := 1000.0
	msgs := []*bundle.Message{
		mk(1, 0, 500, units.Minutes(30)), // expires 2300, remaining 1300
		mk(2, 0, 0, units.Minutes(90)),   // expires 5400, remaining 4400
		mk(3, 0, 900, units.Minutes(10)), // expires 1500, remaining 500
	}
	LifetimeDESCSchedule{}.Order(now, msgs)
	want := []bundle.ID{2, 1, 3} // longest remaining TTL first
	for i, id := range ids(msgs) {
		if id != want[i] {
			t.Fatalf("LifetimeDESC order = %v, want %v", ids(msgs), want)
		}
	}
}

func TestLifetimeDESCIsTimeDependent(t *testing.T) {
	// Ordering is on *remaining* TTL, so it is a function of now: a young
	// short-TTL message can outrank an old long-TTL one, but the relative
	// order of two messages never changes as time passes (both age at the
	// same rate) — verify the policy uses remaining lifetime, not total TTL.
	a := mk(1, 0, 0, units.Minutes(60))    // expires 3600
	b := mk(2, 0, 3000, units.Minutes(20)) // expires 4200
	msgs := []*bundle.Message{a, b}
	LifetimeDESCSchedule{}.Order(3500, msgs)
	if msgs[0].ID != 2 {
		t.Fatalf("remaining-TTL ordering wrong: got %v first (total-TTL ordering?)", msgs[0].ID)
	}
}

func TestRandomScheduleIsPermutation(t *testing.T) {
	rng := xrand.New(1)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		msgs := make([]*bundle.Message, n)
		for i := range msgs {
			msgs[i] = mk(bundle.ID(i+1), float64(i), 0, 3600)
		}
		RandomSchedule{Rng: rng}.Order(0, msgs)
		seen := map[bundle.ID]bool{}
		for _, m := range msgs {
			if seen[m.ID] {
				return false
			}
			seen[m.ID] = true
		}
		return len(seen) == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomScheduleReproducible(t *testing.T) {
	build := func() []*bundle.Message {
		var msgs []*bundle.Message
		for i := 1; i <= 10; i++ {
			msgs = append(msgs, mk(bundle.ID(i), float64(100-i), 0, 3600))
		}
		return msgs
	}
	m1, m2 := build(), build()
	RandomSchedule{Rng: xrand.New(7)}.Order(0, m1)
	RandomSchedule{Rng: xrand.New(7)}.Order(0, m2)
	for i := range m1 {
		if m1[i].ID != m2[i].ID {
			t.Fatal("RandomSchedule not reproducible for equal streams")
		}
	}
}

func TestRandomScheduleCallerOrderIndependent(t *testing.T) {
	// The shuffled result must not depend on the incoming slice order,
	// only on the message set and the stream.
	a := []*bundle.Message{mk(1, 10, 0, 60), mk(2, 20, 0, 60), mk(3, 30, 0, 60)}
	b := []*bundle.Message{a[2], a[0], a[1]}
	a2 := append([]*bundle.Message(nil), a...)
	RandomSchedule{Rng: xrand.New(3)}.Order(0, a2)
	RandomSchedule{Rng: xrand.New(3)}.Order(0, b)
	for i := range a2 {
		if a2[i].ID != b[i].ID {
			t.Fatal("RandomSchedule depends on caller slice order")
		}
	}
}

func TestRandomScheduleNilRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil rng did not panic")
		}
	}()
	RandomSchedule{}.Order(0, []*bundle.Message{mk(1, 0, 0, 60)})
}

func TestFIFODropPicksOldest(t *testing.T) {
	msgs := []*bundle.Message{
		mk(1, 300, 0, 3600),
		mk(2, 100, 0, 3600),
		mk(3, 200, 0, 3600),
	}
	if got := (FIFODrop{}).Victim(500, msgs); msgs[got].ID != 2 {
		t.Fatalf("FIFODrop chose %v, want M2 (oldest arrival)", msgs[got].ID)
	}
}

func TestLifetimeASCDropPicksSoonestExpiring(t *testing.T) {
	now := 1000.0
	msgs := []*bundle.Message{
		mk(1, 0, 500, units.Minutes(30)),
		mk(2, 0, 0, units.Minutes(90)),
		mk(3, 0, 900, units.Minutes(10)), // expires first
	}
	if got := (LifetimeASCDrop{}).Victim(now, msgs); msgs[got].ID != 3 {
		t.Fatalf("LifetimeASCDrop chose %v, want M3", msgs[got].ID)
	}
}

func TestDropPoliciesSingleMessage(t *testing.T) {
	msgs := []*bundle.Message{mk(1, 0, 0, 60)}
	if got := (FIFODrop{}).Victim(0, msgs); got != 0 {
		t.Fatalf("FIFODrop on singleton = %d", got)
	}
	if got := (LifetimeASCDrop{}).Victim(0, msgs); got != 0 {
		t.Fatalf("LifetimeASCDrop on singleton = %d", got)
	}
}

func TestDropPolicyDeterministicTieBreak(t *testing.T) {
	msgs := []*bundle.Message{
		mk(5, 100, 0, 3600),
		mk(2, 100, 0, 3600),
	}
	if got := (FIFODrop{}).Victim(0, msgs); msgs[got].ID != 2 {
		t.Fatal("FIFODrop tie-break not by ID")
	}
	if got := (LifetimeASCDrop{}).Victim(0, msgs); msgs[got].ID != 2 {
		t.Fatal("LifetimeASCDrop tie-break not by ID")
	}
}

// Property: LifetimeDESC scheduling and LifetimeASC dropping are exact
// opposites — the message scheduled last is the drop victim.
func TestLifetimePoliciesAreDuals(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		rng := xrand.New(seed)
		msgs := make([]*bundle.Message, n)
		for i := range msgs {
			msgs[i] = mk(bundle.ID(i+1), 0, rng.Float64()*1000, 60+rng.Float64()*10000)
		}
		now := 1500.0
		victim := msgs[LifetimeASCDrop{}.Victim(now, msgs)]
		LifetimeDESCSchedule{}.Order(now, msgs)
		return msgs[len(msgs)-1].ID == victim.ID
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNames(t *testing.T) {
	rng := xrand.New(1)
	cases := []struct {
		p    Policy
		want string
	}{
		{FIFOFIFO(), "FIFO-FIFO"},
		{RandomFIFO(rng), "Random-FIFO"},
		{Lifetime(), "LifetimeDESC-LifetimeASC"},
	}
	for _, c := range cases {
		if got := c.p.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

// TestPolicyTable prints the paper's Table I (combined scheduling-dropping
// policies); run with -v to see it. It also checks the table has exactly
// the three rows the paper evaluates.
func TestPolicyTable(t *testing.T) {
	table := TableI(xrand.New(1))
	if len(table) != 3 {
		t.Fatalf("Table I has %d rows, want 3", len(table))
	}
	t.Log("TABLE I. COMBINED SCHEDULING - DROPPING POLICIES")
	for _, p := range table {
		t.Logf("  %s - %s", p.Schedule.Name(), p.Drop.Name())
	}
	want := []string{"FIFO-FIFO", "Random-FIFO", "LifetimeDESC-LifetimeASC"}
	for i, p := range table {
		if p.Name() != want[i] {
			t.Fatalf("row %d = %q, want %q", i, p.Name(), want[i])
		}
	}
}
