package core

import (
	"testing"
	"testing/quick"

	"vdtn/internal/bundle"
	"vdtn/internal/units"
	"vdtn/internal/xrand"
)

func TestSizeASCScheduleOrder(t *testing.T) {
	msgs := []*bundle.Message{
		bundle.New(1, 0, 1, units.MB(2), 0, 3600),
		bundle.New(2, 0, 1, units.KB(500), 0, 3600),
		bundle.New(3, 0, 1, units.MB(1), 0, 3600),
	}
	SizeASCSchedule{}.Order(0, msgs)
	want := []bundle.ID{2, 3, 1}
	for i, m := range msgs {
		if m.ID != want[i] {
			t.Fatalf("SizeASC order = %v, want %v", ids(msgs), want)
		}
	}
}

func TestHopCountASCScheduleOrder(t *testing.T) {
	a := mk(1, 0, 0, 3600)
	a.HopCount = 5
	b := mk(2, 0, 0, 3600)
	b.HopCount = 0
	c := mk(3, 0, 0, 3600)
	c.HopCount = 2
	msgs := []*bundle.Message{a, b, c}
	HopCountASCSchedule{}.Order(0, msgs)
	want := []bundle.ID{2, 3, 1}
	for i, m := range msgs {
		if m.ID != want[i] {
			t.Fatalf("HopASC order = %v, want %v", ids(msgs), want)
		}
	}
}

func TestMOFODropPicksMostForwarded(t *testing.T) {
	a := mk(1, 0, 0, 3600)
	a.Forwards = 1
	b := mk(2, 0, 0, 3600)
	b.Forwards = 7
	c := mk(3, 0, 0, 3600)
	msgs := []*bundle.Message{a, b, c}
	if got := (MOFODrop{}).Victim(0, msgs); msgs[got].ID != 2 {
		t.Fatalf("MOFO chose %v, want M2", msgs[got].ID)
	}
}

func TestMOFODropTieBreaksOnID(t *testing.T) {
	a := mk(5, 0, 0, 3600)
	b := mk(2, 0, 0, 3600)
	msgs := []*bundle.Message{a, b}
	if got := (MOFODrop{}).Victim(0, msgs); msgs[got].ID != 2 {
		t.Fatal("MOFO tie-break not by ID")
	}
}

func TestSizeDESCDropPicksLargest(t *testing.T) {
	msgs := []*bundle.Message{
		bundle.New(1, 0, 1, units.MB(1), 0, 3600),
		bundle.New(2, 0, 1, units.MB(2), 0, 3600),
		bundle.New(3, 0, 1, units.KB(700), 0, 3600),
	}
	if got := (SizeDESCDrop{}).Victim(0, msgs); msgs[got].ID != 2 {
		t.Fatalf("SizeDESC chose %v, want M2", msgs[got].ID)
	}
}

func TestOldestAgeDropPicksOldestCreation(t *testing.T) {
	msgs := []*bundle.Message{
		mk(1, 900, 300, 3600), // created at 300
		mk(2, 100, 100, 3600), // created at 100 (oldest) but received recently
		mk(3, 200, 200, 3600),
	}
	// Distinct from FIFO: FIFO would pick by ReceivedAt (M2 at 100 too
	// here), so give M2 a late arrival to separate the policies.
	msgs[1].ReceivedAt = 950
	if got := (OldestAgeDrop{}).Victim(1000, msgs); msgs[got].ID != 2 {
		t.Fatalf("OldestAge chose %v, want M2", msgs[got].ID)
	}
	if got := (FIFODrop{}).Victim(1000, msgs); msgs[got].ID != 3 {
		t.Fatalf("FIFO chose %v, want M3 (earliest arrival)", msgs[got].ID)
	}
}

func TestExtendedPoliciesComplete(t *testing.T) {
	ps := ExtendedPolicies()
	if len(ps) != 3 {
		t.Fatalf("ExtendedPolicies = %d entries", len(ps))
	}
	want := []string{"SizeASC-SizeDESC", "HopASC-MOFO", "FIFO-OldestAge"}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Fatalf("policy %d = %q, want %q", i, p.Name(), want[i])
		}
	}
}

// Property: every scheduling policy produces a permutation of its input,
// and every drop policy returns a valid index — across random message
// populations.
func TestAllPoliciesWellFormed(t *testing.T) {
	rng := xrand.New(77)
	schedules := []SchedulingPolicy{
		FIFOSchedule{}, RandomSchedule{Rng: rng}, LifetimeDESCSchedule{},
		SizeASCSchedule{}, HopCountASCSchedule{},
	}
	drops := []DropPolicy{
		FIFODrop{}, LifetimeASCDrop{}, MOFODrop{}, SizeDESCDrop{}, OldestAgeDrop{},
	}
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		r := xrand.New(seed)
		build := func() []*bundle.Message {
			msgs := make([]*bundle.Message, n)
			for i := range msgs {
				m := bundle.New(bundle.ID(i+1), 0, 1,
					units.Bytes(r.UniformInt(1000, 2_000_000)),
					r.Float64()*1000, 60+r.Float64()*10000)
				m.ReceivedAt = r.Float64() * 2000
				m.HopCount = r.IntN(10)
				m.Forwards = r.IntN(10)
				msgs[i] = m
			}
			return msgs
		}
		now := 2000.0
		for _, s := range schedules {
			msgs := build()
			s.Order(now, msgs)
			seen := map[bundle.ID]bool{}
			for _, m := range msgs {
				if seen[m.ID] {
					return false
				}
				seen[m.ID] = true
			}
			if len(seen) != n {
				return false
			}
		}
		for _, d := range drops {
			msgs := build()
			v := d.Victim(now, msgs)
			if v < 0 || v >= len(msgs) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
