// Package core implements the paper's primary contribution: buffer
// scheduling and dropping policies for vehicular delay-tolerant networks,
// and the combined policy pairs evaluated in the paper (Table I).
//
// The scheduling policy decides the *order in which buffered messages are
// transmitted* when a contact opportunity arises; the dropping policy
// decides *which message is evicted* when the buffer overflows. The paper's
// finding is that basing both on the message's remaining lifetime —
// scheduling longest-remaining-TTL first (Lifetime DESC) and dropping
// shortest-remaining-TTL first (Lifetime ASC) — significantly reduces
// average delivery delay and also improves delivery probability for both
// Epidemic and Spray-and-Wait routing.
package core

import (
	"sort"

	"vdtn/internal/bundle"
	"vdtn/internal/xrand"
)

// SchedulingPolicy orders candidate messages for transmission at a contact
// opportunity. Order sorts msgs in place into transmission order (first
// element transmitted first). Implementations must be deterministic given
// their inputs (the Random policy draws from an injected stream).
type SchedulingPolicy interface {
	Name() string
	Order(now float64, msgs []*bundle.Message)
}

// DropPolicy selects buffer-overflow victims. Victim returns the index into
// msgs of the message to evict next; msgs is never empty.
type DropPolicy interface {
	Name() string
	Victim(now float64, msgs []*bundle.Message) int
}

// Policy is a combined scheduling-dropping pair, the unit the paper's
// evaluation varies (Table I).
type Policy struct {
	Schedule SchedulingPolicy
	Drop     DropPolicy
}

// Name renders the paper's "Scheduling – Dropping" naming, e.g.
// "FIFO-FIFO" or "LifetimeDESC-LifetimeASC".
func (p Policy) Name() string { return p.Schedule.Name() + "-" + p.Drop.Name() }

// --- Scheduling policies -------------------------------------------------

// FIFOSchedule transmits messages in buffer-arrival order (first come,
// first served). As the paper notes, this gives no guarantee about whether
// the TTL of the transmitted messages is about to expire.
type FIFOSchedule struct{}

// Name implements SchedulingPolicy.
func (FIFOSchedule) Name() string { return "FIFO" }

// Order implements SchedulingPolicy.
func (FIFOSchedule) Order(now float64, msgs []*bundle.Message) {
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].ReceivedAt != msgs[j].ReceivedAt {
			return msgs[i].ReceivedAt < msgs[j].ReceivedAt
		}
		return msgs[i].ID < msgs[j].ID // deterministic tie-break
	})
}

// RandomSchedule transmits messages in uniformly random order, the paper's
// second policy ("Random scheduling policy sends messages in a random
// order"). The shuffle draws from the injected stream so runs remain
// reproducible.
type RandomSchedule struct {
	Rng *xrand.Rand
}

// Name implements SchedulingPolicy.
func (RandomSchedule) Name() string { return "Random" }

// Order implements SchedulingPolicy.
func (r RandomSchedule) Order(now float64, msgs []*bundle.Message) {
	if r.Rng == nil {
		panic("core: RandomSchedule with nil rng")
	}
	// Shuffle from a canonical order so the result depends only on the
	// stream state and the set of messages, not on caller-supplied order.
	FIFOSchedule{}.Order(now, msgs)
	r.Rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
}

// LifetimeDESCSchedule transmits messages with the longest remaining TTL
// first. Exchanged messages therefore have long remaining lifetimes, which
// raises their chance of being relayed further before expiring — the
// scheduling half of the paper's proposal.
type LifetimeDESCSchedule struct{}

// Name implements SchedulingPolicy.
func (LifetimeDESCSchedule) Name() string { return "LifetimeDESC" }

// Order implements SchedulingPolicy.
func (LifetimeDESCSchedule) Order(now float64, msgs []*bundle.Message) {
	sort.SliceStable(msgs, func(i, j int) bool {
		ri, rj := msgs[i].RemainingTTL(now), msgs[j].RemainingTTL(now)
		if ri != rj {
			return ri > rj
		}
		return msgs[i].ID < msgs[j].ID
	})
}

// --- Dropping policies ---------------------------------------------------

// FIFODrop evicts the message at the head of the queue — the one that has
// been buffered longest ("drop head"). As the paper notes, nothing
// guarantees its remaining TTL is smaller than anyone else's.
type FIFODrop struct{}

// Name implements DropPolicy.
func (FIFODrop) Name() string { return "FIFO" }

// Victim implements DropPolicy.
func (FIFODrop) Victim(now float64, msgs []*bundle.Message) int {
	best := 0
	for i, m := range msgs[1:] {
		j := i + 1
		if m.ReceivedAt < msgs[best].ReceivedAt ||
			(m.ReceivedAt == msgs[best].ReceivedAt && m.ID < msgs[best].ID) {
			best = j
		}
	}
	return best
}

// LifetimeASCDrop evicts the message whose remaining TTL expires soonest —
// it has the least time left to reach its destination, so sacrificing it
// costs the least expected delivery value. The dropping half of the paper's
// proposal.
type LifetimeASCDrop struct{}

// Name implements DropPolicy.
func (LifetimeASCDrop) Name() string { return "LifetimeASC" }

// Victim implements DropPolicy.
func (LifetimeASCDrop) Victim(now float64, msgs []*bundle.Message) int {
	best := 0
	for i, m := range msgs[1:] {
		j := i + 1
		ri, rb := m.RemainingTTL(now), msgs[best].RemainingTTL(now)
		if ri < rb || (ri == rb && m.ID < msgs[best].ID) {
			best = j
		}
	}
	return best
}

// --- The paper's Table I combinations ------------------------------------

// FIFOFIFO returns the paper's baseline policy: FIFO scheduling with
// drop-head eviction.
func FIFOFIFO() Policy {
	return Policy{Schedule: FIFOSchedule{}, Drop: FIFODrop{}}
}

// RandomFIFO returns the paper's second policy: random transmission order
// with drop-head eviction.
func RandomFIFO(rng *xrand.Rand) Policy {
	return Policy{Schedule: RandomSchedule{Rng: rng}, Drop: FIFODrop{}}
}

// Lifetime returns the paper's proposed policy: Lifetime DESC scheduling
// with Lifetime ASC dropping.
func Lifetime() Policy {
	return Policy{Schedule: LifetimeDESCSchedule{}, Drop: LifetimeASCDrop{}}
}

// TableI returns the three combined policies exactly as the paper's Table I
// lists them, in order. rng feeds the Random scheduler.
func TableI(rng *xrand.Rand) []Policy {
	return []Policy{FIFOFIFO(), RandomFIFO(rng), Lifetime()}
}
