// Package units centralizes the physical units the simulator deals in and
// their conversions: byte sizes, bit rates, speeds and durations.
//
// Internally the simulator works in SI base units — bytes, bits per second,
// metres, metres per second, seconds — and this package is the single place
// where scenario-facing units (megabytes, Mbit/s, km/h, minutes) are
// converted to and from them. Keeping every conversion constant here means a
// scenario file can say "100 MB buffer, 6 Mbit/s, 30–50 km/h" and no other
// package hard-codes a factor of 1024 or 3.6.
package units

import (
	"fmt"
	"time"
)

// Bytes is a storage or message size in bytes.
type Bytes int64

// Byte size constants. The paper (and the ONE simulator) use decimal
// megabytes for buffers and messages: 100 Mbytes = 100e6 bytes.
const (
	Byte     Bytes = 1
	Kilobyte       = 1000 * Byte
	Megabyte       = 1000 * Kilobyte
	Gigabyte       = 1000 * Megabyte
)

// KB returns n decimal kilobytes.
func KB(n float64) Bytes { return Bytes(n * float64(Kilobyte)) }

// MB returns n decimal megabytes.
func MB(n float64) Bytes { return Bytes(n * float64(Megabyte)) }

// String renders the size with an adaptive unit, e.g. "1.25 MB".
func (b Bytes) String() string {
	switch {
	case b >= Gigabyte:
		return fmt.Sprintf("%.2f GB", float64(b)/float64(Gigabyte))
	case b >= Megabyte:
		return fmt.Sprintf("%.2f MB", float64(b)/float64(Megabyte))
	case b >= Kilobyte:
		return fmt.Sprintf("%.2f KB", float64(b)/float64(Kilobyte))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// BitRate is a link data rate in bits per second.
type BitRate float64

// Bit rate constants.
const (
	BitPerSecond  BitRate = 1
	KbitPerSecond         = 1000 * BitPerSecond
	MbitPerSecond         = 1000 * KbitPerSecond
)

// Mbit returns n megabits per second.
func Mbit(n float64) BitRate { return BitRate(n) * MbitPerSecond }

// TransferTime reports how long moving size bytes over the rate takes,
// in seconds. A non-positive rate yields +Inf-free panic instead of a silent
// stuck transfer, since it is always a configuration error.
func (r BitRate) TransferTime(size Bytes) float64 {
	if r <= 0 {
		panic("units: TransferTime with non-positive rate")
	}
	return float64(size) * 8 / float64(r)
}

// BytesIn reports how many whole bytes the rate moves in d seconds.
func (r BitRate) BytesIn(d float64) Bytes {
	if d < 0 {
		return 0
	}
	return Bytes(float64(r) * d / 8)
}

// String renders the rate with an adaptive unit, e.g. "6.00 Mbit/s".
func (r BitRate) String() string {
	switch {
	case r >= MbitPerSecond:
		return fmt.Sprintf("%.2f Mbit/s", float64(r)/float64(MbitPerSecond))
	case r >= KbitPerSecond:
		return fmt.Sprintf("%.2f kbit/s", float64(r)/float64(KbitPerSecond))
	default:
		return fmt.Sprintf("%.0f bit/s", float64(r))
	}
}

// Speed conversions.

// KmhToMs converts km/h to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// MsToKmh converts m/s to km/h.
func MsToKmh(ms float64) float64 { return ms * 3.6 }

// Duration conversions. Simulation time is float64 seconds.

// Minutes returns n minutes in simulation seconds.
func Minutes(n float64) float64 { return n * 60 }

// Hours returns n hours in simulation seconds.
func Hours(n float64) float64 { return n * 3600 }

// Seconds converts a time.Duration to simulation seconds.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// FormatDuration renders simulation seconds human-readably, e.g. "2h03m",
// "4m30s", "12.0s". Used by report tables.
func FormatDuration(sec float64) string {
	switch {
	case sec >= 3600:
		h := int(sec) / 3600
		m := (int(sec) % 3600) / 60
		return fmt.Sprintf("%dh%02dm", h, m)
	case sec >= 60:
		m := int(sec) / 60
		s := sec - float64(m)*60
		return fmt.Sprintf("%dm%02.0fs", m, s)
	default:
		return fmt.Sprintf("%.1fs", sec)
	}
}
