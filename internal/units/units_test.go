package units

import (
	"math"
	"testing"
	"time"
)

func TestByteConstructors(t *testing.T) {
	if MB(100) != 100_000_000 {
		t.Fatalf("MB(100) = %d", MB(100))
	}
	if KB(500) != 500_000 {
		t.Fatalf("KB(500) = %d", KB(500))
	}
	if MB(2) != KB(2000) {
		t.Fatal("2 MB != 2000 KB")
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{500, "500 B"},
		{KB(500), "500.00 KB"},
		{MB(1.25), "1.25 MB"},
		{Gigabyte, "1.00 GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTransferTimePaperLink(t *testing.T) {
	// The paper's link: 6 Mbit/s. A 1.5 MB bundle is 12 Mbit => 2 s.
	rate := Mbit(6)
	got := rate.TransferTime(MB(1.5))
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("1.5MB @ 6Mbit/s = %v s, want 2.0", got)
	}
}

func TestTransferTimeRoundTrip(t *testing.T) {
	rate := Mbit(6)
	for _, size := range []Bytes{KB(500), MB(1), MB(2)} {
		d := rate.TransferTime(size)
		back := rate.BytesIn(d)
		if diff := int64(size - back); diff < -1 || diff > 1 {
			t.Errorf("round trip %v -> %vs -> %v", size, d, back)
		}
	}
}

func TestBytesInNegativeDuration(t *testing.T) {
	if got := Mbit(6).BytesIn(-5); got != 0 {
		t.Fatalf("BytesIn(-5) = %d, want 0", got)
	}
}

func TestTransferTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TransferTime with zero rate did not panic")
		}
	}()
	BitRate(0).TransferTime(MB(1))
}

func TestBitRateString(t *testing.T) {
	if got := Mbit(6).String(); got != "6.00 Mbit/s" {
		t.Fatalf("Mbit(6).String() = %q", got)
	}
	if got := (250 * KbitPerSecond).String(); got != "250.00 kbit/s" {
		t.Fatalf("250kbit.String() = %q", got)
	}
	if got := (500 * BitPerSecond).String(); got != "500 bit/s" {
		t.Fatalf("500bit.String() = %q", got)
	}
}

func TestSpeedConversions(t *testing.T) {
	// Paper vehicle speeds: 30..50 km/h.
	if got := KmhToMs(36); math.Abs(got-10) > 1e-12 {
		t.Fatalf("KmhToMs(36) = %v, want 10", got)
	}
	if got := MsToKmh(KmhToMs(47.3)); math.Abs(got-47.3) > 1e-9 {
		t.Fatalf("speed round trip broke: %v", got)
	}
}

func TestDurations(t *testing.T) {
	if Minutes(90) != 5400 {
		t.Fatalf("Minutes(90) = %v", Minutes(90))
	}
	if Hours(12) != 43200 {
		t.Fatalf("Hours(12) = %v", Hours(12))
	}
	if Seconds(90*time.Second) != 90 {
		t.Fatalf("Seconds(90s) = %v", Seconds(90*time.Second))
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{12.04, "12.0s"},
		{270, "4m30s"},
		{Hours(2) + Minutes(3), "2h03m"},
		{59.96, "60.0s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
