// Package geo provides the small 2-D geometry kernel used by the road map
// and mobility substrates: points in a metric plane (metres), segments,
// linear interpolation along polylines, and axis-aligned bounding boxes.
//
// The simulator's coordinate system is a local planar frame in metres, as in
// the ONE simulator's map files; no geodesy is involved at city scale.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the plane, in metres.
type Point struct {
	X, Y float64
}

// String renders the point as "(x, y)" with centimetre precision.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns the point with both coordinates multiplied by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance, avoiding the sqrt when
// only comparisons are needed (the contact-detection hot path).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates from p to q; t=0 gives p, t=1 gives q.
// t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Equal reports whether the points coincide to within eps metres
// per coordinate.
func (p Point) Equal(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// Segment is a directed straight road stretch from A to B.
type Segment struct {
	A, B Point
}

// Length returns the segment length in metres.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// At returns the point a fraction t along the segment (t in [0,1]).
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// AtDistance returns the point d metres from A towards B, clamped to the
// segment endpoints.
func (s Segment) AtDistance(d float64) Point {
	l := s.Length()
	if l == 0 || d <= 0 {
		return s.A
	}
	if d >= l {
		return s.B
	}
	return s.At(d / l)
}

// Polyline is a connected chain of points, the geometry of a route.
type Polyline []Point

// Length returns the total length of the polyline in metres.
func (pl Polyline) Length() float64 {
	total := 0.0
	for i := 1; i < len(pl); i++ {
		total += pl[i-1].Dist(pl[i])
	}
	return total
}

// AtDistance returns the point d metres along the polyline, clamped to the
// endpoints. An empty polyline panics; a single-point polyline returns that
// point.
func (pl Polyline) AtDistance(d float64) Point {
	if len(pl) == 0 {
		panic("geo: AtDistance on empty polyline")
	}
	if d <= 0 || len(pl) == 1 {
		return pl[0]
	}
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].Dist(pl[i])
		if d <= seg {
			return Segment{pl[i-1], pl[i]}.AtDistance(d)
		}
		d -= seg
	}
	return pl[len(pl)-1]
}

// Rect is an axis-aligned bounding box.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rect spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies in the closed box.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Extend returns the smallest rect covering both r and p.
func (r Rect) Extend(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Bounds returns the bounding box of a non-empty point set.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geo: Bounds of empty point set")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.Extend(p)
	}
	return r
}
