package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := a.Dist2(b); d != 25 {
		t.Fatalf("Dist2 = %v, want 25", d)
	}
}

func TestDistSymmetricAndNonNegative(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		d1, d2 := a.Dist(b), b.Dist(a)
		return d1 == d2 && d1 >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// clamp maps arbitrary float64s (incl. NaN/Inf from quick) into a sane
// city-scale coordinate range.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 10000)
}

func TestLerpEndpoints(t *testing.T) {
	a, b := Point{1, 2}, Point{5, 10}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Point{3, 6}) {
		t.Fatalf("Lerp(0.5) = %v", got)
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestSegmentAtDistance(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	cases := []struct {
		d    float64
		want Point
	}{
		{-1, Point{0, 0}},
		{0, Point{0, 0}},
		{4, Point{4, 0}},
		{10, Point{10, 0}},
		{15, Point{10, 0}},
	}
	for _, c := range cases {
		if got := s.AtDistance(c.d); !got.Equal(c.want, 1e-9) {
			t.Errorf("AtDistance(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestZeroLengthSegment(t *testing.T) {
	s := Segment{Point{2, 2}, Point{2, 2}}
	if got := s.AtDistance(5); got != (Point{2, 2}) {
		t.Fatalf("degenerate segment AtDistance = %v", got)
	}
	if s.Length() != 0 {
		t.Fatalf("degenerate segment length = %v", s.Length())
	}
}

func TestPolylineLength(t *testing.T) {
	pl := Polyline{{0, 0}, {3, 4}, {3, 10}}
	if l := pl.Length(); math.Abs(l-11) > 1e-9 {
		t.Fatalf("polyline length = %v, want 11", l)
	}
	if l := (Polyline{{1, 1}}).Length(); l != 0 {
		t.Fatalf("single point length = %v", l)
	}
}

func TestPolylineAtDistance(t *testing.T) {
	pl := Polyline{{0, 0}, {10, 0}, {10, 10}}
	cases := []struct {
		d    float64
		want Point
	}{
		{0, Point{0, 0}},
		{5, Point{5, 0}},
		{10, Point{10, 0}},
		{15, Point{10, 5}},
		{20, Point{10, 10}},
		{99, Point{10, 10}},
	}
	for _, c := range cases {
		if got := pl.AtDistance(c.d); !got.Equal(c.want, 1e-9) {
			t.Errorf("AtDistance(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestPolylineAtDistanceMonotone(t *testing.T) {
	pl := Polyline{{0, 0}, {50, 20}, {80, 20}, {80, 90}}
	total := pl.Length()
	prev := 0.0
	prevPt := pl.AtDistance(0)
	for d := 1.0; d <= total; d += 1.0 {
		pt := pl.AtDistance(d)
		step := prevPt.Dist(pt)
		// Walking 1m along the polyline moves at most 1m in the plane.
		if step > 1.0+1e-9 {
			t.Fatalf("step from d=%v to d=%v moved %v m", prev, d, step)
		}
		prev, prevPt = d, pt
	}
}

func TestPolylineAtDistanceEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty polyline did not panic")
		}
	}()
	Polyline{}.AtDistance(1)
}

func TestRect(t *testing.T) {
	r := NewRect(Point{10, 20}, Point{-5, 3})
	if r.Min != (Point{-5, 3}) || r.Max != (Point{10, 20}) {
		t.Fatalf("NewRect normalized wrong: %+v", r)
	}
	if r.Width() != 15 || r.Height() != 17 {
		t.Fatalf("extent wrong: %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 10}) || r.Contains(Point{11, 10}) {
		t.Fatal("Contains wrong")
	}
}

func TestBounds(t *testing.T) {
	pts := []Point{{1, 1}, {4, -2}, {-3, 7}}
	r := Bounds(pts)
	if r.Min != (Point{-3, -2}) || r.Max != (Point{4, 7}) {
		t.Fatalf("Bounds = %+v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("Bounds does not contain %v", p)
		}
	}
}

func TestBoundsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bounds of empty set did not panic")
		}
	}()
	Bounds(nil)
}

func TestPointString(t *testing.T) {
	if got := (Point{1.5, -2}).String(); got != "(1.50, -2.00)" {
		t.Fatalf("String = %q", got)
	}
}
