package detmap

import (
	"slices"
	"testing"
)

func TestKeysSorted(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c", 2: "b", 4: "d"}
	for i := 0; i < 32; i++ { // map order randomizes per range; result must not
		got := Keys(m)
		want := []int{1, 2, 3, 4, 5}
		if !slices.Equal(got, want) {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestKeysStrings(t *testing.T) {
	m := map[string]int{"n2": 1, "n10": 2, "n1": 3}
	got := Keys(m)
	want := []string{"n1", "n10", "n2"} // lexicographic, matching fmt/sort conventions
	if !slices.Equal(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestKeysEmpty(t *testing.T) {
	if got := Keys(map[int]int{}); got != nil {
		t.Fatalf("Keys(empty) = %v, want nil", got)
	}
	var m map[string]bool
	if got := Keys(m); got != nil {
		t.Fatalf("Keys(nil) = %v, want nil", got)
	}
}

func TestKeysFresh(t *testing.T) {
	m := map[int]int{1: 1, 2: 2}
	a := Keys(m)
	a[0] = 99
	if b := Keys(m); b[0] != 1 {
		t.Fatalf("Keys shares state between calls: %v", b)
	}
}
