// Package detmap provides deterministic iteration over Go maps.
//
// Ranging a map visits keys in an order the runtime randomizes per
// process; any simulation state that depends on that order breaks the
// replay guarantees (pinned contact fingerprints, byte-identical resume
// streams). The detmaprange analyzer forbids raw map ranges in
// determinism-critical packages — this package is the sanctioned
// replacement: collect the keys, sort them, range the slice.
package detmap

import (
	"cmp"
	"slices"
)

// Keys returns m's keys in ascending order. The returned slice is always
// freshly allocated (nil only for an empty map) so callers may retain or
// mutate it.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	if len(m) == 0 {
		return nil
	}
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
