package scenario

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"vdtn/internal/roadmap"
	"vdtn/internal/sim"
)

// defaultMapFingerprint caches the hash of roadmap.HelsinkiLike(), which a
// nil Config.Map selects; the generator is deterministic, so one build per
// process suffices.
var defaultMapFingerprint = sync.OnceValue(func() uint64 {
	return roadmap.HelsinkiLike().Fingerprint()
})

// ContactFingerprint returns a stable hex key identifying the contact
// process of a configuration: exactly the inputs that determine when node
// pairs enter and leave radio range — the seed, horizon, fleet composition,
// mobility bounds, radio range, scan interval and the road map. Fields that
// cannot move a vehicle or a scan tick (buffers, traffic, TTL, routing,
// link rate, warm-up, tracing) are deliberately excluded, so every cell of
// a policy or TTL sweep over one (scenario, seed) pair shares a key and can
// share one recorded contact trace.
func ContactFingerprint(c sim.Config) string {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f := func(v float64) { word(math.Float64bits(v)) }

	word(1) // fingerprint schema version
	word(c.Seed)
	f(c.Duration)
	word(uint64(c.Vehicles))
	word(uint64(c.Relays))
	f(c.SpeedLo)
	f(c.SpeedHi)
	f(c.PauseLo)
	f(c.PauseHi)
	f(c.Range)
	f(c.ScanInterval)
	if c.Map == nil {
		word(defaultMapFingerprint())
	} else {
		word(c.Map.Fingerprint())
	}

	const hex = "0123456789abcdef"
	sum := h.Sum64()
	var out [16]byte
	for i := range out {
		out[i] = hex[(sum>>(60-4*i))&0xf]
	}
	return string(out[:])
}
