package scenario

import (
	"testing"

	"vdtn/internal/sim"
)

// TestAxisRegistryBasics: lookups, labels and the sorted listing.
func TestAxisRegistryBasics(t *testing.T) {
	for _, name := range []string{"ttl_min", "vehicles", "relays", "buffer_mb", "rate_mbit", "copies", "range_m", "scan_sec"} {
		a, ok := AxisByName(name)
		if !ok {
			t.Fatalf("built-in axis %s missing", name)
		}
		if a.Label == "" {
			t.Fatalf("axis %s has no label", name)
		}
		if AxisLabel(name) != a.Label {
			t.Fatalf("AxisLabel(%s) mismatch", name)
		}
	}
	if AxisLabel("nonsense") != "nonsense" {
		t.Fatal("AxisLabel does not fall back to the name")
	}
	axes := Axes()
	for i := 1; i < len(axes); i++ {
		if axes[i-1].Name >= axes[i].Name {
			t.Fatal("Axes() not sorted")
		}
	}
	if _, ok := AxisByName("nonsense"); ok {
		t.Fatal("found nonexistent axis")
	}
}

// TestAxisMovesContactsMatchesFingerprint pins the contact-cache contract
// the Axis doc comment promises, for every registered axis: applying two
// distinct values changes ContactFingerprint exactly when MovesContacts
// says so. A mislabeled future axis — or a fingerprint edit dropping a
// mobility input — would make cached sweeps replay one contact trace
// across cells with genuinely different mobility, so this is the test
// that keeps "declarative" honest.
func TestAxisMovesContactsMatchesFingerprint(t *testing.T) {
	for _, a := range Axes() {
		c1, c2 := sim.DefaultConfig(), sim.DefaultConfig()
		// 3 and 4 are valid, distinct settings for every current axis
		// (≥2 vehicles, positive durations/sizes/rates, warmup < horizon).
		a.Apply(&c1, 3)
		a.Apply(&c2, 4)
		moved := ContactFingerprint(c1) != ContactFingerprint(c2)
		if moved != a.MovesContacts {
			t.Errorf("axis %s: MovesContacts=%v but distinct values %s the fingerprint",
				a.Name, a.MovesContacts, map[bool]string{true: "moved", false: "did not move"}[moved])
		}
		// And against the untouched default, same contract.
		if base := ContactFingerprint(sim.DefaultConfig()); (ContactFingerprint(c1) != base) != a.MovesContacts {
			t.Errorf("axis %s: MovesContacts=%v inconsistent with the default-config fingerprint", a.Name, a.MovesContacts)
		}
	}
}

// TestAxisApplyWritesConfig spot-checks that axes write the fields their
// names promise.
func TestAxisApplyWritesConfig(t *testing.T) {
	c := sim.DefaultConfig()
	mustApply := func(name string, v float64) {
		a, ok := AxisByName(name)
		if !ok {
			t.Fatalf("missing axis %s", name)
		}
		a.Apply(&c, v)
	}
	mustApply("ttl_min", 90)
	mustApply("vehicles", 17)
	mustApply("buffer_mb", 40)
	mustApply("copies", 9)
	if c.TTL != 90*60 {
		t.Fatalf("ttl_min wrote %v", c.TTL)
	}
	if c.Vehicles != 17 {
		t.Fatalf("vehicles wrote %d", c.Vehicles)
	}
	if c.VehicleBuffer != 40e6 || c.RelayBuffer != 200e6 {
		t.Fatalf("buffer_mb wrote %d/%d, want the paper's 1:5 provisioning", c.VehicleBuffer, c.RelayBuffer)
	}
	if c.SprayCopies != 9 {
		t.Fatalf("copies wrote %d", c.SprayCopies)
	}
}
