package scenario

import (
	"fmt"
	"sort"
	"sync"

	"vdtn/internal/sim"
	"vdtn/internal/units"
)

// Axis is a named, serializable swept parameter: the declarative
// replacement for the closure-based config mutations the experiment
// harness used to hardwire per figure. An axis knows how to write one
// scalar value into a sim.Config and whether doing so can move the
// scenario's contact process.
//
// Because an axis is applied to the config *before* ContactFingerprint is
// taken, mobility-invariant axes (TTL, buffers, link rate, copy budget)
// leave the fingerprint unchanged — every cell of such a sweep shares one
// cached contact trace — while mobility-affecting axes (vehicles, relays,
// range, scan interval) change fingerprint inputs and correctly fork the
// trace per swept value.
type Axis struct {
	// Name is the stable identifier used in experiment definitions and
	// on-disk sweep specs ("ttl_min", "vehicles", ...). Names follow the
	// scenario schema's field vocabulary: scenario-facing units, snake
	// case.
	Name string
	// Label heads the x column in rendered tables ("ttl(min)").
	Label string
	// MovesContacts reports whether the axis changes an input of the
	// contact process (and therefore of ContactFingerprint): sweeps over
	// such an axis record one contact trace per swept value instead of
	// sharing one across the sweep.
	MovesContacts bool

	apply func(c *sim.Config, v float64)
}

// Apply writes value v into the config.
func (a Axis) Apply(c *sim.Config, v float64) { a.apply(c, v) }

var (
	axisMu  sync.RWMutex
	axisDef = map[string]Axis{}
)

// RegisterAxis adds a custom axis to the registry, making it usable in
// experiment definitions and sweep spec files. It returns an error on an
// empty name, a nil apply function, or a name collision with a built-in
// or previously registered axis.
func RegisterAxis(a Axis) error {
	if a.Name == "" || a.apply == nil {
		return fmt.Errorf("scenario: axis needs a name and an apply function")
	}
	axisMu.Lock()
	defer axisMu.Unlock()
	if _, dup := axisDef[a.Name]; dup {
		return fmt.Errorf("scenario: axis %q already registered", a.Name)
	}
	axisDef[a.Name] = a
	return nil
}

// NewAxis builds a registrable custom axis from its parts; pass it to
// RegisterAxis.
func NewAxis(name, label string, movesContacts bool, apply func(c *sim.Config, v float64)) Axis {
	return Axis{Name: name, Label: label, MovesContacts: movesContacts, apply: apply}
}

// AxisByName looks an axis up by its stable name.
func AxisByName(name string) (Axis, bool) {
	axisMu.RLock()
	defer axisMu.RUnlock()
	a, ok := axisDef[name]
	return a, ok
}

// Axes returns every registered axis, sorted by name.
func Axes() []Axis {
	axisMu.RLock()
	defer axisMu.RUnlock()
	out := make([]Axis, 0, len(axisDef))
	for _, a := range axisDef {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// mustRegister seeds the built-in axes at init; a collision here is a
// programming error.
func mustRegister(name, label string, movesContacts bool, apply func(c *sim.Config, v float64)) {
	if err := RegisterAxis(NewAxis(name, label, movesContacts, apply)); err != nil {
		panic(err)
	}
}

// The built-in axes: every parameter the paper's figures and the DESIGN.md
// ablations sweep, plus the obvious neighbours. Labels reproduce the
// pre-refactor tables byte for byte.
func init() {
	mustRegister("ttl_min", "ttl(min)", false, func(c *sim.Config, v float64) {
		c.TTL = units.Minutes(v)
	})
	mustRegister("rate_mbit", "rate(Mbit/s)", false, func(c *sim.Config, v float64) {
		c.Rate = units.Mbit(v)
	})
	// buffer_mb provisions vehicle buffers at v MB and relay buffers at
	// 5×v MB — the paper scenario's 100 MB : 500 MB ratio, held constant
	// while the sweep scales total storage.
	mustRegister("buffer_mb", "buffer(MB)", false, func(c *sim.Config, v float64) {
		c.VehicleBuffer = units.MB(v)
		c.RelayBuffer = units.MB(5 * v)
	})
	mustRegister("vehicle_buffer_mb", "vehicle buffer(MB)", false, func(c *sim.Config, v float64) {
		c.VehicleBuffer = units.MB(v)
	})
	mustRegister("relay_buffer_mb", "relay buffer(MB)", false, func(c *sim.Config, v float64) {
		c.RelayBuffer = units.MB(v)
	})
	mustRegister("copies", "copies", false, func(c *sim.Config, v float64) {
		c.SprayCopies = int(v)
	})
	mustRegister("warmup_min", "warmup(min)", false, func(c *sim.Config, v float64) {
		c.Warmup = units.Minutes(v)
	})
	mustRegister("vehicles", "vehicles", true, func(c *sim.Config, v float64) {
		c.Vehicles = int(v)
	})
	mustRegister("relays", "relays", true, func(c *sim.Config, v float64) {
		c.Relays = int(v)
	})
	mustRegister("range_m", "range(m)", true, func(c *sim.Config, v float64) {
		c.Range = v
	})
	mustRegister("scan_sec", "scan(s)", true, func(c *sim.Config, v float64) {
		c.ScanInterval = v
	})
}

// AxisLabel returns the table label of a named axis, falling back to the
// name itself when the axis is unknown (render paths must not fail on a
// table that already ran).
func AxisLabel(name string) string {
	if a, ok := AxisByName(name); ok {
		return a.Label
	}
	return name
}
