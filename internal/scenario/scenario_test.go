package scenario

import (
	"strings"
	"testing"

	"vdtn/internal/sim"
	"vdtn/internal/units"
)

func TestLoadEmptyGivesPaperDefaults(t *testing.T) {
	c, err := Load([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	def := sim.DefaultConfig()
	if c.Vehicles != def.Vehicles || c.Duration != def.Duration || c.TTL != def.TTL {
		t.Fatalf("empty file did not inherit defaults: %+v", c)
	}
}

func TestLoadOverrides(t *testing.T) {
	c, err := Load([]byte(`{
		"seed": 7,
		"duration_hours": 6,
		"vehicles": 20,
		"relays": 3,
		"vehicle_buffer_mb": 50,
		"speed_lo_kmh": 20,
		"speed_hi_kmh": 60,
		"rate_mbit": 2,
		"ttl_min": 90,
		"protocol": "spraywait",
		"policy": "lifetime",
		"spray_copies": 8
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 7 || c.Vehicles != 20 || c.Relays != 3 {
		t.Fatalf("population wrong: %+v", c)
	}
	if c.Duration != units.Hours(6) || c.TTL != units.Minutes(90) {
		t.Fatalf("times wrong: %v, %v", c.Duration, c.TTL)
	}
	if c.VehicleBuffer != units.MB(50) || c.Rate != units.Mbit(2) {
		t.Fatalf("resources wrong: %v, %v", c.VehicleBuffer, float64(c.Rate))
	}
	if c.SpeedLo != units.KmhToMs(20) || c.SpeedHi != units.KmhToMs(60) {
		t.Fatalf("speeds wrong: %v..%v", c.SpeedLo, c.SpeedHi)
	}
	if c.Protocol != sim.ProtoSprayAndWait || c.Policy != sim.PolicyLifetime || c.SprayCopies != 8 {
		t.Fatalf("routing wrong: %v/%v/%d", c.Protocol, c.Policy, c.SprayCopies)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown protocol": `{"protocol": "warp"}`,
		"unknown policy":   `{"policy": "chaos"}`,
		"invalid config":   `{"vehicles": 1}`,
		"bad plan":         `{"contacts": [{"start": 5, "end": 2, "a": 0, "b": 1}]}`,
		"bad script":       `{"script": [{"time_sec": 0, "from": 2, "to": 2, "size_kb": 10}]}`,
	}
	for name, text := range cases {
		if _, err := Load([]byte(text)); err == nil {
			t.Errorf("%s: accepted %s", name, text)
		}
	}
}

func TestLoadContactPlanAndScript(t *testing.T) {
	c, err := Load([]byte(`{
		"vehicles": 3,
		"relays": 0,
		"duration_hours": 1,
		"contacts": [
			{"start": 10, "end": 20, "a": 0, "b": 1},
			{"start": 30, "end": 40, "a": 1, "b": 2}
		],
		"script": [
			{"time_sec": 0, "from": 0, "to": 2, "size_kb": 800}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Plan == nil || c.Plan.Len() != 2 {
		t.Fatalf("plan not loaded: %+v", c.Plan)
	}
	if len(c.Script) != 1 || c.Script[0].Size != units.KB(800) {
		t.Fatalf("script not loaded: %+v", c.Script)
	}
	// And it runs.
	w, err := sim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	r := w.Run()
	if r.Delivered != 1 {
		t.Fatalf("scenario-file run delivered %d", r.Delivered)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := sim.PaperConfig(120, sim.ProtoSprayAndWait, sim.PolicyLifetime, 9)
	orig.Vehicles = 25
	orig.SprayCopies = 6
	orig.Warmup = units.Minutes(10)

	data, err := Save("round-trip", orig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"round-trip"`) {
		t.Fatal("name not saved")
	}
	back, err := Load(data)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if back.Seed != orig.Seed || back.Vehicles != orig.Vehicles ||
		back.TTL != orig.TTL || back.Duration != orig.Duration ||
		back.Protocol != orig.Protocol || back.Policy != orig.Policy ||
		back.SprayCopies != orig.SprayCopies || back.Warmup != orig.Warmup ||
		back.VehicleBuffer != orig.VehicleBuffer || back.Rate != orig.Rate {
		t.Fatalf("round trip drifted:\nin:  %+v\nout: %+v", orig, back)
	}
}

func TestSaveLoadPlanRoundTrip(t *testing.T) {
	c, err := Load([]byte(`{
		"vehicles": 2, "relays": 0, "duration_hours": 1,
		"contacts": [{"start": 1, "end": 2, "a": 0, "b": 1}],
		"script": [{"time_sec": 0, "from": 0, "to": 1, "size_kb": 10}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	data, err := Save("plan", c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Plan == nil || back.Plan.Len() != 1 || len(back.Script) != 1 {
		t.Fatal("plan/script lost in round trip")
	}
	// Determinism across the round trip: identical runs.
	r1 := run(t, c)
	r2 := run(t, back)
	if r1 != r2 {
		t.Fatalf("round-tripped scenario runs differently:\n%+v\n%+v", r1, r2)
	}
}

func run(t *testing.T, c sim.Config) sim.Result {
	t.Helper()
	w, err := sim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	return w.Run()
}
