package scenario

import (
	"fmt"
	"testing"

	"vdtn/internal/roadmap"
	"vdtn/internal/sim"
	"vdtn/internal/units"
)

func TestContactFingerprintStable(t *testing.T) {
	a := ContactFingerprint(sim.DefaultConfig())
	b := ContactFingerprint(sim.DefaultConfig())
	if a != b {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", a)
	}
}

// TestContactFingerprintPinned pins the exact fingerprint of the paper's
// default scenario. Persisted cache files are named by this value, so a
// silent change to the hash — reordered fields, a new input, a schema bump
// without a migration plan — would orphan every trace ever written to a
// cache directory. Changing this constant is allowed, but must be a
// deliberate decision that accepts the cache invalidation.
func TestContactFingerprintPinned(t *testing.T) {
	if fp := ContactFingerprint(sim.DefaultConfig()); fp != "7738a602549c75fc" {
		t.Fatalf("default-scenario fingerprint moved to %s: every persisted cache file is now orphaned; "+
			"if the hash change is intentional, update this pin", fp)
	}
}

// TestContactFingerprintSeparates is the cache-keying property test: every
// mutation of a contact-process input — including each seed in a sweep —
// must move the key, so cache hits can never cross seeds or scenarios.
func TestContactFingerprintSeparates(t *testing.T) {
	mutations := map[string]func(*sim.Config){
		"seed":      func(c *sim.Config) { c.Seed++ },
		"seed far":  func(c *sim.Config) { c.Seed += 1 << 40 },
		"duration":  func(c *sim.Config) { c.Duration *= 2 },
		"vehicles":  func(c *sim.Config) { c.Vehicles++ },
		"relays":    func(c *sim.Config) { c.Relays++ },
		"speed lo":  func(c *sim.Config) { c.SpeedLo *= 1.1 },
		"speed hi":  func(c *sim.Config) { c.SpeedHi *= 1.1 },
		"pause lo":  func(c *sim.Config) { c.PauseLo += 1 },
		"pause hi":  func(c *sim.Config) { c.PauseHi += 1 },
		"range":     func(c *sim.Config) { c.Range += 5 },
		"scan":      func(c *sim.Config) { c.ScanInterval *= 2 },
		"map":       func(c *sim.Config) { c.Map = roadmap.Grid(5, 5, 300) },
		"map shape": func(c *sim.Config) { c.Map = roadmap.Grid(5, 5, 301) },
	}
	seen := map[string]string{"base": ContactFingerprint(sim.DefaultConfig())}
	for name, mutate := range mutations {
		c := sim.DefaultConfig()
		mutate(&c)
		fp := ContactFingerprint(c)
		for other, otherFP := range seen {
			if fp == otherFP {
				t.Errorf("%s collides with %s: %s", name, other, fp)
			}
		}
		seen[name] = fp
	}
}

// TestContactFingerprintDistinctTriples sweeps a grid of (map, mobility,
// seed) triples and requires pairwise-distinct keys.
func TestContactFingerprintDistinctTriples(t *testing.T) {
	maps := []*roadmap.Graph{nil, roadmap.Grid(4, 4, 200), roadmap.Grid(6, 3, 350)}
	seen := make(map[string]string)
	for mi, m := range maps {
		for vehicles := 10; vehicles <= 30; vehicles += 10 {
			for seed := uint64(1); seed <= 5; seed++ {
				c := sim.DefaultConfig()
				c.Map = m
				c.Vehicles = vehicles
				c.Seed = seed
				key := ContactFingerprint(c)
				label := fmt.Sprintf("(map %d, %d vehicles, seed %d)", mi, vehicles, seed)
				if prev, dup := seen[key]; dup {
					t.Fatalf("triple %s collides with %s on key %s", label, prev, key)
				}
				seen[key] = label
			}
		}
	}
	if len(seen) != len(maps)*3*5 {
		t.Fatalf("expected %d distinct keys, got %d", len(maps)*3*5, len(seen))
	}
}

// TestContactFingerprintIgnoresNonMobilityFields: sweep-variable fields
// that cannot move a vehicle must share the key — that sharing is the
// entire speedup.
func TestContactFingerprintIgnoresNonMobilityFields(t *testing.T) {
	base := ContactFingerprint(sim.DefaultConfig())
	mutations := map[string]func(*sim.Config){
		"ttl":       func(c *sim.Config) { c.TTL = units.Minutes(180) },
		"protocol":  func(c *sim.Config) { c.Protocol = sim.ProtoMaxProp },
		"policy":    func(c *sim.Config) { c.Policy = sim.PolicyLifetime },
		"rate":      func(c *sim.Config) { c.Rate = units.Mbit(1) },
		"buffers":   func(c *sim.Config) { c.VehicleBuffer = units.MB(10) },
		"traffic":   func(c *sim.Config) { c.MsgIntervalLo, c.MsgIntervalHi = 5, 10 },
		"msg sizes": func(c *sim.Config) { c.MsgSizeLo, c.MsgSizeHi = units.KB(1), units.KB(2) },
		"warmup":    func(c *sim.Config) { c.Warmup = units.Minutes(30) },
		"copies":    func(c *sim.Config) { c.SprayCopies = 4 },
	}
	for name, mutate := range mutations {
		c := sim.DefaultConfig()
		mutate(&c)
		if fp := ContactFingerprint(c); fp != base {
			t.Errorf("%s moved the fingerprint: %s vs %s — cells would stop sharing traces", name, fp, base)
		}
	}
}
