// Package scenario persists simulation configurations as JSON files, so
// scenarios can be versioned, shared and rerun byte-identically. The file
// schema speaks scenario-facing units (minutes, MB, km/h, Mbit/s) and is
// converted to the simulator's SI-unit Config on load.
//
// Beyond single scenarios, the schema carries whole experiments: the
// "sweep" and "series" blocks (SweepSpec, SeriesSpec) describe a family
// of scenarios swept over one named Axis — see docs/SWEEPS.md and the
// experiments package's LoadSpec. The axis registry (Axes, AxisByName,
// RegisterAxis) is the shared vocabulary: each axis is a named,
// serializable config mutation that declares whether it can move the
// contact process (and therefore ContactFingerprint).
//
// Config fields that cannot be serialized — a custom router factory, a
// trace callback, an in-memory map graph — are deliberately outside the
// schema; files describe the declarative part of a scenario, and callers
// attach code afterwards. Contact plans and scripted traffic are inlined.
package scenario

import (
	"encoding/json"
	"fmt"

	"vdtn/internal/contactplan"
	"vdtn/internal/detmap"
	"vdtn/internal/sim"
	"vdtn/internal/units"
)

// File is the on-disk scenario schema. Zero-valued fields inherit the
// paper defaults (sim.DefaultConfig) on load.
type File struct {
	// Name is a free-form label carried into run output.
	Name string `json:"name,omitempty"`
	Seed uint64 `json:"seed,omitempty"`

	DurationHours float64 `json:"duration_hours,omitempty"`
	WarmupMin     float64 `json:"warmup_min,omitempty"`

	Vehicles        int     `json:"vehicles,omitempty"`
	Relays          int     `json:"relays,omitempty"`
	VehicleBufferMB float64 `json:"vehicle_buffer_mb,omitempty"`
	RelayBufferMB   float64 `json:"relay_buffer_mb,omitempty"`

	SpeedLoKmh float64 `json:"speed_lo_kmh,omitempty"`
	SpeedHiKmh float64 `json:"speed_hi_kmh,omitempty"`
	PauseLoMin float64 `json:"pause_lo_min,omitempty"`
	PauseHiMin float64 `json:"pause_hi_min,omitempty"`

	RangeM   float64 `json:"range_m,omitempty"`
	RateMbit float64 `json:"rate_mbit,omitempty"`
	ScanSec  float64 `json:"scan_sec,omitempty"`

	MsgIntervalLoSec float64 `json:"msg_interval_lo_sec,omitempty"`
	MsgIntervalHiSec float64 `json:"msg_interval_hi_sec,omitempty"`
	MsgSizeLoKB      float64 `json:"msg_size_lo_kb,omitempty"`
	MsgSizeHiKB      float64 `json:"msg_size_hi_kb,omitempty"`
	TTLMin           float64 `json:"ttl_min,omitempty"`

	Protocol    string `json:"protocol,omitempty"` // epidemic|spraywait|spraywaitvanilla|maxprop|prophet|direct|firstcontact
	Policy      string `json:"policy,omitempty"`   // fifo|random|lifetime|size|hopmofo|oldestage
	SprayCopies int    `json:"spray_copies,omitempty"`

	// Contacts switches to contact-plan mode when non-empty.
	Contacts []Window `json:"contacts,omitempty"`
	// Script replaces random traffic when non-empty.
	Script []Message `json:"script,omitempty"`

	// Sweep, when non-nil, turns the file from a single scenario into a
	// declarative experiment: the scalar fields above become the base
	// scenario, Sweep names the swept axis and its values, and Series
	// lists the compared lines. The experiments package materializes the
	// (series × value) cell grid from it (see experiments.LoadSpec).
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Series are the sweep's compared lines. Empty with a Sweep present
	// means one series built from the base protocol/policy.
	Series []SeriesSpec `json:"series,omitempty"`
}

// SweepSpec declares the swept dimensions of an experiment file: one
// named axis with its values (or, for grid sweeps, a list of axes whose
// cross-product forms the cells), the reported metric, optional fixed
// axis settings applied to every cell before the swept values, and
// optional spec-level replication defaults.
type SweepSpec struct {
	// ID is the experiment handle ("fig5", "fleet-density", ...); it names
	// output files and CLI selection. Empty defaults to the file's Name.
	ID string `json:"id,omitempty"`
	// Title describes the experiment in table headers.
	Title string `json:"title,omitempty"`
	// Axis names the swept parameter (AxisByName). Exclusive with Axes.
	Axis string `json:"axis,omitempty"`
	// Values are the swept points, in plot order. Exclusive with Axes.
	Values []float64 `json:"values,omitempty"`
	// Axes declares a multi-axis grid sweep: cells are the cross-product
	// of every listed axis's values. The first axis heads the x column of
	// rendered tables; the rest fan each series out into one sub-series
	// per value combination. Exclusive with Axis/Values.
	Axes []GridAxisSpec `json:"axes,omitempty"`
	// Metric names the reported metric ("delivery_prob", "avg_delay_min",
	// ...); empty defaults to delivery probability. Any metric can still
	// be rendered later from the stored full results.
	Metric string `json:"metric,omitempty"`
	// Set holds fixed axis settings applied to every cell before the
	// swept value (e.g. {"ttl_min": 120} for a non-TTL ablation).
	Set map[string]float64 `json:"set,omitempty"`
	// Seeds and Scale are spec-level defaults for the matching run
	// options: the replication seeds each cell runs under and the
	// duration scale. Explicit ExperimentOptions (the CLI's -seeds and
	// -scale flags) override them; zero/absent means the global defaults
	// ({1} and 1).
	Seeds []uint64 `json:"seeds,omitempty"`
	Scale float64  `json:"scale,omitempty"`
}

// GridAxisSpec is one swept dimension of a grid sweep's "axes" list.
type GridAxisSpec struct {
	// Axis names the swept parameter (AxisByName).
	Axis string `json:"axis"`
	// Values are the swept points, in plot order.
	Values []float64 `json:"values"`
}

// SeriesSpec is one compared line of a sweep: a label, a routing
// selection, and optional per-series fixed axis settings applied after
// the swept value.
type SeriesSpec struct {
	Name     string             `json:"name"`
	Protocol string             `json:"protocol,omitempty"`
	Policy   string             `json:"policy,omitempty"`
	Set      map[string]float64 `json:"set,omitempty"`
}

// Window is one contact window in the schema.
type Window struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	A     int     `json:"a"`
	B     int     `json:"b"`
}

// Message is one scripted message in the schema.
type Message struct {
	TimeSec float64 `json:"time_sec"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	SizeKB  float64 `json:"size_kb"`
}

var protocolNames = map[string]sim.ProtocolKind{
	"epidemic":         sim.ProtoEpidemic,
	"spraywait":        sim.ProtoSprayAndWait,
	"spraywaitvanilla": sim.ProtoSprayAndWaitVanilla,
	"maxprop":          sim.ProtoMaxProp,
	"prophet":          sim.ProtoPRoPHET,
	"direct":           sim.ProtoDirectDelivery,
	"firstcontact":     sim.ProtoFirstContact,
}

var policyNames = map[string]sim.PolicyKind{
	"fifo":      sim.PolicyFIFOFIFO,
	"random":    sim.PolicyRandomFIFO,
	"lifetime":  sim.PolicyLifetime,
	"size":      sim.PolicySize,
	"hopmofo":   sim.PolicyHopMOFO,
	"oldestage": sim.PolicyFIFOOldestAge,
}

// ProtocolByName resolves a schema protocol name ("epidemic", "maxprop",
// ...) to its kind.
func ProtocolByName(name string) (sim.ProtocolKind, bool) {
	p, ok := protocolNames[name]
	return p, ok
}

// PolicyByName resolves a schema policy name ("fifo", "lifetime", ...) to
// its kind.
func PolicyByName(name string) (sim.PolicyKind, bool) {
	p, ok := policyNames[name]
	return p, ok
}

// ProtocolName returns the schema name of a protocol kind ("" if the kind
// is outside the schema). Sorted iteration makes the reverse lookup a
// function: if two names ever aliased one kind, the map's random order
// would pick a different winner per process.
func ProtocolName(kind sim.ProtocolKind) string {
	for _, name := range detmap.Keys(protocolNames) {
		if protocolNames[name] == kind {
			return name
		}
	}
	return ""
}

// PolicyName returns the schema name of a policy kind ("" if the kind is
// outside the schema).
func PolicyName(kind sim.PolicyKind) string {
	for _, name := range detmap.Keys(policyNames) {
		if policyNames[name] == kind {
			return name
		}
	}
	return ""
}

// Load parses JSON into a validated sim.Config.
func Load(data []byte) (sim.Config, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return sim.Config{}, fmt.Errorf("scenario: %w", err)
	}
	return f.Config()
}

// Config converts the file into a validated sim.Config, applying paper
// defaults for zero-valued fields.
func (f File) Config() (sim.Config, error) {
	c := sim.DefaultConfig()
	if f.Seed != 0 {
		c.Seed = f.Seed
	}
	if f.DurationHours != 0 {
		c.Duration = units.Hours(f.DurationHours)
	}
	c.Warmup = units.Minutes(f.WarmupMin)
	if f.Vehicles != 0 {
		c.Vehicles = f.Vehicles
	}
	if f.Relays != 0 || f.Contacts != nil {
		c.Relays = f.Relays
	}
	if f.VehicleBufferMB != 0 {
		c.VehicleBuffer = units.MB(f.VehicleBufferMB)
	}
	if f.RelayBufferMB != 0 {
		c.RelayBuffer = units.MB(f.RelayBufferMB)
	}
	if f.SpeedLoKmh != 0 {
		c.SpeedLo = units.KmhToMs(f.SpeedLoKmh)
	}
	if f.SpeedHiKmh != 0 {
		c.SpeedHi = units.KmhToMs(f.SpeedHiKmh)
	}
	if f.PauseLoMin != 0 {
		c.PauseLo = units.Minutes(f.PauseLoMin)
	}
	if f.PauseHiMin != 0 {
		c.PauseHi = units.Minutes(f.PauseHiMin)
	}
	if f.RangeM != 0 {
		c.Range = f.RangeM
	}
	if f.RateMbit != 0 {
		c.Rate = units.Mbit(f.RateMbit)
	}
	if f.ScanSec != 0 {
		c.ScanInterval = f.ScanSec
	}
	if f.MsgIntervalLoSec != 0 {
		c.MsgIntervalLo = f.MsgIntervalLoSec
	}
	if f.MsgIntervalHiSec != 0 {
		c.MsgIntervalHi = f.MsgIntervalHiSec
	}
	if f.MsgSizeLoKB != 0 {
		c.MsgSizeLo = units.KB(f.MsgSizeLoKB)
	}
	if f.MsgSizeHiKB != 0 {
		c.MsgSizeHi = units.KB(f.MsgSizeHiKB)
	}
	if f.TTLMin != 0 {
		c.TTL = units.Minutes(f.TTLMin)
	}
	if f.Protocol != "" {
		p, ok := protocolNames[f.Protocol]
		if !ok {
			return sim.Config{}, fmt.Errorf("scenario: unknown protocol %q", f.Protocol)
		}
		c.Protocol = p
	}
	if f.Policy != "" {
		p, ok := policyNames[f.Policy]
		if !ok {
			return sim.Config{}, fmt.Errorf("scenario: unknown policy %q", f.Policy)
		}
		c.Policy = p
	}
	if f.SprayCopies != 0 {
		c.SprayCopies = f.SprayCopies
	}
	if len(f.Contacts) > 0 {
		cs := make([]contactplan.Contact, len(f.Contacts))
		for i, w := range f.Contacts {
			cs[i] = contactplan.Contact{A: w.A, B: w.B, Start: w.Start, End: w.End}
		}
		plan, err := contactplan.New(cs)
		if err != nil {
			return sim.Config{}, err
		}
		c.Plan = plan
	}
	for _, m := range f.Script {
		c.Script = append(c.Script, sim.ScriptedMessage{
			Time: m.TimeSec,
			From: m.From,
			To:   m.To,
			Size: units.KB(m.SizeKB),
		})
	}
	if err := c.Validate(); err != nil {
		return sim.Config{}, err
	}
	return c, nil
}

// Save renders a Config back into indented JSON. Fields that match the
// paper defaults are written anyway, so the file is a complete record.
// Custom router factories, trace callbacks and in-memory maps are not
// representable and are silently omitted.
func Save(name string, c sim.Config) ([]byte, error) {
	f := File{
		Name:             name,
		Seed:             c.Seed,
		DurationHours:    c.Duration / 3600,
		WarmupMin:        c.Warmup / 60,
		Vehicles:         c.Vehicles,
		Relays:           c.Relays,
		VehicleBufferMB:  float64(c.VehicleBuffer) / 1e6,
		RelayBufferMB:    float64(c.RelayBuffer) / 1e6,
		SpeedLoKmh:       units.MsToKmh(c.SpeedLo),
		SpeedHiKmh:       units.MsToKmh(c.SpeedHi),
		PauseLoMin:       c.PauseLo / 60,
		PauseHiMin:       c.PauseHi / 60,
		RangeM:           c.Range,
		RateMbit:         float64(c.Rate) / 1e6,
		ScanSec:          c.ScanInterval,
		MsgIntervalLoSec: c.MsgIntervalLo,
		MsgIntervalHiSec: c.MsgIntervalHi,
		MsgSizeLoKB:      float64(c.MsgSizeLo) / 1e3,
		MsgSizeHiKB:      float64(c.MsgSizeHi) / 1e3,
		TTLMin:           c.TTL / 60,
		SprayCopies:      c.SprayCopies,
	}
	f.Protocol = ProtocolName(c.Protocol)
	f.Policy = PolicyName(c.Policy)
	if c.Plan != nil {
		for _, w := range c.Plan.Windows() {
			f.Contacts = append(f.Contacts, Window{Start: w.Start, End: w.End, A: w.A, B: w.B})
		}
	}
	for _, m := range c.Script {
		f.Script = append(f.Script, Message{
			TimeSec: m.Time, From: m.From, To: m.To, SizeKB: float64(m.Size) / 1e3,
		})
	}
	return json.MarshalIndent(f, "", "  ")
}
