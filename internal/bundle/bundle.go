// Package bundle models DTN messages ("bundles" in RFC 4838 terms): the
// unit of data that is created at a source vehicle, stored and carried in
// node buffers, replicated at contact opportunities, and either delivered
// to its destination or dropped on buffer overflow or TTL expiry.
//
// A Message value represents one *replica*. Replication copies the message
// (Clone), so per-replica state — the buffer arrival time FIFO policies key
// on, the Spray-and-Wait copy budget, the hop count and visited-node list —
// evolves independently at each carrying node, exactly as it does in a real
// store-carry-forward network.
package bundle

import (
	"fmt"
	"slices"

	"vdtn/internal/units"
)

// ID identifies a message (not a replica: all replicas share the ID).
type ID int64

// String renders the id in the ONE simulator's "M<n>" style.
func (id ID) String() string { return fmt.Sprintf("M%d", int64(id)) }

// Message is one replica of a DTN bundle.
type Message struct {
	ID   ID
	From int // source node id
	To   int // destination node id

	Size    units.Bytes
	Created float64 // creation time at the source, sim seconds
	TTL     float64 // lifetime from creation, seconds

	// Per-replica state.
	ReceivedAt float64 // when this replica entered the current node's buffer
	HopCount   int     // hops traversed from the source to the current node
	Copies     int     // Spray-and-Wait logical copy budget held by this replica
	Forwards   int     // times the current node relayed this replica onward
	Visited    []int   // node ids this replica passed through, source first
}

// New creates the original replica of a message at its source.
// The source is recorded as the first visited node.
func New(id ID, from, to int, size units.Bytes, created, ttl float64) *Message {
	if size <= 0 {
		panic(fmt.Sprintf("bundle: message %v with non-positive size %d", id, size))
	}
	if ttl <= 0 {
		panic(fmt.Sprintf("bundle: message %v with non-positive TTL %v", id, ttl))
	}
	return &Message{
		ID:         id,
		From:       from,
		To:         to,
		Size:       size,
		Created:    created,
		TTL:        ttl,
		ReceivedAt: created,
		Copies:     1,
		Visited:    []int{from},
	}
}

// Clone returns an independent replica: identical message identity and
// content, deep-copied per-replica state. The caller adjusts ReceivedAt,
// HopCount, Copies and Visited for the receiving node.
func (m *Message) Clone() *Message {
	c := *m
	c.Visited = slices.Clone(m.Visited)
	return &c
}

// ForwardTo returns the replica as it arrives at node `at` at time now:
// hop count incremented, node appended to the visited list, buffer arrival
// stamped. The copy budget is left at the original value; routers that
// split budgets (Spray and Wait) adjust it afterwards.
func (m *Message) ForwardTo(at int, now float64) *Message {
	c := m.Clone()
	c.HopCount++
	c.ReceivedAt = now
	c.Forwards = 0 // the receiving node has not relayed it yet
	if !c.HasVisited(at) {
		c.Visited = append(c.Visited, at)
	}
	return c
}

// ExpiresAt returns the absolute time the message's TTL runs out.
func (m *Message) ExpiresAt() float64 { return m.Created + m.TTL }

// RemainingTTL returns the lifetime left at time now; negative once expired.
// This is the quantity the paper's Lifetime DESC / Lifetime ASC policies
// order by.
func (m *Message) RemainingTTL(now float64) float64 { return m.ExpiresAt() - now }

// Expired reports whether the TTL has run out at time now.
func (m *Message) Expired(now float64) bool { return now >= m.ExpiresAt() }

// Age returns the time since creation.
func (m *Message) Age(now float64) float64 { return now - m.Created }

// HasVisited reports whether the replica passed through node id.
// MaxProp uses this to avoid re-forwarding to previous intermediaries.
func (m *Message) HasVisited(id int) bool { return slices.Contains(m.Visited, id) }

// String renders a compact debug form.
func (m *Message) String() string {
	return fmt.Sprintf("%v[%d->%d %v ttl=%s]",
		m.ID, m.From, m.To, m.Size, units.FormatDuration(m.TTL))
}

// Factory mints sequential message IDs for one simulation run.
type Factory struct {
	next ID
}

// NewFactory returns a factory starting at M1.
func NewFactory() *Factory { return &Factory{next: 1} }

// NextID returns a fresh unique id.
func (f *Factory) NextID() ID {
	id := f.next
	f.next++
	return id
}

// Minted returns how many ids have been handed out.
func (f *Factory) Minted() int64 { return int64(f.next) - 1 }
