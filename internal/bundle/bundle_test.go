package bundle

import (
	"testing"

	"vdtn/internal/units"
)

func TestNewMessage(t *testing.T) {
	m := New(7, 3, 9, units.MB(1), 100, units.Minutes(90))
	if m.ID != 7 || m.From != 3 || m.To != 9 {
		t.Fatalf("identity wrong: %+v", m)
	}
	if m.ReceivedAt != 100 {
		t.Fatalf("ReceivedAt = %v, want creation time", m.ReceivedAt)
	}
	if m.Copies != 1 {
		t.Fatalf("Copies = %d, want 1", m.Copies)
	}
	if len(m.Visited) != 1 || m.Visited[0] != 3 {
		t.Fatalf("Visited = %v, want [3]", m.Visited)
	}
	if m.HopCount != 0 {
		t.Fatalf("HopCount = %d, want 0", m.HopCount)
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero size": func() { New(1, 0, 1, 0, 0, 60) },
		"zero ttl":  func() { New(1, 0, 1, units.KB(1), 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTTLAccounting(t *testing.T) {
	m := New(1, 0, 1, units.KB(500), 1000, units.Minutes(60))
	if got := m.ExpiresAt(); got != 1000+3600 {
		t.Fatalf("ExpiresAt = %v", got)
	}
	if got := m.RemainingTTL(2000); got != 2600 {
		t.Fatalf("RemainingTTL = %v", got)
	}
	if m.Expired(4599.9) {
		t.Fatal("expired early")
	}
	if !m.Expired(4600) {
		t.Fatal("not expired at deadline")
	}
	if got := m.Age(1500); got != 500 {
		t.Fatalf("Age = %v", got)
	}
	if got := m.RemainingTTL(5000); got >= 0 {
		t.Fatalf("RemainingTTL after expiry = %v, want negative", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(1, 0, 5, units.MB(1), 0, 3600)
	m.Copies = 12
	c := m.Clone()
	c.Visited = append(c.Visited, 2)
	c.Copies = 6
	c.HopCount = 3
	if len(m.Visited) != 1 {
		t.Fatalf("clone mutated original Visited: %v", m.Visited)
	}
	if m.Copies != 12 || m.HopCount != 0 {
		t.Fatalf("clone mutated original scalar state: %+v", m)
	}
	if c.ID != m.ID || c.Size != m.Size {
		t.Fatal("clone lost identity")
	}
}

func TestForwardTo(t *testing.T) {
	m := New(1, 0, 5, units.MB(1), 0, 3600)
	m.Copies = 12
	got := m.ForwardTo(3, 250)
	if got.HopCount != 1 {
		t.Fatalf("HopCount = %d", got.HopCount)
	}
	if got.ReceivedAt != 250 {
		t.Fatalf("ReceivedAt = %v", got.ReceivedAt)
	}
	if !got.HasVisited(3) || !got.HasVisited(0) {
		t.Fatalf("Visited = %v", got.Visited)
	}
	if got.Copies != 12 {
		t.Fatalf("ForwardTo changed copy budget: %d", got.Copies)
	}
	// Original untouched.
	if m.HopCount != 0 || m.ReceivedAt != 0 || m.HasVisited(3) {
		t.Fatalf("ForwardTo mutated original: %+v", m)
	}
	// Re-visiting doesn't duplicate the entry.
	again := got.ForwardTo(3, 300)
	n := 0
	for _, v := range again.Visited {
		if v == 3 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("node 3 appears %d times in %v", n, again.Visited)
	}
}

func TestIDString(t *testing.T) {
	if got := ID(42).String(); got != "M42" {
		t.Fatalf("ID.String() = %q", got)
	}
}

func TestMessageString(t *testing.T) {
	m := New(3, 1, 2, units.MB(1), 0, units.Minutes(90))
	want := "M3[1->2 1.00 MB ttl=1h30m]"
	if got := m.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestFactorySequence(t *testing.T) {
	f := NewFactory()
	if f.Minted() != 0 {
		t.Fatalf("fresh factory minted %d", f.Minted())
	}
	a, b, c := f.NextID(), f.NextID(), f.NextID()
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("ids = %v, %v, %v", a, b, c)
	}
	if f.Minted() != 3 {
		t.Fatalf("Minted = %d", f.Minted())
	}
}
