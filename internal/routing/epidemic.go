package routing

import (
	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/core"
)

// Epidemic is flooding-based routing (Vahdat & Becker 2000): at every
// contact, nodes exchange the messages the other side does not yet have.
// With infinite buffers and bandwidth it is delay-optimal; under resource
// constraints its performance hinges on the scheduling and dropping policy
// in force — which is exactly the knob the paper turns.
type Epidemic struct {
	pol    core.Policy
	self   int
	buf    *buffer.Store
	queues queueSet
}

// NewEpidemic returns an Epidemic router governed by the given combined
// scheduling-dropping policy.
func NewEpidemic(pol core.Policy) *Epidemic {
	if pol.Schedule == nil || pol.Drop == nil {
		panic("routing: Epidemic with incomplete policy")
	}
	return &Epidemic{pol: pol, queues: newQueueSet()}
}

// Name implements Router.
func (e *Epidemic) Name() string { return "Epidemic" }

// Policy returns the combined policy in force (used by reports).
func (e *Epidemic) Policy() core.Policy { return e.pol }

// Attach implements Router.
func (e *Epidemic) Attach(self int, buf *buffer.Store) {
	e.self = self
	e.buf = buf
}

// ContactUp implements Router. Epidemic keeps no encounter state; the
// contact work is building the send queue.
func (e *Epidemic) ContactUp(now float64, p Peer) { e.Refresh(now, p) }

// Refresh implements Router: it (re)builds the send queue for p —
// messages destined to p first ("exchange deliverable messages first"),
// then everything p lacks, each group in scheduling-policy order.
func (e *Epidemic) Refresh(now float64, p Peer) {
	e.buf.Expire(now)
	var deliverable, rest []*bundle.Message
	for _, m := range e.buf.Messages() {
		switch {
		case p.HasDelivered(m.ID):
			continue
		case m.To == p.ID():
			deliverable = append(deliverable, m)
		case p.Has(m.ID):
			continue
		default:
			rest = append(rest, m)
		}
	}
	e.pol.Schedule.Order(now, deliverable)
	e.pol.Schedule.Order(now, rest)
	e.queues.set(p.ID(), append(deliverable, rest...))
}

// ContactDown implements Router.
func (e *Epidemic) ContactDown(now float64, p Peer) { e.queues.drop(p.ID()) }

// NextSend implements Router.
func (e *Epidemic) NextSend(now float64, p Peer) *Send {
	m := e.queues.pop(p.ID(), func(m *bundle.Message) bool {
		if !e.buf.Has(m.ID) || m.Expired(now) || p.HasDelivered(m.ID) {
			return false
		}
		return m.To == p.ID() || !p.Has(m.ID)
	})
	if m == nil {
		return nil
	}
	return &Send{Msg: m}
}

// OnSent implements Router. Epidemic keeps its replica after relaying; the
// only removal is the paper's rule that a node which hands a message to
// its final destination discards its own copy.
func (e *Epidemic) OnSent(now float64, p Peer, s *Send, delivered bool) {
	if delivered {
		e.buf.Remove(s.Msg.ID)
	}
}

// OnAbort implements Router: the replica stays buffered and is retried
// first if the contact resumes.
func (e *Epidemic) OnAbort(now float64, p Peer, s *Send) {
	e.queues.push(p.ID(), s.Msg)
}

// Receive implements Router: store unless duplicate or expired, evicting
// per the dropping policy.
func (e *Epidemic) Receive(now float64, m *bundle.Message, from Peer) (bool, []*bundle.Message) {
	if m.Expired(now) {
		return false, nil
	}
	return e.store(now, m)
}

// AddMessage implements Router.
func (e *Epidemic) AddMessage(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	return e.store(now, m)
}

func (e *Epidemic) store(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	e.buf.Expire(now)
	evicted, ok := e.buf.Add(now, m, e.pol.Drop)
	return ok, evicted
}
