package routing

import (
	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/core"
)

// DirectDelivery is the minimal baseline: a node carries its own messages
// and hands each one over only when it meets the destination itself.
// Zero replication — the delivery-ratio floor every multi-copy protocol
// should beat.
type DirectDelivery struct {
	pol    core.Policy
	self   int
	buf    *buffer.Store
	queues queueSet
}

// NewDirectDelivery returns a DirectDelivery router. The policy orders
// deliverable messages and governs eviction (the paper's policies apply
// even to this degenerate protocol).
func NewDirectDelivery(pol core.Policy) *DirectDelivery {
	if pol.Schedule == nil || pol.Drop == nil {
		panic("routing: DirectDelivery with incomplete policy")
	}
	return &DirectDelivery{pol: pol, queues: newQueueSet()}
}

// Name implements Router.
func (d *DirectDelivery) Name() string { return "DirectDelivery" }

// Attach implements Router.
func (d *DirectDelivery) Attach(self int, buf *buffer.Store) {
	d.self = self
	d.buf = buf
}

// ContactUp implements Router.
func (d *DirectDelivery) ContactUp(now float64, p Peer) { d.Refresh(now, p) }

// Refresh implements Router.
func (d *DirectDelivery) Refresh(now float64, p Peer) {
	d.buf.Expire(now)
	var deliverable []*bundle.Message
	for _, m := range d.buf.Messages() {
		if m.To == p.ID() && !p.HasDelivered(m.ID) {
			deliverable = append(deliverable, m)
		}
	}
	d.pol.Schedule.Order(now, deliverable)
	d.queues.set(p.ID(), deliverable)
}

// ContactDown implements Router.
func (d *DirectDelivery) ContactDown(now float64, p Peer) { d.queues.drop(p.ID()) }

// NextSend implements Router.
func (d *DirectDelivery) NextSend(now float64, p Peer) *Send {
	m := d.queues.pop(p.ID(), func(m *bundle.Message) bool {
		return d.buf.Has(m.ID) && !m.Expired(now) && m.To == p.ID() && !p.HasDelivered(m.ID)
	})
	if m == nil {
		return nil
	}
	return &Send{Msg: m}
}

// OnSent implements Router.
func (d *DirectDelivery) OnSent(now float64, p Peer, s *Send, delivered bool) {
	if delivered {
		d.buf.Remove(s.Msg.ID)
	}
}

// OnAbort implements Router.
func (d *DirectDelivery) OnAbort(now float64, p Peer, s *Send) {
	d.queues.push(p.ID(), s.Msg)
}

// Receive implements Router: DirectDelivery never accepts relays — only
// the destination takes a message off the source, and deliveries are
// handled by the simulator before Receive would be called.
func (d *DirectDelivery) Receive(now float64, m *bundle.Message, from Peer) (bool, []*bundle.Message) {
	return false, nil
}

// AddMessage implements Router.
func (d *DirectDelivery) AddMessage(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	d.buf.Expire(now)
	evicted, ok := d.buf.Add(now, m, d.pol.Drop)
	return ok, evicted
}

// FirstContact forwards the single copy of each message to the first
// usable contact and deletes its own replica — the message hops through
// the network with exactly one live copy (Jain, Fall, Patra 2004 baseline).
type FirstContact struct {
	pol    core.Policy
	self   int
	buf    *buffer.Store
	queues queueSet
}

// NewFirstContact returns a FirstContact router.
func NewFirstContact(pol core.Policy) *FirstContact {
	if pol.Schedule == nil || pol.Drop == nil {
		panic("routing: FirstContact with incomplete policy")
	}
	return &FirstContact{pol: pol, queues: newQueueSet()}
}

// Name implements Router.
func (f *FirstContact) Name() string { return "FirstContact" }

// Attach implements Router.
func (f *FirstContact) Attach(self int, buf *buffer.Store) {
	f.self = self
	f.buf = buf
}

// ContactUp implements Router.
func (f *FirstContact) ContactUp(now float64, p Peer) { f.Refresh(now, p) }

// Refresh implements Router.
func (f *FirstContact) Refresh(now float64, p Peer) {
	f.buf.Expire(now)
	var deliverable, rest []*bundle.Message
	for _, m := range f.buf.Messages() {
		switch {
		case p.HasDelivered(m.ID):
			continue
		case m.To == p.ID():
			deliverable = append(deliverable, m)
		case p.Has(m.ID) || m.HasVisited(p.ID()):
			continue
		default:
			rest = append(rest, m)
		}
	}
	f.pol.Schedule.Order(now, deliverable)
	f.pol.Schedule.Order(now, rest)
	f.queues.set(p.ID(), append(deliverable, rest...))
}

// ContactDown implements Router.
func (f *FirstContact) ContactDown(now float64, p Peer) { f.queues.drop(p.ID()) }

// NextSend implements Router.
func (f *FirstContact) NextSend(now float64, p Peer) *Send {
	m := f.queues.pop(p.ID(), func(m *bundle.Message) bool {
		if !f.buf.Has(m.ID) || m.Expired(now) || p.HasDelivered(m.ID) {
			return false
		}
		return m.To == p.ID() || (!p.Has(m.ID) && !m.HasVisited(p.ID()))
	})
	if m == nil {
		return nil
	}
	return &Send{Msg: m}
}

// OnSent implements Router: the copy moves — the sender always forgets it.
func (f *FirstContact) OnSent(now float64, p Peer, s *Send, delivered bool) {
	f.buf.Remove(s.Msg.ID)
}

// OnAbort implements Router.
func (f *FirstContact) OnAbort(now float64, p Peer, s *Send) {
	f.queues.push(p.ID(), s.Msg)
}

// Receive implements Router.
func (f *FirstContact) Receive(now float64, m *bundle.Message, from Peer) (bool, []*bundle.Message) {
	if m.Expired(now) {
		return false, nil
	}
	f.buf.Expire(now)
	evicted, ok := f.buf.Add(now, m, f.pol.Drop)
	return ok, evicted
}

// AddMessage implements Router.
func (f *FirstContact) AddMessage(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	f.buf.Expire(now)
	evicted, ok := f.buf.Add(now, m, f.pol.Drop)
	return ok, evicted
}
