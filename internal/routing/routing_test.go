package routing

import (
	"math"
	"testing"

	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/core"
	"vdtn/internal/units"
	"vdtn/internal/xrand"
)

// fakePeer implements Peer for router unit tests.
type fakePeer struct {
	id        int
	router    Router
	buf       *buffer.Store
	delivered map[bundle.ID]bool
}

func (f *fakePeer) ID() int { return f.id }

func (f *fakePeer) Has(id bundle.ID) bool { return f.buf != nil && f.buf.Has(id) }

func (f *fakePeer) HasDelivered(id bundle.ID) bool { return f.delivered[id] }

func (f *fakePeer) Router() Router { return f.router }

// newPeer builds a peer with an attached router and fresh buffer.
func newPeer(id int, r Router) *fakePeer {
	buf := buffer.NewStore(units.MB(100))
	if r != nil {
		r.Attach(id, buf)
	}
	return &fakePeer{id: id, router: r, buf: buf, delivered: map[bundle.ID]bool{}}
}

// attach gives router r a node id and buffer, returning the buffer.
func attach(r Router, id int) *buffer.Store {
	buf := buffer.NewStore(units.MB(100))
	r.Attach(id, buf)
	return buf
}

func msgTo(id bundle.ID, from, to int, created, ttl float64) *bundle.Message {
	return bundle.New(id, from, to, units.KB(500), created, ttl)
}

// drain pops sends until the router runs dry, returning message ids.
func drain(r Router, now float64, p Peer) []bundle.ID {
	var out []bundle.ID
	for {
		s := r.NextSend(now, p)
		if s == nil {
			return out
		}
		out = append(out, s.Msg.ID)
		if len(out) > 1000 {
			panic("drain: runaway queue")
		}
	}
}

// --- queueSet ------------------------------------------------------------

func TestQueueSetPopValidates(t *testing.T) {
	q := newQueueSet()
	a := msgTo(1, 0, 9, 0, 60)
	b := msgTo(2, 0, 9, 0, 60)
	c := msgTo(3, 0, 9, 0, 60)
	q.set(7, []*bundle.Message{a, b, c})
	got := q.pop(7, func(m *bundle.Message) bool { return m.ID != 1 })
	if got != b {
		t.Fatalf("pop = %v, want M2 (M1 invalid)", got)
	}
	got = q.pop(7, func(*bundle.Message) bool { return true })
	if got != c {
		t.Fatalf("pop = %v, want M3", got)
	}
	if q.pop(7, func(*bundle.Message) bool { return true }) != nil {
		t.Fatal("pop from drained queue returned message")
	}
}

func TestQueueSetPushFront(t *testing.T) {
	q := newQueueSet()
	a := msgTo(1, 0, 9, 0, 60)
	b := msgTo(2, 0, 9, 0, 60)
	q.set(7, []*bundle.Message{a})
	q.push(7, b)
	if got := q.pop(7, func(*bundle.Message) bool { return true }); got != b {
		t.Fatalf("pushed message not first: got %v", got)
	}
}

// --- Epidemic ------------------------------------------------------------

func TestEpidemicSendsWhatPeerLacks(t *testing.T) {
	e := NewEpidemic(core.FIFOFIFO())
	buf := attach(e, 0)
	peer := newPeer(1, NewEpidemic(core.FIFOFIFO()))

	for i := 1; i <= 3; i++ {
		e.AddMessage(0, msgTo(bundle.ID(i), 0, 9, 0, 3600))
	}
	// Peer already holds M2.
	peer.buf.Add(0, msgTo(2, 0, 9, 0, 3600), nil)

	e.ContactUp(10, peer)
	got := drain(e, 10, peer)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("sends = %v, want [M1 M3]", got)
	}
	_ = buf
}

func TestEpidemicDeliverableFirst(t *testing.T) {
	e := NewEpidemic(core.FIFOFIFO())
	attach(e, 0)
	peer := newPeer(5, NewEpidemic(core.FIFOFIFO()))

	e.AddMessage(0, msgTo(1, 0, 9, 0, 3600)) // relay candidate, arrived first
	e.AddMessage(1, msgTo(2, 0, 5, 1, 3600)) // destined to peer, arrived later

	e.ContactUp(10, peer)
	got := drain(e, 10, peer)
	if len(got) != 2 || got[0] != 2 {
		t.Fatalf("sends = %v, want deliverable M2 first", got)
	}
}

func TestEpidemicLifetimeScheduling(t *testing.T) {
	e := NewEpidemic(core.Lifetime())
	attach(e, 0)
	peer := newPeer(1, NewEpidemic(core.Lifetime()))

	e.AddMessage(0, msgTo(1, 0, 9, 0, units.Minutes(60)))  // expires 3600
	e.AddMessage(0, msgTo(2, 0, 9, 0, units.Minutes(180))) // expires 10800
	e.AddMessage(0, msgTo(3, 0, 9, 0, units.Minutes(120))) // expires 7200

	e.ContactUp(10, peer)
	got := drain(e, 10, peer)
	want := []bundle.ID{2, 3, 1} // longest remaining TTL first
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sends = %v, want %v", got, want)
		}
	}
}

func TestEpidemicOnSentDeliveredDiscardsCopy(t *testing.T) {
	e := NewEpidemic(core.FIFOFIFO())
	buf := attach(e, 0)
	peer := newPeer(5, nil)
	m := msgTo(1, 0, 5, 0, 3600)
	e.AddMessage(0, m)
	e.OnSent(10, peer, &Send{Msg: m}, true)
	if buf.Has(1) {
		t.Fatal("replica kept after delivering to destination (paper rule)")
	}
}

func TestEpidemicOnSentRelayedKeepsCopy(t *testing.T) {
	e := NewEpidemic(core.FIFOFIFO())
	buf := attach(e, 0)
	peer := newPeer(1, nil)
	m := msgTo(1, 0, 9, 0, 3600)
	e.AddMessage(0, m)
	e.OnSent(10, peer, &Send{Msg: m}, false)
	if !buf.Has(1) {
		t.Fatal("replica lost after relaying (epidemic keeps copies)")
	}
}

func TestEpidemicNextSendRevalidates(t *testing.T) {
	e := NewEpidemic(core.FIFOFIFO())
	buf := attach(e, 0)
	peer := newPeer(1, NewEpidemic(core.FIFOFIFO()))
	m := msgTo(1, 0, 9, 0, 3600)
	e.AddMessage(0, m)
	e.ContactUp(10, peer)
	buf.Remove(1) // evicted while queued
	if s := e.NextSend(11, peer); s != nil {
		t.Fatalf("sent message no longer in buffer: %v", s.Msg)
	}
}

func TestEpidemicSkipsExpiredAtSendTime(t *testing.T) {
	e := NewEpidemic(core.FIFOFIFO())
	attach(e, 0)
	peer := newPeer(1, NewEpidemic(core.FIFOFIFO()))
	e.AddMessage(0, msgTo(1, 0, 9, 0, 100)) // expires at 100
	e.ContactUp(50, peer)
	if s := e.NextSend(150, peer); s != nil {
		t.Fatal("expired message offered")
	}
}

func TestEpidemicReceiveRejectsExpired(t *testing.T) {
	e := NewEpidemic(core.FIFOFIFO())
	attach(e, 0)
	peer := newPeer(1, nil)
	m := msgTo(1, 1, 9, 0, 100)
	if ok, _ := e.Receive(200, m, peer); ok {
		t.Fatal("expired replica accepted")
	}
}

func TestEpidemicReceiveEvictsByPolicy(t *testing.T) {
	e := NewEpidemic(core.Lifetime())
	buf := buffer.NewStore(units.MB(1))
	e.Attach(0, buf)
	peer := newPeer(1, nil)
	short := bundle.New(1, 1, 9, units.KB(600), 0, 600) // expires soonest
	long := bundle.New(2, 1, 9, units.KB(300), 0, 7200)
	e.Receive(10, short, peer)
	e.Receive(10, long, peer)
	incoming := bundle.New(3, 1, 9, units.KB(500), 10, 7200)
	ok, evicted := e.Receive(10, incoming, peer)
	if !ok {
		t.Fatal("incoming rejected")
	}
	if len(evicted) != 1 || evicted[0].ID != 1 {
		t.Fatalf("evicted %v, want [M1] (Lifetime ASC)", evicted)
	}
	if !buf.Has(2) || !buf.Has(3) {
		t.Fatal("wrong survivors")
	}
}

func TestEpidemicAbortRequeuesFirst(t *testing.T) {
	e := NewEpidemic(core.FIFOFIFO())
	attach(e, 0)
	peer := newPeer(1, NewEpidemic(core.FIFOFIFO()))
	m1 := msgTo(1, 0, 9, 0, 3600)
	m2 := msgTo(2, 0, 9, 1, 3600)
	e.AddMessage(0, m1)
	e.AddMessage(1, m2)
	e.ContactUp(10, peer)
	s := e.NextSend(10, peer)
	if s.Msg.ID != 1 {
		t.Fatalf("first send = %v", s.Msg.ID)
	}
	e.OnAbort(11, peer, s)
	if got := e.NextSend(12, peer); got.Msg.ID != 1 {
		t.Fatalf("after abort, next send = %v, want M1 retried", got.Msg.ID)
	}
}

func TestEpidemicSkipsPeerDeliveredMessages(t *testing.T) {
	e := NewEpidemic(core.FIFOFIFO())
	attach(e, 0)
	peer := newPeer(5, NewEpidemic(core.FIFOFIFO()))
	peer.delivered[1] = true
	e.AddMessage(0, msgTo(1, 0, 5, 0, 3600))
	e.ContactUp(10, peer)
	if s := e.NextSend(10, peer); s != nil {
		t.Fatal("offered a message the destination already received")
	}
}

// --- Spray and Wait ------------------------------------------------------

func TestSprayAndWaitBudgetOnCreate(t *testing.T) {
	s := NewSprayAndWait(core.FIFOFIFO(), 12, true)
	buf := attach(s, 0)
	m := msgTo(1, 0, 9, 0, 3600)
	s.AddMessage(0, m)
	got, _ := buf.Get(1)
	if got.Copies != 12 {
		t.Fatalf("Copies = %d, want 12", got.Copies)
	}
}

func TestSprayAndWaitBinarySplit(t *testing.T) {
	s := NewSprayAndWait(core.FIFOFIFO(), 12, true)
	buf := attach(s, 0)
	peer := newPeer(1, NewSprayAndWait(core.FIFOFIFO(), 12, true))
	m := msgTo(1, 0, 9, 0, 3600)
	s.AddMessage(0, m)
	s.ContactUp(10, peer)
	send := s.NextSend(10, peer)
	if send == nil {
		t.Fatal("nothing offered")
	}
	if send.TransferCopies != 6 {
		t.Fatalf("TransferCopies = %d, want 6 (floor(12/2))", send.TransferCopies)
	}
	s.OnSent(11, peer, send, false)
	got, _ := buf.Get(1)
	if got.Copies != 6 {
		t.Fatalf("sender keeps %d, want 6", got.Copies)
	}
}

func TestSprayAndWaitOddBudgetSplit(t *testing.T) {
	s := NewSprayAndWait(core.FIFOFIFO(), 5, true)
	buf := attach(s, 0)
	peer := newPeer(1, NewSprayAndWait(core.FIFOFIFO(), 5, true))
	s.AddMessage(0, msgTo(1, 0, 9, 0, 3600))
	s.ContactUp(10, peer)
	send := s.NextSend(10, peer)
	if send.TransferCopies != 2 {
		t.Fatalf("TransferCopies = %d, want floor(5/2)=2", send.TransferCopies)
	}
	s.OnSent(11, peer, send, false)
	got, _ := buf.Get(1)
	if got.Copies != 3 {
		t.Fatalf("sender keeps %d, want ceil(5/2)=3", got.Copies)
	}
}

func TestSprayAndWaitWaitPhase(t *testing.T) {
	s := NewSprayAndWait(core.FIFOFIFO(), 12, true)
	buf := attach(s, 0)
	relay := newPeer(1, NewSprayAndWait(core.FIFOFIFO(), 12, true))
	dest := newPeer(9, NewSprayAndWait(core.FIFOFIFO(), 12, true))

	m := msgTo(1, 0, 9, 0, 3600)
	s.AddMessage(0, m)
	got, _ := buf.Get(1)
	got.Copies = 1 // force wait phase

	s.ContactUp(10, relay)
	if send := s.NextSend(10, relay); send != nil {
		t.Fatal("wait-phase replica sprayed to relay")
	}
	s.ContactUp(20, dest)
	if send := s.NextSend(20, dest); send == nil {
		t.Fatal("wait-phase replica not offered to destination")
	}
}

func TestSprayAndWaitVanillaGivesSingles(t *testing.T) {
	s := NewSprayAndWait(core.FIFOFIFO(), 12, false)
	buf := attach(s, 0)
	peer := newPeer(1, NewSprayAndWait(core.FIFOFIFO(), 12, false))
	s.AddMessage(0, msgTo(1, 0, 9, 0, 3600))
	s.ContactUp(10, peer)
	send := s.NextSend(10, peer)
	if send.TransferCopies != 1 {
		t.Fatalf("vanilla TransferCopies = %d, want 1", send.TransferCopies)
	}
	s.OnSent(11, peer, send, false)
	got, _ := buf.Get(1)
	if got.Copies != 11 {
		t.Fatalf("sender keeps %d, want 11", got.Copies)
	}
}

func TestSprayAndWaitCopyConservation(t *testing.T) {
	// A chain of binary handoffs never creates copies out of thin air:
	// the sum of budgets across replicas equals the initial N.
	const n = 12
	routers := make([]*SprayAndWait, 6)
	bufs := make([]*buffer.Store, 6)
	peers := make([]*fakePeer, 6)
	for i := range routers {
		routers[i] = NewSprayAndWait(core.FIFOFIFO(), n, true)
		bufs[i] = buffer.NewStore(units.MB(100))
		routers[i].Attach(i, bufs[i])
		peers[i] = &fakePeer{id: i, router: routers[i], buf: bufs[i], delivered: map[bundle.ID]bool{}}
	}
	routers[0].AddMessage(0, msgTo(1, 0, 99, 0, 3600))

	now := 1.0
	// Spray pairwise: 0->1, 0->2, 1->3, 2->4, 3->5.
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}} {
		a, b := pair[0], pair[1]
		routers[a].ContactUp(now, peers[b])
		if send := routers[a].NextSend(now, peers[b]); send != nil {
			wire := send.Msg.ForwardTo(b, now)
			wire.Copies = send.TransferCopies
			routers[b].Receive(now, wire, peers[a])
			routers[a].OnSent(now, peers[b], send, false)
		}
		routers[a].ContactDown(now, peers[b])
		now++
	}
	total := 0
	for i := range bufs {
		if m, ok := bufs[i].Get(1); ok {
			total += m.Copies
		}
	}
	if total != n {
		t.Fatalf("copy budget not conserved: total %d, want %d", total, n)
	}
}

func TestSprayAndWaitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero copies did not panic")
		}
	}()
	NewSprayAndWait(core.FIFOFIFO(), 0, true)
}

// --- PRoPHET -------------------------------------------------------------

func TestProphetEncounterBoost(t *testing.T) {
	a := NewProphet(DefaultProphetConfig())
	attach(a, 0)
	bRouter := NewProphet(DefaultProphetConfig())
	peer := newPeer(1, bRouter)

	a.ContactUp(0, peer)
	if p := a.Predictability(0, 1); math.Abs(p-0.75) > 1e-9 {
		t.Fatalf("P after first encounter = %v, want 0.75", p)
	}
	a.ContactDown(0, peer)
	a.ContactUp(0, peer)
	// 0.75 + (1-0.75)*0.75 = 0.9375 (no time passed, no aging).
	if p := a.Predictability(0, 1); math.Abs(p-0.9375) > 1e-9 {
		t.Fatalf("P after second encounter = %v, want 0.9375", p)
	}
}

func TestProphetAging(t *testing.T) {
	cfg := DefaultProphetConfig() // gamma 0.98, unit 30 s
	a := NewProphet(cfg)
	attach(a, 0)
	peer := newPeer(1, NewProphet(cfg))
	a.ContactUp(0, peer)
	// After 300 s = 10 time units: 0.75 * 0.98^10.
	want := 0.75 * math.Pow(0.98, 10)
	if p := a.Predictability(300, 1); math.Abs(p-want) > 1e-9 {
		t.Fatalf("aged P = %v, want %v", p, want)
	}
}

func TestProphetTransitivity(t *testing.T) {
	cfg := DefaultProphetConfig()
	a := NewProphet(cfg)
	attach(a, 0)
	b := NewProphet(cfg)
	bBuf := buffer.NewStore(units.MB(100))
	b.Attach(1, bBuf)
	c := NewProphet(cfg)
	attach(c, 2)

	// B meets C: P_b(c) = 0.75.
	cPeer := &fakePeer{id: 2, router: c, buf: buffer.NewStore(units.MB(1)), delivered: map[bundle.ID]bool{}}
	b.ContactUp(0, cPeer)

	// A meets B: direct P_a(b) = 0.75; transitive P_a(c) =
	// 0 + 1*0.75*0.75*0.25 = 0.140625.
	bPeer := &fakePeer{id: 1, router: b, buf: bBuf, delivered: map[bundle.ID]bool{}}
	a.ContactUp(0, bPeer)
	if p := a.Predictability(0, 2); math.Abs(p-0.140625) > 1e-9 {
		t.Fatalf("transitive P = %v, want 0.140625", p)
	}
}

func TestProphetGRTRMaxForwarding(t *testing.T) {
	cfg := DefaultProphetConfig()
	a := NewProphet(cfg)
	attach(a, 0)
	b := NewProphet(cfg)
	bBuf := buffer.NewStore(units.MB(100))
	b.Attach(1, bBuf)

	// B knows destinations 7 (strongly) and 8 (weakly); A knows neither.
	seven := &fakePeer{id: 7, router: NewProphet(cfg), buf: buffer.NewStore(units.MB(1)), delivered: map[bundle.ID]bool{}}
	seven.router.Attach(7, seven.buf)
	eight := &fakePeer{id: 8, router: NewProphet(cfg), buf: buffer.NewStore(units.MB(1)), delivered: map[bundle.ID]bool{}}
	eight.router.Attach(8, eight.buf)
	b.ContactUp(0, eight)
	b.ContactDown(0, eight)
	b.ContactUp(0, seven)
	b.ContactDown(0, seven)
	b.ContactUp(0, seven) // P_b(7) ≈ 0.94 > P_b(8) ≈ 0.75
	b.ContactDown(0, seven)

	a.AddMessage(0, msgTo(1, 0, 8, 0, 3600))
	a.AddMessage(0, msgTo(2, 0, 7, 0, 3600))
	a.AddMessage(0, msgTo(3, 0, 9, 0, 3600)) // dest unknown to both: not offered

	bPeer := &fakePeer{id: 1, router: b, buf: bBuf, delivered: map[bundle.ID]bool{}}
	a.ContactUp(1, bPeer)
	got := drain(a, 1, bPeer)
	// GRTRMax: M2 (P_b(7) highest) then M1; M3 not offered.
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("GRTRMax order = %v, want [M2 M1]", got)
	}
}

func TestProphetDoesNotOfferWhenOwnPredBetter(t *testing.T) {
	cfg := DefaultProphetConfig()
	a := NewProphet(cfg)
	attach(a, 0)
	b := NewProphet(cfg)
	bBuf := buffer.NewStore(units.MB(100))
	b.Attach(1, bBuf)

	// A itself met 7; B never did.
	seven := &fakePeer{id: 7, router: NewProphet(cfg), buf: buffer.NewStore(units.MB(1)), delivered: map[bundle.ID]bool{}}
	seven.router.Attach(7, seven.buf)
	a.ContactUp(0, seven)
	a.ContactDown(0, seven)

	a.AddMessage(0, msgTo(1, 0, 7, 0, 3600))
	bPeer := &fakePeer{id: 1, router: b, buf: bBuf, delivered: map[bundle.ID]bool{}}
	a.ContactUp(1, bPeer)
	if got := drain(a, 1, bPeer); len(got) != 0 {
		t.Fatalf("offered %v to a worse-positioned peer", got)
	}
}

func TestProphetDeliverableAlwaysSent(t *testing.T) {
	cfg := DefaultProphetConfig()
	a := NewProphet(cfg)
	attach(a, 0)
	b := NewProphet(cfg)
	bBuf := buffer.NewStore(units.MB(100))
	b.Attach(5, bBuf)
	a.AddMessage(0, msgTo(1, 0, 5, 0, 3600))
	bPeer := &fakePeer{id: 5, router: b, buf: bBuf, delivered: map[bundle.ID]bool{}}
	a.ContactUp(1, bPeer)
	if got := drain(a, 1, bPeer); len(got) != 1 || got[0] != 1 {
		t.Fatalf("deliverable not sent: %v", got)
	}
}

func TestProphetInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad gamma did not panic")
		}
	}()
	NewProphet(ProphetConfig{PInit: 0.75, Beta: 0.25, Gamma: 1.5, TimeUnit: 30})
}

// --- MaxProp -------------------------------------------------------------

func TestMaxPropMeetingLikelihoods(t *testing.T) {
	mx := NewMaxProp(MaxPropConfig{})
	attach(mx, 0)
	p1 := newPeer(1, NewMaxProp(MaxPropConfig{}))
	p2 := newPeer(2, NewMaxProp(MaxPropConfig{}))

	mx.ContactUp(0, p1)
	if f := mx.MeetingLikelihood(1); math.Abs(f-1.0) > 1e-9 {
		t.Fatalf("f(1) = %v, want 1.0 after sole meeting", f)
	}
	mx.ContactDown(0, p1)
	mx.ContactUp(1, p2)
	if f := mx.MeetingLikelihood(1); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("f(1) = %v, want 0.5", f)
	}
	mx.ContactDown(1, p2)
	mx.ContactUp(2, p1)
	// f(1) = (0.5+1)/2 = 0.75, f(2) = 0.25.
	if f := mx.MeetingLikelihood(1); math.Abs(f-0.75) > 1e-9 {
		t.Fatalf("f(1) = %v, want 0.75", f)
	}
	if f := mx.MeetingLikelihood(2); math.Abs(f-0.25) > 1e-9 {
		t.Fatalf("f(2) = %v, want 0.25", f)
	}
}

func TestMaxPropCostDirectAndPath(t *testing.T) {
	mx := NewMaxProp(MaxPropConfig{})
	attach(mx, 0)
	b := NewMaxProp(MaxPropConfig{})
	bBuf := buffer.NewStore(units.MB(100))
	b.Attach(1, bBuf)

	// B has met node 2 only: f_b(2) = 1.
	two := newPeer(2, NewMaxProp(MaxPropConfig{}))
	b.ContactUp(0, two)
	b.ContactDown(0, two)

	// A meets B: f_a(1) = 1, and A snapshots B's vector.
	bPeer := &fakePeer{id: 1, router: b, buf: bBuf, delivered: map[bundle.ID]bool{}}
	mx.ContactUp(1, bPeer)

	if c := mx.Cost(1); math.Abs(c-0.0) > 1e-9 {
		t.Fatalf("cost(1) = %v, want 0 (f=1)", c)
	}
	// Path 0->1->2: (1-1) + (1-1) = 0... B's vector after meeting A
	// changed, but the snapshot was taken during A's ContactUp, after B's
	// own ContactUp may not have run. Here B never met A from B's side,
	// so snapshot has only f_b(2)=1: cost(2) = (1-f_a(1)) + (1-f_b(2)) = 0.
	if c := mx.Cost(2); math.Abs(c-0.0) > 1e-9 {
		t.Fatalf("cost(2) = %v, want 0", c)
	}
	if c := mx.Cost(99); !math.IsInf(c, 1) {
		t.Fatalf("cost(unknown) = %v, want +Inf", c)
	}
	if c := mx.Cost(0); c != 0 {
		t.Fatalf("cost(self) = %v, want 0", c)
	}
}

func TestMaxPropAckPropagation(t *testing.T) {
	a := NewMaxProp(MaxPropConfig{})
	aBuf := attach(a, 0)
	b := NewMaxProp(MaxPropConfig{})
	bBuf := buffer.NewStore(units.MB(100))
	b.Attach(1, bBuf)

	// Both hold M1; B learns it was delivered.
	a.AddMessage(0, msgTo(1, 0, 9, 0, 3600))
	b.AddMessage(0, msgTo(1, 0, 9, 0, 3600))
	b.OnDelivered(1, msgTo(1, 0, 9, 0, 3600))

	bPeer := &fakePeer{id: 1, router: b, buf: bBuf, delivered: map[bundle.ID]bool{}}
	a.ContactUp(2, bPeer)
	if !a.Acked(1) {
		t.Fatal("ack did not propagate at contact")
	}
	if aBuf.Has(1) {
		t.Fatal("acked replica not purged from buffer")
	}
}

func TestMaxPropOnSentDeliveredCreatesAck(t *testing.T) {
	a := NewMaxProp(MaxPropConfig{})
	buf := attach(a, 0)
	m := msgTo(1, 0, 5, 0, 3600)
	a.AddMessage(0, m)
	peer := newPeer(5, nil)
	a.OnSent(1, peer, &Send{Msg: m}, true)
	if !a.Acked(1) {
		t.Fatal("no ack recorded on delivery")
	}
	if buf.Has(1) {
		t.Fatal("replica kept after delivery")
	}
}

func TestMaxPropVisitedNodeNotReoffered(t *testing.T) {
	a := NewMaxProp(MaxPropConfig{})
	attach(a, 0)
	b := NewMaxProp(MaxPropConfig{})
	bBuf := buffer.NewStore(units.MB(100))
	b.Attach(3, bBuf)

	m := msgTo(1, 9, 7, 0, 3600)
	m = m.ForwardTo(3, 1) // passed through node 3 already
	m = m.ForwardTo(0, 2)
	a.Receive(2, m, newPeer(3, nil))

	bPeer := &fakePeer{id: 3, router: b, buf: bBuf, delivered: map[bundle.ID]bool{}}
	a.ContactUp(3, bPeer)
	if got := drain(a, 3, bPeer); len(got) != 0 {
		t.Fatalf("re-offered %v to previous intermediary", got)
	}
}

func TestMaxPropRejectsAckedReceive(t *testing.T) {
	a := NewMaxProp(MaxPropConfig{})
	attach(a, 0)
	a.OnDelivered(0, msgTo(1, 5, 9, 0, 3600))
	ok, _ := a.Receive(1, msgTo(1, 5, 9, 0, 3600).ForwardTo(0, 1), newPeer(5, nil))
	if ok {
		t.Fatal("accepted a replica known to be delivered")
	}
}

func TestMaxPropHopThresholdColdStart(t *testing.T) {
	mx := NewMaxProp(MaxPropConfig{})
	attach(mx, 0)
	if got := mx.hopThreshold(); got != 0 {
		t.Fatalf("cold-start threshold = %d, want 0", got)
	}
}

func TestMaxPropDropOrder(t *testing.T) {
	mx := NewMaxProp(MaxPropConfig{})
	buf := buffer.NewStore(units.MB(2))
	mx.Attach(0, buf)

	// Know destination 7 well (cost 0), destination 8 not at all (cost inf).
	p7 := newPeer(7, NewMaxProp(MaxPropConfig{}))
	mx.ContactUp(0, p7)
	mx.ContactDown(0, p7)

	toKnown := bundle.New(1, 9, 7, units.KB(900), 0, 3600)
	toUnknown := bundle.New(2, 9, 8, units.KB(900), 0, 3600)
	mx.Receive(1, toKnown.ForwardTo(0, 1), p7)
	mx.Receive(1, toUnknown.ForwardTo(0, 1), p7)

	// Buffer 2 MB, holds 1.8 MB; incoming 900 KB forces one eviction:
	// the unknown-destination (highest-cost) replica must go.
	incoming := bundle.New(3, 9, 7, units.KB(900), 1, 3600)
	ok, evicted := mx.Receive(2, incoming.ForwardTo(0, 2), p7)
	if !ok {
		t.Fatal("incoming rejected")
	}
	if len(evicted) != 1 || evicted[0].ID != 2 {
		t.Fatalf("evicted %v, want [M2] (highest cost)", evicted)
	}
}

func TestMaxPropDropsAckedFirst(t *testing.T) {
	mx := NewMaxProp(MaxPropConfig{})
	buf := buffer.NewStore(units.MB(2))
	mx.Attach(0, buf)
	p := newPeer(7, nil)
	m1 := bundle.New(1, 9, 7, units.KB(900), 0, 3600)
	m2 := bundle.New(2, 9, 8, units.KB(900), 0, 3600)
	mx.Receive(1, m1.ForwardTo(0, 1), p)
	mx.Receive(1, m2.ForwardTo(0, 1), p)
	mx.acked[1] = true // delivered elsewhere, not yet purged
	incoming := bundle.New(3, 9, 7, units.KB(900), 1, 3600)
	_, evicted := mx.Receive(2, incoming.ForwardTo(0, 2), p)
	if len(evicted) != 1 || evicted[0].ID != 1 {
		t.Fatalf("evicted %v, want acked M1 first", evicted)
	}
}

// --- Baselines -----------------------------------------------------------

func TestDirectDeliveryOnlyToDestination(t *testing.T) {
	d := NewDirectDelivery(core.FIFOFIFO())
	attach(d, 0)
	relay := newPeer(1, NewDirectDelivery(core.FIFOFIFO()))
	dest := newPeer(9, NewDirectDelivery(core.FIFOFIFO()))
	d.AddMessage(0, msgTo(1, 0, 9, 0, 3600))

	d.ContactUp(1, relay)
	if got := drain(d, 1, relay); len(got) != 0 {
		t.Fatalf("DirectDelivery relayed %v", got)
	}
	d.ContactUp(2, dest)
	if got := drain(d, 2, dest); len(got) != 1 {
		t.Fatalf("DirectDelivery did not deliver: %v", got)
	}
}

func TestDirectDeliveryRefusesRelays(t *testing.T) {
	d := NewDirectDelivery(core.FIFOFIFO())
	attach(d, 0)
	if ok, _ := d.Receive(1, msgTo(1, 2, 9, 0, 3600), newPeer(2, nil)); ok {
		t.Fatal("DirectDelivery accepted a relay")
	}
}

func TestFirstContactMovesSingleCopy(t *testing.T) {
	f := NewFirstContact(core.FIFOFIFO())
	buf := attach(f, 0)
	peer := newPeer(1, NewFirstContact(core.FIFOFIFO()))
	m := msgTo(1, 0, 9, 0, 3600)
	f.AddMessage(0, m)
	f.ContactUp(1, peer)
	send := f.NextSend(1, peer)
	if send == nil {
		t.Fatal("FirstContact offered nothing")
	}
	f.OnSent(2, peer, send, false)
	if buf.Has(1) {
		t.Fatal("FirstContact kept its copy after forwarding")
	}
}

func TestFirstContactAvoidsVisited(t *testing.T) {
	f := NewFirstContact(core.FIFOFIFO())
	attach(f, 5)
	m := msgTo(1, 0, 9, 0, 3600).ForwardTo(5, 1)
	f.Receive(1, m, newPeer(0, nil))
	back := newPeer(0, NewFirstContact(core.FIFOFIFO()))
	f.ContactUp(2, back)
	if got := drain(f, 2, back); len(got) != 0 {
		t.Fatalf("FirstContact bounced the copy back: %v", got)
	}
}

// --- Shared invariants ---------------------------------------------------

// Property: for every protocol, NextSend never returns an expired message
// or one absent from the buffer, under randomized buffer churn.
func TestAllRoutersNextSendInvariant(t *testing.T) {
	rng := xrand.New(31)
	build := func() []Router {
		return []Router{
			NewEpidemic(core.Lifetime()),
			NewSprayAndWait(core.Lifetime(), 12, true),
			NewProphet(DefaultProphetConfig()),
			NewMaxProp(MaxPropConfig{}),
			NewDirectDelivery(core.FIFOFIFO()),
			NewFirstContact(core.FIFOFIFO()),
		}
	}
	for _, r := range build() {
		buf := attach(r, 0)
		peerRouters := build()
		peer := newPeer(1, peerRouters[0])
		now := 0.0
		for step := 0; step < 200; step++ {
			now += rng.Float64() * 30
			switch rng.IntN(4) {
			case 0:
				id := bundle.ID(step + 1)
				ttl := 30 + rng.Float64()*600
				dest := []int{1, 9}[rng.IntN(2)]
				r.AddMessage(now, bundle.New(id, 0, dest, units.KB(500), now, ttl))
			case 1:
				r.ContactUp(now, peer)
			case 2:
				r.ContactDown(now, peer)
			case 3:
				s := r.NextSend(now, peer)
				if s == nil {
					continue
				}
				if !buf.Has(s.Msg.ID) {
					t.Fatalf("%s offered a message not in its buffer", r.Name())
				}
				if s.Msg.Expired(now) {
					t.Fatalf("%s offered an expired message", r.Name())
				}
				if rng.Bool(0.5) {
					r.OnSent(now, peer, s, s.Msg.To == peer.ID())
				} else {
					r.OnAbort(now, peer, s)
				}
			}
		}
	}
}
