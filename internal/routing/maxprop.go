package routing

import (
	"container/heap"
	"maps"
	"math"
	"sort"

	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/detmap"
	"vdtn/internal/units"
)

// MaxPropConfig parameterizes the MaxProp router.
type MaxPropConfig struct {
	// InitialThresholdBytes seeds the adaptive hop-count threshold before
	// any transfer statistics exist. Zero means "no head-start zone until
	// the first contacts complete", which matches a cold-started node.
	InitialThresholdBytes units.Bytes
}

// MaxProp implements the router of Burgess et al. (INFOCOM 2006), built
// from the mechanisms the paper's §II lists: incremental-averaging meeting
// likelihoods exchanged at contacts, cheapest-path delivery costs over
// those likelihoods, an adaptive hop-count head-start for young messages,
// acknowledgment flooding for delivered messages, and visited-node lists
// to avoid re-forwarding to previous intermediaries. MaxProp schedules
// *and* drops by the same priority order (drops from the low-priority
// tail), so it takes no external scheduling/dropping policy.
type MaxProp struct {
	cfg  MaxPropConfig
	self int
	buf  *buffer.Store

	meet        map[int]float64         // own meeting likelihoods, sum 1
	peerVectors map[int]map[int]float64 // node id -> snapshot of its vector
	acked       map[bundle.ID]bool      // delivered-message ids (flooded)

	costCache map[int]float64 // destination -> path cost; nil = stale

	// Adaptive threshold statistics: bytes moved per completed contact.
	bytesMoved   units.Bytes
	contactCount int

	queues queueSet
}

// NewMaxProp returns a MaxProp router.
func NewMaxProp(cfg MaxPropConfig) *MaxProp {
	return &MaxProp{
		cfg:         cfg,
		meet:        make(map[int]float64),
		peerVectors: make(map[int]map[int]float64),
		acked:       make(map[bundle.ID]bool),
		queues:      newQueueSet(),
	}
}

// Name implements Router.
func (mx *MaxProp) Name() string { return "MaxProp" }

// Attach implements Router.
func (mx *MaxProp) Attach(self int, buf *buffer.Store) {
	mx.self = self
	mx.buf = buf
}

// MeetingLikelihood returns f(self, node), for tests and diagnostics.
func (mx *MaxProp) MeetingLikelihood(node int) float64 { return mx.meet[node] }

// Acked reports whether id is known to be delivered.
func (mx *MaxProp) Acked(id bundle.ID) bool { return mx.acked[id] }

// ContactUp implements Router.
func (mx *MaxProp) ContactUp(now float64, p Peer) {
	mx.buf.Expire(now)
	peerID := p.ID()
	mx.contactCount++

	// Incremental averaging: bump the met peer, re-normalize to sum 1.
	// Both passes walk sorted keys: float addition and division round
	// per-operation, so iteration order would otherwise leak the runtime's
	// map randomization into the likelihoods (and from there into every
	// queue comparison downstream).
	mx.meet[peerID]++
	sum := 0.0
	for _, k := range detmap.Keys(mx.meet) {
		sum += mx.meet[k]
	}
	for _, k := range detmap.Keys(mx.meet) {
		mx.meet[k] /= sum
	}

	if remote, ok := p.Router().(*MaxProp); ok {
		// Exchange routing metadata: snapshot the peer's likelihood vector
		// and union its acknowledgment list into ours.
		snap := make(map[int]float64, len(remote.meet))
		maps.Copy(snap, remote.meet)
		mx.peerVectors[peerID] = snap
		maps.Copy(mx.acked, remote.acked)
		// Delete acked messages: they are already delivered.
		for _, m := range mx.buf.Messages() {
			if mx.acked[m.ID] {
				mx.buf.Remove(m.ID)
			}
		}
	}
	mx.costCache = nil

	mx.queues.set(peerID, mx.buildQueue(now, p))
}

// Refresh implements Router: rebuild the priority queue for p without
// touching meeting likelihoods or exchanging metadata.
func (mx *MaxProp) Refresh(now float64, p Peer) {
	mx.queues.set(p.ID(), mx.buildQueue(now, p))
}

// buildQueue orders candidates for p: messages destined to p first, then
// everything else p should get, in MaxProp priority order.
func (mx *MaxProp) buildQueue(now float64, p Peer) []*bundle.Message {
	peerID := p.ID()
	var deliverable, rest []*bundle.Message
	for _, m := range mx.buf.Messages() {
		switch {
		case p.HasDelivered(m.ID) || mx.acked[m.ID]:
			continue
		case m.To == peerID:
			deliverable = append(deliverable, m)
		case p.Has(m.ID):
			continue
		case m.HasVisited(peerID):
			// Previous-intermediary rule: don't hand a replica back to a
			// node it already passed through.
			continue
		default:
			rest = append(rest, m)
		}
	}
	sortByID(deliverable)
	mx.sortByPriority(rest)
	return append(deliverable, rest...)
}

// sortByPriority orders msgs best-first: below the hop threshold by hop
// count (young messages get their head start), then by delivery cost.
func (mx *MaxProp) sortByPriority(msgs []*bundle.Message) {
	t := mx.hopThreshold()
	cost := func(m *bundle.Message) float64 { return mx.Cost(m.To) }
	sort.SliceStable(msgs, func(i, j int) bool {
		a, b := msgs[i], msgs[j]
		aHead, bHead := a.HopCount < t, b.HopCount < t
		if aHead != bHead {
			return aHead
		}
		if aHead {
			if a.HopCount != b.HopCount {
				return a.HopCount < b.HopCount
			}
			return a.ID < b.ID
		}
		ca, cb := cost(a), cost(b)
		if ca != cb {
			return ca < cb
		}
		return a.ID < b.ID
	})
}

// hopThreshold computes the adaptive head-start threshold: the lowest-hop
// messages totalling min(avg bytes per contact, half the buffer) are the
// protected head-start zone, and the threshold is the first hop count
// beyond it (MaxProp §4.4, reconstructed; see DESIGN.md).
func (mx *MaxProp) hopThreshold() int {
	protect := mx.cfg.InitialThresholdBytes
	if mx.contactCount > 0 {
		protect = mx.bytesMoved / units.Bytes(mx.contactCount)
	}
	if half := mx.buf.Capacity() / 2; protect > half {
		protect = half
	}
	if protect <= 0 {
		return 0
	}
	msgs := mx.buf.Messages()
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].HopCount != msgs[j].HopCount {
			return msgs[i].HopCount < msgs[j].HopCount
		}
		return msgs[i].ID < msgs[j].ID
	})
	var cum units.Bytes
	for _, m := range msgs {
		cum += m.Size
		if cum >= protect {
			return m.HopCount + 1
		}
	}
	// Everything fits in the protected zone.
	maxHop := 0
	for _, m := range msgs {
		if m.HopCount > maxHop {
			maxHop = m.HopCount
		}
	}
	return maxHop + 1
}

// Cost returns the MaxProp delivery cost to dest: the cheapest path cost
// through the likelihood graph, where hop a->b costs 1 - f_a(b). Lower is
// better; +Inf when dest is unknown.
func (mx *MaxProp) Cost(dest int) float64 {
	if dest == mx.self {
		return 0
	}
	if mx.costCache == nil {
		mx.costCache = mx.dijkstra()
	}
	if c, ok := mx.costCache[dest]; ok {
		return c
	}
	return math.Inf(1)
}

// dijkstra runs cheapest-path over the likelihood graph from self.
func (mx *MaxProp) dijkstra() map[int]float64 {
	vector := func(node int) map[int]float64 {
		if node == mx.self {
			return mx.meet
		}
		return mx.peerVectors[node]
	}
	dist := map[int]float64{mx.self: 0}
	done := map[int]bool{}
	q := &costPQ{{mx.self, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(costItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		// Sorted expansion keeps the heap's insertion sequence — and with
		// it the pop order of equal-cost nodes — identical across runs.
		vec := vector(it.node)
		for _, nb := range detmap.Keys(vec) {
			nd := it.dist + (1 - vec[nb])
			if old, ok := dist[nb]; !ok || nd < old {
				dist[nb] = nd
				heap.Push(q, costItem{nb, nd})
			}
		}
	}
	return dist
}

type costItem struct {
	node int
	dist float64
}

type costPQ []costItem

func (q costPQ) Len() int { return len(q) }
func (q costPQ) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node
}
func (q costPQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *costPQ) Push(x any)   { *q = append(*q, x.(costItem)) }
func (q *costPQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ContactDown implements Router.
func (mx *MaxProp) ContactDown(now float64, p Peer) { mx.queues.drop(p.ID()) }

// NextSend implements Router.
func (mx *MaxProp) NextSend(now float64, p Peer) *Send {
	m := mx.queues.pop(p.ID(), func(m *bundle.Message) bool {
		if !mx.buf.Has(m.ID) || m.Expired(now) || p.HasDelivered(m.ID) || mx.acked[m.ID] {
			return false
		}
		return m.To == p.ID() || !p.Has(m.ID)
	})
	if m == nil {
		return nil
	}
	return &Send{Msg: m}
}

// OnSent implements Router.
func (mx *MaxProp) OnSent(now float64, p Peer, s *Send, delivered bool) {
	mx.bytesMoved += s.Msg.Size
	if delivered {
		// Destination reached: flood an acknowledgment and drop our copy.
		mx.acked[s.Msg.ID] = true
		mx.buf.Remove(s.Msg.ID)
	}
}

// OnDelivered records the acknowledgment at the destination itself, so
// acks flood outward from both endpoints of the delivering contact.
func (mx *MaxProp) OnDelivered(now float64, m *bundle.Message) {
	mx.acked[m.ID] = true
}

// OnAbort implements Router.
func (mx *MaxProp) OnAbort(now float64, p Peer, s *Send) {
	mx.queues.push(p.ID(), s.Msg)
}

// Receive implements Router: MaxProp refuses replicas it knows are
// delivered and evicts by its own reverse-priority order.
func (mx *MaxProp) Receive(now float64, m *bundle.Message, from Peer) (bool, []*bundle.Message) {
	if m.Expired(now) || mx.acked[m.ID] {
		return false, nil
	}
	mx.bytesMoved += m.Size
	return mx.store(now, m)
}

// AddMessage implements Router.
func (mx *MaxProp) AddMessage(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	return mx.store(now, m)
}

func (mx *MaxProp) store(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	mx.buf.Expire(now)
	evicted, ok := mx.buf.Add(now, m, maxPropDrop{mx})
	return ok, evicted
}

// maxPropDrop evicts in reverse MaxProp priority: known-delivered replicas
// first, then messages past the hop threshold with the *highest* delivery
// cost, then head-start messages with the highest hop count.
type maxPropDrop struct{ mx *MaxProp }

// Name implements core.DropPolicy.
func (maxPropDrop) Name() string { return "MaxProp" }

// Victim implements core.DropPolicy.
func (d maxPropDrop) Victim(now float64, msgs []*bundle.Message) int {
	mx := d.mx
	for i, m := range msgs {
		if mx.acked[m.ID] {
			return i
		}
	}
	t := mx.hopThreshold()
	worst := 0
	for i := 1; i < len(msgs); i++ {
		if d.worse(msgs[i], msgs[worst], t) {
			worst = i
		}
	}
	return worst
}

// worse reports whether a is a better eviction victim than b.
func (d maxPropDrop) worse(a, b *bundle.Message, t int) bool {
	aHead, bHead := a.HopCount < t, b.HopCount < t
	if aHead != bHead {
		return !aHead // above-threshold messages go first
	}
	if !aHead {
		ca, cb := d.mx.Cost(a.To), d.mx.Cost(b.To)
		if ca != cb {
			return ca > cb // highest cost dropped first
		}
		return a.ID > b.ID
	}
	if a.HopCount != b.HopCount {
		return a.HopCount > b.HopCount
	}
	return a.ID > b.ID
}
