// Package routing implements the DTN routing protocols the paper evaluates:
// Epidemic and binary Spray-and-Wait (whose transmission order and eviction
// are governed by the pluggable scheduling/dropping policies of
// internal/core), plus MaxProp and PRoPHET (which carry their own
// scheduling and dropping machinery), and two classic baselines
// (DirectDelivery, FirstContact).
//
// Routers are decision-makers: the simulator (internal/sim) owns contacts,
// transfers, delivery bookkeeping and statistics, and consults the router
// at each step — what to send next to a peer, what to do after a transfer,
// whether to accept an incoming replica. This keeps every protocol unit-
// testable without a full simulation.
//
// Protocol metadata exchange (PRoPHET predictability vectors, MaxProp
// likelihood vectors and ack lists) happens by direct access to the peer's
// router at contact time. This is the standard simulator shortcut (the ONE
// does the same): the metadata is tiny compared to bundles, and modelling
// its airtime would only add a constant setup cost per contact.
package routing

import (
	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
)

// Peer is a router's view of a node it is currently in contact with.
type Peer interface {
	// ID returns the remote node id.
	ID() int
	// Has reports whether the remote buffer holds a replica of id.
	Has(id bundle.ID) bool
	// HasDelivered reports whether the remote node, as destination,
	// has already received id.
	HasDelivered(id bundle.ID) bool
	// Router returns the remote router, for protocol metadata exchange.
	Router() Router
}

// Send is one transmission decision: which buffered replica to put on the
// wire and, for copy-budget protocols, how many logical copies the receiver
// will own (0 means the protocol default of 1).
type Send struct {
	Msg            *bundle.Message
	TransferCopies int
}

// Router is a DTN routing protocol instance bound to one node.
type Router interface {
	// Name returns the protocol name as used in reports ("Epidemic", ...).
	Name() string

	// Attach binds the router to its node. Called exactly once before any
	// other method.
	Attach(self int, buf *buffer.Store)

	// ContactUp tells the router a contact with p began.
	ContactUp(now float64, p Peer)

	// ContactDown tells the router the contact with p ended.
	ContactDown(now float64, p Peer)

	// Refresh rebuilds the send queue for the ongoing contact with p
	// without applying any protocol state updates (no encounter boosts,
	// no metadata exchange). The simulator calls it when the buffer gained
	// messages mid-contact — a newly created message, or a replica relayed
	// in from a third node — so they become eligible on the live contact,
	// as they would in a continuously re-evaluating simulator.
	Refresh(now float64, p Peer)

	// NextSend returns the next transmission for p, or nil if the router
	// has nothing (more) to offer p right now. The returned message must
	// be in the router's buffer.
	NextSend(now float64, p Peer) *Send

	// OnSent reports that the transfer of s to p completed. delivered is
	// true when p was the message destination.
	OnSent(now float64, p Peer, s *Send, delivered bool)

	// OnAbort reports that the transfer of s to p was cut by contact loss.
	OnAbort(now float64, p Peer, s *Send)

	// Receive offers an incoming replica m (already stamped by
	// Message.ForwardTo) arriving from p. It returns whether the replica
	// was stored and any replicas evicted to make room.
	Receive(now float64, m *bundle.Message, from Peer) (accepted bool, evicted []*bundle.Message)

	// AddMessage injects a locally created message (the traffic source).
	AddMessage(now float64, m *bundle.Message) (accepted bool, evicted []*bundle.Message)
}

// queueSet tracks per-peer send queues between ContactUp and ContactDown.
// Queues hold buffered replicas in transmission order; entries are
// revalidated at pop time because buffer contents change while queued
// (TTL expiry, evictions, copies delivered elsewhere).
type queueSet struct {
	queues map[int][]*bundle.Message
}

func newQueueSet() queueSet {
	return queueSet{queues: make(map[int][]*bundle.Message)}
}

func (q *queueSet) set(peer int, msgs []*bundle.Message) { q.queues[peer] = msgs }

func (q *queueSet) drop(peer int) { delete(q.queues, peer) }

// pop returns the first queued message satisfying valid, discarding
// entries that fail it. Returns nil when the queue is exhausted.
func (q *queueSet) pop(peer int, valid func(*bundle.Message) bool) *bundle.Message {
	queue := q.queues[peer]
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		if valid(m) {
			q.queues[peer] = queue
			return m
		}
	}
	q.queues[peer] = queue
	return nil
}

// push re-queues a message at the front (used after an aborted transfer so
// the replica is retried first if the contact resumes).
func (q *queueSet) push(peer int, m *bundle.Message) {
	q.queues[peer] = append([]*bundle.Message{m}, q.queues[peer]...)
}
