package routing

import (
	"fmt"

	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/core"
)

// SprayAndWait is the controlled-replication protocol of Spyropoulos et al.
// (WDTN 2005). Each message starts with a budget of N logical copies
// (the paper's evaluation uses N = 12). A node holding more than one copy
// "sprays" at contacts; a node with a single copy "waits" and forwards only
// to the final destination.
//
// In the binary variant (the one the paper uses), a spraying node hands
// over half its budget — the receiver gets floor(n/2) copies and the sender
// keeps ceil(n/2). In the vanilla (source-spray) variant, the source hands
// single copies to the first N-1 encountered nodes.
//
// Transmission order and overflow eviction follow the injected
// scheduling-dropping policy, as in the paper.
type SprayAndWait struct {
	pol    core.Policy
	copies int
	binary bool
	self   int
	buf    *buffer.Store
	queues queueSet
}

// NewSprayAndWait returns a Spray-and-Wait router with the given copy
// budget. binary selects the binary variant (the paper's choice).
func NewSprayAndWait(pol core.Policy, copies int, binary bool) *SprayAndWait {
	if pol.Schedule == nil || pol.Drop == nil {
		panic("routing: SprayAndWait with incomplete policy")
	}
	if copies < 1 {
		panic(fmt.Sprintf("routing: SprayAndWait with %d copies", copies))
	}
	return &SprayAndWait{pol: pol, copies: copies, binary: binary, queues: newQueueSet()}
}

// Name implements Router.
func (s *SprayAndWait) Name() string {
	if s.binary {
		return "SprayAndWait"
	}
	return "SprayAndWaitVanilla"
}

// Policy returns the combined policy in force.
func (s *SprayAndWait) Policy() core.Policy { return s.pol }

// Copies returns the configured copy budget N.
func (s *SprayAndWait) Copies() int { return s.copies }

// Attach implements Router.
func (s *SprayAndWait) Attach(self int, buf *buffer.Store) {
	s.self = self
	s.buf = buf
}

// ContactUp implements Router. Spray and Wait keeps no encounter state;
// the contact work is building the send queue.
func (s *SprayAndWait) ContactUp(now float64, p Peer) { s.Refresh(now, p) }

// Refresh implements Router: deliverable messages first, then — only for
// replicas still holding more than one copy — spray candidates the peer
// lacks; both groups in scheduling-policy order.
func (s *SprayAndWait) Refresh(now float64, p Peer) {
	s.buf.Expire(now)
	var deliverable, spray []*bundle.Message
	for _, m := range s.buf.Messages() {
		switch {
		case p.HasDelivered(m.ID):
			continue
		case m.To == p.ID():
			deliverable = append(deliverable, m)
		case m.Copies > 1 && !p.Has(m.ID):
			spray = append(spray, m)
		}
	}
	s.pol.Schedule.Order(now, deliverable)
	s.pol.Schedule.Order(now, spray)
	s.queues.set(p.ID(), append(deliverable, spray...))
}

// ContactDown implements Router.
func (s *SprayAndWait) ContactDown(now float64, p Peer) { s.queues.drop(p.ID()) }

// NextSend implements Router.
func (s *SprayAndWait) NextSend(now float64, p Peer) *Send {
	m := s.queues.pop(p.ID(), func(m *bundle.Message) bool {
		if !s.buf.Has(m.ID) || m.Expired(now) || p.HasDelivered(m.ID) {
			return false
		}
		if m.To == p.ID() {
			return true
		}
		return m.Copies > 1 && !p.Has(m.ID)
	})
	if m == nil {
		return nil
	}
	if m.To == p.ID() {
		return &Send{Msg: m} // delivery: budget irrelevant
	}
	give := m.Copies / 2 // binary: floor(n/2)
	if !s.binary {
		give = 1 // source spray: single copies
	}
	return &Send{Msg: m, TransferCopies: give}
}

// OnSent implements Router: on delivery the local replica is discarded
// (paper rule); on a spray the local budget drops by the copies handed
// over, and a replica whose budget is exhausted is removed.
func (s *SprayAndWait) OnSent(now float64, p Peer, send *Send, delivered bool) {
	if delivered {
		s.buf.Remove(send.Msg.ID)
		return
	}
	m, ok := s.buf.Get(send.Msg.ID)
	if !ok {
		return // evicted mid-transfer; nothing to update
	}
	m.Copies -= send.TransferCopies
	if m.Copies < 1 {
		s.buf.Remove(m.ID)
	}
}

// OnAbort implements Router.
func (s *SprayAndWait) OnAbort(now float64, p Peer, send *Send) {
	s.queues.push(p.ID(), send.Msg)
}

// Receive implements Router.
func (s *SprayAndWait) Receive(now float64, m *bundle.Message, from Peer) (bool, []*bundle.Message) {
	if m.Expired(now) {
		return false, nil
	}
	return s.store(now, m)
}

// AddMessage implements Router: a locally created message starts with the
// full copy budget.
func (s *SprayAndWait) AddMessage(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	m.Copies = s.copies
	return s.store(now, m)
}

func (s *SprayAndWait) store(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	s.buf.Expire(now)
	evicted, ok := s.buf.Add(now, m, s.pol.Drop)
	return ok, evicted
}
