package routing

import (
	"math"
	"sort"

	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/core"
)

// ProphetConfig carries the PRoPHET parameters (Lindgren, Doria, Davies —
// probabilistic routing for intermittently connected networks). Defaults
// follow the literature and the ONE simulator's vehicular settings.
type ProphetConfig struct {
	// PInit is the predictability boost on encounter (default 0.75).
	PInit float64
	// Beta scales the transitivity update (default 0.25).
	Beta float64
	// Gamma is the aging factor per time unit (default 0.98).
	Gamma float64
	// TimeUnit is the aging time unit in seconds (default 30, the ONE's
	// vehicular choice).
	TimeUnit float64
	// Drop selects the eviction policy. PRoPHET carries "its own schedule
	// and discard policies" (paper §II); the forwarding strategy is
	// GRTRMax, and eviction defaults to drop-head (FIFO) as in the ONE's
	// ProphetRouter, the platform the paper measured.
	Drop core.DropPolicy
}

// DefaultProphetConfig returns the parameterization described above.
func DefaultProphetConfig() ProphetConfig {
	return ProphetConfig{
		PInit:    0.75,
		Beta:     0.25,
		Gamma:    0.98,
		TimeUnit: 30,
		Drop:     core.FIFODrop{},
	}
}

// Prophet implements PRoPHET with the GRTRMax forwarding strategy: a
// message is offered to a peer only if the peer's delivery predictability
// for the destination exceeds our own, and offers are made in decreasing
// order of the peer's predictability.
type Prophet struct {
	cfg  ProphetConfig
	self int
	buf  *buffer.Store

	preds    map[int]float64 // destination node id -> delivery predictability
	lastAged float64
	queues   queueSet
}

// NewProphet returns a PRoPHET router. Zero-valued config fields are
// replaced by defaults.
func NewProphet(cfg ProphetConfig) *Prophet {
	def := DefaultProphetConfig()
	if cfg.PInit == 0 {
		cfg.PInit = def.PInit
	}
	if cfg.Beta == 0 {
		cfg.Beta = def.Beta
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = def.Gamma
	}
	if cfg.TimeUnit == 0 {
		cfg.TimeUnit = def.TimeUnit
	}
	if cfg.Drop == nil {
		cfg.Drop = def.Drop
	}
	if cfg.PInit <= 0 || cfg.PInit > 1 || cfg.Beta < 0 || cfg.Beta > 1 ||
		cfg.Gamma <= 0 || cfg.Gamma > 1 || cfg.TimeUnit <= 0 {
		panic("routing: invalid PRoPHET parameters")
	}
	return &Prophet{cfg: cfg, preds: make(map[int]float64), queues: newQueueSet()}
}

// Name implements Router.
func (pr *Prophet) Name() string { return "PRoPHET" }

// Attach implements Router.
func (pr *Prophet) Attach(self int, buf *buffer.Store) {
	pr.self = self
	pr.buf = buf
}

// Predictability returns P(self, dest) after aging to time now.
func (pr *Prophet) Predictability(now float64, dest int) float64 {
	pr.age(now)
	return pr.preds[dest]
}

// age applies the exponential decay P *= gamma^k with k elapsed time units.
func (pr *Prophet) age(now float64) {
	elapsed := now - pr.lastAged
	if elapsed <= 0 {
		return
	}
	factor := math.Pow(pr.cfg.Gamma, elapsed/pr.cfg.TimeUnit)
	//vdtnlint:unordered-ok each key is scaled (or deleted) independently; no cross-key reads, so order cannot affect the result
	for d, p := range pr.preds {
		p *= factor
		if p < 1e-6 { // garbage-collect vanished entries
			delete(pr.preds, d)
		} else {
			pr.preds[d] = p
		}
	}
	pr.lastAged = now
}

// ContactUp implements Router: update predictabilities (direct encounter
// boost plus transitivity through the peer's table), then build the
// GRTRMax send queue.
func (pr *Prophet) ContactUp(now float64, p Peer) {
	pr.buf.Expire(now)
	pr.age(now)

	peerID := p.ID()
	pr.preds[peerID] += (1 - pr.preds[peerID]) * pr.cfg.PInit

	if remote, ok := p.Router().(*Prophet); ok {
		remote.age(now)
		pab := pr.preds[peerID]
		//vdtnlint:unordered-ok one commutative update per distinct destination; pab is captured before the loop, so no entry read is order-dependent
		for d, pbd := range remote.preds {
			if d == pr.self {
				continue
			}
			pr.preds[d] += (1 - pr.preds[d]) * pab * pbd * pr.cfg.Beta
		}
	}
	pr.Refresh(now, p)
}

// Refresh implements Router: rebuild the GRTRMax queue from current buffer
// and predictability state, with no encounter updates.
func (pr *Prophet) Refresh(now float64, p Peer) {
	peerID := p.ID()
	if remote, ok := p.Router().(*Prophet); ok {
		pr.queues.set(peerID, pr.grtrMaxQueue(now, p, remote))
		return
	}
	// Peer runs a different protocol: fall back to direct delivery
	// towards it (predictability exchange impossible).
	var deliverable []*bundle.Message
	for _, m := range pr.buf.Messages() {
		if m.To == peerID && !p.HasDelivered(m.ID) {
			deliverable = append(deliverable, m)
		}
	}
	sortByID(deliverable)
	pr.queues.set(peerID, deliverable)
}

// grtrMaxQueue builds the send queue: deliverable messages first, then
// messages for which the peer's predictability beats ours, in decreasing
// order of the peer's predictability (GRTRMax).
func (pr *Prophet) grtrMaxQueue(now float64, p Peer, remote *Prophet) []*bundle.Message {
	peerID := p.ID()
	var deliverable, offers []*bundle.Message
	for _, m := range pr.buf.Messages() {
		switch {
		case p.HasDelivered(m.ID):
			continue
		case m.To == peerID:
			deliverable = append(deliverable, m)
		case p.Has(m.ID):
			continue
		case remote.preds[m.To] > pr.preds[m.To]:
			offers = append(offers, m)
		}
	}
	sortByID(deliverable)
	sort.SliceStable(offers, func(i, j int) bool {
		pi, pj := remote.preds[offers[i].To], remote.preds[offers[j].To]
		if pi != pj {
			return pi > pj
		}
		return offers[i].ID < offers[j].ID
	})
	return append(deliverable, offers...)
}

// ContactDown implements Router.
func (pr *Prophet) ContactDown(now float64, p Peer) { pr.queues.drop(p.ID()) }

// NextSend implements Router.
func (pr *Prophet) NextSend(now float64, p Peer) *Send {
	m := pr.queues.pop(p.ID(), func(m *bundle.Message) bool {
		if !pr.buf.Has(m.ID) || m.Expired(now) || p.HasDelivered(m.ID) {
			return false
		}
		return m.To == p.ID() || !p.Has(m.ID)
	})
	if m == nil {
		return nil
	}
	return &Send{Msg: m}
}

// OnSent implements Router: PRoPHET keeps its replica after forwarding
// (replication, not handoff), but discards it once the destination has it.
func (pr *Prophet) OnSent(now float64, p Peer, s *Send, delivered bool) {
	if delivered {
		pr.buf.Remove(s.Msg.ID)
	}
}

// OnAbort implements Router.
func (pr *Prophet) OnAbort(now float64, p Peer, s *Send) {
	pr.queues.push(p.ID(), s.Msg)
}

// Receive implements Router.
func (pr *Prophet) Receive(now float64, m *bundle.Message, from Peer) (bool, []*bundle.Message) {
	if m.Expired(now) {
		return false, nil
	}
	return pr.store(now, m)
}

// AddMessage implements Router.
func (pr *Prophet) AddMessage(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	return pr.store(now, m)
}

func (pr *Prophet) store(now float64, m *bundle.Message) (bool, []*bundle.Message) {
	pr.buf.Expire(now)
	evicted, ok := pr.buf.Add(now, m, pr.cfg.Drop)
	return ok, evicted
}

func sortByID(msgs []*bundle.Message) {
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].ID < msgs[j].ID })
}
