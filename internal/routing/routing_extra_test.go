package routing

import (
	"math"
	"testing"

	"vdtn/internal/buffer"
	"vdtn/internal/bundle"
	"vdtn/internal/core"
	"vdtn/internal/units"
	"vdtn/internal/xrand"
)

func newTestRand(seed uint64) *xrand.Rand { return xrand.New(seed) }

// --- MaxProp: adaptive threshold and priority order -----------------------

func TestMaxPropThresholdAdaptsToTransfers(t *testing.T) {
	mx := NewMaxProp(MaxPropConfig{})
	buf := buffer.NewStore(units.MB(10))
	mx.Attach(0, buf)
	p := newPeer(1, NewMaxProp(MaxPropConfig{}))

	// Cold start: no head-start zone.
	if got := mx.hopThreshold(); got != 0 {
		t.Fatalf("cold threshold = %d", got)
	}

	// One contact moving ~2 MB: the protected zone becomes ~2 MB.
	mx.ContactUp(0, p)
	m := bundle.New(1, 9, 5, units.MB(2), 0, 3600)
	mx.Receive(1, m.ForwardTo(0, 1), p)
	mx.ContactDown(1, p)

	// Buffer holds one 2 MB hop-1 message; avg bytes/contact = 2 MB, so
	// that message is inside the zone and the threshold sits above its
	// hop count.
	if got := mx.hopThreshold(); got != 2 {
		t.Fatalf("threshold after 2MB contact = %d, want 2", got)
	}
}

func TestMaxPropPriorityHeadStartBeforeCost(t *testing.T) {
	mx := NewMaxProp(MaxPropConfig{})
	buf := buffer.NewStore(units.MB(100))
	mx.Attach(0, buf)

	// Know destination 7 perfectly (cost 0); leave 8 unknown (+Inf).
	// The same contact receives 2 MB, so the adaptive head-start zone is
	// 2 MB and, with only a hop-1 message buffered, the threshold is 2.
	p7 := newPeer(7, NewMaxProp(MaxPropConfig{}))
	mx.ContactUp(0, p7)
	carried := bundle.New(3, 9, 7, units.MB(2), 0, 3600)
	mx.Receive(1, carried.ForwardTo(0, 1), p7)
	mx.ContactDown(1, p7)
	if got := mx.hopThreshold(); got != 2 {
		t.Fatalf("threshold = %d, want 2", got)
	}

	young := bundle.New(1, 9, 8, units.KB(100), 0, 3600) // hop 0 < t: head start
	young.HopCount = 0
	old := bundle.New(2, 9, 7, units.KB(100), 0, 3600) // hop 9 >= t: cost zone
	old.HopCount = 9

	msgs := []*bundle.Message{old, young}
	mx.sortByPriority(msgs)
	// The young message wins despite its destination costing +Inf while
	// the old one's costs 0 — the head start trumps cost, which is the
	// whole point of MaxProp's threshold.
	if msgs[0].ID != 1 {
		t.Fatalf("young message not prioritized: %v first", msgs[0].ID)
	}
}

func TestMaxPropCostOrderingAboveThreshold(t *testing.T) {
	mx := NewMaxProp(MaxPropConfig{}) // threshold 0: pure cost ordering
	buf := buffer.NewStore(units.MB(100))
	mx.Attach(0, buf)

	// f(7) = 0.75, f(2) = 0.25 after three contacts.
	p7 := newPeer(7, NewMaxProp(MaxPropConfig{}))
	p2 := newPeer(2, NewMaxProp(MaxPropConfig{}))
	mx.ContactUp(0, p7)
	mx.ContactDown(0, p7)
	mx.ContactUp(1, p2)
	mx.ContactDown(1, p2)
	mx.ContactUp(2, p7)
	mx.ContactDown(2, p7)

	to7 := bundle.New(1, 9, 7, units.KB(100), 0, 3600) // cost 0.25
	to2 := bundle.New(2, 9, 2, units.KB(100), 0, 3600) // cost 0.75
	msgs := []*bundle.Message{to2, to7}
	mx.sortByPriority(msgs)
	if msgs[0].ID != 1 {
		t.Fatalf("cheapest-destination message not first: got %v", msgs[0].ID)
	}
	if got := mx.Cost(7); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("Cost(7) = %v, want 0.25", got)
	}
	if got := mx.Cost(2); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("Cost(2) = %v, want 0.75", got)
	}
}

// --- PRoPHET: aging garbage collection and refresh -------------------------

func TestProphetAgingGarbageCollects(t *testing.T) {
	cfg := DefaultProphetConfig()
	pr := NewProphet(cfg)
	attach(pr, 0)
	peer := newPeer(1, NewProphet(cfg))
	pr.ContactUp(0, peer)
	pr.ContactDown(0, peer)
	// After a very long time the entry decays below the floor and is
	// dropped from the table entirely.
	if p := pr.Predictability(1e7, 1); p != 0 {
		t.Fatalf("ancient predictability = %v, want GC to 0", p)
	}
	if len(pr.preds) != 0 {
		t.Fatalf("preds table not garbage-collected: %v", pr.preds)
	}
}

func TestProphetRefreshSeesNewMessages(t *testing.T) {
	cfg := DefaultProphetConfig()
	a := NewProphet(cfg)
	attach(a, 0)
	b := NewProphet(cfg)
	bBuf := buffer.NewStore(units.MB(100))
	b.Attach(1, bBuf)

	bPeer := &fakePeer{id: 1, router: b, buf: bBuf, delivered: map[bundle.ID]bool{}}
	a.ContactUp(0, bPeer)
	if s := a.NextSend(0, bPeer); s != nil {
		t.Fatalf("empty buffer offered %v", s.Msg.ID)
	}
	// A message destined to the peer arrives mid-contact; Refresh must
	// requeue it without a new encounter boost.
	before := a.Predictability(1, 1)
	a.AddMessage(1, msgTo(1, 0, 1, 1, 3600))
	a.Refresh(1, bPeer)
	after := a.Predictability(1, 1)
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("Refresh changed predictability: %v -> %v", before, after)
	}
	s := a.NextSend(1, bPeer)
	if s == nil || s.Msg.ID != 1 {
		t.Fatal("refreshed queue missing the new deliverable")
	}
}

// --- Spray and Wait: receive side ------------------------------------------

func TestSprayAndWaitReceiveKeepsWireCopies(t *testing.T) {
	s := NewSprayAndWait(core.FIFOFIFO(), 12, true)
	buf := attach(s, 1)
	from := newPeer(0, NewSprayAndWait(core.FIFOFIFO(), 12, true))
	wire := msgTo(1, 0, 9, 0, 3600).ForwardTo(1, 5)
	wire.Copies = 6 // handed half the budget
	if ok, _ := s.Receive(5, wire, from); !ok {
		t.Fatal("receive failed")
	}
	got, _ := buf.Get(1)
	if got.Copies != 6 {
		t.Fatalf("stored budget = %d, want the wire's 6", got.Copies)
	}
}

func TestSprayAndWaitSingleCopyReceiverWaits(t *testing.T) {
	s := NewSprayAndWait(core.FIFOFIFO(), 12, true)
	attach(s, 1)
	wire := msgTo(1, 0, 9, 0, 3600).ForwardTo(1, 5)
	wire.Copies = 1
	s.Receive(5, wire, newPeer(0, NewSprayAndWait(core.FIFOFIFO(), 12, true)))

	relay := newPeer(2, NewSprayAndWait(core.FIFOFIFO(), 12, true))
	s.ContactUp(6, relay)
	if send := s.NextSend(6, relay); send != nil {
		t.Fatal("wait-phase receiver sprayed its single copy")
	}
}

// --- Epidemic: Random policy stream discipline ------------------------------

func TestEpidemicRandomPolicyQueueReproducible(t *testing.T) {
	build := func(seed uint64) []bundle.ID {
		e := NewEpidemic(core.RandomFIFO(newTestRand(seed)))
		attach(e, 0)
		peer := newPeer(1, NewEpidemic(core.FIFOFIFO()))
		for i := 1; i <= 8; i++ {
			e.AddMessage(float64(i), msgTo(bundle.ID(i), 0, 9, float64(i), 3600))
		}
		e.ContactUp(10, peer)
		return drain(e, 10, peer)
	}
	a, b := build(5), build(5)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("drained %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random policy queues differ for equal streams")
		}
	}
	c := build(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different streams produced identical random order")
	}
}
