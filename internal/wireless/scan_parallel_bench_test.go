package wireless

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"vdtn/internal/event"
	"vdtn/internal/geo"
)

// benchMediumWorkers is benchMedium with a scan-worker pool configured.
func benchMediumWorkers(n, workers int) (*event.Scheduler, *Medium) {
	s := event.NewScheduler()
	cfg := testCfg()
	cfg.ScanWorkers = workers
	m := NewMedium(s, cfg)
	m.SetHandler(&recorder{})
	seedFleet(m, n)
	return s, m
}

// BenchmarkScanParallel measures one steady-state tick of the sharded
// scan across the worker scaling curve. workers=1 is the serial path the
// speedups are measured against.
func BenchmarkScanParallel(b *testing.B) {
	for _, n := range benchSizes {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				skipLargeInShort(b, n)
				_, m := benchMediumWorkers(n, workers)
				defer m.Stop()
				now := 0.0
				m.scan(now)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					now++
					m.scan(now)
				}
			})
		}
	}
}

// TestScanScalingArtifact measures the parallel scan's worker scaling
// curve at 10k and 100k nodes and writes it to BENCH_parallel.json at the
// repo root. The speedup thresholds from the PR's acceptance criteria —
// >=2x serial with 4 workers, >=3x with 8 — are enforced only when the
// host has at least that many cores (the CI bench runner does; a laptop
// or a 1-core container still measures and records the curve, it just
// cannot honestly fail a parallelism target it physically cannot reach).
// The core count is recorded in the artifact so any reader can tell which
// gates were live.
func TestScanScalingArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	if raceEnabled {
		t.Skip("timing measurement meaningless under the race detector")
	}
	cores := runtime.NumCPU()
	art := map[string]any{
		"benchmark":  "parallel tick pipeline: sharded scan vs serial incremental scan",
		"mover_frac": benchMoverFrac,
		"cores":      cores,
		"gomaxprocs": runtime.GOMAXPROCS(0),
	}

	tickAvg := func(m *Medium, ticks int) float64 {
		now := 0.0
		m.scan(now)
		for i := 0; i < 3; i++ { // warm shards and pool
			now++
			m.scan(now)
		}
		start := time.Now()
		for i := 0; i < ticks; i++ {
			now++
			m.scan(now)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(ticks)
	}

	workerCurve := []int{1, 2, 4, 8}
	speedup := map[int]map[int]float64{} // n -> workers -> x vs serial
	for _, bench := range []struct {
		n     int
		tag   string
		ticks int
	}{{10000, "10k", 24}, {100000, "100k", 6}} {
		speedup[bench.n] = map[int]float64{}
		var serialNs float64
		for _, workers := range workerCurve {
			_, m := benchMediumWorkers(bench.n, workers)
			ns := tickAvg(m, bench.ticks)
			m.Stop()
			runtime.GC()
			if workers == 1 {
				serialNs = ns
			}
			su := serialNs / ns
			speedup[bench.n][workers] = su
			art[fmt.Sprintf("scan_ns_per_tick_%s_workers_%d", bench.tag, workers)] = int64(ns)
			art[fmt.Sprintf("speedup_vs_serial_%s_workers_%d", bench.tag, workers)] = su
		}
	}

	// Zero-allocation acceptance criterion on the parallel path: the
	// quiet-tick lattice fleet from TestScanSpeedupArtifact, scanned with
	// a 4-worker pool.
	s := event.NewScheduler()
	cfg := testCfg()
	cfg.ScanWorkers = 4
	m := NewMedium(s, cfg)
	m.SetHandler(&recorder{})
	id := 0
	for gx := 0; gx < 100; gx++ {
		for gy := 0; gy < 100; gy++ {
			p := geo.Point{X: float64(gx) * 20, Y: float64(gy) * 20}
			if id%3 == 0 {
				ph := float64(id) * 0.1
				m.Add(&scripted{id: id, fn: func(now float64) geo.Point {
					return geo.Point{X: p.X + 0.5*math.Sin(now+ph), Y: p.Y}
				}})
			} else {
				m.Add(&parked{id: id, at: p})
			}
			id++
		}
	}
	defer m.Stop()
	now := 0.0
	for i := 0; i < 8; i++ {
		m.scan(now)
		now++
	}
	scanAllocs := testing.AllocsPerRun(20, func() {
		m.scan(now)
		now++
	})
	art["parallel_scan_allocs_per_quiet_tick"] = scanAllocs
	if scanAllocs != 0 {
		t.Errorf("steady-state parallel scan allocates %v per tick, want 0", scanAllocs)
	}

	// Threshold gates, live only where the hardware can express them.
	if cores >= 4 {
		if su := speedup[100000][4]; su < 2 {
			t.Errorf("100k nodes / 4 workers: %.2fx vs serial, want >=2x", su)
		}
	} else {
		t.Logf("4-worker speedup gate skipped: %d cores", cores)
	}
	if cores >= 8 {
		if su := speedup[100000][8]; su < 3 {
			t.Errorf("100k nodes / 8 workers: %.2fx vs serial, want >=3x", su)
		}
	} else {
		t.Logf("8-worker speedup gate skipped: %d cores", cores)
	}

	out, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_parallel.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
