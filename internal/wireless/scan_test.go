package wireless

import (
	"fmt"
	"math"
	"testing"

	"vdtn/internal/event"
	"vdtn/internal/geo"
	"vdtn/internal/xrand"
)

// hinted is a test entity with an explicit static-until schedule: it sits
// at `at` until `until`, then follows fn. It counts Position queries so
// tests can assert the scan actually skips it.
type hinted struct {
	id      int
	at      geo.Point
	until   float64
	fn      func(now float64) geo.Point
	queries int
}

func (h *hinted) ID() int { return h.id }

func (h *hinted) Position(now float64) geo.Point {
	h.queries++
	if now <= h.until || h.fn == nil {
		return h.at
	}
	return h.fn(now)
}

func (h *hinted) StaticUntil(now float64) float64 {
	if now <= h.until {
		return h.until
	}
	return now
}

// connectedPairs reads the medium's connected set through the public
// surface (Connected for membership), given the universe of ids.
func connectedPairs(m *Medium, ids []int) map[pairKey]bool {
	out := make(map[pairKey]bool)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if m.Connected(ids[i], ids[j]) {
				out[key(ids[i], ids[j])] = true
			}
		}
	}
	return out
}

// TestScanMatchesBruteForceOverTime drives the incremental scan across
// many ticks of a randomized moving cloud — static entities with hints,
// free movers without — and checks the connected set after every tick
// against both a brute-force O(n²) oracle and the retained full-rescan
// reference implementation, plus the adjacency invariant. Coordinates are
// centred on the origin so negative values and the floor-vs-trunc cell
// mapping are exercised throughout.
func TestScanMatchesBruteForceOverTime(t *testing.T) {
	rng := xrand.New(4242)
	for trial := 0; trial < 8; trial++ {
		s := event.NewScheduler()
		m := NewMedium(s, testCfg())
		m.SetHandler(&recorder{})
		n := 30 + rng.IntN(40)
		ids := make([]int, n)
		posAt := make([]func(now float64) geo.Point, n)
		for i := 0; i < n; i++ {
			ids[i] = i
			home := geo.Point{X: rng.Float64()*400 - 200, Y: rng.Float64()*400 - 200}
			switch i % 3 {
			case 0: // static forever, with hint
				m.Add(&hinted{id: i, at: home, until: math.Inf(1)})
				posAt[i] = func(float64) geo.Point { return home }
			case 1: // parked for a while, then drifts
				until := 5 + rng.Float64()*20
				vx, vy := rng.Float64()*8-4, rng.Float64()*8-4
				fn := func(now float64) geo.Point {
					return geo.Point{X: home.X + vx*(now-until), Y: home.Y + vy*(now-until)}
				}
				m.Add(&hinted{id: i, at: home, until: until, fn: fn})
				posAt[i] = func(now float64) geo.Point {
					if now <= until {
						return home
					}
					return fn(now)
				}
			default: // always moving, no hint
				vx, vy := rng.Float64()*10-5, rng.Float64()*10-5
				fn := func(now float64) geo.Point {
					return geo.Point{X: home.X + vx*now, Y: home.Y + vy*now}
				}
				m.Add(&scripted{id: i, fn: fn})
				posAt[i] = fn
			}
		}
		m.Start(0)
		for tick := 0; tick <= 40; tick++ {
			now := float64(tick)
			s.RunUntil(now + 0.5)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					want := posAt[i](now).Dist2(posAt[j](now)) <= 30*30
					if got := m.Connected(i, j); got != want {
						t.Fatalf("trial %d tick %d: pair (%d,%d) connected=%v want %v",
							trial, tick, i, j, got, want)
					}
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("trial %d tick %d: %v", trial, tick, err)
			}
		}
	}
}

// TestScanMatchesReferenceBoundaryGeometry pins the exact boundary
// semantics against the full-rescan reference: points exactly at Range,
// points sitting exactly on cell borders (coordinates at multiples of the
// cell size, positive and negative), and clusters straddling the origin.
func TestScanMatchesReferenceBoundaryGeometry(t *testing.T) {
	pts := []geo.Point{
		{X: 0, Y: 0},
		{X: 30, Y: 0},   // exactly at Range, on a cell border
		{X: 60, Y: 0},   // exactly at Range from the previous, two cells over
		{X: -30, Y: 0},  // negative cell border
		{X: -30, Y: 30}, // corner of four cells
		{X: -15, Y: 15},
		{X: 29.999999, Y: 0},
		{X: -59.999, Y: 0.001},
		{X: 0, Y: -30},
		{X: 90, Y: 90},
	}
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	ids := make([]int, len(pts))
	for i, p := range pts {
		ids[i] = i
		m.Add(fixed(i, p))
	}
	m.Start(0)
	s.RunUntil(0.5)

	want := m.proximityPairsReference(0)
	got := connectedPairs(m, ids)
	if len(got) != len(want) {
		t.Fatalf("connected %d pairs, reference %d", len(got), len(want))
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			k := key(i, j)
			if got[k] != want[k] {
				t.Errorf("pair (%d,%d): scan %v, reference %v (dist %v)",
					i, j, got[k], want[k], pts[i].Dist(pts[j]))
			}
			brute := pts[i].Dist2(pts[j]) <= 30*30
			if got[k] != brute {
				t.Errorf("pair (%d,%d): scan %v, brute force %v", i, j, got[k], brute)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScanRandomCellBoundaryClouds is the randomized variant: clouds whose
// coordinates are snapped to cell-size multiples (worst case for any
// open/closed cell-interval confusion), checked against brute force.
func TestScanRandomCellBoundaryClouds(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 20; trial++ {
		s := event.NewScheduler()
		m := NewMedium(s, testCfg())
		m.SetHandler(&recorder{})
		n := 15 + rng.IntN(25)
		pts := make([]geo.Point, n)
		for i := range pts {
			// Mix of exact multiples of the 30 m cell size and off-grid
			// points, spanning negative coordinates.
			x := float64(rng.IntN(13)-6) * 30
			y := float64(rng.IntN(13)-6) * 30
			if rng.IntN(2) == 1 {
				x += rng.Float64() * 30
			}
			if rng.IntN(2) == 1 {
				y += rng.Float64() * 30
			}
			pts[i] = geo.Point{X: x, Y: y}
			m.Add(fixed(i, pts[i]))
		}
		m.Start(0)
		s.RunUntil(0.5)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := pts[i].Dist2(pts[j]) <= 30*30
				if got := m.Connected(i, j); got != want {
					t.Fatalf("trial %d: pair (%d,%d) at dist %v: connected=%v want %v",
						trial, i, j, pts[i].Dist(pts[j]), got, want)
				}
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStaticHintSkipsPositionQueries asserts the scan's headline saving:
// an entity whose hint pins it is queried once, not once per tick, while
// contacts against it keep rising and falling as movers pass by.
func TestStaticHintSkipsPositionQueries(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	parked := &hinted{id: 0, at: geo.Point{X: 0, Y: 0}, until: math.Inf(1)}
	m.Add(parked)
	// A mover sweeping past the parked node: in range around t∈[7,13].
	m.Add(&scripted{id: 1, fn: func(now float64) geo.Point {
		return geo.Point{X: -100 + 10*now, Y: 0}
	}})
	m.Start(0)
	s.RunUntil(30)

	if parked.queries != 1 {
		t.Fatalf("static entity queried %d times over 31 ticks, want 1", parked.queries)
	}
	if len(rec.ups) != 1 || len(rec.downs) != 1 {
		t.Fatalf("drive-by contact not detected: ups=%v downs=%v", rec.ups, rec.downs)
	}
	if m.Connected(0, 1) {
		t.Fatal("still connected after the mover passed")
	}
}

// TestStaticHintExpiresAndRequeries pins the pause-end boundary: a node
// parked until t=10 is skipped through t=10 and re-queried on the first
// tick after its hint expires.
func TestStaticHintExpiresAndRequeries(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	h := &hinted{id: 0, at: geo.Point{X: 0, Y: 0}, until: 10,
		fn: func(now float64) geo.Point { return geo.Point{X: 10 * (now - 10), Y: 0} }}
	m.Add(h)
	m.Add(fixed(1, geo.Point{X: 200, Y: 0})) // no hint: re-queried every tick
	m.Start(0)
	s.RunUntil(20.5)

	// Queried at t=0 (first tick), skipped while the hint strictly
	// exceeds now, re-queried exactly at the expiry instant t=10 (the
	// position may change right at pauseEnd), then every tick after:
	// 1 + 1 + 10 = 12 queries over 21 ticks instead of 21.
	if h.queries != 12 {
		t.Fatalf("hinted entity queried %d times, want 12", h.queries)
	}
	// By t=20 it has driven to x=100, well within range of node 1 at 200?
	// No: 100 m apart — still out of range; just check state consistency.
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPeersOfAllocationFree is the acceptance criterion that PeersOf no
// longer walks the global contact map: it must return the cached
// adjacency slice with zero allocations.
func TestPeersOfAllocationFree(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	for i := 0; i < 8; i++ {
		m.Add(fixed(i, geo.Point{X: float64(i) * 10, Y: 0}))
	}
	m.Start(0)
	s.RunUntil(0.5)
	if got := m.PeersOf(3); len(got) != 6 { // 0,1,2,4,5,6 within 30 m
		t.Fatalf("PeersOf(3) = %v", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			if len(m.PeersOf(i)) == 0 {
				t.Fatal("lost peers")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("PeersOf allocates %v per run, want 0", allocs)
	}
}

// TestScanSteadyStateAllocationFree: once the working set is warm, a scan
// tick with no contact transitions performs no allocations at all.
func TestScanSteadyStateAllocationFree(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	rng := xrand.New(5)
	for i := 0; i < 300; i++ {
		p := geo.Point{X: rng.Float64() * 600, Y: rng.Float64() * 600}
		if i%3 == 0 {
			// Oscillates inside a 2 m envelope: always a mover, but its
			// contact set never changes.
			phase := rng.Float64()
			m.Add(&scripted{id: i, fn: func(now float64) geo.Point {
				return geo.Point{X: p.X + math.Sin(now+phase), Y: p.Y}
			}})
		} else {
			m.Add(&hinted{id: i, at: p, until: math.Inf(1)})
		}
	}
	now := 0.0
	m.scan(now)
	for i := 0; i < 10; i++ { // warm the reusable slices past any growth
		now++
		m.scan(now)
	}
	allocs := testing.AllocsPerRun(50, func() {
		now++
		m.scan(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scan allocates %v per tick, want 0", allocs)
	}
}

// TestAdjacencyAcrossAllContactSources verifies the adjacency cache is
// maintained uniformly by all three contact sources — scan, plan, replay —
// since raise/drop is the single funnel.
func TestAdjacencyAcrossAllContactSources(t *testing.T) {
	check := func(t *testing.T, m *Medium, s *event.Scheduler) {
		t.Helper()
		s.RunUntil(15)
		if got := m.PeersOf(0); len(got) != 1 || got[0] != 1 {
			t.Fatalf("PeersOf(0) = %v, want [1]", got)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(100)
		if got := m.PeersOf(0); len(got) != 0 {
			t.Fatalf("PeersOf(0) after drop = %v, want []", got)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("scan", func(t *testing.T) {
		s := event.NewScheduler()
		m := NewMedium(s, testCfg())
		m.SetHandler(&recorder{})
		m.Add(fixed(0, geo.Point{}))
		m.Add(&scripted{id: 1, fn: func(now float64) geo.Point {
			if now < 20 {
				return geo.Point{X: 10, Y: 0}
			}
			return geo.Point{X: 1000, Y: 0}
		}})
		m.Start(0)
		check(t, m, s)
	})
	t.Run("plan", func(t *testing.T) {
		s := event.NewScheduler()
		m := NewMedium(s, testCfg())
		m.SetHandler(&recorder{})
		m.Add(fixed(0, geo.Point{}))
		m.Add(fixed(1, geo.Point{X: 9999, Y: 9999}))
		m.StartPlan([]ContactWindow{{A: 0, B: 1, Start: 10, End: 20}})
		check(t, m, s)
	})
	t.Run("replay", func(t *testing.T) {
		s := event.NewScheduler()
		m := NewMedium(s, testCfg())
		m.SetHandler(&recorder{})
		m.Add(fixed(0, geo.Point{}))
		m.Add(fixed(1, geo.Point{X: 9999, Y: 9999}))
		rec := &Recording{ScanInterval: 1, Duration: 100, Transitions: []Transition{
			{Time: 10, A: 0, B: 1, Up: true},
			{Time: 20, A: 0, B: 1, Up: false},
		}}
		m.StartReplay(0, rec)
		check(t, m, s)
	})
}

// TestAddAfterStartIsPickedUp preserves the pre-refactor behavior that an
// entity registered after Start joins the scan on the next tick (the
// working set grows on demand).
func TestAddAfterStartIsPickedUp(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{}))
	m.Start(0)
	s.RunUntil(2.5)
	m.Add(fixed(1, geo.Point{X: 10, Y: 0}))
	s.RunUntil(5)
	if !m.Connected(0, 1) {
		t.Fatal("late-added entity never scanned")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScanStopStartResumes: stopping the scan and starting a fresh pass
// later must pick up position changes that happened in between, including
// for entities whose hint expired while stopped.
func TestScanStopStartResumes(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{}))
	m.Add(&hinted{id: 1, at: geo.Point{X: 10, Y: 0}, until: 5,
		fn: func(now float64) geo.Point { return geo.Point{X: 1000, Y: 0} }})
	m.Start(0)
	s.RunUntil(2.5)
	if !m.Connected(0, 1) {
		t.Fatal("not connected before stop")
	}
	m.Stop()
	s.RunUntil(30)
	m.Start(s.Now())
	s.RunUntil(32)
	if m.Connected(0, 1) {
		t.Fatal("stale contact survived a stop/start cycle")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScanEquivalenceHintedVsUnhinted: the same trajectory with and
// without static hints must produce the identical transition sequence —
// the hint is a pure optimization.
func TestScanEquivalenceHintedVsUnhinted(t *testing.T) {
	build := func(hints bool) (*event.Scheduler, *Medium, *recorder) {
		s := event.NewScheduler()
		m := NewMedium(s, testCfg())
		rec := &recorder{}
		m.SetHandler(rec)
		rng := xrand.New(11)
		for i := 0; i < 60; i++ {
			home := geo.Point{X: rng.Float64()*300 - 150, Y: rng.Float64()*300 - 150}
			until := rng.Float64() * 30
			vx := rng.Float64()*10 - 5
			fn := func(now float64) geo.Point {
				if now <= until {
					return home
				}
				return geo.Point{X: home.X + vx*(now-until), Y: home.Y}
			}
			if hints {
				m.Add(&hinted{id: i, at: home, until: until, fn: fn})
			} else {
				m.Add(&scripted{id: i, fn: fn})
			}
		}
		m.Start(0)
		return s, m, rec
	}
	s1, m1, r1 := build(true)
	s2, m2, r2 := build(false)
	s1.RunUntil(60)
	s2.RunUntil(60)
	if fmt.Sprint(r1.ups) != fmt.Sprint(r2.ups) || fmt.Sprint(r1.downs) != fmt.Sprint(r2.downs) {
		t.Fatalf("hinted and unhinted transition sequences diverged:\nhinted:   %v / %v\nunhinted: %v / %v",
			r1.ups, r1.downs, r2.ups, r2.downs)
	}
	if m1.ContactsSeen != m2.ContactsSeen {
		t.Fatalf("ContactsSeen %d vs %d", m1.ContactsSeen, m2.ContactsSeen)
	}
	if err := m1.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
