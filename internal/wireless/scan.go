package wireless

import (
	"math"
	"slices"

	"vdtn/internal/detmap"
	"vdtn/internal/geo"
)

// StaticUntiler is an optional Entity extension for the live proximity
// scan: StaticUntil reports a simulation time through which the entity's
// position is guaranteed not to change, so the scan can skip re-querying
// it until then. The medium calls StaticUntil immediately after
// Position(now) with the same now; returning a value <= now promises
// nothing (the entity is re-queried on the next tick). Stationary relays
// return +Inf; paused walkers return the end of their pause.
type StaticUntiler interface {
	StaticUntil(now float64) float64
}

// cellKey addresses one cell of the uniform spatial hash grid
// (cell size = radio range).
type cellKey struct{ x, y int64 }

// pack collapses the cell coordinates into one uint64 map key: the
// runtime's fast-path uint64 map access beats hashing the 16-byte struct,
// and the 3x3 neighbourhood walk is the scan's hottest map consumer.
// Truncating to 32 bits per axis collides only for cells 2^32 apart
// (at 30 m cells, ~1.3e11 m — far beyond any scenario geometry).
func (c cellKey) pack() uint64 {
	return uint64(uint32(c.x))<<32 | uint64(uint32(c.y))
}

// packPair collapses a pairKey into one uint64 whose numeric order equals
// the key's lexicographic order, so the scan's sort, merge and diff run on
// single-word comparisons. Entity ids fit in 32 bits (Medium.Add enforces
// it), and key() guarantees k[0] < k[1].
func packPair(k pairKey) uint64 {
	return uint64(uint32(k[0]))<<32 | uint64(uint32(k[1]))
}

// unpackPair restores the pairKey from its packed form.
func unpackPair(u uint64) pairKey {
	return pairKey{int(u >> 32), int(uint32(u))}
}

// pairEntry is one in-range pair in the scan's working set: the packed
// pair key that orders and fires transitions, plus both entity indexes so
// the carry check needs no id->index map lookups.
type pairEntry struct {
	ku   uint64
	a, b int32
}

// scanState is the live scan's working set. Everything here is allocated
// on the first tick and reused for every subsequent one, so a steady-state
// scan performs no allocations: the position cache and grid are updated
// incrementally as entities move, and the pair/diff slices are truncated
// and refilled in place.
type scanState struct {
	seen      []bool          // entity has been placed in the grid
	pos       []geo.Point     // last observed position, by entity index
	ids       []int           // entity id, by entity index
	hint      []StaticUntiler // nil when the entity offers no hint
	staticTil []float64       // position constant through this time
	cell      []cellKey       // current grid cell of pos
	isMover   []bool          // re-queried this tick (cleared at scan end)

	grid gridState

	movers     []int32       // entity indexes re-queried this tick
	newCell    []cellKey     // phase-1 staging: observed grid cell, by entity index
	carry      []pairEntry   // static-static pairs carried from prev (sorted)
	wpairs     [][]pairEntry // per-worker mover-pair shards, each sorted (serial: shard 0)
	mergeSrc   [][]pairEntry // k-way merge head scratch
	curr, prev []pairEntry   // in-range pairs this and last tick, ascending
	downs, ups []pairKey     // per-tick transition staging
}

// gridState is the spatial hash: buckets of entity indexes keyed by grid
// cell, persisting across ticks (an entity moves buckets only when its
// position crosses a cell border). Compact geometries — every scenario in
// practice — use a dense row-major array over the occupied bounding box,
// so the scan's 3x3 neighbourhood walk is direct indexing instead of nine
// hash lookups per mover. Geometries too spread out for a dense array
// (area over denseCellCap cells) fall back to a hash map; membership is
// identical either way, and bucket order never matters (the pair set is
// sorted before transitions fire), so the representations are
// byte-equivalent.
type gridState struct {
	dense      bool
	minX, minY int64     // dense array origin, in cell coordinates
	w, h       int64     // dense array extent, in cells
	cells      [][]int32 // dense buckets, row-major: (x-minX) + (y-minY)*w
	m          map[uint64][]int32

	// Occupied-cell bounding box, grown monotonically on every insert;
	// drives the dense/sparse decision and the dense extent.
	occValid                           bool
	occMinX, occMaxX, occMinY, occMaxY int64
}

// gridPad is the dense-array margin, in cells, beyond the occupied
// bounding box, so small drifts don't force a rebuild.
const gridPad = 4

// denseCellCap bounds the dense array's cell count for n entities:
// generous for any bounded scenario map, while pathological geometries
// (two clusters a continent apart) stay on the hash map.
func denseCellCap(n int) int64 { return 8*int64(n) + 1024 }

func (g *gridState) init(n int) {
	if g.m == nil {
		g.m = make(map[uint64][]int32, n/2+1)
	}
}

func (g *gridState) noteOccupied(ck cellKey) {
	if !g.occValid {
		g.occValid = true
		g.occMinX, g.occMaxX, g.occMinY, g.occMaxY = ck.x, ck.x, ck.y, ck.y
		return
	}
	g.occMinX, g.occMaxX = min(g.occMinX, ck.x), max(g.occMaxX, ck.x)
	g.occMinY, g.occMaxY = min(g.occMinY, ck.y), max(g.occMaxY, ck.y)
}

func (g *gridState) denseIdx(ck cellKey) int64 {
	return (ck.x - g.minX) + (ck.y-g.minY)*g.w
}

func (g *gridState) inDense(ck cellKey) bool {
	return ck.x >= g.minX && ck.x < g.minX+g.w &&
		ck.y >= g.minY && ck.y < g.minY+g.h
}

// bucket returns the cell's bucket for the neighbourhood walk (nil when
// empty or out of the dense extent — an out-of-extent cell is necessarily
// unoccupied, since the extent covers the occupied bounding box).
func (g *gridState) bucket(ck cellKey) []int32 {
	if g.dense {
		if !g.inDense(ck) {
			return nil
		}
		return g.cells[g.denseIdx(ck)]
	}
	return g.m[ck.pack()]
}

func (g *gridState) add(i int32, ck cellKey) {
	g.noteOccupied(ck)
	if g.dense {
		if !g.inDense(ck) {
			g.reshape(len(g.cells)) // grow the extent (or go sparse)
			if !g.dense {
				g.m[ck.pack()] = append(g.m[ck.pack()], i)
				return
			}
		}
		idx := g.denseIdx(ck)
		g.cells[idx] = append(g.cells[idx], i)
		return
	}
	g.m[ck.pack()] = append(g.m[ck.pack()], i)
}

// remove swap-deletes entity index i from its cell's bucket.
func (g *gridState) remove(i int32, ck cellKey) {
	var b []int32
	var idx int64
	if g.dense {
		idx = g.denseIdx(ck)
		b = g.cells[idx]
	} else {
		b = g.m[ck.pack()]
	}
	for n, v := range b {
		if v == i {
			b[n] = b[len(b)-1]
			b = b[:len(b)-1]
			break
		}
	}
	if g.dense {
		g.cells[idx] = b
	} else {
		g.m[ck.pack()] = b
	}
}

// reshape re-homes every bucket for the current occupied bounding box:
// into a (padded) dense array when it fits denseCellCap for n entities,
// onto the hash map otherwise. Buckets are moved, not copied.
func (g *gridState) reshape(n int) {
	if !g.occValid {
		return
	}
	w := g.occMaxX - g.occMinX + 1 + 2*gridPad
	h := g.occMaxY - g.occMinY + 1 + 2*gridPad
	capCells := denseCellCap(n)
	toDense := w <= capCells && h <= capCells && w*h <= capCells

	// Collect the occupied buckets from the current representation.
	type occ struct {
		ck cellKey
		b  []int32
	}
	var bs []occ
	if g.dense {
		for y := int64(0); y < g.h; y++ {
			for x := int64(0); x < g.w; x++ {
				if b := g.cells[x+y*g.w]; len(b) > 0 {
					bs = append(bs, occ{cellKey{g.minX + x, g.minY + y}, b})
				}
			}
		}
	} else {
		for _, k := range detmap.Keys(g.m) {
			if b := g.m[k]; len(b) > 0 {
				bs = append(bs, occ{cellKey{int64(int32(k >> 32)), int64(int32(k))}, b})
			}
		}
	}

	g.dense = toDense
	if toDense {
		g.minX, g.minY = g.occMinX-gridPad, g.occMinY-gridPad
		g.w, g.h = w, h
		g.cells = make([][]int32, w*h)
		g.m = make(map[uint64][]int32)
		for _, o := range bs {
			g.cells[g.denseIdx(o.ck)] = o.b
		}
		return
	}
	g.cells = nil
	g.m = make(map[uint64][]int32, len(bs))
	for _, o := range bs {
		g.m[o.ck.pack()] = o.b
	}
}

// comparePairs orders pairKeys lexicographically.
func comparePairs(a, b pairKey) int {
	if a[0] != b[0] {
		if a[0] < b[0] {
			return -1
		}
		return 1
	}
	switch {
	case a[1] < b[1]:
		return -1
	case a[1] > b[1]:
		return 1
	}
	return 0
}

func comparePairEntries(a, b pairEntry) int {
	switch {
	case a.ku < b.ku:
		return -1
	case a.ku > b.ku:
		return 1
	}
	return 0
}

// growScanState sizes the per-entity scan arrays for entities added since
// the last tick (on the first tick, all of them).
func (m *Medium) growScanState() {
	sc := &m.sc
	sc.grid.init(len(m.entities))
	if sc.wpairs == nil {
		// One pair shard per worker; the serial path uses shard 0 only.
		sc.wpairs = make([][]pairEntry, max(1, m.cfg.ScanWorkers))
		sc.mergeSrc = make([][]pairEntry, 0, len(sc.wpairs)+1)
	}
	for i := len(sc.pos); i < len(m.entities); i++ {
		e := m.entities[i]
		h, _ := e.(StaticUntiler)
		sc.seen = append(sc.seen, false)
		sc.pos = append(sc.pos, geo.Point{})
		sc.ids = append(sc.ids, e.ID())
		sc.hint = append(sc.hint, h)
		sc.staticTil = append(sc.staticTil, math.Inf(-1))
		sc.cell = append(sc.cell, cellKey{})
		sc.isMover = append(sc.isMover, false)
		sc.newCell = append(sc.newCell, cellKey{})
	}
}

// moveBucket relocates entity index i from grid cell `from` to `to`.
// Bucket order is not meaningful (removal swap-deletes); determinism comes
// from sorting the pair set before transitions fire.
func (m *Medium) moveBucket(i int32, from, to cellKey) {
	m.sc.grid.remove(i, from)
	m.sc.grid.add(i, to)
}

// evalPositions refreshes the cached position, static-until hint and
// observed grid cell for the given movers. Every write lands at the
// mover's own entity index, and a mover's mobility model and RNG stream
// are private to it, so disjoint mover slices can be evaluated from
// different goroutines concurrently (phase 1 of the parallel scan). The
// grid itself is NOT touched here: bucket surgery is serial, applied by
// scan after all positions are known.
func (m *Medium) evalPositions(now float64, movers []int32) {
	sc := &m.sc
	cell := m.cfg.Range
	for _, i := range movers {
		e := m.entities[i]
		p := e.Position(now)
		til := now
		if h := sc.hint[i]; h != nil {
			til = h.StaticUntil(now)
		}
		sc.pos[i] = p
		sc.staticTil[i] = til
		sc.newCell[i] = cellKey{int64(math.Floor(p.X / cell)), int64(math.Floor(p.Y / cell))}
	}
}

// findPairs appends every in-range pair involving one of the given movers
// to buf, via the mover's 3x3 cell neighbourhood. Mover-mover pairs are
// enumerated from both ends; the smaller-index end claims the pair, so the
// union over any partition of the movers holds each pair exactly once —
// that disjointness is what lets phase 2 shard movers across workers and
// still merge shards without cross-shard duplicates. Read-only on all
// shared state (grid, positions, mover flags), so disjoint mover slices
// can run concurrently.
func (m *Medium) findPairs(movers []int32, buf []pairEntry) []pairEntry {
	sc := &m.sc
	r2 := m.cfg.Range * m.cfg.Range
	for _, i := range movers {
		base := sc.cell[i]
		pi := sc.pos[i]
		idi := sc.ids[i]
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for _, j := range sc.grid.bucket(cellKey{base.x + dx, base.y + dy}) {
					// Mover-mover pairs are enumerated from both ends;
					// count them once, at the smaller index.
					if j == i || (sc.isMover[j] && j < i) {
						continue
					}
					if pi.Dist2(sc.pos[j]) <= r2 {
						buf = append(buf, pairEntry{ku: packPair(key(idi, sc.ids[j])), a: i, b: j})
					}
				}
			}
		}
	}
	return buf
}

// mergeShards k-way merges the sorted carry slice and the first nw sorted
// per-worker pair shards into sc.curr, ascending by packed pair key. The
// inputs are mutually disjoint (carry holds only non-mover pairs; the
// shards partition the mover pairs by claiming index), so the merged
// sequence — and therefore everything downstream of it — is a pure
// function of the pair SET, independent of how pairs were distributed
// over shards. That is the determinism argument for the parallel scan:
// worker count and goroutine scheduling change only the shard layout,
// never the merged output. A defensive dedup skips equal keys anyway, so
// even a (bug-introduced) duplicate could not double-fire a transition.
// The head scratch holds subslices of persistent buffers; steady-state
// merges allocate nothing.
func (m *Medium) mergeShards(nw int) {
	sc := &m.sc
	srcs := sc.mergeSrc[:0]
	if len(sc.carry) > 0 {
		srcs = append(srcs, sc.carry)
	}
	for w := 0; w < nw; w++ {
		if len(sc.wpairs[w]) > 0 {
			srcs = append(srcs, sc.wpairs[w])
		}
	}
	sc.mergeSrc = srcs[:0] // keep any growth for next tick
	sc.curr = sc.curr[:0]
	for {
		best := -1
		var bku uint64
		for s, head := range srcs {
			if len(head) == 0 {
				continue
			}
			if best < 0 || head[0].ku < bku {
				best, bku = s, head[0].ku
			}
		}
		if best < 0 {
			return
		}
		pe := srcs[best][0]
		srcs[best] = srcs[best][1:]
		if n := len(sc.curr); n > 0 && sc.curr[n-1].ku == pe.ku {
			continue // defensive: inputs are disjoint by construction
		}
		sc.curr = append(sc.curr, pe)
	}
}

// scan recomputes the proximity graph and fires contact transitions.
//
// The scan is incremental: entities whose StaticUntil hint covers this
// tick keep their cached position and grid cell, so only movers are
// re-queried and re-bucketed. The current in-range pair set is then the
// carried-over pairs between two non-movers (their membership cannot have
// changed) plus every in-range pair involving at least one mover, found
// through the mover's 3x3 cell neighbourhood. The carried pairs are
// already sorted (a subsequence of the previous sorted set), so only the
// mover pairs are sorted before a k-way merge rebuilds the full set.
// Diffing it against the previous tick's yields the transitions; downs
// fire first (freeing the endpoints' radios before new-contact handlers
// try to start transfers on this same tick), then ups, each ascending by
// pair — the exact firing order of the original full-rescan
// implementation, so runs are byte-identical.
//
// With Config.ScanWorkers >= 2 the two independent per-mover stages run on
// a worker pool: phase 1 evaluates mover positions in parallel (writes go
// to per-entity slots; each entity's model and RNG stream are private),
// and phase 2 shards pair discovery over the then-read-only grid into
// per-worker sorted buffers. Everything between and after the phases —
// grid surgery, carry, merge, diff, transition firing — stays on the
// event-loop goroutine. The serial path is the same pipeline with one
// inline "worker", so both paths produce identical transition sequences
// by construction.
func (m *Medium) scan(now float64) {
	sc := &m.sc
	if len(sc.pos) < len(m.entities) {
		m.growScanState()
	}

	// Identify this tick's movers: entities whose cached position is not
	// covered by a static-until hint.
	sc.movers = sc.movers[:0]
	for i := range m.entities {
		if sc.seen[i] && sc.staticTil[i] > now {
			continue
		}
		sc.movers = append(sc.movers, int32(i))
	}

	// Phase 1: observe mover positions, hints and target cells. A tick
	// with no movers skips the pool dispatch entirely.
	var pool *scanPool
	if len(sc.movers) > 0 {
		pool = m.scanPoolReady()
	}
	if pool != nil {
		pool.run(phasePositions, now)
	} else {
		m.evalPositions(now, sc.movers)
	}

	// Apply the observed cells to the grid, in entity order (bucket order
	// is not semantic, but keeping surgery serial keeps the grid simple
	// and race-free).
	for _, i := range sc.movers {
		ck := sc.newCell[i]
		switch {
		case !sc.seen[i]:
			sc.seen[i] = true
			sc.cell[i] = ck
			sc.grid.add(i, ck)
		case ck != sc.cell[i]:
			m.moveBucket(i, sc.cell[i], ck)
			sc.cell[i] = ck
		}
		sc.isMover[i] = true
	}

	// Densify the grid once the occupied bounding box is known to be
	// compact (checked each tick so late-added entities can flip it; a
	// no-op once dense — the grid then reshapes itself only when an
	// entity leaves the extent).
	if g := &sc.grid; !g.dense && g.occValid {
		w := g.occMaxX - g.occMinX + 1 + 2*gridPad
		h := g.occMaxY - g.occMinY + 1 + 2*gridPad
		if capCells := denseCellCap(len(m.entities)); w <= capCells && h <= capCells && w*h <= capCells {
			g.reshape(len(m.entities))
		}
	}

	// Carry pairs between two non-movers: both endpoints kept last tick's
	// position, so membership is unchanged and the previous (sorted) set
	// already holds the answer.
	sc.carry = sc.carry[:0]
	for _, pe := range sc.prev {
		if !sc.isMover[pe.a] && !sc.isMover[pe.b] {
			sc.carry = append(sc.carry, pe)
		}
	}

	// Phase 2: find every in-range pair involving a mover through the
	// (now read-only) grid, then merge the sorted shards with the carry.
	nShards := 1
	if pool != nil {
		pool.run(phasePairs, now)
		nShards = pool.workers
	} else {
		buf := m.findPairs(sc.movers, sc.wpairs[0][:0])
		slices.SortFunc(buf, comparePairEntries)
		sc.wpairs[0] = buf
	}
	m.mergeShards(nShards)

	// Diff against the previous tick: both slices are ascending, so one
	// merge walk splits the symmetric difference into downs and ups.
	sc.downs, sc.ups = sc.downs[:0], sc.ups[:0]
	i, j := 0, 0
	for i < len(sc.prev) && j < len(sc.curr) {
		switch pu, cu := sc.prev[i].ku, sc.curr[j].ku; {
		case pu < cu:
			sc.downs = append(sc.downs, unpackPair(pu))
			i++
		case pu > cu:
			sc.ups = append(sc.ups, unpackPair(cu))
			j++
		default:
			i, j = i+1, j+1
		}
	}
	for ; i < len(sc.prev); i++ {
		sc.downs = append(sc.downs, unpackPair(sc.prev[i].ku))
	}
	for ; j < len(sc.curr); j++ {
		sc.ups = append(sc.ups, unpackPair(sc.curr[j].ku))
	}
	for _, k := range sc.downs {
		m.drop(now, k)
	}
	for _, k := range sc.ups {
		m.raise(now, k)
	}

	sc.prev, sc.curr = sc.curr, sc.prev
	for _, i := range sc.movers {
		sc.isMover[i] = false
	}
}

// proximityPairsReference is the original full-rescan pair computation: it
// queries every entity's position each call and rebuilds the grid and pair
// set from scratch. It is retained as the oracle for the grid equivalence
// property tests and as the "before" leg of the scan benchmarks; the live
// scan no longer uses it.
func (m *Medium) proximityPairsReference(now float64) map[pairKey]bool {
	n := len(m.entities)
	pos := make([]geo.Point, n)
	for i, e := range m.entities {
		pos[i] = e.Position(now)
	}
	cell := m.cfg.Range
	grid := make(map[cellKey][]int, n)
	ck := func(p geo.Point) cellKey {
		return cellKey{int64(math.Floor(p.X / cell)), int64(math.Floor(p.Y / cell))}
	}
	for i, p := range pos {
		k := ck(p)
		grid[k] = append(grid[k], i)
	}
	r2 := m.cfg.Range * m.cfg.Range
	pairs := make(map[pairKey]bool, len(m.connected))
	for i, p := range pos {
		base := ck(p)
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for _, j := range grid[cellKey{base.x + dx, base.y + dy}] {
					if j <= i {
						continue
					}
					if pos[i].Dist2(pos[j]) <= r2 {
						pairs[key(m.entities[i].ID(), m.entities[j].ID())] = true
					}
				}
			}
		}
	}
	return pairs
}

// scanReference replays the pre-adjacency scan algorithm end to end
// (full position rescan, fresh maps, map-diff plus sort) without firing
// transitions. It exists so the scan benchmarks can measure the old cost
// on the same scenario state the incremental scan runs on.
func (m *Medium) scanReference(now float64) (downs, ups []pairKey) {
	curr := m.proximityPairsReference(now)
	for k, up := range m.connected {
		if up && !curr[k] {
			downs = append(downs, k)
		}
	}
	slices.SortFunc(downs, comparePairs)
	for k := range curr {
		if !m.connected[k] {
			ups = append(ups, k)
		}
	}
	slices.SortFunc(ups, comparePairs)
	return downs, ups
}
