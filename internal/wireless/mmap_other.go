//go:build !unix

package wireless

import (
	"io"
	"os"
)

// mmapReadOnly on platforms without a wired-up mmap falls back to reading
// the file into memory. The zero-copy property is lost but the API — and
// every integrity check layered on it — behaves identically.
func mmapReadOnly(f *os.File, size int) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
