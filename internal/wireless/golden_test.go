package wireless

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// goldenRecording is the fixture pinned by the golden-format test. Do not
// change it: its exact bytes are checked in under testdata, and together
// they freeze the .contactsb v2 wire format. The transitions exercise the
// encoder's interesting paths — a same-tick delta of zero, fractional
// ticks, a time with no short decimal representation, a re-up of an
// earlier pair, and a wide node gap.
func goldenRecording() *Recording {
	return &Recording{
		ScanInterval: 0.5,
		Duration:     12.5,
		Transitions: []Transition{
			{Time: 0, A: 0, B: 1, Up: true},
			{Time: 0.5, A: 0, B: 2, Up: true},
			{Time: 0.5, A: 1, B: 2, Up: true},
			{Time: 1.5, A: 0, B: 1, Up: false},
			{Time: 3.0000000000000004, A: 0, B: 1, Up: true},
			{Time: 12.5, A: 2, B: 40, Up: true},
		},
	}
}

const goldenFile = "testdata/golden_v2.contactsb"

// TestGoldenBinaryFormat pins the .contactsb v2 on-disk bytes: the encoder
// must reproduce the checked-in golden file exactly, and every decoder
// must read the golden file back into the fixture. A codec edit that
// changes the wire format — reordered fields, different varint packing, a
// new version byte — fails here loudly instead of silently orphaning every
// persisted cache directory. If the format must change, bump the version,
// keep a decoder for v2, and regenerate the golden via
// UPDATE_GOLDEN=1 go test ./internal/wireless -run TestGoldenBinaryFormat.
func TestGoldenBinaryFormat(t *testing.T) {
	rec := goldenRecording()
	if err := rec.Validate(); err != nil {
		t.Fatalf("golden fixture invalid: %v", err)
	}
	enc := EncodeBinary(rec)

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden bytes to %s", len(enc), goldenFile)
	}

	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("no golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("EncodeBinary changed the v2 wire format:\n got %d bytes % x\nwant %d bytes % x\n"+
			"this breaks every persisted .contactsb cache — bump the format version instead",
			len(enc), enc, len(want), want)
	}

	dec, err := DecodeBinary(want)
	if err != nil {
		t.Fatalf("golden file no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(dec, rec) {
		t.Fatalf("golden file decoded to a different trace:\n got %+v\nwant %+v", dec, rec)
	}
	v, err := NewRecordingView(want)
	if err != nil {
		t.Fatalf("golden file no longer opens as a view: %v", err)
	}
	if !reflect.DeepEqual(v.Materialize(), rec) {
		t.Fatal("golden file viewed to a different trace")
	}
}
