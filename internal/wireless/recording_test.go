package wireless

import (
	"math"
	"reflect"
	"testing"

	"vdtn/internal/event"
	"vdtn/internal/geo"
)

// mover returns an entity oscillating on the x axis so contacts with a
// fixed origin entity repeatedly form and break.
func mover(id int, period float64) *scripted {
	return &scripted{id: id, fn: func(now float64) geo.Point {
		return geo.Point{X: 50 + 40*math.Sin(2*math.Pi*now/period), Y: float64(10 * id)}
	}}
}

// liveRecording runs a scan-driven medium over the given entities and
// returns the captured trace plus the handler's observed contact events.
func liveRecording(t *testing.T, entities []*scripted, horizon float64) (*Recording, *recorder) {
	t.Helper()
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	h := &recorder{}
	m.SetHandler(h)
	for _, e := range entities {
		m.Add(e)
	}
	rec := &Recording{Duration: horizon}
	m.RecordTo(rec)
	m.Start(0)
	s.RunUntil(horizon)
	return rec, h
}

func crossingEntities() []*scripted {
	return []*scripted{
		fixed(0, geo.Point{X: 60, Y: 0}),
		mover(1, 60),
		mover(2, 45),
		fixed(3, geo.Point{X: 500, Y: 500}), // never in range
	}
}

func TestRecordingCapturesScanTransitions(t *testing.T) {
	rec, h := liveRecording(t, crossingEntities(), 120)
	if len(rec.Transitions) == 0 {
		t.Fatal("no transitions recorded")
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	ups := 0
	for _, tr := range rec.Transitions {
		if tr.Up {
			ups++
		}
		if tr.A == 3 || tr.B == 3 {
			t.Fatalf("out-of-range entity 3 appears in %+v", tr)
		}
		if tr.Time != math.Trunc(tr.Time) {
			t.Fatalf("transition off the 1 s scan grid: %+v", tr)
		}
	}
	if ups != len(h.ups) {
		t.Fatalf("recorded %d ups, handler saw %d", ups, len(h.ups))
	}
	if rec.MaxNode() != 2 {
		t.Fatalf("MaxNode = %d, want 2", rec.MaxNode())
	}
}

func TestReplayMatchesLiveScan(t *testing.T) {
	rec, live := liveRecording(t, crossingEntities(), 120)

	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	h := &recorder{}
	m.SetHandler(h)
	// Positions must never be queried during replay.
	for i := 0; i < 4; i++ {
		id := i
		m.Add(&scripted{id: id, fn: func(float64) geo.Point {
			panic("replay queried a position")
		}})
	}
	// Re-record while replaying: the round trip must reproduce the trace.
	rerec := &Recording{Duration: 120}
	m.RecordTo(rerec)
	m.StartReplay(0, rec)
	s.RunUntil(120)

	if !reflect.DeepEqual(h.ups, live.ups) || !reflect.DeepEqual(h.downs, live.downs) {
		t.Fatalf("replay events diverged:\nlive ups %v downs %v\nreplay ups %v downs %v",
			live.ups, live.downs, h.ups, h.downs)
	}
	if !reflect.DeepEqual(rerec.Transitions, rec.Transitions) {
		t.Fatal("re-recorded replay trace differs from the original")
	}
	if m.ContactsSeen != uint64(len(live.ups)) {
		t.Fatalf("ContactsSeen = %d, want %d", m.ContactsSeen, len(live.ups))
	}
}

func TestReplayAbortsTransfersOnRecordedDowns(t *testing.T) {
	rec := &Recording{
		ScanInterval: 1,
		Duration:     30,
		Transitions: []Transition{
			{Time: 1, A: 0, B: 1, Up: true},
			{Time: 5, A: 0, B: 1, Up: false},
		},
	}
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.Add(fixed(0, geo.Point{}))
	m.Add(fixed(1, geo.Point{}))
	h := &recorder{}
	aborted := false
	h.onUp = func(now float64, a, b Entity) {
		// 30 MB at 6 Mbit/s is 40 s — cannot finish before the down at 5 s.
		m.StartTransfer(now, a.ID(), b.ID(), 30e6, nil, func(float64) { aborted = true })
	}
	m.SetHandler(h)
	m.StartReplay(0, rec)
	s.RunUntil(30)
	if !aborted {
		t.Fatal("recorded contact-down did not abort the in-flight transfer")
	}
	if m.TransfersAborted != 1 {
		t.Fatalf("TransfersAborted = %d, want 1", m.TransfersAborted)
	}
}

func TestStartReplayPanics(t *testing.T) {
	cases := map[string]func(*Medium){
		"after Start": func(m *Medium) {
			m.Start(0)
			m.StartReplay(0, &Recording{ScanInterval: 1, Duration: 1})
		},
		"scan mismatch": func(m *Medium) {
			m.StartReplay(0, &Recording{ScanInterval: 2, Duration: 1})
		},
		"unknown node": func(m *Medium) {
			m.StartReplay(0, &Recording{ScanInterval: 1, Duration: 1,
				Transitions: []Transition{{Time: 0, A: 0, B: 9, Up: true}}})
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			s := event.NewScheduler()
			m := NewMedium(s, testCfg())
			m.Add(fixed(0, geo.Point{}))
			m.Add(fixed(1, geo.Point{}))
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn(m)
		})
	}
}

func TestRecordingFormatRoundTrip(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 90)
	parsed, err := ParseRecording(rec.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, parsed) {
		t.Fatalf("round trip changed the recording:\nin:  %+v\nout: %+v", rec, parsed)
	}
	// Fractional scan intervals and times must survive exactly.
	frac := &Recording{ScanInterval: 0.1, Duration: 1.7,
		Transitions: []Transition{{Time: 0.30000000000000004, A: 1, B: 2, Up: true}}}
	parsed, err = ParseRecording(frac.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(frac, parsed) {
		t.Fatal("fractional times did not round-trip exactly")
	}
}

func TestParseRecordingRejectsGarbage(t *testing.T) {
	bad := []string{
		"scan 1\nduration 10\n0 5 5 up\n",             // self contact (A == B fails ordering)
		"scan 1\nduration 10\n0 2 1 up\n",             // unordered pair
		"scan 1\nduration 10\n5 1 2 up\n3 1 2 down\n", // time reversal
		"scan 1\nduration 10\n0 1 2 sideways\n",       // bad direction
		"scan 1\nduration 10\n0 1 2 up\n1 1 2 up\n",   // repeated state
		"scan 1\nduration 10\n20 1 2 up\n",            // beyond duration
		"scan 0\nduration 10\n",                       // bad interval
		"duration 10\nwat\n",                          // unrecognized line
	}
	for i, text := range bad {
		if _, err := ParseRecording(text); err == nil {
			t.Errorf("case %d accepted: %q", i, text)
		}
	}
}

// TestValidateHugeNodeIDs: absurd node ids from corrupt text input must
// not panic the dense pair-state bitmap (stride*stride overflows for ids
// near 2^32 and 3037000500); Validate falls back to the map and treats
// them as structurally acceptable, and both codecs round-trip them.
func TestValidateHugeNodeIDs(t *testing.T) {
	for _, b64 := range []int64{4294967295, 3037000500, 1 << 40} {
		b := int(b64)
		if int64(b) != b64 {
			continue // id does not fit this platform's int
		}
		rec := &Recording{ScanInterval: 1, Duration: 10,
			Transitions: []Transition{{Time: 1, A: 0, B: b, Up: true}}}
		if err := rec.Validate(); err != nil {
			t.Fatalf("id %d: structurally valid trace rejected: %v", b, err)
		}
		parsed, err := ParseRecording(rec.Format())
		if err != nil {
			t.Fatalf("id %d: %v", b, err)
		}
		if parsed.MaxNode() != b {
			t.Fatalf("id %d text round-tripped as %d", b, parsed.MaxNode())
		}
		decoded, err := DecodeBinary(EncodeBinary(rec))
		if err != nil {
			t.Fatalf("id %d: %v", b, err)
		}
		if decoded.MaxNode() != b {
			t.Fatalf("id %d binary round-tripped as %d", b, decoded.MaxNode())
		}
	}
}

func TestRecordingWindows(t *testing.T) {
	rec := &Recording{
		ScanInterval: 1,
		Duration:     100,
		Transitions: []Transition{
			{Time: 2, A: 0, B: 1, Up: true},
			{Time: 5, A: 0, B: 2, Up: true},
			{Time: 8, A: 0, B: 1, Up: false},
			{Time: 10, A: 0, B: 1, Up: true}, // second window of the same pair
		},
	}
	got := rec.Windows()
	want := []ContactWindow{
		{A: 0, B: 1, Start: 2, End: 8},
		{A: 0, B: 2, Start: 5, End: 100}, // open contact closed at the horizon
		{A: 0, B: 1, Start: 10, End: 100},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Windows() = %+v, want %+v", got, want)
	}
}

// TestRecordingWindowsDropsFinalTickUp: the last scan tick of a run lands
// exactly at the horizon, so an up recorded there would make a zero-length
// window that contactplan.New rejects; Windows must drop it.
func TestRecordingWindowsDropsFinalTickUp(t *testing.T) {
	rec := &Recording{
		ScanInterval: 1,
		Duration:     100,
		Transitions: []Transition{
			{Time: 3, A: 0, B: 1, Up: true},
			{Time: 100, A: 0, B: 2, Up: true}, // up on the final tick
		},
	}
	want := []ContactWindow{{A: 0, B: 1, Start: 3, End: 100}}
	if got := rec.Windows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Windows() = %+v, want %+v", got, want)
	}
}
