package wireless

import (
	"io"
	"math/rand"
	"testing"
)

// fuzzSeedRecordings are the hand-picked traces whose encodings (and
// mutations of them) seed both fuzz corpora: the empty trace, fractional
// ticks, times with no short decimal form, repeated pairs, and a
// large-gap node pair.
func fuzzSeedRecordings() []*Recording {
	return []*Recording{
		{ScanInterval: 1, Duration: 10},
		{ScanInterval: 1, Duration: 10, Transitions: []Transition{
			{Time: 1, A: 0, B: 1, Up: true},
			{Time: 3, A: 0, B: 1, Up: false},
		}},
		{ScanInterval: 0.5, Duration: 12.5, Transitions: []Transition{
			{Time: 0, A: 0, B: 1, Up: true},
			{Time: 0.5, A: 0, B: 2, Up: true},
			{Time: 1.5, A: 0, B: 1, Up: false},
			{Time: 3.0000000000000004, A: 0, B: 1, Up: true},
			{Time: 12.5, A: 2, B: 40, Up: true},
		}},
	}
}

// encodeEqual compares two recordings by their canonical binary encoding —
// bit-pattern exact, so traces containing NaN floats (which Validate does
// not forbid and reflect.DeepEqual cannot compare) still compare correctly.
func encodeEqual(a, b *Recording) bool {
	return string(EncodeBinary(a)) == string(EncodeBinary(b))
}

// FuzzDecodeBinary is the binary codec's robustness target. For arbitrary
// bytes the decoder must never panic, and the three decoders — slurping
// DecodeBinary, streaming RecordingReader, zero-copy RecordingView — must
// agree exactly: the same accept/reject verdict and, on accept, the same
// transitions. An accepted input must be structurally valid (never a
// silently-short or silently-invalid trace) and re-encode
// deterministically.
func FuzzDecodeBinary(f *testing.F) {
	// Seeds: valid encodings, truncations at awkward offsets (inside the
	// header, mid-stream, inside the footer), bit flips, and non-binary
	// junk — the corpus the PR 2 truncation/bit-flip tests sweep.
	rng := rand.New(rand.NewSource(1))
	for _, rec := range fuzzSeedRecordings() {
		enc := EncodeBinary(rec)
		f.Add(enc)
		for _, cut := range []int{0, 3, len(enc) / 2, len(enc) - 5, len(enc) - 1} {
			if cut >= 0 && cut <= len(enc) {
				f.Add(enc[:cut])
			}
		}
		for i := 0; i < 8; i++ {
			flipped := append([]byte(nil), enc...)
			flipped[rng.Intn(len(flipped))] ^= 1 << rng.Intn(8)
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("VDTNCB"))
	f.Add([]byte("# vdtn contact recording\nscan 1\nduration 10\nend 0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, decErr := DecodeBinary(data)
		view, viewErr := NewRecordingView(data)
		if (decErr == nil) != (viewErr == nil) {
			t.Fatalf("decoders disagree: DecodeBinary err=%v, NewRecordingView err=%v", decErr, viewErr)
		}

		var streamed *Recording
		streamErr := func() error {
			rdr, err := NewRecordingReader(data)
			if err != nil {
				return err
			}
			meta := rdr.Meta()
			streamed = &Recording{ScanInterval: meta.ScanInterval, Duration: meta.Duration}
			for {
				tr, err := rdr.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				streamed.Transitions = append(streamed.Transitions, tr)
			}
		}()
		if (decErr == nil) != (streamErr == nil) {
			t.Fatalf("decoders disagree: DecodeBinary err=%v, RecordingReader err=%v", decErr, streamErr)
		}
		if decErr != nil {
			return
		}

		// Accepted: the trace must be structurally valid — a decode that
		// yields an invalid or shorter-than-declared trace is the silent
		// corruption the format exists to rule out.
		if err := rec.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		if !encodeEqual(rec, streamed) {
			t.Fatal("streaming reader yielded different transitions than DecodeBinary")
		}
		if mat := view.Materialize(); !encodeEqual(rec, mat) {
			t.Fatal("view materialized different transitions than DecodeBinary")
		}
		if view.MaxNode() != rec.MaxNode() || view.Len() != len(rec.Transitions) {
			t.Fatalf("view MaxNode/Len (%d, %d) disagree with the recording (%d, %d)",
				view.MaxNode(), view.Len(), rec.MaxNode(), len(rec.Transitions))
		}

		// Deterministic re-encode, and the re-encoding decodes back.
		enc := EncodeBinary(rec)
		again, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-encoded accepted trace rejected: %v", err)
		}
		if !encodeEqual(rec, again) {
			t.Fatal("re-encode round trip changed the trace")
		}
	})
}

// FuzzParseRecording is the text parser's robustness target: arbitrary
// input must never panic either parser; an accepted trace must be
// structurally valid and round-trip exactly through Format; and the
// legacy parser must accept everything the strict parser accepts, without
// warnings.
func FuzzParseRecording(f *testing.F) {
	for _, rec := range fuzzSeedRecordings() {
		text := rec.Format()
		f.Add(text)
		f.Add(text[:len(text)/2])
		f.Add(text + "1 0 1 up\n")
	}
	f.Add("")
	f.Add("# comment only\n")
	f.Add("scan 1\nduration 10\n1 0 1 up\n")              // no trailer (legacy)
	f.Add("scan 1\nduration 10\n1 0 1 up\nend 2\n")       // lying trailer
	f.Add("scan 1e309\nduration -0\nNaN 0 1 up\nend 1\n") // float edge cases

	f.Fuzz(func(t *testing.T, text string) {
		rec, err := ParseRecording(text)
		var warned bool
		legacyRec, legacyErr := ParseRecordingLegacy(text, func(string) { warned = true })
		if err != nil {
			// The legacy parser is strictly more permissive, but only about
			// the missing trailer; everything else rejects identically.
			if legacyErr == nil && !warned {
				t.Fatal("legacy parser silently accepted what the strict parser rejected")
			}
			return
		}
		if legacyErr != nil {
			t.Fatalf("legacy parser rejected a strictly-valid trace: %v", legacyErr)
		}
		if warned {
			t.Fatal("legacy parser warned on a trailer-bearing trace")
		}
		if !encodeEqual(rec, legacyRec) {
			t.Fatal("strict and legacy parsers disagree on an accepted trace")
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		again, err := ParseRecording(rec.Format())
		if err != nil {
			t.Fatalf("formatted accepted trace rejected: %v", err)
		}
		if !encodeEqual(rec, again) {
			t.Fatal("Format round trip changed the trace")
		}
	})
}
