package wireless

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestBinaryRoundTrip: the binary codec reproduces a live-captured
// recording exactly, and agrees bit for bit with the text codec.
func TestBinaryRoundTrip(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 120)
	dec, err := DecodeBinary(EncodeBinary(rec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, dec) {
		t.Fatalf("binary round trip changed the recording:\nin:  %+v\nout: %+v", rec, dec)
	}
	viaText, err := ParseRecording(rec.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaText, dec) {
		t.Fatal("binary and text round trips disagree")
	}

	// Times with no short decimal form and an empty trace.
	for _, rec := range []*Recording{
		{ScanInterval: 0.1, Duration: 1.7,
			Transitions: []Transition{{Time: 0.30000000000000004, A: 1, B: 2, Up: true}}},
		{ScanInterval: 1, Duration: 10},
	} {
		dec, err := DecodeBinary(EncodeBinary(rec))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec, dec) {
			t.Fatalf("round trip changed %+v into %+v", rec, dec)
		}
	}
}

// randomRecording builds a structurally valid random trace: monotone
// non-decreasing times on a fractional scan grid, pairs alternating
// up/down correctly.
func randomRecording(rng *rand.Rand) *Recording {
	scan := []float64{1, 0.5, 0.1, 2.5}[rng.Intn(4)]
	n := rng.Intn(200)
	rec := &Recording{ScanInterval: scan, Duration: scan * float64(n+1)}
	up := make(map[pairKey]bool)
	time := 0.0
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			time += scan * float64(1+rng.Intn(3))
		}
		if time > rec.Duration {
			break
		}
		a := rng.Intn(40)
		b := a + 1 + rng.Intn(40)
		k := pairKey{a, b}
		rec.Transitions = append(rec.Transitions, Transition{Time: time, A: a, B: b, Up: !up[k]})
		up[k] = !up[k]
	}
	return rec
}

// TestBinaryRoundTripRandomized is the codec's property test: across many
// random traces, binary and text round trips are both exact and agree
// with each other.
func TestBinaryRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		rec := randomRecording(rng)
		if err := rec.Validate(); err != nil {
			t.Fatalf("case %d: generator produced an invalid trace: %v", i, err)
		}
		enc := EncodeBinary(rec)
		dec, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(rec, dec) {
			t.Fatalf("case %d: binary round trip changed the recording", i)
		}
		viaText, err := ParseRecording(rec.Format())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(viaText, dec) {
			t.Fatalf("case %d: binary and text round trips disagree", i)
		}
		// Determinism: re-encoding the decoded trace is byte-identical.
		if string(EncodeBinary(dec)) != string(enc) {
			t.Fatalf("case %d: encoding is not deterministic", i)
		}
	}
}

// TestTruncationRejectedAtEveryOffset is the integrity guarantee the
// formats exist for: a trace cut short at ANY byte offset is an error,
// never decoded as a plausible shorter trace.
func TestTruncationRejectedAtEveryOffset(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 120)
	if len(rec.Transitions) < 10 {
		t.Fatalf("fixture too small: %d transitions", len(rec.Transitions))
	}

	enc := EncodeBinary(rec)
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeBinary(enc[:i]); err == nil {
			t.Fatalf("binary prefix of %d/%d bytes decoded cleanly", i, len(enc))
		}
	}

	// Text: every prefix must fail the strict parser. The sole exception
	// is dropping the final newline, which loses no content (the trailer
	// is still complete and matching).
	text := rec.Format()
	for i := 0; i < len(text)-1; i++ {
		if _, err := ParseRecording(text[:i]); err == nil {
			t.Fatalf("text prefix of %d/%d bytes parsed cleanly", i, len(text))
		}
	}
	if _, err := ParseRecording(text[:len(text)-1]); err != nil {
		t.Fatalf("dropping only the trailing newline must still parse, got %v", err)
	}
}

// TestBinaryRejectsBitFlips: CRC32 detects every single-bit flip anywhere
// in the file, including in the footer itself.
func TestBinaryRejectsBitFlips(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 90)
	enc := EncodeBinary(rec)
	flipped := make([]byte, len(enc))
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			copy(flipped, enc)
			flipped[i] ^= 1 << bit
			if _, err := DecodeBinary(flipped); err == nil {
				t.Fatalf("flip of byte %d bit %d decoded cleanly", i, bit)
			}
		}
	}
}

// TestBinaryRejectsWrongVersion: a future-versioned file is refused with a
// version message, not misdecoded.
func TestBinaryRejectsWrongVersion(t *testing.T) {
	enc := EncodeBinary(&Recording{ScanInterval: 1, Duration: 10,
		Transitions: []Transition{{Time: 1, A: 0, B: 1, Up: true}}})
	enc[len(binaryMagic)] = 3 // bump the version field...
	// ...and re-seal the CRC so only the version check can object.
	binary.LittleEndian.PutUint32(enc[len(enc)-4:], crc32.ChecksumIEEE(enc[:len(enc)-4]))
	_, err := DecodeBinary(enc)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted or misreported: %v", err)
	}
}

// TestDecodeRecordingSniffs: the format sniffer routes both encodings to
// the right decoder and garbage to an error.
func TestDecodeRecordingSniffs(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 90)
	fromBin, err := DecodeRecording(EncodeBinary(rec))
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := DecodeRecording([]byte(rec.Format()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBin, rec) || !reflect.DeepEqual(fromText, rec) {
		t.Fatal("sniffer decoded a different recording")
	}
	if _, err := DecodeRecording([]byte("garbage\n")); err == nil {
		t.Fatal("garbage decoded cleanly")
	}
}

// TestParseRecordingTrailer pins the text trailer contract: required by
// the strict parser, tolerated-with-warning by the legacy parser, and a
// lying trailer is an error for both.
func TestParseRecordingTrailer(t *testing.T) {
	withTrailer := "scan 1\nduration 10\n1 0 1 up\nend 1\n"
	if _, err := ParseRecording(withTrailer); err != nil {
		t.Fatal(err)
	}

	noTrailer := "scan 1\nduration 10\n1 0 1 up\n"
	if _, err := ParseRecording(noTrailer); err == nil {
		t.Fatal("strict parser accepted a trailer-less trace")
	}
	var warned []string
	rec, err := ParseRecordingLegacy(noTrailer, func(msg string) { warned = append(warned, msg) })
	if err != nil {
		t.Fatalf("legacy parser rejected a trailer-less trace: %v", err)
	}
	if len(rec.Transitions) != 1 {
		t.Fatalf("legacy parse read %d transitions, want 1", len(rec.Transitions))
	}
	if len(warned) != 1 || !strings.Contains(warned[0], "end trailer") {
		t.Fatalf("legacy warnings = %v, want one about the missing trailer", warned)
	}

	for name, text := range map[string]string{
		"undercount":    "scan 1\nduration 10\n1 0 1 up\nend 0\n",
		"overcount":     "scan 1\nduration 10\n1 0 1 up\nend 2\n",
		"bad count":     "scan 1\nduration 10\nend x\n",
		"content after": "scan 1\nduration 10\nend 0\n1 0 1 up\n",
	} {
		if _, err := ParseRecording(text); err == nil {
			t.Errorf("%s accepted: %q", name, text)
		}
		if _, err := ParseRecordingLegacy(text, nil); err == nil {
			t.Errorf("%s accepted by the legacy parser: %q", name, text)
		}
	}
}

// --- benchmarks: the load-time motivation for the binary codec ----------

// benchRecording is a fleet-scale synthetic trace (size comparable to a
// 12-hour fig5 recording).
func benchRecording() *Recording {
	rng := rand.New(rand.NewSource(1))
	rec := &Recording{ScanInterval: 1, Duration: 43200}
	up := make(map[pairKey]bool)
	time := 0.0
	for {
		time += float64(1 + rng.Intn(3))
		if time > rec.Duration {
			break
		}
		a := rng.Intn(44)
		b := a + 1 + rng.Intn(45-a)
		k := pairKey{a, b}
		rec.Transitions = append(rec.Transitions, Transition{Time: time, A: a, B: b, Up: !up[k]})
		up[k] = !up[k]
	}
	return rec
}

func BenchmarkRecordingDecodeBinary(b *testing.B) {
	enc := EncodeBinary(benchRecording())
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinary(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordingParseText(b *testing.B) {
	text := benchRecording().Format()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRecording(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordingEncodeBinary(b *testing.B) {
	rec := benchRecording()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBinary(rec)
	}
}

func BenchmarkRecordingFormatText(b *testing.B) {
	rec := benchRecording()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rec.Format()
	}
}
