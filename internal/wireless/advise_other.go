//go:build !(linux || darwin)

package wireless

// adviseReplayAccess is a no-op on platforms without a wired-up madvise
// (including the !unix read-everything fallback, where the hints would be
// meaningless anyway).
func adviseReplayAccess(data []byte) {}
