// Streaming access to binary contact traces: the incremental decoder
// (binCursor), the one-transition-at-a-time validator (streamValidator),
// the RecordingReader built from the two, and the ReplaySource interface
// that lets replay consume a trace without a materialized []Transition.
//
// DecodeBinary, RecordingReader and RecordingView all decode through the
// same binCursor and apply the same structural rules, so a byte sequence
// is either accepted by all of them with identical transitions or rejected
// by all of them — the property the fuzz suite pins.
package wireless

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// RecordingMeta is the fixed-size description of a contact trace: the two
// header fields plus the transition count — everything a replay needs to
// know about a trace before touching its stream.
type RecordingMeta struct {
	// ScanInterval is the tick period of the run that recorded the trace.
	ScanInterval float64
	// Duration is the recorded horizon in seconds.
	Duration float64
	// Transitions is the number of contact transitions in the trace.
	Transitions int
}

// TransitionCursor yields the transitions of one trace in firing order.
// Next returns false after the final transition. Cursors are single-use
// and not safe for concurrent use; take one cursor per replaying medium
// (the backing trace may be shared freely).
type TransitionCursor interface {
	Next() (Transition, bool)
}

// ReplaySource is a contact trace a Medium can replay: metadata, the
// highest referenced node id, and a fresh transition cursor per consumer.
// Both the in-memory *Recording and the zero-copy *RecordingView implement
// it; sources handed to StartReplay must already be structurally valid
// (Recording.Validate clean — a view validates on open).
type ReplaySource interface {
	Meta() RecordingMeta
	MaxNode() int
	Cursor() TransitionCursor
}

// Meta returns the recording's metadata block.
func (r *Recording) Meta() RecordingMeta {
	return RecordingMeta{ScanInterval: r.ScanInterval, Duration: r.Duration, Transitions: len(r.Transitions)}
}

// Cursor returns a fresh cursor over the recording's transitions,
// implementing ReplaySource.
func (r *Recording) Cursor() TransitionCursor { return &sliceCursor{trs: r.Transitions} }

// sliceCursor iterates a materialized transition slice.
type sliceCursor struct {
	trs []Transition
	i   int
}

func (c *sliceCursor) Next() (Transition, bool) {
	if c.i >= len(c.trs) {
		return Transition{}, false
	}
	tr := c.trs[c.i]
	c.i++
	return tr, true
}

// binCursor decodes the transition stream of a checked binEnvelope one
// transition at a time, with no allocation. It performs the per-entry
// decode checks (flags, varint shape, node-id bounds); structural trace
// rules (time ordering, state alternation) are streamValidator's job.
type binCursor struct {
	p    []byte
	bits uint64
	n    int
}

func (c *binCursor) next() (Transition, bool, error) {
	if len(c.p) == 0 {
		return Transition{}, false, nil
	}
	flags := c.p[0]
	if flags > 1 {
		return Transition{}, false, fmt.Errorf("wireless: binary recording transition %d has unknown flags %#x", c.n, flags)
	}
	p := c.p[1:]
	delta, n := binary.Varint(p)
	if n <= 0 {
		return Transition{}, false, fmt.Errorf("wireless: binary recording transition %d has a bad time delta", c.n)
	}
	p = p[n:]
	a, n := binary.Uvarint(p)
	if n <= 0 || a >= maxBinaryNode {
		return Transition{}, false, fmt.Errorf("wireless: binary recording transition %d has a bad node id", c.n)
	}
	p = p[n:]
	gap, n := binary.Uvarint(p)
	if n <= 0 || gap >= maxBinaryNode {
		return Transition{}, false, fmt.Errorf("wireless: binary recording transition %d has a bad pair gap", c.n)
	}
	c.p = p[n:]
	c.bits += uint64(delta)
	c.n++
	return Transition{
		Time: math.Float64frombits(c.bits),
		A:    int(a),
		B:    int(a + gap + 1),
		Up:   flags == 1,
	}, true, nil
}

// streamValidator applies Recording.Validate's structural rules to a
// transition stream incrementally, so streaming consumers enforce exactly
// the invariants the slurping decoder does without holding the trace.
// Like Validate, pair state lives in a dense bitmap for the common
// small-id case — grown geometrically as higher ids appear, since a
// stream's MaxNode is unknown up front — with a map fallback for huge or
// sparse id spaces. The state structure is the only allocation and is
// paid once per validation pass (once per view open), never per replay
// cell.
type streamValidator struct {
	duration float64
	last     float64
	i        int

	stride int    // dense bitmap stride; rows/cols are node ids
	dense  []bool // pair (a, b) up-state at a*stride+b
	sparse map[pairKey]bool
}

// streamDenseMax mirrors Validate's dense-path cutoff: beyond this stride
// the bitmap (stride²  bools) costs more than the map.
const streamDenseMax = 1 << 11

func newStreamValidator(scanInterval, duration float64) (*streamValidator, error) {
	if scanInterval <= 0 {
		return nil, fmt.Errorf("wireless: recording has non-positive scan interval %v", scanInterval)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("wireless: recording has non-positive duration %v", duration)
	}
	const initialStride = 64
	return &streamValidator{
		duration: duration,
		stride:   initialStride,
		dense:    make([]bool, initialStride*initialStride),
	}, nil
}

// check admits one transition or reports the first structural defect, with
// the same rules (and messages) as Recording.Validate.
func (v *streamValidator) check(tr Transition) error {
	switch {
	case tr.A < 0 || tr.B <= tr.A:
		return fmt.Errorf("wireless: recording transition %d has bad pair (%d, %d)", v.i, tr.A, tr.B)
	case tr.Time < v.last:
		return fmt.Errorf("wireless: recording transition %d at %v before predecessor at %v", v.i, tr.Time, v.last)
	case tr.Time > v.duration:
		return fmt.Errorf("wireless: recording transition %d at %v beyond duration %v", v.i, tr.Time, v.duration)
	}
	var up bool
	if v.sparse != nil {
		up = v.sparse[pairKey{tr.A, tr.B}]
	} else {
		if tr.B >= v.stride {
			v.grow(tr.B)
		}
		if v.sparse != nil { // grow fell back to the map
			up = v.sparse[pairKey{tr.A, tr.B}]
		} else {
			up = v.dense[tr.A*v.stride+tr.B]
		}
	}
	if up == tr.Up {
		return fmt.Errorf("wireless: recording transition %d repeats state up=%v of pair (%d, %d)", v.i, tr.Up, tr.A, tr.B)
	}
	if v.sparse != nil {
		v.sparse[pairKey{tr.A, tr.B}] = tr.Up
	} else {
		v.dense[tr.A*v.stride+tr.B] = tr.Up
	}
	v.last = tr.Time
	v.i++
	return nil
}

// grow widens the dense bitmap to cover node id b (geometric doubling, so
// re-indexing amortizes), or migrates the accumulated state to the map
// when ids outgrow the dense cutoff (the cutoff check runs before the
// doubling, so absurd ids from corrupt input cannot overflow the stride).
func (v *streamValidator) grow(b int) {
	if b >= streamDenseMax {
		v.sparse = make(map[pairKey]bool)
		for i, up := range v.dense {
			if up {
				v.sparse[pairKey{i / v.stride, i % v.stride}] = true
			}
		}
		v.dense = nil
		return
	}
	stride := v.stride
	for b >= stride {
		stride *= 2
	}
	wide := make([]bool, stride*stride)
	for i, up := range v.dense {
		if up {
			wide[(i/v.stride)*stride+i%v.stride] = true
		}
	}
	v.dense = wide
	v.stride = stride
}

// RecordingReader streams the transitions of a binary contact trace one at
// a time, never materializing the slice — the decoder for traces too large
// to slurp. The container (magic, version, CRC32, count bound) is verified
// before the first transition is yielded, and every transition passes the
// same per-entry and structural checks DecodeBinary applies, so the reader
// can never hand out a prefix of a damaged trace.
type RecordingReader struct {
	meta    RecordingMeta
	cur     binCursor
	val     *streamValidator
	unmap   func() error
	failed  error
	maxNode int
}

// NewRecordingReader starts streaming the binary trace held in data. The
// container is verified up front; transitions decode lazily in Next.
func NewRecordingReader(data []byte) (*RecordingReader, error) {
	env, err := parseBinaryEnvelope(data)
	if err != nil {
		return nil, err
	}
	val, err := newStreamValidator(env.scanInterval, env.duration)
	if err != nil {
		return nil, fmt.Errorf("wireless: binary recording invalid: %w", err)
	}
	return &RecordingReader{
		meta:    RecordingMeta{ScanInterval: env.scanInterval, Duration: env.duration, Transitions: int(env.count)},
		cur:     binCursor{p: env.stream},
		val:     val,
		maxNode: -1,
	}, nil
}

// OpenRecording opens the binary trace at path for streaming, mapping the
// file into memory where the platform allows (a shared page-cached copy,
// no heap) and falling back to a plain read elsewhere. Close releases the
// mapping; the reader must not be used after Close.
func OpenRecording(path string) (*RecordingReader, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	r, err := NewRecordingReader(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	r.unmap = unmap
	return r, nil
}

// Meta returns the trace's header fields and declared transition count.
func (r *RecordingReader) Meta() RecordingMeta { return r.meta }

// MaxNode returns the highest node id among the transitions yielded so
// far (-1 before the first); after a clean drain to io.EOF it is the
// trace's MaxNode.
func (r *RecordingReader) MaxNode() int { return r.maxNode }

// Next returns the next transition. It returns io.EOF after the final
// transition of an intact trace, and a descriptive error — sticky across
// further calls — if the stream turns out damaged (a count that lies about
// the stream length, a malformed entry, a structural violation).
func (r *RecordingReader) Next() (Transition, error) {
	if r.failed != nil {
		return Transition{}, r.failed
	}
	tr, ok, err := r.cur.next()
	if err != nil {
		r.failed = err
		return Transition{}, err
	}
	if !ok {
		if r.cur.n != r.meta.Transitions {
			r.failed = fmt.Errorf("wireless: binary recording truncated: footer declares %d transitions, stream held %d",
				r.meta.Transitions, r.cur.n)
			return Transition{}, r.failed
		}
		r.failed = io.EOF
		return Transition{}, io.EOF
	}
	if err := r.val.check(tr); err != nil {
		r.failed = fmt.Errorf("wireless: binary recording invalid: %w", err)
		return Transition{}, r.failed
	}
	if tr.B > r.maxNode {
		r.maxNode = tr.B
	}
	return tr, nil
}

// Close releases the file mapping, if any. Safe to call more than once.
func (r *RecordingReader) Close() error {
	unmap := r.unmap
	r.unmap = nil
	r.failed = fmt.Errorf("wireless: recording reader closed")
	r.cur.p = nil
	if unmap != nil {
		return unmap()
	}
	return nil
}

// mapFile returns the contents of path, memory-mapped read-only when the
// platform supports it (see mmap_unix.go), plus the unmap function (nil
// when the bytes are heap-backed and need no release).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		// mmap rejects empty ranges; an empty file fails envelope parsing
		// with the truncation message either way.
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("wireless: %s: %d bytes does not fit this platform's address space", path, size)
	}
	data, unmap, err := mmapReadOnly(f, int(size))
	if err == nil && unmap != nil {
		// Only genuinely mapped pages take access-pattern hints; the
		// heap-backed fallback (unmap == nil) has nothing to advise.
		adviseReplayAccess(data)
	}
	return data, unmap, err
}
