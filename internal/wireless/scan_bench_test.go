package wireless

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"vdtn/internal/event"
	"vdtn/internal/geo"
	"vdtn/internal/xrand"
)

// benchMoverFrac is the fraction of entities in motion at any instant in
// the scan benchmarks. The paper's walkers pause 5-15 minutes between
// trips of a few minutes, so well under half the fleet moves at once.
const benchMoverFrac = 0.3

// parked is a benchmark entity that never moves. It carries the static
// hint, like the scenario's stationary relays and paused walkers do, so
// the scan benchmarks exercise the static-skip path.
type parked struct {
	id int
	at geo.Point
}

func (p *parked) ID() int                     { return p.id }
func (p *parked) Position(float64) geo.Point  { return p.at }
func (p *parked) StaticUntil(float64) float64 { return math.Inf(1) }

// drifter oscillates around a home point, staying inside its neighbourhood
// so the scenario's contact density is stable over any benchmark horizon.
type drifter struct {
	id   int
	home geo.Point
	amp  float64
	ph   float64
}

func (d *drifter) ID() int { return d.id }
func (d *drifter) Position(now float64) geo.Point {
	// Triangle wave: cheap, deterministic, bounded.
	t := math.Mod(now*0.05+d.ph, 2)
	if t > 1 {
		t = 2 - t
	}
	return geo.Point{X: d.home.X + d.amp*(2*t-1), Y: d.home.Y}
}

// seedFleet populates m with the benchmark fleet: n entities at roughly
// constant contact density (mean degree ~6), benchMoverFrac of them
// moving. Deterministic in n, so media built with different configs host
// identical fleets.
func seedFleet(m *Medium, n int) {
	rng := xrand.New(uint64(n))
	side := math.Sqrt(float64(n) / 0.0025) // ~7 neighbours in a 30 m disk
	for i := 0; i < n; i++ {
		p := geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		if float64(i%100) < benchMoverFrac*100 {
			m.Add(&drifter{id: i, home: p, amp: 60, ph: rng.Float64() * 2})
		} else {
			m.Add(&parked{id: i, at: p})
		}
	}
}

// benchMedium builds a serial-scan medium over the benchmark fleet.
func benchMedium(n int) (*event.Scheduler, *Medium) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	seedFleet(m, n)
	return s, m
}

var benchSizes = []int{1000, 10000, 100000}

func skipLargeInShort(b *testing.B, n int) {
	if testing.Short() && n > 10000 {
		b.Skipf("n=%d skipped in short mode", n)
	}
}

// BenchmarkScan measures one tick of the incremental live scan at steady
// state: static entities carried from the previous tick, movers re-hashed
// through the persistent grid, transitions diffed from sorted pair sets.
func BenchmarkScan(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLargeInShort(b, n)
			_, m := benchMedium(n)
			now := 0.0
			m.scan(now)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now++
				m.scan(now)
			}
		})
	}
}

// BenchmarkScanReference measures the pre-refactor full-rescan path on the
// same fleet — every position re-queried, grid and pair set rebuilt from
// scratch each tick — kept in-tree as the before leg of the comparison.
func BenchmarkScanReference(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLargeInShort(b, n)
			_, m := benchMedium(n)
			m.scan(0)
			now := 0.0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now++
				m.scanReference(now)
			}
		})
	}
}

// BenchmarkPeersOf measures the per-call cost of the neighbour query the
// routers issue on every pump: now a cached-slice return, O(degree).
func BenchmarkPeersOf(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLargeInShort(b, n)
			_, m := benchMedium(n)
			m.scan(0)
			b.ReportAllocs()
			b.ResetTimer()
			sum := 0
			for i := 0; i < b.N; i++ {
				sum += len(m.PeersOf(i % n))
			}
			_ = sum
		})
	}
}

// benchReplayRecording builds a synthetic n-node trace: every adjacent pair
// cycles through two contact windows over a 60-tick horizon.
func benchReplayRecording(n int) *Recording {
	rec := &Recording{ScanInterval: 1, Duration: 70}
	for t := 1; t <= 60; t++ {
		up := (t/10)%2 == 1
		for p := t % 10; p < n/2; p += 10 {
			rec.Transitions = append(rec.Transitions,
				Transition{Time: float64(t), A: 2 * p, B: 2*p + 1, Up: up})
		}
	}
	return rec
}

// BenchmarkReplay measures a full replay-driven run (70 ticks, ~3n
// transitions), the adjacency cache maintained throughout.
func BenchmarkReplay(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			skipLargeInShort(b, n)
			rec := benchReplayRecording(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := event.NewScheduler()
				m := NewMedium(s, testCfg())
				m.SetHandler(&recorder{})
				for id := 0; id < n; id++ {
					m.Add(&parked{id: id})
				}
				b.StartTimer()
				m.StartReplay(0, rec)
				s.RunUntil(70)
			}
		})
	}
}

// preRefactorBaseline holds the scan-path numbers measured immediately
// before this refactor (commit 2b929e1, Intel Xeon @ 2.10GHz, go1.24):
// the old Medium.scan / PeersOf driven by the same benchMedium fleets.
// They are recorded in the artifact as the historical before column; the
// machine-independent comparison the artifact asserts on is the in-tree
// scanReference path measured side by side with the new scan.
var preRefactorBaseline = map[string]float64{
	"scan_ns_per_tick_1k":       1285679,
	"scan_ns_per_tick_10k":      20904437,
	"scan_ns_per_tick_100k":     532172162,
	"scan_allocs_per_tick_1k":   957,
	"scan_allocs_per_tick_10k":  9353,
	"scan_allocs_per_tick_100k": 92324,
	"peersof_ns_per_call_1k":    27157,
	"peersof_ns_per_call_10k":   448223,
	"peersof_ns_per_call_100k":  3442994,
	"peersof_allocs_per_call":   3,
}

// TestScanSpeedupArtifact measures the incremental scan against the
// retained full-rescan reference at 1k/10k/100k nodes and writes the
// comparison to BENCH_scan.json at the repo root, alongside the pinned
// pre-refactor numbers. It enforces the PR's acceptance criteria:
//
//   - the incremental scan beats the full rescan >=5x at 100k nodes;
//   - PeersOf performs zero allocations per call (it no longer walks the
//     global contact map);
//   - a steady-state scan tick with no transitions performs zero
//     allocations.
func TestScanSpeedupArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	if raceEnabled {
		t.Skip("timing measurement meaningless under the race detector")
	}
	art := map[string]any{
		"benchmark":  "live-scan hot path: incremental adjacency scan vs full rescan",
		"mover_frac": benchMoverFrac,
	}
	for k, v := range preRefactorBaseline {
		art["before_"+k] = v
	}

	tickAvg := func(ticks int, f func(now float64)) float64 {
		start := time.Now()
		for i := 1; i <= ticks; i++ {
			f(float64(i))
		}
		return float64(time.Since(start).Nanoseconds()) / float64(ticks)
	}

	var speedup100k float64
	for _, bench := range []struct {
		n     int
		tag   string
		ticks int
	}{{1000, "1k", 40}, {10000, "10k", 12}, {100000, "100k", 4}} {
		_, m := benchMedium(bench.n)
		m.scan(0)
		refNs := tickAvg(bench.ticks, func(now float64) { m.scanReference(now) })

		// Fresh medium for the incremental leg so mobility time queries
		// stay non-decreasing from a clean slate. Collect the reference
		// leg's garbage first: the incremental scan allocates almost
		// nothing itself, so without this its measurement pays the GC
		// bill the full rescans ran up.
		_, m = benchMedium(bench.n)
		m.scan(0)
		runtime.GC()
		newNs := tickAvg(bench.ticks*4, func(now float64) { m.scan(now) })

		su := refNs / newNs
		art["reference_ns_per_tick_"+bench.tag] = int64(refNs)
		art["after_scan_ns_per_tick_"+bench.tag] = int64(newNs)
		art["speedup_vs_reference_"+bench.tag] = su
		if bench.n == 100000 {
			speedup100k = su
		}

		// PeersOf timing + the zero-alloc acceptance criterion.
		calls := 100000
		start := time.Now()
		sum := 0
		for i := 0; i < calls; i++ {
			sum += len(m.PeersOf(i % bench.n))
		}
		art["after_peersof_ns_per_call_"+bench.tag] =
			time.Since(start).Nanoseconds() / int64(calls)
		if sum == 0 {
			t.Fatalf("n=%d: no contacts in benchmark fleet", bench.n)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			m.PeersOf(7)
		}); allocs != 0 {
			t.Fatalf("n=%d: PeersOf allocates %v per call, want 0", bench.n, allocs)
		}
	}
	art["after_peersof_allocs_per_call"] = 0

	// Steady-state scan allocations: a quiet tick must not allocate. The
	// benchMedium fleets transition every tick (that's the point of the
	// scan benchmarks), so this check uses a fleet constructed never to
	// transition: a 20 m lattice (orthogonal pairs at 20 m, diagonals at
	// ~28.3 m, next ring >= 39 m) whose movers oscillate +-0.5 m — every
	// pair distance stays strictly on its side of the 30 m threshold.
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	id := 0
	for gx := 0; gx < 100; gx++ {
		for gy := 0; gy < 100; gy++ {
			p := geo.Point{X: float64(gx) * 20, Y: float64(gy) * 20}
			if id%3 == 0 {
				ph := float64(id) * 0.1
				m.Add(&scripted{id: id, fn: func(now float64) geo.Point {
					return geo.Point{X: p.X + 0.5*math.Sin(now+ph), Y: p.Y}
				}})
			} else {
				m.Add(&parked{id: id, at: p})
			}
			id++
		}
	}
	now := 0.0
	for i := 0; i < 8; i++ {
		m.scan(now)
		now++
	}
	scanAllocs := testing.AllocsPerRun(20, func() {
		m.scan(now)
		now++
	})
	art["after_scan_allocs_per_quiet_tick"] = scanAllocs
	if scanAllocs != 0 {
		t.Fatalf("steady-state scan allocates %v per tick, want 0", scanAllocs)
	}

	if speedup100k < 5 {
		t.Fatalf("scan speedup vs full rescan at 100k nodes = %.2fx, want >=5x", speedup100k)
	}

	out, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// The test runs with the package directory as cwd; the artifact
	// belongs at the repo root next to BENCH_contactcache.json.
	if err := os.WriteFile("../../BENCH_scan.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
