package wireless

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vdtn/internal/event"
	"vdtn/internal/geo"
)

// writeTempTrace persists rec's binary encoding and returns the path.
func writeTempTrace(t *testing.T, rec *Recording) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.contactsb")
	if err := os.WriteFile(path, EncodeBinary(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRecordingViewMatchesDecode: a view over encoded bytes exposes
// exactly what DecodeBinary materializes — metadata, MaxNode, and the
// transition stream — without building the slice.
func TestRecordingViewMatchesDecode(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 120)
	enc := EncodeBinary(rec)

	v, err := NewRecordingView(enc)
	if err != nil {
		t.Fatal(err)
	}
	meta := v.Meta()
	if meta.ScanInterval != rec.ScanInterval || meta.Duration != rec.Duration || meta.Transitions != len(rec.Transitions) {
		t.Fatalf("view meta %+v does not describe the recording", meta)
	}
	if v.MaxNode() != rec.MaxNode() {
		t.Fatalf("view MaxNode = %d, recording %d", v.MaxNode(), rec.MaxNode())
	}
	if got := v.Materialize(); !reflect.DeepEqual(got, rec) {
		t.Fatalf("view materialized a different recording:\nin:  %+v\nout: %+v", rec, got)
	}

	// Independent cursors see independent streams.
	c1, c2 := v.Cursor(), v.Cursor()
	tr1, ok1 := c1.Next()
	if !ok1 || tr1 != rec.Transitions[0] {
		t.Fatalf("cursor 1 first transition = %+v, want %+v", tr1, rec.Transitions[0])
	}
	tr2, ok2 := c2.Next()
	if !ok2 || tr2 != rec.Transitions[0] {
		t.Fatal("second cursor did not start from the top")
	}
}

// TestRecordingViewEmptyTrace: an empty-but-valid trace opens and yields
// no transitions.
func TestRecordingViewEmptyTrace(t *testing.T) {
	v, err := NewRecordingView(EncodeBinary(&Recording{ScanInterval: 1, Duration: 10}))
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 || v.MaxNode() != -1 {
		t.Fatalf("empty view: Len=%d MaxNode=%d", v.Len(), v.MaxNode())
	}
	if _, ok := v.Cursor().Next(); ok {
		t.Fatal("empty view yielded a transition")
	}
}

// TestOpenRecordingView: the mmap-backed open path round-trips a persisted
// trace, Close is idempotent, and a missing file is os.IsNotExist.
func TestOpenRecordingView(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 90)
	path := writeTempTrace(t, rec)

	v, err := OpenRecordingView(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Materialize(); !reflect.DeepEqual(got, rec) {
		t.Fatal("mmap view materialized a different recording")
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, err := OpenRecordingView(filepath.Join(t.TempDir(), "absent.contactsb")); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v, want os.IsNotExist", err)
	}
}

// TestViewRejectsWhatDecodeRejects: for every truncation offset of a real
// trace, the view and the streaming reader reach the same verdict as
// DecodeBinary — the three decoders share one acceptance set.
func TestViewRejectsWhatDecodeRejects(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 120)
	enc := EncodeBinary(rec)
	for i := 0; i <= len(enc); i++ {
		data := enc[:i]
		_, decErr := DecodeBinary(data)
		_, viewErr := NewRecordingView(data)
		if (decErr == nil) != (viewErr == nil) {
			t.Fatalf("prefix %d/%d: DecodeBinary err=%v, NewRecordingView err=%v", i, len(enc), decErr, viewErr)
		}
		rdr, rdrErr := NewRecordingReader(data)
		if rdrErr == nil {
			rdrErr = drainReader(rdr)
			if rdrErr == io.EOF {
				rdrErr = nil
			}
		}
		if (decErr == nil) != (rdrErr == nil) {
			t.Fatalf("prefix %d/%d: DecodeBinary err=%v, RecordingReader err=%v", i, len(enc), decErr, rdrErr)
		}
	}
}

// drainReader consumes rdr to its end, returning io.EOF on a clean drain
// or the first failure.
func drainReader(rdr *RecordingReader) error {
	for {
		if _, err := rdr.Next(); err != nil {
			return err
		}
	}
}

// TestRecordingReaderStreams: OpenRecording yields the exact transition
// sequence incrementally, ends with io.EOF, and stays failed after Close.
func TestRecordingReaderStreams(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 120)
	path := writeTempTrace(t, rec)

	rdr, err := OpenRecording(path)
	if err != nil {
		t.Fatal(err)
	}
	if rdr.Meta().Transitions != len(rec.Transitions) {
		t.Fatalf("reader meta declares %d transitions, want %d", rdr.Meta().Transitions, len(rec.Transitions))
	}
	var got []Transition
	for {
		tr, err := rdr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tr)
	}
	if !reflect.DeepEqual(got, rec.Transitions) {
		t.Fatal("streamed transitions differ from the recording")
	}
	if _, err := rdr.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next = %v, want io.EOF", err)
	}
	if err := rdr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rdr.Next(); err == nil || err == io.EOF {
		t.Fatalf("Next after Close = %v, want a closed error", err)
	}
}

// TestReaderRejectsLyingCount: a file whose CRC is valid but whose footer
// count disagrees with the stream — constructible by an attacker or a
// buggy writer, not by truncation — is rejected by all three decoders.
func TestReaderRejectsLyingCount(t *testing.T) {
	rec := &Recording{ScanInterval: 1, Duration: 10, Transitions: []Transition{
		{Time: 1, A: 0, B: 1, Up: true},
		{Time: 2, A: 0, B: 1, Up: false},
	}}
	enc := EncodeBinary(rec)
	// Rewrite the count (2 -> 1) and re-seal the CRC.
	binary.LittleEndian.PutUint64(enc[len(enc)-12:len(enc)-4], 1)
	binary.LittleEndian.PutUint32(enc[len(enc)-4:], crc32.ChecksumIEEE(enc[:len(enc)-4]))

	if _, err := DecodeBinary(enc); err == nil {
		t.Fatal("DecodeBinary accepted a lying count")
	}
	if _, err := NewRecordingView(enc); err == nil {
		t.Fatal("NewRecordingView accepted a lying count")
	}
	rdr, err := NewRecordingReader(enc)
	if err != nil {
		t.Fatal(err) // the envelope itself is fine; the stream must fail
	}
	if err := drainReader(rdr); err == io.EOF || err == nil {
		t.Fatal("RecordingReader drained a lying count cleanly")
	}
}

// TestViewHugeNodeIDs: absurd node ids (legal per the codec, possible in
// corrupt-but-CRC-valid input) must not hang or blow up the streaming
// validator's growing bitmap — it falls back to the map, like Validate.
func TestViewHugeNodeIDs(t *testing.T) {
	for _, b64 := range []int64{4294967295, 3037000500, 1 << 40} {
		b := int(b64)
		if int64(b) != b64 {
			continue // id does not fit this platform's int
		}
		rec := &Recording{ScanInterval: 1, Duration: 10,
			Transitions: []Transition{
				{Time: 1, A: 0, B: 1, Up: true},
				{Time: 2, A: 0, B: b, Up: true},
			}}
		v, err := NewRecordingView(EncodeBinary(rec))
		if err != nil {
			t.Fatalf("id %d: structurally valid trace rejected: %v", b, err)
		}
		if v.MaxNode() != b {
			t.Fatalf("id %d viewed with MaxNode %d", b, v.MaxNode())
		}
		if !reflect.DeepEqual(v.Materialize(), rec) {
			t.Fatalf("id %d changed across the view round trip", b)
		}
	}
}

// TestViewCursorAfterCloseMisuse: taking a cursor from a closed view is a
// caller bug and panics instead of reading unmapped memory.
func TestViewCursorAfterCloseMisuse(t *testing.T) {
	rec, _ := liveRecording(t, crossingEntities(), 90)
	v, err := OpenRecordingView(writeTempTrace(t, rec))
	if err != nil {
		t.Fatal(err)
	}
	v.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Cursor on a closed view did not panic")
		}
	}()
	v.Cursor()
}

// TestMediumReplaysFromView: the Medium replays a RecordingView source
// identically to the in-memory recording it was encoded from.
func TestMediumReplaysFromView(t *testing.T) {
	rec, live := liveRecording(t, crossingEntities(), 120)
	v, err := NewRecordingView(EncodeBinary(rec))
	if err != nil {
		t.Fatal(err)
	}

	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	h := &recorder{}
	m.SetHandler(h)
	// Positions must never be queried during replay.
	for i := 0; i < 4; i++ {
		m.Add(&scripted{id: i, fn: func(float64) geo.Point {
			panic("replay queried a position")
		}})
	}
	m.StartReplay(0, v)
	s.RunUntil(120)

	if !reflect.DeepEqual(h.ups, live.ups) || !reflect.DeepEqual(h.downs, live.downs) {
		t.Fatal("view replay diverged from the live scan's contact events")
	}
}
