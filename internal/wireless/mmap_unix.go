//go:build unix

package wireless

import (
	"os"
	"syscall"
)

// mmapReadOnly maps size bytes of f read-only and shared, so every process
// replaying the same persisted trace shares one page-cached copy: the
// kernel keeps a single resident copy of the file and each consumer pays
// zero heap for the transition stream.
func mmapReadOnly(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
