//go:build linux || darwin

package wireless

import "syscall"

// adviseReplayAccess hints the kernel about how a mapped trace is read:
// WILLNEED prefetches the pages (the open pass validates the whole stream
// immediately, and fleet-scale sweeps touch every byte shortly after), and
// SEQUENTIAL widens readahead for the front-to-back cursor scans replay
// performs. Purely an optimization — failures are ignored, correctness
// never depends on the hints landing.
func adviseReplayAccess(data []byte) {
	if len(data) == 0 {
		return
	}
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
	_ = syscall.Madvise(data, syscall.MADV_WILLNEED)
}
