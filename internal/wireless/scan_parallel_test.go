package wireless

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"vdtn/internal/event"
	"vdtn/internal/geo"
	"vdtn/internal/xrand"
)

// seqRecorder captures the full interleaved transition sequence — kind,
// time and pair in firing order — so parallel-vs-serial comparisons check
// ordering, not just set membership.
type seqRecorder struct {
	seq []string
}

func (r *seqRecorder) ContactUp(now float64, a, b Entity) {
	r.seq = append(r.seq, fmt.Sprintf("up %v %d %d", now, a.ID(), b.ID()))
}

func (r *seqRecorder) ContactDown(now float64, a, b Entity) {
	r.seq = append(r.seq, fmt.Sprintf("down %v %d %d", now, a.ID(), b.ID()))
}

func parallelCfg(workers int) Config {
	c := testCfg()
	c.ScanWorkers = workers
	return c
}

// scanWorkerCounts is the worker matrix every parallel equivalence test
// runs against the serial baseline: the smallest parallel pool, an odd
// count (uneven block split), and more workers than most test fleets have
// movers (empty shards in the merge).
var scanWorkerCounts = []int{2, 3, 8}

// buildRandomFleet populates m with the randomized moving cloud from
// TestScanMatchesBruteForceOverTime: a mix of permanently-static hinted
// entities, parked-then-drifting entities, and free movers. The rng drives
// all geometry, so two media built from equal-seeded rngs host identical
// fleets.
func buildRandomFleet(m *Medium, rng *xrand.Rand, n int) {
	for i := 0; i < n; i++ {
		home := geo.Point{X: rng.Float64()*400 - 200, Y: rng.Float64()*400 - 200}
		switch i % 3 {
		case 0:
			m.Add(&hinted{id: i, at: home, until: math.Inf(1)})
		case 1:
			until := 5 + rng.Float64()*20
			vx, vy := rng.Float64()*8-4, rng.Float64()*8-4
			m.Add(&hinted{id: i, at: home, until: until, fn: func(now float64) geo.Point {
				return geo.Point{X: home.X + vx*(now-until), Y: home.Y + vy*(now-until)}
			}})
		default:
			vx, vy := rng.Float64()*10-5, rng.Float64()*10-5
			m.Add(&scripted{id: i, fn: func(now float64) geo.Point {
				return geo.Point{X: home.X + vx*now, Y: home.Y + vy*now}
			}})
		}
	}
}

// TestScanParallelMatchesSerialRandomFleets is the medium-level half of
// the parallel determinism contract: for every worker count, the full
// interleaved transition sequence over a randomized moving fleet equals
// the serial scan's, tick for tick.
func TestScanParallelMatchesSerialRandomFleets(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		run := func(workers int) (*Medium, *seqRecorder) {
			s := event.NewScheduler()
			m := NewMedium(s, parallelCfg(workers))
			rec := &seqRecorder{}
			m.SetHandler(rec)
			rng := xrand.New(900 + uint64(trial))
			buildRandomFleet(m, rng, 40+trial*17)
			m.Start(0)
			s.RunUntil(60)
			m.Stop()
			return m, rec
		}
		mSerial, serial := run(0)
		if err := mSerial.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, workers := range scanWorkerCounts {
			mPar, par := run(workers)
			if fmt.Sprint(par.seq) != fmt.Sprint(serial.seq) {
				t.Fatalf("trial %d: workers=%d transition sequence diverged from serial\nserial:   %v\nparallel: %v",
					trial, workers, serial.seq, par.seq)
			}
			if mPar.ContactsSeen != mSerial.ContactsSeen {
				t.Fatalf("trial %d: workers=%d ContactsSeen %d, serial %d",
					trial, workers, mPar.ContactsSeen, mSerial.ContactsSeen)
			}
			if err := mPar.CheckInvariants(); err != nil {
				t.Fatalf("trial %d: workers=%d: %v", trial, workers, err)
			}
		}
	}
}

// TestScanParallelCellBoundaryClouds exercises the k-way merge under the
// adversarial geometry of TestScanRandomCellBoundaryClouds — coordinates
// snapped to cell-size multiples — with every node hopping between
// boundary positions each tick, so every tick is all movers, every shard
// boundary can split a cell cluster, and the merge sees maximal pair
// churn. Run under -race in CI, this doubles as the pool's data-race
// audit. Each parallel run is checked against brute force and against the
// serial sequence.
func TestScanParallelCellBoundaryClouds(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := 7700 + uint64(trial)
		n := 25 + int(seed%20)
		// Deterministic boundary-snapped trajectory for node i: positions
		// are multiples of the 30 m cell size, re-drawn each tick from a
		// per-node stream so the fleet teleports between cell corners.
		posAt := func(i int, now float64) geo.Point {
			r := xrand.New(seed*1000 + uint64(i)*31 + uint64(now)*7)
			x := float64(r.IntN(9)-4) * 30
			y := float64(r.IntN(9)-4) * 30
			if r.IntN(3) == 0 {
				x += r.Float64() * 30
			}
			return geo.Point{X: x, Y: y}
		}
		run := func(workers int) *seqRecorder {
			s := event.NewScheduler()
			m := NewMedium(s, parallelCfg(workers))
			rec := &seqRecorder{}
			m.SetHandler(rec)
			for i := 0; i < n; i++ {
				i := i
				m.Add(&scripted{id: i, fn: func(now float64) geo.Point { return posAt(i, now) }})
			}
			m.Start(0)
			s.RunUntil(20)

			// Brute-force check of the final connected set.
			now := 20.0
			m.scan(now)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					want := posAt(i, now).Dist2(posAt(j, now)) <= 30*30
					if got := m.Connected(i, j); got != want {
						t.Fatalf("trial %d workers=%d: pair (%d,%d) connected=%v want %v",
							trial, workers, i, j, got, want)
					}
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			m.Stop()
			return rec
		}
		serial := run(0)
		for _, workers := range scanWorkerCounts {
			if par := run(workers); fmt.Sprint(par.seq) != fmt.Sprint(serial.seq) {
				t.Fatalf("trial %d: workers=%d boundary-cloud sequence diverged from serial",
					trial, workers)
			}
		}
	}
}

// TestScanParallelSteadyStateAllocationFree extends the zero-alloc
// guarantee to the parallel path: once the shards and pool are warm, a
// quiet tick allocates nothing — dispatch is channel signals and atomics
// over persistent buffers.
func TestScanParallelSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	s := event.NewScheduler()
	m := NewMedium(s, parallelCfg(4))
	m.SetHandler(&recorder{})
	rng := xrand.New(5)
	for i := 0; i < 300; i++ {
		p := geo.Point{X: rng.Float64() * 600, Y: rng.Float64() * 600}
		if i%3 == 0 {
			phase := rng.Float64()
			m.Add(&scripted{id: i, fn: func(now float64) geo.Point {
				return geo.Point{X: p.X + math.Sin(now+phase), Y: p.Y}
			}})
		} else {
			m.Add(&hinted{id: i, at: p, until: math.Inf(1)})
		}
	}
	defer m.Stop()
	now := 0.0
	for i := 0; i < 12; i++ { // warm slices, shards and pool past any growth
		m.scan(now)
		now++
	}
	allocs := testing.AllocsPerRun(50, func() {
		m.scan(now)
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state parallel scan allocates %v per tick, want 0", allocs)
	}
}

// TestScanParallelStopReleasesWorkers pins the pool lifecycle: Stop ends
// the worker goroutines (no leak per medium — sweeps build thousands),
// and a later Start rebuilds the pool and keeps producing correct
// contacts.
func TestScanParallelStopReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	s := event.NewScheduler()
	m := NewMedium(s, parallelCfg(8))
	m.SetHandler(&recorder{})
	m.Add(fixed(0, geo.Point{}))
	m.Add(&scripted{id: 1, fn: func(now float64) geo.Point {
		return geo.Point{X: 10, Y: 0}
	}})
	m.Start(0)
	s.RunUntil(2.5)
	if !m.Connected(0, 1) {
		t.Fatal("not connected before stop")
	}
	m.Stop()
	// The workers exit asynchronously once their channels close.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines after Stop: %d, want <= %d", got, before)
	}

	// Restart: the pool is rebuilt lazily and the scan still works.
	m.Start(s.Now())
	s.RunUntil(s.Now() + 2)
	if !m.Connected(0, 1) {
		t.Fatal("contact lost after stop/start cycle")
	}
	m.Stop()
}

// TestConfigValidateScanWorkers pins the config surface: negative worker
// counts are rejected, 0/1/many are accepted.
func TestConfigValidateScanWorkers(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 64} {
		c := testCfg()
		c.ScanWorkers = workers
		if err := c.Validate(); err != nil {
			t.Fatalf("ScanWorkers=%d: unexpected error %v", workers, err)
		}
	}
	c := testCfg()
	c.ScanWorkers = -1
	if err := c.Validate(); err == nil {
		t.Fatal("ScanWorkers=-1 accepted")
	}
}
