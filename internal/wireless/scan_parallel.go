package wireless

import (
	"slices"
	"sync"
	"sync/atomic"
)

// The parallel scan's two fan-out stages. Everything else in a tick is
// serial on the event-loop goroutine.
const (
	phasePositions = iota // evaluate mover positions into per-entity slots
	phasePairs            // discover mover pairs into per-worker shards
)

// scanPool is the persistent worker pool behind Config.ScanWorkers. It is
// built lazily on the first scan tick that has movers, and lives until
// Medium.Stop. The event-loop goroutine is worker 0; workers 1..N-1 are
// goroutines parked on their start channels between phases.
//
// The pool is invisible in the trace: work is split by an atomic block
// cursor, so WHICH worker evaluates a mover or discovers a pair varies
// run to run — but phase 1 writes land in per-entity slots and phase 2
// shards are merged as sets (mergeShards), so the transition sequence is
// a pure function of simulation state. Both phases are full barriers
// (run returns only after every worker finishes), so no scan state is
// ever touched concurrently with the serial sections.
//
// Determinism audit (vdtnlint detgo) — why this concurrency is safe:
// workers never emit trace events, never touch the scheduler, RNG streams
// or contact state; they only read shared scan state and write disjoint
// slots/shards between two barriers.
type scanPool struct {
	m       *Medium
	workers int
	start   []chan struct{} // one per spawned worker (1..workers-1)
	wg      sync.WaitGroup

	// Per-dispatch parameters, written by run before the workers are
	// released and read-only while they run.
	phase int
	now   float64
	block int64

	cursor atomic.Int64 // next mover index to claim, in blocks
}

// scanPoolReady returns the medium's worker pool, building it on first
// use, or nil when the configuration is serial (ScanWorkers <= 1).
func (m *Medium) scanPoolReady() *scanPool {
	if m.pool == nil && m.cfg.ScanWorkers >= 2 {
		m.pool = newScanPool(m, m.cfg.ScanWorkers)
	}
	return m.pool
}

func newScanPool(m *Medium, workers int) *scanPool {
	p := &scanPool{m: m, workers: workers}
	p.start = make([]chan struct{}, workers-1)
	for w := range p.start {
		p.start[w] = make(chan struct{}, 1)
		//vdtnlint:detgo scan worker: barriered fan-out, no trace emission (see scanPool doc)
		go p.worker(w + 1)
	}
	return p
}

// run dispatches one phase over the current mover set and blocks until
// every worker has drained the cursor. Steady-state cost is channel
// send/receive pairs and atomics only — no allocations.
func (p *scanPool) run(phase int, now float64) {
	movers := int64(len(p.m.sc.movers))
	p.phase, p.now = phase, now
	// Block size balances claim contention against load balance: small
	// enough that lumpy per-mover costs (a waypoint departure runs
	// Dijkstra) spread across workers, and that few-mover scenarios
	// still exercise real sharding; atomics stay negligible either way.
	p.block = max(1, movers/int64(p.workers*8))
	p.cursor.Store(0)
	//vdtnlint:detgo phase barrier: every worker finishes before serial scan code resumes
	p.wg.Add(len(p.start))
	for _, c := range p.start {
		c <- struct{}{}
	}
	p.work(0) // the event-loop goroutine is worker 0
	//vdtnlint:detgo phase barrier: every worker finishes before serial scan code resumes
	p.wg.Wait()
}

// worker parks between dispatches; close(start) from Medium.Stop ends it.
func (p *scanPool) worker(w int) {
	for range p.start[w-1] {
		p.work(w)
		//vdtnlint:detgo phase barrier: signals this worker's share of the dispatch is done
		p.wg.Done()
	}
}

// work claims mover blocks off the shared cursor until none remain,
// running the current phase over each. Phase-2 pair output accumulates in
// a worker-local slice header over the worker's persistent shard backing
// array, stored back (and sorted) once — so worker counts beyond the
// mover count degrade gracefully to empty shards, and steady-state ticks
// allocate nothing once the shards have grown to their working size.
func (p *scanPool) work(w int) {
	m := p.m
	sc := &m.sc
	n := int64(len(sc.movers))
	switch p.phase {
	case phasePositions:
		for {
			lo := p.cursor.Add(p.block) - p.block
			if lo >= n {
				return
			}
			m.evalPositions(p.now, sc.movers[lo:min(lo+p.block, n)])
		}
	case phasePairs:
		buf := sc.wpairs[w][:0]
		for {
			lo := p.cursor.Add(p.block) - p.block
			if lo >= n {
				break
			}
			buf = m.findPairs(sc.movers[lo:min(lo+p.block, n)], buf)
		}
		slices.SortFunc(buf, comparePairEntries)
		sc.wpairs[w] = buf
	}
}

// close releases the worker goroutines. Safe to call once; the pool must
// not be dispatched to afterwards.
func (p *scanPool) close() {
	for _, c := range p.start {
		close(c)
	}
}
