// Binary contact-trace codec (v2 of the on-disk trace formats; the
// line-oriented text form in recording.go is v1). The experiment harness
// persists one trace per (scenario, seed) fingerprint; on large fleets the
// text format's float formatting and parsing dominate cache-dir load time,
// so the persisted form is binary and the text form is kept for
// inspection and back-compat.
//
// Layout (all fixed-width integers little-endian):
//
//	magic    "VDTNCB"                        6 bytes
//	version  uint16 (= 2)                    2 bytes
//	scan     float64 bits                    8 bytes
//	duration float64 bits                    8 bytes
//	stream   one entry per transition:
//	           flags    byte (bit0 = up)
//	           time     varint delta of the float64 bit pattern
//	                    vs the previous transition (0 for same-tick)
//	           nodeA    uvarint
//	           nodeB    uvarint gap (B - A - 1; B > A always)
//	footer   transition count uint64         8 bytes
//	         CRC32 (IEEE) of all prior bytes 4 bytes
//
// The footer makes damage detectable instead of silently replayable: a
// truncated file fails the CRC (and the count no longer matches the
// decoded stream), and any bit flip fails the CRC. The varint time deltas
// are lossless — bit patterns, not values, are delta-coded — so for any
// recording that passes Validate, DecodeBinary(EncodeBinary(r)) reproduces
// r exactly, including times that have no short decimal form.
package wireless

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	binaryMagic   = "VDTNCB"
	binaryVersion = 2

	binaryHeaderLen = len(binaryMagic) + 2 + 8 + 8
	binaryFooterLen = 8 + 4
)

// maxBinaryNode bounds decoded node ids so that A + gap + 1 can never
// overflow the platform's int — every id the rest of the system can
// represent (and that EncodeBinary therefore emits for a Validate-clean
// recording) decodes back, keeping the round trip exact.
const maxBinaryNode = math.MaxInt / 2

// IsBinaryRecording reports whether data starts with the binary codec's
// magic — the sniff DecodeRecording and the contact cache use to pick a
// decoder. Text traces start with '#' or a directive line, never the magic.
func IsBinaryRecording(data []byte) bool {
	return len(data) >= len(binaryMagic) && string(data[:len(binaryMagic)]) == binaryMagic
}

// EncodeBinary renders the recording in the binary codec. The encoding is
// deterministic: equal recordings produce equal bytes.
func EncodeBinary(r *Recording) []byte {
	buf := make([]byte, 0, binaryHeaderLen+6*len(r.Transitions)+binaryFooterLen)
	buf = append(buf, binaryMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, binaryVersion)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.ScanInterval))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Duration))
	prev := uint64(0)
	for _, tr := range r.Transitions {
		var flags byte
		if tr.Up {
			flags = 1
		}
		buf = append(buf, flags)
		bits := math.Float64bits(tr.Time)
		buf = binary.AppendVarint(buf, int64(bits-prev)) // wrapping delta; decode wraps back
		prev = bits
		buf = binary.AppendUvarint(buf, uint64(tr.A))
		buf = binary.AppendUvarint(buf, uint64(tr.B-tr.A-1))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(r.Transitions)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// binEnvelope is a binary trace whose container has been verified: magic,
// version, CRC32 and the count sanity bound all checked. The transition
// stream itself is still raw bytes — decode it with a binCursor (see
// stream.go), which every consumer (DecodeBinary, RecordingReader,
// RecordingView) shares so their acceptance behaviour cannot drift apart.
type binEnvelope struct {
	scanInterval float64
	duration     float64
	stream       []byte
	count        uint64
}

// parseBinaryEnvelope verifies the container of a binary trace. Integrity
// is checked before the stream is trusted: a short read, torn write or bit
// flip fails the CRC (the count is covered by it too) and is reported as
// an error — never handed to a decoder as a plausible shorter trace.
func parseBinaryEnvelope(data []byte) (binEnvelope, error) {
	if !IsBinaryRecording(data) {
		return binEnvelope{}, fmt.Errorf("wireless: not a binary contact recording (bad magic)")
	}
	if len(data) < binaryHeaderLen+binaryFooterLen {
		return binEnvelope{}, fmt.Errorf("wireless: binary recording truncated: %d bytes, header and footer need %d",
			len(data), binaryHeaderLen+binaryFooterLen)
	}
	crcOff := len(data) - 4
	if want, got := binary.LittleEndian.Uint32(data[crcOff:]), crc32.ChecksumIEEE(data[:crcOff]); want != got {
		return binEnvelope{}, fmt.Errorf("wireless: binary recording CRC mismatch (stored %08x, computed %08x): truncated or corrupt", want, got)
	}
	countOff := crcOff - 8
	count := binary.LittleEndian.Uint64(data[countOff:crcOff])

	p := data[len(binaryMagic):countOff]
	version := binary.LittleEndian.Uint16(p)
	p = p[2:]
	if version != binaryVersion {
		return binEnvelope{}, fmt.Errorf("wireless: binary recording version %d, this codec reads %d", version, binaryVersion)
	}
	env := binEnvelope{
		scanInterval: math.Float64frombits(binary.LittleEndian.Uint64(p)),
		duration:     math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		stream:       p[16:],
		count:        count,
	}
	if count > uint64(len(env.stream)) { // a transition occupies at least one byte; cheap sanity bound
		return binEnvelope{}, fmt.Errorf("wireless: binary recording declares %d transitions in a %d-byte stream", count, len(env.stream))
	}
	return env, nil
}

// DecodeBinary reads the binary codec back into a validated Recording.
// Integrity is checked before the stream is trusted: a short read, torn
// write or bit flip fails the CRC or the transition count and is reported
// as an error — never decoded as a plausible shorter trace. To decode
// incrementally without materializing the transition slice, use
// RecordingReader; for shared zero-copy replay, OpenRecordingView.
func DecodeBinary(data []byte) (*Recording, error) {
	env, err := parseBinaryEnvelope(data)
	if err != nil {
		return nil, err
	}
	rec := &Recording{ScanInterval: env.scanInterval, Duration: env.duration}
	if env.count > 0 { // keep Transitions nil for empty traces (round-trip exactness)
		rec.Transitions = make([]Transition, 0, env.count)
	}
	cur := binCursor{p: env.stream}
	for {
		tr, ok, err := cur.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		rec.Transitions = append(rec.Transitions, tr)
	}
	if uint64(len(rec.Transitions)) != env.count {
		return nil, fmt.Errorf("wireless: binary recording truncated: footer declares %d transitions, stream held %d",
			env.count, len(rec.Transitions))
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("wireless: binary recording invalid: %w", err)
	}
	return rec, nil
}

// DecodeRecording decodes a persisted contact trace in either format,
// sniffing by magic: the binary codec when present, otherwise the strict
// text form (end trailer required; see DecodeRecordingLegacy for
// pre-trailer files).
func DecodeRecording(data []byte) (*Recording, error) {
	if IsBinaryRecording(data) {
		return DecodeBinary(data)
	}
	return ParseRecording(string(data))
}

// DecodeRecordingLegacy decodes like DecodeRecording but tolerates text
// traces without the end trailer (pre-v2 files), reporting the lost
// truncation detection through warn — the one policy shared by every
// disk-loading consumer (the contact cache, the CLIs).
func DecodeRecordingLegacy(data []byte, warn func(msg string)) (*Recording, error) {
	if IsBinaryRecording(data) {
		return DecodeBinary(data)
	}
	return ParseRecordingLegacy(string(data), warn)
}
