// Contact-trace recording: the capture side of the medium's record/replay
// pair. A Recording is the exact sequence of contact up/down transitions a
// scan-driven run produced, in the order the scan fired them. Replaying it
// (Medium.StartReplay) reproduces the run's contact process bit-identically
// without touching mobility or the proximity grid — the basis of the
// experiment harness's contact cache, where one mobility simulation per
// (scenario, seed) pair is reused across every series and x-axis cell.
package wireless

import (
	"fmt"
	"strconv"
	"strings"
)

// Transition is one contact state change, as fired by the proximity scan
// (or a contact plan). A < B always; Time is the scan tick the transition
// fired on.
type Transition struct {
	Time float64
	A, B int
	Up   bool
}

// Recording is a captured contact trace. ScanInterval is the tick period
// of the run that recorded it (replay must use the same period to keep
// event ordering aligned); Duration is the recorded horizon in seconds.
// Transitions are in firing order: non-decreasing time, and within one
// scan tick downs before ups — exactly as the live scan raises them.
//
// A Recording is immutable once captured; concurrent replays may share one
// instance (each Medium keeps its own replay cursor).
type Recording struct {
	ScanInterval float64
	Duration     float64
	Transitions  []Transition
}

// MaxNode returns the highest node id referenced; -1 for an empty trace.
func (r *Recording) MaxNode() int {
	max := -1
	for _, tr := range r.Transitions {
		if tr.B > max {
			max = tr.B
		}
	}
	return max
}

// Validate reports the first structural defect: non-positive scan interval
// or duration, unordered or negative pairs, timestamps outside [0, Duration]
// or decreasing, or a transition repeating the pair's current state (two
// ups or two downs in a row).
func (r *Recording) Validate() error {
	if r.ScanInterval <= 0 {
		return fmt.Errorf("wireless: recording has non-positive scan interval %v", r.ScanInterval)
	}
	if r.Duration <= 0 {
		return fmt.Errorf("wireless: recording has non-positive duration %v", r.Duration)
	}
	// Pair-state tracking: fleet-scale traces validate on every cache-dir
	// load, so the common small-id case uses a dense bitmap instead of a
	// map (several times faster); huge or sparse id spaces — including
	// absurd ids from corrupt input, where stride*stride would overflow —
	// fall back to the map.
	var dense []bool
	var sparse map[pairKey]bool
	stride := r.MaxNode() + 1
	if stride > 0 && stride <= 1<<11 {
		dense = make([]bool, stride*stride)
	} else {
		sparse = make(map[pairKey]bool)
	}
	last := 0.0
	for i, tr := range r.Transitions {
		switch {
		case tr.A < 0 || tr.B <= tr.A:
			return fmt.Errorf("wireless: recording transition %d has bad pair (%d, %d)", i, tr.A, tr.B)
		case tr.Time < last:
			return fmt.Errorf("wireless: recording transition %d at %v before predecessor at %v", i, tr.Time, last)
		case tr.Time > r.Duration:
			return fmt.Errorf("wireless: recording transition %d at %v beyond duration %v", i, tr.Time, r.Duration)
		}
		var up bool
		if dense != nil {
			up = dense[tr.A*stride+tr.B]
		} else {
			up = sparse[pairKey{tr.A, tr.B}]
		}
		if up == tr.Up {
			return fmt.Errorf("wireless: recording transition %d repeats state up=%v of pair (%d, %d)", i, tr.Up, tr.A, tr.B)
		}
		if dense != nil {
			dense[tr.A*stride+tr.B] = tr.Up
		} else {
			sparse[pairKey{tr.A, tr.B}] = tr.Up
		}
		last = tr.Time
	}
	return nil
}

// Windows pairs the transitions into contact windows, in up-transition
// order. Contacts still open at the end of the trace are closed at
// Duration, so converting to a contact plan loses the open/closed
// distinction (a replay never fires downs the live run did not fire).
// An up on the final scan tick (exactly at Duration) would make a
// zero-length window and is dropped.
func (r *Recording) Windows() []ContactWindow {
	open := make(map[pairKey]int) // pair -> index into out of its open window
	var out []ContactWindow
	for _, tr := range r.Transitions {
		k := pairKey{tr.A, tr.B}
		if tr.Up {
			open[k] = len(out)
			out = append(out, ContactWindow{A: tr.A, B: tr.B, Start: tr.Time, End: r.Duration})
		} else if i, ok := open[k]; ok {
			out[i].End = tr.Time
			delete(open, k)
		}
	}
	kept := out[:0]
	for _, w := range out {
		if w.End > w.Start {
			kept = append(kept, w)
		}
	}
	return kept
}

// Format renders the recording in its line-oriented text form:
//
//	# vdtn contact recording
//	scan <interval>
//	duration <seconds>
//	<time> <nodeA> <nodeB> up|down
//	end <transition count>
//
// Floats use the shortest exact decimal representation, so
// ParseRecording(Format()) round-trips bit-identically. The final
// "end <count>" trailer makes truncation detectable: without it, any
// prefix of a trace would parse cleanly and silently replay wrong
// contacts.
func (r *Recording) Format() string {
	var sb strings.Builder
	sb.WriteString("# vdtn contact recording\n")
	fmt.Fprintf(&sb, "scan %s\n", formatFloat(r.ScanInterval))
	fmt.Fprintf(&sb, "duration %s\n", formatFloat(r.Duration))
	for _, tr := range r.Transitions {
		dir := "down"
		if tr.Up {
			dir = "up"
		}
		fmt.Fprintf(&sb, "%s %d %d %s\n", formatFloat(tr.Time), tr.A, tr.B, dir)
	}
	fmt.Fprintf(&sb, "end %d\n", len(r.Transitions))
	return sb.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseRecording reads the Format text form back into a validated
// Recording. The "end <count>" trailer is required: a file cut short —
// torn rename, partial copy — is reported as an error, never replayed as
// a shorter trace. For files written before the trailer existed, use
// ParseRecordingLegacy.
func ParseRecording(text string) (*Recording, error) {
	return parseRecording(text, false, nil)
}

// ParseRecordingLegacy parses like ParseRecording but tolerates a missing
// "end <count>" trailer, for traces written before the trailer existed.
// When the trailer is absent, warn (if non-nil) is told that truncation of
// this file cannot be detected. A present-but-mismatching trailer is still
// an error.
func ParseRecordingLegacy(text string, warn func(msg string)) (*Recording, error) {
	return parseRecording(text, true, warn)
}

func parseRecording(text string, legacy bool, warn func(string)) (*Recording, error) {
	rec := &Recording{}
	trailer := -1 // transition count the end trailer declares; -1 = not seen
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if trailer >= 0 {
			return nil, fmt.Errorf("wireless: recording line %d: content after the end trailer", lineNo+1)
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "end" && len(fields) == 2:
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("wireless: recording line %d: bad end count %q", lineNo+1, fields[1])
			}
			trailer = n
		case fields[0] == "scan" && len(fields) == 2:
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("wireless: recording line %d: bad scan interval %q", lineNo+1, fields[1])
			}
			rec.ScanInterval = v
		case fields[0] == "duration" && len(fields) == 2:
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("wireless: recording line %d: bad duration %q", lineNo+1, fields[1])
			}
			rec.Duration = v
		case len(fields) == 4:
			t, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("wireless: recording line %d: bad time %q", lineNo+1, fields[0])
			}
			a, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("wireless: recording line %d: bad node %q", lineNo+1, fields[1])
			}
			b, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("wireless: recording line %d: bad node %q", lineNo+1, fields[2])
			}
			var upFlag bool
			switch fields[3] {
			case "up":
				upFlag = true
			case "down":
				upFlag = false
			default:
				return nil, fmt.Errorf("wireless: recording line %d: want up|down, got %q", lineNo+1, fields[3])
			}
			rec.Transitions = append(rec.Transitions, Transition{Time: t, A: a, B: b, Up: upFlag})
		default:
			return nil, fmt.Errorf("wireless: recording line %d: unrecognized %q", lineNo+1, line)
		}
	}
	switch {
	case trailer >= 0 && trailer != len(rec.Transitions):
		return nil, fmt.Errorf("wireless: recording truncated: end trailer declares %d transitions, read %d",
			trailer, len(rec.Transitions))
	case trailer < 0 && !legacy:
		return nil, fmt.Errorf("wireless: recording has no end trailer: truncated, or a pre-v2 file (use ParseRecordingLegacy)")
	case trailer < 0 && legacy:
		if warn != nil {
			warn("recording has no end trailer (pre-v2 file): truncation cannot be detected")
		}
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}
