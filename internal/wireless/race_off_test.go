//go:build !race

package wireless

const raceEnabled = false
