package wireless

import (
	"fmt"
	"sync"
)

// RecordingView is a read-only, fully validated view of a binary contact
// trace that replays without materializing a []Transition. Opened over a
// memory-mapped file (OpenRecordingView), the transition stream lives in
// the kernel page cache: concurrent sweep processes replaying the same
// persisted trace share one physical copy, and each replaying cell pays
// only a cursor — zero per-cell allocation proportional to the trace.
//
// Every integrity and structural check DecodeBinary performs runs once at
// open (CRC32, transition count, per-entry decode checks, time ordering,
// state alternation), so a view that opened cleanly is exactly as trusted
// as a decoded *Recording and its cursors cannot fail mid-replay. The view
// is immutable and safe for concurrent cursors; Close (unmapping the file)
// must not race live cursors.
type RecordingView struct {
	meta    RecordingMeta
	stream  []byte
	maxNode int

	unmap     func() error
	closeOnce sync.Once
	closeErr  error
	closed    bool
}

// NewRecordingView validates the binary trace held in data and returns a
// view over it without decoding a transition slice. data must stay
// unmodified for the view's lifetime.
func NewRecordingView(data []byte) (*RecordingView, error) {
	return newRecordingView(data, nil)
}

// OpenRecordingView memory-maps the binary trace at path (falling back to
// a plain read on platforms without mmap) and validates it once. Close
// releases the mapping.
func OpenRecordingView(path string) (*RecordingView, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	v, err := newRecordingView(data, unmap)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	return v, nil
}

// newRecordingView runs the full decode + structural validation pass —
// the work DecodeBinary does, minus building the slice — and captures the
// trace's MaxNode along the way.
func newRecordingView(data []byte, unmap func() error) (*RecordingView, error) {
	env, err := parseBinaryEnvelope(data)
	if err != nil {
		return nil, err
	}
	val, err := newStreamValidator(env.scanInterval, env.duration)
	if err != nil {
		return nil, fmt.Errorf("wireless: binary recording invalid: %w", err)
	}
	maxNode := -1
	cur := binCursor{p: env.stream}
	for {
		tr, ok, err := cur.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := val.check(tr); err != nil {
			return nil, fmt.Errorf("wireless: binary recording invalid: %w", err)
		}
		if tr.B > maxNode {
			maxNode = tr.B
		}
	}
	if uint64(cur.n) != env.count {
		return nil, fmt.Errorf("wireless: binary recording truncated: footer declares %d transitions, stream held %d",
			env.count, cur.n)
	}
	return &RecordingView{
		meta:    RecordingMeta{ScanInterval: env.scanInterval, Duration: env.duration, Transitions: int(env.count)},
		stream:  env.stream,
		maxNode: maxNode,
		unmap:   unmap,
	}, nil
}

// Meta returns the trace's header fields and transition count.
func (v *RecordingView) Meta() RecordingMeta { return v.meta }

// Len returns the number of transitions in the trace.
func (v *RecordingView) Len() int { return v.meta.Transitions }

// MaxNode returns the highest node id referenced; -1 for an empty trace.
func (v *RecordingView) MaxNode() int { return v.maxNode }

// Cursor returns a fresh cursor over the trace, implementing ReplaySource.
// Cursors are independent; any number may iterate the shared stream
// concurrently.
func (v *RecordingView) Cursor() TransitionCursor {
	if v.closed {
		panic("wireless: Cursor on a closed RecordingView")
	}
	return &viewCursor{cur: binCursor{p: v.stream}}
}

// Materialize decodes the view into a standalone in-memory Recording —
// for callers that need the slice form (plan export, inspection) of a
// trace they otherwise replay zero-copy.
func (v *RecordingView) Materialize() *Recording {
	rec := &Recording{ScanInterval: v.meta.ScanInterval, Duration: v.meta.Duration}
	if v.meta.Transitions > 0 {
		rec.Transitions = make([]Transition, 0, v.meta.Transitions)
	}
	c := v.Cursor()
	for {
		tr, ok := c.Next()
		if !ok {
			return rec
		}
		rec.Transitions = append(rec.Transitions, tr)
	}
}

// Close releases the file mapping, if any. Idempotent; must not race live
// cursors (the mapped pages vanish under them).
func (v *RecordingView) Close() error {
	v.closeOnce.Do(func() {
		v.closed = true
		if v.unmap != nil {
			v.closeErr = v.unmap()
			v.unmap = nil
		}
	})
	return v.closeErr
}

// viewCursor decodes the validated stream lazily. Decode errors are
// impossible on bytes the open pass already accepted, so a failure here
// means the backing memory changed underneath the view (a truncated or
// rewritten mapped file) — a scenario-assembly bug, reported by panic like
// the Medium's other misuse cases.
type viewCursor struct {
	cur binCursor
}

func (c *viewCursor) Next() (Transition, bool) {
	tr, ok, err := c.cur.next()
	if err != nil {
		panic(fmt.Sprintf("wireless: validated recording view failed to decode (backing file changed?): %v", err))
	}
	return tr, ok
}
