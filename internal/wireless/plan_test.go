package wireless

import (
	"testing"

	"vdtn/internal/event"
	"vdtn/internal/geo"
	"vdtn/internal/units"
)

func TestStartPlanFiresWindows(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	// Positions are far apart: plan mode must ignore them entirely.
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 9999, Y: 9999}))
	m.StartPlan([]ContactWindow{{A: 0, B: 1, Start: 10, End: 30}})

	s.RunUntil(5)
	if m.Connected(0, 1) {
		t.Fatal("connected before the window")
	}
	s.RunUntil(10)
	if !m.Connected(0, 1) {
		t.Fatal("not connected inside the window")
	}
	s.RunUntil(31)
	if m.Connected(0, 1) {
		t.Fatal("still connected after the window")
	}
	if len(rec.ups) != 1 || len(rec.downs) != 1 {
		t.Fatalf("ups=%v downs=%v", rec.ups, rec.downs)
	}
	if m.ContactsSeen != 1 {
		t.Fatalf("ContactsSeen = %d", m.ContactsSeen)
	}
}

func TestStartPlanAbortsAtWindowEnd(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	m.Add(fixed(0, geo.Point{}))
	m.Add(fixed(1, geo.Point{}))
	m.StartPlan([]ContactWindow{{A: 0, B: 1, Start: 0, End: 5}})
	s.RunUntil(0.5)

	aborted := false
	// 7.5 MB needs 10 s at 6 Mbit/s; the window closes at 5.
	if !m.StartTransfer(s.Now(), 0, 1, units.MB(7.5), nil, func(float64) { aborted = true }) {
		t.Fatal("transfer refused")
	}
	s.RunUntil(20)
	if !aborted {
		t.Fatal("transfer survived the window end")
	}
	if m.Busy(0) || m.Busy(1) {
		t.Fatal("busy after plan abort")
	}
}

func TestStartPlanUnknownNodePanics(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.Add(fixed(0, geo.Point{}))
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node accepted")
		}
	}()
	m.StartPlan([]ContactWindow{{A: 0, B: 7, Start: 0, End: 1}})
}

func TestStartAndStartPlanMutuallyExclusive(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.Add(fixed(0, geo.Point{}))
	m.Add(fixed(1, geo.Point{}))
	m.StartPlan([]ContactWindow{{A: 0, B: 1, Start: 0, End: 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("Start after StartPlan accepted")
		}
	}()
	m.Start(0)
}

func TestStartPlanMultipleWindowsSamePair(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{}))
	m.Add(fixed(1, geo.Point{}))
	m.StartPlan([]ContactWindow{
		{A: 0, B: 1, Start: 10, End: 20},
		{A: 0, B: 1, Start: 40, End: 50},
	})
	s.RunUntil(100)
	if len(rec.ups) != 2 || len(rec.downs) != 2 {
		t.Fatalf("repeat windows: ups=%d downs=%d", len(rec.ups), len(rec.downs))
	}
}
