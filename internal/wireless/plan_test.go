package wireless

import (
	"fmt"
	"testing"

	"vdtn/internal/event"
	"vdtn/internal/geo"
	"vdtn/internal/units"
)

func TestStartPlanFiresWindows(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	// Positions are far apart: plan mode must ignore them entirely.
	m.Add(fixed(0, geo.Point{X: 0, Y: 0}))
	m.Add(fixed(1, geo.Point{X: 9999, Y: 9999}))
	m.StartPlan([]ContactWindow{{A: 0, B: 1, Start: 10, End: 30}})

	s.RunUntil(5)
	if m.Connected(0, 1) {
		t.Fatal("connected before the window")
	}
	s.RunUntil(10)
	if !m.Connected(0, 1) {
		t.Fatal("not connected inside the window")
	}
	s.RunUntil(31)
	if m.Connected(0, 1) {
		t.Fatal("still connected after the window")
	}
	if len(rec.ups) != 1 || len(rec.downs) != 1 {
		t.Fatalf("ups=%v downs=%v", rec.ups, rec.downs)
	}
	if m.ContactsSeen != 1 {
		t.Fatalf("ContactsSeen = %d", m.ContactsSeen)
	}
}

func TestStartPlanAbortsAtWindowEnd(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.SetHandler(&recorder{})
	m.Add(fixed(0, geo.Point{}))
	m.Add(fixed(1, geo.Point{}))
	m.StartPlan([]ContactWindow{{A: 0, B: 1, Start: 0, End: 5}})
	s.RunUntil(0.5)

	aborted := false
	// 7.5 MB needs 10 s at 6 Mbit/s; the window closes at 5.
	if !m.StartTransfer(s.Now(), 0, 1, units.MB(7.5), nil, func(float64) { aborted = true }) {
		t.Fatal("transfer refused")
	}
	s.RunUntil(20)
	if !aborted {
		t.Fatal("transfer survived the window end")
	}
	if m.Busy(0) || m.Busy(1) {
		t.Fatal("busy after plan abort")
	}
}

func TestStartPlanUnknownNodePanics(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.Add(fixed(0, geo.Point{}))
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node accepted")
		}
	}()
	m.StartPlan([]ContactWindow{{A: 0, B: 7, Start: 0, End: 1}})
}

func TestStartAndStartPlanMutuallyExclusive(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	m.Add(fixed(0, geo.Point{}))
	m.Add(fixed(1, geo.Point{}))
	m.StartPlan([]ContactWindow{{A: 0, B: 1, Start: 0, End: 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("Start after StartPlan accepted")
		}
	}()
	m.Start(0)
}

// orderedLog records the full transition sequence, ups and downs
// interleaved, so tests can assert relative order within one instant.
type orderedLog struct {
	events []string
	onUp   func(now float64, a, b Entity)
}

func (l *orderedLog) ContactUp(now float64, a, b Entity) {
	l.events = append(l.events, fmt.Sprintf("up(%d,%d)@%v", a.ID(), b.ID(), now))
	if l.onUp != nil {
		l.onUp(now, a, b)
	}
}

func (l *orderedLog) ContactDown(now float64, a, b Entity) {
	l.events = append(l.events, fmt.Sprintf("down(%d,%d)@%v", a.ID(), b.ID(), now))
}

// TestStartPlanSameInstantDownsBeforeUps is the regression test for the
// plan-mode ordering bug: two adjacent windows share node 1, the second
// starting exactly when the first ends. The scan path has always fired
// downs before ups within one tick; plan mode used to schedule events in
// window-insertion order, so with the later window listed first the
// up(1,2) at t=20 fired while the (0,1) contact — and any transfer riding
// it — was still up, leaving node 1's radio busy at the moment the new
// contact appeared.
func TestStartPlanSameInstantDownsBeforeUps(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	log := &orderedLog{}
	m.SetHandler(log)
	for i := 0; i < 3; i++ {
		m.Add(fixed(i, geo.Point{X: 9999 * float64(i), Y: 0}))
	}

	aborted := false
	started := false
	log.onUp = func(now float64, a, b Entity) {
		if a.ID() != 1 || b.ID() != 2 {
			return
		}
		// The down of (0,1) must already have fired: the old contact is
		// gone and node 1's radio is free to serve the new one.
		if m.Connected(0, 1) {
			t.Error("up(1,2) fired while (0,1) still connected")
		}
		if m.Busy(1) {
			t.Error("up(1,2) fired while node 1 still busy on the old contact")
		}
		started = m.StartTransfer(now, 1, 2, units.MB(1), nil, nil)
	}

	// Adversarial order: the window that *opens* at t=20 is inserted
	// before the window that *closes* at t=20.
	m.StartPlan([]ContactWindow{
		{A: 1, B: 2, Start: 20, End: 30},
		{A: 0, B: 1, Start: 10, End: 20},
	})

	s.RunUntil(10.5)
	// A transfer on (0,1) too large to finish by t=20: it must be aborted
	// by the window end before (1,2) rises.
	if !m.StartTransfer(s.Now(), 0, 1, units.MB(100), nil, func(float64) { aborted = true }) {
		t.Fatal("transfer on (0,1) refused")
	}
	s.RunUntil(40)

	if !aborted {
		t.Fatal("transfer on (0,1) survived its window end")
	}
	if !started {
		t.Fatal("transfer on (1,2) could not start inside the up handler")
	}
	want := []string{"up(0,1)@10", "down(0,1)@20", "up(1,2)@20", "down(1,2)@30"}
	if fmt.Sprint(log.events) != fmt.Sprint(want) {
		t.Fatalf("transition order %v, want %v", log.events, want)
	}
}

// TestStartPlanSameInstantDeterministicOrder: several transitions landing
// on one instant must fire downs-then-ups, each group ascending by pair —
// the same total order the scan path guarantees — regardless of the order
// the windows were passed in.
func TestStartPlanSameInstantDeterministicOrder(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	log := &orderedLog{}
	m.SetHandler(log)
	for i := 0; i < 6; i++ {
		m.Add(fixed(i, geo.Point{X: 9999 * float64(i), Y: 0}))
	}
	m.StartPlan([]ContactWindow{
		{A: 4, B: 5, Start: 20, End: 40},
		{A: 2, B: 3, Start: 10, End: 20},
		{A: 1, B: 2, Start: 20, End: 40},
		{A: 0, B: 1, Start: 10, End: 20},
	})
	s.RunUntil(50)
	want := []string{
		"up(0,1)@10", "up(2,3)@10",
		"down(0,1)@20", "down(2,3)@20", "up(1,2)@20", "up(4,5)@20",
		"down(1,2)@40", "down(4,5)@40",
	}
	if fmt.Sprint(log.events) != fmt.Sprint(want) {
		t.Fatalf("transition order:\n got %v\nwant %v", log.events, want)
	}
}

func TestStartPlanMultipleWindowsSamePair(t *testing.T) {
	s := event.NewScheduler()
	m := NewMedium(s, testCfg())
	rec := &recorder{}
	m.SetHandler(rec)
	m.Add(fixed(0, geo.Point{}))
	m.Add(fixed(1, geo.Point{}))
	m.StartPlan([]ContactWindow{
		{A: 0, B: 1, Start: 10, End: 20},
		{A: 0, B: 1, Start: 40, End: 50},
	})
	s.RunUntil(100)
	if len(rec.ups) != 2 || len(rec.downs) != 2 {
		t.Fatalf("repeat windows: ups=%d downs=%d", len(rec.ups), len(rec.downs))
	}
}
