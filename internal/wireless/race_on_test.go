//go:build race

package wireless

// raceEnabled reports whether the race detector is compiled in. Timing
// artifacts skip under -race: instrumentation slows the two scan paths by
// different factors, so their ratio stops meaning anything.
const raceEnabled = true
